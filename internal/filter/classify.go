package filter

import (
	"norman/internal/packet"
)

// Classifier is the lookup structure behind a chain. The linear classifier
// is the reference semantics (first match wins, in order); the compiled
// classifier is an exact-match fast path for the common case where most
// rules pin protocol and destination port, falling back to the linear scan
// for everything else. E8's ablation compares the two as rule counts grow —
// the shape matters because on-NIC match-action tables are exact-match
// hardware, and the compiled path models what the KOPI overlay actually
// executes.
type Classifier interface {
	// Classify returns the first matching terminal rule (or nil for
	// policy) and the number of rules effectively examined.
	Classify(p *packet.Packet) (*Rule, int)
}

// LinearClassifier scans rules in order.
type LinearClassifier struct {
	Rules []*Rule
}

// Classify scans rules first-match-wins, skipping non-terminal actions.
func (c *LinearClassifier) Classify(p *packet.Packet) (*Rule, int) {
	for i, r := range c.Rules {
		if r.Action.Terminal() && r.Matches(p) {
			return r, i + 1
		}
	}
	return nil, len(c.Rules)
}

// exactKey is the compiled fast-path key: protocol plus destination port.
type exactKey struct {
	proto uint8
	dport uint16
}

// CompiledClassifier partitions terminal rules into an exact-match table
// keyed by (proto, dstport) — for rules that pin both and use no ranges or
// prefixes — and a residue evaluated linearly. Rule priority is preserved:
// a fast-path hit is only used when no earlier residue rule matches.
type CompiledClassifier struct {
	table   map[exactKey][]indexedRule
	residue []indexedRule
	total   int
}

type indexedRule struct {
	idx int
	r   *Rule
}

// NewCompiledClassifier builds the structure from an ordered rule list.
func NewCompiledClassifier(rules []*Rule) *CompiledClassifier {
	c := &CompiledClassifier{table: make(map[exactKey][]indexedRule), total: len(rules)}
	for i, r := range rules {
		if !r.Action.Terminal() {
			continue
		}
		if fastPathable(r) {
			k := exactKey{proto: *r.Proto, dport: r.DstPorts.Lo}
			c.table[k] = append(c.table[k], indexedRule{i, r})
		} else {
			c.residue = append(c.residue, indexedRule{i, r})
		}
	}
	return c
}

// fastPathable reports whether the rule is expressible as one exact-match
// entry: exact proto + single destination port, and the remaining matchers
// exact-checkable (owner fields are fine — they compare exactly).
func fastPathable(r *Rule) bool {
	if r.Proto == nil || r.DstPorts == nil || r.DstPorts.Lo != r.DstPorts.Hi {
		return false
	}
	if r.SrcNet != nil || r.DstNet != nil || r.SrcPorts != nil || r.EthType != nil {
		return false
	}
	return true
}

// Classify consults the exact table and the residue, honoring original rule
// order. The cost returned is the number of rule comparisons performed: a
// table probe costs 1 plus the (usually tiny) bucket scan.
func (c *CompiledClassifier) Classify(p *packet.Packet) (*Rule, int) {
	cost := 0
	var fast *indexedRule
	if p.IP != nil {
		if _, dp, ok := ports(p); ok {
			cost++ // table probe
			if bucket, hit := c.table[exactKey{proto: p.IP.Proto, dport: dp}]; hit {
				for i := range bucket {
					cost++
					if bucket[i].r.Matches(p) {
						fast = &bucket[i]
						break
					}
				}
			}
		}
	}
	for i := range c.residue {
		ir := &c.residue[i]
		if fast != nil && ir.idx > fast.idx {
			break // fast-path rule has priority over later residue rules
		}
		cost++
		if ir.r.Matches(p) {
			return ir.r, cost
		}
	}
	if fast != nil {
		return fast.r, cost
	}
	return nil, cost
}
