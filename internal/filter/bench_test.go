package filter

import (
	"testing"

	"norman/internal/packet"
)

func benchRules(n int) []*Rule {
	rules := make([]*Rule, 0, n)
	for i := 0; i < n; i++ {
		rules = append(rules, &Rule{
			Proto:    Proto(packet.ProtoUDP),
			DstPorts: Port(uint16(10000 + i)),
			Action:   ActDrop,
		})
	}
	return rules
}

// BenchmarkLinearClassify1024 is the software-iptables worst case E8b
// quantifies in rules-examined; this is its host-time counterpart.
func BenchmarkLinearClassify1024(b *testing.B) {
	c := &LinearClassifier{Rules: benchRules(1024)}
	p := udp(1, 2, 3, 40000) // matches nothing: full scan
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Classify(p)
	}
}

// BenchmarkCompiledClassify1024 is the exact-match fast path.
func BenchmarkCompiledClassify1024(b *testing.B) {
	c := NewCompiledClassifier(benchRules(1024))
	p := udp(1, 2, 3, 40000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Classify(p)
	}
}

// BenchmarkConntrackObserve measures the flow-tracking hot path.
func BenchmarkConntrackObserve(b *testing.B) {
	ct := NewConntrack(1<<16, 0)
	pkts := make([]*packet.Packet, 256)
	for i := range pkts {
		pkts[i] = udp(1, 2, uint16(1000+i), 80)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct.Observe(pkts[i%len(pkts)], 0)
	}
}
