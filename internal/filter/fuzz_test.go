package filter

import (
	"testing"
	"testing/quick"

	"norman/internal/overlay"
	"norman/internal/packet"
	"norman/internal/sim"
)

// randomChain builds an arbitrary (but compilable) chain from an RNG: every
// matcher kind, every terminal and non-terminal action, random policies.
func randomChain(rng *sim.RNG) *Chain {
	c := &Chain{Name: "OUTPUT", Policy: ActAccept}
	if rng.Intn(3) == 0 {
		c.Policy = ActDrop
	}
	n := 1 + rng.Intn(10)
	for i := 0; i < n; i++ {
		r := &Rule{}
		switch rng.Intn(4) {
		case 0:
			r.Action = ActAccept
		case 1:
			r.Action = ActDrop
		case 2:
			r.Action = ActCount
		case 3:
			r.Action = ActMark
			r.MarkVal = uint32(rng.Intn(100) + 1)
		}
		if rng.Intn(2) == 0 {
			r.Proto = Proto([]uint8{packet.ProtoUDP, packet.ProtoTCP}[rng.Intn(2)])
		}
		if rng.Intn(3) == 0 {
			r.SrcNet = Net(packet.MakeIP(10, byte(rng.Intn(4)), 0, 0), []int{8, 16, 24, 32}[rng.Intn(4)])
		}
		if rng.Intn(3) == 0 {
			r.DstNet = Net(packet.MakeIP(10, 0, byte(rng.Intn(4)), 0), 24)
		}
		if rng.Intn(2) == 0 {
			lo := uint16(1000 + rng.Intn(50))
			if rng.Intn(2) == 0 {
				r.DstPorts = Port(lo)
			} else {
				r.DstPorts = Ports(lo, lo+uint16(rng.Intn(20)))
			}
		}
		if rng.Intn(4) == 0 {
			r.SrcPorts = Port(uint16(2000 + rng.Intn(20)))
		}
		if rng.Intn(4) == 0 {
			r.OwnerUID = UID(uint32(1000 + rng.Intn(3)))
		}
		if rng.Intn(5) == 0 {
			r.OwnerCmd = []string{"postgres", "mysqld", "game"}[rng.Intn(3)]
		}
		if rng.Intn(6) == 0 {
			r.EthType = Ether(packet.EtherTypeARP)
		}
		c.Rules = append(c.Rules, r)
	}
	return c
}

// randomPacket builds a packet from the same value universe the chains
// match on, with a mix of trusted/untrusted metadata.
func randomPacket(rng *sim.RNG) *packet.Packet {
	if rng.Intn(8) == 0 {
		return packet.NewARPRequest(packet.MAC{}, 1, 2)
	}
	src := packet.MakeIP(10, byte(rng.Intn(4)), byte(rng.Intn(4)), byte(rng.Intn(8)))
	dst := packet.MakeIP(10, 0, byte(rng.Intn(4)), byte(rng.Intn(8)))
	sport := uint16(2000 + rng.Intn(25))
	dport := uint16(1000 + rng.Intn(80))
	var p *packet.Packet
	if rng.Intn(2) == 0 {
		p = packet.NewUDP(packet.MAC{}, packet.MAC{}, src, dst, sport, dport, 64)
	} else {
		p = packet.NewTCP(packet.MAC{}, packet.MAC{}, src, dst, sport, dport, 0, 64)
	}
	if rng.Intn(2) == 0 {
		uid := uint32(1000 + rng.Intn(3))
		cmd := []string{"postgres", "mysqld", "game"}[rng.Intn(3)]
		trusted(p, uid, cmd, internFuzz(cmd))
	}
	return p
}

// internFuzz is the shared deterministic command interner for the fuzz.
func internFuzz(cmd string) uint32 {
	switch cmd {
	case "postgres":
		return 1
	case "mysqld":
		return 2
	case "game":
		return 3
	}
	return 99
}

// TestCompileOverlayRandomChainsEquivalent: for hundreds of random chains
// and packets, the compiled overlay program's verdict AND mark side effect
// must equal the software engine's. This is the safety argument for pushing
// iptables state to the NIC.
func TestCompileOverlayRandomChainsEquivalent(t *testing.T) {
	rng := sim.NewRNG(1234, "chainfuzz")
	f := func(uint8) bool {
		chain := randomChain(rng)
		prog, err := CompileOverlay("fuzz", chain, func(c string) uint64 { return uint64(internFuzz(c)) })
		if err != nil {
			t.Logf("compile failed for %v: %v", chain.Rules, err)
			return false
		}
		if err := overlay.Verify(prog); err != nil {
			t.Logf("verify failed: %v", err)
			return false
		}
		for trial := 0; trial < 25; trial++ {
			// Fresh machine and engine per packet: rule stats are shared
			// state otherwise.
			m := overlay.NewMachine(prog)
			eng := NewEngine(true)
			for _, r := range chain.Rules {
				rc := *r
				if err := eng.Append(HookOutput, &rc); err != nil {
					return false
				}
			}
			_ = eng.SetPolicy(HookOutput, chain.Policy)

			p := randomPacket(rng)
			soft := p.Clone()
			hard := p.Clone()
			res := eng.Evaluate(HookOutput, soft)
			v, _, _ := m.Run(hard, overlay.NopEnv{})
			if (res.Action != ActAccept) != (v == overlay.VerdictDrop) {
				t.Logf("verdict mismatch: soft=%v hard=%v pkt=%+v chain=%v",
					res.Action, v, p, chain.Rules)
				return false
			}
			if soft.Meta.Mark != hard.Meta.Mark {
				t.Logf("mark mismatch: soft=%d hard=%d", soft.Meta.Mark, hard.Meta.Mark)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
