package filter

import (
	"fmt"

	"norman/internal/packet"
	"norman/internal/sim"
)

// Result of evaluating a packet against a chain.
type Result struct {
	Action         Action // terminal action (or chain policy)
	Rule           *Rule  // matching terminal rule, nil if policy applied
	RulesEvaluated int    // work done, charged by the cost model
}

// Chain is an ordered rule list with a default policy.
type Chain struct {
	Name   string
	Policy Action
	Rules  []*Rule
}

// Engine evaluates packets against per-hook chains. hasProcessView gates
// owner rules: a kernel or KOPI engine has it, a hypervisor-switch or
// network engine does not.
type Engine struct {
	chains         map[Hook]*Chain
	hasProcessView bool
	ct             *Conntrack // optional: enables -m state rules

	logged  uint64
	dropped uint64
	passed  uint64
}

// NewEngine creates an engine with empty ACCEPT-policy chains for both
// hooks. hasProcessView declares whether this interposition point can see
// trusted process metadata.
func NewEngine(hasProcessView bool) *Engine {
	return &Engine{
		chains: map[Hook]*Chain{
			HookInput:  {Name: "INPUT", Policy: ActAccept},
			HookOutput: {Name: "OUTPUT", Policy: ActAccept},
		},
		hasProcessView: hasProcessView,
	}
}

// HasProcessView reports whether owner rules are installable.
func (e *Engine) HasProcessView() bool { return e.hasProcessView }

// Chain returns the chain for a hook.
func (e *Engine) Chain(h Hook) *Chain { return e.chains[h] }

// Append adds a rule to the end of a hook's chain. Owner rules are rejected
// without a process view.
func (e *Engine) Append(h Hook, r *Rule) error {
	if r.NeedsOwner() && !e.hasProcessView {
		return fmt.Errorf("%w: %s", ErrNeedsProcessView, r)
	}
	e.chains[h].Rules = append(e.chains[h].Rules, r)
	return nil
}

// Insert adds a rule at position i (0 = first).
func (e *Engine) Insert(h Hook, i int, r *Rule) error {
	if r.NeedsOwner() && !e.hasProcessView {
		return fmt.Errorf("%w: %s", ErrNeedsProcessView, r)
	}
	c := e.chains[h]
	if i < 0 || i > len(c.Rules) {
		return fmt.Errorf("filter: insert index %d out of range [0,%d]", i, len(c.Rules))
	}
	c.Rules = append(c.Rules, nil)
	copy(c.Rules[i+1:], c.Rules[i:])
	c.Rules[i] = r
	return nil
}

// Delete removes the rule at position i.
func (e *Engine) Delete(h Hook, i int) error {
	c := e.chains[h]
	if i < 0 || i >= len(c.Rules) {
		return fmt.Errorf("filter: delete index %d out of range [0,%d)", i, len(c.Rules))
	}
	c.Rules = append(c.Rules[:i], c.Rules[i+1:]...)
	return nil
}

// Flush removes every rule from a hook's chain.
func (e *Engine) Flush(h Hook) { e.chains[h].Rules = nil }

// SetPolicy sets the default action when no terminal rule matches.
func (e *Engine) SetPolicy(h Hook, a Action) error {
	if !a.Terminal() {
		return fmt.Errorf("filter: policy must be terminal, got %s", a)
	}
	e.chains[h].Policy = a
	return nil
}

// EnableConntrack attaches a flow tracker, enabling -m state rules. Every
// evaluated packet updates tracking.
func (e *Engine) EnableConntrack(ct *Conntrack) { e.ct = ct }

// Conntrack returns the attached tracker, or nil.
func (e *Engine) Conntrack() *Conntrack { return e.ct }

// Evaluate runs the packet through a hook's chain at time zero; use
// EvaluateAt when conntrack expiry matters.
func (e *Engine) Evaluate(h Hook, p *packet.Packet) Result {
	return e.EvaluateAt(h, p, 0)
}

// EvaluateAt runs the packet through a hook's chain, applying non-terminal
// actions (count/log/mark) along the way, and returns the terminal result.
// With conntrack enabled, the packet is observed once and -m state rules
// compare against the flow's state as of this packet.
func (e *Engine) EvaluateAt(h Hook, p *packet.Packet, now sim.Time) Result {
	var state ConnState
	var tracked bool
	if e.ct != nil {
		state, tracked = e.ct.Observe(p, now)
	}
	c := e.chains[h]
	evaluated := 0
	for _, r := range c.Rules {
		evaluated++
		if !r.matches(p, state, tracked) {
			continue
		}
		r.Packets++
		r.Bytes += uint64(p.FrameLen())
		switch r.Action {
		case ActCount:
			continue
		case ActLog:
			e.logged++
			continue
		case ActMark:
			p.Meta.Mark = r.MarkVal
			continue
		default:
			e.note(r.Action)
			return Result{Action: r.Action, Rule: r, RulesEvaluated: evaluated}
		}
	}
	e.note(c.Policy)
	return Result{Action: c.Policy, RulesEvaluated: evaluated}
}

func (e *Engine) note(a Action) {
	if a == ActAccept {
		e.passed++
	} else {
		e.dropped++
	}
}

// Counters returns cumulative accept/drop/log totals.
func (e *Engine) Counters() (passed, dropped, logged uint64) {
	return e.passed, e.dropped, e.logged
}

// RuleCount returns the total number of installed rules across hooks.
func (e *Engine) RuleCount() int {
	return len(e.chains[HookInput].Rules) + len(e.chains[HookOutput].Rules)
}
