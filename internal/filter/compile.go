package filter

import (
	"fmt"
	"strings"

	"norman/internal/overlay"
)

// CompileOverlay translates a chain into an overlay program, which is how
// the Norman kernel pushes iptables state to the SmartNIC (§4.4): rules
// become straight-line match/jump sequences, counters become overlay
// counters, and the chain policy becomes the fall-through verdict.
//
// Overlay uid/pid/cmd_id fields are stamped by the NIC from the kernel-owned
// connection table, so owner matches compiled here are trusted — this
// compilation path only exists on the KOPI architecture, which is exactly
// the paper's point. internCmd maps a command name to the small integer id
// the kernel programs into connection metadata; it may be nil when no rule
// uses cmd-owner.
func CompileOverlay(name string, c *Chain, internCmd func(string) uint64) (*overlay.Program, error) {
	var b strings.Builder

	// Every rule gets a hit counter (what `iptables -L -v` reports); the
	// counter for rule i is named hit<i>.
	for i := range c.Rules {
		fmt.Fprintf(&b, ".counter hit%d\n", i)
	}

	for i, r := range c.Rules {
		if r.State != nil {
			// Conntrack-state rules need the NIC's shared-table stateful
			// firewall (core.EnableStatefulFirewall), not chain compilation.
			return nil, fmt.Errorf("filter: rule %d uses -m state; state matching on the NIC uses the stateful firewall programs", i)
		}
		next := fmt.Sprintf("rule%d", i+1)
		fmt.Fprintf(&b, "# %s\n", r)

		if r.EthType != nil {
			fmt.Fprintf(&b, "ldf r0, eth_type\njne r0, %d, %s\n", *r.EthType, next)
		}
		if r.Proto != nil {
			fmt.Fprintf(&b, "ldf r0, proto\njne r0, %d, %s\n", *r.Proto, next)
		}
		if r.SrcNet != nil {
			emitPrefix(&b, "src_ip", *r.SrcNet, next)
		}
		if r.DstNet != nil {
			emitPrefix(&b, "dst_ip", *r.DstNet, next)
		}
		if r.SrcPorts != nil {
			emitRange(&b, "src_port", *r.SrcPorts, next)
		}
		if r.DstPorts != nil {
			emitRange(&b, "dst_port", *r.DstPorts, next)
		}
		if r.OwnerUID != nil {
			fmt.Fprintf(&b, "ldf r0, uid\njne r0, %d, %s\n", *r.OwnerUID, next)
		}
		if r.OwnerCmd != "" {
			if internCmd == nil {
				return nil, fmt.Errorf("filter: rule %d uses cmd-owner but no command interner was provided", i)
			}
			fmt.Fprintf(&b, "ldf r0, cmd_id\njne r0, %d, %s\n", internCmd(r.OwnerCmd), next)
		}

		fmt.Fprintf(&b, "count hit%d\n", i)
		switch r.Action {
		case ActAccept:
			b.WriteString("pass\n")
		case ActDrop, ActReject:
			b.WriteString("drop\n")
		case ActCount, ActLog:
			// counted above; evaluation continues
		case ActMark:
			fmt.Fprintf(&b, "ldi r2, %d\nsetf mark, r2\n", r.MarkVal)
		}
		fmt.Fprintf(&b, "rule%d:\n", i+1)
	}

	// Chain policy.
	if c.Policy == ActAccept {
		b.WriteString("pass\n")
	} else {
		b.WriteString("drop\n")
	}

	return overlay.Assemble(name, b.String())
}

func emitPrefix(b *strings.Builder, field string, p Prefix, next string) {
	if p.Bits <= 0 {
		return // wildcard
	}
	mask := uint64(0xffffffff)
	if p.Bits < 32 {
		mask = mask << (32 - p.Bits) & 0xffffffff
	}
	want := uint64(p.Net) & mask
	fmt.Fprintf(b, "ldf r0, %s\nand r0, %d\njne r0, %d, %s\n", field, mask, want, next)
}

func emitRange(b *strings.Builder, field string, r PortRange, next string) {
	if r.Lo == r.Hi {
		fmt.Fprintf(b, "ldf r0, %s\njne r0, %d, %s\n", field, r.Lo, next)
		return
	}
	fmt.Fprintf(b, "ldf r0, %s\njlt r0, %d, %s\njgt r0, %d, %s\n", field, r.Lo, next, r.Hi, next)
}
