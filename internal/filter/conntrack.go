package filter

import (
	"norman/internal/packet"
	"norman/internal/sim"
)

// ConnState is a tracked connection's lifecycle state.
type ConnState uint8

// States, in the netfilter sense.
const (
	StateNew ConnState = iota
	StateEstablished
	StateClosing
)

func (s ConnState) String() string {
	switch s {
	case StateNew:
		return "NEW"
	case StateEstablished:
		return "ESTABLISHED"
	case StateClosing:
		return "CLOSING"
	}
	return "?"
}

// connEntry is one tracked flow (both directions share an entry keyed by the
// originating direction).
type connEntry struct {
	state    ConnState
	lastSeen sim.Time
	packets  uint64
	bytes    uint64
}

// Conntrack is a flow-state tracker with idle expiry. It gives the filter
// stateful semantics (match ESTABLISHED) and gives NAT its translation
// anchor.
type Conntrack struct {
	entries map[packet.FlowKey]*connEntry
	maxSize int
	timeout sim.Duration

	inserted uint64
	evicted  uint64
}

// NewConntrack creates a tracker bounded to maxSize flows with the given
// idle timeout.
func NewConntrack(maxSize int, timeout sim.Duration) *Conntrack {
	if maxSize <= 0 {
		maxSize = 1 << 20
	}
	if timeout <= 0 {
		timeout = 120 * sim.Second
	}
	return &Conntrack{
		entries: make(map[packet.FlowKey]*connEntry),
		maxSize: maxSize,
		timeout: timeout,
	}
}

// normalize returns the originating-direction key for a packet's flow: the
// stored key is whichever direction was seen first.
func (ct *Conntrack) normalize(k packet.FlowKey) (packet.FlowKey, *connEntry) {
	if e, ok := ct.entries[k]; ok {
		return k, e
	}
	rk := k.Reverse()
	if e, ok := ct.entries[rk]; ok {
		return rk, e
	}
	return k, nil
}

// Observe updates tracking for a packet at the given time and returns the
// flow's state as seen by a rule evaluated on this packet (a first packet
// observes NEW). Non-transport packets return NEW, false.
func (ct *Conntrack) Observe(p *packet.Packet, now sim.Time) (ConnState, bool) {
	k, ok := p.Flow()
	if !ok {
		return StateNew, false
	}
	key, e := ct.normalize(k)
	if e != nil && now.Sub(e.lastSeen) > ct.timeout {
		delete(ct.entries, key)
		ct.evicted++
		e = nil
	}
	if e == nil {
		if len(ct.entries) >= ct.maxSize {
			ct.expireOldest()
		}
		e = &connEntry{state: StateNew, lastSeen: now}
		ct.entries[key] = e
		ct.inserted++
	}
	observed := e.state
	e.packets++
	e.bytes += uint64(p.FrameLen())
	e.lastSeen = now

	// State transitions: a reply direction packet establishes; TCP FIN/RST
	// moves to closing.
	if key != k && e.state == StateNew {
		e.state = StateEstablished
	}
	if p.TCP != nil && p.TCP.Flags&(packet.TCPFin|packet.TCPRst) != 0 {
		e.state = StateClosing
	}
	return observed, true
}

func (ct *Conntrack) expireOldest() {
	var oldestKey packet.FlowKey
	var oldest sim.Time
	first := true
	for k, e := range ct.entries {
		if first || e.lastSeen < oldest {
			oldestKey, oldest, first = k, e.lastSeen, false
		}
	}
	if !first {
		delete(ct.entries, oldestKey)
		ct.evicted++
	}
}

// Len returns the number of tracked flows.
func (ct *Conntrack) Len() int { return len(ct.entries) }

// Counters returns cumulative insert/evict totals.
func (ct *Conntrack) Counters() (inserted, evicted uint64) { return ct.inserted, ct.evicted }

// NATRule rewrites the source of flows matching a prefix to a public
// address, allocating a distinct source port per flow (classic SNAT).
type NATRule struct {
	Match    Prefix      // internal source prefix to translate
	Public   packet.IPv4 // translated source address
	PortBase uint16      // first port of the translation pool
	PoolSize uint16      // number of ports in the pool
}

// NAT is a source-NAT engine layered on flow keys.
type NAT struct {
	rule     NATRule
	forward  map[packet.FlowKey]uint16 // original flow -> allocated port
	reverse  map[uint16]packet.FlowKey // allocated port -> original flow
	nextPort uint16
	full     uint64
}

// NewNAT creates an engine for one SNAT rule.
func NewNAT(rule NATRule) *NAT {
	return &NAT{
		rule:    rule,
		forward: make(map[packet.FlowKey]uint16),
		reverse: make(map[uint16]packet.FlowKey),
	}
}

// TranslateOut rewrites an outbound packet's source if it matches the rule;
// reports whether translation occurred. Returns false when the port pool is
// exhausted (the packet should then be dropped, and the exhaustion counter
// increments).
func (n *NAT) TranslateOut(p *packet.Packet) bool {
	if p.IP == nil || !n.rule.Match.Contains(p.IP.Src) {
		return false
	}
	k, ok := p.Flow()
	if !ok {
		return false
	}
	port, have := n.forward[k]
	if !have {
		if len(n.forward) >= int(n.rule.PoolSize) {
			n.full++
			return false
		}
		for {
			port = n.rule.PortBase + n.nextPort%n.rule.PoolSize
			n.nextPort++
			if _, taken := n.reverse[port]; !taken {
				break
			}
		}
		n.forward[k] = port
		n.reverse[port] = k
	}
	p.IP.Src = n.rule.Public
	setSrcPort(p, port)
	return true
}

// TranslateIn rewrites an inbound packet addressed to the public address
// back to the original internal flow; reports whether translation occurred.
func (n *NAT) TranslateIn(p *packet.Packet) bool {
	if p.IP == nil || p.IP.Dst != n.rule.Public {
		return false
	}
	_, dp, ok := ports(p)
	if !ok {
		return false
	}
	orig, have := n.reverse[dp]
	if !have {
		return false
	}
	p.IP.Dst = orig.Src
	setDstPort(p, orig.SrcPort)
	return true
}

// Exhausted returns how many flows failed translation for lack of ports.
func (n *NAT) Exhausted() uint64 { return n.full }

// Flows returns the number of active translations.
func (n *NAT) Flows() int { return len(n.forward) }

func setSrcPort(p *packet.Packet, port uint16) {
	if p.UDP != nil {
		p.UDP.SrcPort = port
	}
	if p.TCP != nil {
		p.TCP.SrcPort = port
	}
}

func setDstPort(p *packet.Packet, port uint16) {
	if p.UDP != nil {
		p.UDP.DstPort = port
	}
	if p.TCP != nil {
		p.TCP.DstPort = port
	}
}
