package filter

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"norman/internal/overlay"
	"norman/internal/packet"
	"norman/internal/sim"
)

func udp(src, dst packet.IPv4, sport, dport uint16) *packet.Packet {
	return packet.NewUDP(packet.MAC{}, packet.MAC{}, src, dst, sport, dport, 64)
}

func trusted(p *packet.Packet, uid uint32, cmd string, cmdID uint32) *packet.Packet {
	p.Meta.UID = uid
	p.Meta.Command = cmd
	p.Meta.CommandID = cmdID
	p.Meta.TrustedMeta = true
	return p
}

func TestRuleMatchers(t *testing.T) {
	r := &Rule{
		Proto:    Proto(packet.ProtoUDP),
		SrcNet:   Net(packet.MakeIP(10, 0, 0, 0), 8),
		DstPorts: Ports(5000, 5100),
		Action:   ActDrop,
	}
	if !r.Matches(udp(packet.MakeIP(10, 1, 1, 1), 2, 1, 5050)) {
		t.Fatal("should match")
	}
	if r.Matches(udp(packet.MakeIP(11, 1, 1, 1), 2, 1, 5050)) {
		t.Fatal("wrong prefix should not match")
	}
	if r.Matches(udp(packet.MakeIP(10, 1, 1, 1), 2, 1, 4999)) {
		t.Fatal("port below range should not match")
	}
	tcp := packet.NewTCP(packet.MAC{}, packet.MAC{}, packet.MakeIP(10, 1, 1, 1), 2, 1, 5050, 0, 0)
	if r.Matches(tcp) {
		t.Fatal("wrong proto should not match")
	}
}

func TestOwnerMatchNeedsTrustedMeta(t *testing.T) {
	r := &Rule{OwnerUID: UID(1001), Action: ActAccept}
	p := udp(1, 2, 3, 4)
	p.Meta.UID = 1001 // claimed, not trusted
	if r.Matches(p) {
		t.Fatal("untrusted claims must never match owner rules")
	}
	trusted(p, 1001, "x", 1)
	if !r.Matches(p) {
		t.Fatal("trusted uid should match")
	}
	rc := &Rule{OwnerCmd: "postgres", Action: ActAccept}
	if rc.Matches(p) {
		t.Fatal("wrong command")
	}
	p.Meta.Command = "postgres"
	if !rc.Matches(p) {
		t.Fatal("command should match")
	}
}

func TestEngineOrderAndPolicy(t *testing.T) {
	e := NewEngine(true)
	mustAppend := func(h Hook, r *Rule) {
		t.Helper()
		if err := e.Append(h, r); err != nil {
			t.Fatal(err)
		}
	}
	mustAppend(HookOutput, &Rule{DstPorts: Port(80), Action: ActAccept})
	mustAppend(HookOutput, &Rule{Proto: Proto(packet.ProtoUDP), Action: ActDrop})

	res := e.Evaluate(HookOutput, udp(1, 2, 3, 80))
	if res.Action != ActAccept || res.RulesEvaluated != 1 {
		t.Fatalf("first-match-wins violated: %+v", res)
	}
	res = e.Evaluate(HookOutput, udp(1, 2, 3, 81))
	if res.Action != ActDrop || res.RulesEvaluated != 2 {
		t.Fatalf("second rule: %+v", res)
	}

	if err := e.SetPolicy(HookOutput, ActDrop); err != nil {
		t.Fatal(err)
	}
	e.Flush(HookOutput)
	if res := e.Evaluate(HookOutput, udp(1, 2, 3, 80)); res.Action != ActDrop {
		t.Fatal("policy should apply after flush")
	}
	if err := e.SetPolicy(HookOutput, ActCount); err == nil {
		t.Fatal("non-terminal policy must be rejected")
	}
}

func TestEngineNonTerminalActions(t *testing.T) {
	e := NewEngine(true)
	_ = e.Append(HookInput, &Rule{Action: ActCount, Name: "count-all"})
	_ = e.Append(HookInput, &Rule{Action: ActMark, MarkVal: 9})
	p := udp(1, 2, 3, 4)
	res := e.Evaluate(HookInput, p)
	if res.Action != ActAccept {
		t.Fatalf("fallthrough to policy: %v", res.Action)
	}
	if p.Meta.Mark != 9 {
		t.Fatal("mark not applied")
	}
	if e.Chain(HookInput).Rules[0].Packets != 1 {
		t.Fatal("count rule should tally")
	}
}

func TestEngineInsertDelete(t *testing.T) {
	e := NewEngine(true)
	_ = e.Append(HookInput, &Rule{Name: "b", Action: ActDrop})
	if err := e.Insert(HookInput, 0, &Rule{Name: "a", Action: ActAccept}); err != nil {
		t.Fatal(err)
	}
	if e.Chain(HookInput).Rules[0].Name != "a" {
		t.Fatal("insert at head failed")
	}
	if err := e.Delete(HookInput, 0); err != nil {
		t.Fatal(err)
	}
	if e.Chain(HookInput).Rules[0].Name != "b" {
		t.Fatal("delete failed")
	}
	if err := e.Delete(HookInput, 5); err == nil {
		t.Fatal("out-of-range delete must error")
	}
}

func TestEngineRefusesOwnerRulesWithoutProcessView(t *testing.T) {
	e := NewEngine(false)
	err := e.Append(HookOutput, &Rule{OwnerUID: UID(1), Action: ActDrop})
	if !errors.Is(err, ErrNeedsProcessView) {
		t.Fatalf("want ErrNeedsProcessView, got %v", err)
	}
	if err := e.Append(HookOutput, &Rule{DstPorts: Port(80), Action: ActDrop}); err != nil {
		t.Fatalf("plain rules must work: %v", err)
	}
}

func TestConntrackStates(t *testing.T) {
	ct := NewConntrack(16, 10*sim.Second)
	fwd := udp(1, 2, 100, 200)
	rev := udp(2, 1, 200, 100)

	if st, ok := ct.Observe(fwd, 0); !ok || st != StateNew {
		t.Fatalf("first packet: %v %v", st, ok)
	}
	if st, _ := ct.Observe(rev, sim.Time(sim.Millisecond)); st != StateNew {
		t.Fatalf("reply observes pre-transition state, got %v", st)
	}
	if st, _ := ct.Observe(fwd, sim.Time(2*sim.Millisecond)); st != StateEstablished {
		t.Fatalf("after reply: %v", st)
	}
	if ct.Len() != 1 {
		t.Fatalf("both directions share one entry: %d", ct.Len())
	}

	// TCP FIN moves to closing.
	fin := packet.NewTCP(packet.MAC{}, packet.MAC{}, 5, 6, 10, 20, packet.TCPFin, 0)
	ct.Observe(fin, 0)
	again := packet.NewTCP(packet.MAC{}, packet.MAC{}, 5, 6, 10, 20, 0, 0)
	if st, _ := ct.Observe(again, 0); st != StateClosing {
		t.Fatalf("after FIN: %v", st)
	}
}

func TestConntrackExpiry(t *testing.T) {
	ct := NewConntrack(16, sim.Duration(sim.Millisecond))
	ct.Observe(udp(1, 2, 10, 20), 0)
	// Beyond the idle timeout the flow is NEW again.
	if st, _ := ct.Observe(udp(1, 2, 10, 20), sim.Time(5*sim.Millisecond)); st != StateNew {
		t.Fatalf("expired flow should restart: %v", st)
	}
	_, evicted := ct.Counters()
	if evicted != 1 {
		t.Fatalf("evicted = %d", evicted)
	}
}

func TestConntrackCapacityEviction(t *testing.T) {
	ct := NewConntrack(4, 10*sim.Second)
	for i := 0; i < 8; i++ {
		ct.Observe(udp(1, 2, uint16(1000+i), 20), sim.Time(i)*sim.Time(sim.Millisecond))
	}
	if ct.Len() > 4 {
		t.Fatalf("capacity exceeded: %d", ct.Len())
	}
}

func TestNATRoundTrip(t *testing.T) {
	n := NewNAT(NATRule{
		Match:    Prefix{Net: packet.MakeIP(192, 168, 0, 0), Bits: 16},
		Public:   packet.MakeIP(4, 4, 4, 4),
		PortBase: 40000, PoolSize: 8,
	})
	p := udp(packet.MakeIP(192, 168, 1, 5), packet.MakeIP(8, 8, 8, 8), 1234, 53)
	if !n.TranslateOut(p) {
		t.Fatal("outbound should translate")
	}
	if p.IP.Src != packet.MakeIP(4, 4, 4, 4) || p.UDP.SrcPort < 40000 {
		t.Fatalf("translated to %v:%d", p.IP.Src, p.UDP.SrcPort)
	}
	// Reply toward the public address comes back to the original flow.
	reply := udp(packet.MakeIP(8, 8, 8, 8), packet.MakeIP(4, 4, 4, 4), 53, p.UDP.SrcPort)
	if !n.TranslateIn(reply) {
		t.Fatal("inbound should translate")
	}
	if reply.IP.Dst != packet.MakeIP(192, 168, 1, 5) || reply.UDP.DstPort != 1234 {
		t.Fatalf("reply to %v:%d", reply.IP.Dst, reply.UDP.DstPort)
	}
	// Non-matching traffic untouched.
	q := udp(packet.MakeIP(10, 0, 0, 1), 2, 3, 4)
	if n.TranslateOut(q) {
		t.Fatal("non-matching source must not translate")
	}
}

func TestNATPoolExhaustion(t *testing.T) {
	n := NewNAT(NATRule{
		Match:    Prefix{Net: packet.MakeIP(192, 168, 0, 0), Bits: 16},
		Public:   packet.MakeIP(4, 4, 4, 4),
		PortBase: 40000, PoolSize: 2,
	})
	for i := 0; i < 4; i++ {
		p := udp(packet.MakeIP(192, 168, 1, byte(i+1)), 2, uint16(1000+i), 53)
		n.TranslateOut(p)
	}
	if n.Flows() != 2 {
		t.Fatalf("flows = %d", n.Flows())
	}
	if n.Exhausted() != 2 {
		t.Fatalf("exhausted = %d", n.Exhausted())
	}
}

// Property: NAT out+in round-trips any matching flow back to its original
// address and port.
func TestNATRoundTripQuick(t *testing.T) {
	f := func(host uint16, sport uint16, dport uint16) bool {
		n := NewNAT(NATRule{
			Match:    Prefix{Net: packet.MakeIP(192, 168, 0, 0), Bits: 16},
			Public:   packet.MakeIP(4, 4, 4, 4),
			PortBase: 40000, PoolSize: 64,
		})
		src := packet.MakeIP(192, 168, byte(host>>8), byte(host))
		p := udp(src, packet.MakeIP(9, 9, 9, 9), sport, dport)
		if !n.TranslateOut(p) {
			return false
		}
		reply := udp(packet.MakeIP(9, 9, 9, 9), packet.MakeIP(4, 4, 4, 4), dport, p.UDP.SrcPort)
		if !n.TranslateIn(reply) {
			return false
		}
		return reply.IP.Dst == src && reply.UDP.DstPort == sport
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the compiled classifier selects exactly the rule the linear
// reference would, for random rule sets and packets.
func TestCompiledClassifierEquivalenceQuick(t *testing.T) {
	rng := sim.NewRNG(5, "classifier")
	f := func(nRules8 uint8, nPkts8 uint8) bool {
		nRules := int(nRules8%60) + 1
		rules := make([]*Rule, 0, nRules)
		for i := 0; i < nRules; i++ {
			r := &Rule{Action: ActDrop}
			if rng.Intn(2) == 0 {
				r.Action = ActAccept
			}
			switch rng.Intn(3) {
			case 0: // fast-pathable: exact proto+port
				r.Proto = Proto(packet.ProtoUDP)
				r.DstPorts = Port(uint16(1000 + rng.Intn(30)))
			case 1: // range rule (residue)
				lo := uint16(1000 + rng.Intn(20))
				r.DstPorts = Ports(lo, lo+10)
			case 2: // prefix rule (residue)
				r.SrcNet = Net(packet.MakeIP(10, byte(rng.Intn(4)), 0, 0), 16)
			}
			rules = append(rules, r)
		}
		lin := &LinearClassifier{Rules: rules}
		comp := NewCompiledClassifier(rules)
		for i := 0; i < int(nPkts8%40)+5; i++ {
			p := udp(packet.MakeIP(10, byte(rng.Intn(4)), 1, 1), 2,
				uint16(rng.Intn(3000)), uint16(1000+rng.Intn(40)))
			want, _ := lin.Classify(p)
			got, _ := comp.Classify(p)
			if want != got {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: a chain compiled to the overlay gives the same verdict as the
// software engine for random packets — the KOPI offload is semantics
// preserving.
func TestCompileOverlayEquivalenceQuick(t *testing.T) {
	chain := &Chain{Name: "OUTPUT", Policy: ActAccept, Rules: []*Rule{
		{Proto: Proto(packet.ProtoUDP), DstPorts: Port(5432),
			OwnerUID: UID(1001), OwnerCmd: "postgres", Action: ActAccept},
		{Proto: Proto(packet.ProtoUDP), DstPorts: Port(5432), Action: ActDrop},
		{SrcNet: Net(packet.MakeIP(10, 9, 0, 0), 16), Action: ActDrop},
		{Proto: Proto(packet.ProtoUDP), DstPorts: Ports(6000, 6100), Action: ActDrop},
		{EthType: Ether(packet.EtherTypeARP), Action: ActDrop},
	}}
	intern := func(cmd string) uint64 {
		if cmd == "postgres" {
			return 42
		}
		return 1
	}
	prog, err := CompileOverlay("fw", chain, intern)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}

	rng := sim.NewRNG(9, "equiv")
	f := func(seed uint16) bool {
		// Fresh engines each trial so rule counters don't alias.
		eng := NewEngine(true)
		for _, r := range chain.Rules {
			rc := *r
			rc.Packets, rc.Bytes = 0, 0
			if err := eng.Append(HookOutput, &rc); err != nil {
				return false
			}
		}
		m := overlay.NewMachine(prog)

		var p *packet.Packet
		if seed%7 == 0 {
			p = packet.NewARPRequest(packet.MAC{}, 1, 2)
		} else {
			p = udp(packet.MakeIP(10, byte(rng.Intn(16)), 1, 1), 2,
				uint16(rng.Intn(2000)), []uint16{5432, 6050, 80, 6101}[rng.Intn(4)])
			if rng.Intn(2) == 0 {
				trusted(p, 1001, "postgres", 42)
			} else if rng.Intn(2) == 0 {
				trusted(p, 1002, "script", 1)
			}
		}

		res := eng.Evaluate(HookOutput, p.Clone())
		v, _, _ := m.Run(p, overlay.NopEnv{})
		wantDrop := res.Action != ActAccept
		gotDrop := v == overlay.VerdictDrop
		return wantDrop == gotDrop
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestRuleString(t *testing.T) {
	r := &Rule{
		Proto: Proto(packet.ProtoUDP), DstPorts: Port(5432),
		OwnerUID: UID(1001), OwnerCmd: "postgres", Action: ActAccept,
	}
	s := r.String()
	for _, want := range []string{"-p 17", "--dport 5432", "--uid-owner 1001", "--cmd-owner postgres", "-j ACCEPT"} {
		if !contains(s, want) {
			t.Errorf("%q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

func TestStatefulRules(t *testing.T) {
	e := NewEngine(true)
	e.EnableConntrack(NewConntrack(64, 10*sim.Second))
	// INPUT: allow ESTABLISHED, drop the rest.
	_ = e.Append(HookInput, &Rule{State: State(StateEstablished), Action: ActAccept})
	_ = e.Append(HookInput, &Rule{Action: ActDrop})

	// Inbound-first: the flow is NEW -> dropped.
	in := udp(2, 1, 700, 800)
	if res := e.EvaluateAt(HookInput, in, 0); res.Action != ActDrop {
		t.Fatalf("unsolicited inbound should drop: %v", res.Action)
	}
	// Outbound from us creates the forward entry...
	out := udp(1, 2, 800, 700)
	if res := e.EvaluateAt(HookOutput, out, sim.Time(sim.Microsecond)); res.Action != ActAccept {
		t.Fatal("outbound passes (empty OUTPUT chain)")
	}
	// ...so the reply direction is ESTABLISHED and accepted.
	if res := e.EvaluateAt(HookInput, in, sim.Time(2*sim.Microsecond)); res.Action != ActAccept {
		t.Fatalf("reply should be established: %v", res.Action)
	}
	// A different flow is still NEW.
	other := udp(2, 1, 701, 801)
	if res := e.EvaluateAt(HookInput, other, sim.Time(3*sim.Microsecond)); res.Action != ActDrop {
		t.Fatal("other flows stay blocked")
	}
}

func TestStatefulRulesNeverMatchWithoutConntrack(t *testing.T) {
	e := NewEngine(true)
	_ = e.Append(HookInput, &Rule{State: State(StateEstablished), Action: ActAccept})
	_ = e.Append(HookInput, &Rule{Action: ActDrop})
	if res := e.Evaluate(HookInput, udp(2, 1, 7, 8)); res.Action != ActDrop {
		t.Fatal("state rules without conntrack must never match")
	}
}

func TestCompileOverlayRejectsStateRules(t *testing.T) {
	ch := &Chain{Policy: ActAccept, Rules: []*Rule{
		{State: State(StateEstablished), Action: ActAccept},
	}}
	if _, err := CompileOverlay("x", ch, nil); err == nil {
		t.Fatal("state rules must not silently compile away")
	}
}
