package overlay

import (
	"errors"
	"fmt"

	"norman/internal/packet"
	"norman/internal/sim"
)

// Runtime errors (verified programs cannot raise them except table capacity).
var (
	ErrTableFull = errors.New("overlay: table full")
)

// Trap is a typed runtime fault raised by Machine.Run: the overlay analogue
// of an eBPF program hitting a verifier-impossible state, a hardware stage
// fault, or an injected fault-model trap. Traps never panic the simulation —
// callers (the NIC pipeline) observe the error and degrade gracefully, e.g.
// by falling back to the last-good overlay chain.
type Trap struct {
	Prog   string // program name
	PC     int    // program counter at the fault, -1 for injected traps
	Reason string
}

// Error implements error.
func (t *Trap) Error() string {
	return fmt.Sprintf("overlay: trap in %q at pc %d: %s", t.Prog, t.PC, t.Reason)
}

// Env is what a program run may touch beyond the packet: the clock, the
// capture tap and the notification sink. The NIC provides one per pipeline.
type Env interface {
	// Now returns the current virtual time.
	Now() sim.Time
	// Mirror delivers a copy of the packet to the capture tap.
	Mirror(pkt *packet.Packet)
	// Notify appends a notification for the packet's owning connection.
	Notify(pkt *packet.Packet)
}

// NopEnv is an Env that discards mirrors and notifications; useful in tests
// and for programs that use neither.
type NopEnv struct{ Time sim.Time }

// Now returns the fixed time carried by the env.
func (e NopEnv) Now() sim.Time { return e.Time }

// Mirror discards the packet copy.
func (NopEnv) Mirror(*packet.Packet) {}

// Notify discards the notification.
func (NopEnv) Notify(*packet.Packet) {}

// meterState is the runtime token bucket behind a MeterSpec.
type meterState struct {
	spec   MeterSpec
	tokens float64
	last   sim.Time
}

func (m *meterState) conforms(now sim.Time, bytes uint64) bool {
	if now > m.last {
		m.tokens += now.Sub(m.last).Seconds() * m.spec.Rate
		if m.tokens > m.spec.Burst {
			m.tokens = m.spec.Burst
		}
		m.last = now
	}
	if m.tokens >= float64(bytes) {
		m.tokens -= float64(bytes)
		return true
	}
	return false
}

// Machine is a loaded program plus its runtime state (table contents, meter
// buckets, counters). One Machine corresponds to one occupied overlay slot
// on the NIC; swapping programs replaces the Machine.
type Machine struct {
	prog     *Program
	tables   []map[uint64]uint64
	meters   []meterState
	counters []uint64

	runs   uint64
	cycles uint64
	traps  uint64

	// pendingTrap, when non-empty, makes the next Run return an injected
	// Trap — the deterministic fault-injection hook (internal/faults).
	pendingTrap string
}

// NewMachine instantiates runtime state for a verified program.
func NewMachine(p *Program) *Machine {
	m := &Machine{
		prog:     p,
		tables:   make([]map[uint64]uint64, len(p.Tables)),
		meters:   make([]meterState, len(p.Meters)),
		counters: make([]uint64, len(p.Counters)),
	}
	for i := range m.tables {
		m.tables[i] = make(map[uint64]uint64, p.Tables[i].Capacity)
	}
	for i := range m.meters {
		m.meters[i] = meterState{spec: p.Meters[i], tokens: p.Meters[i].Burst}
	}
	return m
}

// Program returns the loaded program.
func (m *Machine) Program() *Program { return m.prog }

// TableInsert populates a table from the control plane (how the kernel
// injects firewall rules or connection state via MMIO, §4.4). It fails when
// the declared capacity is exhausted — the resource-exhaustion experiment
// depends on tables genuinely filling up.
func (m *Machine) TableInsert(table string, key, val uint64) error {
	idx := m.tableIndex(table)
	if idx < 0 {
		return fmt.Errorf("overlay: no table %q", table)
	}
	t := m.tables[idx]
	if _, exists := t[key]; !exists && len(t) >= m.prog.Tables[idx].Capacity {
		return fmt.Errorf("%w: %s (cap %d)", ErrTableFull, table, m.prog.Tables[idx].Capacity)
	}
	t[key] = val
	return nil
}

// TableDelete removes a key; deleting an absent key is a no-op.
func (m *Machine) TableDelete(table string, key uint64) error {
	idx := m.tableIndex(table)
	if idx < 0 {
		return fmt.Errorf("overlay: no table %q", table)
	}
	delete(m.tables[idx], key)
	return nil
}

// TableLen returns the number of entries in a table, or -1 if absent.
func (m *Machine) TableLen(table string) int {
	idx := m.tableIndex(table)
	if idx < 0 {
		return -1
	}
	return len(m.tables[idx])
}

// ShareTable makes this machine's table an alias of another machine's
// table: both see the same entries. This models how ingress and egress
// pipeline stages on a real SmartNIC reference the same SRAM block — the
// mechanism a stateful firewall needs (outbound traffic inserts connection
// state that inbound checks). The two declarations must have equal
// capacity, since they model one physical table.
func (m *Machine) ShareTable(name string, other *Machine, otherName string) error {
	i := m.tableIndex(name)
	j := other.tableIndex(otherName)
	if i < 0 || j < 0 {
		return fmt.Errorf("overlay: no such table %q/%q", name, otherName)
	}
	if m.prog.Tables[i].Capacity != other.prog.Tables[j].Capacity {
		return fmt.Errorf("overlay: shared tables must have equal capacity (%d vs %d)",
			m.prog.Tables[i].Capacity, other.prog.Tables[j].Capacity)
	}
	m.tables[i] = other.tables[j]
	return nil
}

func (m *Machine) tableIndex(name string) int {
	for i, t := range m.prog.Tables {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// Counter returns a counter's value, or 0 if absent.
func (m *Machine) Counter(name string) uint64 {
	for i, c := range m.prog.Counters {
		if c.Name == name {
			return m.counters[i]
		}
	}
	return 0
}

// Stats returns total runs and cycles executed.
func (m *Machine) Stats() (runs, cycles uint64) { return m.runs, m.cycles }

// Traps returns how many runs ended in a trap.
func (m *Machine) Traps() uint64 { return m.traps }

// InjectTrap arms a one-shot runtime trap: the next Run returns a Trap with
// the given reason instead of executing. Deterministic fault injection uses
// this to model transient stage faults without corrupting program state.
func (m *Machine) InjectTrap(reason string) {
	if reason == "" {
		reason = "injected trap"
	}
	m.pendingTrap = reason
}

// loadField reads a packet/metadata field.
func loadField(p *packet.Packet, f Field, now sim.Time) uint64 {
	switch f {
	case FSrcIP:
		if p.IP != nil {
			return uint64(p.IP.Src)
		}
	case FDstIP:
		if p.IP != nil {
			return uint64(p.IP.Dst)
		}
	case FSrcPort:
		if p.UDP != nil {
			return uint64(p.UDP.SrcPort)
		}
		if p.TCP != nil {
			return uint64(p.TCP.SrcPort)
		}
	case FDstPort:
		if p.UDP != nil {
			return uint64(p.UDP.DstPort)
		}
		if p.TCP != nil {
			return uint64(p.TCP.DstPort)
		}
	case FProto:
		if p.IP != nil {
			return uint64(p.IP.Proto)
		}
	case FLen:
		return uint64(p.FrameLen())
	case FEthType:
		return uint64(p.Eth.Type)
	case FARPOp:
		if p.ARP != nil {
			return uint64(p.ARP.Op)
		}
	case FTOS:
		if p.IP != nil {
			return uint64(p.IP.TOS)
		}
	case FTCPFlags:
		if p.TCP != nil {
			return uint64(p.TCP.Flags)
		}
	case FUID:
		if p.Meta.TrustedMeta {
			return uint64(p.Meta.UID)
		}
	case FPID:
		if p.Meta.TrustedMeta {
			return uint64(p.Meta.PID)
		}
	case FCmdID:
		if p.Meta.TrustedMeta {
			return uint64(p.Meta.CommandID)
		}
	case FConn:
		return p.Meta.ConnID
	case FMark:
		return uint64(p.Meta.Mark)
	case FClass:
		return uint64(p.Meta.Class)
	case FTimeNS:
		return uint64(now) / 1000
	}
	return 0
}

// Run executes the program on a packet and returns the verdict, the cost in
// overlay cycles, and a non-nil *Trap error if the run faulted. Verified
// programs always terminate; a structurally impossible state (which would
// indicate a verifier bug, bit-flipped program SRAM, or an injected fault)
// surfaces as a Trap rather than a panic, so one bad program can never wedge
// the whole dataplane — the caller decides how to degrade.
func (m *Machine) Run(p *packet.Packet, env Env) (verdict Verdict, cost int, err error) {
	if m.pendingTrap != "" {
		reason := m.pendingTrap
		m.pendingTrap = ""
		m.traps++
		return VerdictPass, 0, &Trap{Prog: m.prog.Name, PC: -1, Reason: reason}
	}
	var regs [NumRegs]uint64
	now := env.Now()
	pc := 0
	code := m.prog.Code
	// Safety net for states the verifier is supposed to exclude (bad table
	// index, register overflow in an unexpected place): convert any runtime
	// panic below into a typed Trap so the run path never crashes callers.
	defer func() {
		if r := recover(); r != nil {
			m.traps++
			verdict = VerdictPass
			err = &Trap{Prog: m.prog.Name, PC: pc, Reason: fmt.Sprint(r)}
		}
	}()
	for {
		if pc >= len(code) {
			m.traps++
			return VerdictPass, cost, &Trap{Prog: m.prog.Name, PC: pc, Reason: "program fell off end"}
		}
		in := code[pc]
		cost += in.Cost()

		operand := func() uint64 {
			if in.Imm {
				return in.Val
			}
			return regs[in.B]
		}

		switch in.Op {
		case OpNop:
		case OpLdf:
			regs[in.A] = loadField(p, in.F, now)
		case OpLdi:
			regs[in.A] = in.Val
		case OpMov:
			regs[in.A] = regs[in.B]
		case OpAdd:
			regs[in.A] += operand()
		case OpSub:
			regs[in.A] -= operand()
		case OpAnd:
			regs[in.A] &= operand()
		case OpOr:
			regs[in.A] |= operand()
		case OpXor:
			regs[in.A] ^= operand()
		case OpShl:
			regs[in.A] <<= operand() & 63
		case OpShr:
			regs[in.A] >>= operand() & 63
		case OpJmp:
			pc = in.Target
			continue
		case OpJeq, OpJne, OpJlt, OpJle, OpJgt, OpJge:
			a, b := regs[in.A], operand()
			take := false
			switch in.Op {
			case OpJeq:
				take = a == b
			case OpJne:
				take = a != b
			case OpJlt:
				take = a < b
			case OpJle:
				take = a <= b
			case OpJgt:
				take = a > b
			case OpJge:
				take = a >= b
			}
			if take {
				pc = in.Target
				continue
			}
		case OpLookup:
			v, ok := m.tables[in.Index][regs[in.B]]
			if !ok {
				pc = in.Target
				continue
			}
			regs[in.A] = v
		case OpUpdate:
			t := m.tables[in.Index]
			key := regs[in.A]
			if _, exists := t[key]; exists || len(t) < m.prog.Tables[in.Index].Capacity {
				t[key] = regs[in.B]
			}
			// A full table silently refuses dataplane inserts, as
			// hardware match-action tables do.
		case OpMeter:
			if m.meters[in.Index].conforms(now, regs[in.B]) {
				regs[in.A] = 1
			} else {
				regs[in.A] = 0
			}
		case OpSetf:
			switch in.F {
			case FMark:
				p.Meta.Mark = uint32(regs[in.B])
			case FClass:
				p.Meta.Class = uint32(regs[in.B])
			}
		case OpCount:
			m.counters[in.Index]++
		case OpMirror:
			env.Mirror(p)
		case OpNotify:
			env.Notify(p)
		case OpPass:
			m.runs++
			m.cycles += uint64(cost)
			return VerdictPass, cost, nil
		case OpDrop:
			m.runs++
			m.cycles += uint64(cost)
			return VerdictDrop, cost, nil
		}
		pc++
	}
}
