package overlay

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses overlay assembly text into a verified Program.
//
// Syntax, one statement per line; '#' starts a comment:
//
//	.table  <name> <capacity>          declare exact-match table
//	.meter  <name> <rate_Bps> <burst_B> declare token-bucket meter
//	.counter <name>                    declare counter
//	<label>:                           define jump label
//	ldf   rD, <field>                  load packet field
//	ldi   rD, <imm>                    load immediate (0x.. or decimal)
//	mov   rD, rS
//	add|sub|and|or|xor|shl|shr rD, rS|imm
//	jmp   <label>
//	jeq|jne|jlt|jle|jgt|jge rA, rB|imm, <label>
//	lookup rD, <table>, rKey, <miss-label>
//	update <table>, rKey, rV
//	meter  rD, <meter>, rLen
//	setf  <field>, rS
//	count <counter>
//	mirror | notify | pass | drop | nop
//
// Labels must be defined after every jump that references them (forward-only
// control flow); Assemble enforces this and runs the full verifier before
// returning.
func Assemble(name, src string) (*Program, error) {
	p := &Program{Name: name, labels: map[string]int{}}
	tables := map[string]int{}
	meters := map[string]int{}
	counters := map[string]int{}

	type fixup struct {
		inst  int
		label string
		line  int
	}
	var fixups []fixup

	lineNo := 0
	for _, raw := range strings.Split(src, "\n") {
		lineNo++
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}

		// Directives.
		if strings.HasPrefix(line, ".") {
			f := strings.Fields(line)
			switch f[0] {
			case ".table":
				if len(f) != 3 {
					return nil, asmErr(lineNo, ".table wants <name> <capacity>")
				}
				capacity, err := strconv.Atoi(f[2])
				if err != nil || capacity <= 0 {
					return nil, asmErr(lineNo, "bad table capacity %q", f[2])
				}
				if _, dup := tables[f[1]]; dup {
					return nil, asmErr(lineNo, "duplicate table %q", f[1])
				}
				tables[f[1]] = len(p.Tables)
				p.Tables = append(p.Tables, TableSpec{Name: f[1], Capacity: capacity})
			case ".meter":
				if len(f) != 4 {
					return nil, asmErr(lineNo, ".meter wants <name> <rate_Bps> <burst_B>")
				}
				rate, err1 := strconv.ParseFloat(f[2], 64)
				burst, err2 := strconv.ParseFloat(f[3], 64)
				if err1 != nil || err2 != nil || rate <= 0 || burst <= 0 {
					return nil, asmErr(lineNo, "bad meter parameters")
				}
				if _, dup := meters[f[1]]; dup {
					return nil, asmErr(lineNo, "duplicate meter %q", f[1])
				}
				meters[f[1]] = len(p.Meters)
				p.Meters = append(p.Meters, MeterSpec{Name: f[1], Rate: rate, Burst: burst})
			case ".counter":
				if len(f) != 2 {
					return nil, asmErr(lineNo, ".counter wants <name>")
				}
				if _, dup := counters[f[1]]; dup {
					return nil, asmErr(lineNo, "duplicate counter %q", f[1])
				}
				counters[f[1]] = len(p.Counters)
				p.Counters = append(p.Counters, CounterSpec{Name: f[1]})
			default:
				return nil, asmErr(lineNo, "unknown directive %q", f[0])
			}
			continue
		}

		// Label definitions.
		if strings.HasSuffix(line, ":") {
			label := strings.TrimSuffix(line, ":")
			if !validIdent(label) {
				return nil, asmErr(lineNo, "bad label %q", label)
			}
			if _, dup := p.labels[label]; dup {
				return nil, asmErr(lineNo, "duplicate label %q", label)
			}
			p.labels[label] = len(p.Code)
			continue
		}

		// Instructions.
		mn, rest, _ := strings.Cut(line, " ")
		args := splitArgs(rest)
		in := Inst{Target: -1}

		regOf := func(s string) (uint8, error) {
			if !strings.HasPrefix(s, "r") {
				return 0, fmt.Errorf("expected register, got %q", s)
			}
			n, err := strconv.Atoi(s[1:])
			if err != nil || n < 0 || n >= NumRegs {
				return 0, fmt.Errorf("bad register %q", s)
			}
			return uint8(n), nil
		}
		immOf := func(s string) (uint64, error) {
			return strconv.ParseUint(strings.TrimPrefix(s, "0x"), base(s), 64)
		}
		fieldOf := func(s string) (Field, error) {
			for f, n := range fieldNames {
				if n == s {
					return f, nil
				}
			}
			return 0, fmt.Errorf("unknown field %q", s)
		}
		// regOrImm fills B or Imm+Val from an operand.
		regOrImm := func(s string) error {
			if strings.HasPrefix(s, "r") {
				if r, err := regOf(s); err == nil {
					in.B = r
					return nil
				}
			}
			v, err := immOf(s)
			if err != nil {
				return fmt.Errorf("operand %q is neither register nor immediate", s)
			}
			in.Imm = true
			in.Val = v
			return nil
		}

		var err error
		switch mn {
		case "nop":
			in.Op = OpNop
		case "pass":
			in.Op = OpPass
		case "drop":
			in.Op = OpDrop
		case "mirror":
			in.Op = OpMirror
		case "notify":
			in.Op = OpNotify
		case "ldf":
			in.Op = OpLdf
			if len(args) != 2 {
				return nil, asmErr(lineNo, "ldf wants rD, <field>")
			}
			if in.A, err = regOf(args[0]); err == nil {
				in.F, err = fieldOf(args[1])
			}
		case "ldi":
			in.Op = OpLdi
			if len(args) != 2 {
				return nil, asmErr(lineNo, "ldi wants rD, <imm>")
			}
			if in.A, err = regOf(args[0]); err == nil {
				in.Val, err = immOf(args[1])
			}
		case "mov":
			in.Op = OpMov
			if len(args) != 2 {
				return nil, asmErr(lineNo, "mov wants rD, rS")
			}
			if in.A, err = regOf(args[0]); err == nil {
				in.B, err = regOf(args[1])
			}
		case "add", "sub", "and", "or", "xor", "shl", "shr":
			in.Op = map[string]Op{"add": OpAdd, "sub": OpSub, "and": OpAnd,
				"or": OpOr, "xor": OpXor, "shl": OpShl, "shr": OpShr}[mn]
			if len(args) != 2 {
				return nil, asmErr(lineNo, "%s wants rD, rS|imm", mn)
			}
			if in.A, err = regOf(args[0]); err == nil {
				err = regOrImm(args[1])
			}
		case "jmp":
			in.Op = OpJmp
			if len(args) != 1 {
				return nil, asmErr(lineNo, "jmp wants <label>")
			}
			fixups = append(fixups, fixup{len(p.Code), args[0], lineNo})
		case "jeq", "jne", "jlt", "jle", "jgt", "jge":
			in.Op = map[string]Op{"jeq": OpJeq, "jne": OpJne, "jlt": OpJlt,
				"jle": OpJle, "jgt": OpJgt, "jge": OpJge}[mn]
			if len(args) != 3 {
				return nil, asmErr(lineNo, "%s wants rA, rB|imm, <label>", mn)
			}
			if in.A, err = regOf(args[0]); err == nil {
				err = regOrImm(args[1])
			}
			fixups = append(fixups, fixup{len(p.Code), args[2], lineNo})
		case "lookup":
			in.Op = OpLookup
			if len(args) != 4 {
				return nil, asmErr(lineNo, "lookup wants rD, <table>, rKey, <miss-label>")
			}
			if in.A, err = regOf(args[0]); err == nil {
				idx, ok := tables[args[1]]
				if !ok {
					return nil, asmErr(lineNo, "unknown table %q", args[1])
				}
				in.Index = idx
				in.B, err = regOf(args[2])
			}
			fixups = append(fixups, fixup{len(p.Code), args[3], lineNo})
		case "update":
			in.Op = OpUpdate
			if len(args) != 3 {
				return nil, asmErr(lineNo, "update wants <table>, rKey, rV")
			}
			idx, ok := tables[args[0]]
			if !ok {
				return nil, asmErr(lineNo, "unknown table %q", args[0])
			}
			in.Index = idx
			if in.A, err = regOf(args[1]); err == nil {
				in.B, err = regOf(args[2])
			}
		case "meter":
			in.Op = OpMeter
			if len(args) != 3 {
				return nil, asmErr(lineNo, "meter wants rD, <meter>, rLen")
			}
			if in.A, err = regOf(args[0]); err == nil {
				idx, ok := meters[args[1]]
				if !ok {
					return nil, asmErr(lineNo, "unknown meter %q", args[1])
				}
				in.Index = idx
				in.B, err = regOf(args[2])
			}
		case "setf":
			in.Op = OpSetf
			if len(args) != 2 {
				return nil, asmErr(lineNo, "setf wants <field>, rS")
			}
			if in.F, err = fieldOf(args[0]); err == nil {
				if !in.F.Writable() {
					return nil, asmErr(lineNo, "field %s is read-only", in.F)
				}
				in.B, err = regOf(args[1])
			}
		case "count":
			in.Op = OpCount
			if len(args) != 1 {
				return nil, asmErr(lineNo, "count wants <counter>")
			}
			idx, ok := counters[args[0]]
			if !ok {
				return nil, asmErr(lineNo, "unknown counter %q", args[0])
			}
			in.Index = idx
		default:
			return nil, asmErr(lineNo, "unknown mnemonic %q", mn)
		}
		if err != nil {
			return nil, asmErr(lineNo, "%v", err)
		}
		p.Code = append(p.Code, in)
	}

	// Resolve jump targets.
	for _, fx := range fixups {
		target, ok := p.labels[fx.label]
		if !ok {
			return nil, asmErr(fx.line, "undefined label %q", fx.label)
		}
		p.Code[fx.inst].Target = target
	}

	if err := Verify(p); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return p, nil
}

func asmErr(line int, format string, args ...interface{}) error {
	return fmt.Errorf("overlay asm line %d: %s", line, fmt.Sprintf(format, args...))
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func base(s string) int {
	if strings.HasPrefix(s, "0x") {
		return 16
	}
	return 10
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Disassemble renders the program back to assembly (labels synthesized from
// target indices). Round-tripping through Assemble yields an equivalent
// program; the tests rely on this.
func Disassemble(p *Program) string {
	var b strings.Builder
	for _, t := range p.Tables {
		fmt.Fprintf(&b, ".table %s %d\n", t.Name, t.Capacity)
	}
	for _, m := range p.Meters {
		fmt.Fprintf(&b, ".meter %s %g %g\n", m.Name, m.Rate, m.Burst)
	}
	for _, c := range p.Counters {
		fmt.Fprintf(&b, ".counter %s\n", c.Name)
	}
	// Collect jump targets needing labels.
	targets := map[int]string{}
	for _, in := range p.Code {
		if in.Target >= 0 {
			if _, ok := targets[in.Target]; !ok {
				targets[in.Target] = fmt.Sprintf("L%d", in.Target)
			}
		}
	}
	for i, in := range p.Code {
		if lbl, ok := targets[i]; ok {
			fmt.Fprintf(&b, "%s:\n", lbl)
		}
		b.WriteString("\t")
		b.WriteString(disasmInst(p, in, targets))
		b.WriteString("\n")
	}
	// A trailing label (jump to end).
	if lbl, ok := targets[len(p.Code)]; ok {
		fmt.Fprintf(&b, "%s:\n\tpass\n", lbl)
	}
	return b.String()
}

func disasmInst(p *Program, in Inst, targets map[int]string) string {
	reg := func(r uint8) string { return fmt.Sprintf("r%d", r) }
	bOrImm := func() string {
		if in.Imm {
			return strconv.FormatUint(in.Val, 10)
		}
		return reg(in.B)
	}
	switch in.Op {
	case OpNop, OpPass, OpDrop, OpMirror, OpNotify:
		return in.Op.String()
	case OpLdf:
		return fmt.Sprintf("ldf %s, %s", reg(in.A), in.F)
	case OpLdi:
		return fmt.Sprintf("ldi %s, %d", reg(in.A), in.Val)
	case OpMov:
		return fmt.Sprintf("mov %s, %s", reg(in.A), reg(in.B))
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr:
		return fmt.Sprintf("%s %s, %s", in.Op, reg(in.A), bOrImm())
	case OpJmp:
		return fmt.Sprintf("jmp %s", targets[in.Target])
	case OpJeq, OpJne, OpJlt, OpJle, OpJgt, OpJge:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, reg(in.A), bOrImm(), targets[in.Target])
	case OpLookup:
		return fmt.Sprintf("lookup %s, %s, %s, %s", reg(in.A), p.Tables[in.Index].Name, reg(in.B), targets[in.Target])
	case OpUpdate:
		return fmt.Sprintf("update %s, %s, %s", p.Tables[in.Index].Name, reg(in.A), reg(in.B))
	case OpMeter:
		return fmt.Sprintf("meter %s, %s, %s", reg(in.A), p.Meters[in.Index].Name, reg(in.B))
	case OpSetf:
		return fmt.Sprintf("setf %s, %s", in.F, reg(in.B))
	case OpCount:
		return fmt.Sprintf("count %s", p.Counters[in.Index].Name)
	default:
		return in.Op.String()
	}
}
