package overlay

import "testing"

func TestChainStagesRunInOrder(t *testing.T) {
	fw := mustAssemble(t, `
ldf r0, dst_port
jne r0, 80, ok
drop
ok:
pass
`)
	telemetry := mustAssemble(t, `
.counter seen
count seen
mirror
pass
`)
	combined, err := Chain("fw+telemetry", fw, telemetry)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(combined)
	mirrored := 0
	env := &recEnv{onMirror: func() { mirrored++ }, onNotify: func() {}}

	// Dropped by stage 1: stage 2 never runs.
	if v, _, _ := m.Run(udp(1, 80, 0), env); v != VerdictDrop {
		t.Fatal("stage 1 drop must be final")
	}
	if m.Counter("s1.seen") != 0 || mirrored != 0 {
		t.Fatal("stage 2 must not run after a drop")
	}
	// Passed by stage 1: stage 2 counts and mirrors.
	if v, _, _ := m.Run(udp(1, 443, 0), env); v != VerdictPass {
		t.Fatal("pass flows through both stages")
	}
	if m.Counter("s1.seen") != 1 || mirrored != 1 {
		t.Fatalf("stage 2 side effects: seen=%d mirrored=%d", m.Counter("s1.seen"), mirrored)
	}
}

func TestChainNamespacesState(t *testing.T) {
	a := mustAssemble(t, `
.counter c
count c
pass
`)
	b := mustAssemble(t, `
.counter c
count c
count c
pass
`)
	combined, err := Chain("ab", a, b)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(combined)
	m.Run(udp(1, 2, 0), NopEnv{})
	if m.Counter("s0.c") != 1 || m.Counter("s1.c") != 2 {
		t.Fatalf("namespacing: s0.c=%d s1.c=%d", m.Counter("s0.c"), m.Counter("s1.c"))
	}
}

func TestChainWithTables(t *testing.T) {
	gate := mustAssemble(t, `
.table allow 8
ldf r0, conn
lookup r1, allow, r0, miss
pass
miss:
drop
`)
	mark := mustAssemble(t, `
ldi r0, 5
setf class, r0
pass
`)
	combined, err := Chain("gate+mark", gate, mark)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(combined)
	if err := m.TableInsert("s0.allow", 7, 1); err != nil {
		t.Fatal(err)
	}
	p := udp(1, 2, 0)
	p.Meta.ConnID = 7
	if v, _, _ := m.Run(p, NopEnv{}); v != VerdictPass {
		t.Fatal("allowed conn passes")
	}
	if p.Meta.Class != 5 {
		t.Fatal("second stage must have run")
	}
	q := udp(1, 2, 0)
	q.Meta.ConnID = 9
	if v, _, _ := m.Run(q, NopEnv{}); v != VerdictDrop {
		t.Fatal("unknown conn drops at stage 1")
	}
	if q.Meta.Class != 0 {
		t.Fatal("stage 2 must not touch dropped packets")
	}
}

func TestChainSingleAndEmpty(t *testing.T) {
	p := mustAssemble(t, "pass\n")
	same, err := Chain("one", p)
	if err != nil || same != p {
		t.Fatalf("single-stage chain is the stage itself: %v", err)
	}
	if _, err := Chain("none"); err == nil {
		t.Fatal("empty chain must error")
	}
}

// TestChainVerifies: the composed program passes the verifier even with
// forward jumps inside stages.
func TestChainVerifies(t *testing.T) {
	s1 := mustAssemble(t, `
ldf r0, proto
jeq r0, 17, u
pass
u:
ldf r1, len
jgt r1, 1000, big
pass
big:
drop
`)
	s2 := mustAssemble(t, `
.meter m 1000000 15000
ldf r0, len
meter r1, m, r0
jeq r1, 1, ok
drop
ok:
pass
`)
	combined, err := Chain("multi", s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(combined); err != nil {
		t.Fatal(err)
	}
	m := NewMachine(combined)
	if v, _, _ := m.Run(udp(1, 2, 100), NopEnv{}); v != VerdictPass {
		t.Fatal("small packet passes both stages")
	}
}
