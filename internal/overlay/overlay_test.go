package overlay

import (
	"errors"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"norman/internal/packet"
	"norman/internal/sim"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble("test", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func udp(sport, dport uint16, payload int) *packet.Packet {
	p := packet.NewUDP(packet.MAC{}, packet.MAC{}, packet.MakeIP(10, 0, 0, 1),
		packet.MakeIP(10, 0, 0, 2), sport, dport, payload)
	return p
}

func TestAssembleAndRunDropByPort(t *testing.T) {
	prog := mustAssemble(t, `
# drop UDP destined to 5432 unless from uid 1001
ldf r0, dst_port
jne r0, 5432, ok
ldf r1, uid
jeq r1, 1001, ok
drop
ok:
pass
`)
	m := NewMachine(prog)

	p := udp(1, 5432, 10)
	if v, _, _ := m.Run(p, NopEnv{}); v != VerdictDrop {
		t.Fatal("untrusted packet to 5432 should drop")
	}
	p.Meta.UID = 1001
	p.Meta.TrustedMeta = true
	if v, _, _ := m.Run(p, NopEnv{}); v != VerdictPass {
		t.Fatal("owner's packet should pass")
	}
	other := udp(1, 80, 10)
	if v, _, _ := m.Run(other, NopEnv{}); v != VerdictPass {
		t.Fatal("other ports should pass")
	}
	if runs, cycles := m.Stats(); runs != 3 || cycles == 0 {
		t.Fatalf("stats: %d runs %d cycles", runs, cycles)
	}
}

func TestArithmeticAndFields(t *testing.T) {
	prog := mustAssemble(t, `
ldf r0, len
ldi r1, 2
shl r0, r1      # len * 4
add r0, 100
ldi r2, 340     # (60*4)+100 for a minimum frame
jeq r0, r2, yes
drop
yes:
pass
`)
	m := NewMachine(prog)
	if v, _, _ := m.Run(udp(1, 2, 0), NopEnv{}); v != VerdictPass {
		t.Fatal("arithmetic mismatch")
	}
}

func TestTablesLookupUpdate(t *testing.T) {
	prog := mustAssemble(t, `
.table seen 4
ldf r0, src_port
lookup r1, seen, r0, miss
pass
miss:
ldi r2, 1
update seen, r0, r2
drop
`)
	m := NewMachine(prog)
	p := udp(7, 8, 0)
	if v, _, _ := m.Run(p, NopEnv{}); v != VerdictDrop {
		t.Fatal("first packet misses the table")
	}
	if v, _, _ := m.Run(p, NopEnv{}); v != VerdictPass {
		t.Fatal("second packet should hit the dataplane-inserted entry")
	}
	if m.TableLen("seen") != 1 {
		t.Fatalf("table len = %d", m.TableLen("seen"))
	}
	// Dataplane inserts silently stop at capacity.
	for i := 0; i < 10; i++ {
		m.Run(udp(uint16(100+i), 8, 0), NopEnv{})
	}
	if m.TableLen("seen") != 4 {
		t.Fatalf("table should cap at 4, got %d", m.TableLen("seen"))
	}
}

func TestControlPlaneTableInsert(t *testing.T) {
	prog := mustAssemble(t, `
.table t 2
ldf r0, conn
lookup r1, t, r0, miss
pass
miss:
drop
`)
	m := NewMachine(prog)
	if err := m.TableInsert("t", 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := m.TableInsert("t", 2, 20); err != nil {
		t.Fatal(err)
	}
	if err := m.TableInsert("t", 3, 30); !errors.Is(err, ErrTableFull) {
		t.Fatalf("want ErrTableFull, got %v", err)
	}
	// Updating an existing key is always allowed.
	if err := m.TableInsert("t", 1, 99); err != nil {
		t.Fatal(err)
	}
	if err := m.TableDelete("t", 1); err != nil {
		t.Fatal(err)
	}
	if err := m.TableInsert("t", 3, 30); err != nil {
		t.Fatal(err)
	}
}

func TestMeterShapesRate(t *testing.T) {
	// 1000 bytes/sec, burst 100 bytes.
	prog := mustAssemble(t, `
.meter m 1000 100
ldf r0, len
meter r1, m, r0
jeq r1, 1, ok
drop
ok:
pass
`)
	m := NewMachine(prog)
	p := udp(1, 2, 18) // 60-byte frame
	env := NopEnv{Time: 0}
	// Burst allows one 60B frame; the second exceeds the bucket.
	if v, _, _ := m.Run(p, env); v != VerdictPass {
		t.Fatal("first frame within burst")
	}
	if v, _, _ := m.Run(p, env); v != VerdictDrop {
		t.Fatal("second frame should exceed the bucket")
	}
	// After 100ms, 100 bytes accrue: one more frame fits.
	env.Time = sim.Time(100 * sim.Millisecond)
	if v, _, _ := m.Run(p, env); v != VerdictPass {
		t.Fatal("bucket should refill over time")
	}
}

func TestCountersMirrorNotify(t *testing.T) {
	prog := mustAssemble(t, `
.counter c
count c
mirror
notify
pass
`)
	m := NewMachine(prog)
	var mirrored, notified int
	env := &recEnv{onMirror: func() { mirrored++ }, onNotify: func() { notified++ }}
	m.Run(udp(1, 2, 0), env)
	m.Run(udp(1, 2, 0), env)
	if m.Counter("c") != 2 || mirrored != 2 || notified != 2 {
		t.Fatalf("c=%d mirrored=%d notified=%d", m.Counter("c"), mirrored, notified)
	}
}

type recEnv struct {
	onMirror func()
	onNotify func()
}

func (e *recEnv) Now() sim.Time         { return 0 }
func (e *recEnv) Mirror(*packet.Packet) { e.onMirror() }
func (e *recEnv) Notify(*packet.Packet) { e.onNotify() }

func TestSetfWritesMetadata(t *testing.T) {
	prog := mustAssemble(t, `
ldi r0, 7
setf mark, r0
ldi r1, 3
setf class, r1
pass
`)
	m := NewMachine(prog)
	p := udp(1, 2, 0)
	m.Run(p, NopEnv{})
	if p.Meta.Mark != 7 || p.Meta.Class != 3 {
		t.Fatalf("mark=%d class=%d", p.Meta.Mark, p.Meta.Class)
	}
}

func TestVerifierRejectsBackwardJump(t *testing.T) {
	p := &Program{Code: []Inst{
		{Op: OpNop},
		{Op: OpJmp, Target: 0},
		{Op: OpPass},
	}}
	if err := Verify(p); !errors.Is(err, ErrBackwardJump) {
		t.Fatalf("want backward-jump error, got %v", err)
	}
}

func TestVerifierRejectsUninitRegister(t *testing.T) {
	_, err := Assemble("t", "mov r0, r1\npass\n")
	if !errors.Is(err, ErrUninitReg) {
		t.Fatalf("want uninit error, got %v", err)
	}
	// Lookup miss path must treat rD as uninitialized.
	_, err = Assemble("t", `
.table t 4
ldf r0, conn
lookup r1, t, r0, miss
pass
miss:
mov r2, r1
drop
`)
	if !errors.Is(err, ErrUninitReg) {
		t.Fatalf("lookup miss path must not leak rD: %v", err)
	}
}

func TestVerifierRejectsFallOffEnd(t *testing.T) {
	_, err := Assemble("t", "ldi r0, 1\n")
	if !errors.Is(err, ErrFallOffEnd) {
		t.Fatalf("want fall-off-end, got %v", err)
	}
}

func TestVerifierAcceptsBranchInit(t *testing.T) {
	// r1 initialized on both paths before use.
	src := `
ldf r0, proto
jeq r0, 17, a
ldi r1, 1
jmp join
a:
ldi r1, 2
join:
jeq r1, 1, yes
drop
yes:
pass
`
	if _, err := Assemble("t", src); err != nil {
		t.Fatalf("both-paths-init should verify: %v", err)
	}
}

func TestVerifierRejectsOnePathInit(t *testing.T) {
	src := `
ldf r0, proto
jeq r0, 17, skip
ldi r1, 1
skip:
jeq r1, 1, yes
drop
yes:
pass
`
	if _, err := Assemble("t", src); !errors.Is(err, ErrUninitReg) {
		t.Fatalf("one-path init must fail: %v", err)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r0, r1\npass",                  // unknown mnemonic
		"ldf r99, proto\npass",                // bad register
		"ldf r0, nosuchfield\npass",           // bad field
		"jmp nowhere\npass",                   // undefined label
		".table t\npass",                      // malformed directive
		"setf proto, r0\npass",                // read-only field
		"lookup r0, t, r1, l\npass\nl:\ndrop", // undeclared table
	}
	for _, src := range cases {
		if _, err := Assemble("t", src); err == nil {
			t.Errorf("should fail: %q", src)
		}
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
.table flows 16
.meter lim 1000000 15000
.counter hits
ldf r0, dst_port
jne r0, 443, out
ldf r1, len
meter r2, lim, r1
jeq r2, 0, out
count hits
lookup r3, flows, r0, out
setf class, r3
mirror
pass
out:
drop
`
	p1 := mustAssemble(t, src)
	p2, err := Assemble("rt", Disassemble(p1))
	if err != nil {
		t.Fatalf("reassemble: %v", err)
	}
	if len(p1.Code) != len(p2.Code) {
		t.Fatalf("length changed: %d vs %d", len(p1.Code), len(p2.Code))
	}
	for i := range p1.Code {
		a, b := p1.Code[i], p2.Code[i]
		if a.Op != b.Op || a.A != b.A || a.B != b.B || a.Imm != b.Imm ||
			a.Val != b.Val || a.Target != b.Target || a.Index != b.Index || a.F != b.F {
			t.Fatalf("inst %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestSRAMBytes(t *testing.T) {
	p := mustAssemble(t, `
.table t 100
.meter m 1 1
.counter c
pass
`)
	want := 1*8 + 100*16 + 32 + 8
	if got := p.SRAMBytes(); got != want {
		t.Fatalf("SRAMBytes = %d, want %d", got, want)
	}
}

// Property: every verified random straight-line program terminates and
// returns a verdict without panicking, in at most len(Code) steps of cost
// accumulation.
func TestRandomProgramsTerminateQuick(t *testing.T) {
	ops := []string{"ldi r%d, %d", "ldf r%d, len", "add r%d, %d", "xor r%d, %d", "nop"}
	rng := sim.NewRNG(3, "fuzz")
	f := func(seed uint32) bool {
		var b strings.Builder
		n := 1 + int(seed%20)
		for i := 0; i < n; i++ {
			op := ops[rng.Intn(len(ops))]
			switch strings.Count(op, "%d") {
			case 2:
				b.WriteString(strings.Replace(strings.Replace(op, "%d", itoa(rng.Intn(4)), 1), "%d", itoa(rng.Intn(1000)), 1))
			case 1:
				b.WriteString(strings.Replace(op, "%d", itoa(rng.Intn(4)), 1))
			default:
				b.WriteString(op)
			}
			b.WriteString("\n")
		}
		// Initialize r0..r3 up front so arithmetic verifies.
		src := "ldi r0, 0\nldi r1, 0\nldi r2, 0\nldi r3, 0\n" + b.String() + "pass\n"
		p, err := Assemble("fuzz", src)
		if err != nil {
			return false
		}
		m := NewMachine(p)
		v, cost, _ := m.Run(udp(1, 2, 64), NopEnv{})
		return (v == VerdictPass) && cost > 0 && cost <= len(p.Code)*8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
