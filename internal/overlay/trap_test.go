package overlay

import (
	"errors"
	"strings"
	"testing"
)

// TestRunFallOffEndTraps covers the graceful-degradation contract for a
// program the verifier should have rejected: Run returns a typed Trap (fail
// open, VerdictPass), never panics.
func TestRunFallOffEndTraps(t *testing.T) {
	p := &Program{Name: "bad", Code: []Inst{{Op: OpNop}}} // no terminal
	m := NewMachine(p)
	v, _, err := m.Run(udp(1, 2, 0), NopEnv{})
	if v != VerdictPass {
		t.Fatalf("trapped run must fail open, got %v", v)
	}
	var trap *Trap
	if !errors.As(err, &trap) {
		t.Fatalf("want *Trap, got %v", err)
	}
	if trap.Prog != "bad" || trap.PC != 1 || !strings.Contains(trap.Reason, "fell off end") {
		t.Fatalf("trap = %+v", trap)
	}
	if m.Traps() != 1 {
		t.Fatalf("Traps() = %d", m.Traps())
	}
}

// TestInjectTrapOneShot checks the fault-injection hook: exactly the next
// Run traps with the given reason, then the machine is healthy again.
func TestInjectTrapOneShot(t *testing.T) {
	m := NewMachine(mustAssemble(t, "pass\n"))
	m.InjectTrap("stage fault")

	v, cost, err := m.Run(udp(1, 2, 0), NopEnv{})
	var trap *Trap
	if !errors.As(err, &trap) {
		t.Fatalf("want injected *Trap, got %v", err)
	}
	if v != VerdictPass || cost != 0 {
		t.Fatalf("injected trap must fail open for free: %v %d", v, cost)
	}
	if trap.PC != -1 || trap.Reason != "stage fault" {
		t.Fatalf("trap = %+v", trap)
	}

	if _, _, err := m.Run(udp(1, 2, 0), NopEnv{}); err != nil {
		t.Fatalf("trap must be one-shot, second run errored: %v", err)
	}
	if m.Traps() != 1 {
		t.Fatalf("Traps() = %d", m.Traps())
	}
}

// TestInjectTrapDefaultReason checks the empty-reason default.
func TestInjectTrapDefaultReason(t *testing.T) {
	m := NewMachine(mustAssemble(t, "pass\n"))
	m.InjectTrap("")
	_, _, err := m.Run(udp(1, 2, 0), NopEnv{})
	var trap *Trap
	if !errors.As(err, &trap) || trap.Reason != "injected trap" {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "injected trap") {
		t.Fatalf("Error() = %q", err.Error())
	}
}
