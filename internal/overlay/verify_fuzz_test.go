package overlay

import (
	"encoding/binary"
	"testing"
)

// TestVerifyRejectsMalformed is the table half of the verifier hardening:
// every malformed or truncated program shape we know of must come back as an
// error — never a panic, and never a pass.
func TestVerifyRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		p    *Program
	}{
		{"nil program", nil},
		{"empty code", &Program{}},
		{"too long", &Program{Code: make([]Inst, MaxProgramLen+1)}},
		{"self jump", &Program{Code: []Inst{
			{Op: OpJmp, Target: 0},
			{Op: OpPass},
		}}},
		{"backward jump", &Program{Code: []Inst{
			{Op: OpLdi, A: 0, Val: 1},
			{Op: OpJmp, Target: 0},
			{Op: OpPass},
		}}},
		{"jump past end", &Program{Code: []Inst{
			{Op: OpJmp, Target: 5},
			{Op: OpPass},
		}}},
		{"jump exactly at end falls off", &Program{Code: []Inst{
			{Op: OpJmp, Target: 1},
		}}},
		{"unresolved jump", &Program{Code: []Inst{
			{Op: OpJeq, Target: -1},
			{Op: OpPass},
		}}},
		{"unresolved lookup miss", &Program{Code: []Inst{
			{Op: OpLdi, A: 1, Val: 7},
			{Op: OpLookup, A: 0, B: 1, Index: 0, Target: -1},
			{Op: OpPass},
		}, Tables: []TableSpec{{Name: "t", Capacity: 4}}}},
		{"undeclared table", &Program{Code: []Inst{
			{Op: OpLdi, A: 1, Val: 7},
			{Op: OpLookup, A: 0, B: 1, Index: 0, Target: 2},
			{Op: OpPass},
		}}},
		{"negative table index", &Program{Code: []Inst{
			{Op: OpLdi, A: 1, Val: 7},
			{Op: OpLookup, A: 0, B: 1, Index: -1, Target: 2},
			{Op: OpPass},
		}}},
		{"undeclared meter", &Program{Code: []Inst{
			{Op: OpLdi, A: 1, Val: 64},
			{Op: OpMeter, A: 0, B: 1, Index: 0},
			{Op: OpPass},
		}}},
		{"undeclared counter", &Program{Code: []Inst{
			{Op: OpCount, Index: 0},
			{Op: OpPass},
		}}},
		{"read before write", &Program{Code: []Inst{
			{Op: OpMov, A: 0, B: 1},
			{Op: OpPass},
		}}},
		{"truncated: falls off end", &Program{Code: []Inst{
			{Op: OpLdi, A: 0, Val: 1},
		}}},
		{"truncated after branch", &Program{Code: []Inst{
			{Op: OpLdi, A: 0, Val: 1},
			{Op: OpJeq, A: 0, Imm: true, Val: 1, Target: 2},
		}}},
		{"miss path uses unset register", &Program{Code: []Inst{
			{Op: OpLdi, A: 1, Val: 7},
			// Hit path writes r0; the miss path jumps past the write and
			// then reads r0 — definite-initialization must catch it.
			{Op: OpLookup, A: 0, B: 1, Index: 0, Target: 3},
			{Op: OpNop},
			{Op: OpMov, A: 2, B: 0},
			{Op: OpPass},
		}, Tables: []TableSpec{{Name: "t", Capacity: 4}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Verify panicked: %v", r)
				}
			}()
			if err := Verify(tc.p); err == nil {
				t.Fatalf("Verify accepted a malformed program")
			}
		})
	}
}

// decodeProgram turns arbitrary fuzz bytes into a program: 12 bytes per
// instruction, with the declaration counts drawn from the head. Nothing is
// clamped to valid ranges — producing garbage is the point.
func decodeProgram(data []byte) *Program {
	if len(data) < 3 {
		return nil
	}
	p := &Program{Name: "fuzz"}
	for i := 0; i < int(data[0]%4); i++ {
		p.Tables = append(p.Tables, TableSpec{Name: "t", Capacity: 4})
	}
	for i := 0; i < int(data[1]%4); i++ {
		p.Meters = append(p.Meters, MeterSpec{Name: "m", Rate: 1e6, Burst: 1e4})
	}
	for i := 0; i < int(data[2]%4); i++ {
		p.Counters = append(p.Counters, CounterSpec{Name: "c"})
	}
	data = data[3:]
	for len(data) >= 12 {
		in := Inst{
			Op:     Op(data[0]),
			A:      data[1] % NumRegs,
			B:      data[2] % NumRegs,
			F:      Field(data[3]),
			Imm:    data[4]&1 == 1,
			Val:    uint64(binary.LittleEndian.Uint32(data[4:8])),
			Target: int(int16(binary.LittleEndian.Uint16(data[8:10]))),
			Index:  int(int8(data[10])),
		}
		p.Code = append(p.Code, in)
		data = data[12:]
	}
	return p
}

// FuzzVerify feeds arbitrary byte-derived programs to the verifier: it must
// return (not panic, not loop), and any program it accepts must then execute
// to a verdict without faulting — the verifier's contract with the NIC.
func FuzzVerify(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	// pass
	f.Add([]byte{1, 1, 1, byte(OpPass), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	// ldi r0; jeq r0,imm -> end; drop (falls off on the not-taken path)
	f.Add([]byte{
		0, 0, 0,
		byte(OpLdi), 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0,
		byte(OpJeq), 0, 0, 0, 1, 1, 0, 0, 0, 2, 0, 0,
		byte(OpDrop), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
	})
	// lookup with a negative miss target (the pre-hardening panic shape)
	f.Add([]byte{
		1, 0, 0,
		byte(OpLdi), 1, 0, 0, 0, 7, 0, 0, 0, 0, 0, 0,
		byte(OpLookup), 0, 1, 0, 0, 0, 0, 0, 0xff, 0xff, 0, 0,
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeProgram(data)
		err := Verify(p)
		if err != nil {
			return
		}
		// Accepted by the verifier: execution must be safe.
		m := NewMachine(p)
		if _, _, rerr := m.Run(udp(1234, 5432, 64), NopEnv{}); rerr != nil {
			t.Fatalf("verified program faulted at runtime: %v", rerr)
		}
	})
}
