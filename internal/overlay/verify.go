package overlay

import (
	"errors"
	"fmt"
)

// Verification errors.
var (
	ErrBackwardJump = errors.New("overlay: backward or self jump")
	ErrFallOffEnd   = errors.New("overlay: control can fall off program end")
	ErrUninitReg    = errors.New("overlay: register read before write")
	ErrBadIndex     = errors.New("overlay: table/meter/counter index out of range")
)

// MaxProgramLen bounds program size, mirroring the instruction store of a
// realistic overlay stage.
const MaxProgramLen = 8192

// Verify statically checks a program:
//
//   - length bound (MaxProgramLen)
//   - all jump targets are strictly forward (so every run terminates in at
//     most len(Code) steps — the overlay is deliberately not Turing-complete)
//   - jump targets land inside the program or exactly at its end
//   - table/meter/counter indices are declared
//   - every register is definitely initialized before it is read, computed
//     by forward dataflow (legal because control only flows forward)
//   - control cannot fall off the end (the last reachable instruction on
//     every path is pass/drop or a jump)
//
// Assemble runs Verify automatically; it is exported so hand-built programs
// and fuzz tests can use it directly.
func Verify(p *Program) error {
	if p == nil {
		return errors.New("overlay: nil program")
	}
	n := len(p.Code)
	if n == 0 {
		return errors.New("overlay: empty program")
	}
	if n > MaxProgramLen {
		return fmt.Errorf("overlay: program too long: %d > %d", n, MaxProgramLen)
	}

	for i, in := range p.Code {
		if in.Target >= 0 {
			if in.Target <= i {
				return fmt.Errorf("%w: inst %d -> %d", ErrBackwardJump, i, in.Target)
			}
			if in.Target > n {
				return fmt.Errorf("overlay: jump target %d beyond end %d", in.Target, n)
			}
		}
		switch in.Op {
		case OpLookup, OpUpdate:
			if in.Index < 0 || in.Index >= len(p.Tables) {
				return fmt.Errorf("%w: table %d", ErrBadIndex, in.Index)
			}
		case OpMeter:
			if in.Index < 0 || in.Index >= len(p.Meters) {
				return fmt.Errorf("%w: meter %d", ErrBadIndex, in.Index)
			}
		case OpCount:
			if in.Index < 0 || in.Index >= len(p.Counters) {
				return fmt.Errorf("%w: counter %d", ErrBadIndex, in.Index)
			}
		case OpJmp, OpJeq, OpJne, OpJlt, OpJle, OpJgt, OpJge:
			if in.Target < 0 {
				return fmt.Errorf("overlay: unresolved jump at inst %d", i)
			}
		}
		// A lookup's miss path is a jump too; a negative target would send
		// the machine (and the dataflow pass) out of the program.
		if in.Op == OpLookup && in.Target < 0 {
			return fmt.Errorf("overlay: unresolved lookup miss target at inst %d", i)
		}
	}

	// Forward dataflow for register initialization and reachability. Since
	// jumps only go forward, one left-to-right pass with meet-at-target
	// (intersection of initialized sets) is exact.
	const unreached = ^uint32(0) // sentinel: no flow into this instruction yet
	inSet := make([]uint32, n+1)
	for i := range inSet {
		inSet[i] = unreached
	}
	inSet[0] = 0 // entry: nothing initialized

	merge := func(idx int, set uint32) {
		if inSet[idx] == unreached {
			inSet[idx] = set
		} else {
			inSet[idx] &= set
		}
	}

	endReachable := false
	for i := 0; i < n; i++ {
		set := inSet[i]
		if set == unreached {
			continue // dead code is allowed but not analyzed
		}
		in := p.Code[i]

		readReg := func(r uint8) error {
			if set&(1<<r) == 0 {
				return fmt.Errorf("%w: r%d at inst %d (%s)", ErrUninitReg, r, i, in.Op)
			}
			return nil
		}

		// Reads.
		var err error
		switch in.Op {
		case OpMov:
			err = readReg(in.B)
		case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr:
			err = readReg(in.A)
			if err == nil && !in.Imm {
				err = readReg(in.B)
			}
		case OpJeq, OpJne, OpJlt, OpJle, OpJgt, OpJge:
			err = readReg(in.A)
			if err == nil && !in.Imm {
				err = readReg(in.B)
			}
		case OpLookup:
			err = readReg(in.B) // key
		case OpUpdate:
			err = readReg(in.A) // key
			if err == nil {
				err = readReg(in.B) // value
			}
		case OpMeter:
			err = readReg(in.B) // length
		case OpSetf:
			err = readReg(in.B)
		}
		if err != nil {
			return err
		}

		// Writes.
		out := set
		switch in.Op {
		case OpLdf, OpLdi, OpMov, OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpMeter, OpLookup:
			out |= 1 << in.A
		}

		// Successors.
		switch in.Op {
		case OpPass, OpDrop:
			// terminal: no successors
		case OpJmp:
			merge(in.Target, out)
		case OpJeq, OpJne, OpJlt, OpJle, OpJgt, OpJge:
			merge(in.Target, out)
			merge(i+1, out)
		case OpLookup:
			// Miss path: rD not written.
			merge(in.Target, set)
			merge(i+1, out)
		default:
			merge(i+1, out)
		}
		if i+1 == n && !in.Terminal() && in.Op != OpJmp {
			endReachable = true
		}
	}
	// A jump target exactly at n means "fall off end" too.
	if inSet[n] != unreached {
		endReachable = true
	}
	if endReachable {
		return ErrFallOffEnd
	}
	return nil
}
