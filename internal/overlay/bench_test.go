package overlay

import (
	"testing"

	"norman/internal/packet"
)

var benchProg = `
.table flows 1024
.meter lim 1000000000 150000
.counter hits
ldf r0, proto
jne r0, 17, out
ldf r1, dst_port
jlt r1, 1000, out
jgt r1, 2000, out
ldf r2, len
meter r3, lim, r2
jeq r3, 0, shed
ldf r4, conn
lookup r5, flows, r4, out
count hits
setf class, r5
pass
shed:
drop
out:
pass
`

// BenchmarkVMRun measures per-packet interpretation of a representative
// match+meter+table program (what every KOPI packet pays in host time; in
// virtual time it costs overlay cycles).
func BenchmarkVMRun(b *testing.B) {
	p, err := Assemble("bench", benchProg)
	if err != nil {
		b.Fatal(err)
	}
	m := NewMachine(p)
	_ = m.TableInsert("flows", 1, 3)
	pkt := packet.NewUDP(packet.MAC{}, packet.MAC{}, 1, 2, 99, 1500, 256)
	pkt.Meta.ConnID = 1
	env := NopEnv{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(pkt, env)
	}
}

// BenchmarkAssemble measures compile+verify of the same program.
func BenchmarkAssemble(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Assemble("bench", benchProg); err != nil {
			b.Fatal(err)
		}
	}
}
