package overlay

import "fmt"

// Chain composes verified programs into one: packets flow through each
// stage in order, and a stage's `pass` falls through to the next stage
// (the last stage's `pass` remains terminal). `drop` anywhere is final.
//
// This is how the KOPI engine coexists multiple policies on one pipeline —
// a firewall stage chained with a telemetry sampler, for instance — without
// a program-aware composition language: concatenation is sound because
// control flow is forward-only, so stage boundaries cannot be jumped back
// across. Tables, meters and counters are namespaced per stage
// ("s<i>.<name>") to avoid declaration collisions.
func Chain(name string, stages ...*Program) (*Program, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("overlay: Chain wants at least one stage")
	}
	if len(stages) == 1 {
		return stages[0], nil
	}
	out := &Program{Name: name, labels: map[string]int{}}
	for si, st := range stages {
		codeBase := len(out.Code)
		tableBase := len(out.Tables)
		meterBase := len(out.Meters)
		counterBase := len(out.Counters)
		last := si == len(stages)-1

		for _, t := range st.Tables {
			out.Tables = append(out.Tables, TableSpec{
				Name: fmt.Sprintf("s%d.%s", si, t.Name), Capacity: t.Capacity,
			})
		}
		for _, m := range st.Meters {
			out.Meters = append(out.Meters, MeterSpec{
				Name: fmt.Sprintf("s%d.%s", si, m.Name), Rate: m.Rate, Burst: m.Burst,
			})
		}
		for _, c := range st.Counters {
			out.Counters = append(out.Counters, CounterSpec{
				Name: fmt.Sprintf("s%d.%s", si, c.Name),
			})
		}

		// nextStage is where this stage's `pass` continues to. Stage code
		// lengths are fixed, so it is simply the end of this stage's copy.
		nextStage := codeBase + len(st.Code)
		for _, in := range st.Code {
			cp := in
			if cp.Target >= 0 {
				cp.Target += codeBase
			}
			switch cp.Op {
			case OpLookup, OpUpdate:
				cp.Index += tableBase
			case OpMeter:
				cp.Index += meterBase
			case OpCount:
				cp.Index += counterBase
			case OpPass:
				if !last {
					cp = Inst{Op: OpJmp, Target: nextStage}
				}
			}
			out.Code = append(out.Code, cp)
		}
	}
	if err := Verify(out); err != nil {
		return nil, fmt.Errorf("overlay: chained program invalid: %w", err)
	}
	return out, nil
}
