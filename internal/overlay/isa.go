// Package overlay implements the paper's FPGA "overlay" (§4.4): a custom,
// non-Turing-complete processor with a domain-specific instruction set for
// dataplane policy. Policies — filters, meters, marking, capture taps,
// notification triggers — are expressed as small programs, assembled from
// text, statically verified (forward-only jumps, so every program
// terminates; registers provably initialized before use), and interpreted
// with a per-instruction cycle cost charged at the NIC clock.
//
// Loading a new program is a runtime operation measured in microseconds,
// versus a full "bitstream" reconfiguration measured in seconds; experiment
// E4 quantifies exactly this gap.
package overlay

import "fmt"

// Op is an overlay opcode.
type Op uint8

// Opcodes. Arithmetic ops have register and immediate forms distinguished by
// the Imm flag on the instruction, not separate opcodes.
const (
	OpNop    Op = iota
	OpLdf       // rD = packet field
	OpLdi       // rD = imm
	OpMov       // rD = rS
	OpAdd       // rD += rS/imm
	OpSub       // rD -= rS/imm
	OpAnd       // rD &= rS/imm
	OpOr        // rD |= rS/imm
	OpXor       // rD ^= rS/imm
	OpShl       // rD <<= rS/imm (mod 64)
	OpShr       // rD >>= rS/imm (mod 64)
	OpJmp       // unconditional forward jump
	OpJeq       // if rA == rB/imm jump
	OpJne       // if rA != rB/imm jump
	OpJlt       // if rA <  rB/imm jump
	OpJle       // if rA <= rB/imm jump
	OpJgt       // if rA >  rB/imm jump
	OpJge       // if rA >= rB/imm jump
	OpLookup    // rD = table[rKey]; jump to target on miss
	OpUpdate    // table[rKey] = rV
	OpMeter     // rD = 1 if meter conforms for rLen bytes else 0
	OpSetf      // writable packet field = rS
	OpCount     // counter++
	OpMirror    // copy packet to the capture tap
	OpNotify    // append a notification for the owning connection
	OpPass      // terminal: accept packet
	OpDrop      // terminal: drop packet
)

var opNames = map[Op]string{
	OpNop: "nop", OpLdf: "ldf", OpLdi: "ldi", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr",
	OpJmp: "jmp", OpJeq: "jeq", OpJne: "jne", OpJlt: "jlt", OpJle: "jle",
	OpJgt: "jgt", OpJge: "jge",
	OpLookup: "lookup", OpUpdate: "update", OpMeter: "meter",
	OpSetf: "setf", OpCount: "count", OpMirror: "mirror", OpNotify: "notify",
	OpPass: "pass", OpDrop: "drop",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Field identifies a packet or metadata field readable with ldf (and, for
// the writable subset, settable with setf).
type Field uint8

// Fields.
const (
	FSrcIP Field = iota
	FDstIP
	FSrcPort
	FDstPort
	FProto
	FLen      // frame length in bytes
	FEthType  // EtherType
	FARPOp    // ARP opcode, 0 for non-ARP
	FTOS      // IPv4 TOS
	FTCPFlags // TCP flags, 0 for non-TCP
	FUID      // owning user id (trusted metadata; 0 off-host)
	FPID      // owning process id (trusted metadata; 0 off-host)
	FCmdID    // interned command id (trusted metadata; 0 off-host)
	FConn     // owning connection id
	FMark     // firewall mark (writable)
	FClass    // qdisc class (writable)
	FTimeNS   // current virtual time, nanoseconds
	numFields
)

var fieldNames = map[Field]string{
	FSrcIP: "src_ip", FDstIP: "dst_ip", FSrcPort: "src_port", FDstPort: "dst_port",
	FProto: "proto", FLen: "len", FEthType: "eth_type", FARPOp: "arp_op",
	FTOS: "tos", FTCPFlags: "tcp_flags", FUID: "uid", FPID: "pid",
	FCmdID: "cmd_id", FConn: "conn", FMark: "mark", FClass: "class",
	FTimeNS: "time_ns",
}

func (f Field) String() string {
	if s, ok := fieldNames[f]; ok {
		return s
	}
	return fmt.Sprintf("field(%d)", uint8(f))
}

// Writable reports whether setf may assign the field.
func (f Field) Writable() bool { return f == FMark || f == FClass }

// NumRegs is the register file size.
const NumRegs = 16

// Inst is one decoded instruction. Operand meaning varies by opcode:
//
//	ldf   rD=A Field=F
//	ldi   rD=A Imm
//	mov   rD=A rS=B
//	alu   rD=A rS=B (Imm form: Imm flag + Val)
//	jcc   rA=A rB=B (or Imm) Target
//	lookup rD=A rKey=B Table Target(miss)
//	update rKey=A rV=B Table
//	meter  rD=A rLen=B Meter
//	setf   Field=F rS=B
//	count  Counter
type Inst struct {
	Op     Op
	A, B   uint8
	F      Field
	Imm    bool
	Val    uint64
	Target int // resolved jump target (instruction index)
	Index  int // table/meter/counter index
}

// Terminal reports whether executing the instruction ends the program.
func (in Inst) Terminal() bool { return in.Op == OpPass || in.Op == OpDrop }

// Cost returns the instruction's cost in overlay cycles. Table and meter
// operations touch SRAM and cost more than register ALU ops, matching how a
// pipelined match-action stage budgets its clock.
func (in Inst) Cost() int {
	switch in.Op {
	case OpLookup, OpUpdate:
		return 4
	case OpMeter:
		return 6
	case OpMirror, OpNotify:
		return 8
	case OpNop:
		return 1
	default:
		return 1
	}
}

// TableSpec declares an exact-match table used by a program.
type TableSpec struct {
	Name     string
	Capacity int
}

// MeterSpec declares a token-bucket meter: Rate bytes/second replenishment,
// Burst bytes of bucket depth.
type MeterSpec struct {
	Name  string
	Rate  float64
	Burst float64
}

// CounterSpec declares a named counter.
type CounterSpec struct {
	Name string
}

// Program is a verified overlay program plus its resource declarations.
type Program struct {
	Name     string
	Code     []Inst
	Tables   []TableSpec
	Meters   []MeterSpec
	Counters []CounterSpec
	labels   map[string]int // retained for disassembly
}

// Verdict is the terminal decision of a program run.
type Verdict uint8

// Verdicts.
const (
	VerdictPass Verdict = iota
	VerdictDrop
)

func (v Verdict) String() string {
	if v == VerdictDrop {
		return "drop"
	}
	return "pass"
}

// CycleBound returns the program's verified worst-case per-packet cycle
// count. The verifier enforces forward-only control flow, so no instruction
// executes more than once per packet and the instruction count is a sound
// bound. The overload governor's AdmitProgram gates installation on it.
func (p *Program) CycleBound() int { return len(p.Code) }

// SRAMBytes estimates the on-NIC memory the program's state consumes:
// 16 bytes per exact-match table slot, 32 per meter, 8 per counter, plus
// 8 bytes per instruction of program store. Experiment E5 uses this to model
// resource exhaustion.
func (p *Program) SRAMBytes() int {
	n := len(p.Code) * 8
	for _, t := range p.Tables {
		n += t.Capacity * 16
	}
	n += len(p.Meters) * 32
	n += len(p.Counters) * 8
	return n
}
