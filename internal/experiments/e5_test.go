package experiments

import "testing"

// TestE5Exhaustion verifies the §5-Q3 shape: past the SRAM budget,
// connections fail hard without a fallback (lost traffic), while the
// software slow path degrades gracefully — overflow traffic is served, but
// at software rates, so the aggregate declines instead of cliff-dropping.
func TestE5Exhaustion(t *testing.T) {
	res, tbl := RunE5(0.5)
	t.Logf("\n%s", tbl)

	var under, over *E5Point
	for i := range res.Points {
		p := &res.Points[i]
		if p.FailedConns == 0 && under == nil {
			under = p
		}
		if p.FailedConns > 0 {
			over = p
		}
	}
	if under == nil || over == nil {
		t.Fatalf("sweep should cross the SRAM budget (accepted=%v)", res.Points)
	}
	if over.Accepted >= over.Offered {
		t.Error("over-budget point should have failed connections")
	}
	if over.AggregateFallbackGbps <= over.AggregateNoFallbackGbps {
		t.Errorf("fallback should beat hard failure: %.2f vs %.2f",
			over.AggregateFallbackGbps, over.AggregateNoFallbackGbps)
	}
	if over.SlowGbps <= 0 {
		t.Error("slow path should carry overflow traffic")
	}
	if over.FastGbps <= 0 {
		t.Error("fast path should still carry in-budget traffic")
	}
	if res.TableRejected == 0 || res.TableInserted != res.TableCapacity {
		t.Errorf("table fill should reject past capacity: inserted=%d rejected=%d cap=%d",
			res.TableInserted, res.TableRejected, res.TableCapacity)
	}
}
