package experiments

import (
	"errors"
	"fmt"

	"norman/internal/arch"
	"norman/internal/filter"
	"norman/internal/host"
	"norman/internal/packet"
	"norman/internal/qos"
	"norman/internal/sim"
	"norman/internal/sniff"
	"norman/internal/stats"
	"norman/internal/timing"
	"norman/internal/wire"
)

// Capability levels in the E2 matrix.
type CapLevel int

// Levels: No (cannot be done at all), Partial (works but without the
// process view the scenario actually needs), Yes (scenario fully solved).
const (
	CapNo CapLevel = iota
	CapPartial
	CapYes
)

func (l CapLevel) String() string {
	switch l {
	case CapYes:
		return "yes"
	case CapPartial:
		return "partial"
	default:
		return "no"
	}
}

// E2Result is the behavioral capability matrix: scenario -> arch -> level.
// Every cell is established by *running* the scenario, not by reading a
// capability flag.
type E2Result struct {
	Scenarios []string
	Archs     []string
	Cells     map[string]map[string]CapLevel
}

// Level returns a cell.
func (r *E2Result) Level(scenario, archName string) CapLevel {
	return r.Cells[scenario][archName]
}

// RunE2 reproduces §2: the four management scenarios (debugging, port
// partitioning, process scheduling, QoS) against all five architectures,
// plus a fifth row for the most basic tool of all — ping. Expected shape:
// kernelstack/sidecar/kopi solve all five; hypervisor gets partial
// debugging (sees frames, cannot attribute) and partial QoS (flow-level
// only); bypass solves none.
func RunE2(scale Scale) (*E2Result, *stats.Table) {
	res := &E2Result{
		Scenarios: []string{"debugging", "port-partition", "scheduling", "qos", "ping"},
		Archs:     arch.Names(),
		Cells:     map[string]map[string]CapLevel{},
	}
	for _, s := range res.Scenarios {
		res.Cells[s] = map[string]CapLevel{}
	}
	// Each cell runs its scenario in a fresh world, so the whole matrix
	// fans out. Tasks write into a slot matrix (maps are not safe for
	// concurrent writes); the maps are assembled after the Wait.
	cells := map[string]func(string) CapLevel{
		"debugging":      func(n string) CapLevel { return e2Debugging(n, scale) },
		"port-partition": func(n string) CapLevel { return e2PortPartition(n, scale) },
		"scheduling":     e2Scheduling,
		"qos":            func(n string) CapLevel { return e2QoS(n, scale) },
		"ping":           e2Ping,
	}
	levels := make([][]CapLevel, len(res.Scenarios))
	r := NewRunner()
	for i, s := range res.Scenarios {
		levels[i] = make([]CapLevel, len(res.Archs))
		run := cells[s]
		for j, name := range res.Archs {
			i, j, name := i, j, name
			r.Go(func() { levels[i][j] = run(name) })
		}
	}
	r.Wait()
	for i, s := range res.Scenarios {
		for j, name := range res.Archs {
			res.Cells[s][name] = levels[i][j]
		}
	}

	t := stats.NewTable("E2: §2 management scenarios by architecture (behavioral)",
		append([]string{"scenario"}, res.Archs...)...)
	for _, s := range res.Scenarios {
		row := []interface{}{s}
		for _, a := range res.Archs {
			row = append(row, res.Cells[s][a].String())
		}
		t.AddRow(row...)
	}
	return res, t
}

// e2Debugging: an ARP flooder and an innocent app share the NIC. Alice must
// trace the flood to the guilty *process*. Yes = capture (or ARP cache)
// identifies the pid; Partial = the flood is visible but unattributable;
// No = no visibility at all.
func e2Debugging(name string, scale Scale) CapLevel {
	a := arch.New(name, arch.WorldConfig{})
	w := a.World()
	sink := host.NewSinkPeer()
	w.Peer = sink.Recv

	bob := w.Kern.AddUser(1001, "bob")
	charlie := w.Kern.AddUser(1002, "charlie")
	good := w.Kern.Spawn(bob.UID, "webserver")
	bad := w.Kern.Spawn(charlie.UID, "leakyd")

	goodConn, err := a.Connect(good, w.Flow(8080, 80))
	if err != nil {
		return CapNo
	}
	badConn, err := a.Connect(bad, w.Flow(9999, 99))
	if err != nil {
		return CapNo
	}

	// Alice attaches tcpdump with filter "arp".
	tap, tapErr := a.AttachTap(sniff.MustParse("arp"))

	flood := &host.ARPFlooder{
		Arch: a, Conn: badConn, SrcMAC: w.HostMAC, SrcIP: w.HostIP,
		Interval: 20 * sim.Microsecond, Until: sim.Time(scale.d(4 * sim.Millisecond)),
	}
	flood.Start(0)
	normal := &host.Sender{
		Arch: a, Conn: goodConn, Flow: w.Flow(8080, 80), Payload: 256,
		Interval: 50 * sim.Microsecond, Until: sim.Time(scale.d(4 * sim.Millisecond)),
	}
	normal.Start(0)
	w.Eng.Run()

	if tapErr != nil {
		// No capture point at all: Alice must audit app by app (§2).
		return CapNo
	}
	var sawARP, attributed bool
	for _, rec := range tap.Records() {
		if rec.Pkt.ARP == nil {
			continue
		}
		sawARP = true
		if rec.Pkt.Meta.TrustedMeta && rec.Pkt.Meta.PID == bad.PID {
			attributed = true
		}
	}
	// The kernel ARP cache view corroborates on OS-integrated paths.
	if pid, n := w.Kern.ARP().TopRequester(); n > 0 && pid == bad.PID {
		attributed = true
	}
	switch {
	case attributed:
		return CapYes
	case sawARP:
		return CapPartial
	default:
		return CapNo
	}
}

// e2PortPartition: only Bob's postgres may use port 5432. Charlie's
// misconfigured app tries to send on 5432. Yes = zero violating frames on
// the wire; No = violations escape (or the policy cannot be installed).
func e2PortPartition(name string, scale Scale) CapLevel {
	a := arch.New(name, arch.WorldConfig{})
	w := a.World()
	sink := host.NewSinkPeer()
	w.Peer = sink.Recv

	bob := w.Kern.AddUser(1001, "bob")
	charlie := w.Kern.AddUser(1002, "charlie")
	postgres := w.Kern.Spawn(bob.UID, "postgres")
	rogue := w.Kern.Spawn(charlie.UID, "script")

	pgFlow := w.Flow(5432, 5432)
	pgConn, err := a.Connect(postgres, pgFlow)
	if err != nil {
		return CapNo
	}
	rogueFlow := w.Flow(33000, 9) // innocent-looking connection
	rogueConn, err := a.Connect(rogue, rogueFlow)
	if err != nil {
		return CapNo
	}

	// Alice's policy: only bob's postgres may talk to 5432.
	allow := &filter.Rule{
		Proto: filter.Proto(packet.ProtoUDP), DstPorts: filter.Port(5432),
		OwnerUID: filter.UID(bob.UID), OwnerCmd: "postgres",
		Action: filter.ActAccept,
	}
	deny := &filter.Rule{
		Proto: filter.Proto(packet.ProtoUDP), DstPorts: filter.Port(5432),
		Action: filter.ActDrop,
	}
	if err := a.InstallRule(filter.HookOutput, allow); err != nil {
		return CapNo // owner policy cannot even be expressed
	}
	if err := a.InstallRule(filter.HookOutput, deny); err != nil {
		return CapNo
	}

	until := sim.Time(scale.d(3 * sim.Millisecond))
	// Legitimate postgres traffic.
	pg := &host.Sender{Arch: a, Conn: pgConn, Flow: pgFlow, Payload: 200,
		Interval: 30 * sim.Microsecond, Until: until}
	pg.Start(0)
	// Charlie's app writes raw frames claiming dst port 5432 on its own
	// connection — the kernel-bypass attack the paper describes.
	spoof := w.Flow(33000, 5432)
	rg := &host.Sender{Arch: a, Conn: rogueConn, Flow: rogueFlow, Payload: 200,
		Interval: 30 * sim.Microsecond, Until: until,
		Build: func(seq uint64) *packet.Packet {
			return w.UDPTo(spoof, 200)
		}}
	rg.Start(0)
	w.Eng.Run()

	legit := sink.PerDstPort[5432]
	if legit == 0 {
		return CapNo // policy also broke the legitimate user
	}
	// Violations: frames on 5432 beyond what postgres itself sent.
	if sink.PerDstPort[5432] > pg.Bytes {
		return CapNo
	}
	return CapYes
}

// e2Scheduling: can an app block until data arrives instead of burning a
// core? Yes = RxBlock works and the packet still arrives.
func e2Scheduling(name string) CapLevel {
	a := arch.New(name, arch.WorldConfig{})
	w := a.World()
	w.Peer = func(*packet.Packet, sim.Time) {}

	bob := w.Kern.AddUser(1001, "bob")
	proc := w.Kern.Spawn(bob.UID, "worker")
	flow := w.Flow(7000, 7)
	c, err := a.Connect(proc, flow)
	if err != nil {
		return CapNo
	}
	if err := a.SetRxMode(c, arch.RxBlock); err != nil {
		if errors.Is(err, arch.ErrUnsupported) {
			return CapNo
		}
		return CapNo
	}
	got := 0
	a.SetDeliver(func(_ *arch.Conn, _ *packet.Packet, _ sim.Time) { got++ })
	w.Eng.At(sim.Time(100*sim.Microsecond), func() {
		a.DeliverWire(w.UDPFrom(flow, 128))
	})
	w.Eng.Run()
	if got == 1 {
		return CapYes
	}
	return CapNo
}

// e2QoS: Bob's game and Charlie's backup compete; Alice wants the backup
// (charlie) weighted 3:1 over the game by *user*. Yes = achieved shares
// track the weights; Partial = a scheduler exists but cannot distinguish
// the users; No = no scheduling point.
func e2QoS(name string, scale Scale) CapLevel {
	ratio, err := runQoSShare(name, 3.0, scale, "wfq")
	if err != nil {
		return CapNo
	}
	switch {
	case ratio > 2.0: // weights respected (3:1 target)
		return CapYes
	case ratio > 0.5 && ratio < 2.0: // scheduler blind to users: ~1:1
		return CapPartial
	default:
		return CapNo
	}
}

// e2Ping: the most basic admin tool — can the kernel still send an ICMP
// echo and see the reply? (An instance of §2's broader point that the
// kernel has lost all dataplane visibility.)
func e2Ping(name string) CapLevel {
	a := arch.New(name, arch.WorldConfig{})
	w := a.World()
	n := wire.NewNetwork(a)
	ep := n.AddEndpoint(w.PeerIP, w.PeerMAC, nil)
	_ = ep
	ok := false
	if err := a.Ping(w.PeerIP, 56, func(_ sim.Duration, o bool) { ok = o }); err != nil {
		return CapNo
	}
	w.Eng.Run()
	if ok {
		return CapYes
	}
	return CapNo
}

// runQoSShare runs two competing bulk users through a weighted scheduler
// classed by uid; it returns achieved(weighted)/achieved(unweighted) bytes.
// Shared with E6.
//
// The wire is set to 10G so the scheduler — not the software stack's CPU —
// is the contended resource on every architecture: E2/E6 test the shaping
// *mechanism*; E1 already measures who can drive 100G.
func runQoSShare(name string, weight float64, scale Scale, kind string) (float64, error) {
	model := timing.Default()
	model.WireBW = sim.Gbps(10)
	a := arch.New(name, arch.WorldConfig{Model: model})
	w := a.World()

	// Measure achieved shares only inside a steady-state window: the ramp
	// while queues fill and the post-run backlog drain both serve classes
	// ~equally and would dilute the ratio.
	until := sim.Time(scale.d(8 * sim.Millisecond))
	winLo, winHi := until/4, until
	perPort := map[uint16]uint64{}
	w.Peer = func(p *packet.Packet, at sim.Time) {
		if p.UDP == nil || at < winLo || at > winHi {
			return
		}
		perPort[p.UDP.DstPort] += uint64(p.FrameLen())
	}

	bob := w.Kern.AddUser(1001, "bob")
	charlie := w.Kern.AddUser(1002, "charlie")
	game := w.Kern.Spawn(bob.UID, "game")
	backup := w.Kern.Spawn(charlie.UID, "backup")

	gameFlow := w.Flow(20001, 1234)
	backupFlow := w.Flow(20002, 873)
	gameConn, err := a.Connect(game, gameFlow)
	if err != nil {
		return 0, err
	}
	backupConn, err := a.Connect(backup, backupFlow)
	if err != nil {
		return 0, err
	}

	classify := func(p *packet.Packet) uint32 {
		if p.Meta.TrustedMeta && p.Meta.UID == charlie.UID {
			return 1 // weighted class
		}
		return 2
	}
	var q qos.Qdisc
	switch kind {
	case "drr":
		d := qos.NewDRR(512, 1514)
		d.SetQuantum(1, int(1514*weight))
		d.SetQuantum(2, 1514)
		q = d
	default:
		wf := qos.NewWFQ(512)
		wf.SetWeight(1, weight)
		wf.SetWeight(2, 1)
		q = wf
	}
	if err := a.SetQdisc(q, classify); err != nil {
		return 0, err
	}

	// Both users offer well above their weighted share so the scheduler
	// must choose; bulk senders use jumbo (GSO-sized) frames, as real bulk
	// transfers do, so per-packet CPU cost does not cap demand first.
	mk := func(c *arch.Conn, f packet.FlowKey) *host.Sender {
		return &host.Sender{Arch: a, Conn: c, Flow: f, Payload: 8958,
			Interval: host.IntervalFor(9.5, 9000), Until: until, Burst: 8}
	}
	mk(gameConn, gameFlow).Start(0)
	mk(backupConn, backupFlow).Start(0)
	w.Eng.Run()

	gameBytes := float64(perPort[1234])
	backupBytes := float64(perPort[873])
	if gameBytes == 0 {
		return 0, fmt.Errorf("e2: no unweighted traffic arrived")
	}
	return backupBytes / gameBytes, nil
}
