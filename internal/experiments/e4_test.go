package experiments

import (
	"testing"

	"norman/internal/sim"
)

// TestE4Reconfig verifies the programmability shape: overlay loads are
// microsecond-scale and scale with program size, an online reload loses no
// traffic, a bitstream respin loses an outage worth of traffic, and the
// kernel baseline is also lossless.
func TestE4Reconfig(t *testing.T) {
	res, tbl := RunE4(0.5)
	t.Logf("\n%s", tbl)

	if len(res.Loads) == 0 {
		t.Fatal("no load points")
	}
	small, big := res.Loads[0], res.Loads[len(res.Loads)-1]
	if small.LoadTime <= 0 || small.LoadTime > sim.Millisecond {
		t.Errorf("1-rule load should be microseconds, got %v", small.LoadTime)
	}
	if big.LoadTime <= small.LoadTime {
		t.Errorf("bigger programs should take longer to load: %v vs %v", big.LoadTime, small.LoadTime)
	}
	if big.LoadTime > 10*sim.Millisecond {
		t.Errorf("1024-rule load should still be sub-10ms (online), got %v", big.LoadTime)
	}

	byMech := map[string]E4Disruption{}
	for _, d := range res.Disruptions {
		byMech[d.Mechanism] = d
	}
	if d := byMech["overlay-reload"]; d.LostPackets != 0 {
		t.Errorf("overlay reload should lose no packets, lost %d", d.LostPackets)
	}
	if d := byMech["kernel-rule-update"]; d.LostPackets != 0 {
		t.Errorf("kernel rule update should lose no packets, lost %d", d.LostPackets)
	}
	if d := byMech["bitstream-respin"]; d.LostPackets == 0 {
		t.Error("bitstream respin should lose an outage worth of packets")
	}
	// The paper's rate argument: 626 updates/year through the bitstream
	// path would mean 626 outages; through the overlay path, none.
	if res.YearlyUpdates != 626 {
		t.Errorf("yearly update count should be 377+249=626, got %d", res.YearlyUpdates)
	}
}
