package experiments

import "testing"

// TestE3Cliff verifies the §5 connection-scaling anecdote's shape: line rate
// holds at low connection counts, collapses past ~1024 connections under the
// default DDIO partition, does not collapse with cache modeling off or with
// shared rings, and is degraded everywhere with DDIO disabled.
func TestE3Cliff(t *testing.T) {
	points, tbl := RunE3(0.3)
	t.Logf("\n%s", tbl)

	byConns := map[int]E3Point{}
	for _, p := range points {
		byConns[p.Conns] = p
	}
	low, high := byConns[64], byConns[4096]

	if low.DefaultGbps < 90 {
		t.Errorf("64 conns should sustain ~line rate, got %.1f", low.DefaultGbps)
	}
	if high.DefaultGbps > 0.8*low.DefaultGbps {
		t.Errorf("4096 conns (%.1f) should be well below 64 conns (%.1f): no cliff",
			high.DefaultGbps, low.DefaultGbps)
	}
	if high.IdealGbps < 0.9*low.IdealGbps {
		t.Errorf("no-cache ideal should not cliff: %.1f vs %.1f", high.IdealGbps, low.IdealGbps)
	}
	if high.SharedGbps < 0.9*low.SharedGbps {
		t.Errorf("shared rings should not cliff: %.1f vs %.1f", high.SharedGbps, low.SharedGbps)
	}
	if byConns[1024].DefaultGbps < 90 {
		t.Errorf("1024 conns should still hold near line rate, got %.1f", byConns[1024].DefaultGbps)
	}
	if high.DDIO4Gbps < 1.2*high.DefaultGbps {
		t.Errorf("more DDIO ways should move the cliff right: at 4096 conns ddio4=%.1f vs default=%.1f",
			high.DDIO4Gbps, high.DefaultGbps)
	}
	if low.DDIO0Gbps > 0.9*low.DefaultGbps {
		t.Errorf("ddio-off should hurt even at 64 conns: %.1f vs %.1f",
			low.DDIO0Gbps, low.DefaultGbps)
	}
	if high.DefaultMissFrac < 0.5 {
		t.Errorf("descriptor miss fraction at 4096 conns should be high, got %.2f", high.DefaultMissFrac)
	}
}
