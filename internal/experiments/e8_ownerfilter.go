package experiments

import (
	"errors"

	"norman/internal/arch"
	"norman/internal/filter"
	"norman/internal/host"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/stats"
)

// E8Row is one architecture's port-partition enforcement outcome under a
// spoofing workload.
type E8Row struct {
	Arch            string
	PolicyInstalled bool
	LegitPackets    uint64 // postgres frames that reached the wire
	Violations      uint64 // spoofed 5432 frames that escaped
}

// E8Classifier is the software-classifier scaling ablation: average rules
// examined per packet, linear scan vs compiled exact-match fast path.
type E8Classifier struct {
	Rules         int
	LinearEvals   float64
	CompiledEvals float64
}

// E8Result aggregates both parts.
type E8Result struct {
	Enforcement []E8Row
	Classifier  []E8Classifier
}

// RunE8 reproduces the §2 port-partitioning scenario quantitatively: the
// policy "only Bob's postgres may use port 5432" is attacked by Charlie's
// process writing raw frames with destination port 5432. Owner-based rules
// are installable and enforced only where the interposition layer has a
// trusted process view (kernelstack, sidecar, kopi); the hypervisor cannot
// express the rule, and bypass has nowhere to put it. The classifier
// ablation shows why on-NIC enforcement wants exact-match tables: linear
// evaluation cost grows with the rule count, the compiled path does not.
func RunE8(scale Scale) (*E8Result, *stats.Table) {
	names := arch.Names()
	ruleCounts := []int{16, 128, 1024}
	res := &E8Result{
		Enforcement: make([]E8Row, len(names)),
		Classifier:  make([]E8Classifier, len(ruleCounts)),
	}
	pool := NewRunner()
	for i, name := range names {
		i, name := i, name
		pool.Go(func() { res.Enforcement[i] = e8Enforce(name, scale) })
	}
	for i, n := range ruleCounts {
		i, n := i, n
		pool.Go(func() { res.Classifier[i] = e8Classify(n) })
	}
	pool.Wait()

	t := stats.NewTable("E8a: port-partition enforcement under spoofing (uid/cmd owner rules)",
		"arch", "policy installed", "legit delivered", "violations escaped")
	for _, r := range res.Enforcement {
		t.AddRow(r.Arch, r.PolicyInstalled, r.LegitPackets, r.Violations)
	}
	t2 := stats.NewTable("\nE8b: classifier scaling (rules examined per packet)",
		"rules", "linear", "compiled")
	for _, c := range res.Classifier {
		t2.AddRow(c.Rules, c.LinearEvals, c.CompiledEvals)
	}
	return res, composeTables(t, t2)
}

func e8Enforce(name string, scale Scale) E8Row {
	row := E8Row{Arch: name}
	a := arch.New(name, arch.WorldConfig{})
	w := a.World()

	var legit, violations uint64
	w.Peer = func(p *packet.Packet, at sim.Time) {
		if p.UDP == nil || p.UDP.DstPort != 5432 {
			return
		}
		// The receiving side distinguishes the legitimate postgres flow by
		// its source port (5432 both ways in this scenario).
		if p.UDP.SrcPort == 5432 {
			legit++
		} else {
			violations++
		}
	}

	bob := w.Kern.AddUser(1001, "bob")
	charlie := w.Kern.AddUser(1002, "charlie")
	postgres := w.Kern.Spawn(bob.UID, "postgres")
	rogue := w.Kern.Spawn(charlie.UID, "script")

	pgFlow := w.Flow(5432, 5432)
	pgConn, err := a.Connect(postgres, pgFlow)
	if err != nil {
		return row
	}
	rogueFlow := w.Flow(33000, 9)
	rogueConn, err := a.Connect(rogue, rogueFlow)
	if err != nil {
		return row
	}

	allow := &filter.Rule{
		Proto: filter.Proto(packet.ProtoUDP), DstPorts: filter.Port(5432),
		OwnerUID: filter.UID(bob.UID), OwnerCmd: "postgres",
		Action: filter.ActAccept,
	}
	deny := &filter.Rule{
		Proto: filter.Proto(packet.ProtoUDP), DstPorts: filter.Port(5432),
		Action: filter.ActDrop,
	}
	// The policy is transactional: without the owner-scoped allow, the
	// blanket deny would break the legitimate user, so an admin who cannot
	// install the first rule installs neither (the paper's point is that
	// the policy is *unenforceable*, not that port 5432 can be killed).
	err1 := a.InstallRule(filter.HookOutput, allow)
	if err1 == nil {
		err2 := a.InstallRule(filter.HookOutput, deny)
		row.PolicyInstalled = err2 == nil
	} else if !errors.Is(err1, filter.ErrNeedsProcessView) && !errors.Is(err1, arch.ErrUnsupported) {
		panic("e8: unexpected install error: " + err1.Error())
	}

	until := sim.Time(scale.d(4 * sim.Millisecond))
	pg := &host.Sender{Arch: a, Conn: pgConn, Flow: pgFlow, Payload: 200,
		Interval: 20 * sim.Microsecond, Until: until}
	pg.Start(0)
	spoofFlow := w.Flow(33000, 5432)
	rg := &host.Sender{Arch: a, Conn: rogueConn, Flow: rogueFlow, Payload: 200,
		Interval: 20 * sim.Microsecond, Until: until,
		Build: func(uint64) *packet.Packet { return w.UDPTo(spoofFlow, 200) }}
	rg.Start(0)
	w.Eng.Run()

	row.LegitPackets = legit
	row.Violations = violations
	return row
}

// e8Classify measures average rules-examined per packet for a chain of n
// exact (proto, dstport) drop rules plus the default accept, over a packet
// mix that matches a rule 50% of the time.
func e8Classify(n int) E8Classifier {
	rules := make([]*filter.Rule, 0, n)
	for i := 0; i < n; i++ {
		rules = append(rules, &filter.Rule{
			Proto:    filter.Proto(packet.ProtoUDP),
			DstPorts: filter.Port(uint16(10000 + i)),
			Action:   filter.ActDrop,
		})
	}
	lin := &filter.LinearClassifier{Rules: rules}
	comp := filter.NewCompiledClassifier(rules)

	rng := sim.NewRNG(7, "e8")
	var linTotal, compTotal int
	const trials = 4096
	for i := 0; i < trials; i++ {
		var dport uint16
		if rng.Intn(2) == 0 {
			dport = uint16(10000 + rng.Intn(n)) // hits a rule
		} else {
			dport = uint16(40000 + rng.Intn(1000)) // misses all
		}
		p := packet.NewUDP(packet.MAC{}, packet.MAC{}, 1, 2, 1111, dport, 64)
		_, c1 := lin.Classify(p)
		_, c2 := comp.Classify(p)
		linTotal += c1
		compTotal += c2
	}
	return E8Classifier{
		Rules:         n,
		LinearEvals:   float64(linTotal) / trials,
		CompiledEvals: float64(compTotal) / trials,
	}
}
