package experiments

import (
	"testing"

	"norman/internal/arch"
	"norman/internal/host"
	"norman/internal/packet"
	"norman/internal/qos"
	"norman/internal/sim"
	"norman/internal/timing"
)

// TestE6QoSShapes verifies the fairness and game-shaping shapes of the §2
// QoS scenario.
func TestE6QoSShapes(t *testing.T) {
	res, tbl := RunE6(0.4)
	t.Logf("\n%s", tbl)

	get := func(name string, weight float64) E6Row {
		for _, r := range res.Fairness {
			if r.Arch == name && r.Weight == weight {
				return r
			}
		}
		t.Fatalf("missing row %s/%v", name, weight)
		return E6Row{}
	}
	for _, name := range []string{"kernelstack", "sidecar", "kopi"} {
		for _, weight := range []float64{2, 3, 8} {
			r := get(name, weight)
			if r.Err != "" {
				t.Errorf("%s/w=%v: unexpected error %s", name, weight, r.Err)
				continue
			}
			if r.AchievedWFQ < 0.75*weight || r.AchievedWFQ > 1.3*weight {
				t.Errorf("%s/w=%v: wfq achieved %.2f, want ≈%v", name, weight, r.AchievedWFQ, weight)
			}
			if r.AchievedDRR < 0.7*weight || r.AchievedDRR > 1.4*weight {
				t.Errorf("%s/w=%v: drr achieved %.2f, want ≈%v", name, weight, r.AchievedDRR, weight)
			}
		}
	}
	if r := get("hypervisor", 3); r.Err == "" && (r.AchievedWFQ < 0.6 || r.AchievedWFQ > 1.6) {
		t.Errorf("hypervisor should collapse to ~1:1, got %.2f", r.AchievedWFQ)
	}
	if r := get("bypass", 3); r.Err != "unsupported" {
		t.Errorf("bypass should be unsupported, got %+v", r)
	}

	for _, g := range res.Game {
		switch g.Arch {
		case "kernelstack", "sidecar", "kopi":
			if !g.Enforceable {
				t.Errorf("%s should enforce the game cap: game=%.2f bulk=%.2f", g.Arch, g.GameGbps, g.BulkGbps)
			}
		case "bypass", "hypervisor":
			if g.Enforceable {
				t.Errorf("%s should NOT enforce a per-user cap: game=%.2f bulk=%.2f", g.Arch, g.GameGbps, g.BulkGbps)
			}
		}
	}
}

// TestE7Blocking verifies the CPU-efficiency shape of the §2 scheduling
// scenario.
func TestE7Blocking(t *testing.T) {
	rows, tbl := RunE7(0.4)
	t.Logf("\n%s", tbl)

	get := func(name, mode string, rate int) *E7Row {
		for i := range rows {
			if rows[i].Arch == name && rows[i].Mode == mode && rows[i].RatePPS == rate {
				return &rows[i]
			}
		}
		return nil
	}

	// Bypass cannot block.
	if r := get("bypass", "unsupported", 10_000); r == nil {
		t.Error("bypass block mode should be unsupported")
	}
	// KOPI: polling burns a core even at 10kpps; blocking burns far less.
	poll := get("kopi", "poll", 10_000)
	block := get("kopi", "block", 10_000)
	if poll == nil || block == nil {
		t.Fatal("missing kopi rows")
	}
	if poll.CoresBurned < 0.9 {
		t.Errorf("kopi poll at 10kpps should burn ~1 core, got %.2f", poll.CoresBurned)
	}
	if block.CoresBurned > 0.3*poll.CoresBurned {
		t.Errorf("kopi block (%.3f cores) should be far below poll (%.3f)", block.CoresBurned, poll.CoresBurned)
	}
	if block.P50Latency <= poll.P50Latency {
		t.Errorf("blocking should cost latency: block p50 %v vs poll %v", block.P50Latency, poll.P50Latency)
	}
	if block.Delivered == 0 || poll.Delivered == 0 {
		t.Error("both modes must deliver traffic")
	}
	// Interrupt coalescing cuts the 1Mpps interrupt load dramatically for
	// a bounded latency cost.
	hot := get("kopi", "block", 1_000_000)
	coal := get("kopi", "block+coalesce", 1_000_000)
	if hot == nil || coal == nil {
		t.Fatal("missing high-rate kopi rows")
	}
	if coal.CoresBurned > 0.5*hot.CoresBurned {
		t.Errorf("coalescing should slash CPU at 1Mpps: %.3f vs %.3f",
			coal.CoresBurned, hot.CoresBurned)
	}
	if coal.Delivered == 0 {
		t.Error("coalesced mode must still deliver")
	}
	// Sidecar blocks its apps but still burns the dataplane core.
	if r := get("sidecar", "block", 10_000); r != nil && r.CoresBurned < 0.9 {
		t.Errorf("sidecar burns its dataplane core even when apps block, got %.2f", r.CoresBurned)
	}
	// Kernel stack supports blocking cheaply too.
	if r := get("kernelstack", "block", 10_000); r != nil && r.CoresBurned > 0.5 {
		t.Errorf("kernelstack block at 10kpps should be cheap, got %.2f", r.CoresBurned)
	}
}

// TestHypervisorFlowQoSWorks: the flip side of E6 — the hypervisor switch
// CAN shape by 5-tuple (its AccelNet heritage); what it cannot do is tell
// users apart. Classified by destination port instead of uid, its WFQ
// achieves the configured weights.
func TestHypervisorFlowQoSWorks(t *testing.T) {
	model := timing.Default()
	model.WireBW = sim.Gbps(10)
	a := arch.New("hypervisor", arch.WorldConfig{Model: model})
	w := a.World()

	until := sim.Time(4 * sim.Millisecond)
	winLo, winHi := until/4, until
	perPort := map[uint16]uint64{}
	w.Peer = func(p *packet.Packet, at sim.Time) {
		if p.UDP != nil && at >= winLo && at <= winHi {
			perPort[p.UDP.DstPort] += uint64(p.FrameLen())
		}
	}

	u := w.Kern.AddUser(1, "u")
	pa := w.Kern.Spawn(u.UID, "a")
	pb := w.Kern.Spawn(u.UID, "b")
	fa := w.Flow(20001, 873)
	fb := w.Flow(20002, 1234)
	ca, err := a.Connect(pa, fa)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := a.Connect(pb, fb)
	if err != nil {
		t.Fatal(err)
	}

	wf := qos.NewWFQ(512)
	wf.SetWeight(1, 3)
	wf.SetWeight(2, 1)
	if err := a.SetQdisc(wf, func(p *packet.Packet) uint32 {
		if p.UDP != nil && p.UDP.DstPort == 873 {
			return 1
		}
		return 2
	}); err != nil {
		t.Fatal(err)
	}

	mk := func(c *arch.Conn, f packet.FlowKey) *host.Sender {
		return &host.Sender{Arch: a, Conn: c, Flow: f, Payload: 8958,
			Interval: host.IntervalFor(9.5, 9000), Until: until, Burst: 8}
	}
	mk(ca, fa).Start(0)
	mk(cb, fb).Start(0)
	w.Eng.Run()

	ratio := float64(perPort[873]) / float64(perPort[1234])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("flow-level WFQ on the hypervisor should hit ~3:1, got %.2f", ratio)
	}
}
