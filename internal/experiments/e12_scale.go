package experiments

import (
	"norman/internal/arch"
	"norman/internal/mem"
	"norman/internal/sim"
	"norman/internal/stats"
	"norman/internal/transport"
)

// E12Point is one connection-count measurement on the sharded scale path.
type E12Point struct {
	Conns       int
	Shards      int // execution parameter; excluded from the table by design
	Pkts        uint64
	GoodputGbps float64
	MeanWaitUs  float64 // mean burst arrival→completion latency
	DescHitFrac float64 // descriptor-line DDIO hit fraction
	XShardMsgs  uint64  // mailbox events (conn completions crossing buckets)
	Drops       uint64  // burst-ring overflow rejects
	Epochs      uint64  // barrier epochs the coordinator ran
	HotBytes    int     // flyweight hot state per connection
}

// e12PktsPerConn is how many packets every connection receives; the last
// one completes the connection and sends a cross-bucket (usually
// cross-shard) completion credit.
const e12PktsPerConn = 4

// e12Chunk is the arrivals each bucket's generator pushes per 2µs tick —
// ~4 Mpps per bucket offered, comfortably under the batched drain path's
// service rate so rings never overflow at any sweep point.
const e12Chunk = 8

// RunE12 sweeps connection counts from 10k to 1M through the sharded
// within-world engine (DESIGN.md §8): fixed RSS buckets over flyweight
// connection records, batched burst-ring drains, and per-connection
// completions that cross buckets through the coordinator's mailboxes. The
// shards argument picks only the execution layout; every table cell is an
// integer (or a float computed from invariant integers), aggregated in
// bucket order, so the table is byte-identical at any shard count —
// TestE12Determinism diffs shards ∈ {1,2,4,8} and scripts/check.sh repeats
// the diff under -race.
func RunE12(scale Scale, shards int) ([]E12Point, *stats.Table) {
	if shards < 1 {
		shards = 1
	}
	sweep := []int{10_000, 50_000, 100_000, 500_000, 1_000_000}
	points := make([]E12Point, len(sweep))
	r := NewRunner()
	for i, base := range sweep {
		i := i
		n := scale.n(base, 128)
		r.Go(func() { points[i] = e12Run(n, shards) })
	}
	r.Wait()

	t := stats.NewTable("E12: sharded within-world engine, 10k-1M connections (shard-count invariant)",
		"conns", "pkts", "goodput (Gbps)", "burst wait (us)", "desc hit frac", "xshard msgs", "drops", "epochs", "hot B/conn")
	for _, p := range points {
		t.AddRow(p.Conns, int(p.Pkts), p.GoodputGbps, p.MeanWaitUs, p.DescHitFrac,
			int(p.XShardMsgs), int(p.Drops), int(p.Epochs), p.HotBytes)
	}
	return points, t
}

// e12Run drives one sweep point: n connections spread over the world's
// fixed buckets, e12PktsPerConn packets each, paced per bucket in
// e12Chunk-sized ticks.
func e12Run(n, shards int) E12Point {
	sw := arch.NewShardedWorld(arch.ShardedConfig{
		Shards: shards,
		Conns:  n,
	})
	buckets := len(sw.Buckets)
	lat := sim.Duration(sw.Model.WireLatency)
	tick := 2 * sim.Microsecond

	// Completion credits: the last packet of a connection sends a credit to
	// the bucket across the ring — on another shard whenever shards > 1.
	// Each slot of creditRecv is only ever written by its bucket's shard.
	creditRecv := make([]uint64, buckets)
	sw.Deliver = func(bucket int, d mem.PktRef, at sim.Time) {
		if !transport.FlyweightRx(sw.Slab, int(d.Conn), d.Seq, int(d.Len), at) {
			return
		}
		if d.Seq+1 == e12PktsPerConn {
			peer := (bucket + buckets/2) % buckets
			sw.Coord.Send(bucket, peer, at.Add(lat), func() { creditRecv[peer]++ })
		}
	}

	// Per-bucket generator: a self-rescheduling event that pushes e12Chunk
	// arrivals per tick, walking rounds × conns in connID order. Entirely
	// bucket-local and deterministic, so the arrival schedule — like
	// everything else — is shard-count invariant.
	for b := range sw.Buckets {
		bk := sw.Buckets[b]
		conns := sw.Conns(b)
		if len(conns) == 0 {
			continue
		}
		total := len(conns) * e12PktsPerConn
		cursor := 0
		var pump func()
		pump = func() {
			for i := 0; i < e12Chunk && cursor < total; i++ {
				c := conns[cursor%len(conns)]
				seq := transport.FlyweightTx(sw.Slab, int(c))
				bk.QG.Arrive(mem.PktRef{
					Conn: c,
					Seq:  seq,
					Len:  uint16(256 + c%64),
					At:   bk.Eng.Now(),
				})
				cursor++
			}
			if cursor < total {
				bk.Eng.After(tick, pump)
			}
		}
		bk.Eng.At(0, pump)
	}

	end := sw.Coord.Run()

	p := E12Point{
		Conns:    n,
		Shards:   shards,
		Pkts:     sw.Delivered(),
		Drops:    sw.Drops(),
		Epochs:   sw.Coord.Epochs(),
		HotBytes: sw.Slab.HotBytesPerConn(),
	}
	for i := 0; i < sw.Coord.Shards(); i++ {
		p.XShardMsgs += sw.Coord.MailSent(i)
	}
	if end > 0 {
		p.GoodputGbps = stats.Throughput(sw.BytesDelivered(), sim.Duration(end))
	}
	if bursts := sw.Bursts(); bursts > 0 {
		p.MeanWaitUs = (sim.Duration(sw.BurstWaitTotal()) / sim.Duration(bursts)).Seconds() * 1e6
	}
	if hit, miss := sw.DescAccesses(); hit+miss > 0 {
		p.DescHitFrac = float64(hit) / float64(hit+miss)
	}
	// Every connection must have completed and credited its peer bucket.
	var credits uint64
	for _, c := range creditRecv {
		credits += c
	}
	if credits != uint64(n) {
		panic("e12: lost completions: the sharded merge dropped events")
	}
	return p
}
