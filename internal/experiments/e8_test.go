package experiments

import "testing"

// TestE8OwnerFilter verifies the port-partition enforcement shape and the
// classifier scaling ablation.
func TestE8OwnerFilter(t *testing.T) {
	res, tbl := RunE8(0.5)
	t.Logf("\n%s", tbl)

	byArch := map[string]E8Row{}
	for _, r := range res.Enforcement {
		byArch[r.Arch] = r
	}
	for _, name := range []string{"kernelstack", "sidecar", "kopi"} {
		r := byArch[name]
		if !r.PolicyInstalled {
			t.Errorf("%s should accept owner rules", name)
		}
		if r.Violations != 0 {
			t.Errorf("%s let %d spoofed frames escape", name, r.Violations)
		}
		if r.LegitPackets == 0 {
			t.Errorf("%s blocked the legitimate postgres traffic", name)
		}
	}
	for _, name := range []string{"bypass", "hypervisor"} {
		r := byArch[name]
		if r.PolicyInstalled {
			t.Errorf("%s should not be able to install owner rules", name)
		}
		if r.Violations == 0 {
			t.Errorf("%s should leak spoofed frames without the policy", name)
		}
	}

	if len(res.Classifier) < 2 {
		t.Fatal("classifier sweep missing")
	}
	last := res.Classifier[len(res.Classifier)-1]
	if last.LinearEvals < float64(last.Rules)/4 {
		t.Errorf("linear classifier should scale with rules: %v evals for %d rules",
			last.LinearEvals, last.Rules)
	}
	if last.CompiledEvals > 10 {
		t.Errorf("compiled classifier should be ~O(1): %v evals for %d rules",
			last.CompiledEvals, last.Rules)
	}
}
