package experiments

import (
	"reflect"
	"testing"
)

// TestE14Determinism pins the flow-cache table at any execution layout: the
// cache's clock hands, partition quotas and per-tenant counters all advance
// in virtual time with sorted iteration everywhere, so the whole E14 table
// is byte-identical across worker-pool widths and engine shard counts.
func TestE14Determinism(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	seq, seqTable := RunE14(0.12, 1)

	SetWorkers(8)
	wide, wideTable := RunE14(0.12, 1)
	if !reflect.DeepEqual(seq, wide) {
		t.Fatalf("E14 rows differ between 1 and 8 workers:\n%+v\n%+v", seq, wide)
	}
	if seqTable.String() != wideTable.String() {
		t.Fatalf("E14 tables differ between 1 and 8 workers:\n%s\n%s",
			seqTable.String(), wideTable.String())
	}

	sharded, shardedTable := RunE14(0.12, 4)
	if !reflect.DeepEqual(seq, sharded) {
		t.Fatalf("E14 rows differ between 1 and 4 engine shards:\n%+v\n%+v", seq, sharded)
	}
	if seqTable.String() != shardedTable.String() {
		t.Fatalf("E14 tables differ between 1 and 4 engine shards:\n%s\n%s",
			seqTable.String(), shardedTable.String())
	}
}

// TestE14FlowCache asserts the architectural content of the table:
//
//   - The fast path works: with the flood small enough to fit, nearly every
//     lookup hits and interpreter cycles per frame collapse to almost zero —
//     a hit costs one lookup, not one interpretation.
//   - Thrash degrades gracefully: at 8192 flood flows the shared cache's hit
//     rate collapses and evictions churn, but the world never loses a frame
//     silently and the cache's conservation ledger stays balanced.
//   - The tenant partition isolates: the victim's private hit rate stays at
//     established-flow levels under the full flood, strictly above the
//     shared cache's, and the flood's failed installs are typed denials.
func TestE14FlowCache(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fidelity sweep: the sub-0.5 scales shorten runs into the warm-up transient")
	}
	points, _ := RunE14(0.6, 1)

	byFlows := make(map[int]E14Point, len(points))
	for _, p := range points {
		byFlows[p.FloodFlows] = p
	}
	fit, ok := byFlows[64]
	if !ok {
		t.Fatal("sweep must include the 64-flow everything-fits point")
	}
	thrash, ok := byFlows[8192]
	if !ok {
		t.Fatal("sweep must include the 8192-flow thrash point")
	}

	// Zero silent loss and a balanced ledger in every leg of every point.
	for _, p := range points {
		if p.OffSilent != 0 || p.ShrSilent != 0 || p.PrtSilent != 0 {
			t.Fatalf("flood=%d: silent loss off=%d shr=%d prt=%d",
				p.FloodFlows, p.OffSilent, p.ShrSilent, p.PrtSilent)
		}
		if p.ShrLedger != 0 || p.PrtLedger != 0 {
			t.Fatalf("flood=%d: conservation ledger broken shr=%d prt=%d",
				p.FloodFlows, p.ShrLedger, p.PrtLedger)
		}
	}

	// The fast path: when the working set fits, hits dominate and the
	// interpreter all but idles.
	if fit.ShrHitPct < 99 {
		t.Fatalf("fitting working set must hit >=99%%: %.1f%%", fit.ShrHitPct)
	}
	if fit.OffCycPkt < 5 {
		t.Fatalf("cache-off baseline must pay interpretation: %.1f cyc/pkt", fit.OffCycPkt)
	}
	if fit.ShrCycPkt > 0.1*fit.OffCycPkt {
		t.Fatalf("cache-on interpreter cost %.2f must be <10%% of off %.2f cyc/pkt",
			fit.ShrCycPkt, fit.OffCycPkt)
	}
	// A hit is never slower than an interpretation: the cached world's
	// victim tail must not regress past the cache-off baseline.
	for _, p := range points {
		if p.ShrP99 > 1.05*p.OffP99 {
			t.Fatalf("flood=%d: cached victim p99 %.2fµs regressed past off %.2fµs",
				p.FloodFlows, p.ShrP99, p.OffP99)
		}
	}

	// Thrash: the flood churns the shared cache and the global hit rate
	// collapses — but degradation is graceful (counters, not corruption).
	if thrash.ShrHitPct > 70 {
		t.Fatalf("8192-flow flood must collapse the shared hit rate: %.1f%%", thrash.ShrHitPct)
	}
	if thrash.ShrEvicts == 0 {
		t.Fatal("thrash must evict")
	}

	// Partition: the victim's hit rate survives the full flood at
	// established-flow levels, strictly better than sharing, and the
	// flood's pressure shows up as typed denials.
	if thrash.PrtVicHitPct < 99 {
		t.Fatalf("partitioned victim hit rate must hold >=99%%: %.1f%%", thrash.PrtVicHitPct)
	}
	if thrash.PrtVicHitPct <= thrash.ShrVicHitPct {
		t.Fatalf("partition must beat sharing for the victim: %.1f%% vs %.1f%%",
			thrash.PrtVicHitPct, thrash.ShrVicHitPct)
	}
	if thrash.PrtDenied == 0 {
		t.Fatal("partition must deny the flood's installs, not absorb them")
	}
}
