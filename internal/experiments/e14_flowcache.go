package experiments

import (
	"fmt"
	"strings"

	"norman/internal/arch"
	"norman/internal/host"
	"norman/internal/nic"
	"norman/internal/overlay"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/stats"
	"norman/internal/timing"
)

// E14Point is one flood-size measurement of the NIC's exact-match flow cache
// (DESIGN.md §10). A victim tenant runs a small set of long-lived flows
// through a cacheable ACL ingress program while an adversarial tenant offers
// a SYN-flood-like churn of short flows — each flood flow is touched so
// rarely that it can never be re-hit, so every flood packet is a slow-path
// miss plus an install, thrashing whatever shares the table with it. Three
// worlds per point: the cache disabled (every packet interpreted), the cache
// shared (the flood evicts the victim's entries), and the cache partitioned
// by tenant weight (flood installs are denied before they can steal a
// victim slot).
type E14Point struct {
	FloodFlows int

	// Off: no cache — the interpretation-cost baseline.
	OffCycPkt float64 // interpreter cycles per offered frame
	OffP99    float64 // victim NIC->app delivery p99 in µs
	OffSilent int64

	// Shared: cache on, unpartitioned.
	ShrHitPct    float64 // global lookup hit rate, %
	ShrVicHitPct float64 // victim's own hit rate, %
	ShrCycPkt    float64
	ShrP99       float64
	ShrEvicts    uint64
	ShrSilent    int64
	ShrLedger    int64 // installs − evictions − invalidations − live (must be 0)

	// Part: cache on, partitioned 7:1 by tenant weight.
	PrtVicHitPct float64
	PrtDenied    uint64 // flood installs refused at the partition boundary
	PrtP99       float64
	PrtSilent    int64
	PrtLedger    int64
}

// E14 identities and shape: the same 7:1 victim/adversary split as E13, a
// 256-entry cache (64 buckets × 4 ways, 8 KiB of SRAM), and a victim whose
// 64 flows fit its 224-entry partition with room to spare.
const (
	e14VictimUID  = 101
	e14AdvUID     = 202
	e14VictimTid  = 1
	e14AdvTid     = 2
	e14VictimW    = 7
	e14AdvW       = 1
	e14RingSize   = 16
	e14CacheSlots = 256
)

// Victim traffic: 64 established flows, small frames at 12.5 Gbps (a flow is
// re-referenced every ~12 µs). Flood traffic: minimum-size frames at 10 Gbps
// round-robin over FloodFlows short flows — at 8192 flows each is revisited
// every ~700 µs, far past any plausible residency, so the flood is pure
// install churn.
const (
	e14VictimConns   = 64
	e14VictimPayload = 256
	e14VictimFrame   = e14VictimPayload + 42
	e14VictimGbps    = 12.5
	e14FloodPayload  = 64
	e14FloodFrame    = e14FloodPayload + 42
	e14FloodGbps     = 10
)

// e14ACLSource is the cacheable ingress program: a 15-rule port blocklist
// (none of which matches this experiment's traffic), a mark rewrite, and a
// pass — ~35 interpreted cycles per slow-path packet, zero per hit. It uses
// no meter/update/mirror/notify, so programCacheable admits it.
func e14ACLSource() string {
	var b strings.Builder
	b.WriteString("ldf r0, dst_port\n")
	for i := 0; i < 15; i++ {
		fmt.Fprintf(&b, "jeq r0, %d, blocked\n", 9000+i)
	}
	b.WriteString("ldi r2, 7\n")
	b.WriteString("setf mark, r2\n")
	b.WriteString("pass\n")
	b.WriteString("blocked:\n")
	b.WriteString("drop\n")
	return b.String()
}

// RunE14 sweeps the flood's flow count and measures hit rates, interpreter
// cycles per frame, eviction/denial churn and the victim's delivery tail in
// the three worlds. shards is an execution parameter only; every cell is
// byte-identical at any shard or worker width (TestE14Determinism).
func RunE14(scale Scale, shards int) ([]E14Point, *stats.Table) {
	if shards < 1 {
		shards = 1
	}
	sweep := []int{64, 512, 2048, 8192}
	if scale < 0.5 {
		sweep = []int{64, 8192}
	}
	points := make([]E14Point, len(sweep))
	r := NewRunner()
	for i, n := range sweep {
		i, n := i, n
		points[i].FloodFlows = n
		r.Go(func() {
			res := e14Run(n, e14Off, scale, shards)
			points[i].OffCycPkt = res.cycPkt
			points[i].OffP99 = res.vicP99
			points[i].OffSilent = res.silent
		})
		r.Go(func() {
			res := e14Run(n, e14Shared, scale, shards)
			points[i].ShrHitPct = res.hitPct
			points[i].ShrVicHitPct = res.vicHitPct
			points[i].ShrCycPkt = res.cycPkt
			points[i].ShrP99 = res.vicP99
			points[i].ShrEvicts = res.evicts
			points[i].ShrSilent = res.silent
			points[i].ShrLedger = res.ledger
		})
		r.Go(func() {
			res := e14Run(n, e14Part, scale, shards)
			points[i].PrtVicHitPct = res.vicHitPct
			points[i].PrtDenied = res.denied
			points[i].PrtP99 = res.vicP99
			points[i].PrtSilent = res.silent
			points[i].PrtLedger = res.ledger
		})
	}
	r.Wait()

	t := stats.NewTable("E14: flow-cache fast path vs a short-flow flood (victim 64 flows @12.5G, flood min-size frames @10G; 256-entry cache)",
		"flood flows", "off cyc/pkt", "off p99(µs)",
		"shr hit%", "shr vic hit%", "shr cyc/pkt", "shr p99(µs)", "shr evicts",
		"prt vic hit%", "prt denied", "prt p99(µs)", "silent")
	for _, p := range points {
		silent := p.OffSilent
		if abs64(p.ShrSilent) > abs64(silent) {
			silent = p.ShrSilent
		}
		if abs64(p.PrtSilent) > abs64(silent) {
			silent = p.PrtSilent
		}
		t.AddRow(p.FloodFlows,
			fmt.Sprintf("%.1f", p.OffCycPkt), fmt.Sprintf("%.1f", p.OffP99),
			fmt.Sprintf("%.1f", p.ShrHitPct), fmt.Sprintf("%.1f", p.ShrVicHitPct),
			fmt.Sprintf("%.1f", p.ShrCycPkt), fmt.Sprintf("%.1f", p.ShrP99), p.ShrEvicts,
			fmt.Sprintf("%.1f", p.PrtVicHitPct), p.PrtDenied,
			fmt.Sprintf("%.1f", p.PrtP99), silent)
	}
	return points, t
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// e14Leg selects which world one run simulates.
type e14Leg int

const (
	e14Off    e14Leg = iota // no flow cache
	e14Shared               // cache on, unpartitioned
	e14Part                 // cache on, tenant-partitioned 7:1
)

// e14Result is what one world reports.
type e14Result struct {
	hitPct    float64
	vicHitPct float64
	cycPkt    float64
	vicP99    float64
	evicts    uint64
	denied    uint64
	silent    int64
	ledger    int64
}

// e14Run offers victim + flood inbound traffic through the cacheable ACL on
// a tenant-scheduled KOPI world and reports cache accounting, interpreter
// cost and the victim's delivery tail. The tenant scheduler runs in every
// leg so the only variable between worlds is the cache configuration.
func e14Run(floodFlows int, leg e14Leg, scale Scale, shards int) e14Result {
	model := timing.Default()
	a := arch.New("kopi", arch.WorldConfig{Model: model, RingSize: e14RingSize, Shards: shards})
	w := a.World()
	w.Peer = func(*packet.Packet, sim.Time) {}

	vicUser := w.Kern.AddUser(e14VictimUID, "victim")
	advUser := w.Kern.AddUser(e14AdvUID, "flooder")
	vicProc := w.Kern.Spawn(vicUser.UID, "victim-svc")
	advProc := w.Kern.Spawn(advUser.UID, "flood-src")
	w.Kern.AssignTenant(e14VictimUID, e14VictimTid)
	w.Kern.AssignTenant(e14AdvUID, e14AdvTid)

	weights := map[uint32]int{e14VictimTid: e14VictimW, e14AdvTid: e14AdvW}
	w.NIC.SetTenantScheduler(weights)
	if leg != e14Off {
		if err := w.NIC.EnableFlowCache(e14CacheSlots); err != nil {
			panic(fmt.Sprintf("e14: enable cache: %v", err))
		}
		if leg == e14Part {
			if err := w.NIC.FlowCache().SetQuotas(weights); err != nil {
				panic(fmt.Sprintf("e14: partition: %v", err))
			}
		}
	}

	prog, err := overlay.Assemble("e14-acl", e14ACLSource())
	if err != nil {
		panic(fmt.Sprintf("e14: assemble: %v", err))
	}
	if _, _, err := w.NIC.LoadProgram(nic.Ingress, prog); err != nil {
		panic(fmt.Sprintf("e14: load: %v", err))
	}

	vicFlows := make([]packet.FlowKey, 0, e14VictimConns)
	for i := 0; i < e14VictimConns; i++ {
		flow := w.Flow(uint16(3000+i/512), uint16(6000+i%512))
		vicFlows = append(vicFlows, flow)
		if _, err := a.Connect(vicProc, flow); err != nil {
			panic(fmt.Sprintf("e14: victim connect %d: %v", i, err))
		}
	}
	advFlows := make([]packet.FlowKey, 0, floodFlows)
	for i := 0; i < floodFlows; i++ {
		flow := w.Flow(uint16(2000+i/512), uint16(7000+i%512))
		advFlows = append(advFlows, flow)
		if _, err := a.Connect(advProc, flow); err != nil {
			panic(fmt.Sprintf("e14: flood connect %d: %v", i, err))
		}
	}

	dur := scale.d(4 * sim.Millisecond)
	winLo := sim.Time(dur) / 2
	var delivered uint64
	var vicLat stats.Histogram
	a.SetDeliver(func(c *arch.Conn, p *packet.Packet, at sim.Time) {
		delivered++
		if at < winLo || c.Info.UID != vicUser.UID {
			return
		}
		vicLat.Observe(at.Sub(p.Meta.Enqueued))
	})

	vgen := &host.InboundGen{
		Arch: a, Flows: vicFlows, Payload: e14VictimPayload,
		Interval: host.IntervalFor(e14VictimGbps, e14VictimFrame),
		Until:    sim.Time(dur),
	}
	vgen.Start(0)
	agen := &host.InboundGen{
		Arch: a, Flows: advFlows, Payload: e14FloodPayload,
		Interval: host.IntervalFor(e14FloodGbps, e14FloodFrame),
		Until:    sim.Time(dur),
	}
	agen.Start(0)
	if w.Coord != nil {
		w.Coord.RunUntil(sim.Time(dur))
		w.Coord.Run()
	} else {
		w.Eng.RunUntil(sim.Time(dur))
		w.Eng.Run()
	}

	sent := vgen.Sent + agen.Sent
	res := e14Result{
		vicP99: float64(vicLat.P99()) / float64(sim.Microsecond),
		cycPkt: float64(w.NIC.IngressProgCycles) / float64(sent),
	}
	if f := w.NIC.FlowCache(); f != nil {
		if total := f.Hits + f.Misses; total > 0 {
			res.hitPct = 100 * float64(f.Hits) / float64(total)
		}
		for _, ts := range f.TenantStats() {
			if ts.Tenant != e14VictimTid {
				continue
			}
			// A tenant's misses are its installs plus its denials (every
			// slow-path run attempts exactly one install), so its private
			// hit rate needs no per-tenant miss counter.
			if runs := ts.Hits + ts.Installs + ts.Denied; runs > 0 {
				res.vicHitPct = 100 * float64(ts.Hits) / float64(runs)
			}
		}
		res.evicts = f.Evictions
		res.denied = f.Denied
		res.ledger = int64(f.Installs) - int64(f.Evictions) - int64(f.Invalidations) - int64(f.Len())
	}
	// The zero-silent-loss ledger: every offered frame is delivered or sits
	// in exactly one drop counter — with or without the fast path.
	counted := w.NIC.RxDropNoSteer + w.NIC.RxDropRing + w.NIC.RxFifoDrop +
		w.NIC.RxDropVerdict + w.NIC.RxOutageDrop + w.NIC.RxShed
	res.silent = int64(sent) - int64(delivered) - int64(counted)
	return res
}
