package experiments

import (
	"strings"

	"norman/internal/arch"
	"norman/internal/filter"
	"norman/internal/host"
	"norman/internal/nic"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/stats"
)

// E4LoadPoint is one overlay-load measurement.
type E4LoadPoint struct {
	Rules     int
	LoadTime  sim.Duration // control-plane latency to install the program
	ProgInsts int          // compiled program size
}

// E4Disruption quantifies the dataplane impact of one policy update under
// steady traffic.
type E4Disruption struct {
	Mechanism   string
	UpdateTime  sim.Duration
	LostPackets uint64
	LostWindow  sim.Duration // over how long the losses occurred
}

// E4Result aggregates the reconfiguration experiment.
type E4Result struct {
	Loads       []E4LoadPoint
	Disruptions []E4Disruption
	// YearlyUpdates is the 2020 net/netfilter + net/sched commit count the
	// paper cites as the update rate an interposition layer must absorb.
	YearlyUpdates int
}

// RunE4 reproduces the programmability argument (§3, §4.4, §5-Q2): policy
// updates through the overlay are online and cheap (µs–ms of control-plane
// time, zero dataplane loss), while a full bitstream respin is a
// seconds-long dataplane outage — acceptable for "kernel upgrades", not for
// the 626 netfilter+sched changes Linux shipped in 2020 alone.
func RunE4(scale Scale) (*E4Result, *stats.Table) {
	res := &E4Result{YearlyUpdates: 377 + 249}

	// Loads and disruption runs are each their own quiet world; fan out.
	ruleCounts := []int{1, 16, 64, 256, 1024}
	res.Loads = make([]E4LoadPoint, len(ruleCounts))
	res.Disruptions = make([]E4Disruption, 3)
	r := NewRunner()
	for i, n := range ruleCounts {
		i, n := i, n
		r.Go(func() { res.Loads[i] = e4Load(n) })
	}
	r.Go(func() { res.Disruptions[0] = e4Disrupt("overlay-reload", false, scale) })
	r.Go(func() { res.Disruptions[1] = e4Disrupt("bitstream-respin", true, scale) })
	r.Go(func() { res.Disruptions[2] = e4KernelRuleUpdate(scale) })
	r.Wait()

	t := stats.NewTable("E4a: overlay program load latency vs compiled rule count",
		"rules", "instructions", "load latency")
	for _, l := range res.Loads {
		t.AddRow(l.Rules, l.ProgInsts, l.LoadTime.String())
	}

	t2 := stats.NewTable("\nE4b: dataplane disruption per policy update (1460B @ ~9G background)",
		"mechanism", "update latency", "packets lost", "loss window")
	for _, d := range res.Disruptions {
		t2.AddRow(d.Mechanism, d.UpdateTime.String(), d.LostPackets, d.LostWindow.String())
	}

	return res, composeTables(t, t2)
}

// composeTables renders multiple sub-tables as one table object (the
// experiment index maps one bench per experiment; some experiments report
// sub-tables). The composite's title carries the fully rendered text.
func composeTables(tables ...*stats.Table) *stats.Table {
	title := ""
	for i, tb := range tables {
		if i > 0 {
			title += "\n"
		}
		title += strings.TrimRight(tb.String(), "\n")
	}
	return stats.NewTable(title)
}

// e4Load compiles an n-rule OUTPUT chain and measures the overlay load
// latency on a quiet NIC.
func e4Load(n int) E4LoadPoint {
	a := arch.New("kopi", arch.WorldConfig{}).(*arch.KOPI)
	ch := &filter.Chain{Name: "OUTPUT", Policy: filter.ActAccept}
	for i := 0; i < n; i++ {
		ch.Rules = append(ch.Rules, &filter.Rule{
			Proto:    filter.Proto(packet.ProtoUDP),
			DstPorts: filter.Port(uint16(1000 + i)),
			Action:   filter.ActDrop,
		})
	}
	prog, err := filter.CompileOverlay("e4", ch, nil)
	if err != nil {
		panic("e4: compile: " + err.Error())
	}
	_, load, err := a.World().NIC.LoadProgram(nic.Egress, prog)
	if err != nil {
		panic("e4: load: " + err.Error())
	}
	return E4LoadPoint{Rules: n, LoadTime: load, ProgInsts: len(prog.Code)}
}

// e4Disrupt runs steady egress traffic and applies one update mid-run:
// an online overlay reload, or a full bitstream respin with its outage.
func e4Disrupt(name string, bitstream bool, scale Scale) E4Disruption {
	a := arch.New("kopi", arch.WorldConfig{}).(*arch.KOPI)
	w := a.World()
	sink := host.NewSinkPeer()
	w.Peer = sink.Recv

	alice := w.Kern.AddUser(1000, "alice")
	proc := w.Kern.Spawn(alice.UID, "app")
	flow := w.Flow(30000, 9)
	c, err := a.Connect(proc, flow)
	if err != nil {
		panic("e4: connect: " + err.Error())
	}

	dur := scale.d(20 * sim.Millisecond)
	outage := scale.d(5 * sim.Millisecond) // scaled stand-in for the ~3s respin
	s := &host.Sender{Arch: a, Conn: c, Flow: flow, Payload: 1460,
		Interval: host.IntervalFor(9, 1502), Until: sim.Time(dur), Burst: 8}
	s.Start(0)

	var updateTime sim.Duration
	w.Eng.At(sim.Time(dur)/2, func() {
		if bitstream {
			w.NIC.ReloadBitstream(w.Eng.Now(), outage)
			updateTime = outage
			return
		}
		rule := &filter.Rule{
			Proto:    filter.Proto(packet.ProtoUDP),
			DstPorts: filter.Port(4444),
			Action:   filter.ActDrop,
		}
		if err := a.InstallRule(filter.HookOutput, rule); err != nil {
			panic("e4: install: " + err.Error())
		}
		updateTime = a.LastProgramLoad
	})
	w.Eng.Run()

	lost := s.Sent - sink.Packets
	return E4Disruption{
		Mechanism:   name,
		UpdateTime:  updateTime,
		LostPackets: lost,
		LostWindow:  outage,
	}
}

// e4KernelRuleUpdate measures the same update on the kernel stack: an
// iptables rule insert is a locked list append — cheap, no loss — the bar
// KOPI's overlay path has to meet.
func e4KernelRuleUpdate(scale Scale) E4Disruption {
	a := arch.New("kernelstack", arch.WorldConfig{}).(*arch.KernelStack)
	w := a.World()
	sink := host.NewSinkPeer()
	w.Peer = sink.Recv

	alice := w.Kern.AddUser(1000, "alice")
	proc := w.Kern.Spawn(alice.UID, "app")
	flow := w.Flow(30000, 9)
	c, err := a.Connect(proc, flow)
	if err != nil {
		panic("e4: connect: " + err.Error())
	}
	dur := scale.d(20 * sim.Millisecond)
	s := &host.Sender{Arch: a, Conn: c, Flow: flow, Payload: 1460,
		Interval: host.IntervalFor(5, 1502), Until: sim.Time(dur), Burst: 8}
	s.Start(0)
	w.Eng.At(sim.Time(dur)/2, func() {
		rule := &filter.Rule{
			Proto:    filter.Proto(packet.ProtoUDP),
			DstPorts: filter.Port(4444),
			Action:   filter.ActDrop,
		}
		if err := a.InstallRule(filter.HookOutput, rule); err != nil {
			panic("e4: kernel install: " + err.Error())
		}
	})
	w.Eng.Run()
	lost := s.Sent - sink.Packets
	return E4Disruption{
		Mechanism:   "kernel-rule-update",
		UpdateTime:  2 * sim.Microsecond, // rtnetlink + list splice
		LostPackets: lost,
	}
}
