package experiments

import (
	"norman/internal/arch"
	"norman/internal/filter"
	"norman/internal/host"
	"norman/internal/packet"
	"norman/internal/qos"
	"norman/internal/sim"
	"norman/internal/stats"
)

// E1Row is one architecture's dataplane cost profile.
type E1Row struct {
	Arch      string
	Transfers int

	ThrBareGbps   float64 // 1460B payload egress throughput, no policies
	ThrPolicyGbps float64 // same with 16 filter rules + WFQ installed
	Thr64Gbps     float64 // 64B payload egress throughput, no policies
	ThrRxGbps     float64 // 1460B inbound delivered to the application

	RTT50      sim.Duration // closed-loop echo median
	RTT99      sim.Duration
	CPUPerGbit float64 // core-seconds per gigabit moved (bare 1460B run)
}

// RunE1 reproduces the paper's data-movement argument (§1/§3): kernel bypass
// wins by eliminating transfers; KOPI interposes without giving that back.
// Expected shape: kernelstack ≪ sidecar < bypass ≈ hypervisor ≈ kopi, with
// the policy column costing kopi (and hypervisor) nothing and the software
// stacks real throughput.
func RunE1(scale Scale) ([]E1Row, *stats.Table) {
	// Each measurement builds a fresh world, so every (arch, metric) cell
	// is independent: fan all of them out; each task writes only its row's
	// fields.
	names := arch.Names()
	rows := make([]E1Row, len(names)+1)
	r := NewRunner()
	for i, name := range names {
		i, name := i, name
		row := &rows[i]
		row.Arch = name
		row.Transfers = arch.New(name, arch.WorldConfig{}).Caps().Transfers
		r.Go(func() {
			row.ThrBareGbps, row.CPUPerGbit = e1Throughput(arch.New(name, arch.WorldConfig{}), 1460, false, scale)
		})
		r.Go(func() { row.Thr64Gbps, _ = e1Throughput(arch.New(name, arch.WorldConfig{}), 64, false, scale) })
		r.Go(func() { row.ThrPolicyGbps, _ = e1Throughput(arch.New(name, arch.WorldConfig{}), 1460, true, scale) })
		r.Go(func() { row.ThrRxGbps = e1RxThroughput(arch.New(name, arch.WorldConfig{}), scale) })
		r.Go(func() { row.RTT50, row.RTT99 = e1RTT(arch.New(name, arch.WorldConfig{}), scale) })
	}
	// Sensitivity row: give the kernel stack four softirq queues (RSS
	// multi-queue) and a polling receiver — the fairest fight the kernel
	// can put up without rewriting its per-packet path. It narrows the RX
	// gap but does not close it: the per-packet stack cost just moves.
	mq := arch.WorldConfig{KernQueues: 4}
	row := &rows[len(names)]
	row.Arch = "kernelstack-4q"
	row.Transfers = 2
	r.Go(func() {
		row.ThrBareGbps, row.CPUPerGbit = e1Throughput(arch.New("kernelstack", mq), 1460, false, scale)
	})
	r.Go(func() { row.Thr64Gbps, _ = e1Throughput(arch.New("kernelstack", mq), 64, false, scale) })
	r.Go(func() { row.ThrPolicyGbps, _ = e1Throughput(arch.New("kernelstack", mq), 1460, true, scale) })
	r.Go(func() { row.ThrRxGbps = e1RxThroughputPolled(arch.New("kernelstack", mq), scale) })
	r.Go(func() { row.RTT50, row.RTT99 = e1RTT(arch.New("kernelstack", mq), scale) })
	r.Wait()

	t := stats.NewTable("E1: dataplane cost by architecture (single app)",
		"arch", "transfers", "tx1460(Gbps)", "tx+policy(Gbps)", "tx64(Gbps)",
		"rx1460(Gbps)", "rtt p50", "rtt p99", "core-s/Gbit")
	for _, r := range rows {
		t.AddRow(r.Arch, r.Transfers, r.ThrBareGbps, r.ThrPolicyGbps, r.Thr64Gbps,
			r.ThrRxGbps, r.RTT50.String(), r.RTT99.String(), r.CPUPerGbit)
	}
	return rows, t
}

// e1Throughput measures egress goodput at the peer sink under open-loop
// saturation, optionally with a representative policy set installed.
func e1Throughput(a arch.Arch, payload int, withPolicy bool, scale Scale) (gbps, cpuPerGbit float64) {
	w := a.World()
	sink := host.NewSinkPeer()
	w.Peer = sink.Recv

	alice := w.Kern.AddUser(1000, "alice")
	proc := w.Kern.Spawn(alice.UID, "blaster")
	flow := w.Flow(41000, 9)
	c, err := a.Connect(proc, flow)
	if err != nil {
		panic("e1: connect: " + err.Error())
	}

	if withPolicy {
		installE1Policies(a)
	}

	frame := packetFrameLen(payload)
	dur := scale.d(8 * sim.Millisecond)
	// Offer 140% of line rate so the bottleneck, wherever it is, saturates.
	s := &host.Sender{
		Arch: a, Conn: c, Flow: flow, Payload: payload,
		Interval: host.IntervalFor(140, frame),
		Until:    sim.Time(dur),
		Burst:    32,
	}
	s.Start(0)
	w.Eng.RunUntil(sim.Time(dur) + sim.Time(2*sim.Millisecond))
	gbps = sink.Gbps()
	busy := w.CPUBusy(w.Eng.Now())
	gbits := float64(sink.Bytes) * 8 / 1e9
	if gbits > 0 {
		cpuPerGbit = busy.Seconds() / gbits
	}
	return gbps, cpuPerGbit
}

// e1RxThroughput measures inbound goodput delivered to the application
// under line-rate offered load — the receive half of the data-movement
// argument (the kernel's softirq path is the bottleneck long before the
// wire is).
func e1RxThroughput(a arch.Arch, scale Scale) float64 {
	return e1Rx(a, scale, false)
}

// e1RxThroughputPolled forces the receiver into poll mode (no per-packet
// wake), isolating the stack cost from the scheduler cost.
func e1RxThroughputPolled(a arch.Arch, scale Scale) float64 {
	return e1Rx(a, scale, true)
}

func e1Rx(a arch.Arch, scale Scale, polled bool) float64 {
	w := a.World()
	w.Peer = func(*packet.Packet, sim.Time) {}

	alice := w.Kern.AddUser(1000, "alice")
	proc := w.Kern.Spawn(alice.UID, "server")
	flow := w.Flow(43000, 9)
	c, err := a.Connect(proc, flow)
	if err != nil {
		panic("e1: connect: " + err.Error())
	}
	if polled {
		if err := a.SetRxMode(c, arch.RxPoll); err != nil {
			panic("e1: rx mode: " + err.Error())
		}
	}

	dur := scale.d(8 * sim.Millisecond)
	winLo := sim.Time(dur) / 3
	var winBytes uint64
	a.SetDeliver(func(_ *arch.Conn, p *packet.Packet, at sim.Time) {
		if at >= winLo {
			winBytes += uint64(p.FrameLen())
		}
	})
	gen := &host.InboundGen{
		Arch: a, Flows: []packet.FlowKey{flow}, Payload: 1460,
		Interval: host.IntervalFor(100, 1502),
		Until:    sim.Time(dur),
	}
	gen.Start(0)
	w.Eng.RunUntil(sim.Time(dur))
	return stats.Throughput(winBytes, sim.Time(dur).Sub(winLo))
}

// e1RTT measures closed-loop echo latency.
func e1RTT(a arch.Arch, scale Scale) (p50, p99 sim.Duration) {
	w := a.World()
	w.Peer = host.EchoPeer(a)
	bob := w.Kern.AddUser(1001, "bob")
	proc := w.Kern.Spawn(bob.UID, "pinger")
	flow := w.Flow(42000, 7)
	c, err := a.Connect(proc, flow)
	if err != nil {
		panic("e1: connect: " + err.Error())
	}
	m := host.NewMux(a)
	probe := &host.Probe{Arch: a, Conn: c, Flow: flow, Payload: 64, Count: scale.n(500, 50)}
	probe.Start(m)
	w.Eng.Run()
	return probe.Hist.P50(), probe.Hist.P99()
}

// installE1Policies applies a representative admin configuration: 16
// assorted firewall rules and a WFQ scheduler classed by user.
func installE1Policies(a arch.Arch) {
	for i := 0; i < 8; i++ {
		r := &filter.Rule{
			Proto:    filter.Proto(packet.ProtoUDP),
			DstPorts: filter.Port(uint16(20000 + i)),
			Action:   filter.ActDrop,
		}
		if err := a.InstallRule(filter.HookOutput, r); err != nil {
			return // architecture cannot interpose; policy column equals bare
		}
		in := &filter.Rule{
			Proto:    filter.Proto(packet.ProtoUDP),
			DstPorts: filter.Port(uint16(21000 + i)),
			Action:   filter.ActDrop,
		}
		if err := a.InstallRule(filter.HookInput, in); err != nil {
			return
		}
	}
	q := qos.NewWFQ(4096)
	q.SetWeight(1, 3)
	q.SetWeight(2, 1)
	_ = a.SetQdisc(q, func(p *packet.Packet) uint32 {
		if p.Meta.TrustedMeta && p.Meta.UID == 1000 {
			return 1
		}
		return 2
	})
}

// packetFrameLen mirrors packet.Packet.FrameLen for a UDP payload.
func packetFrameLen(payload int) int {
	n := 14 + 20 + 8 + payload
	if n < 60 {
		n = 60
	}
	return n
}
