package experiments

import (
	"fmt"

	"norman/internal/arch"
	"norman/internal/host"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/stats"
	"norman/internal/timing"
)

// E3Point is one connection-count measurement across ring/DDIO variants.
type E3Point struct {
	Conns int

	DefaultGbps float64 // per-conn rings, DDIO 2/11 ways (the paper's setup)
	DDIO0Gbps   float64 // DDIO disabled: DMA always goes to DRAM
	DDIO4Gbps   float64 // DDIO doubled to 4 ways
	IdealGbps   float64 // no cache modeling: infinite DDIO
	SharedGbps  float64 // connections share 16 rings (§5's proposed mitigation)

	DefaultMissFrac float64 // DMA descriptor miss fraction in the default run
}

// RunE3 reproduces the §5-Q1 anecdote: "our current implementation fails to
// sustain full (100Gbps) throughput when there are more than 1024 concurrent
// connections", suspected DDIO exhaustion. Expected shape: the default
// configuration holds ~line rate up to ~1k connections then falls off a
// cliff; the cliff moves right with more DDIO ways, is absent with infinite
// DDIO, is everywhere with DDIO off, and disappears when rings are shared.
func RunE3(scale Scale) ([]E3Point, *stats.Table) {
	sweep := []int{64, 256, 512, 1024, 1536, 2048, 3072, 4096}
	if scale < 0.5 {
		sweep = []int{64, 512, 1024, 2048, 4096}
	}
	// Every (connection count, variant) cell is an isolated world: fan all
	// of them out and write each result into its own slot, so the table is
	// byte-identical at any worker count.
	points := make([]E3Point, len(sweep))
	r := NewRunner()
	for i, n := range sweep {
		i, n := i, n
		points[i].Conns = n
		r.Go(func() { points[i].DefaultGbps, points[i].DefaultMissFrac = e3Run(n, e3Variant{ddioWays: 2}, scale) })
		r.Go(func() { points[i].DDIO0Gbps, _ = e3Run(n, e3Variant{ddioWays: 0}, scale) })
		r.Go(func() { points[i].DDIO4Gbps, _ = e3Run(n, e3Variant{ddioWays: 4}, scale) })
		r.Go(func() { points[i].IdealGbps, _ = e3Run(n, e3Variant{noLLC: true}, scale) })
		r.Go(func() { points[i].SharedGbps, _ = e3Run(n, e3Variant{ddioWays: 2, sharedRings: 16}, scale) })
	}
	r.Wait()

	t := stats.NewTable("E3: RX goodput vs concurrent connections (1460B, offered at line rate)",
		"conns", "per-conn rings (Gbps)", "ddio off", "ddio 4-way", "no-cache ideal", "16 shared rings", "desc miss frac")
	for _, p := range points {
		t.AddRow(p.Conns, p.DefaultGbps, p.DDIO0Gbps, p.DDIO4Gbps, p.IdealGbps, p.SharedGbps, p.DefaultMissFrac)
	}
	return points, t
}

type e3Variant struct {
	ddioWays    int
	noLLC       bool
	sharedRings int // 0 = one ring pair per connection
}

// e3RingSize is the per-connection ring depth for the scaling experiment:
// with thousands of per-connection rings the control plane sizes each one
// small. 16 slots × 64B = 1 KiB of descriptor lines per connection, so the
// ~1.5 MiB DDIO share saturates just past 1024 connections — exactly where
// the paper reports the cliff.
const e3RingSize = 16

// e3Run opens n connections on a KOPI world and blasts inbound traffic
// round-robin across them at line rate, measuring steady-state delivered
// goodput at the applications. The run lasts long enough for every ring to
// wrap several times, so descriptor reuse (or its absence) dominates cold
// misses; the warmup wraps are excluded from the measurement window.
func e3Run(n int, v e3Variant, scale Scale) (gbps float64, missFrac float64) {
	model := timing.Default()
	model.DDIOWays = v.ddioWays
	model.LLCBytes = 8 << 20 // 8 MiB LLC -> ~1.5 MiB DDIO share at 2/11 ways
	a := arch.New("kopi", arch.WorldConfig{Model: model, NoLLC: v.noLLC, RingSize: e3RingSize})
	w := a.World()
	w.Peer = func(*packet.Packet, sim.Time) {}

	alice := w.Kern.AddUser(1000, "alice")
	proc := w.Kern.Spawn(alice.UID, "server")

	flows := make([]packet.FlowKey, 0, n)
	ringConns := v.sharedRings
	if ringConns <= 0 || ringConns > n {
		ringConns = n
	}
	conns := make([]*arch.Conn, 0, ringConns)
	for i := 0; i < n; i++ {
		flow := w.Flow(uint16(2000+i), 7)
		flows = append(flows, flow)
		if i < ringConns {
			c, err := a.Connect(proc, flow)
			if err != nil {
				panic(fmt.Sprintf("e3: connect %d: %v", i, err))
			}
			conns = append(conns, c)
		} else {
			// Shared-ring mode: register the connection but steer its flow
			// onto an existing ring.
			ci, err := w.Kern.RegisterConn(proc, flow)
			if err != nil {
				panic(fmt.Sprintf("e3: register %d: %v", i, err))
			}
			_ = ci
			if err := w.NIC.SteerFlow(flow, conns[i%ringConns].Info.ID); err != nil {
				panic(fmt.Sprintf("e3: steer %d: %v", i, err))
			}
		}
	}

	// Duration: at least 6 wraps of every ring at ~8.3 Mpps aggregate
	// (one 1502B frame every ~120 ns at 100G).
	dur := sim.Duration(n*e3RingSize*6) * (120 * sim.Nanosecond)
	if min := scale.d(4 * sim.Millisecond); dur < min {
		dur = min
	}
	winLo := sim.Time(dur) / 2
	var winBytes uint64
	a.SetDeliver(func(_ *arch.Conn, p *packet.Packet, at sim.Time) {
		if at < winLo {
			return
		}
		winBytes += uint64(p.FrameLen())
	})

	gen := &host.InboundGen{
		Arch: a, Flows: flows, Payload: 1460,
		Interval: host.IntervalFor(100, 1502),
		Until:    sim.Time(dur),
	}
	gen.Start(0)
	w.Eng.RunUntil(sim.Time(dur))

	gbps = stats.Throughput(winBytes, sim.Time(dur).Sub(winLo))
	if hits, misses := w.NIC.DMADescHit, w.NIC.DMADescMiss; hits+misses > 0 {
		missFrac = float64(misses) / float64(hits+misses)
	}
	return gbps, missFrac
}
