package experiments

import (
	"reflect"
	"runtime"
	"testing"
)

// TestRunnerPool exercises the worker pool directly: bounded concurrency,
// inline execution at width 1, and completion of every task.
func TestRunnerPool(t *testing.T) {
	// Width 1 runs inline: tasks complete in submission order.
	r := NewRunnerN(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		r.Go(func() { order = append(order, i) })
	}
	r.Wait()
	for i, v := range order {
		if v != i {
			t.Fatalf("width-1 pool must run inline in order: %v", order)
		}
	}

	// Width 4: all tasks run, each writes its own slot.
	r = NewRunnerN(4)
	got := make([]int, 64)
	for i := range got {
		i := i
		r.Go(func() { got[i] = i + 1 })
	}
	r.Wait()
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("task %d did not run (slot=%d)", i, v)
		}
	}
}

// TestSetWorkers checks option plumbing and default restoration.
func TestSetWorkers(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("default Workers() = %d, want >= 1", Workers())
	}
}

// TestParallelDeterminism backs the harness's core guarantee: fanning a
// sweep's independent worlds across cores changes wall-clock only. Both the
// typed results and the rendered tables must be byte-identical between a
// 1-worker (fully sequential, inline) run and a wide run — NumCPU, floored
// at 4 so the parallel arm is a real schedule scramble even on small CI
// boxes.
func TestParallelDeterminism(t *testing.T) {
	wide := runtime.NumCPU()
	if wide < 4 {
		wide = 4
	}

	prev := SetWorkers(1)
	defer SetWorkers(prev)
	e3Seq, e3SeqTbl := RunE3(0.1)
	e6Seq, e6SeqTbl := RunE6(0.05)

	SetWorkers(wide)
	e3Par, e3ParTbl := RunE3(0.1)
	e6Par, e6ParTbl := RunE6(0.05)

	if !reflect.DeepEqual(e3Seq, e3Par) {
		t.Errorf("E3 results differ between workers=1 and workers=%d:\n%+v\n%+v", wide, e3Seq, e3Par)
	}
	if s, p := e3SeqTbl.String(), e3ParTbl.String(); s != p {
		t.Errorf("E3 tables differ between workers=1 and workers=%d:\n%s\n%s", wide, s, p)
	}
	if !reflect.DeepEqual(e6Seq, e6Par) {
		t.Errorf("E6 results differ between workers=1 and workers=%d", wide)
	}
	if s, p := e6SeqTbl.String(), e6ParTbl.String(); s != p {
		t.Errorf("E6 tables differ between workers=1 and workers=%d:\n%s\n%s", wide, s, p)
	}
}
