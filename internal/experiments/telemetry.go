package experiments

import (
	"sort"
	"sync"

	"norman/internal/telemetry"
)

// Telemetry is the observability sink an experiment fills when the caller
// wants artifacts beyond the result table: a shared labeled-metrics registry
// (each world registers under its own arch/fault labels, so rendering is
// byte-identical at any worker width), pcap blobs from dataplane taps, and
// rendered single-packet lifecycle traces.
type Telemetry struct {
	// Registry collects every world's metrics. Safe for concurrent
	// registration from experiment workers.
	Registry *telemetry.Registry

	mu     sync.Mutex
	pcaps  map[string][]byte
	traces map[string]string
}

// NewTelemetry builds an empty sink.
func NewTelemetry() *Telemetry {
	return &Telemetry{
		Registry: telemetry.NewRegistry(),
		pcaps:    map[string][]byte{},
		traces:   map[string]string{},
	}
}

// AddPcap stores a pcap blob under a sweep-point name.
func (t *Telemetry) AddPcap(name string, b []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pcaps[name] = b
}

// Pcap returns the blob stored under name (nil if absent).
func (t *Telemetry) Pcap(name string) []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pcaps[name]
}

// PcapNames lists stored pcaps in sorted order.
func (t *Telemetry) PcapNames() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.pcaps))
	for n := range t.pcaps {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AddTrace stores a rendered packet journey under a sweep-point name.
func (t *Telemetry) AddTrace(name, rendered string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.traces[name] = rendered
}

// Trace returns the rendered journey stored under name ("" if absent).
func (t *Telemetry) Trace(name string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traces[name]
}

// TraceNames lists stored traces in sorted order.
func (t *Telemetry) TraceNames() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.traces))
	for n := range t.traces {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
