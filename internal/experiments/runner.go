package experiments

import (
	"os"
	"runtime"
	"strconv"
	"sync"
)

// The experiment drivers are sweeps of mutually independent world
// simulations: every point builds its own arch.World with its own engine,
// RNG streams (seeded from fixed per-component constants), and memory, so
// points share no state and can run on any schedule. The Runner fans them
// out across cores while the drivers write each result into a
// pre-allocated slot — output order, and therefore every table byte, is
// identical whether the pool has 1 worker or NumCPU.

// workersMu guards the package worker setting; drivers snapshot it once per
// NewRunner call.
var workersMu sync.Mutex

// workers is the configured pool width: 0 means "resolve a default"
// (NORMAN_WORKERS env, else GOMAXPROCS).
var workers int

// SetWorkers configures how many worlds the experiment drivers simulate
// concurrently and returns the previous setting. n <= 0 restores the
// default (the NORMAN_WORKERS environment variable if set, else
// GOMAXPROCS). n == 1 forces fully sequential, in-caller execution.
// Results are deterministic at any width; only wall-clock changes.
func SetWorkers(n int) (prev int) {
	workersMu.Lock()
	defer workersMu.Unlock()
	prev = workers
	if n < 0 {
		n = 0
	}
	workers = n
	return prev
}

// Workers reports the pool width NewRunner will use right now, with
// defaults resolved.
func Workers() int {
	workersMu.Lock()
	n := workers
	workersMu.Unlock()
	return resolveWorkers(n)
}

func resolveWorkers(n int) int {
	if n > 0 {
		return n
	}
	if s := os.Getenv("NORMAN_WORKERS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Runner is a bounded worker pool for independent simulation runs. Zero
// value is not usable; construct with NewRunner. Typical driver shape:
//
//	points := make([]Point, len(sweep))
//	r := NewRunner()
//	for i, n := range sweep {
//		i, n := i, n
//		r.Go(func() { points[i] = measure(n) })
//	}
//	r.Wait()
//
// Each task must write only its own slot; the Wait establishes the
// happens-before edge that makes those writes visible to the caller.
type Runner struct {
	sem chan struct{}
	wg  sync.WaitGroup
}

// NewRunner returns a pool bounded at the configured width (SetWorkers /
// NORMAN_WORKERS / GOMAXPROCS, in that precedence).
func NewRunner() *Runner {
	return NewRunnerN(Workers())
}

// NewRunnerN returns a pool bounded at exactly n concurrent tasks (n < 1 is
// treated as 1). With n == 1 tasks run inline on the calling goroutine, so
// sequential mode has zero scheduling overhead and an identical stack shape
// to the pre-pool drivers.
func NewRunnerN(n int) *Runner {
	if n < 1 {
		n = 1
	}
	r := &Runner{}
	if n > 1 {
		r.sem = make(chan struct{}, n)
	}
	return r
}

// Go schedules fn. It blocks while the pool is saturated — the callers are
// sweep loops, so backpressure (not an unbounded goroutine pile) is the
// right behavior.
func (r *Runner) Go(fn func()) {
	if r.sem == nil {
		fn()
		return
	}
	r.sem <- struct{}{}
	r.wg.Add(1)
	go func() {
		defer func() {
			<-r.sem
			r.wg.Done()
		}()
		fn()
	}()
}

// Wait blocks until every scheduled task has finished.
func (r *Runner) Wait() {
	if r.sem == nil {
		return
	}
	r.wg.Wait()
}
