package experiments

import "testing"

// TestE2Matrix verifies the §2 scenario matrix comes out as the paper
// argues: OS-integrated interposition (kernelstack, sidecar, kopi) solves
// all four scenarios, the hypervisor switch sees traffic but lacks the
// process view, and raw bypass solves nothing.
func TestE2Matrix(t *testing.T) {
	res, tbl := RunE2(0.5)
	t.Logf("\n%s", tbl)

	want := map[string]map[string]CapLevel{
		"debugging": {
			"kernelstack": CapYes, "bypass": CapNo, "sidecar": CapYes,
			"hypervisor": CapPartial, "kopi": CapYes,
		},
		"port-partition": {
			"kernelstack": CapYes, "bypass": CapNo, "sidecar": CapYes,
			"hypervisor": CapNo, "kopi": CapYes,
		},
		"scheduling": {
			"kernelstack": CapYes, "bypass": CapNo, "sidecar": CapYes,
			"hypervisor": CapNo, "kopi": CapYes,
		},
		"qos": {
			"kernelstack": CapYes, "bypass": CapNo, "sidecar": CapYes,
			"hypervisor": CapPartial, "kopi": CapYes,
		},
		"ping": {
			"kernelstack": CapYes, "bypass": CapNo, "sidecar": CapYes,
			"hypervisor": CapNo, "kopi": CapYes,
		},
	}
	for scenario, perArch := range want {
		for archName, lvl := range perArch {
			if got := res.Level(scenario, archName); got != lvl {
				t.Errorf("%s/%s: got %v, want %v", scenario, archName, got, lvl)
			}
		}
	}
}
