package experiments

import (
	"strings"
	"testing"

	"norman/internal/sim"
	"norman/internal/stats"
)

func TestScaleHelpers(t *testing.T) {
	s := Scale(0.5)
	if got := s.d(10 * sim.Millisecond); got != 5*sim.Millisecond {
		t.Fatalf("d = %v", got)
	}
	// Durations floor at 1µs.
	if got := Scale(0.0001).d(sim.Millisecond); got != sim.Microsecond {
		t.Fatalf("floor = %v", got)
	}
	if got := s.n(100, 10); got != 50 {
		t.Fatalf("n = %v", got)
	}
	if got := Scale(0.01).n(100, 10); got != 10 {
		t.Fatalf("n floor = %v", got)
	}
}

func TestComposeTables(t *testing.T) {
	a := stats.NewTable("A", "x")
	a.AddRow(1)
	b := stats.NewTable("B", "y")
	b.AddRow(2)
	out := composeTables(a, b).String()
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Fatalf("missing sub-tables: %q", out)
	}
	if strings.Contains(out, "\n\n\n\n") {
		t.Fatalf("excess blank lines: %q", out)
	}
}
