package experiments

import (
	"errors"

	"norman/internal/arch"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/stats"
)

// E7Row is one (architecture, mode, rate) CPU-efficiency measurement.
type E7Row struct {
	Arch    string
	Mode    string // poll / block / unsupported
	RatePPS int

	CoresBurned float64      // CPU-seconds consumed per second of run
	P50Latency  sim.Duration // wire arrival -> application delivery
	Delivered   uint64
}

// RunE7 reproduces the §2 process-scheduling scenario: without kernel
// visibility into arrivals, applications must poll and burn a core no matter
// how idle the network is; KOPI's notification queues (§4.3) restore
// blocking I/O at a small latency cost. Expected shape: poll-mode cores ≈ 1
// regardless of rate; block-mode CPU scales with rate; bypass has no block
// mode at all; the sidecar blocks its apps but still burns its dataplane
// core.
func RunE7(scale Scale) ([]E7Row, *stats.Table) {
	rates := []int{10_000, 100_000, 1_000_000}
	names := arch.Names()
	modes := []arch.RxMode{arch.RxPoll, arch.RxBlock}
	// One isolated world per (arch, mode, rate) cell: fan them all out.
	rows := make([]E7Row, len(names)*len(modes)*len(rates)+len(rates))
	pool := NewRunner()
	slot := 0
	for _, name := range names {
		for _, mode := range modes {
			for _, rate := range rates {
				i, name, mode, rate := slot, name, mode, rate
				slot++
				pool.Go(func() { rows[i] = e7Run(name, mode, rate, 0, scale) })
			}
		}
	}
	// KOPI's §4.3 interrupt-moderation knob: blocking with a coalescing
	// window, trading a bounded latency increase for far fewer interrupts.
	for _, rate := range rates {
		i, rate := slot, rate
		slot++
		pool.Go(func() { rows[i] = e7Run("kopi", arch.RxBlock, rate, 50*sim.Microsecond, scale) })
	}
	pool.Wait()
	t := stats.NewTable("E7: CPU cost of receive readiness (256B inbound, Poisson)",
		"arch", "mode", "rate (pps)", "cores burned", "p50 latency", "delivered")
	for _, r := range rows {
		t.AddRow(r.Arch, r.Mode, r.RatePPS, r.CoresBurned, r.P50Latency.String(), r.Delivered)
	}
	return rows, t
}

func e7Run(name string, mode arch.RxMode, rate int, coalesce sim.Duration, scale Scale) E7Row {
	row := E7Row{Arch: name, Mode: mode.String(), RatePPS: rate}
	if coalesce > 0 {
		row.Mode = "block+coalesce"
	}

	a := arch.New(name, arch.WorldConfig{})
	w := a.World()
	w.Peer = func(*packet.Packet, sim.Time) {}

	bob := w.Kern.AddUser(1001, "bob")
	proc := w.Kern.Spawn(bob.UID, "worker")
	flow := w.Flow(7000, 7)
	c, err := a.Connect(proc, flow)
	if err != nil {
		row.Mode = "error"
		return row
	}
	if err := a.SetRxMode(c, mode); err != nil {
		if errors.Is(err, arch.ErrUnsupported) {
			row.Mode = "unsupported"
			return row
		}
		row.Mode = "error"
		return row
	}
	if coalesce > 0 {
		kopi, ok := a.(*arch.KOPI)
		if !ok {
			row.Mode = "unsupported"
			return row
		}
		kopi.SetRxCoalesce(c, coalesce)
	}

	var lat stats.Histogram
	a.SetDeliver(func(_ *arch.Conn, p *packet.Packet, at sim.Time) {
		row.Delivered++
		lat.Observe(at.Sub(p.Meta.Enqueued))
	})

	// Enough packets for stable statistics, bounded for high rates.
	dur := scale.d(sim.Duration(int64(200) * int64(sim.Second) / int64(rate)))
	if min := scale.d(2 * sim.Millisecond); dur < min {
		dur = min
	}
	if max := scale.d(50 * sim.Millisecond); dur > max {
		dur = max
	}

	rng := sim.NewRNG(42, name+mode.String())
	interval := sim.Duration(float64(sim.Second) / float64(rate))
	var tick func()
	tick = func() {
		now := w.Eng.Now()
		if now >= sim.Time(dur) {
			return
		}
		p := w.UDPFrom(flow, 256)
		p.Meta.Enqueued = now
		a.DeliverWire(p)
		w.Eng.After(rng.Exp(interval), tick)
	}
	w.Eng.At(0, tick)
	end := w.Eng.Run()
	if end < sim.Time(dur) {
		end = sim.Time(dur)
	}

	row.CoresBurned = w.CPUBusy(end).Seconds() / sim.Duration(end).Seconds()
	row.P50Latency = lat.P50()
	return row
}
