package experiments

import (
	"fmt"
	"strings"

	"norman/internal/arch"
	"norman/internal/host"
	"norman/internal/nic"
	"norman/internal/overlay"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/stats"
	"norman/internal/timing"
	"norman/internal/upgrade"
)

// E16Point is one architecture's behaviour through a mid-run dataplane
// upgrade (DESIGN.md §12): the E13/E14 victim workload (64 established flows,
// 256 B payloads at 12.5 Gbps through the cacheable ACL) is running when the
// operator ships a new policy at dur/4. The kernel stack swaps software
// in place (nothing offloaded, nothing to respin). Raw bypass must respin the
// bitstream — §4.4's "equivalent to upgrading the kernel" — and eats the full
// outage: every frame for the rest of the run is an outage drop and every
// connection is broken. KOPI stages the new generation, flips at a packet
// boundary behind a bounded pause buffer, canaries, and commits: zero broken
// connections, zero pause overflow, a latency blip bounded by the pause. At
// 5·dur/8 KOPI alone stages a *bad* generation (drop-all): the canary breaches
// on the ingress-drop rate and automatically rolls back to the committed one,
// warm-restoring the flow cache so the fast-path hit rate recovers to its
// pre-upgrade level.
type E16Point struct {
	Arch string

	Delivered     uint64
	OutageDrops   uint64 // frames eaten by the bitstream-reload blackout
	PauseBuffered uint64 // frames held and replayed across cutovers
	PauseDrops    uint64 // pause-buffer overflow (typed, never silent)
	WarmEntries   uint64 // flow-cache entries warm-restored by the rollback

	Rollbacks      uint64
	CanaryBreaches uint64
	BrokenConns    int // conns with zero deliveries in [3·dur/4, dur)

	PreHitPct  float64 // flow-cache hit rate before the upgrade, %
	PostHitPct float64 // hit rate in the recovery window [3·dur/4, dur), %
	MaxGapUs   float64 // worst inter-delivery gap across the whole run, µs

	Silent int64 // conservation ledger: sent − delivered − Σ drop counters
}

// e16ACLv2Source is the upgraded policy: same shape as the E14 ACL (so it
// stays cacheable) with a different blocklist and mark — a realistic policy
// rev, not a no-op reload. None of its blocked ports match the victim flows.
func e16ACLv2Source() string {
	var b strings.Builder
	b.WriteString("ldf r0, dst_port\n")
	for i := 0; i < 15; i++ {
		fmt.Fprintf(&b, "jeq r0, %d, blocked\n", 9100+i)
	}
	b.WriteString("ldi r2, 9\n")
	b.WriteString("setf mark, r2\n")
	b.WriteString("pass\n")
	b.WriteString("blocked:\n")
	b.WriteString("drop\n")
	return b.String()
}

// e16BadSource is the misconfigured generation for the forced-rollback leg:
// it drops everything, which is exactly what the canary's ingress-drop budget
// exists to catch.
func e16BadSource() string { return "drop\n" }

// RunE16 drives the victim workload through the upgrade schedule on
// kernelstack, bypass and kopi. Only kopi runs the upgrade manager — that is
// the point: the kernel stack does not need one and raw bypass has no layer
// that could even sequence a staged cutover. shards is execution-only; every
// cell is byte-identical at any shard or worker width (TestE16Determinism).
func RunE16(scale Scale, shards int) ([]E16Point, *stats.Table) {
	if shards < 1 {
		shards = 1
	}
	archs := []string{"kernelstack", "bypass", "kopi"}
	points := make([]E16Point, len(archs))
	r := NewRunner()
	for i, name := range archs {
		i, name := i, name
		r.Go(func() { points[i] = e16Run(name, scale, shards) })
	}
	r.Wait()

	t := stats.NewTable("E16: live upgrade vs bitstream respin (policy upgrade at dur/4, bad-generation rollback at 5·dur/8, E14 victim workload)",
		"arch", "delivered", "outage", "buffered", "pause drop", "warm",
		"rollbacks", "breaches", "broken", "pre hit%", "post hit%", "max gap(µs)", "silent")
	for _, p := range points {
		t.AddRow(p.Arch, p.Delivered, p.OutageDrops, p.PauseBuffered, p.PauseDrops,
			p.WarmEntries, p.Rollbacks, p.CanaryBreaches, p.BrokenConns,
			fmt.Sprintf("%.1f", p.PreHitPct), fmt.Sprintf("%.1f", p.PostHitPct),
			fmt.Sprintf("%.1f", p.MaxGapUs), p.Silent)
	}
	return points, t
}

// e16Run offers the victim workload on one architecture through the upgrade
// schedule and reports delivery, outage, handover and rollback accounting.
func e16Run(archName string, scale Scale, shards int) E16Point {
	model := timing.Default()
	a := arch.New(archName, arch.WorldConfig{Model: model, RingSize: e14RingSize, Shards: shards})
	w := a.World()
	w.Peer = func(*packet.Packet, sim.Time) {}

	vicUser := w.Kern.AddUser(e14VictimUID, "victim")
	vicProc := w.Kern.Spawn(vicUser.UID, "victim-svc")
	w.Kern.AssignTenant(e14VictimUID, e14VictimTid)

	// The fast path exists on bypass and kopi, as in E15; the kernel stack
	// interprets everything in software and swaps policy the same way.
	withCache := archName != "kernelstack"
	if withCache {
		if err := w.NIC.EnableFlowCache(e14CacheSlots); err != nil {
			panic(fmt.Sprintf("e16: enable cache: %v", err))
		}
	}

	v1, err := overlay.Assemble("e16-acl-v1", e14ACLSource())
	if err != nil {
		panic(fmt.Sprintf("e16: assemble v1: %v", err))
	}
	v2, err := overlay.Assemble("e16-acl-v2", e16ACLv2Source())
	if err != nil {
		panic(fmt.Sprintf("e16: assemble v2: %v", err))
	}
	v3, err := overlay.Assemble("e16-bad", e16BadSource())
	if err != nil {
		panic(fmt.Sprintf("e16: assemble v3: %v", err))
	}
	if _, _, err := w.NIC.LoadProgram(nic.Ingress, v1); err != nil {
		panic(fmt.Sprintf("e16: load v1: %v", err))
	}

	dur := scale.d(4 * sim.Millisecond)
	t1 := sim.Time(dur / 4)     // the policy upgrade
	t2 := sim.Time(5 * dur / 8) // the bad generation (kopi only)

	var mgr *upgrade.Manager
	if archName == "kopi" {
		// A canary window of dur/32 resolves upgrade one well before t2 at
		// any scale; 5 µs sampling matches the health monitor's cadence and
		// gives the drop-rate budget several samples inside the window.
		mgr = upgrade.New(w.Eng, w.NIC, upgrade.Config{
			CanaryWindow: dur / 32,
			SampleEvery:  5 * sim.Microsecond,
		})
	}

	switch archName {
	case "kernelstack":
		// In-kernel interposition upgrades like any kernel code: the new
		// policy swaps in at a function-pointer boundary, no dataplane outage.
		w.Eng.At(t1, func() {
			if _, _, err := w.NIC.LoadProgram(nic.Ingress, v2); err != nil {
				panic(fmt.Sprintf("e16: kernelstack swap: %v", err))
			}
		})
	case "bypass":
		// Raw offload has no staging layer: shipping new dataplane logic is a
		// bitstream respin, and the default outage (§4.4: "seconds or
		// longer") dwarfs the run — the dataplane blackholes to the end.
		w.Eng.At(t1, func() {
			w.NIC.ReloadBitstream(w.Eng.Now(), 0)
		})
	case "kopi":
		w.Eng.At(t1, func() {
			now := w.Eng.Now()
			if err := mgr.Stage(now, v2, nil); err != nil {
				panic(fmt.Sprintf("e16: stage v2: %v", err))
			}
			if _, err := mgr.CutOver(now); err != nil {
				panic(fmt.Sprintf("e16: cutover v2: %v", err))
			}
		})
		w.Eng.At(t2, func() {
			now := w.Eng.Now()
			if err := mgr.Stage(now, v3, nil); err != nil {
				panic(fmt.Sprintf("e16: stage v3: %v", err))
			}
			if _, err := mgr.CutOver(now); err != nil {
				panic(fmt.Sprintf("e16: cutover v3: %v", err))
			}
		})
	}

	vicFlows := make([]packet.FlowKey, 0, e14VictimConns)
	connIDs := make([]uint64, 0, e14VictimConns)
	for i := 0; i < e14VictimConns; i++ {
		flow := w.Flow(uint16(3000+i/512), uint16(6000+i%512))
		vicFlows = append(vicFlows, flow)
		c, err := a.Connect(vicProc, flow)
		if err != nil {
			panic(fmt.Sprintf("e16: connect %d: %v", i, err))
		}
		connIDs = append(connIDs, c.Info.ID)
	}

	// The recovery window [3·dur/4, dur) starts well after the rollback has
	// restored the committed generation: a connection silent across the whole
	// window is broken, and the hit-rate delta over it is the recovered fast
	// path.
	winLo := sim.Time(3 * dur / 4)
	var delivered uint64
	var lastAt sim.Time
	var maxGap sim.Duration
	winDeliveries := make(map[uint64]uint64, e14VictimConns)
	a.SetDeliver(func(c *arch.Conn, p *packet.Packet, at sim.Time) {
		delivered++
		if gap := at.Sub(lastAt); gap > maxGap {
			maxGap = gap
		}
		lastAt = at
		if at >= winLo {
			winDeliveries[c.Info.ID]++
		}
	})

	var preHits, preLookups, winHits, winLookups uint64
	if fc := w.NIC.FlowCache(); fc != nil {
		w.Eng.At(t1, func() {
			preHits = fc.Hits
			preLookups = fc.Hits + fc.Misses
		})
		w.Eng.At(winLo, func() {
			winHits = fc.Hits
			winLookups = fc.Hits + fc.Misses
		})
	}

	gen := &host.InboundGen{
		Arch: a, Flows: vicFlows, Payload: e14VictimPayload,
		Interval: host.IntervalFor(e14VictimGbps, e14VictimFrame),
		Until:    sim.Time(dur),
	}
	gen.Start(0)
	if w.Coord != nil {
		w.Coord.RunUntil(sim.Time(dur))
		w.Coord.Run()
	} else {
		w.Eng.RunUntil(sim.Time(dur))
		w.Eng.Run()
	}

	// The final gap: a dataplane that went dark partway through the run shows
	// it here even though no delivery follows.
	if gap := sim.Time(dur).Sub(lastAt); gap > maxGap {
		maxGap = gap
	}

	p := E16Point{
		Arch:          archName,
		Delivered:     delivered,
		OutageDrops:   w.NIC.RxOutageDrop + w.NIC.TxOutageDrop,
		PauseBuffered: w.NIC.RxPauseBuffered,
		PauseDrops:    w.NIC.RxPauseDrop,
		MaxGapUs:      float64(maxGap) / float64(sim.Microsecond),
	}
	for _, id := range connIDs {
		if winDeliveries[id] == 0 {
			p.BrokenConns++
		}
	}
	if fc := w.NIC.FlowCache(); fc != nil {
		if preLookups > 0 {
			p.PreHitPct = 100 * float64(preHits) / float64(preLookups)
		}
		if post := (fc.Hits + fc.Misses) - winLookups; post > 0 {
			p.PostHitPct = 100 * float64(fc.Hits-winHits) / float64(post)
		}
	}
	if mgr != nil {
		p.WarmEntries = mgr.WarmEntries
		p.Rollbacks = mgr.Rollbacks
		p.CanaryBreaches = mgr.CanaryBreaches
	}
	// The conservation ledger, E15's form plus the pause-overflow class: every
	// offered frame is delivered, held-and-replayed, or sits in exactly one
	// typed drop counter. Zero silent loss is the upgrade's proof obligation —
	// including for the architecture that blackholed.
	counted := w.NIC.RxDropNoSteer + w.NIC.RxDropRing + w.NIC.RxFifoDrop +
		w.NIC.RxDropVerdict + w.NIC.RxOutageDrop + w.NIC.RxShed +
		w.NIC.RxLinkDrop + w.NIC.RxPauseDrop
	p.Silent = int64(gen.Sent) - int64(delivered) - int64(counted)
	return p
}
