package experiments

import (
	"fmt"

	"norman/internal/arch"
	"norman/internal/faults"
	"norman/internal/health"
	"norman/internal/host"
	"norman/internal/nic"
	"norman/internal/overlay"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/stats"
	"norman/internal/timing"
)

// E15Point is one architecture's behaviour under the seeded hardware-fault
// schedule (DESIGN.md §11): a link flap, then a flow-cache SRAM bit-flip
// burst, then an overlay trap storm, all landing on the E14 victim workload.
// The kernel stack has no fast path to corrupt; raw bypass keeps its fast
// path but has no slow path to fail over to, so corrupted verdicts are served
// (and blackhole flows) for the rest of the run; KOPI detects the corruption
// via per-entry checksums, quarantines the cache onto the kernel
// interposition slow path, and fails back after probation.
type E15Point struct {
	Arch string

	Delivered     uint64
	CorruptServed uint64 // corrupted verdicts served to the datapath
	ChecksumFails uint64 // corrupted entries detected and dropped instead
	Quarantines   uint64
	Failbacks     uint64
	LinkDrops     uint64 // frames lost at the MAC while the link was down
	TrapFallbacks uint64

	PreHitPct  float64 // flow-cache hit rate before the SRAM burst, %
	PostHitPct float64 // hit rate in the recovery window [3·dur/4, dur), %

	Silent int64 // conservation ledger: sent − delivered − Σ drop counters
}

// The E15 fault schedule, as fractions of the run: a link flap at dur/8
// (lasting dur/32), an SRAM burst of 64 bit flips at 3·dur/8, and a storm of
// 8 overlay traps 1 µs apart at dur/2. The recovery window [3·dur/4, dur)
// starts well after KOPI's probation should have failed the cache back.
const (
	e15SRAMFlips  = 64
	e15StormTraps = 8
)

// RunE15 runs the victim workload of E14 (64 established flows, 256 B
// payloads at 12.5 Gbps through the cacheable ACL) on kernelstack, bypass and
// kopi while the fault schedule fires. Only kopi runs the health monitor —
// that is the point: the monitor's failover target is the kernel
// interposition slow path, which the other architectures do not have. shards
// is execution-only; every cell is byte-identical at any shard or worker
// width (TestE15Determinism).
func RunE15(scale Scale, shards int) ([]E15Point, *stats.Table) {
	if shards < 1 {
		shards = 1
	}
	archs := []string{"kernelstack", "bypass", "kopi"}
	points := make([]E15Point, len(archs))
	r := NewRunner()
	for i, name := range archs {
		i, name := i, name
		r.Go(func() { points[i] = e15Run(name, scale, shards) })
	}
	r.Wait()

	t := stats.NewTable("E15: hardware faults vs the kernel slow path (link flap, SRAM flip burst, trap storm over the E14 victim workload)",
		"arch", "delivered", "corrupt srv", "ck fails", "quar", "failback",
		"link drops", "traps", "pre hit%", "post hit%", "silent")
	for _, p := range points {
		t.AddRow(p.Arch, p.Delivered, p.CorruptServed, p.ChecksumFails,
			p.Quarantines, p.Failbacks, p.LinkDrops, p.TrapFallbacks,
			fmt.Sprintf("%.1f", p.PreHitPct), fmt.Sprintf("%.1f", p.PostHitPct),
			p.Silent)
	}
	return points, t
}

// e15Run offers the victim workload on one architecture under the fault
// schedule and reports delivery, corruption and health accounting.
func e15Run(archName string, scale Scale, shards int) E15Point {
	model := timing.Default()
	a := arch.New(archName, arch.WorldConfig{Model: model, RingSize: e14RingSize, Shards: shards})
	w := a.World()
	w.Peer = func(*packet.Packet, sim.Time) {}

	vicUser := w.Kern.AddUser(e14VictimUID, "victim")
	vicProc := w.Kern.Spawn(vicUser.UID, "victim-svc")
	w.Kern.AssignTenant(e14VictimUID, e14VictimTid)

	// The fast path exists on bypass and kopi; the kernel stack interprets
	// everything (its "cache off" row is the slow-path baseline the others
	// fail over to). Bypass runs the cache raw — no checksum verification, no
	// monitor — which is precisely the paper's complaint about unsupervised
	// offload.
	withCache := archName != "kernelstack"
	if withCache {
		if err := w.NIC.EnableFlowCache(e14CacheSlots); err != nil {
			panic(fmt.Sprintf("e15: enable cache: %v", err))
		}
	}

	prog, err := overlay.Assemble("e15-acl", e14ACLSource())
	if err != nil {
		panic(fmt.Sprintf("e15: assemble: %v", err))
	}
	if _, _, err := w.NIC.LoadProgram(nic.Ingress, prog); err != nil {
		panic(fmt.Sprintf("e15: load: %v", err))
	}

	var hm *health.Monitor
	dur := scale.d(4 * sim.Millisecond)
	if archName == "kopi" {
		// Tight windows relative to the fault schedule: one faulty sample
		// quarantines, ~4 calm samples earn a probe, 2 more restore — so a
		// full quarantine/probe/failback cycle completes well inside the
		// recovery measurement window even at small scales.
		hm = health.New(w.Eng, w.NIC, health.Config{
			SampleEvery:    5 * sim.Microsecond,
			EscalateAfter:  1,
			ProbationAfter: 4,
			RestoreAfter:   2,
		})
		hm.Start(sim.Time(dur))
	}

	inj := faults.New(w.Eng, w.NIC, w.LLC, faults.Config{
		Seed:  FaultSeed(),
		Label: "e15." + archName,
	})
	t1 := sim.Time(dur / 8)     // link flap
	t2 := sim.Time(3 * dur / 8) // SRAM bit-flip burst
	t3 := sim.Time(dur / 2)     // trap storm
	inj.ScheduleLinkFlap(t1, dur/32)
	inj.ScheduleSRAMBurst(t2, e15SRAMFlips)
	inj.ScheduleTrapStorm(nic.Ingress, t3, e15StormTraps, sim.Microsecond, "e15-storm")

	vicFlows := make([]packet.FlowKey, 0, e14VictimConns)
	for i := 0; i < e14VictimConns; i++ {
		flow := w.Flow(uint16(3000+i/512), uint16(6000+i%512))
		vicFlows = append(vicFlows, flow)
		if _, err := a.Connect(vicProc, flow); err != nil {
			panic(fmt.Sprintf("e15: connect %d: %v", i, err))
		}
	}

	var delivered uint64
	a.SetDeliver(func(c *arch.Conn, p *packet.Packet, at sim.Time) {
		delivered++
	})

	// Hit-rate windows: a snapshot just before the SRAM burst (the pre-fault
	// fast path) and the delta over [3·dur/4, dur) (the recovered fast path —
	// for KOPI, after quarantine, probation and failback have all run).
	var preHits, preLookups, winHits, winLookups uint64
	if fc := w.NIC.FlowCache(); fc != nil {
		w.Eng.At(t2, func() {
			preHits = fc.Hits
			preLookups = fc.Hits + fc.Misses
		})
		w.Eng.At(sim.Time(3*dur/4), func() {
			winHits = fc.Hits
			winLookups = fc.Hits + fc.Misses
		})
	}

	gen := &host.InboundGen{
		Arch: a, Flows: vicFlows, Payload: e14VictimPayload,
		Interval: host.IntervalFor(e14VictimGbps, e14VictimFrame),
		Until:    sim.Time(dur),
	}
	gen.Start(0)
	if w.Coord != nil {
		w.Coord.RunUntil(sim.Time(dur))
		w.Coord.Run()
	} else {
		w.Eng.RunUntil(sim.Time(dur))
		w.Eng.Run()
	}

	p := E15Point{
		Arch:          archName,
		Delivered:     delivered,
		LinkDrops:     w.NIC.RxLinkDrop,
		TrapFallbacks: w.NIC.TrapFallbacks + w.NIC.TrapFailOpens,
	}
	if fc := w.NIC.FlowCache(); fc != nil {
		p.CorruptServed = fc.CorruptServed
		p.ChecksumFails = fc.ChecksumFails
		if preLookups > 0 {
			p.PreHitPct = 100 * float64(preHits) / float64(preLookups)
		}
		if post := (fc.Hits + fc.Misses) - winLookups; post > 0 {
			p.PostHitPct = 100 * float64(fc.Hits-winHits) / float64(post)
		}
	}
	if hm != nil {
		p.Quarantines = hm.Quarantines
		p.Failbacks = hm.Failbacks
	}
	// The conservation ledger: every offered frame is delivered or sits in
	// exactly one drop counter — including frames lost at the MAC while the
	// link was down and frames eaten by a (possibly corrupted) cached
	// verdict. Zero silent loss is the failover's proof obligation.
	counted := w.NIC.RxDropNoSteer + w.NIC.RxDropRing + w.NIC.RxFifoDrop +
		w.NIC.RxDropVerdict + w.NIC.RxOutageDrop + w.NIC.RxShed + w.NIC.RxLinkDrop
	p.Silent = int64(gen.Sent) - int64(delivered) - int64(counted)
	return p
}
