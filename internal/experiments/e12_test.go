package experiments

import "testing"

// TestE12Determinism is the acceptance gate of the sharded engine: the E12
// table — every counter and every derived float — must be byte-identical
// whether the buckets run on one shard or eight. scripts/check.sh repeats
// this diff under -race via cmd/kopibench.
func TestE12Determinism(t *testing.T) {
	const scale = 0.002
	ref, refTbl := RunE12(scale, 1)
	refStr := refTbl.String()
	if len(ref) == 0 || ref[0].Pkts == 0 {
		t.Fatal("reference sweep is empty")
	}
	for _, shards := range []int{2, 4, 8} {
		_, tbl := RunE12(scale, shards)
		if got := tbl.String(); got != refStr {
			t.Errorf("shards=%d: table differs from 1-shard reference\n--- 1 shard\n%s\n--- %d shards\n%s",
				shards, refStr, shards, got)
		}
	}
}

// TestE12Shape sanity-checks one small sweep point: every packet delivered,
// nothing dropped, every connection's completion crossed a bucket boundary,
// and the flyweight budget held.
func TestE12Shape(t *testing.T) {
	points, _ := RunE12(0.002, 4)
	for _, p := range points {
		if p.Pkts != uint64(p.Conns)*e12PktsPerConn {
			t.Errorf("conns=%d: delivered %d pkts, want %d", p.Conns, p.Pkts, p.Conns*e12PktsPerConn)
		}
		if p.Drops != 0 {
			t.Errorf("conns=%d: %d ring drops under paced load", p.Conns, p.Drops)
		}
		if p.XShardMsgs != uint64(p.Conns) {
			t.Errorf("conns=%d: %d cross-bucket completions", p.Conns, p.XShardMsgs)
		}
		if p.HotBytes > 64 {
			t.Errorf("conns=%d: hot state %d B/conn over budget", p.Conns, p.HotBytes)
		}
		if p.GoodputGbps <= 0 || p.Epochs == 0 {
			t.Errorf("conns=%d: degenerate point %+v", p.Conns, p)
		}
	}
}
