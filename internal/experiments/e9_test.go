package experiments

import (
	"reflect"
	"testing"
)

// TestE9Determinism pins the fault layer's headline property: for a fixed
// NORMAN_FAULT_SEED the whole degradation table — every counter, every
// goodput figure — is byte-identical run to run and at any worker width.
// Injected faults are simulation inputs, not noise.
func TestE9Determinism(t *testing.T) {
	t.Setenv("NORMAN_FAULT_SEED", "7")

	prev := SetWorkers(1)
	defer SetWorkers(prev)
	seq, seqTable := RunE9(0.05)

	SetWorkers(8)
	wide, wideTable := RunE9(0.05)

	if !reflect.DeepEqual(seq, wide) {
		t.Fatalf("E9 rows differ between 1 and 8 workers:\n%+v\n%+v", seq, wide)
	}
	if seqTable.String() != wideTable.String() {
		t.Fatalf("E9 tables differ between 1 and 8 workers:\n%s\n%s",
			seqTable.String(), wideTable.String())
	}
}

// TestE9GracefulDegradation asserts the robustness claims the table is built
// to show: clean runs complete, total blackholes abort in bounded virtual
// time, and the injected overlay trap is absorbed by the last-good fallback
// on the architecture that has an overlay dataplane.
func TestE9GracefulDegradation(t *testing.T) {
	t.Setenv("NORMAN_FAULT_SEED", "42")
	rows, _ := RunE9(0.05)

	byKey := map[string]E9Row{}
	for _, r := range rows {
		byKey[r.Arch+"@"+floatKey(r.FaultPct)] = r
	}

	for _, a := range []string{"kernelstack", "bypass", "kopi"} {
		clean, ok := byKey[a+"@0"]
		if !ok {
			t.Fatalf("missing clean row for %s", a)
		}
		if clean.Completed != e9Streams || clean.Aborted != 0 {
			t.Fatalf("%s fault-free run must complete all streams: %+v", a, clean)
		}

		dead := byKey[a+"@100"]
		if dead.Completed != 0 || dead.Aborted != e9Streams {
			t.Fatalf("%s under 100%% loss must abort every stream: %+v", a, dead)
		}
		if dead.TerminalAt <= 0 || dead.TerminalAt >= e9Horizon {
			t.Fatalf("%s blackhole abort must be bounded inside the horizon: %v",
				a, dead.TerminalAt)
		}
		if dead.GoodputGbps != 0 {
			t.Fatalf("%s cannot have goodput at 100%% loss: %+v", a, dead)
		}

		// Degradation is monotone at the ends: faults cost goodput.
		if mid := byKey[a+"@10"]; mid.GoodputGbps >= clean.GoodputGbps {
			t.Fatalf("%s: 10%% faults should cost goodput: clean %.3f vs faulty %.3f",
				a, clean.GoodputGbps, mid.GoodputGbps)
		}
	}

	// The overlay trap fires only where an overlay dataplane exists.
	if r := byKey["kopi@100"]; r.TrapFallbacks == 0 {
		t.Fatalf("kopi must absorb the injected overlay trap via fallback: %+v", r)
	}
	if r := byKey["bypass@100"]; r.TrapFallbacks != 0 {
		t.Fatalf("bypass has no overlay to trap: %+v", r)
	}
}

func floatKey(f float64) string {
	switch f {
	case 0:
		return "0"
	case 100:
		return "100"
	case 10:
		return "10"
	default:
		return "mid"
	}
}
