package experiments

import (
	"fmt"

	"norman/internal/arch"
	"norman/internal/host"
	"norman/internal/overload"
	"norman/internal/packet"
	"norman/internal/qos"
	"norman/internal/sim"
	"norman/internal/stats"
	"norman/internal/timing"
)

// E11Point is one connection-count measurement comparing an uncontrolled
// bypass dataplane against KOPI with the overload governor, both driven
// across the E3 DDIO cliff with a high/low priority traffic mix.
type E11Point struct {
	Conns int

	// Uncontrolled bypass: every connection gets rings, nothing sheds, the
	// MAC FIFO drops indiscriminately once descriptor fetches start missing
	// DDIO — both classes collapse together.
	RawHiGbps float64
	RawLoGbps float64
	RawHiP99  float64 // high-class NIC->app delivery p99 in µs
	RawDrops  uint64  // wire-level FIFO/ring drops in the uncontrolled world

	// KOPI + overload governor: admission caps the ring working set under
	// the DDIO share, rejected flows become typed/counted drops, and under
	// saturation the shed policy sacrifices the low class first.
	CtlHiGbps   float64
	CtlLoGbps   float64
	CtlHiP99    float64 // high-class delivery p99 in µs under the governor
	CtlAdmitted uint64  // connections admitted by the governor
	CtlRejected uint64  // typed admission rejections (wrapping ErrAdmission)
	CtlShed     uint64  // frames shed by the priority-aware policy
	CtlState    string  // watchdog health state at the end of the run
	// CtlSilent is the zero-silent-loss check: offered minus delivered minus
	// every counted drop (no-steer, ring, FIFO, verdict, outage, shed). Any
	// nonzero value is a packet the system lost without accounting for it.
	CtlSilent int64
	RawSilent int64
}

// e11RingSize matches E3: 16 descriptors × 64B = 1 KiB of descriptor lines
// per connection, so the ~1.45 MiB DDIO share saturates just past 1024
// connections.
const e11RingSize = 16

// e11Share is the governor's DDIO share for the experiment: 85% of the DDIO
// capacity may hold ring descriptor lines, leaving headroom for payload DMA.
const e11Share = 0.85

// RunE11 sweeps connection counts across the DDIO cliff with a 1:7
// high:low priority mix and measures what overload control buys: the
// uncontrolled bypass world collapses for both classes past the cliff, while
// the governed KOPI world holds high-priority goodput flat by refusing (with
// typed errors) the ring working set it cannot afford and shedding the low
// class first under saturation — and accounts for every single non-delivered
// frame.
func RunE11(scale Scale) ([]E11Point, *stats.Table) {
	sweep := []int{64, 256, 512, 1024, 1536, 2048, 4096, 8192}
	if scale < 0.5 {
		sweep = []int{64, 1024, 8192}
	}
	points := make([]E11Point, len(sweep))
	r := NewRunner()
	for i, n := range sweep {
		i, n := i, n
		points[i].Conns = n
		r.Go(func() {
			res := e11Run(n, false, scale)
			points[i].RawHiGbps = res.hiGbps
			points[i].RawLoGbps = res.loGbps
			points[i].RawHiP99 = res.hiP99
			points[i].RawDrops = res.drops
			points[i].RawSilent = res.silent
		})
		r.Go(func() {
			res := e11Run(n, true, scale)
			points[i].CtlHiGbps = res.hiGbps
			points[i].CtlLoGbps = res.loGbps
			points[i].CtlHiP99 = res.hiP99
			points[i].CtlAdmitted = res.admitted
			points[i].CtlRejected = res.rejected
			points[i].CtlShed = res.shed
			points[i].CtlState = res.state
			points[i].CtlSilent = res.silent
		})
	}
	r.Wait()

	t := stats.NewTable("E11: overload control across the DDIO cliff (1:7 hi:lo mix, offered at line rate)",
		"conns", "raw hi (Gbps)", "raw lo", "raw hi p99(µs)", "raw drops",
		"ctl hi (Gbps)", "ctl lo", "ctl hi p99(µs)",
		"admitted", "rejected", "shed", "state", "silent")
	for _, p := range points {
		t.AddRow(p.Conns,
			fmt.Sprintf("%.1f", p.RawHiGbps), fmt.Sprintf("%.1f", p.RawLoGbps),
			fmt.Sprintf("%.1f", p.RawHiP99), p.RawDrops,
			fmt.Sprintf("%.1f", p.CtlHiGbps), fmt.Sprintf("%.1f", p.CtlLoGbps),
			fmt.Sprintf("%.1f", p.CtlHiP99),
			p.CtlAdmitted, p.CtlRejected, p.CtlShed, p.CtlState, p.CtlSilent)
	}
	return points, t
}

// e11Result is what one world reports.
type e11Result struct {
	hiGbps, loGbps float64
	hiP99          float64 // µs
	drops          uint64
	admitted       uint64
	rejected       uint64
	shed           uint64
	state          string
	silent         int64
}

// e11Run offers line-rate inbound traffic round-robin across n flows — the
// first eighth owned by the high-priority tenant, the rest by the
// low-priority one — on the E3 cliff model (8 MiB LLC, 2/11 DDIO ways,
// 16-slot rings). governed=false opens rings for every flow on a bypass
// world; governed=true runs KOPI with the overload governor: admission per
// dial (high tenant first), qos-weight shedding, and the watchdog sampling
// in virtual time.
func e11Run(n int, governed bool, scale Scale) e11Result {
	model := timing.Default()
	model.DDIOWays = 2
	model.LLCBytes = 8 << 20
	name := "bypass"
	if governed {
		name = "kopi"
	}
	a := arch.New(name, arch.WorldConfig{Model: model, RingSize: e11RingSize})
	w := a.World()
	w.Peer = func(*packet.Packet, sim.Time) {}

	hiUser := w.Kern.AddUser(1, "hi")
	loUser := w.Kern.AddUser(2, "lo")
	hiProc := w.Kern.Spawn(hiUser.UID, "hi-svc")
	loProc := w.Kern.Spawn(loUser.UID, "lo-svc")

	nHi := n / 8
	if nHi < 1 {
		nHi = 1
	}

	var gov *overload.Governor
	if governed {
		gov = overload.NewGovernor(w.Eng, w.NIC, w.LLC, overload.Config{DDIOShare: e11Share})
		// Reuse the qos scheduler's class weights verbatim: class 1 (high)
		// weight 8, class 2 (low) weight 1 — the same numbers an egress WFQ
		// would schedule by decide who is shed first on ingress.
		wfq := qos.NewWFQ(0)
		wfq.SetWeight(1, 8)
		wfq.SetWeight(2, 1)
		gov.InstallShedding(func(uid uint32) uint32 { return uid }, wfq.Weights())
	}

	// Dial order: the high tenant first (its conns always fit the budget),
	// then the low tenant until admission says no. Rejected flows stay in
	// the offered set — their frames arrive, find no steering entry, and are
	// counted as no-steer drops: a typed rejection's dataplane shadow, never
	// a silent loss.
	flows := make([]packet.FlowKey, 0, n)
	var rejected uint64
	for i := 0; i < n; i++ {
		flow := w.Flow(uint16(2000+i/512), uint16(7000+i%512))
		flows = append(flows, flow)
		proc, uid := loProc, loUser.UID
		if i < nHi {
			proc, uid = hiProc, hiUser.UID
		}
		if gov != nil {
			if err := gov.AdmitConn(uid); err != nil {
				rejected++
				continue
			}
		}
		if _, err := a.Connect(proc, flow); err != nil {
			panic(fmt.Sprintf("e11: connect %d: %v", i, err))
		}
	}

	// Duration: enough for every ring to wrap several times at ~8.3 Mpps
	// aggregate (one 1502B frame every ~120 ns at 100G).
	wraps := 6
	if scale < 0.5 {
		wraps = 2
	}
	dur := sim.Duration(n*e11RingSize*wraps) * (120 * sim.Nanosecond)
	if min := scale.d(4 * sim.Millisecond); dur < min {
		dur = min
	}
	winLo := sim.Time(dur) / 2
	var delivered uint64
	var hiBytes, loBytes uint64
	var hiLat stats.Histogram
	a.SetDeliver(func(c *arch.Conn, p *packet.Packet, at sim.Time) {
		delivered++
		if at < winLo {
			return
		}
		if c.Info.UID == hiUser.UID {
			hiBytes += uint64(p.FrameLen())
			// NIC-receive to app-delivery latency: the ring wait plus the DMA
			// whose descriptor fetch is what the DDIO cliff slows down.
			hiLat.Observe(at.Sub(p.Meta.Enqueued))
		} else {
			loBytes += uint64(p.FrameLen())
		}
	})

	if gov != nil {
		gov.Start(sim.Time(dur))
	}
	gen := &host.InboundGen{
		Arch: a, Flows: flows, Payload: 1460,
		Interval: host.IntervalFor(100, 1502),
		Until:    sim.Time(dur),
	}
	gen.Start(0)
	w.Eng.RunUntil(sim.Time(dur))
	w.Eng.Run() // drain in-flight DMA/delivery; the watchdog stops at dur

	res := e11Result{
		hiGbps:   stats.Throughput(hiBytes, sim.Time(dur).Sub(winLo)),
		loGbps:   stats.Throughput(loBytes, sim.Time(dur).Sub(winLo)),
		hiP99:    float64(hiLat.P99()) / float64(sim.Microsecond),
		drops:    w.NIC.RxFifoDrop + w.NIC.RxDropRing,
		rejected: rejected,
	}
	if gov != nil {
		snap := gov.Snapshot()
		res.admitted = snap.Admitted
		res.shed = snap.ShedPackets
		res.state = snap.State
	} else {
		res.state = "-"
	}
	// The zero-silent-loss ledger: every offered frame is delivered or sits
	// in exactly one drop counter.
	counted := w.NIC.RxDropNoSteer + w.NIC.RxDropRing + w.NIC.RxFifoDrop +
		w.NIC.RxDropVerdict + w.NIC.RxOutageDrop + w.NIC.RxShed
	res.silent = int64(gen.Sent) - int64(delivered) - int64(counted)
	return res
}
