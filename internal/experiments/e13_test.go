package experiments

import (
	"reflect"
	"testing"
)

// TestE13Determinism pins the isolation table at any execution layout: the
// tenant scheduler's grant rings, the DDIO partition, and the governor's
// per-tenant health machines all run in virtual time with sorted iteration
// everywhere, so the whole E13 table is byte-identical across worker-pool
// widths and engine shard counts.
func TestE13Determinism(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	seq, seqTable := RunE13(0.12, 1)

	SetWorkers(8)
	wide, wideTable := RunE13(0.12, 1)
	if !reflect.DeepEqual(seq, wide) {
		t.Fatalf("E13 rows differ between 1 and 8 workers:\n%+v\n%+v", seq, wide)
	}
	if seqTable.String() != wideTable.String() {
		t.Fatalf("E13 tables differ between 1 and 8 workers:\n%s\n%s",
			seqTable.String(), wideTable.String())
	}

	sharded, shardedTable := RunE13(0.12, 4)
	if !reflect.DeepEqual(seq, sharded) {
		t.Fatalf("E13 rows differ between 1 and 4 engine shards:\n%+v\n%+v", seq, sharded)
	}
	if seqTable.String() != shardedTable.String() {
		t.Fatalf("E13 tables differ between 1 and 4 engine shards:\n%s\n%s",
			seqTable.String(), shardedTable.String())
	}
}

// TestE13Isolation asserts the architectural content of the table: the bare
// bypass world gives the victim tenant nothing — the adversary's elephant
// flows thrash the shared DDIO ways, its cycle-burner program taxes every
// frame, and the victim's tail latency balloons at least 5× past its solo
// baseline — while the governed KOPI world holds the victim's p99 within
// 1.5× of solo and its goodput within 5% of the offered 12.5 Gbps, refuses
// the adversary's ring working set with typed rejections and its program by
// cycle bound, and accounts for every non-delivered frame in both worlds.
func TestE13Isolation(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fidelity sweep (~10s): the sub-0.5 scales shorten runs into the warm-up transient")
	}
	points, _ := RunE13(0.6, 1)

	byConns := make(map[int]E13Point, len(points))
	for _, p := range points {
		byConns[p.AdvConns] = p
	}
	post, ok := byConns[8192]
	if !ok {
		t.Fatal("sweep must include the 8192-connection post-cliff point")
	}

	// The raw world exhibits the isolation failure.
	if post.RawVicP99 < 5*post.SoloP99 {
		t.Fatalf("uncontrolled victim p99 %.1fµs must be >= 5x the solo %.1fµs",
			post.RawVicP99, post.SoloP99)
	}
	if post.RawVicGbps >= 0.9*e13VictimGbps {
		t.Fatalf("uncontrolled victim goodput %.2f Gbps must collapse below 90%% of the offered %.1f",
			post.RawVicGbps, float64(e13VictimGbps))
	}

	// The governed world holds the victim.
	if post.CtlVicP99 > 1.5*post.SoloP99 {
		t.Fatalf("governed victim p99 %.1fµs must stay within 1.5x the solo %.1fµs",
			post.CtlVicP99, post.SoloP99)
	}
	if post.CtlVicGbps < 0.95*e13VictimGbps {
		t.Fatalf("governed victim goodput %.2f Gbps must stay within 5%% of the offered %.1f",
			post.CtlVicGbps, float64(e13VictimGbps))
	}

	// Containment is visible and typed, never silent.
	if post.CtlRejected == 0 {
		t.Fatal("the governor must refuse part of the adversary's ring working set")
	}
	if post.CtlProgRefused != 1 {
		t.Fatalf("the cycle-bound gate must refuse the adversary's program once, got %d",
			post.CtlProgRefused)
	}
	if post.CtlVicState != "ok" {
		t.Fatalf("victim tenant health = %q, want ok", post.CtlVicState)
	}
	if post.CtlAdvState == "ok" {
		t.Fatal("the adversary tenant's private health machine must report pressure")
	}
	for _, p := range points {
		if p.CtlSilent != 0 || p.RawSilent != 0 {
			t.Fatalf("silent losses at %d adv conns: raw=%d ctl=%d",
				p.AdvConns, p.RawSilent, p.CtlSilent)
		}
	}
}
