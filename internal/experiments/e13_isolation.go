package experiments

import (
	"fmt"
	"strings"

	"norman/internal/arch"
	"norman/internal/host"
	"norman/internal/nic"
	"norman/internal/overlay"
	"norman/internal/overload"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/stats"
	"norman/internal/timing"
)

// E13Point is one adversary-size measurement of multi-tenant performance
// isolation: a latency-sensitive victim tenant shares the NIC with an
// adversarial tenant that opens elephant flows across the DDIO cliff and
// tries to install an overlay-cycle burner. The bare bypass world gives the
// victim nothing; the governed KOPI world (weighted pipeline/DMA scheduling,
// per-tenant DDIO ways, per-tenant admission budgets, program cycle bounds)
// holds the victim's p99 and throughput share.
type E13Point struct {
	AdvConns int

	// Solo baseline: the victim alone on the governed world — the p99 the
	// isolation machinery is supposed to preserve.
	SoloP99     float64 // victim NIC->app delivery p99 in µs
	SoloVicGbps float64

	// Raw bypass: both tenants share one FIFO, one DMA engine, the whole
	// DDIO region, and the adversary's 202-cycle ingress program runs
	// against every frame — including the victim's.
	RawVicGbps float64
	RawAdvGbps float64
	RawVicP99  float64 // µs
	RawDrops   uint64  // FIFO + ring drops in the raw world
	RawSilent  int64

	// Governed KOPI: weighted DRR over pipeline and DMA, DDIO ways
	// partitioned per tenant, the governor's descriptor budget split by
	// weight, and the adversary's program refused by its cycle bound.
	CtlVicGbps     float64
	CtlAdvGbps     float64
	CtlVicP99      float64 // µs
	CtlAdmitted    uint64  // connections admitted by the governor
	CtlRejected    uint64  // typed admission rejections (wrapping ErrAdmission)
	CtlProgRefused uint64  // overlay programs refused by AdmitProgram
	CtlVicState    string  // victim tenant health state at the end of the run
	CtlAdvState    string  // adversary tenant health state at the end of the run
	CtlSilent      int64
}

// E13 tenant identities and weights: the victim holds 7/8 of every
// schedulable resource, the adversary 1/8 — the victim waits for at most
// about one adversary grant per scheduler rotation.
const (
	e13VictimUID  = 101
	e13AdvUID     = 202
	e13VictimTid  = 1
	e13AdvTid     = 2
	e13VictimW    = 7
	e13AdvW       = 1
	e13RingSize   = 16
	e13Share      = 0.85 // governor DDIO share, as in E11
	e13ProgCycles = 64   // governor per-packet overlay cycle bound
)

// e13VictimConns is the victim's flow count: 64 rings × 1 KiB of descriptor
// lines = 64 KiB, comfortably inside one DDIO way.
const e13VictimConns = 64

// Victim traffic: small frames at 12.5 Gbps. Adversary traffic: 1502 B
// elephants at 85 Gbps. Together they stay under the 100 Gbps wire, so any
// victim latency growth comes from NIC resources, not link queueing.
const (
	e13VictimPayload = 256
	e13VictimFrame   = e13VictimPayload + 42
	e13VictimGbps    = 12.5
	e13AdvPayload    = 1460
	e13AdvFrame      = e13AdvPayload + 42
	e13AdvGbps       = 85
)

// RunE13 sweeps the adversary's connection count across the DDIO cliff and
// measures the victim's delivery p99 and goodput in three worlds: the victim
// alone (solo), both tenants on bare bypass (raw), and both tenants on KOPI
// with tenant isolation (ctl). shards is an execution parameter only — it
// picks the engine's shard layout (DESIGN.md §8) and is excluded from the
// table by design; every cell is byte-identical at any shard or worker
// width (TestE13Determinism enforces both).
func RunE13(scale Scale, shards int) ([]E13Point, *stats.Table) {
	if shards < 1 {
		shards = 1
	}
	sweep := []int{256, 1024, 2048, 4096, 8192}
	if scale < 0.5 {
		sweep = []int{256, 2048, 8192}
	}
	points := make([]E13Point, len(sweep))
	r := NewRunner()
	for i, n := range sweep {
		i, n := i, n
		points[i].AdvConns = n
		r.Go(func() {
			res := e13Run(n, e13Solo, scale, shards)
			points[i].SoloP99 = res.vicP99
			points[i].SoloVicGbps = res.vicGbps
		})
		r.Go(func() {
			res := e13Run(n, e13Raw, scale, shards)
			points[i].RawVicGbps = res.vicGbps
			points[i].RawAdvGbps = res.advGbps
			points[i].RawVicP99 = res.vicP99
			points[i].RawDrops = res.drops
			points[i].RawSilent = res.silent
		})
		r.Go(func() {
			res := e13Run(n, e13Ctl, scale, shards)
			points[i].CtlVicGbps = res.vicGbps
			points[i].CtlAdvGbps = res.advGbps
			points[i].CtlVicP99 = res.vicP99
			points[i].CtlAdmitted = res.admitted
			points[i].CtlRejected = res.rejected
			points[i].CtlProgRefused = res.progRefused
			points[i].CtlVicState = res.vicState
			points[i].CtlAdvState = res.advState
			points[i].CtlSilent = res.silent
		})
	}
	r.Wait()

	t := stats.NewTable("E13: tenant isolation vs an adversarial tenant (victim 12.5G small frames, adversary 85G elephants + cycle-burner program)",
		"adv conns", "solo p99(µs)",
		"raw vic (Gbps)", "raw p99(µs)", "raw drops",
		"ctl vic (Gbps)", "ctl p99(µs)", "ctl adv (Gbps)",
		"admitted", "rejected", "prog refused", "vic state", "adv state", "silent")
	for _, p := range points {
		t.AddRow(p.AdvConns, fmt.Sprintf("%.1f", p.SoloP99),
			fmt.Sprintf("%.1f", p.RawVicGbps), fmt.Sprintf("%.1f", p.RawVicP99), p.RawDrops,
			fmt.Sprintf("%.1f", p.CtlVicGbps), fmt.Sprintf("%.1f", p.CtlVicP99),
			fmt.Sprintf("%.1f", p.CtlAdvGbps),
			p.CtlAdmitted, p.CtlRejected, p.CtlProgRefused,
			p.CtlVicState, p.CtlAdvState, p.CtlSilent)
	}
	return points, t
}

// e13Leg selects which world one run simulates.
type e13Leg int

const (
	e13Solo e13Leg = iota // victim only, governed KOPI
	e13Raw                // victim + adversary, bare bypass
	e13Ctl                // victim + adversary, governed KOPI
)

// e13Result is what one world reports.
type e13Result struct {
	vicGbps, advGbps float64
	vicP99           float64 // µs
	drops            uint64
	admitted         uint64
	rejected         uint64
	progRefused      uint64
	vicState         string
	advState         string
	silent           int64
}

// e13AdversarySource generates the adversary's overlay program: two hundred
// ALU instructions that do nothing but burn pipeline cycles on every frame
// the NIC carries — for every tenant, since the ingress pipeline is shared.
// Its cycle bound (202) is what the governed world's AdmitProgram refuses.
func e13AdversarySource() string {
	var b strings.Builder
	b.WriteString("ldi r1, 0\n")
	for i := 0; i < 200; i++ {
		b.WriteString("add r1, 1\n")
	}
	b.WriteString("pass\n")
	return b.String()
}

// e13Run offers victim + adversary inbound traffic on the E3/E11 cliff model
// (8 MiB LLC, 2/11 DDIO ways, 16-slot rings) and reports the victim's
// delivery tail, both tenants' goodput, and the zero-silent-loss ledger.
func e13Run(advConns int, leg e13Leg, scale Scale, shards int) e13Result {
	model := timing.Default()
	model.DDIOWays = 2
	model.LLCBytes = 8 << 20
	name := "bypass"
	if leg != e13Raw {
		name = "kopi"
	}
	a := arch.New(name, arch.WorldConfig{Model: model, RingSize: e13RingSize, Shards: shards})
	w := a.World()
	w.Peer = func(*packet.Packet, sim.Time) {}

	vicUser := w.Kern.AddUser(e13VictimUID, "victim")
	advUser := w.Kern.AddUser(e13AdvUID, "adversary")
	vicProc := w.Kern.Spawn(vicUser.UID, "victim-svc")
	advProc := w.Kern.Spawn(advUser.UID, "adv-svc")
	w.Kern.AssignTenant(e13VictimUID, e13VictimTid)
	w.Kern.AssignTenant(e13AdvUID, e13AdvTid)

	weights := map[uint32]int{e13VictimTid: e13VictimW, e13AdvTid: e13AdvW}
	var gov *overload.Governor
	if leg != e13Raw {
		// The full isolation stack: weighted DRR over pipeline + DMA,
		// one exclusive DDIO way per tenant, and the governor's descriptor
		// budget split 7:1 with private per-tenant health machines.
		w.NIC.SetTenantScheduler(weights)
		if err := w.LLC.PartitionDDIO(map[uint32]int{e13VictimTid: 1, e13AdvTid: 1}); err != nil {
			panic(fmt.Sprintf("e13: partition: %v", err))
		}
		gov = overload.NewGovernor(w.Eng, w.NIC, w.LLC, overload.Config{
			DDIOShare:        e13Share,
			TenantWeights:    weights,
			MaxProgramCycles: e13ProgCycles,
		})
	}

	// The adversary tries to install its cycle burner. Raw bypass loads it
	// straight onto the shared ingress pipeline; the governed world checks
	// the verified cycle bound first and refuses with a typed error.
	var progRefused uint64
	prog, err := overlay.Assemble("adv-burn", e13AdversarySource())
	if err != nil {
		panic(fmt.Sprintf("e13: assemble: %v", err))
	}
	if leg == e13Raw {
		if _, _, err := w.NIC.LoadProgram(nic.Ingress, prog); err != nil {
			panic(fmt.Sprintf("e13: load: %v", err))
		}
	} else if leg == e13Ctl {
		if err := gov.AdmitProgram(e13AdvTid, prog.CycleBound()); err != nil {
			progRefused++
		} else {
			panic("e13: the 202-cycle program must not pass a 64-cycle bound")
		}
	}

	// Dial order: victim first (its 64 rings always fit every budget), then
	// the adversary until admission refuses. Rejected flows stay in the
	// offered set — their frames arrive, find no steering entry, and are
	// counted as no-steer drops: a typed rejection's dataplane shadow.
	var rejected uint64
	vicFlows := make([]packet.FlowKey, 0, e13VictimConns)
	for i := 0; i < e13VictimConns; i++ {
		flow := w.Flow(uint16(3000+i/512), uint16(6000+i%512))
		vicFlows = append(vicFlows, flow)
		if gov != nil {
			if err := gov.AdmitConn(w.Kern.TenantOf(vicUser.UID)); err != nil {
				panic(fmt.Sprintf("e13: victim conn %d rejected: %v", i, err))
			}
		}
		if _, err := a.Connect(vicProc, flow); err != nil {
			panic(fmt.Sprintf("e13: victim connect %d: %v", i, err))
		}
	}
	advFlows := make([]packet.FlowKey, 0, advConns)
	if leg != e13Solo {
		for i := 0; i < advConns; i++ {
			flow := w.Flow(uint16(2000+i/512), uint16(7000+i%512))
			advFlows = append(advFlows, flow)
			if gov != nil {
				if err := gov.AdmitConn(w.Kern.TenantOf(advUser.UID)); err != nil {
					rejected++
					continue
				}
			}
			if _, err := a.Connect(advProc, flow); err != nil {
				panic(fmt.Sprintf("e13: adv connect %d: %v", i, err))
			}
		}
	}

	// Duration: enough for the adversary's rings to wrap several times at
	// ~7.1 Mpps (one 1502 B frame every ~141 ns at 85G).
	wraps := 6
	if scale < 0.5 {
		wraps = 2
	}
	dur := sim.Duration(advConns*e13RingSize*wraps) * (140 * sim.Nanosecond)
	if min := scale.d(4 * sim.Millisecond); dur < min {
		dur = min
	}
	winLo := sim.Time(dur) / 2
	var delivered uint64
	var vicBytes, advBytes uint64
	var vicLat stats.Histogram
	a.SetDeliver(func(c *arch.Conn, p *packet.Packet, at sim.Time) {
		delivered++
		if at < winLo {
			return
		}
		if c.Info.UID == vicUser.UID {
			vicBytes += uint64(p.FrameLen())
			// NIC-receive to app-delivery latency: FIFO wait, pipeline
			// scheduling, and the DMA whose descriptor fetch the DDIO
			// partition protects.
			vicLat.Observe(at.Sub(p.Meta.Enqueued))
		} else {
			advBytes += uint64(p.FrameLen())
		}
	})

	if gov != nil {
		gov.Start(sim.Time(dur))
	}
	vgen := &host.InboundGen{
		Arch: a, Flows: vicFlows, Payload: e13VictimPayload,
		Interval: host.IntervalFor(e13VictimGbps, e13VictimFrame),
		Until:    sim.Time(dur),
	}
	vgen.Start(0)
	sent := func() uint64 { return vgen.Sent }
	if leg != e13Solo {
		agen := &host.InboundGen{
			Arch: a, Flows: advFlows, Payload: e13AdvPayload,
			Interval: host.IntervalFor(e13AdvGbps, e13AdvFrame),
			Until:    sim.Time(dur),
		}
		agen.Start(0)
		sent = func() uint64 { return vgen.Sent + agen.Sent }
	}
	if w.Coord != nil {
		w.Coord.RunUntil(sim.Time(dur))
		w.Coord.Run() // drain in-flight DMA/delivery
	} else {
		w.Eng.RunUntil(sim.Time(dur))
		w.Eng.Run()
	}

	res := e13Result{
		vicGbps:     stats.Throughput(vicBytes, sim.Time(dur).Sub(winLo)),
		advGbps:     stats.Throughput(advBytes, sim.Time(dur).Sub(winLo)),
		vicP99:      float64(vicLat.P99()) / float64(sim.Microsecond),
		drops:       w.NIC.RxFifoDrop + w.NIC.RxDropRing,
		rejected:    rejected,
		progRefused: progRefused,
		vicState:    "-",
		advState:    "-",
	}
	if gov != nil {
		res.admitted = gov.Snapshot().Admitted
		for _, ts := range gov.TenantSnapshots() {
			switch ts.Tenant {
			case e13VictimTid:
				res.vicState = ts.State
			case e13AdvTid:
				res.advState = ts.State
			}
		}
	}
	// The zero-silent-loss ledger: every offered frame is delivered or sits
	// in exactly one drop counter.
	counted := w.NIC.RxDropNoSteer + w.NIC.RxDropRing + w.NIC.RxFifoDrop +
		w.NIC.RxDropVerdict + w.NIC.RxOutageDrop + w.NIC.RxShed
	res.silent = int64(sent()) - int64(delivered) - int64(counted)
	return res
}
