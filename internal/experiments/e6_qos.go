package experiments

import (
	"errors"
	"fmt"

	"norman/internal/arch"
	"norman/internal/host"
	"norman/internal/packet"
	"norman/internal/qos"
	"norman/internal/sim"
	"norman/internal/stats"
	"norman/internal/timing"
)

// E6Row is one (architecture, weight) fairness measurement.
type E6Row struct {
	Arch        string
	Weight      float64
	AchievedWFQ float64 // achieved byte ratio backup:game under WFQ
	AchievedDRR float64 // same under DRR
	Err         string  // non-empty when the architecture cannot schedule
}

// E6Game is the §2 game-shaping scenario: cap the game's bandwidth so bulk
// work is unaffected.
type E6Game struct {
	Arch        string
	GameGbps    float64 // achieved by the (shaped) game traffic
	BulkGbps    float64 // achieved by the productive traffic
	ShapeToGbps float64 // the configured cap
	Enforceable bool
}

// E6Result aggregates the QoS experiment.
type E6Result struct {
	Fairness []E6Row
	Game     []E6Game
}

// RunE6 reproduces the §2 QoS scenario quantitatively: achieved shares
// should track configured per-user weights wherever the scheduler sees who
// generates the traffic (kernelstack, sidecar, kopi), collapse to ~1:1 where
// it cannot (hypervisor), and be unconfigurable on raw bypass. The DRR
// column is the hardware-friendly scheduler ablation.
func RunE6(scale Scale) (*E6Result, *stats.Table) {
	names := arch.Names()
	weights := []float64{2, 3, 8}
	res := &E6Result{
		Fairness: make([]E6Row, len(names)*len(weights)),
		Game:     make([]E6Game, len(names)),
	}
	pool := NewRunner()
	for i, name := range names {
		for j, weight := range weights {
			row := &res.Fairness[i*len(weights)+j]
			name, weight := name, weight
			row.Arch = name
			row.Weight = weight
			pool.Go(func() {
				r, err := runQoSShare(name, weight, scale, "wfq")
				if err != nil {
					row.Err = errString(err)
					return
				}
				row.AchievedWFQ = r
				if r2, err := runQoSShare(name, weight, scale, "drr"); err == nil {
					row.AchievedDRR = r2
				}
			})
		}
	}
	for i, name := range names {
		i, name := i, name
		pool.Go(func() { res.Game[i] = e6Game(name, scale) })
	}
	pool.Wait()

	t := stats.NewTable("E6a: achieved share ratio (backup:game) vs configured weight",
		"arch", "weight", "wfq achieved", "drr achieved", "error")
	for _, r := range res.Fairness {
		t.AddRow(r.Arch, r.Weight, r.AchievedWFQ, r.AchievedDRR, r.Err)
	}
	t2 := stats.NewTable("\nE6b: game traffic shaped to 1G while bulk is unaffected",
		"arch", "game (Gbps)", "bulk (Gbps)", "enforced")
	for _, g := range res.Game {
		t2.AddRow(g.Arch, g.GameGbps, g.BulkGbps, fmt.Sprintf("%v", g.Enforceable))
	}
	return res, composeTables(t, t2)
}

func errString(err error) string {
	if errors.Is(err, arch.ErrUnsupported) {
		return "unsupported"
	}
	return err.Error()
}

// e6Game runs the SSH-game scenario: Bob's game competes with Charlie's
// backup; Alice caps the game at 1G with a TBF band under strict priority
// classified by user. Enforced = game held near the cap while bulk keeps its
// demand.
func e6Game(name string, scale Scale) E6Game {
	model := timing.Default()
	model.WireBW = sim.Gbps(10)
	a := arch.New(name, arch.WorldConfig{Model: model})
	w := a.World()

	g := E6Game{Arch: name, ShapeToGbps: 1}

	until := sim.Time(scale.d(8 * sim.Millisecond))
	winLo := until / 4
	perPort := map[uint16]uint64{}
	w.Peer = func(p *packet.Packet, at sim.Time) {
		if p.UDP != nil && at >= winLo && at <= until {
			perPort[p.UDP.DstPort] += uint64(p.FrameLen())
		}
	}

	bob := w.Kern.AddUser(1001, "bob")
	charlie := w.Kern.AddUser(1002, "charlie")
	game := w.Kern.Spawn(bob.UID, "game")
	backup := w.Kern.Spawn(charlie.UID, "backup")

	gameFlow := w.Flow(20001, 1234)
	backupFlow := w.Flow(20002, 873)
	gameConn, err := a.Connect(game, gameFlow)
	if err != nil {
		g.Enforceable = false
		return g
	}
	backupConn, err := a.Connect(backup, backupFlow)
	if err != nil {
		g.Enforceable = false
		return g
	}

	// Band 0: everything else, FIFO. Band 1: the game user, shaped to 1G.
	sched := qos.NewPrioWith(
		qos.NewPFIFO(512),
		qos.NewTBF(qos.NewPFIFO(512), sim.Gbps(1), 64<<10),
	)
	classify := func(p *packet.Packet) uint32 {
		if p.Meta.TrustedMeta && p.Meta.UID == bob.UID {
			return 1
		}
		return 0
	}
	if err := a.SetQdisc(sched, classify); err != nil {
		g.Enforceable = false
		return g
	}

	mk := func(c *arch.Conn, f packet.FlowKey, gbps float64) *host.Sender {
		return &host.Sender{Arch: a, Conn: c, Flow: f, Payload: 8958,
			Interval: host.IntervalFor(gbps, 9000), Until: until, Burst: 4}
	}
	mk(gameConn, gameFlow, 5).Start(0)     // the game tries to use 5G
	mk(backupConn, backupFlow, 6).Start(0) // productive work wants 6G
	w.Eng.Run()

	win := until.Sub(winLo)
	g.GameGbps = stats.Throughput(perPort[1234], win)
	g.BulkGbps = stats.Throughput(perPort[873], win)
	// Enforced: the game is held near the cap and bulk gets its demand.
	g.Enforceable = g.GameGbps < 1.6 && g.BulkGbps > 5.0
	return g
}
