// Package experiments contains one driver per experiment in the DESIGN.md
// index (E1–E12). Each driver builds its worlds, runs the workload in virtual
// time, and returns both a typed result (asserted by tests and benches) and
// a formatted table matching the claim it reproduces. cmd/kopibench and the
// top-level bench targets are thin wrappers over these drivers. E9 doubles
// as the observability showcase: RunE9Telemetry fills a Telemetry sink with
// the unified metrics registry, per-architecture pcaps and exemplar packet
// traces (see OBSERVABILITY.md).
//
// # Parallel execution
//
// Every point in a driver's sweep is an isolated world simulation, so the
// drivers fan points out over a bounded worker pool (see runner.go;
// configure with SetWorkers or NORMAN_WORKERS, default GOMAXPROCS). The
// harness contract that keeps results byte-identical at any pool width:
//
//   - a task must build its world(s) inside the task, never share one;
//   - all randomness comes from sim.NewRNG with seeds fixed by the task's
//     identity (component label + constants), never from global state;
//   - each task writes only its own pre-allocated result slot, and the
//     caller reads results only after Runner.Wait.
//
// TestParallelDeterminism enforces the contract end to end.
package experiments

import (
	"norman/internal/arch"
	"norman/internal/sim"
)

// runFor drives a world's engine until the given virtual deadline.
func runFor(w *arch.World, d sim.Duration) sim.Time {
	return w.Eng.RunUntil(sim.Time(d))
}

// Scale compresses experiment durations for quick test runs: drivers
// multiply their simulated durations and sweep sizes by it. 1.0 is the full
// benchmark configuration.
type Scale float64

// durations scaled.
func (s Scale) d(base sim.Duration) sim.Duration {
	v := sim.Duration(float64(base) * float64(s))
	if v < sim.Microsecond {
		v = sim.Microsecond
	}
	return v
}

// count scales an iteration count, keeping at least lo.
func (s Scale) n(base, lo int) int {
	v := int(float64(base) * float64(s))
	if v < lo {
		v = lo
	}
	return v
}
