// Package experiments contains one driver per experiment in the DESIGN.md
// index (E1–E8). Each driver builds its worlds, runs the workload in virtual
// time, and returns both a typed result (asserted by tests and benches) and
// a formatted table matching the claim it reproduces. cmd/kopibench and the
// top-level bench targets are thin wrappers over these drivers.
package experiments

import (
	"norman/internal/arch"
	"norman/internal/sim"
)

// runFor drives a world's engine until the given virtual deadline.
func runFor(w *arch.World, d sim.Duration) sim.Time {
	return w.Eng.RunUntil(sim.Time(d))
}

// Scale compresses experiment durations for quick test runs: drivers
// multiply their simulated durations and sweep sizes by it. 1.0 is the full
// benchmark configuration.
type Scale float64

// durations scaled.
func (s Scale) d(base sim.Duration) sim.Duration {
	v := sim.Duration(float64(base) * float64(s))
	if v < sim.Microsecond {
		v = sim.Microsecond
	}
	return v
}

// count scales an iteration count, keeping at least lo.
func (s Scale) n(base, lo int) int {
	v := int(float64(base) * float64(s))
	if v < lo {
		v = lo
	}
	return v
}
