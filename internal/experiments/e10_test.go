package experiments

import (
	"reflect"
	"testing"
)

// TestE10Determinism pins the crash-recovery table: for a fixed fault seed
// the whole E10 table — deliveries, rejections, repair counts, recovery
// times — is byte-identical at any worker width. A control-plane crash is a
// simulation input like any other.
func TestE10Determinism(t *testing.T) {
	t.Setenv("NORMAN_FAULT_SEED", "7")

	prev := SetWorkers(1)
	defer SetWorkers(prev)
	seq, seqTable := RunE10(0.12)

	SetWorkers(8)
	wide, wideTable := RunE10(0.12)

	if !reflect.DeepEqual(seq, wide) {
		t.Fatalf("E10 rows differ between 1 and 8 workers:\n%+v\n%+v", seq, wide)
	}
	if seqTable.String() != wideTable.String() {
		t.Fatalf("E10 tables differ between 1 and 8 workers:\n%s\n%s",
			seqTable.String(), wideTable.String())
	}
}

// TestE10RecoveryClaims asserts the architectural content of the table: on
// KOPI (and bypass) the restart costs zero dataplane packets and breaks no
// connections, every restart reconciles to a clean diff with invariants
// intact, mid-outage mutations are counted as rejected, and on kopi the
// injected NIC-state loss forces actual repair actions.
func TestE10RecoveryClaims(t *testing.T) {
	t.Setenv("NORMAN_FAULT_SEED", "42")
	rows, _ := RunE10(0.12)

	if len(rows) != 9 {
		t.Fatalf("want 3 archs x 3 outages = 9 rows, got %d", len(rows))
	}
	sawKernelLoss := false
	for _, r := range rows {
		if !r.InvariantsOK || !r.Clean {
			t.Fatalf("%s@%gus: restart must reconcile clean with invariants ok: %+v",
				r.Arch, r.OutageUs, r)
		}
		if r.Rejected != 5 {
			t.Fatalf("%s@%gus: all 5 mid-outage mutations must be rejected, got %d",
				r.Arch, r.OutageUs, r.Rejected)
		}
		if r.Broken != 0 {
			t.Fatalf("%s@%gus: connections must survive the restart: %+v",
				r.Arch, r.OutageUs, r)
		}
		if r.RecoveryUs <= 0 {
			t.Fatalf("%s@%gus: recovery time must be positive: %+v",
				r.Arch, r.OutageUs, r)
		}
		switch r.Arch {
		case "kopi", "bypass":
			if r.Lost != 0 {
				t.Fatalf("%s@%gus: ring dataplane must lose zero packets to the "+
					"control-plane restart, lost %d", r.Arch, r.OutageUs, r.Lost)
			}
		case "kernelstack":
			if r.Lost > 0 {
				sawKernelLoss = true
			}
		}
		if r.Arch == "kopi" && r.Repairs == 0 {
			t.Fatalf("kopi@%gus: injected NIC-state loss must force repairs: %+v",
				r.OutageUs, r)
		}
	}
	if !sawKernelLoss {
		t.Fatal("kernelstack must drop packets during some outage width")
	}
}
