package experiments

import (
	"reflect"
	"testing"
)

// TestE11Determinism pins the overload table: the governor's watchdog runs on
// virtual-time timers and the shed policy on seeded per-world state, so the
// whole E11 table — goodput split, p99, admission counts, shed totals, the
// silent-loss ledger — is byte-identical at any worker width.
func TestE11Determinism(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	seq, seqTable := RunE11(0.12)

	SetWorkers(8)
	wide, wideTable := RunE11(0.12)

	if !reflect.DeepEqual(seq, wide) {
		t.Fatalf("E11 rows differ between 1 and 8 workers:\n%+v\n%+v", seq, wide)
	}
	if seqTable.String() != wideTable.String() {
		t.Fatalf("E11 tables differ between 1 and 8 workers:\n%s\n%s",
			seqTable.String(), wideTable.String())
	}
}

// TestE11GracefulDegradation asserts the architectural content of the table:
// past the DDIO cliff the uncontrolled bypass world collapses (high-class
// goodput falls, p99 balloons, drops grow without bound), while the governed
// world degrades by policy — high-class goodput at 8192 connections stays
// within 90% of its 1024-connection value, admission caps the ring working
// set with typed rejections, the low class (not the high one) absorbs the
// loss, and every non-delivered frame in BOTH worlds sits in exactly one
// counter (zero silent losses).
func TestE11GracefulDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fidelity sweep (~4s): the sub-0.5 scales shorten runs into the warm-up transient")
	}
	// Scale >= 0.5 keeps the full sweep and the steady-state run length; the
	// compressed scales measure inside the cold-cache warm-up, where even the
	// pre-cliff points look collapsed.
	points, _ := RunE11(0.6)

	byConns := make(map[int]E11Point, len(points))
	for _, p := range points {
		byConns[p.Conns] = p
	}
	pre, ok := byConns[1024]
	if !ok {
		t.Fatal("sweep must include the 1024-connection pre-cliff point")
	}
	post, ok := byConns[8192]
	if !ok {
		t.Fatal("sweep must include the 8192-connection post-cliff point")
	}

	// The uncontrolled baseline exhibits the cliff.
	if post.RawHiGbps >= 0.9*pre.RawHiGbps {
		t.Fatalf("uncontrolled bypass must collapse past the cliff: hi %.2f -> %.2f Gbps",
			pre.RawHiGbps, post.RawHiGbps)
	}
	if post.RawDrops <= pre.RawDrops {
		t.Fatalf("uncontrolled drops must grow past the cliff: %d -> %d",
			pre.RawDrops, post.RawDrops)
	}

	// The governed world holds the high class.
	if post.CtlHiGbps < 0.9*pre.CtlHiGbps {
		t.Fatalf("governed high-class goodput at 8192 conns = %.2f Gbps, want >= 90%% of the 1024-conn %.2f",
			post.CtlHiGbps, pre.CtlHiGbps)
	}
	// Bounded p99 for the protected class: no worse than the collapsing
	// baseline's.
	if post.CtlHiP99 > post.RawHiP99 {
		t.Fatalf("governed high-class p99 %.1fµs must not exceed the uncontrolled %.1fµs",
			post.CtlHiP99, post.RawHiP99)
	}

	// Degradation is a policy decision, visibly accounted: admission refused
	// the ring working set it could not afford with typed errors.
	if post.CtlRejected == 0 {
		t.Fatal("past the cliff the governor must reject admissions")
	}
	if post.CtlAdmitted >= 8192 {
		t.Fatalf("admitted %d/8192 — admission must cap the ring working set", post.CtlAdmitted)
	}
	if got := post.CtlAdmitted + post.CtlRejected; got != 8192 {
		t.Fatalf("admitted %d + rejected %d must cover all 8192 offered conns",
			post.CtlAdmitted, post.CtlRejected)
	}

	// Zero silent losses everywhere, in both worlds: the conservation ledger
	// (offered = delivered + every typed/counted drop) balances exactly.
	for _, p := range points {
		if p.RawSilent != 0 || p.CtlSilent != 0 {
			t.Fatalf("%d conns: silent losses raw=%d ctl=%d, want 0/0 — a frame vanished unaccounted",
				p.Conns, p.RawSilent, p.CtlSilent)
		}
	}

	// The shed policy actually fired somewhere in the governed sweep.
	var shed uint64
	for _, p := range points {
		shed += p.CtlShed
	}
	if shed == 0 {
		t.Fatal("the priority-aware shed policy never fired across the sweep")
	}
}
