package experiments

import (
	"errors"
	"fmt"

	"norman/internal/arch"
	"norman/internal/host"
	"norman/internal/kernel"
	"norman/internal/nic"
	"norman/internal/overlay"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/stats"
)

// E5Point is one offered-connection-count measurement against a small NIC
// SRAM budget, with and without a software slow path.
type E5Point struct {
	Offered  int // connections requested
	Accepted int // connections the NIC could hold

	// Without fallback: overflow connections simply fail (§5-Q3's bad
	// outcome). AggregateNoFallback counts only fast-path traffic.
	AggregateNoFallbackGbps float64
	FailedConns             int

	// With fallback: overflow connections ride the kernel software path.
	AggregateFallbackGbps float64
	FastGbps              float64
	SlowGbps              float64
}

// E5Result also reports the overlay-table exhaustion micro-check.
type E5Result struct {
	Points []E5Point

	TableCapacity int
	TableInserted int
	TableRejected int
}

// RunE5 reproduces §5-Q3: SmartNIC memory is scarce; a KOPI must degrade by
// routing overflow traffic through a software slow path rather than failing.
// Expected shape: without fallback, connections beyond the SRAM budget get
// nothing; with fallback, they get service at software (not NIC) rates and
// the aggregate degrades gracefully instead of flat-lining.
func RunE5(scale Scale) (*E5Result, *stats.Table) {
	res := &E5Result{}
	sweep := []int{128, 256, 384, 512, 768}
	res.Points = make([]E5Point, len(sweep))
	r := NewRunner()
	for i, offered := range sweep {
		i, offered := i, offered
		// The two passes (no fallback / fallback) are separate worlds too;
		// split them so they land on different cores.
		res.Points[i].Offered = offered
		r.Go(func() {
			ag, _, _, accepted := e5Traffic(offered, false, scale)
			res.Points[i].AggregateNoFallbackGbps = ag
			res.Points[i].Accepted = accepted
			res.Points[i].FailedConns = offered - accepted
		})
		r.Go(func() {
			ag, fast, slow, _ := e5Traffic(offered, true, scale)
			res.Points[i].AggregateFallbackGbps = ag
			res.Points[i].FastGbps = fast
			res.Points[i].SlowGbps = slow
		})
	}
	r.Go(func() {
		res.TableCapacity, res.TableInserted, res.TableRejected = e5TableFill()
	})
	r.Wait()

	t := stats.NewTable("E5: NIC SRAM exhaustion (budget ~64KB ≈ 300 conns), inbound 1460B",
		"offered conns", "accepted", "failed (no fallback)", "agg no-fallback (Gbps)",
		"agg fallback (Gbps)", "fast (Gbps)", "slow (Gbps)")
	for _, p := range res.Points {
		t.AddRow(p.Offered, p.Accepted, p.FailedConns, p.AggregateNoFallbackGbps,
			p.AggregateFallbackGbps, p.FastGbps, p.SlowGbps)
	}
	t2 := stats.NewTable("\nE5b: overlay exact-match table fill",
		"capacity", "inserted", "rejected")
	t2.AddRow(res.TableCapacity, res.TableInserted, res.TableRejected)
	return res, composeTables(t, t2)
}

// e5Budget sizes the NIC SRAM so roughly 300 connections fit (192B context
// + 16B steering entry each).
const e5Budget = 64 << 10

// e5Traffic opens `offered` connections on a KOPI world with a tiny SRAM
// budget and measures delivered goodput, split by path.
func e5Traffic(offered int, fallback bool, scale Scale) (agg, fast, slow float64, accepted int) {
	a := arch.New("kopi", arch.WorldConfig{SRAMBudget: e5Budget, RingSize: 32}).(*arch.KOPI)
	w := a.World()
	w.Peer = func(*packet.Packet, sim.Time) {}

	alice := w.Kern.AddUser(1000, "alice")
	proc := w.Kern.Spawn(alice.UID, "server")

	dur := scale.d(8 * sim.Millisecond)
	winLo := sim.Time(dur) / 3
	var fastBytes, slowBytes uint64
	a.SetDeliver(func(_ *arch.Conn, p *packet.Packet, at sim.Time) {
		if at >= winLo {
			fastBytes += uint64(p.FrameLen())
		}
	})

	slowConns := map[packet.FlowKey]*kernel.ConnInfo{}
	if fallback {
		// The kernel slow path: software demux + protocol work on the
		// kernel core, then deliver. This is the paper's "route
		// performance-non-critical traffic through a software datapath".
		w.NIC.SlowPath = func(p *packet.Packet, at sim.Time) {
			k, ok := p.Flow()
			if !ok {
				return
			}
			if _, ok := slowConns[k.Reverse()]; !ok {
				return
			}
			m := w.Model
			cost := sim.Duration(m.KernelStackFixed) + m.Copy(p.FrameLen())
			_, done := w.KernCore().Acquire(w.Eng.Now(), cost)
			w.Eng.At(done, func() {
				if w.Eng.Now() >= winLo {
					slowBytes += uint64(p.FrameLen())
				}
			})
		}
	}

	var flows []packet.FlowKey
	for i := 0; i < offered; i++ {
		flow := w.Flow(uint16(2000+i), 7)
		c, err := a.Connect(proc, flow)
		switch {
		case err == nil:
			_ = c
			accepted++
			flows = append(flows, flow)
		case errors.Is(err, nic.ErrSRAMExhausted):
			// Remote peers keep sending regardless, so the overflow flow
			// stays in the generator either way; without a fallback its
			// packets arrive unsteered and the NIC drops them.
			flows = append(flows, flow)
			if !fallback {
				continue
			}
			ci, rerr := w.Kern.RegisterConn(proc, flow)
			if rerr != nil {
				panic(fmt.Sprintf("e5: register fallback: %v", rerr))
			}
			slowConns[flow] = ci
		default:
			panic(fmt.Sprintf("e5: connect: %v", err))
		}
	}

	gen := &host.InboundGen{
		Arch: a, Flows: flows, Payload: 1460,
		Interval: host.IntervalFor(40, 1502), // per-host inbound load, below line rate
		Until:    sim.Time(dur),
	}
	gen.Start(0)
	w.Eng.RunUntil(sim.Time(dur))

	win := sim.Time(dur).Sub(winLo)
	fast = stats.Throughput(fastBytes, win)
	slow = stats.Throughput(slowBytes, win)
	return fast + slow, fast, slow, accepted
}

// e5TableFill fills an overlay exact-match table past its declared capacity
// and counts rejected control-plane inserts.
func e5TableFill() (capacity, inserted, rejected int) {
	const capN = 1024
	prog, err := overlay.Assemble("e5-table", fmt.Sprintf(`
.table flows %d
ldf r0, conn
lookup r1, flows, r0, miss
pass
miss:
drop
`, capN))
	if err != nil {
		panic("e5: assemble: " + err.Error())
	}
	m := overlay.NewMachine(prog)
	for i := 0; i < capN+200; i++ {
		if err := m.TableInsert("flows", uint64(i), 1); err != nil {
			rejected++
			continue
		}
		inserted++
	}
	return capN, inserted, rejected
}
