package experiments

import (
	"reflect"
	"testing"
)

// TestDeterminism backs the reproduction's core methodological claim: the
// virtual-time simulation produces bit-identical results across runs, so
// every number in EXPERIMENTS.md is exactly reproducible.
func TestDeterminism(t *testing.T) {
	r1, _ := RunE1(0.1)
	r2, _ := RunE1(0.1)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("E1 runs differ:\n%+v\n%+v", r1, r2)
	}

	p1, _ := RunE5(0.2)
	p2, _ := RunE5(0.2)
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("E5 runs differ:\n%+v\n%+v", p1, p2)
	}

	rows1, _ := RunE7(0.1)
	rows2, _ := RunE7(0.1)
	if !reflect.DeepEqual(rows1, rows2) {
		t.Fatalf("E7 runs differ")
	}
}
