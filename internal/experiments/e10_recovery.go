package experiments

import (
	"fmt"

	"norman"
	"norman/internal/faults"
	"norman/internal/nic"
	"norman/internal/packet"
	"norman/internal/recovery"
	"norman/internal/sim"
	"norman/internal/stats"
)

// E10 fixed timeline (virtual time). The crash lands mid-traffic, the
// restart sweeps across outage widths, and a post-restart probe per
// connection proves the conns still deliver.
const (
	e10Horizon = 4 * sim.Millisecond
	e10CrashAt = 1200 * sim.Microsecond
	// Traffic occupies a fixed window regardless of scale, so the crash
	// always lands mid-stream; scaling changes density, not coverage.
	e10TrafficStart = 100 * sim.Microsecond
	e10TrafficSpan  = 3 * sim.Millisecond
	e10Conns        = 3
	// Probes carry a payload size no background packet uses, so a probe
	// delivery is counted as such even while the traffic window is still
	// draining around it.
	e10TrafficPayload = 256
	e10ProbePayload   = 64
)

// E10Row is one (architecture, outage width) cell of the crash-recovery
// table.
type E10Row struct {
	Arch     string
	OutageUs float64

	Sent      int // inbound packets offered (traffic + probes)
	Delivered int // packets the applications consumed
	// Lost is the loss *attributable to the control-plane restart*: the
	// delivery count of an identical world that never crashes, minus this
	// world's. Zero on the ring architectures is the paper's survival
	// claim; on the kernel stack it is the outage window in packets.
	Lost int
	// Broken counts connections that stopped delivering after the restart
	// (probe packet never arrived).
	Broken int

	Rejected int // mutations refused with ErrControlPlaneDown mid-outage
	Entries  int // journal entries replayed at restart
	Repairs  int // reconciliation actions applied
	Stale    int

	InvariantsOK bool
	Clean        bool
	RecoveryUs   float64 // deterministic reconciliation virtual time
}

// e10Result is what one world run reports.
type e10Result struct {
	sent      int
	delivered int
	broken    int
	report    *recovery.Report
}

// RunE10 measures control-plane crash recovery: the same inbound workload
// on kernelstack, bypass and kopi, with the control plane killed at
// e10CrashAt and restarted after each swept outage width. Policies are
// journaled write-ahead; on kopi an additional NIC-state loss (the ingress
// chain unloaded mid-outage) forces the reconciler to actually repair
// divergence, not just replay. Loss is attributed by differencing against
// a crash-free twin world, so the table isolates exactly what the restart
// cost — the architectural claim is that on KOPI that number is zero: the
// NIC keeps forwarding the last-installed policies while the control plane
// is gone.
func RunE10(scale Scale) ([]E10Row, *stats.Table) {
	archs := []string{"kernelstack", "bypass", "kopi"}
	outages := []sim.Duration{50 * sim.Microsecond, 200 * sim.Microsecond, 1000 * sim.Microsecond}
	pkts := scale.n(500, 60) // inbound packets per connection
	seed := FaultSeed()

	// Two worlds per sweep point: the measured (crashing) one and its
	// crash-free baseline for loss attribution.
	type cell struct{ crash, base e10Result }
	cells := make([]cell, len(archs)*len(outages))
	r := NewRunner()
	for ai, name := range archs {
		for oi, outage := range outages {
			c := &cells[ai*len(outages)+oi]
			name, outage := name, outage
			r.Go(func() { c.crash = e10Point(name, outage, pkts, seed, true) })
			r.Go(func() { c.base = e10Point(name, outage, pkts, seed, false) })
		}
	}
	r.Wait()

	rows := make([]E10Row, len(cells))
	for i := range cells {
		ai, oi := i/len(outages), i%len(outages)
		crash, base := cells[i].crash, cells[i].base
		row := &rows[i]
		row.Arch = archs[ai]
		row.OutageUs = outages[oi].Microseconds()
		row.Sent = crash.sent
		row.Delivered = crash.delivered
		row.Lost = base.delivered - crash.delivered
		row.Broken = crash.broken
		if rep := crash.report; rep != nil {
			row.Rejected = rep.Rejected
			row.Entries = rep.Entries
			row.Repairs = len(rep.Actions)
			row.Stale = rep.Stale
			row.InvariantsOK = rep.InvariantsOK
			row.Clean = rep.Clean
			row.RecoveryUs = rep.RecoveryTime.Microseconds()
		}
	}

	t := stats.NewTable("E10: control-plane crash recovery (3 conns, inbound traffic, crash at 1.2ms)",
		"arch", "outage(µs)", "sent", "delivered", "lost", "broken", "rejected",
		"entries", "repairs", "stale", "invariants", "clean", "recovery(µs)")
	for _, row := range rows {
		inv, clean := "ok", "yes"
		if !row.InvariantsOK {
			inv = "FAIL"
		}
		if !row.Clean {
			clean = "NO"
		}
		t.AddRow(row.Arch, fmt.Sprintf("%g", row.OutageUs), row.Sent, row.Delivered,
			row.Lost, row.Broken, row.Rejected, row.Entries, row.Repairs, row.Stale,
			inv, clean, fmt.Sprintf("%.1f", row.RecoveryUs))
	}
	return rows, t
}

// e10Point runs one world. With crash=false the identical timeline runs
// minus the crash/restart (the loss-attribution baseline); probes fire at
// the same instants either way so both worlds offer the same packet count.
func e10Point(name string, outage sim.Duration, pkts int, seed int64, crash bool) e10Result {
	sys := norman.New(norman.Architecture(name))
	sys.EnableRecovery()
	sys.UseSinkPeer()
	u := sys.AddUser(1000, "alice")
	app := sys.Spawn(u, "svc")

	conns := make([]*norman.Conn, e10Conns)
	delivered := 0
	probeGot := make([]int, e10Conns)
	for i := range conns {
		c, err := sys.Dial(app, uint16(41000+i), uint16(9000+i))
		if err != nil {
			panic("e10: dial: " + err.Error())
		}
		i := i
		c.OnReceive(func(d norman.Delivery) {
			delivered++
			if d.Payload == e10ProbePayload {
				probeGot[i]++
			}
		})
		conns[i] = c
	}

	// Journaled policies installed pre-crash; bypass rejects the rules
	// (no interposition point — the journal records the aborts) but takes
	// the NIC qdisc.
	_ = sys.IPTablesAppend(norman.Output, norman.Rule{Proto: "udp", DstPort: 9999, Action: "drop"})
	_ = sys.IPTablesAppend(norman.Input, norman.Rule{Proto: "udp", Action: "count"})
	_ = sys.TCSet(norman.QdiscSpec{Kind: "wfq", Weights: map[uint32]float64{1: 4, 2: 1}}, map[uint32]uint32{1000: 1})

	// Inbound traffic: pkts per connection, evenly spread over the window.
	interval := e10TrafficSpan / sim.Duration(pkts)
	for i, c := range conns {
		c := c
		for k := 0; k < pkts; k++ {
			at := e10TrafficStart + sim.Duration(k)*interval + sim.Duration(i)*sim.Microsecond
			sys.At(at, func() { sys.InjectInbound(c, e10TrafficPayload) })
		}
	}
	sent := e10Conns * pkts

	restartAt := e10CrashAt + outage
	var report *recovery.Report
	if crash {
		sys.At(e10CrashAt, func() {
			if err := sys.CrashControlPlane(); err != nil {
				panic("e10: crash: " + err.Error())
			}
		})
		// Mutation attempts mid-outage: all must be refused, none lost
		// silently — the restart report counts them.
		for j := 1; j <= 5; j++ {
			sys.At(e10CrashAt+sim.Duration(j)*outage/6, func() {
				_ = sys.IPTablesAppend(norman.Input, norman.Rule{Proto: "udp", DstPort: 7777, Action: "drop"})
			})
		}
		// On kopi, also lose NIC-resident state mid-outage (the ingress
		// chain vanishes, as after a partial reset): the dataplane fails
		// open — no packet loss — but live state now diverges from the
		// journal and the reconciler must repair it, not just notice.
		if name == "kopi" {
			w := sys.World()
			inj := faults.New(w.Eng, w.NIC, w.LLC, faults.Config{
				Seed: seed, Label: fmt.Sprintf("e10.%s.%g", name, outage.Microseconds()),
			})
			inj.ScheduleNICStateLoss(nic.Ingress, packet.FlowKey{}, sim.Time(e10CrashAt+outage/2))
		}
		sys.At(sim.Duration(restartAt), func() {
			rep, err := sys.RestartControlPlane()
			if err != nil {
				panic("e10: restart: " + err.Error())
			}
			report = rep
		})
	}

	// Post-restart probes (fired in the baseline too, so Sent matches): one
	// distinctly-sized packet per connection; a connection whose probe never
	// arrives is broken. The distinct payload keeps background-stream
	// deliveries after the probe from masking a lost probe.
	probeAt := sim.Duration(restartAt) + 300*sim.Microsecond
	for _, c := range conns {
		c := c
		sys.At(probeAt, func() { sys.InjectInbound(c, e10ProbePayload) })
	}
	sent += e10Conns

	sys.RunFor(sim.Duration(e10Horizon))

	res := e10Result{sent: sent, delivered: delivered, report: report}
	for i := range conns {
		if probeGot[i] == 0 {
			res.broken++
		}
	}
	return res
}
