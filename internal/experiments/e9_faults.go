package experiments

import (
	"bytes"
	"fmt"
	"os"
	"strconv"

	"norman/internal/arch"
	"norman/internal/faults"
	"norman/internal/filter"
	"norman/internal/host"
	"norman/internal/nic"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/sniff"
	"norman/internal/stats"
	"norman/internal/telemetry"
	"norman/internal/transport"
)

// e9Horizon is E9's fixed virtual-time window. It must exceed the worst-case
// give-up time of the default transport RTO schedule (~4.1 s under a total
// blackhole) so every stream reaches a terminal state inside the run.
const e9Horizon = 6 * sim.Second

// e9Streams is the concurrent transfers per world.
const e9Streams = 4

// DefaultFaultSeed seeds the E9 fault processes when NORMAN_FAULT_SEED is
// unset.
const DefaultFaultSeed = 42

// FaultSeed resolves the fault-injection seed from NORMAN_FAULT_SEED. The
// same seed replays the same fault pattern — and therefore the same E9
// table — at any worker width.
func FaultSeed() int64 {
	if v := os.Getenv("NORMAN_FAULT_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return DefaultFaultSeed
}

// E9Row is one (architecture, fault level) cell of the degradation table.
type E9Row struct {
	Arch     string
	FaultPct float64 // headline fault intensity (loss probability ×100)

	Completed int // streams that finished
	Aborted   int // streams that gave up (bounded, not livelocked)

	GoodputGbps float64 // aggregate acked bytes over the busy window

	Retransmits uint64
	Timeouts    uint64

	TrapFallbacks uint64 // overlay traps absorbed by last-good fallback
	WireLost      uint64 // frames eaten in flight (loss + corruption), both dirs
	WireDup       uint64
	WireReordered uint64
	RxFifoDrops   uint64 // NIC ingress FIFO overflow under pressure bursts

	// TerminalAt is when the last stream reached a terminal state — the
	// bounded-degradation claim: finite even at 100% loss.
	TerminalAt sim.Duration
}

// RunE9 measures graceful degradation under injected faults: the same
// workload swept across architecture × fault intensity, with wire loss /
// corruption / reordering / duplication on both directions, periodic NIC
// ring-pressure bursts, and (where an overlay exists) a runtime trap
// mid-run. The claim under test is the robustness half of interposition:
// faults must degrade goodput, never wedge the simulation — every stream
// completes or aborts in bounded virtual time, and an overlay trap is
// absorbed by the last-good chain instead of killing the dataplane.
func RunE9(scale Scale) ([]E9Row, *stats.Table) {
	return RunE9Telemetry(scale, nil)
}

// RunE9Telemetry is RunE9 with an optional observability sink: when tel is
// non-nil, every world registers its metrics under {arch, fault} labels,
// traces one packet lifecycle per sweep point, and exports a pcap from a
// dataplane tap where the architecture can host one. Artifacts are keyed by
// sweep point, so the sink's contents are deterministic at any worker width.
func RunE9Telemetry(scale Scale, tel *Telemetry) ([]E9Row, *stats.Table) {
	archs := []string{"kernelstack", "bypass", "kopi"}
	pcts := []float64{0, 0.5, 2, 10, 100}
	seed := FaultSeed()
	total := uint32(scale.n(256<<10, 16<<10))

	rows := make([]E9Row, len(archs)*len(pcts))
	r := NewRunner()
	for ai, name := range archs {
		for pi, pct := range pcts {
			row := &rows[ai*len(pcts)+pi]
			row.Arch = name
			row.FaultPct = pct
			name, pct := name, pct
			r.Go(func() { e9Point(name, pct, seed, total, row, tel) })
		}
	}
	r.Wait()

	t := stats.NewTable("E9: degradation under injected faults (4 streams, seed "+strconv.FormatInt(seed, 10)+")",
		"arch", "fault%", "done", "aborted", "goodput(Gbps)", "rexmit", "timeouts",
		"trapFB", "wireLost", "wireDup", "fifoDrop", "terminal")
	for _, r := range rows {
		t.AddRow(r.Arch, fmt.Sprintf("%g", r.FaultPct), r.Completed, r.Aborted,
			r.GoodputGbps, r.Retransmits, r.Timeouts, r.TrapFallbacks,
			r.WireLost, r.WireDup, r.RxFifoDrops, r.TerminalAt.String())
	}
	return rows, t
}

// e9Point runs one world: an architecture at one fault intensity.
func e9Point(name string, pct float64, seed int64, total uint32, row *E9Row, tel *Telemetry) {
	a := arch.New(name, arch.WorldConfig{})
	w := a.World()
	point := fmt.Sprintf("%s-%g", name, pct)
	if tel != nil {
		w.EnableTracing(0)
	}

	wire := faults.WireConfig{
		Loss:      pct / 100,
		Reorder:   pct / 200,
		Duplicate: pct / 400,
		Corrupt:   pct / 400,
	}
	cfg := faults.Config{
		Seed:  seed,
		Label: fmt.Sprintf("e9.%s.%g", name, pct),
		Tx:    wire,
		Rx:    wire,
	}
	if pct > 0 {
		cfg.Ring = faults.RingConfig{
			Period:    500 * sim.Microsecond,
			Burst:     50 * sim.Microsecond,
			Window:    1,
			DDIOLines: 64,
		}
	}
	inj := faults.New(w.Eng, w.NIC, w.LLC, cfg)
	if tel != nil {
		inj.SetTracer(w.Tracer)
	}

	// Peer side: per-stream responders (each reassembles one sequence
	// space), all fed from the wire, with their ACK path routed back through
	// the Rx fault model.
	deliver := inj.WrapRx(func(p *packet.Packet) { a.DeliverWire(p) })
	resps := make([]*transport.Responder, e9Streams)
	for i := range resps {
		resps[i] = transport.NewResponder(a, uint16(5900+i), seed+int64(i))
		resps[i].Deliver = deliver
		if tel != nil {
			resps[i].SetTracer(w.Tracer)
		}
	}
	w.Peer = func(p *packet.Packet, at sim.Time) {
		for _, resp := range resps {
			resp.Recv(p, at)
		}
	}
	inj.AttachTx()
	inj.Start(sim.Time(e9Horizon))

	// Where the architecture has an overlay dataplane, install a small
	// firewall chain (two loads, so a last-good chain exists) and trap it
	// mid-run: graceful degradation must absorb the trap, not wedge.
	if pct > 0 {
		for i := 0; i < 2; i++ {
			rule := &filter.Rule{
				Proto:    filter.Proto(packet.ProtoUDP),
				DstPorts: filter.Port(uint16(20000 + i)),
				Action:   filter.ActDrop,
			}
			if err := a.InstallRule(filter.HookOutput, rule); err != nil {
				break // no interposition point (bypass): nothing to trap
			}
		}
		if w.NIC.Machine(nic.Egress) != nil {
			inj.ScheduleOverlayTrap(nic.Egress, sim.Time(50*sim.Microsecond), "e9 injected trap")
		}
	}

	// Observability: a dataplane tap captures the sweep point's TCP traffic
	// for pcap export, where the architecture has an interposition point to
	// host one (raw bypass has none — the paper's tcpdump gap).
	var tap *sniff.Tap
	if tel != nil {
		if expr, err := sniff.Parse("tcp"); err == nil {
			if tp, err := a.AttachTap(expr); err == nil {
				tap = tp
				tap.RegisterMetrics(tel.Registry, telemetry.Labels{"arch": name, "fault": fmt.Sprintf("%g", pct)})
			}
		}
	}

	u := w.Kern.AddUser(1, "u")
	proc := w.Kern.Spawn(u.UID, "sender")
	mux := host.NewMux(a)
	streams := make([]*transport.Stream, e9Streams)
	for i := range streams {
		flow := packet.FlowKey{
			Src: w.HostIP, Dst: w.PeerIP,
			SrcPort: uint16(4001 + i), DstPort: uint16(5900 + i),
			Proto: packet.ProtoTCP,
		}
		conn, err := a.Connect(proc, flow)
		if err != nil {
			panic("e9: connect: " + err.Error())
		}
		streams[i] = transport.New(a, conn, flow, mux, transport.Config{TotalBytes: total})
		streams[i].Start()
	}

	w.Eng.RunUntil(sim.Time(e9Horizon))

	var acked uint64
	var last sim.Time
	for _, s := range streams {
		if s.Done() {
			row.Completed++
		}
		if s.Aborted() {
			row.Aborted++
		}
		acked += s.Stats.AckedBytes
		row.Retransmits += s.Stats.Retransmits
		row.Timeouts += s.Stats.Timeouts
		if s.Terminal() && s.Stats.Finished > last {
			last = s.Stats.Finished
		}
	}
	if last == 0 {
		last = sim.Time(e9Horizon) // a non-terminal stream: clamp to horizon
	}
	row.TerminalAt = last.Sub(0)
	if last > 0 {
		row.GoodputGbps = float64(acked) * 8 / last.Sub(0).Seconds() / 1e9
	}
	row.TrapFallbacks = w.NIC.TrapFallbacks
	row.WireLost = inj.Tx.Dropped() + inj.Rx.Dropped()
	row.WireDup = inj.Tx.Duplicated + inj.Rx.Duplicated
	row.WireReordered = inj.Tx.Reordered + inj.Rx.Reordered
	row.RxFifoDrops = w.NIC.RxFifoDrop

	if tel != nil {
		e9Collect(tel, point, name, pct, w, inj, streams, resps, tap)
	}
}

// e9Collect registers the world's metrics on the shared registry and stores
// the sweep point's pcap and single-packet trace artifacts. Runs after the
// world has drained, so reads need no synchronization with the engine.
func e9Collect(tel *Telemetry, point, name string, pct float64, w *arch.World,
	inj *faults.Injector, streams []*transport.Stream, resps []*transport.Responder, tap *sniff.Tap) {
	labels := telemetry.Labels{"arch": name, "fault": fmt.Sprintf("%g", pct)}
	w.RegisterMetrics(tel.Registry, labels)
	inj.RegisterMetrics(tel.Registry, labels)
	transport.RegisterStreamMetrics(tel.Registry, labels, func() []*transport.Stream { return streams })
	for i, resp := range resps {
		l := telemetry.Labels{"arch": name, "fault": fmt.Sprintf("%g", pct), "peer": strconv.Itoa(i)}
		resp.RegisterResponderMetrics(tel.Registry, l)
	}

	if tap != nil && len(tap.Records()) > 0 {
		var buf bytes.Buffer
		if err := tap.WritePcap(&buf); err == nil {
			tel.AddPcap(point, buf.Bytes())
		}
	}

	// Pick the sweep point's exemplar packet journey: prefer the first
	// stamped ID whose span crossed a fault event (it shows *why* delivery
	// degraded), else the deepest span available.
	tr := w.Tracer
	if tr == nil {
		return
	}
	ids := tr.IDs()
	var pick uint64
	var deepest int
	for _, id := range ids {
		span := tr.Trace(id)
		hasFault := false
		for _, ev := range span {
			if ev.Layer == "faults" {
				hasFault = true
				break
			}
		}
		if hasFault && len(span) >= 4 {
			pick = id
			break
		}
		if len(span) > deepest {
			deepest, pick = len(span), id
		}
	}
	if pick != 0 {
		tel.AddTrace(point, tr.Format(pick))
	}
}
