package experiments

import (
	"fmt"
	"os"
	"strconv"

	"norman/internal/arch"
	"norman/internal/faults"
	"norman/internal/filter"
	"norman/internal/host"
	"norman/internal/nic"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/stats"
	"norman/internal/transport"
)

// e9Horizon is E9's fixed virtual-time window. It must exceed the worst-case
// give-up time of the default transport RTO schedule (~4.1 s under a total
// blackhole) so every stream reaches a terminal state inside the run.
const e9Horizon = 6 * sim.Second

// e9Streams is the concurrent transfers per world.
const e9Streams = 4

// DefaultFaultSeed seeds the E9 fault processes when NORMAN_FAULT_SEED is
// unset.
const DefaultFaultSeed = 42

// FaultSeed resolves the fault-injection seed from NORMAN_FAULT_SEED. The
// same seed replays the same fault pattern — and therefore the same E9
// table — at any worker width.
func FaultSeed() int64 {
	if v := os.Getenv("NORMAN_FAULT_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return DefaultFaultSeed
}

// E9Row is one (architecture, fault level) cell of the degradation table.
type E9Row struct {
	Arch     string
	FaultPct float64 // headline fault intensity (loss probability ×100)

	Completed int // streams that finished
	Aborted   int // streams that gave up (bounded, not livelocked)

	GoodputGbps float64 // aggregate acked bytes over the busy window

	Retransmits uint64
	Timeouts    uint64

	TrapFallbacks uint64 // overlay traps absorbed by last-good fallback
	WireLost      uint64 // frames eaten in flight (loss + corruption), both dirs
	WireDup       uint64
	WireReordered uint64
	RxFifoDrops   uint64 // NIC ingress FIFO overflow under pressure bursts

	// TerminalAt is when the last stream reached a terminal state — the
	// bounded-degradation claim: finite even at 100% loss.
	TerminalAt sim.Duration
}

// RunE9 measures graceful degradation under injected faults: the same
// workload swept across architecture × fault intensity, with wire loss /
// corruption / reordering / duplication on both directions, periodic NIC
// ring-pressure bursts, and (where an overlay exists) a runtime trap
// mid-run. The claim under test is the robustness half of interposition:
// faults must degrade goodput, never wedge the simulation — every stream
// completes or aborts in bounded virtual time, and an overlay trap is
// absorbed by the last-good chain instead of killing the dataplane.
func RunE9(scale Scale) ([]E9Row, *stats.Table) {
	archs := []string{"kernelstack", "bypass", "kopi"}
	pcts := []float64{0, 0.5, 2, 10, 100}
	seed := FaultSeed()
	total := uint32(scale.n(256<<10, 16<<10))

	rows := make([]E9Row, len(archs)*len(pcts))
	r := NewRunner()
	for ai, name := range archs {
		for pi, pct := range pcts {
			row := &rows[ai*len(pcts)+pi]
			row.Arch = name
			row.FaultPct = pct
			name, pct := name, pct
			r.Go(func() { e9Point(name, pct, seed, total, row) })
		}
	}
	r.Wait()

	t := stats.NewTable("E9: degradation under injected faults (4 streams, seed "+strconv.FormatInt(seed, 10)+")",
		"arch", "fault%", "done", "aborted", "goodput(Gbps)", "rexmit", "timeouts",
		"trapFB", "wireLost", "wireDup", "fifoDrop", "terminal")
	for _, r := range rows {
		t.AddRow(r.Arch, fmt.Sprintf("%g", r.FaultPct), r.Completed, r.Aborted,
			r.GoodputGbps, r.Retransmits, r.Timeouts, r.TrapFallbacks,
			r.WireLost, r.WireDup, r.RxFifoDrops, r.TerminalAt.String())
	}
	return rows, t
}

// e9Point runs one world: an architecture at one fault intensity.
func e9Point(name string, pct float64, seed int64, total uint32, row *E9Row) {
	a := arch.New(name, arch.WorldConfig{})
	w := a.World()

	wire := faults.WireConfig{
		Loss:      pct / 100,
		Reorder:   pct / 200,
		Duplicate: pct / 400,
		Corrupt:   pct / 400,
	}
	cfg := faults.Config{
		Seed:  seed,
		Label: fmt.Sprintf("e9.%s.%g", name, pct),
		Tx:    wire,
		Rx:    wire,
	}
	if pct > 0 {
		cfg.Ring = faults.RingConfig{
			Period:    500 * sim.Microsecond,
			Burst:     50 * sim.Microsecond,
			Window:    1,
			DDIOLines: 64,
		}
	}
	inj := faults.New(w.Eng, w.NIC, w.LLC, cfg)

	// Peer side: per-stream responders (each reassembles one sequence
	// space), all fed from the wire, with their ACK path routed back through
	// the Rx fault model.
	deliver := inj.WrapRx(func(p *packet.Packet) { a.DeliverWire(p) })
	resps := make([]*transport.Responder, e9Streams)
	for i := range resps {
		resps[i] = transport.NewResponder(a, uint16(5900+i), seed+int64(i))
		resps[i].Deliver = deliver
	}
	w.Peer = func(p *packet.Packet, at sim.Time) {
		for _, resp := range resps {
			resp.Recv(p, at)
		}
	}
	inj.AttachTx()
	inj.Start(sim.Time(e9Horizon))

	// Where the architecture has an overlay dataplane, install a small
	// firewall chain (two loads, so a last-good chain exists) and trap it
	// mid-run: graceful degradation must absorb the trap, not wedge.
	if pct > 0 {
		for i := 0; i < 2; i++ {
			rule := &filter.Rule{
				Proto:    filter.Proto(packet.ProtoUDP),
				DstPorts: filter.Port(uint16(20000 + i)),
				Action:   filter.ActDrop,
			}
			if err := a.InstallRule(filter.HookOutput, rule); err != nil {
				break // no interposition point (bypass): nothing to trap
			}
		}
		if w.NIC.Machine(nic.Egress) != nil {
			inj.ScheduleOverlayTrap(nic.Egress, sim.Time(50*sim.Microsecond), "e9 injected trap")
		}
	}

	u := w.Kern.AddUser(1, "u")
	proc := w.Kern.Spawn(u.UID, "sender")
	mux := host.NewMux(a)
	streams := make([]*transport.Stream, e9Streams)
	for i := range streams {
		flow := packet.FlowKey{
			Src: w.HostIP, Dst: w.PeerIP,
			SrcPort: uint16(4001 + i), DstPort: uint16(5900 + i),
			Proto: packet.ProtoTCP,
		}
		conn, err := a.Connect(proc, flow)
		if err != nil {
			panic("e9: connect: " + err.Error())
		}
		streams[i] = transport.New(a, conn, flow, mux, transport.Config{TotalBytes: total})
		streams[i].Start()
	}

	w.Eng.RunUntil(sim.Time(e9Horizon))

	var acked uint64
	var last sim.Time
	for _, s := range streams {
		if s.Done() {
			row.Completed++
		}
		if s.Aborted() {
			row.Aborted++
		}
		acked += s.Stats.AckedBytes
		row.Retransmits += s.Stats.Retransmits
		row.Timeouts += s.Stats.Timeouts
		if s.Terminal() && s.Stats.Finished > last {
			last = s.Stats.Finished
		}
	}
	if last == 0 {
		last = sim.Time(e9Horizon) // a non-terminal stream: clamp to horizon
	}
	row.TerminalAt = last.Sub(0)
	if last > 0 {
		row.GoodputGbps = float64(acked) * 8 / last.Sub(0).Seconds() / 1e9
	}
	row.TrapFallbacks = w.NIC.TrapFallbacks
	row.WireLost = inj.Tx.Dropped() + inj.Rx.Dropped()
	row.WireDup = inj.Tx.Duplicated + inj.Rx.Duplicated
	row.WireReordered = inj.Tx.Reordered + inj.Rx.Reordered
	row.RxFifoDrops = w.NIC.RxFifoDrop
}
