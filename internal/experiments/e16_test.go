package experiments

import (
	"reflect"
	"testing"
)

// TestE16Determinism pins the upgrade table at any execution layout: the
// upgrade schedule is virtual-time-scheduled, the canary draws no randomness,
// and the pause buffer replays in arrival order, so the whole table is
// byte-identical across worker-pool widths and engine shard counts.
func TestE16Determinism(t *testing.T) {
	t.Setenv("NORMAN_FAULT_SEED", "7")
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	seq, seqTable := RunE16(0.12, 1)

	SetWorkers(8)
	wide, wideTable := RunE16(0.12, 1)
	if !reflect.DeepEqual(seq, wide) {
		t.Fatalf("E16 rows differ between 1 and 8 workers:\n%+v\n%+v", seq, wide)
	}
	if seqTable.String() != wideTable.String() {
		t.Fatalf("E16 tables differ between 1 and 8 workers:\n%s\n%s",
			seqTable.String(), wideTable.String())
	}

	for _, shards := range []int{2, 4, 8} {
		sharded, shardedTable := RunE16(0.12, shards)
		if !reflect.DeepEqual(seq, sharded) {
			t.Fatalf("E16 rows differ between 1 and %d engine shards:\n%+v\n%+v",
				shards, seq, sharded)
		}
		if seqTable.String() != shardedTable.String() {
			t.Fatalf("E16 tables differ between 1 and %d engine shards:\n%s\n%s",
				shards, seqTable.String(), shardedTable.String())
		}
	}
}

// TestE16LiveUpgrade asserts the architectural content of the table:
//
//   - Raw bypass pays §4.4's price for new dataplane logic: a bitstream
//     respin whose outage outlasts the run. Every subsequent frame is an
//     outage drop and every connection is broken.
//   - KOPI's staged cutover is hitless: no outage drops, no broken
//     connections, no pause-buffer overflow, and a worst delivery gap that is
//     orders of magnitude below the respin blackout.
//   - The bad generation never survives: the canary breaches on the ingress
//     drop rate, rolls back automatically, and the warm-restored fast path
//     recovers at least 95% of its pre-upgrade hit rate.
//   - Nothing is ever lost silently, in any world: the conservation ledger
//     balances through the pause, the flip, the rollback and the blackout.
func TestE16LiveUpgrade(t *testing.T) {
	t.Setenv("NORMAN_FAULT_SEED", "7")
	points, _ := RunE16(0.25, 1)

	byArch := make(map[string]E16Point, len(points))
	for _, p := range points {
		byArch[p.Arch] = p
	}
	bypass, ok := byArch["bypass"]
	if !ok {
		t.Fatal("table must include the bypass row")
	}
	kopi, ok := byArch["kopi"]
	if !ok {
		t.Fatal("table must include the kopi row")
	}

	// The ledger is the proof of zero silent loss, everywhere.
	for _, p := range points {
		if p.Silent != 0 {
			t.Fatalf("%s: %d frames lost silently", p.Arch, p.Silent)
		}
	}

	// Bypass eats the full respin: blackholed to the end of the run.
	if bypass.OutageDrops == 0 {
		t.Fatal("the bypass respin must eat traffic as outage drops")
	}
	if bypass.BrokenConns != e14VictimConns {
		t.Fatalf("the respin must break all %d connections, broke %d",
			e14VictimConns, bypass.BrokenConns)
	}

	// KOPI's cutover is hitless: the pause buffer absorbed the flip.
	if kopi.OutageDrops != 0 {
		t.Fatalf("kopi took %d outage drops across a staged upgrade", kopi.OutageDrops)
	}
	if kopi.BrokenConns != 0 {
		t.Fatalf("kopi broke %d connections across the upgrade", kopi.BrokenConns)
	}
	if kopi.PauseBuffered == 0 {
		t.Fatal("the cutover pause must have buffered frames")
	}
	if kopi.PauseDrops != 0 {
		t.Fatalf("the bounded pause buffer overflowed %d frames", kopi.PauseDrops)
	}

	// The bad generation was caught and reverted, and the restored fast path
	// performs like the committed one.
	if kopi.CanaryBreaches == 0 {
		t.Fatal("the drop-all generation must breach the canary")
	}
	if kopi.Rollbacks != 1 {
		t.Fatalf("exactly one rollback expected, got %d", kopi.Rollbacks)
	}
	if kopi.WarmEntries == 0 {
		t.Fatal("the rollback must warm-restore flow-cache entries")
	}
	if kopi.PreHitPct < 90 {
		t.Fatalf("pre-upgrade fast path must be warm: %.1f%%", kopi.PreHitPct)
	}
	if kopi.PostHitPct < 0.95*kopi.PreHitPct {
		t.Fatalf("recovered hit rate %.1f%% must reach 95%% of pre-upgrade %.1f%%",
			kopi.PostHitPct, kopi.PreHitPct)
	}

	// The latency blip is bounded by the pause, not the outage: kopi's worst
	// delivery gap must be far below the blackout bypass shows.
	if kopi.MaxGapUs*10 > bypass.MaxGapUs {
		t.Fatalf("kopi max gap %.1fµs must be an order of magnitude under the bypass blackout %.1fµs",
			kopi.MaxGapUs, bypass.MaxGapUs)
	}
}
