package experiments

import (
	"bytes"
	"strings"
	"testing"

	"norman/internal/sniff"
)

// TestE9TelemetryArtifacts pins the unified-telemetry acceptance criteria on
// a fixed-seed E9 run: the shared registry renders a Prometheus dump spanning
// at least five layers, every exported pcap round-trips through the package's
// own reader, and at least one sweep point yields a single-packet journey
// with four or more interposition points including a fault event.
func TestE9TelemetryArtifacts(t *testing.T) {
	t.Setenv("NORMAN_FAULT_SEED", "42")
	tel := NewTelemetry()
	rows, _ := RunE9Telemetry(0.05, tel)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}

	// (a) Prometheus dump with >= 5 layers.
	layers := tel.Registry.Layers()
	if len(layers) < 5 {
		t.Fatalf("registry spans %d layers, want >= 5: %v", len(layers), layers)
	}
	prom := tel.Registry.RenderPrometheus()
	for _, want := range []string{
		"# TYPE norman_nic_tx_frames counter",
		"# TYPE norman_faults_wire_lost counter",
		"# TYPE norman_transport_retransmits counter",
		"# TYPE norman_sim_events_fired counter",
		"# TYPE norman_host_cpu_busy_seconds gauge",
		"# TYPE norman_trace_ids_stamped counter",
		`arch="kopi"`,
		`fault="100"`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus dump missing %q", want)
		}
	}

	// (b) every exported pcap parses with the test-local reader and holds
	// real frames. Architectures with an interposition point must export.
	names := tel.PcapNames()
	if len(names) == 0 {
		t.Fatal("no pcaps exported")
	}
	sawKopi := false
	for _, n := range names {
		if strings.HasPrefix(n, "bypass-") {
			t.Errorf("bypass has no tap interposition point, yet exported pcap %q", n)
		}
		if strings.HasPrefix(n, "kopi-") {
			sawKopi = true
		}
		recs, err := sniff.ReadPcap(bytes.NewReader(tel.Pcap(n)))
		if err != nil {
			t.Fatalf("pcap %s does not parse: %v", n, err)
		}
		if len(recs) == 0 {
			t.Fatalf("pcap %s is empty", n)
		}
		for _, r := range recs {
			if r.Pkt.TCP == nil {
				t.Fatalf("pcap %s holds a non-TCP frame despite the tcp filter", n)
			}
		}
	}
	if !sawKopi {
		t.Fatalf("kopi must export a pcap: %v", names)
	}

	// (c) at least one sweep point's exemplar trace shows a >=4-point
	// journey crossing the fault layer.
	found := false
	for _, n := range tel.TraceNames() {
		tr := tel.Trace(n)
		lines := strings.Count(tr, "\n") // header line + one line per event
		if lines-1 >= 4 && strings.Contains(tr, "faults") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no trace with >=4 interposition points and a fault event; traces: %v", tel.TraceNames())
	}
}

// TestE9TelemetryDeterminism extends the worker-width contract to the
// observability artifacts: the rendered registry, every pcap blob and every
// exemplar trace must be byte-identical at any pool width.
func TestE9TelemetryDeterminism(t *testing.T) {
	t.Setenv("NORMAN_FAULT_SEED", "7")

	prev := SetWorkers(1)
	defer SetWorkers(prev)
	seq := NewTelemetry()
	RunE9Telemetry(0.05, seq)

	SetWorkers(8)
	wide := NewTelemetry()
	RunE9Telemetry(0.05, wide)

	if a, b := seq.Registry.RenderPrometheus(), wide.Registry.RenderPrometheus(); a != b {
		t.Fatalf("prometheus render differs between 1 and 8 workers:\n%s\n---\n%s", a, b)
	}
	if a, b := seq.Registry.RenderJSON(), wide.Registry.RenderJSON(); a != b {
		t.Fatal("json render differs between 1 and 8 workers")
	}
	an, bn := seq.PcapNames(), wide.PcapNames()
	if strings.Join(an, ",") != strings.Join(bn, ",") {
		t.Fatalf("pcap sets differ: %v vs %v", an, bn)
	}
	for _, n := range an {
		if !bytes.Equal(seq.Pcap(n), wide.Pcap(n)) {
			t.Fatalf("pcap %s differs between worker widths", n)
		}
	}
	at, bt := seq.TraceNames(), wide.TraceNames()
	if strings.Join(at, ",") != strings.Join(bt, ",") {
		t.Fatalf("trace sets differ: %v vs %v", at, bt)
	}
	for _, n := range at {
		if seq.Trace(n) != wide.Trace(n) {
			t.Fatalf("trace %s differs between worker widths:\n%s\n---\n%s", n, seq.Trace(n), wide.Trace(n))
		}
	}
}
