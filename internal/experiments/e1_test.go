package experiments

import "testing"

// TestE1Shape verifies the paper's core hypothesis holds in the model:
// bypass ≈ kopi ≫ kernelstack, sidecar in between, and interposition on the
// NIC costs KOPI (almost) no throughput.
func TestE1Shape(t *testing.T) {
	rows, tbl := RunE1(0.25)
	t.Logf("\n%s", tbl)

	byName := map[string]E1Row{}
	for _, r := range rows {
		byName[r.Arch] = r
	}
	ks, bp, sc, kopi := byName["kernelstack"], byName["bypass"], byName["sidecar"], byName["kopi"]

	if bp.ThrBareGbps < 90 {
		t.Errorf("bypass should saturate ~100G, got %.1f", bp.ThrBareGbps)
	}
	if kopi.ThrBareGbps < 0.95*bp.ThrBareGbps {
		t.Errorf("kopi (%.1f) should match bypass (%.1f)", kopi.ThrBareGbps, bp.ThrBareGbps)
	}
	if kopi.ThrPolicyGbps < 0.9*kopi.ThrBareGbps {
		t.Errorf("kopi with policies (%.1f) should not lose throughput vs bare (%.1f)",
			kopi.ThrPolicyGbps, kopi.ThrBareGbps)
	}
	if ks.ThrBareGbps > 0.5*bp.ThrBareGbps {
		t.Errorf("kernelstack (%.1f) should be well below bypass (%.1f)", ks.ThrBareGbps, bp.ThrBareGbps)
	}
	if !(sc.ThrBareGbps > ks.ThrBareGbps && sc.ThrBareGbps < bp.ThrBareGbps) {
		t.Errorf("sidecar (%.1f) should land between kernelstack (%.1f) and bypass (%.1f)",
			sc.ThrBareGbps, ks.ThrBareGbps, bp.ThrBareGbps)
	}
	if ks.RTT50 <= kopi.RTT50 {
		t.Errorf("kernelstack RTT (%v) should exceed kopi RTT (%v)", ks.RTT50, kopi.RTT50)
	}
}

// TestE1RxShape verifies the receive half: the software stacks bottleneck
// far below the wire while the ring dataplanes deliver ~line rate.
func TestE1RxShape(t *testing.T) {
	rows, _ := RunE1(0.25)
	byName := map[string]E1Row{}
	for _, r := range rows {
		byName[r.Arch] = r
	}
	if byName["bypass"].ThrRxGbps < 90 || byName["kopi"].ThrRxGbps < 90 {
		t.Errorf("ring dataplanes should receive ~line rate: bypass=%.1f kopi=%.1f",
			byName["bypass"].ThrRxGbps, byName["kopi"].ThrRxGbps)
	}
	if byName["kernelstack"].ThrRxGbps > 0.4*byName["kopi"].ThrRxGbps {
		t.Errorf("kernelstack RX (%.1f) should be far below kopi (%.1f)",
			byName["kernelstack"].ThrRxGbps, byName["kopi"].ThrRxGbps)
	}
	if s := byName["sidecar"].ThrRxGbps; s <= byName["kernelstack"].ThrRxGbps || s >= byName["kopi"].ThrRxGbps {
		t.Errorf("sidecar RX (%.1f) should land between kernelstack (%.1f) and kopi (%.1f)",
			s, byName["kernelstack"].ThrRxGbps, byName["kopi"].ThrRxGbps)
	}
}

// TestE1MultiQueueKernel: the sensitivity row — four softirq queues and a
// polling receiver help the kernel stack, but the per-packet stack cost
// keeps it far from the ring dataplanes.
func TestE1MultiQueueKernel(t *testing.T) {
	rows, _ := RunE1(0.25)
	byName := map[string]E1Row{}
	for _, r := range rows {
		byName[r.Arch] = r
	}
	mq, ok := byName["kernelstack-4q"]
	if !ok {
		t.Fatal("missing kernelstack-4q row")
	}
	single := byName["kernelstack"]
	if mq.ThrRxGbps <= 1.5*single.ThrRxGbps {
		t.Errorf("multi-queue should help RX: %.1f vs %.1f", mq.ThrRxGbps, single.ThrRxGbps)
	}
	if mq.ThrRxGbps > 0.4*byName["kopi"].ThrRxGbps {
		t.Errorf("multi-queue must not close the gap to kopi: %.1f vs %.1f",
			mq.ThrRxGbps, byName["kopi"].ThrRxGbps)
	}
}
