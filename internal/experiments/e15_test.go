package experiments

import (
	"reflect"
	"testing"
)

// TestE15Determinism pins the hardware-fault table at any execution layout:
// the fault schedule is virtual-time-scheduled from seeded labeled RNG
// streams and the health monitor draws no randomness at all, so the whole
// table is byte-identical across worker-pool widths and engine shard counts.
func TestE15Determinism(t *testing.T) {
	t.Setenv("NORMAN_FAULT_SEED", "7")
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	seq, seqTable := RunE15(0.12, 1)

	SetWorkers(8)
	wide, wideTable := RunE15(0.12, 1)
	if !reflect.DeepEqual(seq, wide) {
		t.Fatalf("E15 rows differ between 1 and 8 workers:\n%+v\n%+v", seq, wide)
	}
	if seqTable.String() != wideTable.String() {
		t.Fatalf("E15 tables differ between 1 and 8 workers:\n%s\n%s",
			seqTable.String(), wideTable.String())
	}

	for _, shards := range []int{2, 4, 8} {
		sharded, shardedTable := RunE15(0.12, shards)
		if !reflect.DeepEqual(seq, sharded) {
			t.Fatalf("E15 rows differ between 1 and %d engine shards:\n%+v\n%+v",
				shards, seq, sharded)
		}
		if seqTable.String() != shardedTable.String() {
			t.Fatalf("E15 tables differ between 1 and %d engine shards:\n%s\n%s",
				shards, seqTable.String(), shardedTable.String())
		}
	}
}

// TestE15HealthFailover asserts the architectural content of the table:
//
//   - Raw bypass has a fast path but no supervisor: the SRAM burst corrupts
//     cached verdicts and the datapath serves them — CorruptServed grows and
//     corrupted Drop verdicts blackhole flows for the rest of the run.
//   - KOPI detects every corrupted entry before it is served (checksum
//     verification), quarantines the cache onto the kernel slow path, and
//     after probation restores the fast path: the recovery-window hit rate
//     returns to at least 95% of the pre-fault hit rate.
//   - Nothing is ever lost silently, in any world: the conservation ledger
//     balances even while the link is down, the cache is corrupted and the
//     pipeline is storming.
func TestE15HealthFailover(t *testing.T) {
	t.Setenv("NORMAN_FAULT_SEED", "7")
	points, _ := RunE15(0.25, 1)

	byArch := make(map[string]E15Point, len(points))
	for _, p := range points {
		byArch[p.Arch] = p
	}
	kernel, ok := byArch["kernelstack"]
	if !ok {
		t.Fatal("table must include the kernelstack row")
	}
	bypass, ok := byArch["bypass"]
	if !ok {
		t.Fatal("table must include the bypass row")
	}
	kopi, ok := byArch["kopi"]
	if !ok {
		t.Fatal("table must include the kopi row")
	}

	// The ledger is the proof of zero silent loss, everywhere.
	for _, p := range points {
		if p.Silent != 0 {
			t.Fatalf("%s: %d frames lost silently", p.Arch, p.Silent)
		}
		if p.LinkDrops == 0 {
			t.Fatalf("%s: the link flap must drop frames at the MAC", p.Arch)
		}
	}

	// Bypass serves corruption; KOPI serves none.
	if bypass.CorruptServed == 0 {
		t.Fatal("raw bypass must serve at least one corrupted verdict")
	}
	if bypass.ChecksumFails != 0 {
		t.Fatalf("raw bypass runs unverified, yet detected %d checksum failures",
			bypass.ChecksumFails)
	}
	if kopi.CorruptServed != 0 {
		t.Fatalf("kopi served %d corrupted verdicts past verification", kopi.CorruptServed)
	}
	if kopi.ChecksumFails == 0 {
		t.Fatal("kopi must detect the SRAM burst as checksum failures")
	}

	// The failover story: quarantine happened, failback happened, and the
	// restored fast path performs like the pre-fault one.
	if kopi.Quarantines == 0 {
		t.Fatal("kopi must quarantine under the fault schedule")
	}
	if kopi.Failbacks == 0 {
		t.Fatal("kopi must fail back after probation")
	}
	if kopi.PreHitPct < 90 {
		t.Fatalf("pre-fault fast path must be warm: %.1f%%", kopi.PreHitPct)
	}
	if kopi.PostHitPct < 0.95*kopi.PreHitPct {
		t.Fatalf("recovered hit rate %.1f%% must reach 95%% of pre-fault %.1f%%",
			kopi.PostHitPct, kopi.PreHitPct)
	}

	// Blackholing is visible in delivery: bypass delivers strictly less than
	// kopi because its corrupted Drop verdicts persist for the rest of the
	// run while kopi's detection window is a few samples wide.
	if bypass.Delivered >= kopi.Delivered {
		t.Fatalf("bypass (%d delivered) must blackhole relative to kopi (%d)",
			bypass.Delivered, kopi.Delivered)
	}

	// The trap storm only bites the world whose every packet runs the
	// pipeline: the kernel stack absorbs all 8 traps as fallbacks, while the
	// cache-warm worlds never run the stormed chain at all — the fast path
	// shields them from pipeline faults just as it exposes them to SRAM ones.
	if kernel.TrapFallbacks != e15StormTraps {
		t.Fatalf("kernelstack must absorb the full storm: %d of %d traps",
			kernel.TrapFallbacks, e15StormTraps)
	}
}
