package qos

import (
	"norman/internal/packet"
	"norman/internal/sim"
)

// DRR implements deficit round robin: each active class is visited in turn
// and may send up to its accumulated deficit (incremented by its quantum per
// round). DRR approximates fair queueing with O(1) dequeue, which is why
// hardware schedulers favor it; the E6 bench compares its fairness against
// WFQ under identical load.
type DRR struct {
	classes        map[uint32]*drrClass
	active         []uint32 // round-robin order of classes with queued packets
	limit          int
	nitems         int
	defaultQuantum int
	stats          Stats
	perClass       map[uint32]*Stats
}

type drrClass struct {
	id      uint32
	quantum int
	deficit int
	q       []*packet.Packet
	queued  bool
}

// NewDRR creates a DRR qdisc bounded to limit total packets; classes default
// to the given quantum (bytes per round).
func NewDRR(limit, quantum int) *DRR {
	if limit <= 0 {
		limit = 4096
	}
	if quantum <= 0 {
		quantum = 1514
	}
	return &DRR{
		classes:        make(map[uint32]*drrClass),
		perClass:       make(map[uint32]*Stats),
		limit:          limit,
		defaultQuantum: quantum,
	}
}

// SetQuantum configures a class's per-round byte quantum (its weight).
func (q *DRR) SetQuantum(class uint32, quantum int) {
	if quantum < 1 {
		quantum = 1
	}
	q.class(class).quantum = quantum
}

func (q *DRR) class(id uint32) *drrClass {
	c, ok := q.classes[id]
	if !ok {
		c = &drrClass{id: id, quantum: q.defaultQuantum}
		q.classes[id] = c
	}
	return c
}

func (q *DRR) classStats(id uint32) *Stats {
	s, ok := q.perClass[id]
	if !ok {
		s = &Stats{}
		q.perClass[id] = s
	}
	return s
}

// Name implements Qdisc.
func (q *DRR) Name() string { return "drr" }

// Enqueue implements Qdisc. As with WFQ, each class is bounded to its share
// of the buffer so a slow class cannot monopolize it under overload.
func (q *DRR) Enqueue(p *packet.Packet, _ sim.Time) bool {
	c := q.class(p.Meta.Class)
	perClass := q.limit / len(q.classes)
	if perClass < 1 {
		perClass = 1
	}
	if q.nitems >= q.limit || len(c.q) >= perClass {
		q.stats.DropPackets++
		q.classStats(p.Meta.Class).DropPackets++
		return false
	}
	c.q = append(c.q, p)
	if !c.queued {
		c.queued = true
		q.active = append(q.active, c.id)
	}
	q.nitems++
	q.stats.EnqPackets++
	q.stats.EnqBytes += uint64(p.FrameLen())
	cs := q.classStats(c.id)
	cs.EnqPackets++
	cs.EnqBytes += uint64(p.FrameLen())
	return true
}

// Dequeue implements Qdisc.
func (q *DRR) Dequeue(_ sim.Time) (*packet.Packet, bool) {
	if q.nitems == 0 {
		return nil, false
	}
	for {
		c := q.classes[q.active[0]]
		if len(c.q) == 0 {
			// Class drained since being queued; drop from the round.
			c.queued = false
			c.deficit = 0
			q.active = q.active[1:]
			continue
		}
		head := c.q[0]
		need := head.FrameLen()
		if c.deficit < need {
			// Give the class its quantum and rotate to the back.
			c.deficit += c.quantum
			q.active = append(q.active[1:], c.id)
			continue
		}
		c.deficit -= need
		c.q[0] = nil
		c.q = c.q[1:]
		q.nitems--
		if len(c.q) == 0 {
			c.queued = false
			c.deficit = 0
			q.active = q.active[1:]
		}
		q.stats.DeqPackets++
		q.stats.DeqBytes += uint64(need)
		cs := q.classStats(c.id)
		cs.DeqPackets++
		cs.DeqBytes += uint64(need)
		return head, true
	}
}

// ReadyAt implements Qdisc: DRR is work-conserving.
func (q *DRR) ReadyAt(now sim.Time) (sim.Time, bool) {
	if q.nitems == 0 {
		return 0, false
	}
	return now, true
}

// Len implements Qdisc.
func (q *DRR) Len() int { return q.nitems }

// Stats returns aggregate counters.
func (q *DRR) Stats() Stats { return q.stats }

// ClassStats returns counters for one class.
func (q *DRR) ClassStats(class uint32) Stats {
	if s, ok := q.perClass[class]; ok {
		return *s
	}
	return Stats{}
}
