package qos

import (
	"norman/internal/packet"
	"norman/internal/sim"
)

// TBF is a token-bucket filter shaping an inner qdisc to Rate bytes/second
// with Burst bytes of depth (the `tc qdisc add ... tbf` of the paper's game
// traffic-shaping scenario).
type TBF struct {
	inner  Qdisc
	rate   float64 // bytes per second
	burst  float64 // bucket depth in bytes
	tokens float64
	last   sim.Time
}

// NewTBF wraps inner with a token bucket of the given rate (bytes/second)
// and burst (bytes).
func NewTBF(inner Qdisc, rate, burst float64) *TBF {
	if inner == nil {
		inner = NewPFIFO(1000)
	}
	if burst < 1514 {
		burst = 1514 // at least one full frame or nothing ever dequeues
	}
	return &TBF{inner: inner, rate: rate, burst: burst, tokens: burst}
}

// Name implements Qdisc.
func (q *TBF) Name() string { return "tbf" }

// Enqueue implements Qdisc.
func (q *TBF) Enqueue(p *packet.Packet, now sim.Time) bool {
	return q.inner.Enqueue(p, now)
}

func (q *TBF) refill(now sim.Time) {
	if now > q.last {
		q.tokens += now.Sub(q.last).Seconds() * q.rate
		if q.tokens > q.burst {
			q.tokens = q.burst
		}
		q.last = now
	}
}

// Dequeue returns the head packet if the bucket currently holds enough
// tokens, consuming them.
func (q *TBF) Dequeue(now sim.Time) (*packet.Packet, bool) {
	q.refill(now)
	head, ok := peek(q.inner, now)
	if !ok {
		return nil, false
	}
	need := float64(head.FrameLen())
	if q.tokens < need {
		return nil, false
	}
	p, ok := q.inner.Dequeue(now)
	if !ok {
		return nil, false
	}
	q.tokens -= need
	return p, true
}

// ReadyAt returns when the head packet's tokens will have accumulated.
func (q *TBF) ReadyAt(now sim.Time) (sim.Time, bool) {
	innerAt, ok := q.inner.ReadyAt(now)
	if !ok {
		return 0, false
	}
	q.refill(now)
	head, ok := peek(q.inner, now)
	if !ok {
		return 0, false
	}
	need := float64(head.FrameLen())
	if q.tokens >= need {
		if innerAt < now {
			innerAt = now
		}
		return innerAt, true
	}
	wait := sim.Duration((need - q.tokens) / q.rate * float64(sim.Second))
	at := now.Add(wait)
	if innerAt > at {
		at = innerAt
	}
	return at, true
}

// Len implements Qdisc.
func (q *TBF) Len() int { return q.inner.Len() }

// peek returns the packet the inner qdisc would dequeue next without
// consuming it. Inner qdiscs used under TBF in this codebase are PFIFO/Prio;
// both expose deterministic heads, so peeking via type switch is exact.
func peek(q Qdisc, now sim.Time) (*packet.Packet, bool) {
	switch t := q.(type) {
	case *PFIFO:
		if len(t.q) == 0 {
			return nil, false
		}
		return t.q[0], true
	case *Prio:
		for _, b := range t.bands {
			if p, ok := peek(b, now); ok {
				return p, ok
			}
		}
		return nil, false
	default:
		// Fallback: a conservative full-frame estimate.
		if q.Len() == 0 {
			return nil, false
		}
		return &packet.Packet{PayloadLen: 1460}, true
	}
}
