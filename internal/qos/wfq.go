package qos

import (
	"container/heap"

	"norman/internal/packet"
	"norman/internal/sim"
)

// WFQ implements weighted fair queueing (Demers, Keshav, Shenker '89 — the
// paper's reference [10] for work-conserving shaping). Each class holds a
// FIFO of packets tagged with virtual finish times; dequeue serves the
// smallest finish tag, so long-run service is proportional to class weight
// while remaining work-conserving: idle classes donate bandwidth.
type WFQ struct {
	classes       map[uint32]*wfqClass
	defaultWeight float64
	limit         int
	vtime         float64 // global virtual time
	heapq         wfqHeap
	nitems        int
	seq           uint64
	stats         Stats
	perClass      map[uint32]*Stats
}

type wfqClass struct {
	id     uint32
	weight float64
	finish float64 // finish tag of the last enqueued packet
	queued int     // current backlog, for per-class buffer fairness
}

type wfqItem struct {
	p      *packet.Packet
	finish float64
	seq    uint64 // FIFO tie-break
	class  uint32
}

type wfqHeap []wfqItem

func (h wfqHeap) Len() int { return len(h) }
func (h wfqHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].seq < h[j].seq
}
func (h wfqHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *wfqHeap) Push(x interface{}) { *h = append(*h, x.(wfqItem)) }
func (h *wfqHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1].p = nil
	*h = old[:n-1]
	return it
}

// NewWFQ creates a WFQ qdisc bounded to limit total packets. Classes not
// configured with SetWeight get weight 1.
func NewWFQ(limit int) *WFQ {
	if limit <= 0 {
		limit = 4096
	}
	return &WFQ{
		classes:       make(map[uint32]*wfqClass),
		perClass:      make(map[uint32]*Stats),
		defaultWeight: 1,
		limit:         limit,
	}
}

// SetWeight configures a class's weight. Weights are relative; non-positive
// weights are clamped to a tiny positive value so the class still drains.
func (q *WFQ) SetWeight(class uint32, weight float64) {
	if weight <= 0 {
		weight = 1e-6
	}
	c := q.class(class)
	c.weight = weight
}

// Weights returns the configured class weights. The crash reconciler's
// qos_weights invariant compares these against journaled intent.
func (q *WFQ) Weights() map[uint32]float64 {
	out := make(map[uint32]float64, len(q.classes))
	for id, c := range q.classes {
		out[id] = c.weight
	}
	return out
}

func (q *WFQ) class(id uint32) *wfqClass {
	c, ok := q.classes[id]
	if !ok {
		c = &wfqClass{id: id, weight: q.defaultWeight}
		q.classes[id] = c
	}
	return c
}

func (q *WFQ) classStats(id uint32) *Stats {
	s, ok := q.perClass[id]
	if !ok {
		s = &Stats{}
		q.perClass[id] = s
	}
	return s
}

// Name implements Qdisc.
func (q *WFQ) Name() string { return "wfq" }

// Enqueue tags the packet with a virtual finish time and inserts it. The
// buffer is shared, but no class may occupy more than its per-class share —
// without that bound a slow class monopolizes the buffer under overload and
// tail drops erase the weight differentiation (real qdiscs drop from the
// longest queue for the same reason).
func (q *WFQ) Enqueue(p *packet.Packet, _ sim.Time) bool {
	c := q.class(p.Meta.Class)
	perClass := q.limit / len(q.classes)
	if perClass < 1 {
		perClass = 1
	}
	if q.nitems >= q.limit || c.queued >= perClass {
		q.stats.DropPackets++
		q.classStats(p.Meta.Class).DropPackets++
		return false
	}
	start := q.vtime
	if c.finish > start {
		start = c.finish
	}
	c.finish = start + float64(p.FrameLen())/c.weight
	q.seq++
	heap.Push(&q.heapq, wfqItem{p: p, finish: c.finish, seq: q.seq, class: c.id})
	q.nitems++
	c.queued++
	q.stats.EnqPackets++
	q.stats.EnqBytes += uint64(p.FrameLen())
	cs := q.classStats(c.id)
	cs.EnqPackets++
	cs.EnqBytes += uint64(p.FrameLen())
	return true
}

// Dequeue serves the packet with the smallest finish tag and advances
// virtual time to it.
func (q *WFQ) Dequeue(_ sim.Time) (*packet.Packet, bool) {
	if q.nitems == 0 {
		return nil, false
	}
	it := heap.Pop(&q.heapq).(wfqItem)
	q.nitems--
	q.class(it.class).queued--
	if it.finish > q.vtime {
		q.vtime = it.finish
	}
	q.stats.DeqPackets++
	q.stats.DeqBytes += uint64(it.p.FrameLen())
	cs := q.classStats(it.class)
	cs.DeqPackets++
	cs.DeqBytes += uint64(it.p.FrameLen())
	return it.p, true
}

// ReadyAt implements Qdisc: WFQ is work-conserving.
func (q *WFQ) ReadyAt(now sim.Time) (sim.Time, bool) {
	if q.nitems == 0 {
		return 0, false
	}
	return now, true
}

// Len implements Qdisc.
func (q *WFQ) Len() int { return q.nitems }

// Stats returns aggregate counters.
func (q *WFQ) Stats() Stats { return q.stats }

// ClassStats returns counters for one class.
func (q *WFQ) ClassStats(class uint32) Stats {
	if s, ok := q.perClass[class]; ok {
		return *s
	}
	return Stats{}
}
