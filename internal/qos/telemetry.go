package qos

import "norman/internal/telemetry"

// StatsSource is any qdisc that can report aggregate Stats (PFIFO, DRR, WFQ,
// TokenBucket — everything here except the composite Prio, whose bands each
// implement it individually).
type StatsSource interface {
	Qdisc
	Stats() Stats
}

// RegisterMetrics exposes a qdisc's aggregate counters and instantaneous
// queue depth on a registry. Stats are read lazily at render time.
func RegisterMetrics(r *telemetry.Registry, labels telemetry.Labels, q StatsSource) {
	counter := func(name, help, unit string, pick func(Stats) uint64) {
		r.Counter(telemetry.Desc{Layer: "qos", Name: name, Help: help, Unit: unit},
			labels, func() uint64 { return pick(q.Stats()) })
	}
	counter("enq_packets", "packets accepted by the scheduler", "packets", func(s Stats) uint64 { return s.EnqPackets })
	counter("enq_bytes", "bytes accepted by the scheduler", "bytes", func(s Stats) uint64 { return s.EnqBytes })
	counter("deq_packets", "packets released toward the wire", "packets", func(s Stats) uint64 { return s.DeqPackets })
	counter("deq_bytes", "bytes released toward the wire", "bytes", func(s Stats) uint64 { return s.DeqBytes })
	counter("drop_packets", "packets dropped at enqueue (queue full)", "packets", func(s Stats) uint64 { return s.DropPackets })
	r.Gauge(telemetry.Desc{Layer: "qos", Name: "queue_depth", Help: "packets currently queued in the scheduler", Unit: "packets"},
		labels, func() float64 { return float64(q.Len()) })
}
