// Package qos is the reproduction's net/sched equivalent: queueing
// disciplines installed by the control plane at whichever interposition
// point an architecture provides. The paper's QoS scenario (§2) needs a
// work-conserving, weight-proportional scheduler (WFQ) with classification
// by user/process — possible only where the interposition layer has both a
// global view of competing traffic and a process view for classification.
//
// Classful qdiscs select a class from packet.Meta.Class, which the filter
// layer / overlay / kernel stamps during classification.
package qos

import (
	"fmt"

	"norman/internal/packet"
	"norman/internal/sim"
)

// Qdisc is a queueing discipline. Enqueue may drop (returns false); Dequeue
// returns the next packet eligible at `now`. ReadyAt lets rate-limiting
// qdiscs defer service into the future: it returns the earliest time a
// packet could be dequeued and false when the qdisc holds nothing.
type Qdisc interface {
	Name() string
	Enqueue(p *packet.Packet, now sim.Time) bool
	Dequeue(now sim.Time) (*packet.Packet, bool)
	ReadyAt(now sim.Time) (sim.Time, bool)
	Len() int
}

// Stats common to the implementations here.
type Stats struct {
	EnqPackets  uint64
	EnqBytes    uint64
	DeqPackets  uint64
	DeqBytes    uint64
	DropPackets uint64
}

// fifo is the shared bounded-FIFO core.
type fifo struct {
	q     []*packet.Packet
	limit int
	stats Stats
}

func (f *fifo) push(p *packet.Packet) bool {
	if len(f.q) >= f.limit {
		f.stats.DropPackets++
		return false
	}
	f.q = append(f.q, p)
	f.stats.EnqPackets++
	f.stats.EnqBytes += uint64(p.FrameLen())
	return true
}

func (f *fifo) pop() (*packet.Packet, bool) {
	if len(f.q) == 0 {
		return nil, false
	}
	p := f.q[0]
	f.q[0] = nil
	f.q = f.q[1:]
	f.stats.DeqPackets++
	f.stats.DeqBytes += uint64(p.FrameLen())
	return p, true
}

// PFIFO is a bounded first-in-first-out qdisc (the kernel default).
type PFIFO struct {
	fifo
}

// NewPFIFO creates a FIFO bounded to limit packets.
func NewPFIFO(limit int) *PFIFO {
	if limit <= 0 {
		limit = 1000
	}
	return &PFIFO{fifo{limit: limit}}
}

// Name implements Qdisc.
func (q *PFIFO) Name() string { return "pfifo" }

// Enqueue implements Qdisc.
func (q *PFIFO) Enqueue(p *packet.Packet, _ sim.Time) bool { return q.push(p) }

// Dequeue implements Qdisc.
func (q *PFIFO) Dequeue(_ sim.Time) (*packet.Packet, bool) { return q.pop() }

// ReadyAt implements Qdisc: a FIFO is ready immediately when non-empty.
func (q *PFIFO) ReadyAt(now sim.Time) (sim.Time, bool) {
	if len(q.q) == 0 {
		return 0, false
	}
	return now, true
}

// Len implements Qdisc.
func (q *PFIFO) Len() int { return len(q.q) }

// Stats returns cumulative counters.
func (q *PFIFO) Stats() Stats { return q.stats }

// Prio is a strict-priority qdisc with N bands; band 0 is served first.
// Class c maps to band min(c, bands-1). Bands are themselves qdiscs, so
// compositions like "band 1 is token-bucket shaped" (the paper's game
// deprioritization) are expressible.
type Prio struct {
	bands []Qdisc
}

// NewPrio creates a strict-priority qdisc with the given band count and
// per-band packet limit, with FIFO bands.
func NewPrio(bands, limit int) *Prio {
	if bands <= 0 {
		bands = 3
	}
	q := &Prio{}
	for i := 0; i < bands; i++ {
		q.bands = append(q.bands, NewPFIFO(limit))
	}
	return q
}

// NewPrioWith creates a strict-priority qdisc over the given band qdiscs.
func NewPrioWith(bands ...Qdisc) *Prio {
	if len(bands) == 0 {
		panic("qos: NewPrioWith wants at least one band")
	}
	return &Prio{bands: bands}
}

// Name implements Qdisc.
func (q *Prio) Name() string { return fmt.Sprintf("prio%d", len(q.bands)) }

// Enqueue places the packet in the band selected by Meta.Class.
func (q *Prio) Enqueue(p *packet.Packet, now sim.Time) bool {
	b := int(p.Meta.Class)
	if b >= len(q.bands) {
		b = len(q.bands) - 1
	}
	return q.bands[b].Enqueue(p, now)
}

// Dequeue serves the lowest-numbered band that is ready now.
func (q *Prio) Dequeue(now sim.Time) (*packet.Packet, bool) {
	for _, b := range q.bands {
		if p, ok := b.Dequeue(now); ok {
			return p, true
		}
	}
	return nil, false
}

// ReadyAt returns the earliest instant any band could serve: a shaped band
// defers, a work-conserving band is ready immediately.
func (q *Prio) ReadyAt(now sim.Time) (sim.Time, bool) {
	var best sim.Time
	found := false
	for _, b := range q.bands {
		at, ok := b.ReadyAt(now)
		if !ok {
			continue
		}
		if !found || at < best {
			best = at
			found = true
		}
	}
	return best, found
}

// Len implements Qdisc.
func (q *Prio) Len() int {
	n := 0
	for _, b := range q.bands {
		n += b.Len()
	}
	return n
}

// Band returns the i'th band qdisc.
func (q *Prio) Band(i int) Qdisc { return q.bands[i] }
