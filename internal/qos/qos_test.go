package qos

import (
	"testing"
	"testing/quick"

	"norman/internal/packet"
	"norman/internal/sim"
)

func pkt(class uint32, payload int) *packet.Packet {
	p := packet.NewUDP(packet.MAC{}, packet.MAC{}, 1, 2, 3, 4, payload)
	p.Meta.Class = class
	return p
}

func TestPFIFOOrderAndLimit(t *testing.T) {
	q := NewPFIFO(2)
	if !q.Enqueue(pkt(0, 1), 0) || !q.Enqueue(pkt(0, 2), 0) {
		t.Fatal("enqueue under limit must succeed")
	}
	if q.Enqueue(pkt(0, 3), 0) {
		t.Fatal("over limit must drop")
	}
	a, _ := q.Dequeue(0)
	b, _ := q.Dequeue(0)
	if a.PayloadLen != 1 || b.PayloadLen != 2 {
		t.Fatal("FIFO order violated")
	}
	if _, ok := q.Dequeue(0); ok {
		t.Fatal("empty dequeue")
	}
	if s := q.Stats(); s.DropPackets != 1 || s.EnqPackets != 2 || s.DeqPackets != 2 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestPrioStrictness(t *testing.T) {
	q := NewPrio(3, 10)
	q.Enqueue(pkt(2, 1), 0)
	q.Enqueue(pkt(0, 2), 0)
	q.Enqueue(pkt(1, 3), 0)
	order := []int{}
	for {
		p, ok := q.Dequeue(0)
		if !ok {
			break
		}
		order = append(order, int(p.Meta.Class))
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("priority order: %v", order)
	}
}

func TestPrioClassClamping(t *testing.T) {
	q := NewPrio(2, 10)
	q.Enqueue(pkt(9, 1), 0) // clamps to last band
	if p, ok := q.Dequeue(0); !ok || p.Meta.Class != 9 {
		t.Fatal("clamped class should still be served")
	}
}

func TestTBFRateLimiting(t *testing.T) {
	// 1 MB/s, burst exactly one 60B frame.
	q := NewTBF(NewPFIFO(100), 1e6, 1514)
	for i := 0; i < 50; i++ {
		q.Enqueue(pkt(0, 18), 0) // 60B frames
	}
	// At t=0 the bucket holds 1514 bytes: 25 frames of 60B fit.
	sent := 0
	for {
		if _, ok := q.Dequeue(0); !ok {
			break
		}
		sent++
	}
	if sent != 25 {
		t.Fatalf("burst allowed %d frames, want 25", sent)
	}
	// ReadyAt predicts when the next frame's tokens accrue: after 25
	// frames, 14 tokens remain, so 46 more bytes at 1MB/s = 46µs.
	at, ok := q.ReadyAt(0)
	if !ok {
		t.Fatal("queue is non-empty")
	}
	if d := sim.Duration(at); d < 44*sim.Microsecond || d > 48*sim.Microsecond {
		t.Fatalf("ReadyAt = %v, want ≈46µs", d)
	}
	if _, ok := q.Dequeue(at); !ok {
		t.Fatal("tokens should have accrued by the predicted time")
	}
}

func TestTBFLongRunRate(t *testing.T) {
	q := NewTBF(NewPFIFO(10000), 1e6, 1514) // 1 MB/s
	for i := 0; i < 5000; i++ {
		q.Enqueue(pkt(0, 940), 0) // 1000B frames (per FrameLen: 42+940=982 -> use payload 958)
	}
	var bytes uint64
	for tick := sim.Time(0); tick < sim.Time(sim.Second); tick += sim.Time(100 * sim.Microsecond) {
		for {
			p, ok := q.Dequeue(tick)
			if !ok {
				break
			}
			bytes += uint64(p.FrameLen())
		}
	}
	// One simulated second at 1 MB/s, ±12% (bucket quantization).
	if bytes < 880_000 || bytes > 1_120_000 {
		t.Fatalf("shaped to %d bytes/s, want ≈1MB/s", bytes)
	}
}

func TestWFQProportionalService(t *testing.T) {
	q := NewWFQ(4096)
	q.SetWeight(1, 5)
	q.SetWeight(2, 1)
	for i := 0; i < 600; i++ {
		q.Enqueue(pkt(1, 958), 0)
		q.Enqueue(pkt(2, 958), 0)
	}
	counts := map[uint32]int{}
	for i := 0; i < 600; i++ {
		p, ok := q.Dequeue(0)
		if !ok {
			break
		}
		counts[p.Meta.Class]++
	}
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 4.5 || ratio > 5.5 {
		t.Fatalf("service ratio = %.2f (%v), want ≈5", ratio, counts)
	}
}

func TestWFQWorkConserving(t *testing.T) {
	q := NewWFQ(1024)
	q.SetWeight(1, 10)
	q.SetWeight(2, 1)
	// Only the light class has traffic: it gets full service.
	for i := 0; i < 10; i++ {
		q.Enqueue(pkt(2, 100), 0)
	}
	served := 0
	for {
		if _, ok := q.Dequeue(0); !ok {
			break
		}
		served++
	}
	if served != 10 {
		t.Fatalf("work conservation violated: %d/10", served)
	}
}

func TestWFQPerClassBufferBound(t *testing.T) {
	q := NewWFQ(100)
	q.SetWeight(1, 1)
	q.SetWeight(2, 1)
	for i := 0; i < 100; i++ {
		q.Enqueue(pkt(1, 10), 0)
	}
	if got := q.ClassStats(1).DropPackets; got == 0 {
		t.Fatal("one class must not monopolize the buffer")
	}
	if !q.Enqueue(pkt(2, 10), 0) {
		t.Fatal("the other class must still have room")
	}
}

func TestDRRQuantumRatio(t *testing.T) {
	q := NewDRR(4096, 1000)
	q.SetQuantum(1, 3000)
	q.SetQuantum(2, 1000)
	for i := 0; i < 500; i++ {
		q.Enqueue(pkt(1, 958), 0)
		q.Enqueue(pkt(2, 958), 0)
	}
	counts := map[uint32]int{}
	for i := 0; i < 400; i++ {
		p, ok := q.Dequeue(0)
		if !ok {
			break
		}
		counts[p.Meta.Class]++
	}
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("DRR ratio = %.2f (%v), want ≈3", ratio, counts)
	}
}

func TestPrioWithShapedBand(t *testing.T) {
	// Band 1 shaped to ~1 frame per 100µs; band 0 unshaped.
	q := NewPrioWith(
		NewPFIFO(100),
		NewTBF(NewPFIFO(100), 10e6, 1514),
	)
	q.Enqueue(pkt(1, 958), 0)
	q.Enqueue(pkt(1, 958), 0)
	if _, ok := q.Dequeue(0); !ok {
		t.Fatal("first shaped frame fits the burst")
	}
	// Second shaped frame must wait; ReadyAt reflects the deferral.
	if _, ok := q.Dequeue(0); ok {
		t.Fatal("second frame should be deferred by the band shaper")
	}
	at, ok := q.ReadyAt(0)
	if !ok || at == 0 {
		t.Fatalf("ReadyAt should defer: %v %v", at, ok)
	}
	// Traffic in band 0 is ready immediately regardless.
	q.Enqueue(pkt(0, 100), 0)
	if at, ok := q.ReadyAt(0); !ok || at != 0 {
		t.Fatalf("unshaped band must be ready now: %v %v", at, ok)
	}
}

// Property: packets are conserved — everything enqueued is either still
// queued, dequeued, or was counted as a drop.
func TestConservationQuick(t *testing.T) {
	mk := func(kind int) Qdisc {
		switch kind % 4 {
		case 0:
			return NewPFIFO(32)
		case 1:
			return NewPrio(3, 16)
		case 2:
			wf := NewWFQ(32)
			wf.SetWeight(0, 2)
			wf.SetWeight(1, 1)
			return wf
		default:
			return NewDRR(32, 1514)
		}
	}
	f := func(kind int, ops []bool, classes []uint8) bool {
		q := mk(kind)
		enq, deq, drop := 0, 0, 0
		for i, push := range ops {
			if push {
				class := uint32(0)
				if i < len(classes) {
					class = uint32(classes[i] % 3)
				}
				if q.Enqueue(pkt(class, 64), 0) {
					enq++
				} else {
					drop++
				}
			} else if _, ok := q.Dequeue(0); ok {
				deq++
			}
		}
		return q.Len() == enq-deq && drop >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
