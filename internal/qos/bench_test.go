package qos

import "testing"

// BenchmarkWFQEnqueueDequeue measures the scheduler hot path with four
// active classes.
func BenchmarkWFQEnqueueDequeue(b *testing.B) {
	q := NewWFQ(4096)
	for c := uint32(0); c < 4; c++ {
		q.SetWeight(c, float64(c+1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(pkt(uint32(i%4), 958), 0)
		if i%2 == 1 {
			q.Dequeue(0)
		}
	}
}

// BenchmarkDRREnqueueDequeue is the O(1) counterpart.
func BenchmarkDRREnqueueDequeue(b *testing.B) {
	q := NewDRR(4096, 1514)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(pkt(uint32(i%4), 958), 0)
		if i%2 == 1 {
			q.Dequeue(0)
		}
	}
}
