package kernel

import (
	"sort"

	"norman/internal/packet"
	"norman/internal/sim"
)

// ARPEntry is one ARP cache entry, with the attribution the debugging
// scenario (§2) needs: which local process, if any, originated the traffic
// that created the entry.
type ARPEntry struct {
	IP      packet.IPv4
	MAC     packet.MAC
	Learned sim.Time
	// Source attribution for locally generated ARP traffic (zero when the
	// entry was learned from remote traffic).
	LocalPID uint32
	LocalCmd string
}

// ARPCache is the kernel ARP table. Under kernel bypass, applications speak
// ARP themselves and this cache sees nothing — the paper's debugging
// scenario. Under kernel or KOPI interposition, the interposition layer
// feeds it.
type ARPCache struct {
	entries map[packet.IPv4]*ARPEntry

	// RequestsSeen counts outbound ARP requests observed, keyed by the
	// originating pid (0 = unattributed).
	RequestsSeen map[uint32]uint64
}

// NewARPCache creates an empty cache.
func NewARPCache() *ARPCache {
	return &ARPCache{
		entries:      map[packet.IPv4]*ARPEntry{},
		RequestsSeen: map[uint32]uint64{},
	}
}

// Learn records a mapping.
func (a *ARPCache) Learn(ip packet.IPv4, mac packet.MAC, now sim.Time, pid uint32, cmd string) {
	a.entries[ip] = &ARPEntry{IP: ip, MAC: mac, Learned: now, LocalPID: pid, LocalCmd: cmd}
}

// Observe inspects a packet flowing through an interposition point and
// updates the cache: replies teach mappings, locally originated requests
// are counted with attribution.
func (a *ARPCache) Observe(p *packet.Packet, now sim.Time, outbound bool) {
	if p.ARP == nil {
		return
	}
	switch p.ARP.Op {
	case packet.ARPReply:
		a.Learn(p.ARP.SenderIP, p.ARP.SenderHW, now, 0, "")
	case packet.ARPRequest:
		if outbound {
			pid := uint32(0)
			if p.Meta.TrustedMeta {
				pid = p.Meta.PID
			}
			a.RequestsSeen[pid]++
		}
	}
}

// Lookup resolves an IP.
func (a *ARPCache) Lookup(ip packet.IPv4) (packet.MAC, bool) {
	e, ok := a.entries[ip]
	if !ok {
		return packet.MAC{}, false
	}
	return e.MAC, true
}

// Entries returns the cache sorted by IP (the `arp -a` view).
func (a *ARPCache) Entries() []*ARPEntry {
	out := make([]*ARPEntry, 0, len(a.entries))
	for _, e := range a.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IP < out[j].IP })
	return out
}

// TopRequester returns the pid with the most observed outbound ARP requests
// and its count — how an admin traces an ARP flood to a process.
func (a *ARPCache) TopRequester() (pid uint32, count uint64) {
	for p, c := range a.RequestsSeen {
		if c > count || (c == count && p > pid) {
			pid, count = p, c
		}
	}
	return pid, count
}
