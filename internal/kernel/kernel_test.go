package kernel

import (
	"errors"
	"testing"

	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/timing"
)

func newKernel() (*Kernel, *sim.Engine) {
	eng := sim.NewEngine()
	return New(eng, timing.Default()), eng
}

func TestSpawnAndProcessTable(t *testing.T) {
	k, _ := newKernel()
	k.AddUser(1001, "bob")
	p1 := k.Spawn(1001, "postgres")
	p2 := k.Spawn(1001, "psql")
	if p1.PID == p2.PID {
		t.Fatal("pids must be unique")
	}
	got, ok := k.Process(p1.PID)
	if !ok || got.Command != "postgres" || got.UID != 1001 {
		t.Fatalf("lookup: %+v %v", got, ok)
	}
	if len(k.Processes()) != 2 {
		t.Fatalf("process count %d", len(k.Processes()))
	}
	if u, ok := k.User(1001); !ok || u.Name != "bob" {
		t.Fatal("user lookup")
	}
}

func TestConnRegistryAndPortConflict(t *testing.T) {
	k, _ := newKernel()
	p := k.Spawn(1001, "app")
	flow := packet.FlowKey{Src: 1, Dst: 2, SrcPort: 1000, DstPort: 2000, Proto: packet.ProtoUDP}
	ci, err := k.RegisterConn(p, flow)
	if err != nil {
		t.Fatal(err)
	}
	if ci.PID != p.PID || ci.Command != "app" {
		t.Fatalf("attribution: %+v", ci)
	}
	if _, err := k.RegisterConn(p, flow); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("duplicate flow: %v", err)
	}
	if got, ok := k.ConnByFlow(flow); !ok || got.ID != ci.ID {
		t.Fatal("flow lookup")
	}
	if err := k.UnregisterConn(ci.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := k.RegisterConn(p, flow); err != nil {
		t.Fatalf("flow should be reusable after unregister: %v", err)
	}
	if err := k.UnregisterConn(999); !errors.Is(err, ErrNoSuchConn) {
		t.Fatalf("unknown conn: %v", err)
	}
}

func TestMetaIsTrustedAndComplete(t *testing.T) {
	k, _ := newKernel()
	p := k.Spawn(1002, "backup")
	ci, _ := k.RegisterConn(p, packet.FlowKey{SrcPort: 1})
	m := k.Meta(ci)
	if !m.TrustedMeta || m.UID != 1002 || m.PID != p.PID || m.Command != "backup" {
		t.Fatalf("meta: %+v", m)
	}
	if m.CommandID == 0 {
		t.Fatal("command id must be interned")
	}
	if m.CommandID != k.CommandID("backup") {
		t.Fatal("interning must be stable")
	}
	if k.CommandID("backup") == k.CommandID("other") {
		t.Fatal("distinct commands get distinct ids")
	}
}

func TestBlockWake(t *testing.T) {
	k, eng := newKernel()
	p := k.Spawn(1, "w")
	ci, _ := k.RegisterConn(p, packet.FlowKey{SrcPort: 9})

	var wokeAt sim.Time
	k.BlockRx(ci, func(at sim.Time) { wokeAt = at })
	if !ci.BlockedRx() {
		t.Fatal("should be blocked")
	}
	eng.At(sim.Time(10*sim.Microsecond), func() {
		if !k.WakeRx(ci) {
			t.Error("wake should succeed")
		}
		if k.WakeRx(ci) {
			t.Error("double wake must be a no-op")
		}
	})
	eng.Run()
	want := sim.Time(10*sim.Microsecond) + sim.Time(timing.Default().ContextSwitch)
	if wokeAt != want {
		t.Fatalf("woke at %v, want %v (context switch charged)", wokeAt, want)
	}
	if k.Wakes != 1 {
		t.Fatalf("wakes = %d", k.Wakes)
	}
}

func TestARPCacheLearnAndAttribution(t *testing.T) {
	a := NewARPCache()
	mac := packet.MAC{1, 2, 3, 4, 5, 6}
	reply := packet.NewARPReply(mac, packet.MakeIP(10, 0, 0, 2), packet.MAC{9}, packet.MakeIP(10, 0, 0, 1))
	a.Observe(reply, 5, false)
	got, ok := a.Lookup(packet.MakeIP(10, 0, 0, 2))
	if !ok || got != mac {
		t.Fatal("reply should teach the cache")
	}

	req := packet.NewARPRequest(packet.MAC{7}, packet.MakeIP(10, 0, 0, 1), packet.MakeIP(10, 0, 0, 9))
	req.Meta.TrustedMeta = true
	req.Meta.PID = 42
	for i := 0; i < 3; i++ {
		a.Observe(req, sim.Time(i), true)
	}
	other := packet.NewARPRequest(packet.MAC{8}, 1, 2) // unattributed
	a.Observe(other, 9, true)

	pid, n := a.TopRequester()
	if pid != 42 || n != 3 {
		t.Fatalf("top requester: pid=%d n=%d", pid, n)
	}
	if len(a.Entries()) != 1 {
		t.Fatalf("entries: %d", len(a.Entries()))
	}
	// Inbound requests are not counted as local senders.
	a.Observe(req, 10, false)
	if _, n := a.TopRequester(); n != 3 {
		t.Fatal("inbound observation must not count as outbound")
	}
}
