// Package kernel is Norman's in-kernel control plane (§4.2/§4.4): the
// process and user tables that give interposition its process view, the
// connection table that allocates per-connection rings and programs NIC
// steering, command-name interning for NIC-side cmd-owner matching, the ARP
// cache, and the wait/wake machinery that restores blocking I/O on top of
// kernel bypass (§4.3).
//
// The kernel never touches the dataplane: its job is to configure whatever
// interposition point the architecture provides and to monitor notification
// queues. That is the paper's division of labor.
package kernel

import (
	"errors"
	"fmt"
	"sort"

	"norman/internal/mem"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/timing"
)

// Errors.
var (
	ErrNoSuchProcess = errors.New("kernel: no such process")
	ErrNoSuchConn    = errors.New("kernel: no such connection")
	ErrPortInUse     = errors.New("kernel: local port in use")
	ErrNotPermitted  = errors.New("kernel: operation not permitted")
)

// User is a system user.
type User struct {
	UID  uint32
	Name string
}

// Process is a running process with its owner and command name. The process
// table is exactly what off-host interposition layers lack access to.
type Process struct {
	PID     uint32
	UID     uint32
	Command string
	Queue   *mem.NotifyQueue // shared notification queue (§4.3)

	conns map[uint64]*ConnInfo
}

// ConnInfo is one entry of the kernel connection table — the join between
// flows and processes that netstat, iptables owner matching and tcpdump
// attribution all need.
type ConnInfo struct {
	ID      uint64
	PID     uint32
	UID     uint32
	Command string
	Flow    packet.FlowKey
	Opened  sim.Time

	// Blocking state.
	blockedRx bool
	waker     func(at sim.Time)
}

// Kernel is the control plane.
type Kernel struct {
	eng   *sim.Engine
	model timing.Model

	users   map[uint32]*User
	procs   map[uint32]*Process
	nextPID uint32

	conns    map[uint64]*ConnInfo
	byFlow   map[packet.FlowKey]*ConnInfo
	nextConn uint64

	cmdIDs  map[string]uint32
	nextCmd uint32

	// tenants maps a uid to its isolation tenant (AssignTenant). UIDs with
	// no explicit assignment are their own tenant — every user is isolated
	// from every other by default, and grouping is an administrative act.
	tenants map[uint32]uint32

	arp *ARPCache

	// Wakes performed (context switches the control plane triggered).
	Wakes uint64
}

// New creates a kernel with an empty process table and user 0 (root).
func New(eng *sim.Engine, model timing.Model) *Kernel {
	k := &Kernel{
		eng:     eng,
		model:   model,
		users:   map[uint32]*User{0: {UID: 0, Name: "root"}},
		procs:   map[uint32]*Process{},
		conns:   map[uint64]*ConnInfo{},
		byFlow:  map[packet.FlowKey]*ConnInfo{},
		cmdIDs:  map[string]uint32{},
		tenants: map[uint32]uint32{},
		arp:     NewARPCache(),
	}
	return k
}

// AddUser registers a user.
func (k *Kernel) AddUser(uid uint32, name string) *User {
	u := &User{UID: uid, Name: name}
	k.users[uid] = u
	return u
}

// User looks up a user by uid.
func (k *Kernel) User(uid uint32) (*User, bool) {
	u, ok := k.users[uid]
	return u, ok
}

// Spawn creates a process owned by uid running command.
func (k *Kernel) Spawn(uid uint32, command string) *Process {
	k.nextPID++
	p := &Process{
		PID:     k.nextPID + 1000, // PIDs start above system range
		UID:     uid,
		Command: command,
		Queue:   mem.NewNotifyQueue(4096),
		conns:   map[uint64]*ConnInfo{},
	}
	k.procs[p.PID] = p
	return p
}

// Process looks up a process by pid.
func (k *Kernel) Process(pid uint32) (*Process, bool) {
	p, ok := k.procs[pid]
	return p, ok
}

// Processes returns all processes sorted by pid.
func (k *Kernel) Processes() []*Process {
	out := make([]*Process, 0, len(k.procs))
	for _, p := range k.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// CommandID interns a command name to a small id for NIC-side matching.
func (k *Kernel) CommandID(command string) uint32 {
	if id, ok := k.cmdIDs[command]; ok {
		return id
	}
	k.nextCmd++
	k.cmdIDs[command] = k.nextCmd
	return k.nextCmd
}

// RegisterConn records a new connection for a process and returns its table
// entry with a fresh connection id. The caller (architecture) performs the
// NIC-side allocation.
func (k *Kernel) RegisterConn(p *Process, flow packet.FlowKey) (*ConnInfo, error) {
	if _, ok := k.procs[p.PID]; !ok {
		return nil, ErrNoSuchProcess
	}
	if existing, ok := k.byFlow[flow]; ok {
		return nil, fmt.Errorf("%w: %s held by pid %d", ErrPortInUse, flow, existing.PID)
	}
	k.nextConn++
	ci := &ConnInfo{
		ID:      k.nextConn,
		PID:     p.PID,
		UID:     p.UID,
		Command: p.Command,
		Flow:    flow,
		Opened:  k.eng.Now(),
	}
	k.conns[ci.ID] = ci
	k.byFlow[flow] = ci
	p.conns[ci.ID] = ci
	return ci, nil
}

// RestoreConn re-inserts a connection under its original id — the crash
// reconciler's repair for a kernel table row lost to NIC/kernel divergence.
// The process must still exist (in-sim crashes kill the control plane, not
// applications); id collisions and flow conflicts are rejected.
func (k *Kernel) RestoreConn(id uint64, pid uint32, flow packet.FlowKey, opened sim.Time) (*ConnInfo, error) {
	p, ok := k.procs[pid]
	if !ok {
		return nil, ErrNoSuchProcess
	}
	if _, ok := k.conns[id]; ok {
		return nil, fmt.Errorf("kernel: conn %d already present", id)
	}
	if existing, ok := k.byFlow[flow]; ok {
		return nil, fmt.Errorf("%w: %s held by pid %d", ErrPortInUse, flow, existing.PID)
	}
	ci := &ConnInfo{
		ID:      id,
		PID:     p.PID,
		UID:     p.UID,
		Command: p.Command,
		Flow:    flow,
		Opened:  opened,
	}
	k.conns[id] = ci
	k.byFlow[flow] = ci
	p.conns[id] = ci
	if id > k.nextConn {
		k.nextConn = id
	}
	return ci, nil
}

// UnregisterConn removes a connection from the table.
func (k *Kernel) UnregisterConn(id uint64) error {
	ci, ok := k.conns[id]
	if !ok {
		return ErrNoSuchConn
	}
	delete(k.conns, id)
	delete(k.byFlow, ci.Flow)
	if p, ok := k.procs[ci.PID]; ok {
		delete(p.conns, id)
	}
	return nil
}

// Conn looks up a connection by id.
func (k *Kernel) Conn(id uint64) (*ConnInfo, bool) {
	c, ok := k.conns[id]
	return c, ok
}

// ConnByFlow looks up a connection by its flow key.
func (k *Kernel) ConnByFlow(flow packet.FlowKey) (*ConnInfo, bool) {
	c, ok := k.byFlow[flow]
	return c, ok
}

// Conns returns all connections sorted by id — the netstat view, already
// joined with process attribution.
func (k *Kernel) Conns() []*ConnInfo {
	out := make([]*ConnInfo, 0, len(k.conns))
	for _, c := range k.conns {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AssignTenant groups a uid into an isolation tenant. The NIC's weighted
// scheduler, the DDIO partition and the overload governor's per-tenant
// budgets all key on this id. Tenant 0 clears the assignment (the uid
// becomes its own tenant again).
func (k *Kernel) AssignTenant(uid, tenant uint32) {
	if tenant == 0 {
		delete(k.tenants, uid)
		return
	}
	k.tenants[uid] = tenant
}

// TenantOf resolves a uid's isolation tenant: the explicit assignment if one
// exists, the uid itself otherwise.
func (k *Kernel) TenantOf(uid uint32) uint32 {
	if t, ok := k.tenants[uid]; ok {
		return t
	}
	return uid
}

// Meta builds the trusted packet metadata the kernel programs into the NIC
// for a connection (§4.3: connection setup goes through the kernel).
func (k *Kernel) Meta(ci *ConnInfo) packet.Meta {
	return packet.Meta{
		UID:         ci.UID,
		PID:         ci.PID,
		Command:     ci.Command,
		CommandID:   k.CommandID(ci.Command),
		ConnID:      ci.ID,
		Tenant:      k.TenantOf(ci.UID),
		TrustedMeta: true,
	}
}

// ARP returns the kernel ARP cache.
func (k *Kernel) ARP() *ARPCache { return k.arp }

// Engine returns the simulation engine (for components needing the clock).
func (k *Kernel) Engine() *sim.Engine { return k.eng }

// Model returns the cost model.
func (k *Kernel) Model() timing.Model { return k.model }

// BlockRx marks a connection's owner blocked on receive and registers the
// wake callback. The architecture's notification delivery (or software
// dataplane) calls WakeRx when data arrives. Architectures without kernel
// visibility into arrivals cannot implement this — they return
// ErrNotPermitted from their blocking API instead, reproducing the paper's
// process-scheduling scenario.
func (k *Kernel) BlockRx(ci *ConnInfo, waker func(at sim.Time)) {
	ci.blockedRx = true
	ci.waker = waker
}

// WakeRx wakes a blocked receiver, charging the wake path: the kernel
// monitor notices the notification and performs a context switch.
func (k *Kernel) WakeRx(ci *ConnInfo) bool {
	if !ci.blockedRx || ci.waker == nil {
		return false
	}
	ci.blockedRx = false
	waker := ci.waker
	ci.waker = nil
	k.Wakes++
	at := k.eng.Now().Add(sim.Duration(k.model.ContextSwitch))
	k.eng.At(at, func() { waker(k.eng.Now()) })
	return true
}

// BlockedRx reports whether the connection's owner is blocked on receive.
func (ci *ConnInfo) BlockedRx() bool { return ci.blockedRx }
