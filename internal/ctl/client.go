package ctl

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"norman/internal/faults"
)

// DialConfig bounds how long a tool will wait on the control socket. The
// zero value means defaults; normand restarting or wedging should cost a
// tool seconds, not a hung terminal.
type DialConfig struct {
	// Timeout bounds one connect attempt (default 2s).
	Timeout time.Duration
	// Retries is how many additional connect attempts follow a failure
	// (default 3; negative = none). Attempts are spaced by capped
	// exponential backoff with deterministic jitter.
	Retries int
	// BackoffBase and BackoffMax shape the retry schedule
	// (defaults 50ms base, 1s cap).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// RequestTimeout bounds one Call round-trip (default 10s).
	RequestTimeout time.Duration
	// Seed drives the backoff jitter so outage tests replay exactly.
	Seed int64
}

func (c DialConfig) withDefaults() DialConfig {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 3
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	return c
}

// Unreachable reports that no connection to the daemon could be
// established after the full retry schedule. Tools errors.As against it to
// print the canonical "normand unreachable at <addr>" line and exit
// non-zero instead of dumping a raw dial error.
type Unreachable struct {
	Addr     string
	Attempts int
	Err      error
}

func (u *Unreachable) Error() string {
	return fmt.Sprintf("ctl: dialing %s after %d attempts (is normand running?): %v",
		u.Addr, u.Attempts, u.Err)
}

// Unwrap exposes the last dial error for errors.Is chains.
func (u *Unreachable) Unwrap() error { return u.Err }

// errBrokenConn marks transport failures (write/read on an established
// connection) as distinct from daemon-reported errors; only these justify a
// transparent reconnect-and-retry, and only for idempotent ops.
var errBrokenConn = errors.New("ctl: connection broken")

// Client is a tool-side connection to normand.
type Client struct {
	conn net.Conn
	rd   *bufio.Reader
	cfg  DialConfig
	path string
}

// Dial connects to the daemon's control socket with default timeouts.
func Dial(path string) (*Client, error) {
	return DialWith(path, DialConfig{})
}

// DialWith connects with explicit timeout/backoff behavior. A dead or
// missing socket fails each attempt fast; a present-but-unresponsive one
// fails at cfg.Timeout; the schedule between attempts is
// faults.Backoff(base, max, attempt, seed).
func DialWith(path string, cfg DialConfig) (*Client, error) {
	if path == "" {
		path = DefaultSocket
	}
	cfg = cfg.withDefaults()
	var lastErr error
	for attempt := 0; attempt <= cfg.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(faults.Backoff(cfg.BackoffBase, cfg.BackoffMax, attempt-1, cfg.Seed))
		}
		conn, err := net.DialTimeout("unix", path, cfg.Timeout)
		if err == nil {
			return &Client{conn: conn, rd: bufio.NewReaderSize(conn, 1<<20), cfg: cfg, path: path}, nil
		}
		lastErr = err
	}
	return nil, &Unreachable{Addr: path, Attempts: cfg.Retries + 1, Err: lastErr}
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Call performs one request and decodes the response payload into out
// (which may be nil). The round-trip is bounded by the client's
// RequestTimeout; a wedged daemon surfaces as a deadline error instead of a
// hang. If the established connection breaks mid-call — the daemon
// restarted under the tool — and the op is idempotent, the client
// transparently redials (the usual backoff schedule) and retries once.
// Daemon-reported errors are never retried.
func (c *Client) Call(op string, args, out interface{}) error {
	err := c.roundTrip(op, args, out)
	if err != nil && errors.Is(err, errBrokenConn) && IdempotentOp(op) {
		if rerr := c.reconnect(); rerr == nil {
			return c.roundTrip(op, args, out)
		}
	}
	return err
}

// reconnect replaces the broken transport with a fresh dial to the same
// socket, reusing the client's dial configuration (and its backoff).
func (c *Client) reconnect() error {
	fresh, err := DialWith(c.path, c.cfg)
	if err != nil {
		return err
	}
	c.conn.Close()
	c.conn, c.rd = fresh.conn, fresh.rd
	return nil
}

// roundTrip is one request/response exchange on the current connection.
// Transport failures are wrapped with errBrokenConn so Call can distinguish
// a dead socket from a live daemon saying no.
func (c *Client) roundTrip(op string, args, out interface{}) error {
	req, err := Marshal(op, args)
	if err != nil {
		return err
	}
	req = append(req, '\n')
	if c.cfg.RequestTimeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.cfg.RequestTimeout)); err != nil {
			return fmt.Errorf("ctl: arming deadline: %w", err)
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	if _, err := c.conn.Write(req); err != nil {
		return fmt.Errorf("ctl: write: %w: %w", errBrokenConn, err)
	}
	line, err := c.rd.ReadBytes('\n')
	if err != nil {
		return fmt.Errorf("ctl: read: %w: %w", errBrokenConn, err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return fmt.Errorf("ctl: decoding response: %w", err)
	}
	if !resp.OK {
		return fmt.Errorf("%s", resp.Error)
	}
	if out != nil && resp.Data != nil {
		if err := json.Unmarshal(resp.Data, out); err != nil {
			return fmt.Errorf("ctl: decoding payload: %w", err)
		}
	}
	return nil
}
