package ctl

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
)

// Client is a tool-side connection to normand.
type Client struct {
	conn net.Conn
	rd   *bufio.Reader
}

// Dial connects to the daemon's control socket.
func Dial(path string) (*Client, error) {
	if path == "" {
		path = DefaultSocket
	}
	conn, err := net.Dial("unix", path)
	if err != nil {
		return nil, fmt.Errorf("ctl: dialing %s (is normand running?): %w", path, err)
	}
	return &Client{conn: conn, rd: bufio.NewReaderSize(conn, 1<<20)}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Call performs one request and decodes the response payload into out
// (which may be nil).
func (c *Client) Call(op string, args, out interface{}) error {
	req, err := Marshal(op, args)
	if err != nil {
		return err
	}
	req = append(req, '\n')
	if _, err := c.conn.Write(req); err != nil {
		return fmt.Errorf("ctl: write: %w", err)
	}
	line, err := c.rd.ReadBytes('\n')
	if err != nil {
		return fmt.Errorf("ctl: read: %w", err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return fmt.Errorf("ctl: decoding response: %w", err)
	}
	if !resp.OK {
		return fmt.Errorf("%s", resp.Error)
	}
	if out != nil && resp.Data != nil {
		if err := json.Unmarshal(resp.Data, out); err != nil {
			return fmt.Errorf("ctl: decoding payload: %w", err)
		}
	}
	return nil
}
