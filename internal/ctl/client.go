package ctl

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"norman/internal/faults"
)

// DialConfig bounds how long a tool will wait on the control socket. The
// zero value means defaults; normand restarting or wedging should cost a
// tool seconds, not a hung terminal.
type DialConfig struct {
	// Timeout bounds one connect attempt (default 2s).
	Timeout time.Duration
	// Retries is how many additional connect attempts follow a failure
	// (default 3; negative = none). Attempts are spaced by capped
	// exponential backoff with deterministic jitter.
	Retries int
	// BackoffBase and BackoffMax shape the retry schedule
	// (defaults 50ms base, 1s cap).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// RequestTimeout bounds one Call round-trip (default 10s).
	RequestTimeout time.Duration
	// Seed drives the backoff jitter so outage tests replay exactly.
	Seed int64
}

func (c DialConfig) withDefaults() DialConfig {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 3
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	return c
}

// Client is a tool-side connection to normand.
type Client struct {
	conn net.Conn
	rd   *bufio.Reader
	cfg  DialConfig
}

// Dial connects to the daemon's control socket with default timeouts.
func Dial(path string) (*Client, error) {
	return DialWith(path, DialConfig{})
}

// DialWith connects with explicit timeout/backoff behavior. A dead or
// missing socket fails each attempt fast; a present-but-unresponsive one
// fails at cfg.Timeout; the schedule between attempts is
// faults.Backoff(base, max, attempt, seed).
func DialWith(path string, cfg DialConfig) (*Client, error) {
	if path == "" {
		path = DefaultSocket
	}
	cfg = cfg.withDefaults()
	var lastErr error
	for attempt := 0; attempt <= cfg.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(faults.Backoff(cfg.BackoffBase, cfg.BackoffMax, attempt-1, cfg.Seed))
		}
		conn, err := net.DialTimeout("unix", path, cfg.Timeout)
		if err == nil {
			return &Client{conn: conn, rd: bufio.NewReaderSize(conn, 1<<20), cfg: cfg}, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("ctl: dialing %s after %d attempts (is normand running?): %w",
		path, cfg.Retries+1, lastErr)
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Call performs one request and decodes the response payload into out
// (which may be nil). The round-trip is bounded by the client's
// RequestTimeout; a wedged daemon surfaces as a deadline error instead of a
// hang.
func (c *Client) Call(op string, args, out interface{}) error {
	req, err := Marshal(op, args)
	if err != nil {
		return err
	}
	req = append(req, '\n')
	if c.cfg.RequestTimeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.cfg.RequestTimeout)); err != nil {
			return fmt.Errorf("ctl: arming deadline: %w", err)
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	if _, err := c.conn.Write(req); err != nil {
		return fmt.Errorf("ctl: write: %w", err)
	}
	line, err := c.rd.ReadBytes('\n')
	if err != nil {
		return fmt.Errorf("ctl: read: %w", err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return fmt.Errorf("ctl: decoding response: %w", err)
	}
	if !resp.OK {
		return fmt.Errorf("%s", resp.Error)
	}
	if out != nil && resp.Data != nil {
		if err := json.Unmarshal(resp.Data, out); err != nil {
			return fmt.Errorf("ctl: decoding payload: %w", err)
		}
	}
	return nil
}
