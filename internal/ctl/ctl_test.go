package ctl

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"norman"
	"norman/internal/wire"
)

// startServer brings up a daemon around a live KOPI system on a test socket.
func startServer(t *testing.T, opts ...norman.Option) (*Client, *norman.System) {
	t.Helper()
	sys := norman.New(norman.KOPI, opts...)
	net := wire.NewNetwork(sys.Arch())
	net.AddEndpoint(sys.World().PeerIP, sys.World().PeerMAC, wire.EchoUDP)
	alice := sys.AddUser(1000, "alice")
	app := sys.Spawn(alice, "demo")
	conn, err := sys.Dial(app, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	// A small self-sustaining workload so advance produces traffic.
	var tick func()
	tick = func() {
		conn.Send(256)
		sys.After(50*norman.Microsecond, tick)
	}
	sys.At(0, tick)

	// Telemetry on, as normand runs it: the dump/trace ops are live and the
	// ctl layer's own request accounting lands in the registry.
	srv := NewServer(sys)
	srv.RegisterMetrics(sys.EnableTelemetry(), nil)
	path := filepath.Join(t.TempDir(), "ctl.sock")
	go func() { _ = srv.Listen(path) }()
	t.Cleanup(func() { _ = srv.Close() })

	var c *Client
	deadline := time.Now().Add(2 * time.Second)
	for {
		c, err = Dial(path)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dial: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c, sys
}

func TestStatusAndAdvance(t *testing.T) {
	c, _ := startServer(t)
	var st StatusData
	if err := c.Call(OpStatus, nil, &st); err != nil {
		t.Fatal(err)
	}
	if st.Architecture != "kopi" {
		t.Fatalf("arch %q", st.Architecture)
	}
	before := st.TxFrames
	if err := c.Call(OpAdvance, AdvanceArgs{Millis: 10}, &st); err != nil {
		t.Fatal(err)
	}
	if st.TxFrames <= before {
		t.Fatalf("advance should move traffic: %d -> %d", before, st.TxFrames)
	}
}

func TestRuleLifecycle(t *testing.T) {
	c, _ := startServer(t)
	uid := uint32(1000)
	err := c.Call(OpIPTablesAdd, RuleArgs{
		Hook: "OUTPUT", Proto: "udp", DstPort: 9999,
		OwnerUID: &uid, Action: "drop",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var rules []string
	if err := c.Call(OpIPTablesList, nil, &rules); err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0] != "-A OUTPUT -p udp --dport 9999 -m owner --uid-owner 1000 -j DROP   [0 pkts]" {
		t.Fatalf("rules: %q", rules)
	}
	if err := c.Call(OpIPTablesFlush, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Call(OpIPTablesList, nil, &rules); err != nil {
		t.Fatal(err)
	}
	if len(rules) != 0 {
		t.Fatalf("after flush: %q", rules)
	}
}

func TestCaptureAndNetstat(t *testing.T) {
	c, _ := startServer(t)
	if err := c.Call(OpDumpStart, DumpArgs{Expr: "udp and port 7"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Call(OpAdvance, AdvanceArgs{Millis: 5}, nil); err != nil {
		t.Fatal(err)
	}
	var recs []DumpRecord
	if err := c.Call(OpDumpFetch, nil, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("capture should have records")
	}
	if recs[0].Attribution == "?" {
		t.Fatalf("KOPI captures must be attributed: %+v", recs[0])
	}

	var pcap PcapData
	if err := c.Call(OpDumpPcap, nil, &pcap); err != nil {
		t.Fatal(err)
	}
	if pcap.Count != len(recs) && pcap.Count == 0 {
		t.Fatalf("pcap count %d", pcap.Count)
	}
	if pcap.Base64 == "" {
		t.Fatal("empty pcap blob")
	}

	var rows []NetstatData
	if err := c.Call(OpNetstat, nil, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Command != "demo" {
		t.Fatalf("netstat: %+v", rows)
	}
}

func TestUnknownOpAndBadArgs(t *testing.T) {
	c, _ := startServer(t)
	if err := c.Call("bogus.op", nil, nil); err == nil {
		t.Fatal("unknown op must error")
	}
	if err := c.Call(OpDumpFetch, nil, nil); err == nil {
		t.Fatal("fetch without a capture must error")
	}
	// The connection stays usable after errors.
	var st StatusData
	if err := c.Call(OpStatus, nil, &st); err != nil {
		t.Fatal(err)
	}
}

func TestPingOp(t *testing.T) {
	c, _ := startServer(t)
	var data PingData
	if err := c.Call(OpPing, PingArgs{Dst: "10.0.0.2", Count: 2}, &data); err != nil {
		t.Fatal(err)
	}
	if data.Sent != 2 || data.Received != 2 || len(data.RTTs) != 2 {
		t.Fatalf("ping data: %+v", data)
	}
}

// startServerArch brings up a daemon on an arbitrary architecture.
func startServerArch(t *testing.T, archName norman.Architecture) *Client {
	t.Helper()
	sys := norman.New(archName)
	net := wire.NewNetwork(sys.Arch())
	net.AddEndpoint(sys.World().PeerIP, sys.World().PeerMAC, wire.EchoUDP)
	srv := NewServer(sys)
	path := filepath.Join(t.TempDir(), "ctl.sock")
	go func() { _ = srv.Listen(path) }()
	t.Cleanup(func() { _ = srv.Close() })
	var c *Client
	var err error
	deadline := time.Now().Add(2 * time.Second)
	for {
		c, err = Dial(path)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dial: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// TestToolDegradationByArchitecture is §2 at the tool level: the same
// commands against bypass and kernelstack daemons succeed or fail exactly
// as the paper predicts.
func TestToolDegradationByArchitecture(t *testing.T) {
	// Bypass: everything administrative fails.
	bp := startServerArch(t, norman.Bypass)
	if err := bp.Call(OpDumpStart, DumpArgs{Expr: "udp"}, nil); err == nil {
		t.Error("bypass tcpdump should fail")
	}
	uid := uint32(1001)
	if err := bp.Call(OpIPTablesAdd, RuleArgs{Hook: "OUTPUT", OwnerUID: &uid, Action: "drop"}, nil); err == nil {
		t.Error("bypass owner rule should fail")
	}
	if err := bp.Call(OpPing, PingArgs{Dst: "10.0.0.2", Count: 1}, nil); err == nil {
		t.Error("bypass ping should fail")
	}
	var st StatusData
	if err := bp.Call(OpStatus, nil, &st); err != nil || st.Architecture != "bypass" {
		t.Errorf("status must still work: %v %+v", err, st)
	}

	// Kernelstack: everything works.
	ks := startServerArch(t, norman.KernelStack)
	if err := ks.Call(OpDumpStart, DumpArgs{Expr: "udp"}, nil); err != nil {
		t.Errorf("kernelstack tcpdump: %v", err)
	}
	if err := ks.Call(OpIPTablesAdd, RuleArgs{Hook: "OUTPUT", OwnerUID: &uid, Action: "drop"}, nil); err != nil {
		t.Errorf("kernelstack owner rule: %v", err)
	}
	var ping PingData
	if err := ks.Call(OpPing, PingArgs{Dst: "10.0.0.2", Count: 1}, &ping); err != nil || ping.Received != 1 {
		t.Errorf("kernelstack ping: %v %+v", err, ping)
	}
}

// TestTelemetryDumpOp exercises telemetry.dump end to end: after some
// traffic the registry renders in both formats and covers the layers a
// running daemon is expected to populate, including ctl's own accounting.
func TestTelemetryDumpOp(t *testing.T) {
	c, _ := startServer(t)
	if err := c.Call(OpAdvance, AdvanceArgs{Millis: 20}, nil); err != nil {
		t.Fatal(err)
	}
	var data TelemetryData
	if err := c.Call(OpTelemetry, TelemetryArgs{Format: "prometheus"}, &data); err != nil {
		t.Fatal(err)
	}
	if data.Metrics == 0 {
		t.Fatal("empty registry")
	}
	for _, layer := range []string{"nic", "ctl", "host"} {
		found := false
		for _, l := range data.Layers {
			if l == layer {
				found = true
			}
		}
		if !found {
			t.Errorf("layers %v missing %q", data.Layers, layer)
		}
	}
	for _, want := range []string{"norman_nic_tx_frames", "norman_ctl_requests"} {
		if !strings.Contains(data.Body, want) {
			t.Errorf("prometheus body missing %s", want)
		}
	}

	var js TelemetryData
	if err := c.Call(OpTelemetry, TelemetryArgs{Format: "json"}, &js); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.TrimSpace(js.Body), "[") {
		t.Fatalf("json body does not look like JSON: %.60s", js.Body)
	}
	if err := c.Call(OpTelemetry, TelemetryArgs{Format: "yaml"}, nil); err == nil {
		t.Fatal("unknown format must error")
	}
}

// TestTraceGetOp exercises trace.get: id 0 resolves to the most recent
// traced packet, and an explicit id renders the same journey.
func TestTraceGetOp(t *testing.T) {
	c, _ := startServer(t)
	if err := c.Call(OpAdvance, AdvanceArgs{Millis: 20}, nil); err != nil {
		t.Fatal(err)
	}
	var latest TraceData
	if err := c.Call(OpTrace, TraceArgs{ID: 0}, &latest); err != nil {
		t.Fatal(err)
	}
	if latest.ID == 0 || len(latest.Available) == 0 {
		t.Fatalf("no trace resolved: %+v", latest)
	}
	if !strings.Contains(latest.Rendered, "interposition points") ||
		!strings.Contains(latest.Rendered, "syscall_send") {
		t.Fatalf("rendered trace lacks the journey:\n%s", latest.Rendered)
	}
	// An explicit id resolves the same packet. The render may have grown
	// since (each ctl request advances virtual time, so an in-flight packet
	// picks up its remaining interposition points) — pin the header instead.
	var explicit TraceData
	if err := c.Call(OpTrace, TraceArgs{ID: latest.ID}, &explicit); err != nil {
		t.Fatal(err)
	}
	if explicit.ID != latest.ID {
		t.Fatalf("explicit id %d resolved to %d", latest.ID, explicit.ID)
	}
	header := strings.SplitN(latest.Rendered, ":", 2)[0]
	if !strings.HasPrefix(explicit.Rendered, header+":") {
		t.Fatalf("explicit render is for a different packet:\n%s", explicit.Rendered)
	}
}

// TestTelemetryDisabled pins the degradation mode: a daemon started without
// EnableTelemetry refuses both observability ops with a clear error.
func TestTelemetryDisabled(t *testing.T) {
	srv := NewServer(norman.New(norman.KOPI))
	if _, err := srv.dispatch(Request{Op: OpTelemetry}); err == nil {
		t.Fatal("telemetry.dump without telemetry must error")
	}
	if _, err := srv.dispatch(Request{Op: OpTrace}); err == nil {
		t.Fatal("trace.get without tracing must error")
	}
}

// TestShardsOp pins the engine.shards op on an unsharded daemon: Sharded is
// false but one synthetic row still reports the single engine's event count,
// so nnetstat -shards never needs a second code path.
func TestShardsOp(t *testing.T) {
	c, _ := startServer(t)
	var data ShardsData
	if err := c.Call(OpShards, nil, &data); err != nil {
		t.Fatal(err)
	}
	if data.Sharded {
		t.Fatal("unsharded daemon reported sharded")
	}
	if data.Shards != 1 || len(data.Rows) != 1 || data.Rows[0].Shard != 0 {
		t.Fatalf("want one synthetic row for shard 0, got %+v", data)
	}
	var st StatusData
	if err := c.Call(OpAdvance, AdvanceArgs{Millis: 5}, &st); err != nil {
		t.Fatal(err)
	}
	if err := c.Call(OpShards, nil, &data); err != nil {
		t.Fatal(err)
	}
	if data.Rows[0].Events == 0 {
		t.Fatal("no events counted after advance")
	}
}

// TestShardsOpSharded runs the daemon's world under the barrier coordinator
// and checks the op reports the full per-shard snapshot.
func TestShardsOpSharded(t *testing.T) {
	c, _ := startServer(t, norman.WithShards(4))
	var st StatusData
	if err := c.Call(OpAdvance, AdvanceArgs{Millis: 5}, &st); err != nil {
		t.Fatal(err)
	}
	var data ShardsData
	if err := c.Call(OpShards, nil, &data); err != nil {
		t.Fatal(err)
	}
	if !data.Sharded || data.Shards != 4 || len(data.Rows) != 4 {
		t.Fatalf("want 4 shards, got %+v", data)
	}
	if data.Epoch == "" || data.Epochs == 0 {
		t.Fatalf("barrier accounting missing: %+v", data)
	}
	var events uint64
	for i, r := range data.Rows {
		if r.Shard != i {
			t.Fatalf("row %d reports shard %d", i, r.Shard)
		}
		events += r.Events
	}
	if events == 0 {
		t.Fatal("no events counted across shards after advance")
	}
}

// TestTenantStatusOp pins the tenant.status op: a daemon without isolation
// answers Enabled=false (graceful degradation, like overload.status), a
// daemon with the scheduler installed reports one merged row per tenant in
// ascending order, and the op is registered idempotent so clients may retry
// it across a control-plane outage.
func TestTenantStatusOp(t *testing.T) {
	if !IdempotentOp(OpTenants) {
		t.Fatal("tenant.status must be idempotent: it is a read-only query")
	}
	c, sys := startServer(t)
	var data TenantData
	if err := c.Call(OpTenants, nil, &data); err != nil {
		t.Fatal(err)
	}
	if data.Enabled || len(data.Tenants) != 0 {
		t.Fatalf("isolation off must answer Enabled=false with no rows: %+v", data)
	}

	if err := sys.EnableTenantIsolation(map[uint32]int{1: 3, 2: 1}); err != nil {
		t.Fatal(err)
	}
	var st StatusData
	if err := c.Call(OpAdvance, AdvanceArgs{Millis: 5}, &st); err != nil {
		t.Fatal(err)
	}
	if err := c.Call(OpTenants, nil, &data); err != nil {
		t.Fatal(err)
	}
	if !data.Enabled {
		t.Fatal("isolation on must answer Enabled=true")
	}
	if len(data.Tenants) < 2 || data.Tenants[0].Tenant >= data.Tenants[1].Tenant {
		t.Fatalf("want ascending tenant rows, got %+v", data.Tenants)
	}
	if data.Tenants[0].Weight != 3 || data.Tenants[1].Weight != 1 {
		t.Fatalf("weights = %d/%d, want 3/1", data.Tenants[0].Weight, data.Tenants[1].Weight)
	}
}
