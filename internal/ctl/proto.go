// Package ctl implements the control socket between a running normand
// instance and the administrative tools (niptables, ntc, ntcpdump,
// nnetstat, narp): newline-delimited JSON over a Unix domain socket. This
// mirrors the paper's Figure 1, where tc/iptables/tcpdump call into the
// in-kernel control plane, which reprograms the on-NIC dataplane.
package ctl

import (
	"encoding/json"
)

// DefaultSocket is where normand listens unless told otherwise.
const DefaultSocket = "/tmp/normand.sock"

// Request is one tool invocation.
type Request struct {
	Op   string          `json:"op"`
	Args json.RawMessage `json:"args,omitempty"`
}

// Response is the daemon's reply.
type Response struct {
	OK    bool            `json:"ok"`
	Error string          `json:"error,omitempty"`
	Data  json.RawMessage `json:"data,omitempty"`
}

// Ops.
const (
	OpStatus        = "status"
	OpAdvance       = "advance"
	OpIPTablesAdd   = "iptables.append"
	OpIPTablesList  = "iptables.list"
	OpIPTablesFlush = "iptables.flush"
	OpTCSet         = "tc.set"
	OpTCShow        = "tc.show"
	OpDumpStart     = "tcpdump.start"
	OpDumpFetch     = "tcpdump.fetch"
	OpDumpPcap      = "tcpdump.pcap"
	OpNetstat       = "netstat"
	OpARP           = "arp"
	OpPing          = "ping"
	OpTelemetry     = "telemetry.dump"
	OpTrace         = "trace.get"
	OpRecovery      = "recovery.status"
	OpOverload      = "overload.status"
	OpTenants       = "tenant.status"
	OpShards        = "engine.shards"
	OpFlowCache     = "flowcache.status"
	OpHealth        = "health.status"
	OpUpgradeStart  = "upgrade.start"
	OpUpgradeStatus = "upgrade.status"
)

// IdempotentOp reports whether op is a read-only query the client may
// safely replay on a fresh connection when the first attempt died
// mid-flight (daemon restarted between requests). Mutations are excluded:
// a broken connection leaves it unknown whether the daemon applied them.
func IdempotentOp(op string) bool {
	switch op {
	case OpStatus, OpIPTablesList, OpTCShow, OpDumpFetch, OpDumpPcap,
		OpNetstat, OpARP, OpTelemetry, OpTrace, OpRecovery, OpOverload,
		OpTenants, OpShards, OpFlowCache, OpHealth, OpUpgradeStatus:
		return true
	}
	return false
}

// RuleArgs is the wire form of a firewall rule (iptables.append).
type RuleArgs struct {
	Hook     string  `json:"hook"` // INPUT / OUTPUT
	Proto    string  `json:"proto,omitempty"`
	SrcNet   string  `json:"src,omitempty"`
	DstNet   string  `json:"dst,omitempty"`
	SrcPort  uint16  `json:"sport,omitempty"`
	DstPort  uint16  `json:"dport,omitempty"`
	OwnerUID *uint32 `json:"uid_owner,omitempty"`
	OwnerCmd string  `json:"cmd_owner,omitempty"`
	Action   string  `json:"action"`
}

// TCArgs configures the egress scheduler (tc.set).
type TCArgs struct {
	Kind       string             `json:"kind"`
	Weights    map[uint32]float64 `json:"weights,omitempty"` // class -> weight/quantum
	ClassOfUID map[uint32]uint32  `json:"class_of_uid,omitempty"`
	RateBps    float64            `json:"rate_bps,omitempty"`
	BurstBytes float64            `json:"burst_bytes,omitempty"`
	Limit      int                `json:"limit,omitempty"`
}

// DumpArgs starts a capture (tcpdump.start).
type DumpArgs struct {
	Expr string `json:"expr"`
}

// PingArgs asks the daemon's kernel to ping an address (ping).
type PingArgs struct {
	Dst   string `json:"dst"`
	Count int    `json:"count"`
}

// PingData reports the echoes.
type PingData struct {
	Sent     int      `json:"sent"`
	Received int      `json:"received"`
	RTTs     []string `json:"rtts"`
}

// AdvanceArgs moves virtual time forward (advance).
type AdvanceArgs struct {
	Millis int `json:"millis"`
}

// StatusData is the daemon snapshot (status).
type StatusData struct {
	Architecture string `json:"architecture"`
	VirtualTime  string `json:"virtual_time"`
	TxFrames     uint64 `json:"tx_frames"`
	RxFrames     uint64 `json:"rx_frames"`
	RxDrops      uint64 `json:"rx_drops"`
	SRAMUsed     int    `json:"sram_used"`
	SRAMBudget   int    `json:"sram_budget"`
	Conns        int    `json:"conns"`
}

// NetstatData is one netstat row.
type NetstatData struct {
	ConnID  uint64 `json:"conn"`
	Flow    string `json:"flow"`
	PID     uint32 `json:"pid"`
	UID     uint32 `json:"uid"`
	Command string `json:"command"`
	Opened  string `json:"opened"`
	Blocked bool   `json:"blocked"`
}

// ARPData is one ARP cache row plus request accounting.
type ARPData struct {
	Entries []ARPEntryData `json:"entries"`
	// RequestsByPID counts outbound ARP requests the kernel observed.
	RequestsByPID map[uint32]uint64 `json:"requests_by_pid"`
}

// ARPEntryData is one cache line.
type ARPEntryData struct {
	IP      string `json:"ip"`
	MAC     string `json:"mac"`
	Learned string `json:"learned"`
}

// DumpRecord is one captured packet rendered for the tool.
type DumpRecord struct {
	At          string `json:"at"`
	Summary     string `json:"summary"`
	Attribution string `json:"attribution"`
}

// PcapData is a base64 pcap blob (tcpdump.pcap).
type PcapData struct {
	Base64 string `json:"pcap_b64"`
	Count  int    `json:"count"`
}

// TelemetryArgs selects the metrics rendering (telemetry.dump).
type TelemetryArgs struct {
	// Format is "prometheus" (default) or "json".
	Format string `json:"format,omitempty"`
}

// TelemetryData carries a rendered metrics dump.
type TelemetryData struct {
	Format  string   `json:"format"`
	Metrics int      `json:"metrics"`
	Layers  []string `json:"layers"`
	Body    string   `json:"body"`
}

// TraceArgs names a packet trace (trace.get); ID 0 means the most recently
// stamped packet.
type TraceArgs struct {
	ID uint64 `json:"id,omitempty"`
}

// TraceData is one packet's rendered lifecycle journey plus the IDs still
// held in the tracer's ring.
type TraceData struct {
	ID        uint64   `json:"id"`
	Available []uint64 `json:"available,omitempty"`
	Rendered  string   `json:"rendered"`
}

// RecoveryData summarizes the daemon's crash-recovery state: the journal,
// the control plane's up/down status, and the last reconciliation report
// (recovery.status).
type RecoveryData struct {
	Down              bool   `json:"down"`
	JournalEntries    int    `json:"journal_entries"`
	Crashes           uint64 `json:"crashes"`
	Restarts          uint64 `json:"restarts"`
	RejectedWhileDown uint64 `json:"rejected_while_down"`

	HasReport    bool     `json:"has_report"`
	Replayed     int      `json:"replayed,omitempty"`
	Rules        int      `json:"rules,omitempty"`
	Conns        int      `json:"conns,omitempty"`
	Stale        int      `json:"stale,omitempty"`
	Divergences  []string `json:"divergences,omitempty"`
	Actions      []string `json:"actions,omitempty"`
	InvariantsOK bool     `json:"invariants_ok"`
	Clean        bool     `json:"clean"`
	RecoveryTime string   `json:"recovery_time,omitempty"`
}

// OverloadData is the overload governor's snapshot: watchdog health,
// admission budgets and counters, and degradation accounting
// (overload.status). Enabled reports whether the daemon runs a governor at
// all — the remaining fields are zero when it does not.
type OverloadData struct {
	Enabled        bool    `json:"enabled"`
	State          string  `json:"state,omitempty"`
	Watching       bool    `json:"watching,omitempty"`
	Transitions    uint64  `json:"transitions,omitempty"`
	Admitted       uint64  `json:"admitted,omitempty"`
	RejectedDDIO   uint64  `json:"rejected_ddio,omitempty"`
	RejectedTenant uint64  `json:"rejected_tenant,omitempty"`
	RejectedLoad   uint64  `json:"rejected_pressure,omitempty"`
	RingBytes      int     `json:"ring_bytes,omitempty"`
	RingBudget     int     `json:"ring_budget_bytes,omitempty"`
	Occupancy      float64 `json:"occupancy_frac,omitempty"`
	FifoFrac       float64 `json:"fifo_frac,omitempty"`
	ShedPackets    uint64  `json:"shed_packets,omitempty"`
	Signals        uint64  `json:"backpressure_signals,omitempty"`
}

// TenantData answers tenant.status: one merged row per tenant combining the
// NIC scheduler's grant counters, the LLC's DDIO partition accounting and
// the governor's per-tenant budgets. Enabled reports whether the daemon runs
// tenant isolation at all — a daemon without it answers Enabled=false and no
// rows rather than erroring, so nnetstat -tenants degrades gracefully.
type TenantData struct {
	Enabled bool        `json:"enabled"`
	Tenants []TenantRow `json:"tenants,omitempty"`
}

// TenantRow mirrors norman.TenantStatus field for field (proto stays free of
// a norman import; the server converts).
type TenantRow struct {
	Tenant      uint32 `json:"tenant"`
	Weight      int    `json:"weight"`
	PipeGrants  uint64 `json:"pipe_grants"`
	DMAGrants   uint64 `json:"dma_grants"`
	PipeWaitNs  uint64 `json:"pipe_wait_ns"`
	DMAWaitNs   uint64 `json:"dma_wait_ns"`
	FifoDrops   uint64 `json:"fifo_drops"`
	DDIOWays    int    `json:"ddio_ways"`
	DDIOHits    uint64 `json:"ddio_hits"`
	DDIOMisses  uint64 `json:"ddio_misses"`
	Conns       int    `json:"conns"`
	RingBytes   int    `json:"ring_bytes"`
	RingBudget  int    `json:"ring_budget_bytes"`
	State       string `json:"state"`
	Transitions uint64 `json:"transitions"`
}

// FlowCacheData answers flowcache.status: the NIC flow cache's global
// lookup/install/evict accounting plus one row per tenant partition. Enabled
// reports whether the daemon runs a flow cache at all — a daemon without one
// answers Enabled=false rather than erroring, so nnetstat -flows degrades
// gracefully.
type FlowCacheData struct {
	Enabled       bool              `json:"enabled"`
	Capacity      int               `json:"capacity,omitempty"`
	Entries       int               `json:"entries,omitempty"`
	Partitioned   bool              `json:"partitioned,omitempty"`
	Hits          uint64            `json:"hits,omitempty"`
	Misses        uint64            `json:"misses,omitempty"`
	Installs      uint64            `json:"installs,omitempty"`
	Evictions     uint64            `json:"evictions,omitempty"`
	Invalidations uint64            `json:"invalidations,omitempty"`
	Denied        uint64            `json:"denied,omitempty"`
	Tenants       []FlowCacheTenRow `json:"tenants,omitempty"`
}

// FlowCacheTenRow is one tenant's partition row within FlowCacheData.
type FlowCacheTenRow struct {
	Tenant   uint32 `json:"tenant"`
	Used     int    `json:"used"`
	Quota    int    `json:"quota"`
	Hits     uint64 `json:"hits"`
	Installs uint64 `json:"installs"`
	Evicts   uint64 `json:"evictions"`
	Denied   uint64 `json:"denied"`
}

// HealthData answers health.status: the NIC hardware-health monitor's
// aggregate event counters plus one row per monitored component. Enabled
// reports whether the daemon runs the monitor at all — a daemon without one
// answers Enabled=false rather than erroring, so nnetstat -health degrades
// gracefully.
type HealthData struct {
	Enabled     bool        `json:"enabled"`
	Watching    bool        `json:"watching,omitempty"`
	Samples     uint64      `json:"samples,omitempty"`
	Quarantines uint64      `json:"quarantines,omitempty"`
	Failovers   uint64      `json:"failovers,omitempty"`
	Failbacks   uint64      `json:"failbacks,omitempty"`
	Probes      uint64      `json:"probes,omitempty"`
	Components  []HealthRow `json:"components,omitempty"`
}

// HealthRow is one monitored component's row within HealthData.
type HealthRow struct {
	Component   string `json:"component"`
	State       string `json:"state"`
	Signals     uint64 `json:"signals"`
	Quarantines uint64 `json:"quarantines"`
	Failovers   uint64 `json:"failovers"`
	Failbacks   uint64 `json:"failbacks"`
}

// UpgradeData answers upgrade.status (and upgrade.start, which replies with
// the post-cutover snapshot): the live-upgrade subsystem's lifecycle phase,
// pipeline generation and event counters. Enabled reports whether the daemon
// runs the subsystem at all — a daemon without it answers Enabled=false
// rather than erroring, so nnetstat -upgrade degrades gracefully.
type UpgradeData struct {
	Enabled        bool   `json:"enabled"`
	Phase          string `json:"phase,omitempty"`
	Generation     uint64 `json:"generation,omitempty"`
	Watching       bool   `json:"watching,omitempty"`
	Upgrades       uint64 `json:"upgrades,omitempty"`
	Commits        uint64 `json:"commits,omitempty"`
	Rollbacks      uint64 `json:"rollbacks,omitempty"`
	CanarySamples  uint64 `json:"canary_samples,omitempty"`
	CanaryBreaches uint64 `json:"canary_breaches,omitempty"`
	WarmEntries    uint64 `json:"warm_entries,omitempty"`
	Adoptions      uint64 `json:"adoptions,omitempty"`
	PauseBuffered  uint64 `json:"pause_buffered,omitempty"`
	PauseDrops     uint64 `json:"pause_drops,omitempty"`
	LastRollback   string `json:"last_rollback,omitempty"`
}

// ShardsData is the engine shard coordinator's snapshot (engine.shards).
// Sharded reports whether the daemon's world runs under a coordinator; an
// unsharded daemon still answers with one synthetic row for its single
// engine so tooling never needs two code paths.
type ShardsData struct {
	Sharded   bool       `json:"sharded"`
	Shards    int        `json:"shards"`
	Buckets   int        `json:"buckets,omitempty"`
	Epoch     string     `json:"epoch,omitempty"`
	Epochs    uint64     `json:"epochs,omitempty"`
	Delivered uint64     `json:"mailbox_delivered,omitempty"`
	Rows      []ShardRow `json:"rows,omitempty"`
}

// ShardRow is one shard's counters within ShardsData.
type ShardRow struct {
	Shard    int    `json:"shard"`
	Events   uint64 `json:"events"`
	MailSent uint64 `json:"mail_sent"`
	MailRecv uint64 `json:"mail_recv"`
	Pending  int    `json:"mail_pending"`
	Stalls   uint64 `json:"stalls"`
}

// Marshal is a helper for building requests.
func Marshal(op string, args interface{}) ([]byte, error) {
	var raw json.RawMessage
	if args != nil {
		b, err := json.Marshal(args)
		if err != nil {
			return nil, err
		}
		raw = b
	}
	return json.Marshal(Request{Op: op, Args: raw})
}
