package ctl

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"

	"norman"
	"norman/internal/sniff"
	"norman/internal/telemetry"
)

// Server exposes a running System over the control socket. All simulation
// access is serialized through one mutex: the discrete-event engine is
// single-threaded by design.
type Server struct {
	mu  sync.Mutex
	sys *norman.System

	// Advance the simulation by this much virtual time per request, so a
	// live normand's world moves while tools observe it.
	StepPerRequest norman.Duration

	capture *norman.Capture
	tcDesc  string

	// Request accounting, exposed through RegisterMetrics as the ctl layer.
	requests uint64
	errors   uint64

	ln     net.Listener
	closed atomic.Bool
}

// NewServer wraps a system.
func NewServer(sys *norman.System) *Server {
	return &Server{sys: sys, StepPerRequest: 5 * norman.Millisecond}
}

// Listen binds the Unix socket (removing a stale one) and serves until the
// listener fails or Close is called. A graceful Close returns nil; any other
// listener error is returned so normand can exit nonzero instead of limping
// on without a control plane.
func (s *Server) Listen(path string) error {
	_ = os.Remove(path)
	ln, err := net.Listen("unix", path)
	if err != nil {
		return fmt.Errorf("ctl: listen %s: %w", path, err)
	}
	s.ln = ln
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return fmt.Errorf("ctl: accept: %w", err)
		}
		go s.serveConn(conn)
	}
}

// Close stops the listener; a Listen blocked in Accept returns nil.
func (s *Server) Close() error {
	s.closed.Store(true)
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var req Request
		resp := Response{}
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			resp.Error = "bad request: " + err.Error()
		} else {
			data, err := s.dispatch(req)
			if err != nil {
				resp.Error = err.Error()
			} else {
				resp.OK = true
				resp.Data = data
			}
		}
		out, err := json.Marshal(resp)
		if err != nil {
			return
		}
		out = append(out, '\n')
		if _, err := conn.Write(out); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req Request) (data json.RawMessage, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests++
	defer func() {
		if err != nil {
			s.errors++
		}
	}()

	// Keep the world moving so tools observe live state.
	if req.Op != OpAdvance {
		s.sys.RunFor(s.StepPerRequest)
	}

	switch req.Op {
	case OpStatus:
		return s.status()
	case OpAdvance:
		var a AdvanceArgs
		if err := json.Unmarshal(req.Args, &a); err != nil {
			return nil, err
		}
		if a.Millis <= 0 {
			a.Millis = 1
		}
		s.sys.RunFor(norman.Duration(a.Millis) * norman.Millisecond)
		return s.status()
	case OpIPTablesAdd:
		var a RuleArgs
		if err := json.Unmarshal(req.Args, &a); err != nil {
			return nil, err
		}
		return nil, s.iptablesAdd(a)
	case OpIPTablesList:
		return marshal(s.renderRules())
	case OpIPTablesFlush:
		return nil, s.sys.IPTablesFlush()
	case OpTCSet:
		var a TCArgs
		if err := json.Unmarshal(req.Args, &a); err != nil {
			return nil, err
		}
		err := s.sys.TCSet(norman.QdiscSpec{
			Kind: a.Kind, Weights: a.Weights,
			RateBps: a.RateBps, BurstBytes: a.BurstBytes, Limit: a.Limit,
		}, a.ClassOfUID)
		if err != nil {
			return nil, err
		}
		s.tcDesc = fmt.Sprintf("qdisc %s weights=%v class_of_uid=%v", a.Kind, a.Weights, a.ClassOfUID)
		return nil, nil
	case OpTCShow:
		if s.tcDesc != "" {
			return marshal(s.tcDesc)
		}
		// No TCSet in this process — but a journal replay may have
		// reinstalled a scheduler; report the live one, not the cache.
		if q := s.sys.Qdisc(); q != nil && q.Name() != "pfifo" {
			return marshal(fmt.Sprintf("qdisc %s (recovered from journal)", q.Name()))
		}
		return marshal("qdisc pfifo (default)")
	case OpDumpStart:
		var a DumpArgs
		if err := json.Unmarshal(req.Args, &a); err != nil {
			return nil, err
		}
		capture, err := s.sys.Tcpdump(a.Expr)
		if err != nil {
			return nil, err
		}
		s.capture = capture
		return nil, nil
	case OpDumpFetch:
		return s.dumpFetch()
	case OpDumpPcap:
		return s.dumpPcap()
	case OpPing:
		var a PingArgs
		if err := json.Unmarshal(req.Args, &a); err != nil {
			return nil, err
		}
		return s.ping(a)
	case OpNetstat:
		return s.netstat()
	case OpARP:
		return s.arp()
	case OpTelemetry:
		var a TelemetryArgs
		if len(req.Args) > 0 {
			if err := json.Unmarshal(req.Args, &a); err != nil {
				return nil, err
			}
		}
		return s.telemetryDump(a)
	case OpTrace:
		var a TraceArgs
		if len(req.Args) > 0 {
			if err := json.Unmarshal(req.Args, &a); err != nil {
				return nil, err
			}
		}
		return s.traceGet(a)
	case OpRecovery:
		return s.recoveryStatus()
	case OpOverload:
		return s.overloadStatus()
	case OpTenants:
		return s.tenantStatus()
	case OpShards:
		return s.shardsStatus()
	case OpFlowCache:
		return s.flowcacheStatus()
	case OpHealth:
		return s.healthStatus()
	case OpUpgradeStart:
		if err := s.sys.StartLiveUpgrade(); err != nil {
			return nil, err
		}
		// Run the world past the cutover so the reply reflects the flip.
		s.sys.RunFor(s.StepPerRequest)
		return s.upgradeStatus()
	case OpUpgradeStatus:
		return s.upgradeStatus()
	default:
		return nil, fmt.Errorf("ctl: unknown op %q", req.Op)
	}
}

func marshal(v interface{}) (json.RawMessage, error) {
	b, err := json.Marshal(v)
	return b, err
}

func (s *Server) status() (json.RawMessage, error) {
	w := s.sys.World()
	used, budget := w.NIC.SRAM()
	return marshal(StatusData{
		Architecture: string(s.sys.ArchitectureName()),
		VirtualTime:  s.sys.Now().String(),
		TxFrames:     w.NIC.TxFrames,
		RxFrames:     w.NIC.RxWire,
		RxDrops: w.NIC.RxDropNoSteer + w.NIC.RxDropRing + w.NIC.RxDropVerdict +
			w.NIC.RxFifoDrop + w.NIC.RxOutageDrop + w.NIC.RxShed + w.NIC.RxPauseDrop,
		SRAMUsed:   used,
		SRAMBudget: budget,
		Conns:      w.NIC.ConnCount(),
	})
}

func (s *Server) iptablesAdd(a RuleArgs) error {
	hook := norman.Output
	if strings.EqualFold(a.Hook, "input") {
		hook = norman.Input
	}
	return s.sys.IPTablesAppend(hook, norman.Rule{
		Proto: a.Proto, SrcNet: a.SrcNet, DstNet: a.DstNet,
		SrcPort: a.SrcPort, DstPort: a.DstPort,
		OwnerUID: a.OwnerUID, OwnerCmd: a.OwnerCmd,
		Action: a.Action,
	})
}

func (s *Server) renderRules() []string {
	list := s.sys.IPTablesList()
	out := make([]string, 0, len(list))
	for _, rs := range list {
		a := rs.Rule
		line := fmt.Sprintf("-A %s", strings.ToUpper(rs.Hook))
		if a.Proto != "" {
			line += " -p " + a.Proto
		}
		if a.SrcNet != "" {
			line += " -s " + a.SrcNet
		}
		if a.DstNet != "" {
			line += " -d " + a.DstNet
		}
		if a.SrcPort != 0 {
			line += fmt.Sprintf(" --sport %d", a.SrcPort)
		}
		if a.DstPort != 0 {
			line += fmt.Sprintf(" --dport %d", a.DstPort)
		}
		if a.OwnerUID != nil {
			line += fmt.Sprintf(" -m owner --uid-owner %d", *a.OwnerUID)
		}
		if a.OwnerCmd != "" {
			line += " --cmd-owner " + a.OwnerCmd
		}
		line += " -j " + strings.ToUpper(a.Action)
		line += fmt.Sprintf("   [%d pkts]", rs.Hits)
		out = append(out, line)
	}
	return out
}

func (s *Server) dumpFetch() (json.RawMessage, error) {
	if s.capture == nil {
		return nil, fmt.Errorf("ctl: no capture running (tcpdump.start first)")
	}
	recs := s.capture.Records()
	out := make([]DumpRecord, 0, len(recs))
	for _, r := range recs {
		out = append(out, DumpRecord{
			At:          r.At.String(),
			Summary:     summarize(r),
			Attribution: r.Attribution(),
		})
	}
	return marshal(out)
}

func (s *Server) dumpPcap() (json.RawMessage, error) {
	if s.capture == nil {
		return nil, fmt.Errorf("ctl: no capture running (tcpdump.start first)")
	}
	var buf strings.Builder
	enc := base64.NewEncoder(base64.StdEncoding, &buf)
	recs := s.capture.Records()
	if err := sniff.WritePcap(enc, recs); err != nil {
		return nil, err
	}
	if err := enc.Close(); err != nil {
		return nil, err
	}
	return marshal(PcapData{Base64: buf.String(), Count: len(recs)})
}

func summarize(r sniff.Record) string {
	p := r.Pkt
	switch {
	case p.ARP != nil:
		op := "request"
		if p.ARP.Op == 2 {
			op = "reply"
		}
		return fmt.Sprintf("ARP %s who-has %s tell %s", op, p.ARP.TargetIP, p.ARP.SenderIP)
	case p.UDP != nil:
		return fmt.Sprintf("UDP %s:%d > %s:%d len %d",
			p.IP.Src, p.UDP.SrcPort, p.IP.Dst, p.UDP.DstPort, p.PayloadLen)
	case p.TCP != nil:
		return fmt.Sprintf("TCP %s:%d > %s:%d len %d",
			p.IP.Src, p.TCP.SrcPort, p.IP.Dst, p.TCP.DstPort, p.PayloadLen)
	case p.IP != nil:
		return fmt.Sprintf("IP %s > %s proto %d", p.IP.Src, p.IP.Dst, p.IP.Proto)
	default:
		return fmt.Sprintf("frame %dB", p.FrameLen())
	}
}

// ping fires count echoes and runs virtual time until they resolve.
func (s *Server) ping(a PingArgs) (json.RawMessage, error) {
	if a.Count <= 0 {
		a.Count = 3
	}
	if a.Dst == "" {
		a.Dst = "10.0.0.2"
	}
	data := PingData{}
	for i := 0; i < a.Count; i++ {
		data.Sent++
		err := s.sys.Ping(a.Dst, func(rtt norman.Duration, ok bool) {
			if ok {
				data.Received++
				data.RTTs = append(data.RTTs, rtt.String())
			}
		})
		if err != nil {
			return nil, err
		}
		// Run virtual time forward far enough for a reply or timeout.
		s.sys.RunFor(150 * norman.Millisecond)
	}
	return marshal(data)
}

func (s *Server) netstat() (json.RawMessage, error) {
	rows := s.sys.Netstat()
	out := make([]NetstatData, 0, len(rows))
	for _, r := range rows {
		out = append(out, NetstatData{
			ConnID: r.ConnID, Flow: r.Flow, PID: r.PID, UID: r.UID,
			Command: r.Command, Opened: r.Opened.String(),
		})
	}
	return marshal(out)
}

// telemetryDump renders the system's metrics registry (telemetry.dump).
func (s *Server) telemetryDump(a TelemetryArgs) (json.RawMessage, error) {
	reg := s.sys.Telemetry()
	if reg == nil {
		return nil, fmt.Errorf("ctl: telemetry not enabled on this daemon")
	}
	format := a.Format
	if format == "" {
		format = "prometheus"
	}
	var body string
	switch format {
	case "prometheus":
		body = reg.RenderPrometheus()
	case "json":
		body = reg.RenderJSON()
	default:
		return nil, fmt.Errorf("ctl: unknown telemetry format %q (want prometheus or json)", a.Format)
	}
	return marshal(TelemetryData{
		Format:  format,
		Metrics: reg.Len(),
		Layers:  reg.Layers(),
		Body:    body,
	})
}

// traceGet renders one packet's lifecycle journey (trace.get).
func (s *Server) traceGet(a TraceArgs) (json.RawMessage, error) {
	tr := s.sys.Tracer()
	if tr == nil {
		return nil, fmt.Errorf("ctl: tracing not enabled on this daemon")
	}
	ids := tr.IDs()
	if a.ID == 0 {
		if len(ids) == 0 {
			return nil, fmt.Errorf("ctl: no packets traced yet")
		}
		a.ID = ids[len(ids)-1]
	}
	return marshal(TraceData{ID: a.ID, Available: ids, Rendered: tr.Format(a.ID)})
}

// recoveryStatus reports the journal, outage state and last reconciliation
// (recovery.status).
func (s *Server) recoveryStatus() (json.RawMessage, error) {
	rec := s.sys.Recovery()
	if rec == nil {
		return nil, fmt.Errorf("ctl: recovery not enabled on this daemon")
	}
	data := RecoveryData{
		Down:              rec.Down(),
		JournalEntries:    rec.Journal().Len(),
		Crashes:           rec.Crashes,
		Restarts:          rec.Restarts,
		RejectedWhileDown: rec.RejectedWhileDown,
	}
	if rep := rec.LastReport(); rep != nil {
		data.HasReport = true
		data.Replayed = rep.Entries
		data.Rules = rep.Rules
		data.Conns = rep.Conns
		data.Stale = rep.Stale
		data.Divergences = rep.Divergences
		for _, a := range rep.Actions {
			data.Actions = append(data.Actions, a.Kind+": "+a.Detail)
		}
		data.InvariantsOK = rep.InvariantsOK
		data.Clean = rep.Clean
		data.RecoveryTime = rep.RecoveryTime.String()
	}
	return marshal(data)
}

// overloadStatus reports the overload governor's watchdog state, admission
// budgets and degradation counters (overload.status). A daemon without a
// governor answers Enabled=false rather than erroring, so nnetstat -pressure
// degrades gracefully.
func (s *Server) overloadStatus() (json.RawMessage, error) {
	gov := s.sys.Overload()
	if gov == nil {
		return marshal(OverloadData{Enabled: false})
	}
	snap := gov.Snapshot()
	return marshal(OverloadData{
		Enabled:        true,
		State:          snap.State,
		Watching:       snap.Watching,
		Transitions:    snap.Transitions,
		Admitted:       snap.Admitted,
		RejectedDDIO:   snap.RejectedDDIO,
		RejectedTenant: snap.RejectedTenant,
		RejectedLoad:   snap.RejectedLoad,
		RingBytes:      snap.RingBytes,
		RingBudget:     snap.RingBudget,
		Occupancy:      snap.Occupancy,
		FifoFrac:       snap.FifoFrac,
		ShedPackets:    snap.ShedPackets,
		Signals:        snap.Signals,
	})
}

// tenantStatus reports the merged per-tenant isolation rows (tenant.status).
// A daemon without tenant isolation answers Enabled=false rather than
// erroring, so nnetstat -tenants degrades gracefully.
func (s *Server) tenantStatus() (json.RawMessage, error) {
	if !s.sys.TenantIsolationEnabled() {
		return marshal(TenantData{Enabled: false})
	}
	rows := s.sys.TenantsStatus()
	data := TenantData{Enabled: true, Tenants: make([]TenantRow, 0, len(rows))}
	for _, r := range rows {
		data.Tenants = append(data.Tenants, TenantRow{
			Tenant:      r.Tenant,
			Weight:      r.Weight,
			PipeGrants:  r.PipeGrants,
			DMAGrants:   r.DMAGrants,
			PipeWaitNs:  r.PipeWaitNs,
			DMAWaitNs:   r.DMAWaitNs,
			FifoDrops:   r.FifoDrops,
			DDIOWays:    r.DDIOWays,
			DDIOHits:    r.DDIOHits,
			DDIOMisses:  r.DDIOMisses,
			Conns:       r.Conns,
			RingBytes:   r.RingBytes,
			RingBudget:  r.RingBudget,
			State:       r.State,
			Transitions: r.Transitions,
		})
	}
	return marshal(data)
}

// flowcacheStatus reports the NIC flow cache's accounting and per-tenant
// partition rows (flowcache.status). A daemon without a flow cache answers
// Enabled=false rather than erroring, so nnetstat -flows degrades gracefully.
func (s *Server) flowcacheStatus() (json.RawMessage, error) {
	st := s.sys.FlowCacheStatus()
	if !st.Enabled {
		return marshal(FlowCacheData{Enabled: false})
	}
	data := FlowCacheData{
		Enabled:       true,
		Capacity:      st.Capacity,
		Entries:       st.Entries,
		Partitioned:   st.Partitioned,
		Hits:          st.Hits,
		Misses:        st.Misses,
		Installs:      st.Installs,
		Evictions:     st.Evictions,
		Invalidations: st.Invalidations,
		Denied:        st.Denied,
	}
	for _, t := range st.Tenants {
		data.Tenants = append(data.Tenants, FlowCacheTenRow{
			Tenant: t.Tenant, Used: t.Used, Quota: t.Quota,
			Hits: t.Hits, Installs: t.Installs, Evicts: t.Evicts, Denied: t.Denied,
		})
	}
	return marshal(data)
}

// healthStatus reports the NIC hardware-health monitor's aggregate counters
// and per-component state rows (health.status). A daemon without the monitor
// answers Enabled=false rather than erroring, so nnetstat -health degrades
// gracefully.
func (s *Server) healthStatus() (json.RawMessage, error) {
	st := s.sys.HealthStatus()
	if !st.Enabled {
		return marshal(HealthData{Enabled: false})
	}
	data := HealthData{
		Enabled:     true,
		Watching:    st.Watching,
		Samples:     st.Samples,
		Quarantines: st.Quarantines,
		Failovers:   st.Failovers,
		Failbacks:   st.Failbacks,
		Probes:      st.Probes,
	}
	for _, c := range st.Components {
		data.Components = append(data.Components, HealthRow{
			Component:   c.Component,
			State:       c.State,
			Signals:     c.Signals,
			Quarantines: c.Quarantines,
			Failovers:   c.Failovers,
			Failbacks:   c.Failbacks,
		})
	}
	return marshal(data)
}

// upgradeStatus reports the live-upgrade subsystem's lifecycle phase,
// generation and event counters (upgrade.status). A daemon without the
// subsystem answers Enabled=false rather than erroring, so nnetstat -upgrade
// degrades gracefully.
func (s *Server) upgradeStatus() (json.RawMessage, error) {
	st := s.sys.UpgradeStatus()
	if !st.Enabled {
		return marshal(UpgradeData{Enabled: false})
	}
	return marshal(UpgradeData{
		Enabled:        true,
		Phase:          st.Phase,
		Generation:     st.Generation,
		Watching:       st.Watching,
		Upgrades:       st.Upgrades,
		Commits:        st.Commits,
		Rollbacks:      st.Rollbacks,
		CanarySamples:  st.CanarySamples,
		CanaryBreaches: st.CanaryBreaches,
		WarmEntries:    st.WarmEntries,
		Adoptions:      st.Adoptions,
		PauseBuffered:  st.PauseBuffered,
		PauseDrops:     st.PauseDrops,
		LastRollback:   st.LastRollback,
	})
}

// shardsStatus reports the engine shard coordinator's counters
// (engine.shards). An unsharded daemon answers Sharded=false with one
// synthetic row for its single engine rather than erroring, so
// nnetstat -shards degrades gracefully.
func (s *Server) shardsStatus() (json.RawMessage, error) {
	st := s.sys.ShardStats()
	data := ShardsData{
		Sharded:   st.Sharded,
		Shards:    st.Shards,
		Buckets:   st.Buckets,
		Epochs:    st.Epochs,
		Delivered: st.Delivered,
		Rows:      make([]ShardRow, len(st.Rows)),
	}
	if st.Sharded {
		data.Epoch = st.Epoch.String()
	}
	for i, r := range st.Rows {
		data.Rows[i] = ShardRow{
			Shard:    r.Shard,
			Events:   r.Events,
			MailSent: r.MailSent,
			MailRecv: r.MailRecv,
			Pending:  r.Pending,
			Stalls:   r.Stalls,
		}
	}
	return marshal(data)
}

// RegisterMetrics exposes the control plane's own request accounting on a
// registry — the ctl layer of the unified telemetry schema.
func (s *Server) RegisterMetrics(r *telemetry.Registry, labels telemetry.Labels) {
	r.Counter(telemetry.Desc{Layer: "ctl", Name: "requests", Help: "control-socket requests dispatched", Unit: "requests"},
		labels, func() uint64 { return s.requests })
	r.Counter(telemetry.Desc{Layer: "ctl", Name: "errors", Help: "control-socket requests that returned an error", Unit: "requests"},
		labels, func() uint64 { return s.errors })
}

func (s *Server) arp() (json.RawMessage, error) {
	kern := s.sys.World().Kern
	data := ARPData{RequestsByPID: kern.ARP().RequestsSeen}
	for _, e := range kern.ARP().Entries() {
		data.Entries = append(data.Entries, ARPEntryData{
			IP: e.IP.String(), MAC: e.MAC.String(), Learned: e.Learned.String(),
		})
	}
	return marshal(data)
}
