package ctl

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"norman"
)

// TestDialWithRetriesThroughOutage: the daemon comes up only after the
// client's first attempts fail — the retry/backoff schedule must ride the
// outage out and connect, rather than give up on the first refused dial.
func TestDialWithRetriesThroughOutage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ctl.sock")

	srv := NewServer(norman.New(norman.KOPI))
	go func() {
		time.Sleep(150 * time.Millisecond)
		_ = srv.Listen(path)
	}()
	t.Cleanup(func() { _ = srv.Close() })

	c, err := DialWith(path, DialConfig{
		Timeout:     time.Second,
		Retries:     6,
		BackoffBase: 50 * time.Millisecond,
		BackoffMax:  200 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatalf("dial through outage: %v", err)
	}
	defer c.Close()
	var st StatusData
	if err := c.Call(OpStatus, nil, &st); err != nil {
		t.Fatal(err)
	}
}

// TestDialGivesUpBounded: with no daemon ever appearing, DialWith fails after
// its retry budget instead of hanging, and the error says how hard it tried.
func TestDialGivesUpBounded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.sock")
	start := time.Now()
	_, err := DialWith(path, DialConfig{
		Timeout:     200 * time.Millisecond,
		Retries:     2,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("dial to a dead socket must fail")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("give-up took %v", elapsed)
	}
}

// TestCallTimesOutOnUnresponsiveServer: a listener that accepts but never
// answers must cost the client RequestTimeout, not a wedged tool.
func TestCallTimesOutOnUnresponsiveServer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mute.sock")
	ln, err := net.Listen("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Read and drop everything; never reply.
			go func(c net.Conn) {
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	c, err := DialWith(path, DialConfig{RequestTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	err = c.Call(OpStatus, nil, nil)
	if err == nil {
		t.Fatal("call to a mute server must fail")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("want a timeout error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

// TestListenReturnsNilOnClose: a graceful shutdown is not an error — normand
// distinguishes "operator stopped me" (exit 0) from a listener failure
// (exit nonzero).
func TestListenReturnsNilOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "close.sock")
	srv := NewServer(norman.New(norman.KOPI))

	done := make(chan error, 1)
	go func() { done <- srv.Listen(path) }()

	// Wait for the socket to exist, then close gracefully.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("socket never appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful close must return nil, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Listen did not return after Close")
	}
}
