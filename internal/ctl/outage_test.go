package ctl

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"norman"
)

// TestDialWithRetriesThroughOutage: the daemon comes up only after the
// client's first attempts fail — the retry/backoff schedule must ride the
// outage out and connect, rather than give up on the first refused dial.
func TestDialWithRetriesThroughOutage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ctl.sock")

	srv := NewServer(norman.New(norman.KOPI))
	go func() {
		time.Sleep(150 * time.Millisecond)
		_ = srv.Listen(path)
	}()
	t.Cleanup(func() { _ = srv.Close() })

	c, err := DialWith(path, DialConfig{
		Timeout:     time.Second,
		Retries:     6,
		BackoffBase: 50 * time.Millisecond,
		BackoffMax:  200 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatalf("dial through outage: %v", err)
	}
	defer c.Close()
	var st StatusData
	if err := c.Call(OpStatus, nil, &st); err != nil {
		t.Fatal(err)
	}
}

// TestDialGivesUpBounded: with no daemon ever appearing, DialWith fails after
// its retry budget instead of hanging, and the error says how hard it tried.
func TestDialGivesUpBounded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.sock")
	start := time.Now()
	_, err := DialWith(path, DialConfig{
		Timeout:     200 * time.Millisecond,
		Retries:     2,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("dial to a dead socket must fail")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("give-up took %v", elapsed)
	}
}

// TestCallTimesOutOnUnresponsiveServer: a listener that accepts but never
// answers must cost the client RequestTimeout, not a wedged tool.
func TestCallTimesOutOnUnresponsiveServer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mute.sock")
	ln, err := net.Listen("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Read and drop everything; never reply.
			go func(c net.Conn) {
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	c, err := DialWith(path, DialConfig{RequestTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	err = c.Call(OpStatus, nil, nil)
	if err == nil {
		t.Fatal("call to a mute server must fail")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("want a timeout error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

// TestUnreachableError: a dead socket surfaces as the typed Unreachable
// error carrying the address, so every tool can print the one-line
// "normand unreachable at <addr>" diagnosis.
func TestUnreachableError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gone.sock")
	_, err := DialWith(path, DialConfig{
		Timeout: 100 * time.Millisecond, Retries: 1,
		BackoffBase: 5 * time.Millisecond, BackoffMax: 10 * time.Millisecond,
	})
	var u *Unreachable
	if !errors.As(err, &u) {
		t.Fatalf("want *Unreachable, got %T: %v", err, err)
	}
	if u.Addr != path || u.Attempts != 2 {
		t.Fatalf("Unreachable = %+v", u)
	}
}

// dyingListener accepts connections and immediately closes them — the
// observable behavior of a daemon that dies right after accept.
func dyingListener(t *testing.T, path string) net.Listener {
	t.Helper()
	ln, err := net.Listen("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	return ln
}

// TestCallReconnectsAfterDaemonRestart: the client's established connection
// dies (daemon restarted underneath the tool); an idempotent call must
// transparently redial the socket and retry once instead of failing.
func TestCallReconnectsAfterDaemonRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "restart.sock")
	ln := dyingListener(t, path)

	c, err := DialWith(path, DialConfig{
		Timeout: time.Second, Retries: 4,
		BackoffBase: 20 * time.Millisecond, BackoffMax: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The daemon "restarts": the dying incarnation goes away and a real
	// server takes over the same socket.
	ln.Close()
	srv := NewServer(norman.New(norman.KOPI))
	go func() { _ = srv.Listen(path) }()
	t.Cleanup(func() { _ = srv.Close() })

	var st StatusData
	if err := c.Call(OpStatus, nil, &st); err != nil {
		t.Fatalf("idempotent call must survive the restart: %v", err)
	}
	if st.Architecture != "kopi" {
		t.Fatalf("status = %+v", st)
	}
}

// TestCallDoesNotRetryMutations: the same broken-connection scenario on a
// mutating op must surface the error — the client cannot know whether the
// dead daemon applied the mutation, so replaying it is not safe.
func TestCallDoesNotRetryMutations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mut.sock")
	ln := dyingListener(t, path)

	c, err := DialWith(path, DialConfig{
		Timeout: time.Second, Retries: 4,
		BackoffBase: 20 * time.Millisecond, BackoffMax: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ln.Close()
	srv := NewServer(norman.New(norman.KOPI))
	go func() { _ = srv.Listen(path) }()
	t.Cleanup(func() { _ = srv.Close() })

	err = c.Call(OpIPTablesAdd, RuleArgs{Hook: "OUTPUT", Action: "drop"}, nil)
	if err == nil {
		t.Fatal("mutation on a broken connection must not be silently retried")
	}
	if !errors.Is(err, errBrokenConn) {
		t.Fatalf("want the broken-connection error surfaced, got %v", err)
	}
}

// TestRecoveryStatusOp: the recovery.status op reports the journal and the
// last reconciliation over the wire.
func TestRecoveryStatusOp(t *testing.T) {
	sys := norman.New(norman.KOPI)
	sys.EnableRecovery()
	srv := NewServer(sys)
	path := filepath.Join(t.TempDir(), "rec.sock")
	go func() { _ = srv.Listen(path) }()
	t.Cleanup(func() { _ = srv.Close() })

	c, err := DialWith(path, DialConfig{Timeout: time.Second, Retries: 4,
		BackoffBase: 20 * time.Millisecond, BackoffMax: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var data RecoveryData
	if err := c.Call(OpRecovery, nil, &data); err != nil {
		t.Fatal(err)
	}
	if data.Down || data.HasReport {
		t.Fatalf("fresh daemon recovery status = %+v", data)
	}
	if err := c.Call(OpIPTablesAdd, RuleArgs{Hook: "OUTPUT", DstPort: 9999, Action: "drop"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Call(ctlOpRecoveryRefresh, nil, &data); err == nil {
		t.Fatal("unknown op must error")
	}
	if err := c.Call(OpRecovery, nil, &data); err != nil {
		t.Fatal(err)
	}
	if data.JournalEntries == 0 {
		t.Fatalf("journaled mutation must show up: %+v", data)
	}
}

const ctlOpRecoveryRefresh = "recovery.refresh" // deliberately unknown

// TestListenReturnsNilOnClose: a graceful shutdown is not an error — normand
// distinguishes "operator stopped me" (exit 0) from a listener failure
// (exit nonzero).
func TestListenReturnsNilOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "close.sock")
	srv := NewServer(norman.New(norman.KOPI))

	done := make(chan error, 1)
	go func() { done <- srv.Listen(path) }()

	// Wait for the socket to exist, then close gracefully.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("socket never appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful close must return nil, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Listen did not return after Close")
	}
}
