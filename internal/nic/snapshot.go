package nic

import (
	"fmt"
	"sort"

	"norman/internal/overlay"
	"norman/internal/packet"
	"norman/internal/qos"
	"norman/internal/sim"
)

// ConfigSnapshot is the whole-config analogue of the per-pipeline lastGood
// program: everything the control plane has programmed into the NIC, frozen
// at one instant. It is what survives a control-plane crash — the NIC keeps
// executing it — and what the crash reconciler restores from when live NIC
// state has diverged from journaled intent.
type ConfigSnapshot struct {
	Ingress     *overlay.Program
	Egress      *overlay.Program
	Scheduler   qos.Qdisc
	Classifier  func(*packet.Packet) uint32
	Steering    map[packet.FlowKey]uint64
	DefaultConn uint64
	TakenAt     sim.Time
}

// SnapshotConfig captures the NIC's current control-plane-visible
// configuration. The steering table is copied; programs, scheduler and
// classifier are shared references (they are immutable or owned by the
// control plane).
func (n *NIC) SnapshotConfig(now sim.Time) *ConfigSnapshot {
	s := &ConfigSnapshot{
		Scheduler:   n.sched,
		Classifier:  n.classifier,
		Steering:    make(map[packet.FlowKey]uint64, len(n.steering)),
		DefaultConn: n.defaultConn,
		TakenAt:     now,
	}
	if n.ingress != nil {
		s.Ingress = n.ingress.Program()
	}
	if n.egress != nil {
		s.Egress = n.egress.Program()
	}
	for k, v := range n.steering {
		s.Steering[k] = v
	}
	return s
}

// CommitConfig marks the current configuration known-good. The control
// plane calls it after each successful mutation, so the snapshot always
// reflects the last state that was demonstrably installed and running.
func (n *NIC) CommitConfig(now sim.Time) { n.lastGoodCfg = n.SnapshotConfig(now) }

// LastGoodConfig returns the most recent committed snapshot, nil if the
// control plane never committed one.
func (n *NIC) LastGoodConfig() *ConfigSnapshot { return n.lastGoodCfg }

// RestoreConfig reprograms the NIC from a snapshot: both pipeline programs
// (loaded or unloaded to match), scheduler, classifier, default conn, and
// every steering entry whose connection still exists. It returns the summed
// virtual program-load time. Steering entries for vanished connections are
// skipped with an error naming them — the reconciler decides whether that
// is expected (closed conn) or a divergence.
func (n *NIC) RestoreConfig(s *ConfigSnapshot) (sim.Duration, error) {
	var total sim.Duration
	var firstErr error
	progs := [2]*overlay.Program{s.Ingress, s.Egress}
	for dir := Ingress; dir <= Egress; dir++ {
		p := progs[dir]
		if p == nil {
			n.UnloadProgram(dir)
			continue
		}
		_, load, err := n.LoadProgram(dir, p)
		total += load
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("nic: restore %v program: %w", dir, err)
		}
	}
	n.sched = s.Scheduler
	n.classifier = s.Classifier
	n.defaultConn = s.DefaultConn

	// Deterministic order: map iteration must not decide which steering
	// entry wins SRAM on a tight budget.
	keys := make([]packet.FlowKey, 0, len(s.Steering))
	for k := range s.Steering {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return flowLess(keys[i], keys[j]) })
	for _, k := range keys {
		id := s.Steering[k]
		if _, ok := n.conns[id]; !ok {
			if firstErr == nil {
				firstErr = fmt.Errorf("nic: restore steering: conn %d gone", id)
			}
			continue
		}
		if err := n.SteerFlow(k, id); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("nic: restore steering: %w", err)
		}
	}
	return total, firstErr
}

// flowLess orders flow keys lexicographically for deterministic restores.
func flowLess(a, b packet.FlowKey) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	return a.Proto < b.Proto
}
