package nic

import (
	"fmt"

	"norman/internal/mem"
	"norman/internal/overlay"
	"norman/internal/packet"
	"norman/internal/sim"
)

// pipeOccupancy is the pipeline's per-frame occupancy: the datapath is twice
// wire-width, so the pipeline itself never throttles below line rate; overlay
// programs add latency but, being pipelined, no occupancy (§4.1's on-path
// FPGA assumption — this is the charitable hardware model, and E1/E4 verify
// the consequence that interposition costs latency, not throughput).
func (n *NIC) pipeOccupancy(frameLen int) sim.Duration {
	occ := sim.PerByte(frameLen, 2*n.model.WireBW)
	if min := n.model.NICCycles(1); occ < min {
		occ = min
	}
	return occ
}

// dmaCost returns the DMA engine occupancy for moving one descriptor plus
// frameLen payload bytes between host memory and the NIC.
//
// Payload moves with non-allocating streaming writes/reads (how high-rate
// NICs are configured to avoid flooding the LLC), so it costs plain PCIe
// bandwidth. Descriptor ring slots are the DDIO-cached state: on RX the NIC
// must *read* the posted descriptor (to learn the buffer address) and write
// the completion back, so a descriptor that has fallen out of the DDIO ways
// stalls the engine on a DRAM round trip plus the completion writeback.
// Once the active ring working set (connections × ring slots × 64B)
// outgrows the DDIO share of the LLC, every packet pays this — which is the
// paper's >1024-connection cliff (E3). On TX the descriptor read is
// prefetchable ahead of need (the doorbell announces it), so misses cost
// nothing extra.
func (n *NIC) dmaCost(c *Conn, ring *mem.Ring, index uint64, frameLen int, rx bool) sim.Duration {
	cost := n.model.DMA(64 + frameLen)
	if n.llc == nil {
		return cost
	}
	var descHit bool
	if n.llc.Partitioned() {
		// Per-tenant DDIO partition: this tenant's descriptor lines compete
		// only inside its own ways, so a neighbor's ring footprint cannot
		// evict them.
		descHit = n.llc.DMAAccessTenant(ring.SlotAddr(index), c.Meta.Tenant)
	} else {
		descHit = n.llc.DMAAccess(ring.SlotAddr(index))
	}
	if descHit {
		n.DMADescHit++
	} else {
		n.DMADescMiss++
		if rx {
			// A cold posted-descriptor read is a dependent DRAM round
			// trip the engine cannot overlap (it needs the buffer address
			// before it can write), plus the completion writeback.
			cost += sim.Duration(n.model.DRAMAccess).Scale(2.5)
		}
	}
	return cost
}

// stamp applies the connection's kernel-programmed metadata to a packet.
// This is the NIC-resident process view: only connections opened through the
// kernel control plane carry trusted metadata. Packets that arrive already
// trusted (stamped by the in-kernel or sidecar dataplane before reaching a
// kernel-owned NIC queue) keep their attribution — the NIC never downgrades
// a privileged stamp, it only adds one where the connection context has it.
func stamp(c *Conn, p *packet.Packet, now sim.Time) {
	if c.Meta.TrustedMeta || !p.Meta.TrustedMeta {
		p.Meta.UID = c.Meta.UID
		p.Meta.PID = c.Meta.PID
		p.Meta.Command = c.Meta.Command
		p.Meta.CommandID = c.Meta.CommandID
		p.Meta.ConnID = c.ID
		p.Meta.Tenant = c.Meta.Tenant
		p.Meta.TrustedMeta = c.Meta.TrustedMeta
	}
	p.Meta.Enqueued = now
}

// DoorbellTx is the MMIO doorbell: the application (or kernel driver) has
// published descriptors in c's TX ring. The NIC drains the ring through the
// egress pipeline. The caller accounts its own MMIO write cost; everything
// from the doorbell onward is NIC time.
func (n *NIC) DoorbellTx(c *Conn) {
	if c.txDraining {
		return // drain already in flight; it will pick up new descriptors
	}
	c.txDraining = true
	n.drainTx(c)
}

func (n *NIC) drainTx(c *Conn) {
	now := n.eng.Now()
	if c.TX.Empty() {
		c.txDraining = false
		if c.NotifyTx {
			n.pushNotify(c, mem.NotifyTxDrained, now)
		}
		return
	}
	if c.rlRate > 0 {
		// Per-connection pacing: fetch the next descriptor only when the
		// token bucket covers the head frame.
		head, err := c.TX.Peek()
		if err == nil {
			if now > c.rlLast {
				c.rlTokens += now.Sub(c.rlLast).Seconds() * c.rlRate
				if c.rlTokens > c.rlBurst {
					c.rlTokens = c.rlBurst
				}
				c.rlLast = now
			}
			need := float64(head.Pkt.FrameLen())
			if c.rlTokens < need {
				if !c.rlWaiting {
					c.rlWaiting = true
					// The extra nanosecond absorbs float truncation; a
					// zero wait would respin at the same instant forever.
					wait := sim.Duration((need-c.rlTokens)/c.rlRate*float64(sim.Second)) + sim.Nanosecond
					n.eng.After(wait, func() {
						c.rlWaiting = false
						n.drainTx(c)
					})
				}
				return
			}
		}
	}
	if n.txInflight >= n.txWindow {
		// NIC staging buffer full: stall this queue until a slot frees.
		// txDraining stays set so doorbells do not start a second chain.
		if !c.txStalled {
			c.txStalled = true
			n.txStalled = append(n.txStalled, c)
		}
		return
	}
	n.txInflight++
	index := c.TX.Tail()
	d, err := c.TX.Pop()
	if err != nil {
		c.txDraining = false
		n.txInflight--
		return
	}
	p := d.Pkt
	frame := p.FrameLen()
	if n.tracer != nil {
		n.trace(p, now, "ring", "tx_dequeue", fmt.Sprintf("conn=%d slot=%d", c.ID, index))
	}
	if c.rlRate > 0 {
		c.rlTokens -= float64(frame)
	}

	if n.tsched != nil {
		// Tenant-scheduled dataplane: the descriptor fetch queues on the
		// tenant's DMA DRR ring instead of FIFO at the engine; the drain
		// chain resumes when the grant is served (tenant.go).
		n.tsched.DMA.Request(grant{kind: reqTxFetch, c: c, p: p, index: index,
			frame: frame, est: n.model.DMA(64 + frame), prod: d.Produced})
		return
	}

	// Fetch descriptor + payload over PCIe. The fetch engine is pipelined:
	// the next descriptor is fetched as soon as the DMA engine frees up,
	// while this packet rides its own latency chain through the pipeline.
	_, fetchDone := n.dma.Acquire(now, n.dmaCost(c, c.TX, index, frame, false))
	n.eng.At(fetchDone, func() { n.drainTx(c) })
	arrive := fetchDone.Add(n.model.DMALatency)

	n.eng.At(arrive, func() { n.txArrive(c, p, frame, d.Produced) })
}

// txArrive is the egress continuation once a fetched descriptor's payload has
// crossed PCIe: outage check, metadata stamp, then the pipeline — directly on
// the unscheduled path, via the tenant pipeline DRR on the scheduled one.
func (n *NIC) txArrive(c *Conn, p *packet.Packet, frame int, produced sim.Time) {
	now := n.eng.Now()
	if n.Down(now) {
		n.TxOutageDrop++ // dataplane outage: frame lost, typed as such
		n.txSlotFree()
		return
	}
	stamp(c, p, produced)
	if n.tsched != nil {
		n.tsched.Pipe.Request(grant{kind: reqTxPipe, c: c, p: p, frame: frame,
			est: n.pipeOccupancy(frame)})
		return
	}
	_, pipeDone := n.pipeline.Acquire(now, n.pipeOccupancy(frame))
	lat := sim.Duration(n.model.NICPipeline)
	if n.egress != nil {
		verdict, cycles, trap := n.egress.Run(p, env{n: n, now: now, c: c})
		if trap != nil {
			if n.tracer != nil {
				n.trace(p, now, "nic", "trap_fallback", "pipeline=egress: "+trap.Error())
			}
			verdict, cycles = n.trapFallback(Egress, p, env{n: n, now: now, c: c})
		}
		lat += n.model.NICCycles(cycles)
		if n.tracer != nil {
			n.trace(p, now, "nic", "pipeline_egress", fmt.Sprintf("verdict=%v cycles=%d", verdict, cycles))
		}
		if verdict == overlay.VerdictDrop {
			n.TxDropVerdict++
			n.txSlotFree()
			return
		}
	}
	n.eng.At(pipeDone.Add(lat), func() { n.txEmit(c, p) })
}

// txEmit hands a pipeline-approved frame onward: TSO segmentation when
// configured, otherwise straight to the scheduler/wire.
func (n *NIC) txEmit(c *Conn, p *packet.Packet) {
	// TSO: the pipeline cuts oversized TCP segments to wire MSS.
	if c.tsoMSS > 0 && p.TCP != nil && p.PayloadLen > c.tsoMSS {
		// The super-segment holds one staging slot but produces
		// several wire frames, each of which releases one slot on
		// its way out (directly or via the scheduler hand-off);
		// pre-charge the difference so accounting balances.
		nSegs := (p.PayloadLen + c.tsoMSS - 1) / c.tsoMSS
		n.txInflight += nSegs - 1
		for off := 0; off < p.PayloadLen; off += c.tsoMSS {
			seg := p.Clone()
			seg.TCP.Seq = p.TCP.Seq + uint32(off)
			seg.PayloadLen = min(c.tsoMSS, p.PayloadLen-off)
			seg.Payload = nil
			n.sendToWire(seg, c)
		}
		return
	}
	n.sendToWire(p, c)
}

// txSlotFree releases one staging-buffer slot and resumes a stalled queue.
// The stall queue pops by copy+truncate so the backing array is reused and
// never retains pointers to connections already resumed (a `q = q[1:]`
// re-slice would keep every popped *Conn reachable for the array's
// lifetime).
func (n *NIC) txSlotFree() {
	n.txInflight--
	for len(n.txStalled) > 0 {
		c := n.txStalled[0]
		last := len(n.txStalled) - 1
		copy(n.txStalled, n.txStalled[1:])
		n.txStalled[last] = nil
		n.txStalled = n.txStalled[:last]
		c.txStalled = false
		if c.txDraining {
			n.drainTx(c)
			return
		}
	}
}

// sendToWire hands a pipeline-approved frame to the scheduler (or straight
// to the wire when no qdisc is installed).
func (n *NIC) sendToWire(p *packet.Packet, c *Conn) {
	now := n.eng.Now()
	if n.classifier != nil {
		p.Meta.Class = n.classifier(p)
	}
	if n.sched == nil {
		n.transmit(p, now, true)
		return
	}
	// The scheduler (with its own per-class bounds) takes over buffering;
	// the staging slot frees as soon as the packet is classified into it.
	n.sched.Enqueue(p, now)
	n.txSlotFree()
	n.pumpWire()
}

// pumpWire keeps exactly one pending dequeue event against the scheduler.
func (n *NIC) pumpWire() {
	if n.schedPump || n.sched == nil {
		return
	}
	now := n.eng.Now()
	at, ok := n.sched.ReadyAt(now)
	if !ok {
		return
	}
	if free := n.wireTx.FreeAt(); free > at {
		at = free
	}
	if at < now {
		at = now
	}
	n.schedPump = true
	n.eng.At(at, func() {
		n.schedPump = false
		now := n.eng.Now()
		if p, ok := n.sched.Dequeue(now); ok {
			n.transmit(p, now, false)
			n.pumpWire()
			return
		}
		// No progress (e.g. a shaper's tokens not yet accrued): retry a
		// little later rather than spinning at this instant.
		n.eng.After(100*sim.Nanosecond, n.pumpWire)
	})
}

// transmit serializes a frame onto the wire. freeSlot marks packets still
// holding a staging-buffer slot (the unscheduled path).
func (n *NIC) transmit(p *packet.Packet, now sim.Time, freeSlot bool) {
	frame := p.FrameLen()
	_, done := n.wireTx.Acquire(now, n.model.Wire(frame))
	n.TxFrames++
	n.TxBytes += uint64(frame)
	if n.tracer != nil {
		n.trace(p, now, "wire", "tx", fmt.Sprintf("len=%d", frame))
	}
	if n.tap != nil {
		n.tap.Offer(p, now)
	}
	if cn, ok := n.conns[p.Meta.ConnID]; ok {
		cn.TxSent++
	}
	out := p
	n.eng.At(done, func() {
		if freeSlot {
			n.txSlotFree()
		}
		if n.OnTransmit != nil {
			n.OnTransmit(out, n.eng.Now())
		}
	})
}

// InjectTx transmits a control-plane-originated frame (ARP replies, ICMP
// from the kernel): it enters the egress pipeline directly rather than
// through a connection ring — the kernel owns the NIC (§4.4) and needs no
// descriptor to speak.
func (n *NIC) InjectTx(p *packet.Packet) {
	now := n.eng.Now()
	if n.Down(now) {
		n.TxOutageDrop++
		return
	}
	_, pipeDone := n.pipeline.Acquire(now, n.pipeOccupancy(p.FrameLen()))
	n.eng.At(pipeDone.Add(sim.Duration(n.model.NICPipeline)), func() {
		n.transmit(p, n.eng.Now(), false)
	})
}

// DeliverFromWire is the wire-side entry: a frame starts arriving at the
// current engine time and is processed once its last bit is in — ingress is
// serialized at line rate, so no experiment can observe goodput above it.
func (n *NIC) DeliverFromWire(p *packet.Packet) {
	_, arrived := n.wireRx.Acquire(n.eng.Now(), n.model.Wire(p.FrameLen()))
	n.eng.At(arrived, func() { n.rxFrame(p) })
}

func (n *NIC) rxFrame(p *packet.Packet) {
	now := n.eng.Now()
	n.RxWire++
	if n.tracer != nil {
		if p.Meta.Trace == 0 {
			p.Meta.Trace = n.tracer.StampID()
		}
		n.trace(p, now, "nic", "rx_wire", fmt.Sprintf("len=%d", p.FrameLen()))
	}
	if !n.linkUp {
		// The MAC has no carrier: the frame never makes it off the wire.
		// Announced loss (the link state is visible to the health monitor),
		// unlike a silent FIFO overflow.
		n.RxLinkDrop++
		n.trace(p, now, "nic", "rx_link_down", "")
		return
	}
	if n.pauseIntake(p, now) {
		// Generation cutover in progress: the frame waits out the epoch flip
		// in the pause buffer (or became a typed RxPauseDrop) instead of
		// being blackholed mid-upgrade.
		return
	}
	n.rxAdmit(p, now)
}

// rxAdmit is ingress admission past the MAC and pause gate: both the live
// wire path (rxFrame) and the pause-buffer replay (ResumeRx) enter here, so
// a replayed frame takes exactly the path it would have taken live — FIFO
// accounting, shed policy, outage check, pipeline, DMA.
func (n *NIC) rxAdmit(p *packet.Packet, now sim.Time) {
	if n.tsched != nil {
		n.rxFrameSched(p, now)
		return
	}
	if n.rxInflight >= n.rxWindow {
		n.RxFifoDrop++
		n.trace(p, now, "nic", "rx_fifo_drop", "")
		return
	}
	// Priority-aware shedding: under sustained pressure the installed policy
	// drops low-class ingress here, before the frame can occupy a FIFO slot
	// or touch the DMA engine — the point is to stop cold descriptors from
	// thrashing the DDIO ways, so the shed must happen upstream of both.
	if n.shedPolicy != nil {
		if c := n.steer(p); c != nil && n.shedPolicy(c, p) {
			n.RxShed++
			n.trace(p, now, "nic", "shed", fmt.Sprintf("conn=%d", c.ID))
			return
		}
	}
	if n.Down(now) {
		n.RxOutageDrop++
		if n.SlowPath != nil {
			n.RxSlowPath++
			n.SlowPath(p, now)
		}
		return
	}

	n.rxInflight++
	_, pipeDone := n.pipeline.Acquire(now, n.pipeOccupancy(p.FrameLen()))
	lat := sim.Duration(n.model.NICPipeline)

	// Steer first so trusted metadata is stamped before the overlay runs —
	// the overlay's uid/pid/cmd fields come from the connection context.
	c := n.steer(p)
	if c != nil {
		stamp(c, p, now)
	}
	if n.tap != nil {
		n.tap.Offer(p, now)
	}

	if n.ingress != nil {
		if e, hit := n.fcLookup(p, c); hit {
			// Fast path: the memoized verdict and rewrite apply at
			// single-lookup cost — no overlay interpretation.
			lat += n.model.NICCycles(1)
			p.Meta.Mark = e.mark
			p.Meta.Class = e.class
			if n.tracer != nil {
				n.trace(p, now, "nic", "flowcache_hit", fmt.Sprintf("verdict=%v hits=%d", e.verdict, e.hits))
			}
			if e.verdict == overlay.VerdictDrop {
				n.RxDropVerdict++
				n.rxInflight--
				return
			}
		} else {
			verdict, cycles, trap := n.ingress.Run(p, env{n: n, now: now, c: c})
			trapped := trap != nil
			if trapped {
				if n.tracer != nil {
					n.trace(p, now, "nic", "trap_fallback", "pipeline=ingress: "+trap.Error())
				}
				verdict, cycles = n.trapFallback(Ingress, p, env{n: n, now: now, c: c})
			}
			n.IngressProgCycles += uint64(cycles)
			lat += n.model.NICCycles(cycles)
			if n.fc != nil && n.ingressCacheable && c != nil {
				lat += n.model.NICCycles(1) // the probe that missed
			}
			if n.tracer != nil {
				n.trace(p, now, "nic", "pipeline_ingress", fmt.Sprintf("verdict=%v cycles=%d", verdict, cycles))
			}
			n.fcInstall(p, c, verdict, trapped)
			if verdict == overlay.VerdictDrop {
				n.RxDropVerdict++
				n.rxInflight--
				return
			}
		}
	}

	if c == nil {
		if n.SlowPath != nil {
			n.RxSlowPath++
			at := pipeDone.Add(lat)
			n.eng.At(at, func() {
				n.rxInflight--
				n.SlowPath(p, n.eng.Now())
			})
		} else {
			n.RxDropNoSteer++
			n.rxInflight--
		}
		return
	}

	// DMA the frame into the connection's RX ring.
	index := c.RX.Head()
	start := pipeDone.Add(lat)
	dmaAt := start
	if free := n.dma.FreeAt(); free > dmaAt {
		dmaAt = free
	}
	n.eng.At(dmaAt, func() {
		now := n.eng.Now()
		_, dmaDone := n.dma.Acquire(now, n.dmaCost(c, c.RX, index, p.FrameLen(), true))
		visible := dmaDone.Add(n.model.DMALatency)
		n.eng.At(visible, func() { n.rxComplete(c, p, index) })
	})
}

// rxFrameSched is the tenant-scheduled ingress path: steer and stamp first —
// tenant attribution decides whose FIFO share the frame occupies — then
// charge that share, apply shedding/outage policy, and queue the frame on the
// tenant's pipeline DRR ring.
func (n *NIC) rxFrameSched(p *packet.Packet, now sim.Time) {
	c := n.steer(p)
	if c != nil {
		stamp(c, p, now)
	}
	if !n.tsched.rxAdmit(p.Meta.Tenant) {
		n.RxFifoDrop++
		n.trace(p, now, "nic", "rx_fifo_drop", fmt.Sprintf("tenant=%d", p.Meta.Tenant))
		return
	}
	if n.shedPolicy != nil && c != nil && n.shedPolicy(c, p) {
		n.tsched.rxRelease(p.Meta.Tenant)
		n.RxShed++
		n.trace(p, now, "nic", "shed", fmt.Sprintf("conn=%d", c.ID))
		return
	}
	if n.Down(now) {
		n.tsched.rxRelease(p.Meta.Tenant)
		n.RxOutageDrop++
		if n.SlowPath != nil {
			n.RxSlowPath++
			n.SlowPath(p, now)
		}
		return
	}
	n.rxInflight++
	if n.tap != nil {
		n.tap.Offer(p, now)
	}
	n.tsched.Pipe.Request(grant{kind: reqRxPipe, c: c, p: p, frame: p.FrameLen(),
		est: n.pipeOccupancy(p.FrameLen())})
}

// rxRelease returns the ingress FIFO slot(s) a frame held: the global
// counter always, the owning tenant's share when the scheduler is installed.
func (n *NIC) rxRelease(p *packet.Packet) {
	n.rxInflight--
	if n.tsched != nil {
		n.tsched.rxRelease(p.Meta.Tenant)
	}
}

// rxComplete finishes an RX DMA: the descriptor completion is host-visible,
// so the frame either lands in the ring or becomes a counted ring drop.
func (n *NIC) rxComplete(c *Conn, p *packet.Packet, index uint64) {
	now := n.eng.Now()
	n.rxRelease(p)
	if err := c.RX.Push(mem.Desc{Pkt: p, Produced: p.Meta.Enqueued}); err != nil {
		n.RxDropRing++
		c.RxDropped++
		if n.tracer != nil {
			n.trace(p, now, "ring", "rx_drop_full", fmt.Sprintf("conn=%d", c.ID))
		}
		return
	}
	c.RxDelivered++
	if n.tracer != nil {
		n.trace(p, now, "ring", "rx_enqueue", fmt.Sprintf("conn=%d slot=%d", c.ID, index))
	}
	if c.NotifyRx {
		n.pushNotify(c, mem.NotifyRxReady, now)
	}
	if n.OnRxDeliver != nil {
		n.OnRxDeliver(c, now)
	}
}

// steer resolves the destination connection for an inbound frame.
func (n *NIC) steer(p *packet.Packet) *Conn {
	if k, ok := p.Flow(); ok {
		if id, ok := n.steering[k]; ok {
			if c, ok := n.conns[id]; ok {
				return c
			}
		}
		// Also try the destination-side normalized key (server side of a
		// flow steered by local tuple).
		if id, ok := n.steering[k.Reverse()]; ok {
			if c, ok := n.conns[id]; ok {
				return c
			}
		}
	}
	if c := n.rssSteer(p); c != nil {
		return c
	}
	if n.defaultConn != 0 {
		if c, ok := n.conns[n.defaultConn]; ok {
			return c
		}
	}
	return nil
}
