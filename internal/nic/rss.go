package nic

import (
	"fmt"

	"norman/internal/packet"
)

// Receive-side scaling: when a frame matches no exact steering entry, the
// NIC can spread it over a set of queues by Toeplitz-hashing the 4-tuple —
// how multi-queue NICs (and the paper's §2 "RSS custom hashing to partition
// the NIC into virtual interfaces") direct flows without per-flow state.

// RSSKeySize is the secret-key length used by the Toeplitz hash.
const RSSKeySize = 40

// DefaultRSSKey is the well-known Microsoft verification key; real
// deployments randomize it per boot.
var DefaultRSSKey = [RSSKeySize]byte{
	0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2,
	0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
	0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4,
	0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
	0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
}

// Toeplitz computes the RSS hash of input under key: for each set bit of
// the input (MSB first), XOR in the 32-bit window of the key starting at
// that bit position.
func Toeplitz(key [RSSKeySize]byte, input []byte) uint32 {
	var result uint32
	// The sliding 32-bit window over the key, starting at bit 0.
	window := uint32(key[0])<<24 | uint32(key[1])<<16 | uint32(key[2])<<8 | uint32(key[3])
	keyBit := 32 // index of the next key bit to shift in
	for _, b := range input {
		for mask := byte(0x80); mask != 0; mask >>= 1 {
			if b&mask != 0 {
				result ^= window
			}
			// Slide the window one bit.
			next := byte(0)
			if keyBit/8 < RSSKeySize && key[keyBit/8]&(0x80>>(keyBit%8)) != 0 {
				next = 1
			}
			window = window<<1 | uint32(next)
			keyBit++
		}
	}
	return result
}

// RSSHash hashes an IPv4 transport flow (src addr, dst addr, src port, dst
// port, all network order) — the "IPv4 with TCP/UDP" RSS input.
func RSSHash(key [RSSKeySize]byte, k packet.FlowKey) uint32 {
	var in [12]byte
	in[0], in[1], in[2], in[3] = byte(k.Src>>24), byte(k.Src>>16), byte(k.Src>>8), byte(k.Src)
	in[4], in[5], in[6], in[7] = byte(k.Dst>>24), byte(k.Dst>>16), byte(k.Dst>>8), byte(k.Dst)
	in[8], in[9] = byte(k.SrcPort>>8), byte(k.SrcPort)
	in[10], in[11] = byte(k.DstPort>>8), byte(k.DstPort)
	return Toeplitz(key, in[:])
}

// SetRSS enables hash-based steering over the given queues (connection ids)
// for traffic that matches no exact steering entry. Passing an empty slice
// disables RSS. Each indirection-table entry consumes SRAM.
func (n *NIC) SetRSS(key [RSSKeySize]byte, queues []uint64) error {
	for _, id := range queues {
		if _, ok := n.conns[id]; !ok {
			return fmt.Errorf("nic: rss queue %d: %w", id, ErrNoSuchConn)
		}
	}
	delta := (len(queues) - len(n.rssQueues)) * 8
	used, budget := n.SRAM()
	if used+delta > budget {
		return fmt.Errorf("%w: rss indirection table", ErrSRAMExhausted)
	}
	n.sramUsed += delta
	n.rssKey = key
	n.rssQueues = append([]uint64(nil), queues...)
	return nil
}

// rssSteer resolves a connection via the RSS indirection table, or nil.
func (n *NIC) rssSteer(p *packet.Packet) *Conn {
	if len(n.rssQueues) == 0 {
		return nil
	}
	k, ok := p.Flow()
	if !ok {
		// Non-transport frames (e.g. ARP) land on queue 0, as hardware
		// defaults do.
		if c, ok := n.conns[n.rssQueues[0]]; ok {
			return c
		}
		return nil
	}
	h := RSSHash(n.rssKey, k)
	if c, ok := n.conns[n.rssQueues[h%uint32(len(n.rssQueues))]]; ok {
		return c
	}
	return nil
}
