package nic

import (
	"testing"

	"norman/internal/overlay"
	"norman/internal/packet"
)

// TestTrapFallsBackToLastGood is the NIC half of graceful degradation: a
// runtime trap in the active overlay rolls the pipeline back to the chain
// installed before the last reload (the E4 reconfig machinery in reverse),
// and the trapped packet is decided by that last-good chain.
func TestTrapFallsBackToLastGood(t *testing.T) {
	n, eng := newNIC(1 << 20)
	_, _ = n.OpenConn(1, packet.Meta{}, nil)
	n.SetDefaultConn(1)

	good, err := overlay.Assemble("good-drop80", "ldf r0, dst_port\njne r0, 80, ok\ndrop\nok:\npass\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.LoadProgram(Ingress, good); err != nil {
		t.Fatal(err)
	}
	next, err := overlay.Assemble("next-passall", "pass\n")
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := n.LoadProgram(Ingress, next)
	if err != nil {
		t.Fatal(err)
	}
	if lg := n.LastGood(Ingress); lg != good {
		t.Fatalf("LastGood = %v", lg)
	}

	m.InjectTrap("stage fault")
	n.DeliverFromWire(udpTo(80)) // trapped run; last-good chain drops port 80
	eng.Run()

	if n.TrapFallbacks != 1 {
		t.Fatalf("TrapFallbacks = %d", n.TrapFallbacks)
	}
	if cur := n.Machine(Ingress); cur == nil || cur.Program() != good {
		t.Fatalf("pipeline did not fall back to last-good: %v", cur)
	}
	if n.RxDropVerdict != 1 {
		t.Fatalf("trapped packet must be re-decided by last-good: drops = %d", n.RxDropVerdict)
	}

	// The fallback chain keeps running; no residual trap state.
	n.DeliverFromWire(udpTo(81))
	eng.Run()
	c, _ := n.Conn(1)
	if c.RxDelivered != 1 || n.TrapFallbacks != 1 {
		t.Fatalf("post-fallback delivery = %d, fallbacks = %d", c.RxDelivered, n.TrapFallbacks)
	}
}

// TestTrapWithoutLastGoodReinstalls covers the first-load case: no previous
// chain exists, so the NIC swaps in a fresh instance of the same verified
// program (a stage reset) rather than failing open outright.
func TestTrapWithoutLastGoodReinstalls(t *testing.T) {
	n, eng := newNIC(1 << 20)
	_, _ = n.OpenConn(1, packet.Meta{}, nil)
	n.SetDefaultConn(1)

	prog, err := overlay.Assemble("only", "pass\n")
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := n.LoadProgram(Ingress, prog)
	if err != nil {
		t.Fatal(err)
	}
	m.InjectTrap("")
	n.DeliverFromWire(udpTo(80))
	eng.Run()

	if n.TrapFallbacks != 1 {
		t.Fatalf("TrapFallbacks = %d", n.TrapFallbacks)
	}
	cur := n.Machine(Ingress)
	if cur == nil || cur == m || cur.Program() != prog {
		t.Fatalf("expected fresh machine for same program, got %v", cur)
	}
	c, _ := n.Conn(1)
	if c.RxDelivered != 1 {
		t.Fatalf("delivered = %d", c.RxDelivered)
	}
}

// TestDoubleTrapFailsOpen: if the replacement chain also traps on the same
// packet, the pipeline unloads entirely — fail open beats a trap loop. The
// regression half: one fault event must count exactly once per bucket —
// one TrapFallback (the absorbed trap) and one TrapFailOpen (the terminal
// unload), never two fallbacks for a single trapping packet. Inflating
// TrapFallbacks per retry would also double-trip the health monitor's
// pipeline signal for what is one quarantine-worthy event.
func TestDoubleTrapFailsOpen(t *testing.T) {
	n, eng := newNIC(1 << 20)
	_, _ = n.OpenConn(1, packet.Meta{}, nil)
	n.SetDefaultConn(1)

	// Hand-built (unverified) program that falls off the end: traps on
	// every run, including the fallback's re-run.
	bad := &overlay.Program{Name: "bad", Code: []overlay.Inst{{Op: overlay.OpNop}}}
	if _, _, err := n.LoadProgram(Ingress, bad); err != nil {
		t.Fatal(err)
	}
	n.DeliverFromWire(udpTo(80))
	eng.Run()

	if n.TrapFallbacks != 1 {
		t.Fatalf("TrapFallbacks = %d, want 1 (fail-open is not a fallback)", n.TrapFallbacks)
	}
	if n.TrapFailOpens != 1 {
		t.Fatalf("TrapFailOpens = %d, want 1", n.TrapFailOpens)
	}
	if n.Machine(Ingress) != nil {
		t.Fatal("double trap must unload the pipeline")
	}
	c, _ := n.Conn(1)
	if c.RxDelivered != 1 {
		t.Fatalf("fail-open delivery = %d", c.RxDelivered)
	}
}
