package nic

import (
	"fmt"

	"norman/internal/mem"
	"norman/internal/overlay"
	"norman/internal/packet"
	"norman/internal/sim"
)

// Direction selects the pipeline an overlay program attaches to.
type Direction uint8

// Directions.
const (
	Ingress Direction = iota // wire -> host
	Egress                   // host -> wire
)

func (d Direction) String() string {
	if d == Ingress {
		return "ingress"
	}
	return "egress"
}

// LoadProgram installs a verified overlay program on one pipeline without an
// outage — this is the paper's online policy update path (§4.4). It returns
// the load latency (control-plane visible) and the new machine. The cost is
// MMIO traffic proportional to program size: each instruction and table slot
// is written through configuration registers.
func (n *NIC) LoadProgram(dir Direction, p *overlay.Program) (*overlay.Machine, sim.Duration, error) {
	m := overlay.NewMachine(p)
	cost := n.programSRAMDelta(dir, p)
	if cost > 0 {
		used, budget := n.SRAM()
		if used+cost > budget {
			return nil, 0, fmt.Errorf("%w: program %q needs %d bytes, %d free",
				ErrSRAMExhausted, p.Name, cost, budget-used)
		}
	}
	// One MMIO write per instruction word plus one per declared table (the
	// table contents are populated separately by the control plane).
	writes := len(p.Code) + len(p.Tables) + len(p.Meters) + len(p.Counters)
	load := sim.Duration(writes) * sim.Duration(n.model.MMIOWrite)
	switch dir {
	case Ingress:
		if n.ingress != nil {
			n.lastGood[Ingress] = n.ingress.Program()
		}
		n.ingress = m
		// The decision procedure changed: nothing memoized under the old
		// chain may serve another packet (E4 hot-reload invalidation).
		n.ingressCacheable = programCacheable(p)
		n.fcFlush()
	case Egress:
		if n.egress != nil {
			n.lastGood[Egress] = n.egress.Program()
		}
		n.egress = m
	}
	return m, load, nil
}

// LastGood returns the fallback program a pipeline would degrade to after a
// runtime trap (the chain installed before the most recent reload), or nil.
func (n *NIC) LastGood(dir Direction) *overlay.Program { return n.lastGood[dir] }

// trapFallback absorbs an overlay runtime trap on one pipeline: rather than
// wedging (or crashing the simulation, as a panic would), the NIC reuses the
// E4 online-reconfiguration machinery to swap the faulted machine out — for
// the last-good chain when one exists, else for a fresh instance of the same
// verified program (dynamic table state is sacrificed, exactly what a
// hardware stage reset does). The trapped packet is re-run through the
// replacement; if that also traps, the pipeline fails open with no program.
// One trap event counts once: the absorbed trap increments TrapFallbacks,
// and the terminal double-trap increments TrapFailOpens instead of
// inflating the fallback count a second time.
func (n *NIC) trapFallback(dir Direction, p *packet.Packet, e env) (overlay.Verdict, int) {
	n.TrapFallbacks++
	var repl *overlay.Machine
	if lg := n.lastGood[dir]; lg != nil {
		repl = overlay.NewMachine(lg)
	} else if cur := n.Machine(dir); cur != nil {
		repl = overlay.NewMachine(cur.Program())
	}
	switch dir {
	case Ingress:
		n.ingress = repl
		if repl != nil {
			n.ingressCacheable = programCacheable(repl.Program())
		} else {
			n.ingressCacheable = false
		}
		n.fcFlush()
	case Egress:
		n.egress = repl
	}
	if repl == nil {
		return overlay.VerdictPass, 0
	}
	v, cycles, trap := repl.Run(p, e)
	if trap != nil {
		// Failing open is not a fallback to a last-good chain; count it in
		// its own bucket so one fault event never shows up twice in
		// nic_trap_fallbacks.
		n.TrapFailOpens++
		n.UnloadProgram(dir)
		return overlay.VerdictPass, 0
	}
	return v, cycles
}

// programSRAMDelta returns the SRAM change from replacing dir's program
// with p.
func (n *NIC) programSRAMDelta(dir Direction, p *overlay.Program) int {
	old := 0
	switch dir {
	case Ingress:
		if n.ingress != nil {
			old = n.ingress.Program().SRAMBytes()
		}
	case Egress:
		if n.egress != nil {
			old = n.egress.Program().SRAMBytes()
		}
	}
	return p.SRAMBytes() - old
}

// UnloadProgram removes the program on one pipeline.
func (n *NIC) UnloadProgram(dir Direction) {
	if dir == Ingress {
		n.ingress = nil
		n.ingressCacheable = false
		n.fcFlush()
	} else {
		n.egress = nil
	}
}

// Machine returns the machine currently loaded on a pipeline, or nil.
func (n *NIC) Machine(dir Direction) *overlay.Machine {
	if dir == Ingress {
		return n.ingress
	}
	return n.egress
}

// DefaultBitstreamReload is the paper's "seconds or longer" (§4.4).
const DefaultBitstreamReload = 3 * sim.Second

// ReloadBitstream models a full FPGA reconfiguration: the dataplane is down
// for the given duration (0 = DefaultBitstreamReload), during which arriving
// traffic drops or takes the slow path; all loaded programs and dynamic
// state are cleared, as a real respin would.
func (n *NIC) ReloadBitstream(now sim.Time, d sim.Duration) sim.Time {
	if d <= 0 {
		d = DefaultBitstreamReload
	}
	n.outageUntil = now.Add(d)
	n.ingress = nil
	n.egress = nil
	n.lastGood[Ingress] = nil
	n.lastGood[Egress] = nil
	n.ingressCacheable = false
	// A respin wipes the shadow bank too: staged and retained generations are
	// gone, their SRAM released. A paused ingress cannot survive the reset —
	// buffered frames are part of the outage and counted as such.
	n.AbortStaged()
	if n.prevGen != nil {
		n.sramUsed -= n.prevGen.sram
		n.prevGen = nil
	}
	if n.rxPaused {
		n.rxPaused = false
		n.rxPauseCap = 0
		n.RxOutageDrop += uint64(len(n.rxPauseBuf))
		n.rxPauseBuf = nil
	}
	n.fcFlush()
	return n.outageUntil
}

// env adapts the NIC to overlay.Env for one packet run.
type env struct {
	n   *NIC
	now sim.Time
	c   *Conn // owning connection for notify, may be nil
}

// Now implements overlay.Env.
func (e env) Now() sim.Time { return e.now }

// Mirror implements overlay.Env by feeding the capture tap.
func (e env) Mirror(p *packet.Packet) {
	if e.n.tap != nil {
		e.n.tap.Offer(p, e.now)
	}
}

// Notify implements overlay.Env by appending to the owning connection's
// notification queue.
func (e env) Notify(p *packet.Packet) {
	if e.c != nil {
		e.n.pushNotify(e.c, mem.NotifyRxReady, e.now)
	}
}

func (n *NIC) pushNotify(c *Conn, kind mem.NotifyKind, now sim.Time) {
	if c.Queue == nil {
		return
	}
	if !c.Queue.Push(mem.Notification{ConnID: c.ID, Kind: kind, At: now}) || n.OnNotify == nil {
		return
	}
	if c.NotifyCoalesce <= 0 {
		c.lastNotifyAt = now
		n.OnNotify(c, kind, now)
		return
	}
	// Interrupt moderation: fire at most one callback per coalescing
	// window; everything queued meanwhile is drained by that one wake.
	if c.notifyArmed {
		return
	}
	c.notifyArmed = true
	fireAt := c.lastNotifyAt.Add(c.NotifyCoalesce)
	if fireAt < now {
		fireAt = now
	}
	n.eng.At(fireAt, func() {
		c.notifyArmed = false
		c.lastNotifyAt = n.eng.Now()
		n.OnNotify(c, kind, n.eng.Now())
	})
}
