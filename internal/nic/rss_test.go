package nic

import (
	"testing"

	"norman/internal/packet"
	"norman/internal/sim"
)

// TestToeplitzKnownVectors checks the hash against the published Microsoft
// RSS verification vectors (IPv4 with ports, default key).
func TestToeplitzKnownVectors(t *testing.T) {
	cases := []struct {
		src, dst     packet.IPv4
		sport, dport uint16
		want         uint32
	}{
		{packet.MakeIP(66, 9, 149, 187), packet.MakeIP(161, 142, 100, 80), 2794, 1766, 0x51ccc178},
		{packet.MakeIP(199, 92, 111, 2), packet.MakeIP(65, 69, 140, 83), 14230, 4739, 0xc626b0ea},
		{packet.MakeIP(24, 19, 198, 95), packet.MakeIP(12, 22, 207, 184), 12898, 38024, 0x5c2b394a},
		{packet.MakeIP(38, 27, 205, 30), packet.MakeIP(209, 142, 163, 6), 48228, 2217, 0xafc7327f},
		{packet.MakeIP(153, 39, 163, 191), packet.MakeIP(202, 188, 127, 2), 44251, 1303, 0x10e828a2},
	}
	for _, c := range cases {
		k := packet.FlowKey{Src: c.src, Dst: c.dst, SrcPort: c.sport, DstPort: c.dport, Proto: packet.ProtoTCP}
		if got := RSSHash(DefaultRSSKey, k); got != c.want {
			t.Errorf("RSSHash(%v) = %#x, want %#x", k, got, c.want)
		}
	}
}

func TestRSSSteeringSpreadsFlows(t *testing.T) {
	n, eng := newNIC(1 << 20)
	q1, _ := n.OpenConn(1, packet.Meta{}, nil)
	q2, _ := n.OpenConn(2, packet.Meta{}, nil)
	if err := n.SetRSS(DefaultRSSKey, []uint64{1, 2}); err != nil {
		t.Fatal(err)
	}
	n.OnRxDeliver = func(c *Conn, _ sim.Time) { _, _ = c.RX.Pop() } // consume
	for i := 0; i < 64; i++ {
		n.DeliverFromWire(packet.NewUDP(packet.MAC{}, packet.MAC{},
			packet.MakeIP(10, 0, 0, 2), packet.MakeIP(10, 0, 0, 1),
			uint16(20000+i*7), 80, 64))
	}
	eng.Run()
	if q1.RxDelivered == 0 || q2.RxDelivered == 0 {
		t.Fatalf("hash should spread flows: q1=%d q2=%d", q1.RxDelivered, q2.RxDelivered)
	}
	if q1.RxDelivered+q2.RxDelivered != 64 {
		t.Fatalf("lost packets: %d+%d", q1.RxDelivered, q2.RxDelivered)
	}
}

func TestRSSSameFlowSameQueue(t *testing.T) {
	n, eng := newNIC(1 << 20)
	a, _ := n.OpenConn(1, packet.Meta{}, nil)
	b, _ := n.OpenConn(2, packet.Meta{}, nil)
	if err := n.SetRSS(DefaultRSSKey, []uint64{1, 2}); err != nil {
		t.Fatal(err)
	}
	n.OnRxDeliver = func(c *Conn, _ sim.Time) { _, _ = c.RX.Pop() } // consume
	for i := 0; i < 10; i++ {
		n.DeliverFromWire(packet.NewUDP(packet.MAC{}, packet.MAC{},
			packet.MakeIP(10, 0, 0, 2), packet.MakeIP(10, 0, 0, 1), 5555, 80, 64))
	}
	eng.Run()
	if a.RxDelivered != 0 && b.RxDelivered != 0 {
		t.Fatalf("one flow must stick to one queue: a=%d b=%d", a.RxDelivered, b.RxDelivered)
	}
	if a.RxDelivered+b.RxDelivered != 10 {
		t.Fatal("lost packets")
	}
}

func TestRSSExactSteeringWins(t *testing.T) {
	n, eng := newNIC(1 << 20)
	_, _ = n.OpenConn(1, packet.Meta{}, nil)
	pin, _ := n.OpenConn(2, packet.Meta{}, nil)
	if err := n.SetRSS(DefaultRSSKey, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	flow := packet.FlowKey{Src: packet.MakeIP(10, 0, 0, 2), Dst: packet.MakeIP(10, 0, 0, 1),
		SrcPort: 7777, DstPort: 80, Proto: packet.ProtoUDP}
	if err := n.SteerFlow(flow, 2); err != nil {
		t.Fatal(err)
	}
	n.DeliverFromWire(packet.NewUDP(packet.MAC{}, packet.MAC{},
		flow.Src, flow.Dst, flow.SrcPort, flow.DstPort, 64))
	eng.Run()
	if pin.RxDelivered != 1 {
		t.Fatal("exact flow-director entries take precedence over RSS")
	}
}

func TestRSSValidation(t *testing.T) {
	n, _ := newNIC(1 << 20)
	if err := n.SetRSS(DefaultRSSKey, []uint64{42}); err == nil {
		t.Fatal("unknown queue must be rejected")
	}
	_, _ = n.OpenConn(1, packet.Meta{}, nil)
	if err := n.SetRSS(DefaultRSSKey, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	// ARP (non-transport) frames land on queue 0.
	c, _ := n.Conn(1)
	eng := n.eng
	n.DeliverFromWire(packet.NewARPRequest(packet.MAC{}, 1, 2))
	eng.Run()
	if c.RxDelivered != 1 {
		t.Fatalf("non-transport frames go to queue 0: %d", c.RxDelivered)
	}
}
