package nic

import (
	"errors"
	"testing"

	"norman/internal/overlay"
	"norman/internal/packet"
)

func fcKey(sport uint16) packet.FlowKey {
	return packet.FlowKey{
		Src: packet.MakeIP(10, 0, 0, 2), Dst: packet.MakeIP(10, 0, 0, 1),
		SrcPort: sport, DstPort: 443, Proto: packet.ProtoUDP,
	}
}

// TestFlowCacheConservation pins the ledger the whole subsystem is audited
// by: Installs − Evictions − Invalidations == live entries, at every point
// in an install/evict/invalidate/flush history. A violated ledger means an
// entry was silently lost or double-freed.
func TestFlowCacheConservation(t *testing.T) {
	f := newFlowCache(16)
	check := func(when string) {
		t.Helper()
		if got := f.Installs - f.Evictions - f.Invalidations; got != uint64(f.Len()) {
			t.Fatalf("%s: ledger broken: installs %d − evictions %d − invalidations %d = %d, Len %d",
				when, f.Installs, f.Evictions, f.Invalidations, got, f.Len())
		}
	}
	// Overfill: 3× capacity forces evictions.
	for i := 0; i < 3*f.Capacity(); i++ {
		f.Install(fcKey(uint16(i)), uint64(i), 0, overlay.VerdictPass, 0, 0)
		check("install")
	}
	if f.Evictions == 0 {
		t.Fatal("overfilling must evict")
	}
	// Targeted invalidations, some of keys that are no longer resident.
	for i := 0; i < 3*f.Capacity(); i += 2 {
		f.InvalidateKey(fcKey(uint16(i)))
		check("invalidate key")
	}
	f.InvalidateConn(7)
	check("invalidate conn")
	if n := f.Flush(); n != f.Len() && f.Len() != 0 {
		t.Fatalf("flush dropped %d but %d remain", n, f.Len())
	}
	check("flush")
	if f.Len() != 0 {
		t.Fatalf("flush left %d entries", f.Len())
	}
	// Reinstall over an existing key must not inflate the ledger.
	f.Install(fcKey(1), 1, 0, overlay.VerdictPass, 0, 0)
	f.Install(fcKey(1), 1, 0, overlay.VerdictDrop, 5, 6)
	check("reinstall")
	if f.Len() != 1 {
		t.Fatalf("reinstall duplicated the entry: Len %d", f.Len())
	}
	if e, ok := f.Lookup(fcKey(1)); !ok || e.verdict != overlay.VerdictDrop || e.mark != 5 {
		t.Fatal("reinstall must refresh the decision in place")
	}
}

// TestFlowCacheTenantPartitionNeverSteals is the isolation property: once
// the cache is partitioned, one tenant's installs never evict another
// tenant's entries — the install is denied (and counted) instead.
func TestFlowCacheTenantPartitionNeverSteals(t *testing.T) {
	f := newFlowCache(8) // 2 buckets × 4 ways
	if err := f.SetQuotas(map[uint32]int{1: 1, 2: 1}); err != nil {
		t.Fatal(err)
	}
	if q := f.Quotas(); q[1] != 4 || q[2] != 4 {
		t.Fatalf("equal weights must split capacity evenly: %v", q)
	}

	// Find five keys that land in bucket 0 so tenant 1 can fill it.
	b0 := make([]packet.FlowKey, 0, 5)
	for sport := uint16(1); len(b0) < 5; sport++ {
		if k := fcKey(sport); flowHash(k)&f.mask == 0 {
			b0 = append(b0, k)
		}
	}
	for i, k := range b0[:4] {
		if !f.Install(k, uint64(i), 1, overlay.VerdictPass, 0, 0) {
			t.Fatalf("tenant 1 install %d refused under its own quota", i)
		}
	}

	// Tenant 2 is under quota but bucket 0 holds only tenant 1's entries:
	// the install must be denied, not satisfied at tenant 1's expense.
	if f.Install(b0[4], 99, 2, overlay.VerdictPass, 0, 0) {
		t.Fatal("tenant 2 install evicted across the partition")
	}
	st := f.TenantStats()
	if st[0].Tenant != 1 || st[0].Used != 4 || st[0].Evicts != 0 {
		t.Fatalf("tenant 1 partition disturbed: %+v", st[0])
	}
	if st[1].Tenant != 2 || st[1].Denied != 1 {
		t.Fatalf("denial not accounted to tenant 2: %+v", st[1])
	}
	if f.Denied != 1 {
		t.Fatalf("global Denied = %d", f.Denied)
	}

	// Over quota, a tenant recycles its own entries — neighbors still
	// untouched.
	extra := fcKey(60000)
	for sport := uint16(60000); flowHash(extra)&f.mask != 0; sport++ {
		extra = fcKey(sport)
	}
	if !f.Install(extra, 100, 1, overlay.VerdictPass, 0, 0) {
		t.Fatal("tenant 1 over quota must recycle its own entries")
	}
	st = f.TenantStats()
	if st[0].Used != 4 || st[0].Evicts != 1 {
		t.Fatalf("over-quota install must evict exactly one own entry: %+v", st[0])
	}

	// A tenant outside the partition map owns no slice at all.
	if f.Install(fcKey(40000), 101, 3, overlay.VerdictPass, 0, 0) {
		t.Fatal("unpartitioned tenant must be denied outright")
	}
	if got := f.Installs - f.Evictions - f.Invalidations; got != uint64(f.Len()) {
		t.Fatalf("ledger broken after partition churn: %d vs %d", got, f.Len())
	}
}

// TestFlowCacheLookupZeroAllocs pins the hot-path claim E14 depends on: a
// probe — hit or miss — allocates nothing.
func TestFlowCacheLookupZeroAllocs(t *testing.T) {
	f := newFlowCache(64)
	hit := fcKey(1)
	miss := fcKey(2)
	f.Install(hit, 1, 0, overlay.VerdictPass, 0, 0)
	if n := testing.AllocsPerRun(200, func() { f.Lookup(hit) }); n != 0 {
		t.Fatalf("hit path allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(200, func() { f.Lookup(miss) }); n != 0 {
		t.Fatalf("miss path allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		f.Install(hit, 1, 0, overlay.VerdictPass, 0, 0)
	}); n != 0 {
		t.Fatalf("steady-state reinstall allocates %.1f/op", n)
	}
}

func TestProgramCacheable(t *testing.T) {
	asm := func(src string) *overlay.Program {
		p, err := overlay.Assemble("t", src)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if !programCacheable(asm("ldf r0, dst_port\njne r0, 80, ok\ndrop\nok:\npass\n")) {
		t.Fatal("pure match/action program must be cacheable")
	}
	if !programCacheable(asm(".counter c\ncount c\npass\n")) {
		t.Fatal("count-only program is cacheable (counters freeze, documented)")
	}
	if programCacheable(asm(".meter m 125000000 1500\nldf r1, len\nmeter r0, m, r1\npass\n")) {
		t.Fatal("metered program is rate-dependent, never cacheable")
	}
	if programCacheable(asm("notify\npass\n")) {
		t.Fatal("notify has per-packet side effects, never cacheable")
	}
	if programCacheable(nil) {
		t.Fatal("nil program must not be cacheable")
	}
}

// TestFlowCacheHitSkipsInterpretation is the end-to-end fast path: the first
// packet of a flow runs the overlay chain and installs; the second hits the
// cache, burns zero interpreter cycles, and still applies the memoized
// verdict.
func TestFlowCacheHitSkipsInterpretation(t *testing.T) {
	n, eng := newNIC(1 << 20)
	if _, err := n.OpenConn(1, packet.Meta{}, nil); err != nil {
		t.Fatal(err)
	}
	n.SetDefaultConn(1)
	if err := n.EnableFlowCache(64); err != nil {
		t.Fatal(err)
	}
	prog, err := overlay.Assemble("drop80", "ldf r0, dst_port\njne r0, 80, ok\ndrop\nok:\npass\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.LoadProgram(Ingress, prog); err != nil {
		t.Fatal(err)
	}

	n.DeliverFromWire(udpTo(81))
	eng.Run()
	f := n.FlowCache()
	if f.Misses != 1 || f.Installs != 1 || f.Hits != 0 {
		t.Fatalf("first packet: misses=%d installs=%d hits=%d", f.Misses, f.Installs, f.Hits)
	}
	cyclesAfterMiss := n.IngressProgCycles
	if cyclesAfterMiss == 0 {
		t.Fatal("slow path must burn interpreter cycles")
	}

	n.DeliverFromWire(udpTo(81))
	eng.Run()
	if f.Hits != 1 {
		t.Fatalf("second packet must hit: hits=%d misses=%d", f.Hits, f.Misses)
	}
	if n.IngressProgCycles != cyclesAfterMiss {
		t.Fatalf("hit burned interpreter cycles: %d → %d", cyclesAfterMiss, n.IngressProgCycles)
	}
	c, _ := n.Conn(1)
	if c.RxDelivered != 2 {
		t.Fatalf("delivered = %d", c.RxDelivered)
	}

	// Drop verdicts are memoized too: both the slow-path and cached packet
	// land in RxDropVerdict.
	n.DeliverFromWire(udpTo(80))
	n.DeliverFromWire(udpTo(80))
	eng.Run()
	if n.RxDropVerdict != 2 {
		t.Fatalf("cached drop verdict not applied: drops = %d", n.RxDropVerdict)
	}
	if f.Hits != 2 {
		t.Fatalf("drop flow's second packet must still hit: %d", f.Hits)
	}
}

// TestFlowCacheReloadInvalidates wires the cache into the E4 hot-reload
// contract: a program swap may decide any flow differently, so nothing
// memoized under the old chain survives it.
func TestFlowCacheReloadInvalidates(t *testing.T) {
	n, eng := newNIC(1 << 20)
	_, _ = n.OpenConn(1, packet.Meta{}, nil)
	n.SetDefaultConn(1)
	if err := n.EnableFlowCache(64); err != nil {
		t.Fatal(err)
	}
	passAll, _ := overlay.Assemble("pass-all", "pass\n")
	drop81, _ := overlay.Assemble("drop81", "ldf r0, dst_port\njne r0, 81, ok\ndrop\nok:\npass\n")
	if _, _, err := n.LoadProgram(Ingress, passAll); err != nil {
		t.Fatal(err)
	}
	n.DeliverFromWire(udpTo(81))
	eng.Run()
	f := n.FlowCache()
	if f.Len() != 1 {
		t.Fatalf("entries after first packet = %d", f.Len())
	}

	// Hot reload: the cached pass verdict for :81 must not leak past the
	// swap — the new chain drops that flow.
	if _, _, err := n.LoadProgram(Ingress, drop81); err != nil {
		t.Fatal(err)
	}
	if f.Len() != 0 {
		t.Fatalf("reload left %d cached entries", f.Len())
	}
	n.DeliverFromWire(udpTo(81))
	eng.Run()
	if n.RxDropVerdict != 1 {
		t.Fatal("stale cached verdict survived a program reload")
	}

	// Unload flushes too, and with no program there is nothing to memoize.
	n.UnloadProgram(Ingress)
	n.DeliverFromWire(udpTo(81))
	eng.Run()
	if f.Len() != 0 || f.Installs != 2 {
		t.Fatalf("unloaded pipeline must not install: len=%d installs=%d", f.Len(), f.Installs)
	}

	// A non-cacheable program disables memoization entirely.
	metered, err := overlay.Assemble("metered", ".meter m 125000000 1500\nldf r1, len\nmeter r0, m, r1\npass\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.LoadProgram(Ingress, metered); err != nil {
		t.Fatal(err)
	}
	n.DeliverFromWire(udpTo(81))
	n.DeliverFromWire(udpTo(81))
	eng.Run()
	if f.Hits+f.Installs != 2 || f.Len() != 0 {
		t.Fatalf("metered program must stay on the slow path: hits=%d installs=%d len=%d",
			f.Hits, f.Installs, f.Len())
	}
}

// TestFlowCacheSteeringAndCloseInvalidate covers the targeted invalidation
// paths: steering changes drop both directions of the key, and closing a
// connection drops every entry pointing at it.
func TestFlowCacheSteeringAndCloseInvalidate(t *testing.T) {
	n, eng := newNIC(1 << 20)
	_, _ = n.OpenConn(1, packet.Meta{}, nil)
	_, _ = n.OpenConn(2, packet.Meta{}, nil)
	n.SetDefaultConn(1)
	if err := n.EnableFlowCache(64); err != nil {
		t.Fatal(err)
	}
	passAll, _ := overlay.Assemble("pass-all", "pass\n")
	if _, _, err := n.LoadProgram(Ingress, passAll); err != nil {
		t.Fatal(err)
	}
	n.DeliverFromWire(udpTo(81))
	eng.Run()
	f := n.FlowCache()
	if f.Len() != 1 {
		t.Fatalf("entries = %d", f.Len())
	}

	// Re-steering the flow to conn 2 invalidates the cached entry that
	// points at conn 1's ring.
	k, _ := udpTo(81).Flow()
	if err := n.SteerFlow(k, 2); err != nil {
		t.Fatal(err)
	}
	if f.Len() != 0 {
		t.Fatal("steering change left a stale entry")
	}
	n.DeliverFromWire(udpTo(81))
	eng.Run()
	if f.Len() != 1 {
		t.Fatalf("entries after re-steer = %d", f.Len())
	}

	// Closing the steered connection drops its entries (and the steering
	// rule with it).
	if err := n.CloseConn(2); err != nil {
		t.Fatal(err)
	}
	if f.Len() != 0 {
		t.Fatal("conn close left a stale entry")
	}
	if got := f.Installs - f.Evictions - f.Invalidations; got != uint64(f.Len()) {
		t.Fatalf("ledger broken: %d vs %d", got, f.Len())
	}
}

// TestFlowCacheSRAMAccounting: the cache is charged against the same on-NIC
// budget as connections and steering entries, and refuses to overdraw it.
func TestFlowCacheSRAMAccounting(t *testing.T) {
	n, _ := newNIC(4096)
	used0, _ := n.SRAM()
	if err := n.EnableFlowCache(64); err != nil {
		t.Fatal(err)
	}
	used1, _ := n.SRAM()
	if used1-used0 != 64*flowEntrySRAM {
		t.Fatalf("cache charge = %d, want %d", used1-used0, 64*flowEntrySRAM)
	}
	// Re-enabling replaces the charge, not stacks it.
	if err := n.EnableFlowCache(32); err != nil {
		t.Fatal(err)
	}
	used2, _ := n.SRAM()
	if used2-used0 != 32*flowEntrySRAM {
		t.Fatalf("replacement charge = %d, want %d", used2-used0, 32*flowEntrySRAM)
	}
	if err := n.EnableFlowCache(1 << 20); !errors.Is(err, ErrSRAMExhausted) {
		t.Fatalf("oversized cache must exhaust SRAM: %v", err)
	}
	// A failed enable keeps the old cache and its charge.
	if n.FlowCache() == nil || n.FlowCache().Capacity() != 32 {
		t.Fatal("failed enable must keep the previous cache")
	}
	n.DisableFlowCache()
	used3, _ := n.SRAM()
	if used3 != used0 {
		t.Fatalf("disable must release the charge: %d vs %d", used3, used0)
	}
}
