package nic

import (
	"norman/internal/cache"
	"norman/internal/mem"
	"norman/internal/sim"
	"norman/internal/timing"
)

// QueueGroup is the per-RSS-bucket batched receive path of the sharded scale
// engine (DESIGN.md §8). Where the classic per-connection datapath fires one
// engine event per packet, a QueueGroup drains its mem.BurstRing a burst at a
// time: one doorbell, one DMA event, up to Batch descriptors delivered into
// flyweight connection records. The engine's fired counter is credited with
// the batch size (sim.Engine.AddFired) so events/s keeps meaning "dataplane
// events", while the heap pays one dispatch per burst instead of per packet.
//
// All closures are allocated once at construction; Arrive, drain and
// completion run allocation-free.
type QueueGroup struct {
	eng   *sim.Engine
	model timing.Model
	llc   *cache.LLC // nil disables descriptor cache charging
	ring  *mem.BurstRing
	slab  *mem.ConnSlab
	batch int

	// Deliver is invoked once per drained descriptor, at the burst's DMA
	// completion time. The arch layer points it at the flyweight transport
	// (transport.FlyweightRx); the indirection keeps nic free of a transport
	// import.
	Deliver func(d mem.PktRef, at sim.Time)

	dma *sim.Server

	draining   bool
	scratch    []mem.PktRef
	drainFn    func()
	completeFn func()

	// In-flight burst. The draining flag serialises drains per group, so at
	// most one completion is outstanding and its state can live here instead
	// of in a per-burst closure — keeping the drain path allocation-free.
	pendingN    int
	pendingDone sim.Time

	enqueued       uint64
	delivered      uint64
	bursts         uint64
	descHit        uint64
	descMiss       uint64
	dropRingFull   uint64
	bytesDelivered uint64
	waitTotal      sim.Duration
}

// QueueGroupConfig configures one bucket's batched receive path.
type QueueGroupConfig struct {
	Engine *sim.Engine
	Model  timing.Model
	LLC    *cache.LLC // optional: descriptor-line DDIO model
	Ring   *mem.BurstRing
	Slab   *mem.ConnSlab
	Batch  int // max descriptors per drain event
}

// NewQueueGroup builds a bucket receive path over an existing ring and slab.
func NewQueueGroup(cfg QueueGroupConfig) *QueueGroup {
	if cfg.Engine == nil || cfg.Ring == nil || cfg.Slab == nil {
		panic("nic: queue group needs an engine, ring and slab")
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	q := &QueueGroup{
		eng:     cfg.Engine,
		model:   cfg.Model,
		llc:     cfg.LLC,
		ring:    cfg.Ring,
		slab:    cfg.Slab,
		batch:   cfg.Batch,
		dma:     sim.NewServer("qg-dma"),
		scratch: make([]mem.PktRef, cfg.Batch),
	}
	q.drainFn = q.drain
	q.completeFn = q.complete
	return q
}

// Arrive enqueues one descriptor at the current virtual time and, if the
// drain loop is idle, rings the doorbell: the burst drain fires one MMIO
// write later. A full ring rejects the descriptor (counted, never silent).
func (q *QueueGroup) Arrive(d mem.PktRef) bool {
	if !q.ring.Push(d) {
		q.dropRingFull++
		return false
	}
	q.enqueued++
	if !q.draining {
		q.draining = true
		q.eng.After(q.model.MMIOWrite, q.drainFn)
	}
	return true
}

// drain consumes up to one burst of descriptors, charges the DMA and
// descriptor-cache costs, and schedules the completion that delivers the
// burst to the flyweight records.
func (q *QueueGroup) drain() {
	tailBefore := q.ring.Tail()
	n := q.ring.PopBurst(q.scratch)
	if n == 0 {
		q.draining = false
		return
	}
	q.bursts++

	// Cost model: one DMA initiation for the burst, a descriptor-line
	// access per slot (DDIO hit or DRAM miss), and payload DMA bandwidth
	// for descriptor + payload bytes.
	cost := q.model.DMALatency
	bytes := 0
	for i := 0; i < n; i++ {
		if q.llc != nil {
			if q.llc.DMAAccess(q.ring.SlotAddr(tailBefore + uint64(i))) {
				q.descHit++
				cost += q.model.LLCHit
			} else {
				q.descMiss++
				cost += q.model.DRAMAccess
			}
		}
		bytes += 64 + int(q.scratch[i].Len)
	}
	cost += q.model.DMA(bytes)

	now := q.eng.Now()
	_, done := q.dma.Acquire(now, cost)
	q.waitTotal += sim.Duration(done - now)

	q.pendingN = n
	q.pendingDone = done
	q.eng.At(done, q.completeFn)
}

// complete delivers the in-flight burst to the flyweight records and either
// parks the drain loop or drains the next burst.
func (q *QueueGroup) complete() {
	n, done := q.pendingN, q.pendingDone
	for _, d := range q.scratch[:n] {
		q.bytesDelivered += uint64(d.Len)
		if q.Deliver != nil {
			q.Deliver(d, done)
		}
	}
	q.delivered += uint64(n)
	q.eng.AddFired(n - 1) // the event itself counts once; credit the rest
	if q.ring.Empty() {
		q.draining = false
		return
	}
	q.drain()
}

// Counters.

// Enqueued returns descriptors accepted into the ring.
func (q *QueueGroup) Enqueued() uint64 { return q.enqueued }

// Delivered returns descriptors handed to the flyweight layer.
func (q *QueueGroup) Delivered() uint64 { return q.delivered }

// Bursts returns the number of drain events fired.
func (q *QueueGroup) Bursts() uint64 { return q.bursts }

// DescHit and DescMiss split descriptor-line accesses by DDIO outcome.
func (q *QueueGroup) DescHit() uint64  { return q.descHit }
func (q *QueueGroup) DescMiss() uint64 { return q.descMiss }

// DropRingFull returns descriptors refused because the ring was full.
func (q *QueueGroup) DropRingFull() uint64 { return q.dropRingFull }

// BytesDelivered returns payload bytes handed to the flyweight layer.
func (q *QueueGroup) BytesDelivered() uint64 { return q.bytesDelivered }

// WaitTotal returns cumulative arrival-to-completion latency across bursts.
func (q *QueueGroup) WaitTotal() sim.Duration { return q.waitTotal }

// Ring returns the group's descriptor ring.
func (q *QueueGroup) Ring() *mem.BurstRing { return q.ring }

// Slab returns the group's connection slab.
func (q *QueueGroup) Slab() *mem.ConnSlab { return q.slab }
