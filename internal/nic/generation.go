package nic

import (
	"errors"
	"fmt"

	"norman/internal/overlay"
	"norman/internal/packet"
	"norman/internal/sim"
)

// This file is the NIC half of the live-upgrade subsystem (DESIGN.md §12):
// A/B pipeline generations. A new overlay chain is *staged* into a shadow
// generation — verified, charged against the same SRAM budget as everything
// else on the NIC, but not yet deciding packets — then *activated* at a
// packet boundary while ingress is briefly paused-and-buffered, with the old
// generation retained for rollback until the canary window *commits* it.
// ReloadBitstream is the outage this machinery exists to avoid: the staged
// swap costs MMIO writes (microseconds), not a respin (seconds).

// Generation-lifecycle errors.
var (
	ErrNothingStaged  = errors.New("nic: no staged generation")
	ErrAlreadyStaged  = errors.New("nic: a generation is already staged")
	ErrNoPrevGen      = errors.New("nic: no previous generation to roll back to")
	ErrRxPaused       = errors.New("nic: ingress already paused")
	ErrRxNotPaused    = errors.New("nic: ingress not paused")
	ErrUpgradeOutage  = errors.New("nic: dataplane is down (bitstream reload in progress)")
	ErrStagedNotValid = errors.New("nic: staged program failed verification")
)

// pipelineGen is one retained pipeline generation: both programs plus the
// SRAM bytes charged for holding them resident alongside the live pair.
type pipelineGen struct {
	ingress *overlay.Program
	egress  *overlay.Program
	sram    int
}

func genSRAM(ing, eg *overlay.Program) int {
	b := 0
	if ing != nil {
		b += ing.SRAMBytes()
	}
	if eg != nil {
		b += eg.SRAMBytes()
	}
	return b
}

// genLoadCost is the MMIO write traffic to program one generation's chains
// into the shadow bank: one configuration-register write per instruction word
// and per declared table/meter/counter, same cost model as LoadProgram.
func (n *NIC) genLoadCost(g *pipelineGen) sim.Duration {
	writes := 0
	for _, p := range []*overlay.Program{g.ingress, g.egress} {
		if p != nil {
			writes += len(p.Code) + len(p.Tables) + len(p.Meters) + len(p.Counters)
		}
	}
	return sim.Duration(writes) * sim.Duration(n.model.MMIOWrite)
}

// StageGeneration verifies and stages a shadow pipeline generation (ingress
// and/or egress chain; nil means "no program on that pipeline in the new
// generation"). The shadow copy is charged against the SRAM budget on top of
// the live generation — double residency is the price of a hitless swap —
// and rejected with ErrSRAMExhausted when the budget cannot hold both.
// Restaging replaces a previously staged generation, releasing its charge.
// Staging while the dataplane is down is refused: there is no live traffic
// to protect and LoadProgram after the outage is strictly cheaper.
func (n *NIC) StageGeneration(now sim.Time, ing, eg *overlay.Program) error {
	if n.Down(now) {
		return ErrUpgradeOutage
	}
	for _, p := range []*overlay.Program{ing, eg} {
		if p == nil {
			continue
		}
		if err := overlay.Verify(p); err != nil {
			return fmt.Errorf("%w: %q: %v", ErrStagedNotValid, p.Name, err)
		}
	}
	g := &pipelineGen{ingress: ing, egress: eg, sram: genSRAM(ing, eg)}
	old := 0
	if n.staged != nil {
		old = n.staged.sram
	}
	used, budget := n.SRAM()
	if used-old+g.sram > budget {
		return fmt.Errorf("%w: staged generation needs %d bytes, %d free",
			ErrSRAMExhausted, g.sram, budget-(used-old))
	}
	n.sramUsed += g.sram - old
	n.staged = g
	return nil
}

// StagedGeneration reports whether a shadow generation is staged.
func (n *NIC) StagedGeneration() bool { return n.staged != nil }

// AbortStaged discards the staged generation and releases its SRAM charge.
func (n *NIC) AbortStaged() {
	if n.staged == nil {
		return
	}
	n.sramUsed -= n.staged.sram
	n.staged = nil
}

// ActivateStaged flips the epoch: the staged generation becomes the live
// pipeline pair and the old generation is retained (still charged against
// SRAM) for rollback until CommitGeneration or RollbackGeneration resolves
// the canary. Returns the activation latency — the MMIO traffic to program
// the shadow bank, which the caller must cover with a paused ingress so the
// flip lands at a packet boundary. The flow cache is flushed: nothing
// memoized under the old chain may decide a packet under the new one.
func (n *NIC) ActivateStaged(now sim.Time) (sim.Duration, error) {
	if n.staged == nil {
		return 0, ErrNothingStaged
	}
	if n.prevGen != nil {
		// An unresolved canary: the caller must commit or roll back first.
		return 0, fmt.Errorf("nic: generation %d still in canary", n.generation)
	}
	g := n.staged
	n.staged = nil

	// Retain the old live pair for rollback. Its programs were counted live
	// by SRAM(); now they are counted via prevGen.sram instead, while the new
	// pair moves from the staged charge to the live-program accounting — the
	// total double-residency footprint is unchanged by the flip.
	prev := &pipelineGen{sram: 0}
	if n.ingress != nil {
		prev.ingress = n.ingress.Program()
	}
	if n.egress != nil {
		prev.egress = n.egress.Program()
	}
	prev.sram = genSRAM(prev.ingress, prev.egress)
	n.sramUsed += prev.sram - g.sram
	n.prevGen = prev

	if g.ingress != nil {
		n.lastGood[Ingress] = prev.ingress
		n.ingress = overlay.NewMachine(g.ingress)
		n.ingressCacheable = programCacheable(g.ingress)
	} else {
		n.ingress = nil
		n.ingressCacheable = false
	}
	if g.egress != nil {
		n.lastGood[Egress] = prev.egress
		n.egress = overlay.NewMachine(g.egress)
	} else {
		n.egress = nil
	}
	n.fcFlush()
	n.generation++
	return n.genLoadCost(g), nil
}

// CommitGeneration resolves the canary in favor of the new generation: the
// retained old pair is discarded and its SRAM charge released.
func (n *NIC) CommitGeneration(now sim.Time) error {
	if n.prevGen == nil {
		return ErrNoPrevGen
	}
	n.sramUsed -= n.prevGen.sram
	n.prevGen = nil
	return nil
}

// RollbackGeneration reverts the canary: the retained old generation becomes
// live again, the rolled-back pair is discarded entirely, and the epoch
// advances (a rollback is a flip too — the generation counter never moves
// backwards). The flow cache is flushed for the same reason as activation.
func (n *NIC) RollbackGeneration(now sim.Time) error {
	if n.prevGen == nil {
		return ErrNoPrevGen
	}
	prev := n.prevGen
	n.prevGen = nil
	n.sramUsed -= prev.sram // the pair becomes the live charge again
	if prev.ingress != nil {
		n.ingress = overlay.NewMachine(prev.ingress)
		n.ingressCacheable = programCacheable(prev.ingress)
	} else {
		n.ingress = nil
		n.ingressCacheable = false
	}
	if prev.egress != nil {
		n.egress = overlay.NewMachine(prev.egress)
	} else {
		n.egress = nil
	}
	n.fcFlush()
	n.generation++
	return nil
}

// Generation returns the live pipeline generation number. It bumps on every
// epoch flip — activation and rollback alike — so two observers that agree on
// the number agree on the exact decision procedure deciding packets.
func (n *NIC) Generation() uint64 { return n.generation }

// InCanary reports whether an activated generation still retains its
// predecessor for rollback.
func (n *NIC) InCanary() bool { return n.prevGen != nil }

// IngressCacheable reports whether the live ingress chain's decisions are
// flow-memoizable (the flow cache's install gate) — the upgrade manager uses
// it to decide whether warm-transferred entries are admissible under the new
// generation.
func (n *NIC) IngressCacheable() bool { return n.ingressCacheable }

// PauseRx pauses ingress admission: frames that clear the MAC are buffered
// in arrival order up to capFrames (≤0 means DefaultPauseFrames); overflow
// becomes RxPauseDrop — a typed, conservation-ledger drop class, never a
// silent loss. This is the "brief pause, bounded budget" half of the hitless
// cutover: the wire keeps delivering while the epoch flips.
func (n *NIC) PauseRx(capFrames int) error {
	if n.rxPaused {
		return ErrRxPaused
	}
	if capFrames <= 0 {
		capFrames = DefaultPauseFrames
	}
	n.rxPaused = true
	n.rxPauseCap = capFrames
	return nil
}

// DefaultPauseFrames bounds the cutover pause buffer: at 100 Gbps line rate
// and minimum frames, 256 slots cover several microseconds of pause — an
// order of magnitude more than a staged activation's MMIO cost.
const DefaultPauseFrames = 256

// ResumeRx reopens ingress admission and replays the buffered frames in
// arrival order through the normal admission path at the current instant.
// The replayed frames see the *new* generation — that is the point: they
// waited out the flip instead of being blackholed by it.
func (n *NIC) ResumeRx() error {
	if !n.rxPaused {
		return ErrRxNotPaused
	}
	n.rxPaused = false
	n.rxPauseCap = 0
	buf := n.rxPauseBuf
	n.rxPauseBuf = nil
	now := n.eng.Now()
	for _, p := range buf {
		n.rxAdmit(p, now)
	}
	return nil
}

// RxPaused reports whether ingress admission is paused.
func (n *NIC) RxPaused() bool { return n.rxPaused }

// RxPauseQueue returns the number of frames currently held in the pause
// buffer.
func (n *NIC) RxPauseQueue() int { return len(n.rxPauseBuf) }

// pauseIntake buffers (or, over budget, drops) one frame while ingress is
// paused. Returns true when the frame was consumed by the pause path.
func (n *NIC) pauseIntake(p *packet.Packet, now sim.Time) bool {
	if !n.rxPaused {
		return false
	}
	if len(n.rxPauseBuf) >= n.rxPauseCap {
		n.RxPauseDrop++
		n.trace(p, now, "nic", "rx_pause_drop", "")
		return true
	}
	n.rxPauseBuf = append(n.rxPauseBuf, p)
	n.RxPauseBuffered++
	n.trace(p, now, "nic", "rx_pause_buffer", fmt.Sprintf("depth=%d", len(n.rxPauseBuf)))
	return true
}
