package nic

import (
	"fmt"
	"sort"

	"norman/internal/overlay"
	"norman/internal/packet"
	"norman/internal/sim"
)

// This file is the NIC's tenant performance-isolation layer (OSMOSIS-shaped):
// weighted deficit-round-robin scheduling of the two serial NIC-internal
// resources — the overlay pipeline and the PCIe DMA engine — plus per-tenant
// ingress FIFO accounting. Admission control (the overload governor) decides
// *whether* a tenant gets resources; this layer decides *in what order* the
// resources serve the tenants that were admitted, which is what keeps an
// adversarial neighbor's backlog out of a latency-sensitive tenant's way.
//
// The scheduler is strictly opt-in: with no scheduler installed every request
// acquires its server directly, preserving the historical FIFO dataplane
// byte-for-byte (E1–E12 tables do not move).

// reqKind selects which datapath continuation a grant resumes.
type reqKind uint8

const (
	reqTxFetch reqKind = iota // DMA engine: TX descriptor+payload fetch
	reqTxPipe                 // pipeline: egress slot for a fetched frame
	reqRxPipe                 // pipeline: ingress slot for a wire frame
	reqRxDMA                  // DMA engine: RX descriptor read + payload store
)

// grant is one queued request for a scheduled resource. It is a flat value —
// per-tenant queues are rings of grants, so steady-state scheduling allocates
// nothing. est is the *estimated* server occupancy used for deficit
// accounting at selection time; the actual cost (which may include a DDIO
// descriptor miss the scheduler cannot predict) is billed as a correction
// when the grant is served.
type grant struct {
	kind  reqKind
	c     *Conn // nil only for unsteered reqRxPipe frames
	p     *packet.Packet
	index uint64       // ring slot, DMA kinds only
	frame int          // wire frame length
	est   sim.Duration // estimated server occupancy (DRR accounting unit)
	prod  sim.Time     // TX descriptor Produced stamp (reqTxFetch)
	enq   sim.Time     // when the request was queued, for wait accounting
}

// tenantID attributes a grant: the steered connection's tenant, or whatever
// the packet already carries (0, the unattributed tenant, for unsteered
// ingress).
func (g grant) tenantID() uint32 {
	if g.c != nil {
		return g.c.Meta.Tenant
	}
	return g.p.Meta.Tenant
}

// tenantQ is one tenant's state on one scheduled resource: a grant ring and
// the DRR deficit. Deficits are int64 nanoseconds of server time and reset
// when the queue drains — an idle tenant neither banks credit nor carries
// debt, which is what makes the scheduler work-conserving.
type tenantQ struct {
	tenant  uint32
	weight  int
	quantum int64 // per-round deficit refill, ns of server time
	deficit int64

	q      []grant
	head   int
	n      int
	queued bool // on the active ring

	grants uint64       // requests served
	work   sim.Duration // server occupancy granted
	wait   sim.Duration // time requests spent queued
}

func (q *tenantQ) push(g grant) {
	if q.n == len(q.q) {
		grown := make([]grant, maxInt(8, 2*len(q.q)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.q[(q.head+i)%len(q.q)]
		}
		q.q = grown
		q.head = 0
	}
	q.q[(q.head+q.n)%len(q.q)] = g
	q.n++
}

func (q *tenantQ) pop() grant {
	g := q.q[q.head]
	q.q[q.head] = grant{} // drop packet references
	q.head = (q.head + 1) % len(q.q)
	q.n--
	return g
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TenantDRR schedules one serial sim.Server across tenants by deficit round
// robin — the same discipline as the qos egress DRR, rebuilt over grant rings
// so the per-packet hot path (Request → select → serve) allocates nothing.
// Each round a backlogged tenant's deficit grows by weight × the cost of one
// full frame on this resource; it is served while the deficit covers the head
// grant's estimate. Overlay cycles and miss penalties the estimate missed are
// billed post-hoc with Charge, so a tenant that runs expensive programs pays
// for them in its own schedule, not its neighbors'.
type TenantDRR struct {
	nic *NIC
	srv *sim.Server

	qs    map[uint32]*tenantQ
	order []uint32 // sorted tenant ids, for deterministic accessors

	active     []uint32 // round-robin ring of backlogged tenant ids
	activeHead int
	activeN    int

	backlog int
	pumping bool
	pumpFn  func()

	base      sim.Duration // one weight unit's per-round refill
	defWeight int

	// cost returns a grant's actual server occupancy (it may touch the LLC,
	// so it runs exactly once, at serve time). deliver resumes the datapath
	// once the server slot ending at done is owned.
	cost    func(g grant) sim.Duration
	deliver func(g grant, done sim.Time)
}

func newTenantDRR(n *NIC, srv *sim.Server, weights map[uint32]int, base sim.Duration,
	cost func(grant) sim.Duration, deliver func(grant, sim.Time)) *TenantDRR {
	if base < 1 {
		base = 1
	}
	d := &TenantDRR{
		nic:       n,
		srv:       srv,
		qs:        make(map[uint32]*tenantQ, len(weights)),
		base:      base,
		defWeight: 1,
		cost:      cost,
		deliver:   deliver,
	}
	d.pumpFn = d.pump
	ids := make([]uint32, 0, len(weights))
	for id := range weights {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		d.addQueue(id, weights[id])
	}
	return d
}

func (d *TenantDRR) addQueue(tenant uint32, weight int) *tenantQ {
	if weight < 1 {
		weight = 1
	}
	q := &tenantQ{tenant: tenant, weight: weight, quantum: int64(d.base) * int64(weight)}
	d.qs[tenant] = q
	i := sort.Search(len(d.order), func(i int) bool { return d.order[i] >= tenant })
	d.order = append(d.order, 0)
	copy(d.order[i+1:], d.order[i:])
	d.order[i] = tenant
	return q
}

// queue returns (creating with the default weight if needed) a tenant's state.
func (d *TenantDRR) queue(tenant uint32) *tenantQ {
	if q, ok := d.qs[tenant]; ok {
		return q
	}
	return d.addQueue(tenant, d.defWeight)
}

// Request submits one resource request. When the resource is idle and no one
// is backlogged the grant is served immediately — an uncontended tenant sees
// exactly the unscheduled latency, and (as in classic DRR) uncontended serves
// do not touch deficits. Otherwise the request queues on its tenant ring and
// the round-robin pump orders it against the other tenants' backlogs.
func (d *TenantDRR) Request(g grant) {
	now := d.nic.eng.Now()
	g.enq = now
	q := d.queue(g.tenantID())
	if d.backlog == 0 && !d.srv.FreeAt().After(now) {
		d.serve(q, g, now)
		return
	}
	q.push(g)
	d.backlog++
	if !q.queued {
		q.queued = true
		d.activePush(q.tenant)
	}
	d.schedule(d.srv.FreeAt())
}

// Charge bills extra server-adjacent work (overlay cycles, miss penalties) to
// a tenant's deficit. It only bites while the tenant is backlogged — deficits
// reset when a queue drains — which is the right scope: uncontended work
// delays nobody.
func (d *TenantDRR) Charge(tenant uint32, dur sim.Duration) {
	if dur <= 0 {
		return
	}
	d.queue(tenant).deficit -= int64(dur)
}

func (d *TenantDRR) serve(q *tenantQ, g grant, now sim.Time) {
	cost := d.cost(g)
	_, done := d.srv.Acquire(now, cost)
	q.grants++
	q.work += cost
	q.wait += now.Sub(g.enq)
	d.deliver(g, done)
}

// schedule keeps exactly one pending pump event against the server.
func (d *TenantDRR) schedule(at sim.Time) {
	if d.pumping {
		return
	}
	d.pumping = true
	if now := d.nic.eng.Now(); at.Before(now) {
		at = now
	}
	d.nic.eng.At(at, d.pumpFn)
}

func (d *TenantDRR) pump() {
	d.pumping = false
	now := d.nic.eng.Now()
	if free := d.srv.FreeAt(); free.After(now) {
		// Someone (a direct serve, or a non-tenant user of the server)
		// occupied the resource since this pump was scheduled; try again
		// when it frees.
		if d.backlog > 0 {
			d.schedule(free)
		}
		return
	}
	g, q, ok := d.next()
	if !ok {
		return
	}
	cost := d.cost(g)
	// True-up: the deficit was charged the estimate at selection; bill the
	// difference so tenants pay actual occupancy (DDIO misses included).
	q.deficit -= int64(cost) - int64(g.est)
	_, done := d.srv.Acquire(now, cost)
	q.grants++
	q.work += cost
	q.wait += now.Sub(g.enq)
	d.deliver(g, done)
	if d.backlog > 0 {
		d.schedule(done)
	}
}

// next runs the DRR selection: visit the active ring, refill-and-rotate while
// the head tenant's deficit cannot cover its head grant, and pop the first
// affordable grant. Queues that drain leave the round with their deficit
// reset.
func (d *TenantDRR) next() (grant, *tenantQ, bool) {
	for d.activeN > 0 {
		q := d.qs[d.active[d.activeHead]]
		if q.n == 0 {
			q.queued = false
			q.deficit = 0
			d.activePop()
			continue
		}
		g := q.q[q.head]
		if q.deficit < int64(g.est) {
			q.deficit += q.quantum
			d.activeRotate()
			continue
		}
		q.pop()
		d.backlog--
		q.deficit -= int64(g.est)
		if q.n == 0 {
			q.queued = false
			q.deficit = 0
			d.activePop()
		}
		return g, q, true
	}
	return grant{}, nil, false
}

func (d *TenantDRR) activePush(id uint32) {
	if d.activeN == len(d.active) {
		grown := make([]uint32, maxInt(8, 2*len(d.active)))
		for i := 0; i < d.activeN; i++ {
			grown[i] = d.active[(d.activeHead+i)%len(d.active)]
		}
		d.active = grown
		d.activeHead = 0
	}
	d.active[(d.activeHead+d.activeN)%len(d.active)] = id
	d.activeN++
}

func (d *TenantDRR) activePop() uint32 {
	id := d.active[d.activeHead]
	d.activeHead = (d.activeHead + 1) % len(d.active)
	d.activeN--
	return id
}

func (d *TenantDRR) activeRotate() { d.activePush(d.activePop()) }

// Backlog returns the total queued grants across tenants.
func (d *TenantDRR) Backlog() int { return d.backlog }

// tenantRx is one tenant's share of the ingress FIFO. Partitioning the FIFO
// is what stops a backlogged neighbor's frames from camping every slot: each
// tenant overflows its own share and the MAC drops *its* excess, not the
// victim's.
type tenantRx struct {
	inflight int
	window   int
	fifoDrop uint64
}

// TenantSched bundles the two per-resource schedulers and the per-tenant
// ingress FIFO accounting. Install with NIC.SetTenantScheduler before traffic
// flows (it is a control-plane configuration, like steering or programs).
type TenantSched struct {
	n    *NIC
	Pipe *TenantDRR
	DMA  *TenantDRR

	weights map[uint32]int
	total   int

	rx      map[uint32]*tenantRx
	rxOrder []uint32
	defRxW  int
}

func newTenantSched(n *NIC, weights map[uint32]int) *TenantSched {
	s := &TenantSched{
		n:       n,
		weights: make(map[uint32]int, len(weights)),
		rx:      make(map[uint32]*tenantRx, len(weights)),
	}
	ids := make([]uint32, 0, len(weights))
	for id, w := range weights {
		if w < 1 {
			w = 1
		}
		s.weights[id] = w
		s.total += w
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// Quanta: one weight unit buys one full frame per round on each resource.
	s.Pipe = newTenantDRR(n, n.pipeline, s.weights, n.pipeOccupancy(1514), s.pipeCost, s.pipeGrant)
	s.DMA = newTenantDRR(n, n.dma, s.weights, n.model.DMA(64+1514), s.dmaCostOf, s.dmaGrant)
	// FIFO shares: weight-proportional with a floor, so even the lightest
	// tenant can absorb a small burst.
	s.defRxW = maxInt(8, n.rxWindow/(4*maxInt(1, s.total)))
	for _, id := range ids {
		s.rxQueue(id)
	}
	return s
}

func (s *TenantSched) rxQueue(tenant uint32) *tenantRx {
	if r, ok := s.rx[tenant]; ok {
		return r
	}
	win := s.defRxW
	if w, ok := s.weights[tenant]; ok {
		win = maxInt(8, s.n.rxWindow*w/s.total)
	}
	r := &tenantRx{window: win}
	s.rx[tenant] = r
	i := sort.Search(len(s.rxOrder), func(i int) bool { return s.rxOrder[i] >= tenant })
	s.rxOrder = append(s.rxOrder, 0)
	copy(s.rxOrder[i+1:], s.rxOrder[i:])
	s.rxOrder[i] = tenant
	return r
}

// pipeCost: the pipeline's occupancy is frame-length-determined, so the
// estimate is exact.
func (s *TenantSched) pipeCost(g grant) sim.Duration { return g.est }

// dmaCostOf computes the DMA engine occupancy at serve time — this is where
// the descriptor's DDIO fate (per-tenant partition included) is decided.
func (s *TenantSched) dmaCostOf(g grant) sim.Duration {
	if g.kind == reqTxFetch {
		return s.n.dmaCost(g.c, g.c.TX, g.index, g.frame, false)
	}
	return s.n.dmaCost(g.c, g.c.RX, g.index, g.frame, true)
}

// dmaGrant resumes the datapath after a DMA grant: TX fetches continue the
// connection's drain chain and deliver the frame to the egress pipeline after
// the PCIe flight; RX stores become host-visible after the same flight.
func (s *TenantSched) dmaGrant(g grant, done sim.Time) {
	n := s.n
	switch g.kind {
	case reqTxFetch:
		c, p, frame, prod := g.c, g.p, g.frame, g.prod
		n.eng.At(done, func() { n.drainTx(c) })
		n.eng.At(done.Add(n.model.DMALatency), func() { n.txArrive(c, p, frame, prod) })
	default: // reqRxDMA
		c, p, index := g.c, g.p, g.index
		n.eng.At(done.Add(n.model.DMALatency), func() { n.rxComplete(c, p, index) })
	}
}

// pipeGrant resumes the datapath after a pipeline grant: the overlay runs now
// (its cycles billed to the owning tenant), and the frame leaves the pipeline
// once the granted occupancy plus program latency elapses.
func (s *TenantSched) pipeGrant(g grant, done sim.Time) {
	n := s.n
	now := n.eng.Now()
	lat := sim.Duration(n.model.NICPipeline)
	switch g.kind {
	case reqTxPipe:
		c, p := g.c, g.p
		if n.egress != nil {
			verdict, cycles, trap := n.egress.Run(p, env{n: n, now: now, c: c})
			if trap != nil {
				if n.tracer != nil {
					n.trace(p, now, "nic", "trap_fallback", "pipeline=egress: "+trap.Error())
				}
				verdict, cycles = n.trapFallback(Egress, p, env{n: n, now: now, c: c})
			}
			cyc := n.model.NICCycles(cycles)
			lat += cyc
			s.Pipe.Charge(p.Meta.Tenant, cyc)
			if n.tracer != nil {
				n.trace(p, now, "nic", "pipeline_egress", fmt.Sprintf("verdict=%v cycles=%d", verdict, cycles))
			}
			if verdict == overlay.VerdictDrop {
				n.TxDropVerdict++
				n.txSlotFree()
				return
			}
		}
		n.eng.At(done.Add(lat), func() { n.txEmit(c, p) })
	default: // reqRxPipe
		c, p := g.c, g.p
		if n.ingress != nil {
			if e, hit := n.fcLookup(p, c); hit {
				// Fast path: single-lookup cost, billed to the tenant like
				// any other pipeline-adjacent work.
				cyc := n.model.NICCycles(1)
				lat += cyc
				s.Pipe.Charge(p.Meta.Tenant, cyc)
				p.Meta.Mark = e.mark
				p.Meta.Class = e.class
				if n.tracer != nil {
					n.trace(p, now, "nic", "flowcache_hit", fmt.Sprintf("verdict=%v hits=%d", e.verdict, e.hits))
				}
				if e.verdict == overlay.VerdictDrop {
					n.RxDropVerdict++
					n.rxRelease(p)
					return
				}
			} else {
				verdict, cycles, trap := n.ingress.Run(p, env{n: n, now: now, c: c})
				trapped := trap != nil
				if trapped {
					if n.tracer != nil {
						n.trace(p, now, "nic", "trap_fallback", "pipeline=ingress: "+trap.Error())
					}
					verdict, cycles = n.trapFallback(Ingress, p, env{n: n, now: now, c: c})
				}
				n.IngressProgCycles += uint64(cycles)
				cyc := n.model.NICCycles(cycles)
				if n.fc != nil && n.ingressCacheable && c != nil {
					cyc += n.model.NICCycles(1) // the probe that missed
				}
				lat += cyc
				s.Pipe.Charge(p.Meta.Tenant, cyc)
				if n.tracer != nil {
					n.trace(p, now, "nic", "pipeline_ingress", fmt.Sprintf("verdict=%v cycles=%d", verdict, cycles))
				}
				n.fcInstall(p, c, verdict, trapped)
				if verdict == overlay.VerdictDrop {
					n.RxDropVerdict++
					n.rxRelease(p)
					return
				}
			}
		}
		if c == nil {
			at := done.Add(lat)
			if n.SlowPath != nil {
				n.RxSlowPath++
				n.eng.At(at, func() {
					n.rxRelease(p)
					n.SlowPath(p, n.eng.Now())
				})
			} else {
				n.RxDropNoSteer++
				n.rxRelease(p)
			}
			return
		}
		frame := g.frame
		n.eng.At(done.Add(lat), func() {
			s.DMA.Request(grant{kind: reqRxDMA, c: c, p: p, index: c.RX.Head(),
				frame: frame, est: n.model.DMA(64 + frame)})
		})
	}
}

// rxAdmit charges one ingress FIFO slot to a tenant; false means the tenant's
// share is full and the frame must be dropped (counted per tenant and in the
// global RxFifoDrop).
func (s *TenantSched) rxAdmit(tenant uint32) bool {
	r := s.rxQueue(tenant)
	if r.inflight >= r.window {
		r.fifoDrop++
		return false
	}
	r.inflight++
	return true
}

func (s *TenantSched) rxRelease(tenant uint32) {
	if r, ok := s.rx[tenant]; ok && r.inflight > 0 {
		r.inflight--
	}
}

// TenantSchedStats is one tenant's scheduler accounting across both scheduled
// resources plus its ingress FIFO share.
type TenantSchedStats struct {
	Tenant      uint32
	Weight      int
	PipeGrants  uint64
	DMAGrants   uint64
	PipeWork    sim.Duration
	DMAWork     sim.Duration
	PipeWait    sim.Duration
	DMAWait     sim.Duration
	RxFifoDrops uint64
	RxInflight  int
	RxWindow    int
}

func (s *TenantSched) statsFor(tenant uint32) TenantSchedStats {
	st := TenantSchedStats{Tenant: tenant, Weight: s.weights[tenant]}
	if st.Weight == 0 {
		st.Weight = 1
	}
	if q, ok := s.Pipe.qs[tenant]; ok {
		st.PipeGrants, st.PipeWork, st.PipeWait = q.grants, q.work, q.wait
	}
	if q, ok := s.DMA.qs[tenant]; ok {
		st.DMAGrants, st.DMAWork, st.DMAWait = q.grants, q.work, q.wait
	}
	if r, ok := s.rx[tenant]; ok {
		st.RxFifoDrops, st.RxInflight, st.RxWindow = r.fifoDrop, r.inflight, r.window
	}
	return st
}

// Stats returns per-tenant scheduler accounting in ascending tenant order —
// the union of every tenant either scheduler or the FIFO accountant has seen.
// Sorted iteration keeps metrics dumps and ctl output deterministic.
func (s *TenantSched) Stats() []TenantSchedStats {
	seen := make(map[uint32]bool, len(s.rxOrder))
	ids := make([]uint32, 0, len(s.rxOrder))
	add := func(list []uint32) {
		for _, id := range list {
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}
	add(s.rxOrder)
	add(s.Pipe.order)
	add(s.DMA.order)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]TenantSchedStats, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.statsFor(id))
	}
	return out
}

// SetTenantScheduler installs weighted DRR scheduling of the NIC pipeline and
// DMA engine across tenants (weights sum to the total share; higher = more).
// nil or empty weights uninstall the scheduler, restoring the historical FIFO
// dataplane. Install at configuration time, before traffic flows.
func (n *NIC) SetTenantScheduler(weights map[uint32]int) {
	if len(weights) == 0 {
		n.tsched = nil
		return
	}
	n.tsched = newTenantSched(n, weights)
}

// TenantScheduler returns the installed tenant scheduler, nil when the
// dataplane is unscheduled.
func (n *NIC) TenantScheduler() *TenantSched { return n.tsched }

// Weights returns a copy of the scheduler's tenant weights (the flow cache
// partitions its capacity by the same shares).
func (s *TenantSched) Weights() map[uint32]int {
	out := make(map[uint32]int, len(s.weights))
	for id, w := range s.weights {
		out[id] = w
	}
	return out
}

// TenantFifoDrops returns ingress frames dropped at one tenant's FIFO share
// (0 when no scheduler is installed — unscheduled drops are global).
func (n *NIC) TenantFifoDrops(tenant uint32) uint64 {
	if n.tsched == nil {
		return 0
	}
	if r, ok := n.tsched.rx[tenant]; ok {
		return r.fifoDrop
	}
	return 0
}

// TenantRxOccupancy sums RX-ring pressure over one tenant's connections:
// occupied and capacity descriptors plus rings at or above their high
// watermark. Order-independent sums, so the conn map iteration stays
// deterministic.
func (n *NIC) TenantRxOccupancy(tenant uint32) (used, capacity, overHigh int) {
	for _, c := range n.conns {
		if c.Meta.Tenant != tenant {
			continue
		}
		used += c.RX.Len()
		capacity += c.RX.Cap()
		if c.RX.AboveHigh() {
			overHigh++
		}
	}
	return used, capacity, overHigh
}
