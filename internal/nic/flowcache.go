package nic

import (
	"fmt"
	"sort"

	"norman/internal/overlay"
	"norman/internal/packet"
)

// This file is the NIC's exact-match flow cache — the hardware fast path in
// front of the ingress overlay pipeline (ROADMAP item 3; Deri et al.'s
// programmable flow offload). The first packet of a flow runs the full
// overlay chain (the kernel slow path, in the paper's terms: interpretation
// is where interposition semantics live) and installs an entry keyed by the
// 5-tuple; every later packet of the flow hits the cache and applies the
// memoized verdict and mark/class rewrite at single-lookup cost, skipping
// interpretation entirely. The cache is a bounded, set-associative SRAM
// structure charged against the same on-NIC budget as connections and
// steering entries, with clock (second-chance) eviction per bucket and
// optional per-tenant partitions whose evictions never cross tenants.
//
// Correctness rules (DESIGN.md §10):
//
//   - Only flow-invariant programs are cacheable: a program containing
//     meter, update, mirror or notify instructions has per-packet side
//     effects or rate-dependent state, so the NIC refuses to memoize it
//     and every packet takes the slow path (programCacheable).
//   - Per-rule hit counters (count) freeze for cached packets — exactly the
//     deviation real flow offload exhibits ("iptables -L -v" undercounts
//     offloaded flows); the per-entry hit counters preserve the total.
//   - Any event that can change a cached decision flushes or invalidates:
//     program load/unload/trap-fallback and bitstream reload flush the
//     whole cache; steering changes and connection close invalidate the
//     affected keys (both directions).

// flowEntrySRAM is the on-NIC footprint of one cache entry: 13 bytes of key,
// verdict/rewrite results, hit counter and tag bits, padded to the 32-byte
// SRAM row the lookup engine reads in one cycle.
const flowEntrySRAM = 32

// flowCacheWays is the set associativity: a lookup reads one bucket row of
// four entries in parallel, as exact-match hardware tables do.
const flowCacheWays = 4

// flowEntry is one cached flow decision. Entries are flat values in one
// backing array so the steady-state hot path allocates nothing.
type flowEntry struct {
	key     packet.FlowKey
	connID  uint64
	tenant  uint32
	mark    uint32
	class   uint32
	hits    uint64
	sum     uint32 // per-entry checksum over the decision fields (SRAM ECC stand-in)
	verdict overlay.Verdict
	ref     bool // clock second-chance bit
	valid   bool
	// tainted is the simulation's ground truth: an injected SRAM bit flip
	// landed here and the decision fields no longer match what the slow path
	// computed. The hardware cannot read this bit — it can only notice the
	// checksum mismatch, and only when verification is enabled.
	tainted bool
}

// FlowTenantStats is one tenant's slice of the flow-cache accounting:
// occupancy against its partition quota plus its hit/install/evict/deny
// counters. Quota is 0 when the cache is unpartitioned.
type FlowTenantStats struct {
	Tenant   uint32
	Used     int
	Quota    int
	Hits     uint64
	Installs uint64
	Evicts   uint64
	Denied   uint64
}

// FlowCache is the bounded exact-match flow table. It is not safe for
// concurrent use; like the rest of the NIC it lives on one engine's event
// loop.
type FlowCache struct {
	entries []flowEntry // buckets × flowCacheWays, flat
	hands   []uint8     // per-bucket clock hand
	buckets int         // power of two
	mask    uint32
	used    int

	// quotas, when non-nil, partitions capacity per tenant: installs beyond
	// a tenant's quota may only evict that tenant's own entries, and a full
	// bucket may only yield a same-tenant victim — eviction never crosses
	// into another tenant's partition.
	quotas map[uint32]int

	perTenant map[uint32]*FlowTenantStats
	order     []uint32 // sorted tenant ids for deterministic iteration

	// verify, when set, checks every hit's per-entry checksum before the
	// memoized decision is served: a mismatch (an SRAM bit flip landed in the
	// entry) is counted, the entry is dropped, and the packet takes the slow
	// path — the detection half of the health subsystem's failover story.
	// Off (the raw-bypass posture), a corrupted entry's verdict is served
	// as-is.
	verify bool

	// Global counters (Hits + Misses covers every lookup; Installs −
	// Evictions − Invalidations == live entries, the conservation ledger
	// the property tests pin).
	Hits          uint64
	Misses        uint64
	Installs      uint64
	Evictions     uint64
	Invalidations uint64
	// Denied counts installs refused because the owning tenant's partition
	// was full and no same-tenant victim shared the bucket — the typed,
	// accounted form of cross-tenant cache pressure.
	Denied uint64
	// ChecksumFails counts hits refused because the entry's checksum no
	// longer matched its decision fields (detected SRAM corruption); each is
	// also an Invalidation, so the conservation ledger stays balanced.
	ChecksumFails uint64
	// CorruptServed counts lookups that applied a tainted entry's decision —
	// ground-truth accounting of silent verdict corruption, only ever
	// non-zero while verification is off.
	CorruptServed uint64
}

// newFlowCache builds a cache with at least `entries` slots, rounded up to a
// power-of-two bucket count at fixed associativity.
func newFlowCache(entries int) *FlowCache {
	if entries < flowCacheWays {
		entries = flowCacheWays
	}
	buckets := 1
	for buckets*flowCacheWays < entries {
		buckets <<= 1
	}
	return &FlowCache{
		entries:   make([]flowEntry, buckets*flowCacheWays),
		hands:     make([]uint8, buckets),
		buckets:   buckets,
		mask:      uint32(buckets - 1),
		perTenant: make(map[uint32]*FlowTenantStats),
	}
}

// Capacity returns the total entry slots.
func (f *FlowCache) Capacity() int { return f.buckets * flowCacheWays }

// Len returns the live entry count.
func (f *FlowCache) Len() int { return f.used }

// SetQuotas partitions the cache's capacity among tenants in proportion to
// their weights (largest remainder, at least one entry each; ties broken by
// ascending tenant id). nil clears the partition. Existing entries are kept;
// quotas bind on the next install.
func (f *FlowCache) SetQuotas(weights map[uint32]int) error {
	if len(weights) == 0 {
		f.quotas = nil
		return nil
	}
	cap := f.Capacity()
	if len(weights) > cap {
		return fmt.Errorf("nic: %d tenants cannot partition a %d-entry flow cache", len(weights), cap)
	}
	ids := make([]uint32, 0, len(weights))
	total := 0
	for id, w := range weights {
		if w < 1 {
			w = 1
		}
		ids = append(ids, id)
		total += w
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	extra := cap - len(weights)
	type frac struct {
		id  uint32
		rem int
	}
	fr := make([]frac, 0, len(ids))
	quotas := make(map[uint32]int, len(ids))
	used := 0
	for _, id := range ids {
		w := weights[id]
		if w < 1 {
			w = 1
		}
		e := extra * w / total
		quotas[id] = 1 + e
		used += 1 + e
		fr = append(fr, frac{id: id, rem: extra * w % total})
	}
	sort.SliceStable(fr, func(i, j int) bool {
		if fr[i].rem != fr[j].rem {
			return fr[i].rem > fr[j].rem
		}
		return fr[i].id < fr[j].id
	})
	for i := 0; used < cap && i < len(fr); i++ {
		quotas[fr[i].id]++
		used++
	}
	f.quotas = quotas
	for id, q := range quotas {
		f.tenantStats(id).Quota = q
	}
	return nil
}

// Quotas returns the per-tenant partition, nil when unpartitioned.
func (f *FlowCache) Quotas() map[uint32]int { return f.quotas }

func (f *FlowCache) tenantStats(id uint32) *FlowTenantStats {
	if st, ok := f.perTenant[id]; ok {
		return st
	}
	st := &FlowTenantStats{Tenant: id}
	if f.quotas != nil {
		st.Quota = f.quotas[id]
	}
	f.perTenant[id] = st
	i := sort.Search(len(f.order), func(i int) bool { return f.order[i] >= id })
	f.order = append(f.order, 0)
	copy(f.order[i+1:], f.order[i:])
	f.order[i] = id
	return st
}

// TenantStats returns per-tenant accounting in ascending tenant order.
func (f *FlowCache) TenantStats() []FlowTenantStats {
	out := make([]FlowTenantStats, 0, len(f.order))
	for _, id := range f.order {
		out = append(out, *f.perTenant[id])
	}
	return out
}

// flowHash is an inline FNV-1a over the 5-tuple — no allocation, no
// interface values, matching the hot path's zero-alloc pin.
func flowHash(k packet.FlowKey) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	mix := func(b byte) {
		h ^= uint32(b)
		h *= prime
	}
	mix(byte(k.Src >> 24))
	mix(byte(k.Src >> 16))
	mix(byte(k.Src >> 8))
	mix(byte(k.Src))
	mix(byte(k.Dst >> 24))
	mix(byte(k.Dst >> 16))
	mix(byte(k.Dst >> 8))
	mix(byte(k.Dst))
	mix(byte(k.SrcPort >> 8))
	mix(byte(k.SrcPort))
	mix(byte(k.DstPort >> 8))
	mix(byte(k.DstPort))
	mix(k.Proto)
	return h
}

// entrySum is the per-entry checksum the lookup engine can verify in the
// same SRAM row read as the entry itself: an FNV-style mix of every field
// whose corruption would change the cached decision. A bit flip in the
// verdict, rewrite or steering fields breaks the sum; recomputing on every
// install keeps it current.
func entrySum(e *flowEntry) uint32 {
	h := flowHash(e.key)
	mix := func(v uint32) {
		h ^= v
		h *= 16777619
	}
	mix(uint32(e.connID))
	mix(uint32(e.connID >> 32))
	mix(e.tenant)
	mix(e.mark)
	mix(e.class)
	mix(uint32(e.verdict))
	return h
}

// SetVerify enables (or disables) per-entry checksum verification on lookup.
// The health monitor turns it on; a raw-bypass world leaves it off and serves
// whatever the SRAM holds.
func (f *FlowCache) SetVerify(on bool) { f.verify = on }

// Verify reports whether checksum verification is enabled.
func (f *FlowCache) Verify() bool { return f.verify }

// Corrupt models one SRAM bit flip landing in the entry at the given flat
// slot index: the verdict bit and a mark bit are inverted without updating
// the checksum, and the entry is marked tainted (the simulation's ground
// truth). Returns false when the slot holds no live entry — flips in empty
// rows are harmless, exactly as on real hardware.
func (f *FlowCache) Corrupt(slot int) bool {
	if len(f.entries) == 0 {
		return false
	}
	e := &f.entries[slot%len(f.entries)]
	if !e.valid {
		return false
	}
	e.verdict ^= 1 // pass <-> drop
	e.mark ^= 0x10
	e.tainted = true
	return true
}

// bucket returns the slice of ways for a key's bucket plus the bucket index.
func (f *FlowCache) bucket(k packet.FlowKey) (int, []flowEntry) {
	b := int(flowHash(k) & f.mask)
	return b, f.entries[b*flowCacheWays : (b+1)*flowCacheWays : (b+1)*flowCacheWays]
}

// Lookup probes the cache. On a hit the entry's clock bit and hit counters
// advance and the entry is returned; the caller applies the memoized verdict
// and rewrite. Zero allocations in either outcome.
func (f *FlowCache) Lookup(k packet.FlowKey) (*flowEntry, bool) {
	_, row := f.bucket(k)
	for i := range row {
		e := &row[i]
		if e.valid && e.key == k {
			if f.verify && entrySum(e) != e.sum {
				// Detected SRAM corruption: refuse the memoized decision,
				// drop the entry, and miss — the packet takes the slow path
				// and the health monitor sees the failure count move.
				f.ChecksumFails++
				f.drop(e)
				f.Misses++
				return nil, false
			}
			if e.tainted {
				f.CorruptServed++
			}
			e.ref = true
			e.hits++
			f.Hits++
			if st, ok := f.perTenant[e.tenant]; ok {
				st.Hits++
			}
			return e, true
		}
	}
	f.Misses++
	return nil, false
}

// Install memoizes one slow-path result. The entry is charged to the owning
// tenant; when the cache is partitioned, a tenant at quota (or facing a full
// bucket) may only evict its own entries — if none share the bucket the
// install is denied and counted, never satisfied at a neighbor's expense.
func (f *FlowCache) Install(k packet.FlowKey, connID uint64, tenant uint32, verdict overlay.Verdict, mark, class uint32) bool {
	b, row := f.bucket(k)
	st := f.tenantStats(tenant)
	var free *flowEntry
	for i := range row {
		e := &row[i]
		if e.valid && e.key == k {
			if e.tenant != tenant {
				// The key changed hands (steering rewired the flow to another
				// tenant's connection): refreshing in place would leave the old
				// owner's partition accounting inflated forever. Drop the stale
				// entry and take the normal install path so the new owner's
				// quota binds.
				f.drop(e)
				if free == nil {
					free = e
				}
				break
			}
			// Re-install over the existing entry (a slow-path rerun after a
			// racing invalidation): refresh the decision in place.
			e.connID = connID
			e.verdict, e.mark, e.class = verdict, mark, class
			e.sum = entrySum(e)
			e.tainted = false
			e.ref = true
			return true
		}
		if !e.valid && free == nil {
			free = e
		}
	}
	overQuota := f.quotas != nil && st.Quota > 0 && st.Used >= st.Quota
	if f.quotas != nil && st.Quota == 0 {
		// A tenant outside the partition map owns no slice of the cache.
		f.Denied++
		st.Denied++
		return false
	}
	if free != nil && !overQuota {
		f.fill(free, k, connID, tenant, verdict, mark, class)
		return true
	}
	// Evict: clock scan over the bucket, restricted to the installing
	// tenant's own entries when partitioned (or when it is over quota).
	sameTenantOnly := f.quotas != nil
	victim := f.clockVictim(b, row, tenant, sameTenantOnly)
	if victim == nil {
		f.Denied++
		st.Denied++
		return false
	}
	f.evict(victim)
	f.fill(victim, k, connID, tenant, verdict, mark, class)
	return true
}

func (f *FlowCache) fill(e *flowEntry, k packet.FlowKey, connID uint64, tenant uint32, verdict overlay.Verdict, mark, class uint32) {
	*e = flowEntry{key: k, connID: connID, tenant: tenant, verdict: verdict,
		mark: mark, class: class, ref: true, valid: true}
	e.sum = entrySum(e)
	f.used++
	f.Installs++
	f.tenantStats(tenant).Installs++
	f.tenantStats(tenant).Used++
}

func (f *FlowCache) evict(e *flowEntry) {
	f.Evictions++
	if st, ok := f.perTenant[e.tenant]; ok {
		st.Evicts++
		st.Used--
	}
	f.used--
	e.valid = false
}

// clockVictim runs a bounded second-chance scan over one bucket: referenced
// entries get their bit cleared and are passed over; the first unreferenced
// (eligible) entry is the victim. After two sweeps every eligible entry has
// lost its bit, so the scan always terminates with the hand's entry.
func (f *FlowCache) clockVictim(b int, row []flowEntry, tenant uint32, sameTenantOnly bool) *flowEntry {
	eligible := func(e *flowEntry) bool {
		return e.valid && (!sameTenantOnly || e.tenant == tenant)
	}
	any := false
	for i := range row {
		if eligible(&row[i]) {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	hand := int(f.hands[b])
	for scanned := 0; scanned < 2*flowCacheWays; scanned++ {
		e := &row[hand%flowCacheWays]
		hand++
		if !eligible(e) {
			continue
		}
		if e.ref {
			e.ref = false
			continue
		}
		f.hands[b] = uint8(hand % flowCacheWays)
		return e
	}
	// All eligible entries were re-referenced during the sweep; take the
	// one under the hand.
	for scanned := 0; scanned < flowCacheWays; scanned++ {
		e := &row[hand%flowCacheWays]
		hand++
		if eligible(e) {
			f.hands[b] = uint8(hand % flowCacheWays)
			return e
		}
	}
	return nil
}

// InvalidateKey removes the entry for one key (exact direction only; callers
// invalidate the reverse key separately when steering covers both).
func (f *FlowCache) InvalidateKey(k packet.FlowKey) bool {
	_, row := f.bucket(k)
	for i := range row {
		e := &row[i]
		if e.valid && e.key == k {
			f.drop(e)
			return true
		}
	}
	return false
}

// InvalidateConn removes every entry pointing at one connection (connection
// close, ring teardown).
func (f *FlowCache) InvalidateConn(connID uint64) int {
	dropped := 0
	for i := range f.entries {
		e := &f.entries[i]
		if e.valid && e.connID == connID {
			f.drop(e)
			dropped++
		}
	}
	return dropped
}

// Flush removes every entry — the program-reload/recovery invalidation path:
// a new overlay chain may decide any flow differently, so nothing memoized
// under the old chain survives it.
func (f *FlowCache) Flush() int {
	dropped := 0
	for i := range f.entries {
		e := &f.entries[i]
		if e.valid {
			f.drop(e)
			dropped++
		}
	}
	return dropped
}

func (f *FlowCache) drop(e *flowEntry) {
	f.Invalidations++
	if st, ok := f.perTenant[e.tenant]; ok {
		st.Used--
	}
	f.used--
	e.valid = false
}

// FlowEntryExport is one live flow-cache decision in portable form — the
// warm-handover unit of the live-upgrade snapshot. Only the decision fields
// travel; hit counters and clock bits are runtime state that does not survive
// a generation flip.
type FlowEntryExport struct {
	Key     packet.FlowKey  `json:"key"`
	ConnID  uint64          `json:"conn_id"`
	Tenant  uint32          `json:"tenant"`
	Mark    uint32          `json:"mark,omitempty"`
	Class   uint32          `json:"class,omitempty"`
	Verdict overlay.Verdict `json:"verdict"`
}

// Export snapshots the live entries in deterministic (flowLess) key order.
// Tainted entries and entries whose checksum no longer matches their decision
// fields are skipped — corrupted state must never be warm-transferred into a
// new generation's cache.
func (f *FlowCache) Export() []FlowEntryExport {
	out := make([]FlowEntryExport, 0, f.used)
	for i := range f.entries {
		e := &f.entries[i]
		if !e.valid || e.tainted || entrySum(e) != e.sum {
			continue
		}
		out = append(out, FlowEntryExport{
			Key: e.key, ConnID: e.connID, Tenant: e.tenant,
			Mark: e.mark, Class: e.class, Verdict: e.verdict,
		})
	}
	sort.Slice(out, func(i, j int) bool { return flowLess(out[i].Key, out[j].Key) })
	return out
}

// programCacheable reports whether an overlay program's per-packet decision
// is safe to memoize by flow: meters are rate-dependent, updates mutate
// shared table state, and mirror/notify are per-packet side effects — any of
// them makes every packet a slow-path packet.
func programCacheable(p *overlay.Program) bool {
	if p == nil {
		return false
	}
	for _, in := range p.Code {
		switch in.Op {
		case overlay.OpMeter, overlay.OpUpdate, overlay.OpMirror, overlay.OpNotify:
			return false
		}
	}
	return true
}

// EnableFlowCache installs a flow cache with at least `entries` slots
// (rounded up to a power-of-two bucket count at 4-way associativity),
// charging 32 bytes per slot against the on-NIC SRAM budget. Returns
// ErrSRAMExhausted when the budget cannot hold it. Calling again replaces
// the cache (releasing the old charge).
func (n *NIC) EnableFlowCache(entries int) error {
	fc := newFlowCache(entries)
	need := fc.Capacity() * flowEntrySRAM
	old := 0
	if n.fc != nil {
		old = n.fc.Capacity() * flowEntrySRAM
	}
	if n.sramUsed-old+need > n.sramBudget {
		return fmt.Errorf("%w: flow cache needs %d bytes, %d free",
			ErrSRAMExhausted, need, n.sramBudget-(n.sramUsed-old))
	}
	n.sramUsed += need - old
	n.fc = fc
	return nil
}

// DisableFlowCache removes the flow cache and releases its SRAM charge.
func (n *NIC) DisableFlowCache() {
	if n.fc == nil {
		return
	}
	n.sramUsed -= n.fc.Capacity() * flowEntrySRAM
	n.fc = nil
}

// FlowCache returns the installed cache, nil when disabled.
func (n *NIC) FlowCache() *FlowCache { return n.fc }

// fcLookup is the datapath's hit probe: enabled cache, cacheable ingress
// program, steered connection and a parseable 5-tuple are all required —
// anything else is a slow-path packet by construction.
func (n *NIC) fcLookup(p *packet.Packet, c *Conn) (*flowEntry, bool) {
	if n.fc == nil || n.fcBypass || !n.ingressCacheable || c == nil {
		return nil, false
	}
	k, ok := p.Flow()
	if !ok {
		return nil, false
	}
	return n.fc.Lookup(k)
}

// fcInstall memoizes a completed slow-path run. trapped runs never install:
// the fallback swap already flushed the cache and the verdict came from a
// different chain than the one now loaded.
func (n *NIC) fcInstall(p *packet.Packet, c *Conn, verdict overlay.Verdict, trapped bool) {
	if n.fc == nil || n.fcBypass || !n.ingressCacheable || c == nil || trapped {
		return
	}
	k, ok := p.Flow()
	if !ok {
		return
	}
	n.fc.Install(k, c.ID, p.Meta.Tenant, verdict, p.Meta.Mark, p.Meta.Class)
}

// fcInvalidateKey drops both directions of a steering key from the cache.
func (n *NIC) fcInvalidateKey(k packet.FlowKey) {
	if n.fc == nil {
		return
	}
	n.fc.InvalidateKey(k)
	n.fc.InvalidateKey(k.Reverse())
}

// fcFlush empties the cache when the ingress decision procedure changes
// (program load/unload, trap fallback, bitstream reload, recovery restore).
func (n *NIC) fcFlush() {
	if n.fc != nil {
		n.fc.Flush()
	}
}
