package nic

import (
	"testing"

	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/timing"
)

// tenantFlow is the kernel-side (local) flow the NIC steers on; inbound
// frames built by tenantUDP arrive with the tuple reversed.
func tenantFlow(dport uint16) packet.FlowKey {
	return packet.FlowKey{Src: packet.MakeIP(10, 0, 0, 1), Dst: packet.MakeIP(10, 0, 0, 2),
		SrcPort: dport, DstPort: 99, Proto: packet.ProtoUDP}
}

func tenantUDP(dport uint16) *packet.Packet {
	return packet.NewUDP(packet.MAC{1}, packet.MAC{2}, packet.MakeIP(10, 0, 0, 2),
		packet.MakeIP(10, 0, 0, 1), 99, dport, 1460)
}

// tenantWorld builds a NIC with the tenant scheduler installed and one
// steered connection per listed tenant (conn id = tenant id).
func tenantWorld(t *testing.T, weights map[uint32]int, tenants ...uint32) (*NIC, *sim.Engine) {
	t.Helper()
	n, eng := newNIC(1 << 20)
	n.SetTenantScheduler(weights)
	for _, id := range tenants {
		if _, err := n.OpenConn(uint64(id), packet.Meta{UID: id, Tenant: id, TrustedMeta: true}, nil); err != nil {
			t.Fatal(err)
		}
		if err := n.SteerFlow(tenantFlow(uint16(5000+id)), uint64(id)); err != nil {
			t.Fatal(err)
		}
	}
	return n, eng
}

// offer injects count 1502B frames for each listed tenant, interleaved at
// the given spacing — well above the pipeline's ~60ns/frame service rate, so
// every tenant keeps a standing backlog and the DRR's shares are observable.
func offer(n *NIC, eng *sim.Engine, count int, spacing sim.Duration, tenants ...uint32) {
	for i := 0; i < count; i++ {
		at := sim.Time(sim.Duration(i) * spacing)
		for _, id := range tenants {
			id := id
			eng.At(at, func() { n.rxFrame(tenantUDP(uint16(5000 + id))) })
		}
	}
}

// TestTenantSchedulerWeightRatio drives two tenants into sustained ingress
// overload and checks that the pipeline's grant split tracks the configured
// 7:1 weights. The property needs RX-driven backlog: offered load must
// exceed service capacity, or the queues drain each round and DRR degenerates
// to FIFO alternation regardless of weights.
func TestTenantSchedulerWeightRatio(t *testing.T) {
	n, eng := tenantWorld(t, map[uint32]int{1: 7, 2: 1}, 1, 2)
	offer(n, eng, 20000, 30*sim.Nanosecond, 1, 2)
	eng.Run()

	ts := n.TenantScheduler()
	g1 := ts.statsFor(1).PipeGrants
	g2 := ts.statsFor(2).PipeGrants
	if g1 == 0 || g2 == 0 {
		t.Fatalf("both tenants must be served: %d/%d", g1, g2)
	}
	ratio := float64(g1) / float64(g2)
	if ratio < 6 || ratio > 8 {
		t.Fatalf("grant ratio %.2f (g1=%d g2=%d), want ~7 from the 7:1 weights", ratio, g1, g2)
	}
	// Equal frame sizes, so occupancy must track grants.
	wr := float64(ts.statsFor(1).PipeWork) / float64(ts.statsFor(2).PipeWork)
	if wr < 6 || wr > 8 {
		t.Fatalf("work ratio %.2f, want ~7", wr)
	}
}

// TestTenantDRRWorkConserving pins the memoryless-deficit property: an idle
// tenant reserves nothing. Tenant 1 (weight 1) shares the scheduler with an
// idle tenant of weight 7; a strict time-partition would leave the server
// idle 7/8 of the time, DRR must run tenant 1's backlog back to back — the
// virtual clock at drain equals exactly requests × occupancy.
func TestTenantDRRWorkConserving(t *testing.T) {
	n, eng := newNIC(1 << 20)
	ca, err := n.OpenConn(1, packet.Meta{Tenant: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var served uint64
	srv := sim.NewServer("wc.pipe")
	d := newTenantDRR(n, srv, map[uint32]int{1: 1, 2: 7},
		100*sim.Nanosecond,
		func(grant) sim.Duration { return 10 * sim.Nanosecond },
		func(grant, sim.Time) { served++ })
	eng.At(0, func() {
		for i := 0; i < 1000; i++ {
			d.Request(grant{c: ca, est: 10 * sim.Nanosecond})
		}
	})
	eng.Run()
	if served != 1000 {
		t.Fatalf("served %d of 1000", served)
	}
	if want := sim.Time(1000 * 10 * sim.Nanosecond); srv.FreeAt() != want {
		t.Fatalf("server busy until %v, want %v — it idled while tenant 1 was backlogged", srv.FreeAt(), want)
	}
}

// TestTenantSchedulerUncontendedLatency pins the opt-in contract: a single
// uncontended frame sees the identical delivery time with and without the
// scheduler installed — direct serves bypass the DRR machinery entirely.
func TestTenantSchedulerUncontendedLatency(t *testing.T) {
	run := func(sched bool) sim.Time {
		n, eng := newNIC(1 << 20)
		if sched {
			n.SetTenantScheduler(map[uint32]int{1: 7, 2: 1})
		}
		if _, err := n.OpenConn(1, packet.Meta{UID: 1, Tenant: 1, TrustedMeta: true}, nil); err != nil {
			t.Fatal(err)
		}
		if err := n.SteerFlow(tenantFlow(5001), 1); err != nil {
			t.Fatal(err)
		}
		var at sim.Time
		n.OnRxDeliver = func(c *Conn, now sim.Time) { at = now }
		eng.At(0, func() { n.rxFrame(tenantUDP(5001)) })
		eng.Run()
		if at == 0 {
			t.Fatal("frame not delivered")
		}
		return at
	}
	plain := run(false)
	sched := run(true)
	if plain != sched {
		t.Fatalf("uncontended delivery moved under the scheduler: %v vs %v", plain, sched)
	}
}

// TestTenantDRRZeroAlloc pins the per-packet scheduling hot path at zero
// allocations: grant rings and the active ring grow once, then every
// Request → select → serve cycle reuses them.
func TestTenantDRRZeroAlloc(t *testing.T) {
	n, eng := newNIC(1 << 20)
	ca, err := n.OpenConn(1, packet.Meta{Tenant: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := n.OpenConn(2, packet.Meta{Tenant: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var served uint64
	d := newTenantDRR(n, sim.NewServer("test.pipe"), map[uint32]int{1: 3, 2: 1},
		100*sim.Nanosecond,
		func(grant) sim.Duration { return 10 * sim.Nanosecond },
		func(grant, sim.Time) { served++ })
	load := func() {
		for i := 0; i < 64; i++ {
			d.Request(grant{c: ca, est: 10 * sim.Nanosecond})
			d.Request(grant{c: cb, est: 10 * sim.Nanosecond})
		}
		eng.Run()
	}
	load() // grow the rings to steady-state size
	if d.Backlog() != 0 {
		t.Fatalf("backlog %d after drain", d.Backlog())
	}
	if allocs := testing.AllocsPerRun(100, load); allocs != 0 {
		t.Fatalf("scheduling hot path allocates %.2f/op", allocs)
	}
	if served != 128*102 {
		t.Fatalf("served %d grants, want %d", served, 128*102)
	}
}

// BenchmarkTenantDRR measures the scheduled request path under standing
// two-tenant backlog; allocs/op must report 0.
func BenchmarkTenantDRR(b *testing.B) {
	eng := sim.NewEngine()
	n := New(Config{Engine: eng, Model: timing.Default(), SRAMBudget: 1 << 20, RingSize: 8})
	ca, _ := n.OpenConn(1, packet.Meta{Tenant: 1}, nil)
	cb, _ := n.OpenConn(2, packet.Meta{Tenant: 2}, nil)
	d := newTenantDRR(n, sim.NewServer("bench.pipe"), map[uint32]int{1: 3, 2: 1},
		100*sim.Nanosecond,
		func(grant) sim.Duration { return 10 * sim.Nanosecond },
		func(grant, sim.Time) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Request(grant{c: ca, est: 10 * sim.Nanosecond})
		d.Request(grant{c: cb, est: 10 * sim.Nanosecond})
		if i%64 == 63 {
			eng.Run()
		}
	}
	eng.Run()
}
