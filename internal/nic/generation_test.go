package nic

import (
	"errors"
	"testing"

	"norman/internal/mem"
	"norman/internal/overlay"
	"norman/internal/packet"
	"norman/internal/sim"
)

func assemble(t *testing.T, name, src string) *overlay.Program {
	t.Helper()
	p, err := overlay.Assemble(name, src)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return p
}

// TestGenerationLifecycle walks the happy path of an A/B upgrade — stage,
// activate, commit — checking at each step that SRAM double-residency is
// charged and released correctly, the generation counter moves only on the
// flip, and the live decision procedure actually changes at the flip.
func TestGenerationLifecycle(t *testing.T) {
	n, eng := newNIC(1 << 20)
	_, _ = n.OpenConn(1, packet.Meta{}, nil)
	n.SetDefaultConn(1)

	v1 := assemble(t, "v1", "ldf r0, dst_port\njne r0, 80, ok\ndrop\nok:\npass\n")
	v2 := assemble(t, "v2", "ldf r0, dst_port\njne r0, 81, ok\ndrop\nok:\npass\n")
	if _, _, err := n.LoadProgram(Ingress, v1); err != nil {
		t.Fatal(err)
	}
	if n.Generation() != 0 || n.InCanary() || n.StagedGeneration() {
		t.Fatal("fresh NIC must be at generation 0, no canary, nothing staged")
	}
	liveUsed, _ := n.SRAM()

	// Staging charges the shadow copy on top of the live pair.
	if err := n.StageGeneration(0, v2, nil); err != nil {
		t.Fatal(err)
	}
	stagedUsed, _ := n.SRAM()
	if stagedUsed <= liveUsed {
		t.Fatalf("staging must charge SRAM: %d -> %d", liveUsed, stagedUsed)
	}
	if !n.StagedGeneration() || n.Generation() != 0 {
		t.Fatal("staging must not flip the generation")
	}
	// Restaging replaces the charge, not stacks it.
	if err := n.StageGeneration(0, v2, nil); err != nil {
		t.Fatal(err)
	}
	if again, _ := n.SRAM(); again != stagedUsed {
		t.Fatalf("restage must replace the staged charge: %d vs %d", again, stagedUsed)
	}

	// The staged generation does not decide packets: v1 still drops port 80.
	n.DeliverFromWire(udpTo(80))
	n.DeliverFromWire(udpTo(81))
	eng.Run()
	if n.RxDropVerdict != 1 {
		t.Fatalf("pre-flip verdict drops = %d", n.RxDropVerdict)
	}

	// Activation flips the epoch and keeps the old pair resident for rollback.
	load, err := n.ActivateStaged(eng.Now())
	if err != nil {
		t.Fatal(err)
	}
	if load <= 0 {
		t.Fatal("activation must cost MMIO time")
	}
	if n.Generation() != 1 || !n.InCanary() || n.StagedGeneration() {
		t.Fatalf("post-flip: gen=%d canary=%v staged=%v",
			n.Generation(), n.InCanary(), n.StagedGeneration())
	}
	// A second activation during the canary is refused.
	if err := n.StageGeneration(eng.Now(), v1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := n.ActivateStaged(eng.Now()); err == nil {
		t.Fatal("activation with an unresolved canary must fail")
	}
	n.AbortStaged()

	// v2 now decides: port 81 drops, port 80 passes.
	n.DeliverFromWire(udpTo(80))
	n.DeliverFromWire(udpTo(81))
	eng.Run()
	if n.RxDropVerdict != 2 {
		t.Fatalf("post-flip verdict drops = %d", n.RxDropVerdict)
	}

	// Commit releases the retained pair: back to single-residency.
	if err := n.CommitGeneration(eng.Now()); err != nil {
		t.Fatal(err)
	}
	if n.InCanary() {
		t.Fatal("commit must resolve the canary")
	}
	if used, _ := n.SRAM(); used != liveUsed {
		t.Fatalf("commit must release the retained pair: %d vs %d", used, liveUsed)
	}
	if err := n.CommitGeneration(eng.Now()); !errors.Is(err, ErrNoPrevGen) {
		t.Fatalf("double commit: %v", err)
	}
}

// TestGenerationRollback flips to a bad generation and reverts: the old
// decision procedure returns, the generation counter still moves forward (a
// rollback is a flip too), and the double-residency charge is released.
func TestGenerationRollback(t *testing.T) {
	n, eng := newNIC(1 << 20)
	c, _ := n.OpenConn(1, packet.Meta{}, nil)
	n.SetDefaultConn(1)

	v1 := assemble(t, "v1", "pass\n")
	bad := assemble(t, "bad", "drop\n")
	if _, _, err := n.LoadProgram(Ingress, v1); err != nil {
		t.Fatal(err)
	}
	liveUsed, _ := n.SRAM()

	if err := n.StageGeneration(0, bad, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := n.ActivateStaged(eng.Now()); err != nil {
		t.Fatal(err)
	}
	n.DeliverFromWire(udpTo(80))
	eng.Run()
	if n.RxDropVerdict != 1 || c.RxDelivered != 0 {
		t.Fatalf("bad generation must drop: verdict=%d delivered=%d",
			n.RxDropVerdict, c.RxDelivered)
	}

	if err := n.RollbackGeneration(eng.Now()); err != nil {
		t.Fatal(err)
	}
	if n.Generation() != 2 {
		t.Fatalf("rollback must advance the epoch: gen=%d", n.Generation())
	}
	if n.InCanary() {
		t.Fatal("rollback must resolve the canary")
	}
	if used, _ := n.SRAM(); used != liveUsed {
		t.Fatalf("rollback must release the rolled-back pair: %d vs %d", used, liveUsed)
	}
	n.DeliverFromWire(udpTo(80))
	eng.Run()
	if c.RxDelivered != 1 {
		t.Fatalf("restored generation must pass traffic: delivered=%d", c.RxDelivered)
	}
	if err := n.RollbackGeneration(eng.Now()); !errors.Is(err, ErrNoPrevGen) {
		t.Fatalf("rollback with nothing retained: %v", err)
	}
}

// TestStageGenerationRejects pins the staging guards: no staging into an
// outage, no invalid programs, no blowing the SRAM budget, and nothing to
// activate when nothing is staged.
func TestStageGenerationRejects(t *testing.T) {
	n, _ := newNIC(1 << 20)
	v1 := assemble(t, "v1", "pass\n")

	if _, err := n.ActivateStaged(0); !errors.Is(err, ErrNothingStaged) {
		t.Fatalf("activate with nothing staged: %v", err)
	}

	// Unverifiable program: a jump out of range.
	badProg := &overlay.Program{Name: "wild", Code: []overlay.Inst{
		{Op: overlay.OpJmp, Target: 99},
	}}
	if err := n.StageGeneration(0, badProg, nil); !errors.Is(err, ErrStagedNotValid) {
		t.Fatalf("invalid program: %v", err)
	}

	// Budget too small for double residency.
	big := assemble(t, "big", ".table t 4096\nldf r0, conn\nlookup r1, t, r0, m\npass\nm:\ndrop\n")
	tiny, _ := newNIC(big.SRAMBytes() + 64)
	if _, _, err := tiny.LoadProgram(Ingress, big); err != nil {
		t.Fatal(err)
	}
	if err := tiny.StageGeneration(0, big, nil); !errors.Is(err, ErrSRAMExhausted) {
		t.Fatalf("double residency over budget: %v", err)
	}

	// No staging while the dataplane is down.
	n.ReloadBitstream(0, 10*sim.Microsecond)
	if err := n.StageGeneration(0, v1, nil); !errors.Is(err, ErrUpgradeOutage) {
		t.Fatalf("staging into an outage: %v", err)
	}
}

// TestPauseResumeReplaysInOrder checks the cutover pause: frames arriving
// while ingress is paused are buffered, not delivered; resume replays them in
// arrival order through normal admission, so they land under the new
// generation with nothing lost.
func TestPauseResumeReplaysInOrder(t *testing.T) {
	n, eng := newNIC(1 << 20)
	c, _ := n.OpenConn(1, packet.Meta{}, nil)
	n.SetDefaultConn(1)
	var order []uint16
	n.OnRxDeliver = func(cc *Conn, _ sim.Time) {
		if d, err := cc.RX.Pop(); err == nil {
			order = append(order, d.Pkt.UDP.DstPort)
		}
	}

	if err := n.PauseRx(0); err != nil {
		t.Fatal(err)
	}
	if err := n.PauseRx(0); !errors.Is(err, ErrRxPaused) {
		t.Fatalf("double pause: %v", err)
	}
	for _, port := range []uint16{80, 81, 82} {
		n.DeliverFromWire(udpTo(port))
	}
	eng.Run()
	if c.RxDelivered != 0 || n.RxPauseQueue() != 3 || n.RxPauseBuffered != 3 {
		t.Fatalf("paused ingress must buffer: delivered=%d queue=%d buffered=%d",
			c.RxDelivered, n.RxPauseQueue(), n.RxPauseBuffered)
	}

	if err := n.ResumeRx(); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if c.RxDelivered != 3 || n.RxPauseQueue() != 0 {
		t.Fatalf("resume must replay everything: delivered=%d queue=%d",
			c.RxDelivered, n.RxPauseQueue())
	}
	if len(order) != 3 || order[0] != 80 || order[1] != 81 || order[2] != 82 {
		t.Fatalf("replay must preserve arrival order: %v", order)
	}
	if err := n.ResumeRx(); !errors.Is(err, ErrRxNotPaused) {
		t.Fatalf("resume while running: %v", err)
	}
}

// TestPauseOverflowIsTypedDrop pins the bounded-pause budget: beyond the cap,
// frames become RxPauseDrop — a conservation-ledger class, not silence.
func TestPauseOverflowIsTypedDrop(t *testing.T) {
	n, eng := newNIC(1 << 20)
	c, _ := n.OpenConn(1, packet.Meta{}, nil)
	n.SetDefaultConn(1)
	if err := n.PauseRx(2); err != nil {
		t.Fatal(err)
	}
	const sent = 5
	for i := 0; i < sent; i++ {
		n.DeliverFromWire(udpTo(80))
	}
	eng.Run()
	if n.RxPauseBuffered != 2 || n.RxPauseDrop != 3 {
		t.Fatalf("cap 2 with 5 arrivals: buffered=%d dropped=%d",
			n.RxPauseBuffered, n.RxPauseDrop)
	}
	if err := n.ResumeRx(); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// Conservation: every frame is either delivered or a typed drop.
	if uint64(sent) != c.RxDelivered+n.RxPauseDrop {
		t.Fatalf("ledger leak: sent %d, delivered %d, pause drops %d",
			sent, c.RxDelivered, n.RxPauseDrop)
	}
}

// TestOutageAccountsEveryFrame is the bitstream-outage accounting regression:
// frames arriving (RX) or in flight (TX) while the dataplane is down must
// surface as the typed outage classes, a respin must wipe the shadow bank,
// and a paused ingress caught by the respin must fold its buffered frames
// into the outage count rather than lose them.
func TestOutageAccountsEveryFrame(t *testing.T) {
	n, eng := newNIC(1 << 20)
	c, _ := n.OpenConn(1, packet.Meta{}, nil)
	n.SetDefaultConn(1)
	v2 := assemble(t, "v2", "pass\n")

	// A staged generation and a paused ingress holding two frames...
	if err := n.StageGeneration(0, v2, nil); err != nil {
		t.Fatal(err)
	}
	if err := n.PauseRx(0); err != nil {
		t.Fatal(err)
	}
	n.DeliverFromWire(udpTo(80))
	n.DeliverFromWire(udpTo(81))
	eng.Run()
	if n.RxPauseQueue() != 2 {
		t.Fatalf("pause queue = %d", n.RxPauseQueue())
	}

	// ...and a TX frame mid-flight when the respin hits.
	if err := c.TX.Push(mem.Desc{Pkt: udpTo(99)}); err != nil {
		t.Fatal(err)
	}
	n.DoorbellTx(c)
	n.ReloadBitstream(eng.Now(), 10*sim.Microsecond)
	if n.StagedGeneration() {
		t.Fatal("a respin must wipe the staged generation")
	}
	if n.RxPaused() || n.RxPauseQueue() != 0 {
		t.Fatal("a respin must clear the pause buffer")
	}
	if n.RxOutageDrop != 2 {
		t.Fatalf("buffered frames must become outage drops: %d", n.RxOutageDrop)
	}

	// Traffic during the blackout: typed, on both directions.
	n.DeliverFromWire(udpTo(80))
	eng.Run()
	if n.RxOutageDrop != 3 {
		t.Fatalf("rx during outage must be typed: %d", n.RxOutageDrop)
	}
	if n.TxOutageDrop != 1 {
		t.Fatalf("tx in flight across the outage must be typed: %d", n.TxOutageDrop)
	}
	if n.TxFrames != 0 || c.RxDelivered != 0 {
		t.Fatalf("nothing crosses a down dataplane: tx=%d rx=%d", n.TxFrames, c.RxDelivered)
	}
}
