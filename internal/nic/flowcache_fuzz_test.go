package nic

import (
	"testing"

	"norman/internal/overlay"
	"norman/internal/packet"
)

// fuzzKey maps a small key index onto a distinct 5-tuple so the fuzzer can
// force bucket collisions (16 keys over a 16-entry cache) without wandering
// an unbounded key space.
func fuzzKey(i byte) packet.FlowKey {
	return packet.FlowKey{
		Src:     0x0a000001,
		Dst:     packet.IPv4(0x0a000002 + uint32(i%4)),
		SrcPort: 40000 + uint16(i),
		DstPort: 80,
		Proto:   17,
	}
}

// fcInvariants asserts the conservation ledger and partition accounting that
// every flow-cache operation must preserve:
//
//	Installs − Evictions − Invalidations == Len  (the conservation ledger)
//	Σ tenant Used == Len, every Used in [0, Quota]
func fcInvariants(t *testing.T, f *FlowCache, op string) {
	t.Helper()
	live := f.Installs - f.Evictions - f.Invalidations
	if uint64(f.Len()) != live {
		t.Fatalf("%s: ledger broken: installs=%d evictions=%d invalidations=%d len=%d",
			op, f.Installs, f.Evictions, f.Invalidations, f.Len())
	}
	if f.Len() < 0 || f.Len() > f.Capacity() {
		t.Fatalf("%s: len %d out of [0,%d]", op, f.Len(), f.Capacity())
	}
	sum := 0
	for _, st := range f.TenantStats() {
		if st.Used < 0 {
			t.Fatalf("%s: tenant %d Used = %d", op, st.Tenant, st.Used)
		}
		if f.Quotas() != nil && st.Quota > 0 && st.Used > st.Quota {
			t.Fatalf("%s: tenant %d over quota: %d/%d", op, st.Tenant, st.Used, st.Quota)
		}
		sum += st.Used
	}
	if sum != f.Len() {
		t.Fatalf("%s: per-tenant Used sums to %d, len = %d", op, sum, f.Len())
	}
	valid := 0
	for i := range f.entries {
		if f.entries[i].valid {
			valid++
		}
	}
	if valid != f.Len() {
		t.Fatalf("%s: %d valid entries, len = %d", op, valid, f.Len())
	}
}

// FuzzFlowCache drives a partitioned flow cache through an arbitrary
// install/lookup/invalidate/flush/corrupt stream decoded from the fuzz input,
// asserting the conservation ledger and per-tenant partition accounting after
// every single operation. This is the test that caught the cross-tenant
// re-install path leaving the old owner's Used counter inflated.
func FuzzFlowCache(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 5, 1, 1, 2, 2, 3, 4, 0, 9, 1})
	f.Add([]byte{0, 0, 1, 0, 0, 0, 2, 0, 1, 1, 0, 5, 0, 3}) // same key, two tenants
	f.Add([]byte{6, 0, 1, 0, 5, 6, 1, 0, 0, 4})             // corrupt then lookup then flush
	f.Fuzz(func(t *testing.T, data []byte) {
		fc := newFlowCache(16)
		if err := fc.SetQuotas(map[uint32]int{1: 2, 2: 1}); err != nil {
			t.Fatal(err)
		}
		fc.SetVerify(true)
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		for len(data) > 0 {
			switch op := next() % 7; op {
			case 0: // install
				k := fuzzKey(next() % 16)
				tenant := uint32(next()%3) + 1 // tenant 3 owns no partition slice
				conn := uint64(next()%8) + 1
				fc.Install(k, conn, tenant, overlay.Verdict(next()%2), uint32(next()), 0)
				fcInvariants(t, fc, "install")
			case 1: // lookup
				fc.Lookup(fuzzKey(next() % 16))
				fcInvariants(t, fc, "lookup")
			case 2: // invalidate key
				fc.InvalidateKey(fuzzKey(next() % 16))
				fcInvariants(t, fc, "invalidate-key")
			case 3: // invalidate conn
				fc.InvalidateConn(uint64(next()%8) + 1)
				fcInvariants(t, fc, "invalidate-conn")
			case 4: // flush
				fc.Flush()
				fcInvariants(t, fc, "flush")
			case 5: // SRAM bit flip; a later verified lookup must drop it
				fc.Corrupt(int(next()))
				fcInvariants(t, fc, "corrupt")
			case 6: // toggle verification (the bypass-vs-KOPI posture)
				fc.SetVerify(next()%2 == 0)
			}
		}
		// Lookups+misses cover every probe; no probe may vanish.
		if fc.Hits+fc.Misses == 0 && fc.Installs > 0 && len(data) == 0 {
			_ = fc // streams with no lookup ops are fine; nothing to assert
		}
	})
}
