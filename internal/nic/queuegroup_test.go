package nic

import (
	"testing"

	"norman/internal/cache"
	"norman/internal/mem"
	"norman/internal/sim"
	"norman/internal/timing"
)

func newTestQG(t *testing.T, batch int, llc *cache.LLC) (*QueueGroup, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	q := NewQueueGroup(QueueGroupConfig{
		Engine: eng,
		Model:  timing.Default(),
		LLC:    llc,
		Ring:   mem.NewBurstRing(256, 1<<20),
		Slab:   mem.NewConnSlab(64, 1<<24),
		Batch:  batch,
	})
	return q, eng
}

// TestQueueGroupBatchedDrain checks that a burst of arrivals is delivered by
// a handful of drain events, in arrival order, with fired credited per
// descriptor.
func TestQueueGroupBatchedDrain(t *testing.T) {
	q, eng := newTestQG(t, 16, nil)
	var got []uint32
	q.Deliver = func(d mem.PktRef, at sim.Time) {
		got = append(got, d.Conn)
		if at < eng.Now() {
			t.Fatalf("delivery at %v before now %v", at, eng.Now())
		}
	}
	for i := 0; i < 40; i++ {
		if !q.Arrive(mem.PktRef{Conn: uint32(i), Len: 256}) {
			t.Fatalf("arrive %d refused", i)
		}
	}
	eng.Run()
	if q.Delivered() != 40 || len(got) != 40 {
		t.Fatalf("delivered %d (callback %d)", q.Delivered(), len(got))
	}
	for i, c := range got {
		if c != uint32(i) {
			t.Fatalf("got[%d] = %d: descriptors out of order", i, c)
		}
	}
	// 40 descriptors at batch 16 → 3 bursts, and far fewer heap dispatches
	// than packets.
	if q.Bursts() != 3 {
		t.Fatalf("bursts = %d, want 3", q.Bursts())
	}
	if fired := eng.Fired(); fired < 40 {
		t.Fatalf("fired = %d, want ≥ 40 (batched credit missing)", fired)
	}
	if q.BytesDelivered() != 40*256 {
		t.Fatalf("bytes = %d", q.BytesDelivered())
	}
	if q.WaitTotal() <= 0 {
		t.Fatal("burst wait not accounted")
	}
}

// TestQueueGroupDescriptorCache checks DDIO hit/miss accounting against the
// ring's descriptor lines.
func TestQueueGroupDescriptorCache(t *testing.T) {
	llc := cache.New(cache.Config{TotalBytes: 1 << 16, Ways: 8, DDIOWays: 2})
	q, eng := newTestQG(t, 8, llc)
	for round := 0; round < 4; round++ {
		for i := 0; i < 8; i++ {
			q.Arrive(mem.PktRef{Conn: uint32(i), Len: 64})
		}
		eng.Run()
	}
	hit, miss := q.DescHit(), q.DescMiss()
	if hit+miss != 32 {
		t.Fatalf("hit %d + miss %d != 32 descriptor accesses", hit, miss)
	}
	// The ring reuses the same few descriptor lines, so later rounds must
	// hit in the DDIO ways.
	if hit == 0 {
		t.Fatal("no descriptor-line hits on a re-walked ring")
	}
}

// TestQueueGroupRingFull checks that overflow rejects are counted, not
// silent.
func TestQueueGroupRingFull(t *testing.T) {
	eng := sim.NewEngine()
	q := NewQueueGroup(QueueGroupConfig{
		Engine: eng,
		Model:  timing.Default(),
		Ring:   mem.NewBurstRing(4, 0),
		Slab:   mem.NewConnSlab(4, 0),
		Batch:  4,
	})
	for i := 0; i < 6; i++ {
		q.Arrive(mem.PktRef{Conn: 0})
	}
	if q.DropRingFull() != 2 {
		t.Fatalf("drops = %d, want 2", q.DropRingFull())
	}
	eng.Run()
	if q.Delivered() != 4 {
		t.Fatalf("delivered = %d", q.Delivered())
	}
}

// TestQueueGroupDrainZeroAlloc pins the steady-state arrive→drain→complete
// cycle at zero allocations per burst.
func TestQueueGroupDrainZeroAlloc(t *testing.T) {
	q, eng := newTestQG(t, 16, nil)
	sink := uint64(0)
	q.Deliver = func(d mem.PktRef, at sim.Time) { sink += uint64(d.Len) }
	// Warm up: grow the engine heap and ring once.
	for i := 0; i < 32; i++ {
		q.Arrive(mem.PktRef{Conn: uint32(i), Len: 64})
	}
	eng.Run()
	if n := testing.AllocsPerRun(50, func() {
		for i := 0; i < 16; i++ {
			q.Arrive(mem.PktRef{Conn: uint32(i), Len: 64})
		}
		eng.Run()
	}); n != 0 {
		t.Fatalf("batched drain allocates %.1f/op", n)
	}
	_ = sink
}
