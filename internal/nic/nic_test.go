package nic

import (
	"errors"
	"testing"

	"norman/internal/mem"
	"norman/internal/overlay"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/timing"
)

func newNIC(budget int) (*NIC, *sim.Engine) {
	eng := sim.NewEngine()
	n := New(Config{Engine: eng, Model: timing.Default(), SRAMBudget: budget, RingSize: 8})
	return n, eng
}

func udpTo(dport uint16) *packet.Packet {
	return packet.NewUDP(packet.MAC{1}, packet.MAC{2}, packet.MakeIP(10, 0, 0, 2),
		packet.MakeIP(10, 0, 0, 1), 99, dport, 64)
}

func TestOpenCloseSRAMAccounting(t *testing.T) {
	n, _ := newNIC(1 << 20)
	used0, budget := n.SRAM()
	if used0 != 0 || budget != 1<<20 {
		t.Fatalf("initial sram %d/%d", used0, budget)
	}
	c, err := n.OpenConn(1, packet.Meta{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	used1, _ := n.SRAM()
	if used1 <= 0 {
		t.Fatal("conn must consume SRAM")
	}
	if err := n.SteerFlow(packet.FlowKey{SrcPort: 1}, 1); err != nil {
		t.Fatal(err)
	}
	used2, _ := n.SRAM()
	if used2 <= used1 {
		t.Fatal("steering entries consume SRAM")
	}
	if _, err := n.OpenConn(1, packet.Meta{}, nil); err == nil {
		t.Fatal("duplicate conn id must fail")
	}
	_ = c
	if err := n.CloseConn(1); err != nil {
		t.Fatal(err)
	}
	used3, _ := n.SRAM()
	if used3 != 0 {
		t.Fatalf("close must release SRAM and steering: %d", used3)
	}
	if err := n.CloseConn(1); !errors.Is(err, ErrNoSuchConn) {
		t.Fatalf("double close: %v", err)
	}
}

func TestOpenConnExhaustsSRAM(t *testing.T) {
	n, _ := newNIC(800) // fits 3 conns at 256B each
	opened := 0
	for i := 1; i <= 10; i++ {
		if _, err := n.OpenConn(uint64(i), packet.Meta{}, nil); err == nil {
			opened++
		} else if !errors.Is(err, ErrSRAMExhausted) {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if opened != 3 {
		t.Fatalf("opened %d conns in 800B", opened)
	}
}

func TestSteeringDeliversToRightRing(t *testing.T) {
	n, eng := newNIC(1 << 20)
	a, _ := n.OpenConn(1, packet.Meta{}, nil)
	b, _ := n.OpenConn(2, packet.Meta{}, nil)
	// Local flows (src = local): inbound packets arrive reversed.
	flowA := packet.FlowKey{Src: packet.MakeIP(10, 0, 0, 1), Dst: packet.MakeIP(10, 0, 0, 2),
		SrcPort: 1000, DstPort: 99, Proto: packet.ProtoUDP}
	flowB := flowA
	flowB.SrcPort = 2000
	if err := n.SteerFlow(flowA, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.SteerFlow(flowB, 2); err != nil {
		t.Fatal(err)
	}

	n.DeliverFromWire(udpTo(2000))
	n.DeliverFromWire(udpTo(1000))
	n.DeliverFromWire(udpTo(3000)) // unsteered, no slow path -> dropped
	eng.Run()

	if a.RxDelivered != 1 || b.RxDelivered != 1 {
		t.Fatalf("deliveries: a=%d b=%d", a.RxDelivered, b.RxDelivered)
	}
	if n.RxDropNoSteer != 1 {
		t.Fatalf("unsteered drops = %d", n.RxDropNoSteer)
	}
}

func TestDefaultConnAndSlowPath(t *testing.T) {
	n, eng := newNIC(1 << 20)
	kq, _ := n.OpenConn(7, packet.Meta{}, nil)
	n.SetDefaultConn(7)
	n.DeliverFromWire(udpTo(4000))
	eng.Run()
	if kq.RxDelivered != 1 {
		t.Fatal("default conn should catch unsteered traffic")
	}

	n.SetDefaultConn(0)
	var slow int
	n.SlowPath = func(p *packet.Packet, at sim.Time) { slow++ }
	n.DeliverFromWire(udpTo(4001))
	eng.Run()
	if slow != 1 || n.RxSlowPath != 1 {
		t.Fatalf("slow path: %d %d", slow, n.RxSlowPath)
	}
}

func TestTxPath(t *testing.T) {
	n, eng := newNIC(1 << 20)
	c, _ := n.OpenConn(1, packet.Meta{UID: 9, TrustedMeta: true}, nil)
	var sentMeta packet.Meta
	var sent int
	n.OnTransmit = func(p *packet.Packet, at sim.Time) {
		sent++
		sentMeta = p.Meta
	}
	p := udpTo(80)
	if err := c.TX.Push(mem.Desc{Pkt: p}); err != nil {
		t.Fatal(err)
	}
	n.DoorbellTx(c)
	eng.Run()
	if sent != 1 || n.TxFrames != 1 {
		t.Fatalf("sent=%d frames=%d", sent, n.TxFrames)
	}
	if sentMeta.UID != 9 || !sentMeta.TrustedMeta || sentMeta.ConnID != 1 {
		t.Fatalf("NIC must stamp trusted metadata: %+v", sentMeta)
	}
}

func TestIngressOverlayDropsAndCounts(t *testing.T) {
	n, eng := newNIC(1 << 20)
	_, _ = n.OpenConn(1, packet.Meta{}, nil)
	n.SetDefaultConn(1)
	prog, err := overlay.Assemble("drop80", `
.counter dropped
ldf r0, dst_port
jne r0, 80, ok
count dropped
drop
ok:
pass
`)
	if err != nil {
		t.Fatal(err)
	}
	m, load, err := n.LoadProgram(Ingress, prog)
	if err != nil {
		t.Fatal(err)
	}
	if load <= 0 {
		t.Fatal("loading costs control-plane time")
	}
	n.DeliverFromWire(udpTo(80))
	n.DeliverFromWire(udpTo(81))
	eng.Run()
	if n.RxDropVerdict != 1 {
		t.Fatalf("verdict drops = %d", n.RxDropVerdict)
	}
	if m.Counter("dropped") != 1 {
		t.Fatalf("overlay counter = %d", m.Counter("dropped"))
	}
	c, _ := n.Conn(1)
	if c.RxDelivered != 1 {
		t.Fatalf("delivered = %d", c.RxDelivered)
	}
}

func TestProgramSRAMAndUnload(t *testing.T) {
	n, _ := newNIC(1 << 20)
	prog, _ := overlay.Assemble("p", ".table t 64\nldf r0, conn\nlookup r1, t, r0, m\npass\nm:\ndrop\n")
	used0, _ := n.SRAM()
	if _, _, err := n.LoadProgram(Egress, prog); err != nil {
		t.Fatal(err)
	}
	used1, _ := n.SRAM()
	if used1 <= used0 {
		t.Fatal("program must consume SRAM")
	}
	n.UnloadProgram(Egress)
	used2, _ := n.SRAM()
	if used2 != used0 {
		t.Fatalf("unload must release SRAM: %d vs %d", used2, used0)
	}
	// A program too big for the remaining budget is rejected.
	tiny, _ := newNIC(64)
	if _, _, err := tiny.LoadProgram(Ingress, prog); !errors.Is(err, ErrSRAMExhausted) {
		t.Fatalf("oversized program: %v", err)
	}
}

func TestBitstreamOutageDropsTraffic(t *testing.T) {
	n, eng := newNIC(1 << 20)
	_, _ = n.OpenConn(1, packet.Meta{}, nil)
	n.SetDefaultConn(1)
	until := n.ReloadBitstream(0, 10*sim.Microsecond)
	if until != sim.Time(10*sim.Microsecond) {
		t.Fatalf("outage until %v", until)
	}
	if !n.Down(sim.Time(5 * sim.Microsecond)) {
		t.Fatal("dataplane should be down")
	}
	n.DeliverFromWire(udpTo(80))
	eng.Run()
	if n.RxOutageDrop != 1 {
		t.Fatalf("outage drops = %d", n.RxOutageDrop)
	}
	// After the outage window traffic flows again.
	eng.At(sim.Time(20*sim.Microsecond), func() { n.DeliverFromWire(udpTo(80)) })
	eng.Run()
	c, _ := n.Conn(1)
	if c.RxDelivered != 1 {
		t.Fatalf("post-outage delivery = %d", c.RxDelivered)
	}
}

func TestNotifyQueueOnRx(t *testing.T) {
	n, eng := newNIC(1 << 20)
	q := mem.NewNotifyQueue(16)
	c, _ := n.OpenConn(1, packet.Meta{}, q)
	c.NotifyRx = true
	n.SetDefaultConn(1)
	var kinds []mem.NotifyKind
	n.OnNotify = func(_ *Conn, k mem.NotifyKind, _ sim.Time) { kinds = append(kinds, k) }
	n.DeliverFromWire(udpTo(80))
	eng.Run()
	if len(kinds) != 1 || kinds[0] != mem.NotifyRxReady {
		t.Fatalf("notifications: %v", kinds)
	}
	if q.Len() != 1 {
		t.Fatalf("queue length %d", q.Len())
	}
}

func TestRxRingOverflowDrops(t *testing.T) {
	n, eng := newNIC(1 << 20)
	c, _ := n.OpenConn(1, packet.Meta{}, nil)
	n.SetDefaultConn(1)
	// Nothing consumes the ring (no OnRxDeliver pop): 8 slots, 12 packets.
	for i := 0; i < 12; i++ {
		n.DeliverFromWire(udpTo(80))
	}
	eng.Run()
	if c.RxDelivered != 8 {
		t.Fatalf("delivered = %d, want ring size 8", c.RxDelivered)
	}
	if n.RxDropRing != 4 {
		t.Fatalf("ring drops = %d", n.RxDropRing)
	}
}

func TestNotifyCoalescing(t *testing.T) {
	n, eng := newNIC(1 << 20)
	q := mem.NewNotifyQueue(64)
	c, _ := n.OpenConn(1, packet.Meta{}, q)
	c.NotifyRx = true
	c.NotifyCoalesce = 100 * sim.Microsecond
	n.SetDefaultConn(1)
	var callbacks int
	n.OnRxDeliver = func(cc *Conn, _ sim.Time) { _, _ = cc.RX.Pop() }
	n.OnNotify = func(*Conn, mem.NotifyKind, sim.Time) { callbacks++ }

	// 10 packets in a 10µs burst: one coalescing window.
	for i := 0; i < 10; i++ {
		i := i
		eng.At(sim.Time(i)*sim.Time(sim.Microsecond), func() {
			n.DeliverFromWire(udpTo(80))
		})
	}
	eng.Run()
	if callbacks != 1 {
		t.Fatalf("10 packets within one window should cause 1 callback, got %d", callbacks)
	}
	if pushed, _ := q.Counters(); pushed != 10 {
		t.Fatalf("all notifications still queue: %d", pushed)
	}

	// A second burst after the window fires again.
	eng.At(eng.Now().Add(sim.Duration(sim.Millisecond)), func() { n.DeliverFromWire(udpTo(80)) })
	eng.Run()
	if callbacks != 2 {
		t.Fatalf("post-window packet should fire a fresh callback, got %d", callbacks)
	}
}

func TestPerConnRateLimit(t *testing.T) {
	eng := sim.NewEngine()
	n := New(Config{Engine: eng, Model: timing.Default(), SRAMBudget: 1 << 20, RingSize: 32})
	limited, _ := n.OpenConn(1, packet.Meta{}, nil)
	free, _ := n.OpenConn(2, packet.Meta{}, nil)
	// 10 MB/s with a one-frame burst.
	if err := n.SetConnRate(1, 10e6, 1514); err != nil {
		t.Fatal(err)
	}
	if err := n.SetConnRate(99, 1, 1); !errors.Is(err, ErrNoSuchConn) {
		t.Fatalf("unknown conn: %v", err)
	}

	var lastLimited, lastFree sim.Time
	var nLimited, nFree int
	n.OnTransmit = func(p *packet.Packet, at sim.Time) {
		if p.Meta.ConnID == 1 {
			nLimited++
			lastLimited = at
		} else {
			nFree++
			lastFree = at
		}
	}
	// 20 × 1502B frames on each connection, all at t=0.
	for i := 0; i < 20; i++ {
		pl := packet.NewUDP(packet.MAC{}, packet.MAC{}, 1, 2, 10, 20, 1460)
		pf := packet.NewUDP(packet.MAC{}, packet.MAC{}, 1, 2, 11, 21, 1460)
		if err := limited.TX.Push(mem.Desc{Pkt: pl}); err != nil {
			t.Fatal(err)
		}
		if err := free.TX.Push(mem.Desc{Pkt: pf}); err != nil {
			t.Fatal(err)
		}
	}
	n.DoorbellTx(limited)
	n.DoorbellTx(free)
	eng.Run()

	if nLimited != 20 || nFree != 20 {
		t.Fatalf("delivered %d/%d", nLimited, nFree)
	}
	// 19 paced frames (first rides the burst) at 1502B / 10MB/s ≈ 150µs each.
	wantSpan := sim.Duration(19 * 150 * sim.Microsecond)
	span := sim.Duration(lastLimited)
	if span < wantSpan.Scale(0.9) || span > wantSpan.Scale(1.2) {
		t.Fatalf("limited conn finished in %v, want ≈%v", span, wantSpan)
	}
	// The unlimited connection is done in microseconds, unaffected.
	if sim.Duration(lastFree) > 100*sim.Microsecond {
		t.Fatalf("free conn throttled: %v", sim.Duration(lastFree))
	}
	// Clearing the limit restores full speed.
	if err := n.SetConnRate(1, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestTSOSplitsSegments(t *testing.T) {
	eng := sim.NewEngine()
	n := New(Config{Engine: eng, Model: timing.Default(), RingSize: 32, BufBytes: 65536})
	c, _ := n.OpenConn(1, packet.Meta{}, nil)
	if err := n.SetTSO(1, 1400); err != nil {
		t.Fatal(err)
	}
	if err := n.SetTSO(9, 1400); !errors.Is(err, ErrNoSuchConn) {
		t.Fatal("unknown conn")
	}

	var frames []int
	var seqs []uint32
	n.OnTransmit = func(p *packet.Packet, _ sim.Time) {
		frames = append(frames, p.PayloadLen)
		seqs = append(seqs, p.TCP.Seq)
	}
	// One 10000-byte super-segment.
	super := packet.NewTCP(packet.MAC{}, packet.MAC{}, 1, 2, 10, 20, packet.TCPPsh, 10000)
	super.TCP.Seq = 5000
	if err := c.TX.Push(mem.Desc{Pkt: super}); err != nil {
		t.Fatal(err)
	}
	n.DoorbellTx(c)
	eng.Run()

	if len(frames) != 8 { // ceil(10000/1400)
		t.Fatalf("segments = %d, want 8", len(frames))
	}
	total := 0
	for i, f := range frames {
		total += f
		if f > 1400 {
			t.Fatalf("segment %d oversize: %d", i, f)
		}
		if seqs[i] != 5000+uint32(i*1400) {
			t.Fatalf("segment %d seq %d", i, seqs[i])
		}
	}
	if total != 10000 {
		t.Fatalf("bytes conserved: %d", total)
	}
	// Staging-slot accounting balanced (no leak, no deficit).
	if n.txInflight != 0 {
		t.Fatalf("txInflight = %d after drain", n.txInflight)
	}
}
