// Package nic models the on-path programmable SmartNIC that Norman targets
// (§4.1): per-connection descriptor rings reached by DMA and MMIO doorbells,
// an ingress/egress pipeline with loadable overlay programs, flow steering,
// an egress scheduler (qdisc), a capture tap, notification generation, a
// bounded on-NIC SRAM budget with an optional software slow path, and a
// DDIO-aware DMA engine whose cost model reproduces the paper's
// connection-scaling cliff.
//
// The NIC is architecture-neutral: the same device backs the raw-bypass,
// hypervisor-switch and KOPI architectures — they differ only in which
// features the control plane programs, which is exactly the comparison the
// paper draws.
package nic

import (
	"errors"
	"fmt"

	"norman/internal/cache"
	"norman/internal/mem"
	"norman/internal/overlay"
	"norman/internal/packet"
	"norman/internal/qos"
	"norman/internal/sim"
	"norman/internal/sniff"
	"norman/internal/telemetry"
	"norman/internal/timing"
)

// Errors.
var (
	ErrSRAMExhausted = errors.New("nic: on-NIC SRAM exhausted")
	ErrNoSuchConn    = errors.New("nic: no such connection")
)

// Config assembles a NIC over shared substrates.
type Config struct {
	Engine *sim.Engine
	Model  timing.Model
	LLC    *cache.LLC // host LLC shared with the host model; nil = no cache modeling
	Alloc  *mem.Alloc // host physical address allocator

	RingSize   int // descriptors per ring (power of two)
	BufBytes   int // host buffer bytes per descriptor
	SRAMBudget int // on-NIC memory budget; 0 = Model.NICSRAMBytes
}

// Conn is one connection's NIC-side state: a TX and an RX ring pinned in
// host memory, the trusted metadata the kernel programmed for it (§4.3), and
// its notification configuration.
type Conn struct {
	ID   uint64
	TX   *mem.Ring
	RX   *mem.Ring
	Meta packet.Meta // stamped on every packet the NIC handles for this conn

	NotifyRx bool
	NotifyTx bool
	Queue    *mem.NotifyQueue // owning process's notification queue
	// NotifyCoalesce batches notification interrupts: at most one OnNotify
	// callback per window (§4.3's interrupt moderation for low-activity
	// queues). Zero means immediate delivery.
	NotifyCoalesce sim.Duration
	notifyArmed    bool
	lastNotifyAt   sim.Time

	bufBase  uint64 // host buffer region base address
	bufBytes int    // total buffer region size (TX half + RX half)

	txDraining bool // a TX drain chain is in flight
	txStalled  bool // drain paused on the NIC TX admission window

	// TSO (TCP segmentation offload, the classic fixed-function offload of
	// §3): when non-zero, oversized TCP segments posted to this connection
	// are cut into tsoMSS-sized wire segments by the NIC — one descriptor,
	// one DMA, one doorbell for up to 64KB of payload.
	tsoMSS int

	// Per-connection egress rate limit (SENIC/PicNIC-style offload): the
	// TX drain paces descriptor fetches against a token bucket, so a
	// misbehaving sender is throttled before its traffic ever reaches the
	// shared scheduler. Zero rate = unlimited.
	rlRate    float64 // bytes per second
	rlBurst   float64 // bucket depth in bytes
	rlTokens  float64
	rlLast    sim.Time
	rlWaiting bool

	RxDelivered uint64
	RxDropped   uint64
	TxSent      uint64
}

// bufAddr maps a descriptor index to its payload buffer address. The region
// is split into a TX half and an RX half, each with ringSize slots of
// bufBytes each.
func (c *Conn) bufAddr(index uint64, rx bool, ringSize, bufBytes int) uint64 {
	off := (index % uint64(ringSize)) * uint64(bufBytes)
	if rx {
		off += uint64(c.bufBytes) / 2
	}
	return c.bufBase + off
}

// NIC is the simulated SmartNIC.
type NIC struct {
	eng   *sim.Engine
	model timing.Model
	llc   *cache.LLC
	alloc *mem.Alloc

	ringSize int
	bufBytes int

	// Resource servers.
	dma    *sim.Server // PCIe DMA engine
	wireTx *sim.Server // egress serialization
	wireRx *sim.Server // ingress serialization
	// The pipeline is fully pipelined: programs add latency, not occupancy;
	// occupancy is set by the internal datapath width.
	pipeline *sim.Server

	conns       map[uint64]*Conn
	steering    map[packet.FlowKey]uint64 // flow -> conn id
	defaultConn uint64                    // conn id for unsteered traffic, 0 = none

	// RSS fallback steering (rss.go).
	rssKey    [RSSKeySize]byte
	rssQueues []uint64

	// TX admission window: descriptors fetched from host rings but not yet
	// handed to the scheduler (or, with no scheduler, not yet transmitted).
	// A real NIC has a few KB of staging buffer, not an infinite FIFO; this
	// bound is what propagates wire backpressure into the host rings.
	txInflight int
	txWindow   int
	txStalled  []*Conn

	// RX ingress FIFO: frames in flight between the wire and their DMA
	// completion. When the DMA engine stalls (cold descriptors, DDIO
	// exhaustion) the FIFO overflows and the NIC drops on the floor, as
	// real MACs do — RxFifoDrop is the E3 cliff made visible.
	rxInflight int
	rxWindow   int

	ingress *overlay.Machine
	egress  *overlay.Machine

	// fc, when non-nil, is the exact-match flow cache in front of the
	// ingress pipeline (flowcache.go): established flows skip overlay
	// interpretation at single-lookup cost. ingressCacheable is recomputed
	// on every ingress program change — only flow-invariant programs are
	// memoized.
	fc               *FlowCache
	ingressCacheable bool
	// fcBypass, when set, disables flow-cache lookups and installs without
	// releasing the cache's SRAM: the health monitor's quarantine posture for
	// a cache serving corrupted entries. Every packet takes the slow path
	// until probation re-enables it.
	fcBypass bool

	// linkUp models the physical link state. A down link drops ingress frames
	// at the MAC (counted in RxLinkDrop); the fault layer flaps it and the
	// health monitor watches it.
	linkUp bool

	// lastGood remembers, per pipeline, the previously installed program —
	// the chain that was demonstrably processing traffic before the latest
	// online reload (§4.4). When the current program traps at runtime, the
	// NIC degrades by reinstalling a chain from here instead of wedging.
	lastGood [2]*overlay.Program

	// staged is the shadow pipeline generation (generation.go): a verified
	// overlay chain pair charged against the SRAM budget but not yet deciding
	// packets. prevGen retains the pre-flip pair from activation until the
	// canary commits or rolls back; generation counts epoch flips.
	staged     *pipelineGen
	prevGen    *pipelineGen
	generation uint64

	// rxPaused gates ingress admission during a generation cutover: frames
	// buffer in arrival order up to rxPauseCap and replay on resume; overflow
	// is the typed RxPauseDrop class, never silent loss.
	rxPaused   bool
	rxPauseCap int
	rxPauseBuf []*packet.Packet

	// lastGoodCfg widens lastGood from per-pipeline to whole-config scope:
	// the most recent NIC configuration the control plane committed as
	// known-good (both programs, scheduler, classifier, steering table,
	// default conn). The crash reconciler restores from it wholesale
	// instead of recompiling policy by policy (snapshot.go).
	lastGoodCfg *ConfigSnapshot

	sched      qos.Qdisc // egress scheduler; nil = pure FIFO via wire server
	schedPump  bool
	classifier func(*packet.Packet) uint32 // egress class assignment; nil = Meta.Class as-is

	// tsched, when non-nil, schedules the pipeline and DMA servers across
	// tenants by weighted deficit round robin and partitions the ingress
	// FIFO per tenant (tenant.go). Nil keeps the historical FIFO dataplane.
	tsched *TenantSched

	// shedPolicy, when non-nil, is consulted for every steerable ingress
	// frame before it consumes FIFO or DMA resources; returning true sheds
	// the frame (counted in RxShed). The overload governor installs a
	// priority-aware policy here so low-QoS-class ingress is dropped first
	// under sustained pressure, before it can thrash the DDIO ways.
	shedPolicy func(c *Conn, p *packet.Packet) bool

	tap *sniff.Tap

	// tracer, when non-nil, receives packet-lifecycle span events from
	// every NIC interposition point (ring dequeue, pipeline verdicts, trap
	// fallbacks, wire TX, RX DMA). Nil keeps the hot path branch-only.
	tracer *telemetry.Tracer

	sramBudget int
	sramUsed   int

	// Bitstream reconfiguration outage (§4.4): until this instant the
	// dataplane is down and traffic is dropped or punted.
	outageUntil sim.Time

	// OnTransmit receives frames leaving on the wire.
	OnTransmit func(p *packet.Packet, at sim.Time)
	// OnRxDeliver fires when a packet has been DMA'd into a connection's RX
	// ring and is visible to the host.
	OnRxDeliver func(c *Conn, at sim.Time)
	// SlowPath, when non-nil, receives packets the NIC cannot handle
	// (unsteered traffic, SRAM overflow flows, outage traffic). Nil means
	// such packets are dropped.
	SlowPath func(p *packet.Packet, at sim.Time)
	// OnNotify fires when the NIC appends to a notification queue (the
	// kernel's cue to wake a blocked thread, §4.3).
	OnNotify func(c *Conn, kind mem.NotifyKind, at sim.Time)

	// Counters.
	RxWire        uint64 // frames that arrived from the wire
	RxDropNoSteer uint64
	RxDropRing    uint64
	RxDropVerdict uint64
	RxSlowPath    uint64
	RxOutageDrop  uint64
	RxFifoDrop    uint64
	// RxShed counts ingress frames dropped by the installed shed policy —
	// deliberate, priority-aware load shedding, distinct from the
	// involuntary FIFO/ring drops above.
	RxShed uint64
	// RxLinkDrop counts ingress frames lost because the physical link was
	// down (a link flap) — loss the wire itself announces, unlike the silent
	// FIFO drops above.
	RxLinkDrop uint64
	// RxPauseBuffered counts frames held (and later replayed) by the cutover
	// pause buffer; RxPauseDrop counts the bounded buffer's typed overflow —
	// the only loss a hitless upgrade is permitted, and it is accounted.
	RxPauseBuffered uint64
	RxPauseDrop     uint64
	TxFrames        uint64
	TxDropVerdict   uint64
	// TxOutageDrop counts egress frames lost to a bitstream-reload outage —
	// previously misfiled under TxDropVerdict, which conflated a dataplane
	// blackout with a policy decision.
	TxOutageDrop uint64
	TxBytes      uint64
	DMADescMiss  uint64
	DMADescHit   uint64
	// TrapFallbacks counts overlay runtime traps absorbed by falling back to
	// the last-good chain (or failing open) instead of crashing — the
	// graceful-degradation metric E9 reports.
	TrapFallbacks uint64
	// TrapFailOpens counts the double-trap terminal case: the fallback chain
	// itself trapped, so the pipeline was unloaded and the packet passed
	// unfiltered. Distinct from TrapFallbacks — failing open is not a
	// fallback, and conflating them double-counts one fault.
	TrapFailOpens uint64
	// DMAStallNs accumulates injected DMA-engine stall time in nanoseconds —
	// the health monitor's latency signal for the dma component.
	DMAStallNs uint64
	// IngressProgCycles accumulates the overlay cycles the ingress pipeline
	// actually interpreted — flow-cache hits add nothing here, which is how
	// E14 shows the fast path's per-packet cost collapsing to one lookup.
	IngressProgCycles uint64
}

// New builds a NIC.
func New(cfg Config) *NIC {
	if cfg.Engine == nil {
		panic("nic: Config.Engine is required")
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 512
	}
	if cfg.BufBytes <= 0 {
		cfg.BufBytes = 2048
	}
	if cfg.SRAMBudget <= 0 {
		cfg.SRAMBudget = cfg.Model.NICSRAMBytes
	}
	if cfg.Alloc == nil {
		cfg.Alloc = mem.NewAlloc()
	}
	return &NIC{
		eng:        cfg.Engine,
		model:      cfg.Model,
		llc:        cfg.LLC,
		alloc:      cfg.Alloc,
		ringSize:   cfg.RingSize,
		bufBytes:   cfg.BufBytes,
		dma:        sim.NewServer("nic.dma"),
		wireTx:     sim.NewServer("nic.wiretx"),
		wireRx:     sim.NewServer("nic.wirerx"),
		pipeline:   sim.NewServer("nic.pipeline"),
		conns:      make(map[uint64]*Conn),
		steering:   make(map[packet.FlowKey]uint64),
		sramBudget: cfg.SRAMBudget,
		txWindow:   32,
		rxWindow:   128,
		linkUp:     true,
	}
}

// connSRAM is the on-NIC footprint of one connection: head/tail shadow
// registers for both rings plus scheduling and metadata context. The
// descriptor rings themselves are pinned *host* memory (that is the point of
// the design); only per-queue context lives on the NIC, which is what prior
// work found to be the scalability bottleneck (§5, [23,45]).
func (n *NIC) connSRAM() int {
	return 2*64 /* ring head/tail shadow + doorbell state */ + 128 /* conn context */
}

// OpenConn allocates rings and NIC state for a connection. Returns
// ErrSRAMExhausted when the budget cannot hold another connection — the
// caller (kernel control plane) then either fails the connect or arranges
// slow-path service, which experiment E5 exercises.
func (n *NIC) OpenConn(id uint64, meta packet.Meta, queue *mem.NotifyQueue) (*Conn, error) {
	if _, dup := n.conns[id]; dup {
		return nil, fmt.Errorf("nic: connection %d already open", id)
	}
	need := n.connSRAM()
	if n.sramUsed+need > n.sramBudget {
		return nil, fmt.Errorf("%w: %d conns, %d/%d bytes", ErrSRAMExhausted, len(n.conns), n.sramUsed, n.sramBudget)
	}
	ringBytes := n.ringSize * 64
	bufBytes := n.ringSize * n.bufBytes
	c := &Conn{
		ID:       id,
		TX:       mem.NewRing(n.ringSize, n.alloc.Take(ringBytes, 4096)),
		RX:       mem.NewRing(n.ringSize, n.alloc.Take(ringBytes, 4096)),
		Meta:     meta,
		Queue:    queue,
		bufBase:  n.alloc.Take(2*bufBytes, 4096),
		bufBytes: 2 * bufBytes,
	}
	// Default occupancy watermarks at 3/4 and 1/4 of capacity: the overload
	// watchdog counts rings above high and clears pressure below low.
	c.TX.SetWatermarks(3*n.ringSize/4, n.ringSize/4)
	c.RX.SetWatermarks(3*n.ringSize/4, n.ringSize/4)
	n.conns[id] = c
	n.sramUsed += need
	return c, nil
}

// CloseConn releases a connection's NIC state and steering entries.
func (n *NIC) CloseConn(id uint64) error {
	if _, ok := n.conns[id]; !ok {
		return ErrNoSuchConn
	}
	delete(n.conns, id)
	for k, cid := range n.steering {
		if cid == id {
			delete(n.steering, k)
			n.sramUsed -= 16
		}
	}
	if n.fc != nil {
		n.fc.InvalidateConn(id)
	}
	n.sramUsed -= n.connSRAM()
	return nil
}

// Conn returns an open connection.
func (n *NIC) Conn(id uint64) (*Conn, bool) {
	c, ok := n.conns[id]
	return c, ok
}

// ConnCount returns the number of open connections.
func (n *NIC) ConnCount() int { return len(n.conns) }

// SteerFlow installs an exact-match steering entry (flow director). Each
// entry consumes SRAM.
func (n *NIC) SteerFlow(k packet.FlowKey, connID uint64) error {
	if _, ok := n.conns[connID]; !ok {
		return ErrNoSuchConn
	}
	if _, exists := n.steering[k]; !exists {
		if n.sramUsed+16 > n.sramBudget {
			return fmt.Errorf("%w: steering table", ErrSRAMExhausted)
		}
		n.sramUsed += 16
	}
	n.steering[k] = connID
	n.fcInvalidateKey(k)
	return nil
}

// SteeredConn returns the connection id a flow is steered to, if any.
func (n *NIC) SteeredConn(k packet.FlowKey) (uint64, bool) {
	id, ok := n.steering[k]
	return id, ok
}

// DropSteering removes one steering entry, releasing its SRAM. It models
// NIC-resident state loss (an SRAM row lost across a partial reset) for
// fault injection; the reconciler must detect and re-install the entry.
func (n *NIC) DropSteering(k packet.FlowKey) bool {
	if _, ok := n.steering[k]; !ok {
		return false
	}
	delete(n.steering, k)
	n.sramUsed -= 16
	n.fcInvalidateKey(k)
	return true
}

// SetDefaultConn routes unsteered traffic to the given connection (e.g. the
// kernel-stack architecture's kernel-owned queue); 0 restores
// drop/slow-path behavior.
func (n *NIC) SetDefaultConn(id uint64) { n.defaultConn = id }

// SetScheduler installs the egress qdisc (nil = plain FIFO at the wire).
func (n *NIC) SetScheduler(q qos.Qdisc) { n.sched = q }

// Scheduler returns the installed egress qdisc.
func (n *NIC) Scheduler() qos.Qdisc { return n.sched }

// SetClassifier installs the egress class assignment function used before
// the scheduler (the kernel compiles tc filters down to this).
func (n *NIC) SetClassifier(f func(*packet.Packet) uint32) { n.classifier = f }

// SetTap installs the capture tap fed by overlay mirror instructions and —
// when promiscuous — by every frame the pipeline sees.
func (n *NIC) SetTap(t *sniff.Tap) { n.tap = t }

// Tap returns the installed tap.
func (n *NIC) Tap() *sniff.Tap { return n.tap }

// SetTracer installs (or, with nil, removes) the packet-lifecycle tracer
// the datapath records span events into.
func (n *NIC) SetTracer(t *telemetry.Tracer) { n.tracer = t }

// Tracer returns the installed packet-lifecycle tracer, nil when disabled.
func (n *NIC) Tracer() *telemetry.Tracer { return n.tracer }

// trace records one span event when tracing is enabled; a nil tracer or an
// unstamped packet costs exactly one branch.
func (n *NIC) trace(p *packet.Packet, at sim.Time, layer, point, note string) {
	if n.tracer == nil || p.Meta.Trace == 0 {
		return
	}
	n.tracer.Record(p.Meta.Trace, at, layer, point, note)
}

// SRAM returns used and budget bytes, including loaded programs.
func (n *NIC) SRAM() (used, budget int) {
	u := n.sramUsed
	if n.ingress != nil {
		u += n.ingress.Program().SRAMBytes()
	}
	if n.egress != nil {
		u += n.egress.Program().SRAMBytes()
	}
	return u, n.sramBudget
}

// Model returns the NIC's cost model.
func (n *NIC) Model() timing.Model { return n.model }

// SetTSO enables TCP segmentation offload on a connection with the given
// wire MSS (0 disables). A fixed-function offload: useful, but note what it
// cannot do — evolve (§3's argument for programmability).
func (n *NIC) SetTSO(id uint64, mss int) error {
	c, ok := n.conns[id]
	if !ok {
		return ErrNoSuchConn
	}
	if mss < 0 {
		mss = 0
	}
	c.tsoMSS = mss
	return nil
}

// SetConnRate installs (or clears, with rate<=0) a per-connection egress
// rate limit in bytes/second with the given burst. Programmed by the
// control plane through configuration registers (§4.4).
func (n *NIC) SetConnRate(id uint64, rate, burst float64) error {
	c, ok := n.conns[id]
	if !ok {
		return ErrNoSuchConn
	}
	if rate <= 0 {
		c.rlRate = 0
		return nil
	}
	if burst < 1514 {
		burst = 1514
	}
	c.rlRate = rate
	c.rlBurst = burst
	c.rlTokens = burst
	c.rlLast = n.eng.Now()
	return nil
}

// BufAddr exposes a connection's payload buffer address for a descriptor
// index so the host side can charge its own cache touches against the same
// lines the DMA engine uses.
func (n *NIC) BufAddr(c *Conn, index uint64, rx bool) uint64 {
	return c.bufAddr(index, rx, n.ringSize, n.bufBytes)
}

// Down reports whether the dataplane is inside a bitstream-reload outage.
func (n *NIC) Down(now sim.Time) bool { return now.Before(n.outageUntil) }

// RxWindow returns the ingress FIFO depth (frames in flight between the
// wire and DMA completion before the MAC drops on the floor).
func (n *NIC) RxWindow() int { return n.rxWindow }

// SetRxWindow resizes the ingress FIFO depth. The fault-injection layer uses
// it to model transient ring-overflow pressure (a misbehaving bus master or
// PCIe credit stall shrinking effective buffering); values < 1 clamp to 1.
func (n *NIC) SetRxWindow(depth int) {
	if depth < 1 {
		depth = 1
	}
	n.rxWindow = depth
}

// RxInflight returns the current ingress FIFO occupancy (frames between the
// wire and DMA completion).
func (n *NIC) RxInflight() int { return n.rxInflight }

// RingSize returns the per-connection descriptor ring depth.
func (n *NIC) RingSize() int { return n.ringSize }

// SetShedPolicy installs (or, with nil, removes) the ingress shed policy.
// The policy runs after steering resolves a destination connection and
// before the frame consumes FIFO or DMA resources; returning true drops the
// frame and counts it in RxShed. Nil keeps the hot path a single branch.
func (n *NIC) SetShedPolicy(f func(c *Conn, p *packet.Packet) bool) { n.shedPolicy = f }

// SetLink raises or lowers the physical link. While down, ingress frames are
// dropped at the MAC and counted in RxLinkDrop; egress is unaffected (the
// wire server still serializes, modeling a local fault, not a cut cable).
func (n *NIC) SetLink(up bool) { n.linkUp = up }

// LinkUp reports the physical link state.
func (n *NIC) LinkUp() bool { return n.linkUp }

// StallDMA occupies the DMA engine for the given duration starting now —
// a wedged PCIe credit exchange or a firmware hiccup. Every descriptor fetch
// and payload DMA queued behind it waits it out; the stall time accumulates
// in DMAStallNs for the health monitor to see.
func (n *NIC) StallDMA(d sim.Duration) {
	if d <= 0 {
		return
	}
	n.dma.Acquire(n.eng.Now(), d)
	n.DMAStallNs += uint64(d / sim.Nanosecond)
}

// SetFlowCacheBypass quarantines (true) or restores (false) the flow cache
// without releasing its SRAM: lookups and installs stop, every packet runs
// the full ingress chain. Entering bypass flushes the cache so nothing
// memoized under the corrupted SRAM survives restoration.
func (n *NIC) SetFlowCacheBypass(on bool) {
	if on && !n.fcBypass {
		n.fcFlush()
	}
	n.fcBypass = on
}

// FlowCacheBypassed reports whether the flow cache is quarantined.
func (n *NIC) FlowCacheBypassed() bool { return n.fcBypass }

// ReinstallLastGood swaps the given pipeline back to its last-good program —
// the health monitor's quarantine action for a trap-storming chain. Returns
// false when there is no last-good chain or it is already the one installed.
func (n *NIC) ReinstallLastGood(dir Direction) bool {
	prev := n.lastGood[dir]
	if prev == nil {
		return false
	}
	var cur *overlay.Machine
	if dir == Ingress {
		cur = n.ingress
	} else {
		cur = n.egress
	}
	if cur != nil && cur.Program() == prev {
		return false
	}
	m := overlay.NewMachine(prev)
	if dir == Ingress {
		n.ingress = m
		n.ingressCacheable = programCacheable(prev)
	} else {
		n.egress = m
	}
	n.fcFlush()
	return true
}

// RxOccupancy aggregates RX-ring pressure across every open connection:
// total occupied and total capacity in descriptors, plus how many rings sit
// at or above their high watermark. Sums and counts are order-independent,
// so iterating the conn map directly stays deterministic.
func (n *NIC) RxOccupancy() (used, capacity, overHigh int) {
	for _, c := range n.conns {
		used += c.RX.Len()
		capacity += c.RX.Cap()
		if c.RX.AboveHigh() {
			overHigh++
		}
	}
	return used, capacity, overHigh
}
