package nic

import (
	"fmt"

	"norman/internal/sim"
	"norman/internal/telemetry"
)

// RegisterMetrics exposes the NIC's dataplane counters and SRAM occupancy
// through a telemetry registry. The NIC keeps plain uint64 fields on the hot
// path; the registry reads them lazily through closures at render time, so
// registration adds no per-packet cost.
func (n *NIC) RegisterMetrics(r *telemetry.Registry, labels telemetry.Labels) {
	counters := []struct {
		name, help string
		v          *uint64
	}{
		{"rx_wire", "frames that arrived from the wire", &n.RxWire},
		{"rx_drop_nosteer", "frames dropped for lack of a steering rule (no default conn)", &n.RxDropNoSteer},
		{"rx_drop_ring", "frames dropped because the destination RX ring was full", &n.RxDropRing},
		{"rx_drop_verdict", "frames dropped by an ingress overlay verdict", &n.RxDropVerdict},
		{"rx_slow_path", "frames punted to the software slow path", &n.RxSlowPath},
		{"rx_outage_drop", "frames dropped while the dataplane was faulted down", &n.RxOutageDrop},
		{"rx_fifo_drop", "frames dropped at the MAC FIFO under DMA backpressure", &n.RxFifoDrop},
		{"rx_shed", "ingress frames deliberately dropped by the priority-aware shed policy", &n.RxShed},
		{"rx_link_drop", "ingress frames lost while the physical link was down", &n.RxLinkDrop},
		{"rx_pause_buffered", "ingress frames held and replayed by the cutover pause buffer", &n.RxPauseBuffered},
		{"rx_pause_drop", "ingress frames dropped because the bounded cutover pause buffer overflowed", &n.RxPauseDrop},
		{"tx_frames", "frames transmitted onto the wire", &n.TxFrames},
		{"tx_drop_verdict", "frames dropped by an egress overlay verdict", &n.TxDropVerdict},
		{"tx_outage_drop", "egress frames lost to a bitstream-reload outage", &n.TxOutageDrop},
		{"tx_bytes", "bytes transmitted onto the wire", &n.TxBytes},
		{"dma_desc_hit", "descriptor fetches satisfied by the on-NIC shadow (no PCIe round trip)", &n.DMADescHit},
		{"dma_desc_miss", "descriptor fetches that crossed PCIe to host memory", &n.DMADescMiss},
		{"trap_fallbacks", "overlay runtime traps absorbed by falling back to the last-good chain", &n.TrapFallbacks},
		{"trap_fail_opens", "double-trap events that unloaded the pipeline and failed open", &n.TrapFailOpens},
		{"dma_stall_ns", "injected DMA-engine stall time", &n.DMAStallNs},
	}
	for _, c := range counters {
		v := c.v
		unit := "frames"
		if c.name == "tx_bytes" {
			unit = "bytes"
		} else if c.name == "dma_desc_hit" || c.name == "dma_desc_miss" {
			unit = "fetches"
		} else if c.name == "trap_fallbacks" || c.name == "trap_fail_opens" {
			unit = "traps"
		} else if c.name == "dma_stall_ns" {
			unit = "ns"
		}
		r.Counter(telemetry.Desc{Layer: "nic", Name: c.name, Help: c.help, Unit: unit},
			labels, func() uint64 { return *v })
	}
	r.Gauge(telemetry.Desc{Layer: "nic", Name: "sram_used_bytes", Help: "on-NIC SRAM consumed by connections, steering entries and overlay programs", Unit: "bytes"},
		labels, func() float64 { used, _ := n.SRAM(); return float64(used) })
	r.Gauge(telemetry.Desc{Layer: "nic", Name: "sram_budget_bytes", Help: "total on-NIC SRAM budget", Unit: "bytes"},
		labels, func() float64 { _, budget := n.SRAM(); return float64(budget) })

	// Flow-cache series register only when the cache is installed at
	// registration time (like the per-tenant scheduler series below); the
	// closures re-read n.fc so a later re-enable keeps the series live.
	if n.fc != nil {
		fcCounters := []struct {
			name, help string
			read       func(*FlowCache) uint64
		}{
			{"flowcache_hits", "ingress frames served by the exact-match flow cache (no overlay interpretation)", func(f *FlowCache) uint64 { return f.Hits }},
			{"flowcache_misses", "ingress frames that probed the flow cache and took the slow path", func(f *FlowCache) uint64 { return f.Misses }},
			{"flowcache_installs", "flow-cache entries installed after a slow-path run", func(f *FlowCache) uint64 { return f.Installs }},
			{"flowcache_evictions", "flow-cache entries evicted by the per-bucket clock", func(f *FlowCache) uint64 { return f.Evictions }},
			{"flowcache_invalidations", "flow-cache entries dropped by reload/steering/close invalidation", func(f *FlowCache) uint64 { return f.Invalidations }},
			{"flowcache_denied", "flow-cache installs refused because the tenant's partition had no victim", func(f *FlowCache) uint64 { return f.Denied }},
			{"flowcache_checksum_fails", "flow-cache hits refused because the entry's checksum no longer matched (detected SRAM corruption)", func(f *FlowCache) uint64 { return f.ChecksumFails }},
			{"flowcache_corrupt_served", "lookups that applied a corrupted entry's decision (ground truth; non-zero only with verification off)", func(f *FlowCache) uint64 { return f.CorruptServed }},
		}
		for _, c := range fcCounters {
			read := c.read
			unit := "frames"
			if c.name != "flowcache_hits" && c.name != "flowcache_misses" &&
				c.name != "flowcache_checksum_fails" && c.name != "flowcache_corrupt_served" {
				unit = "entries"
			}
			r.Counter(telemetry.Desc{Layer: "nic", Name: c.name, Help: c.help, Unit: unit},
				labels, func() uint64 {
					if f := n.fc; f != nil {
						return read(f)
					}
					return 0
				})
		}
		r.Gauge(telemetry.Desc{Layer: "nic", Name: "flowcache_entries", Help: "live flow-cache entries", Unit: "entries"},
			labels, func() float64 {
				if f := n.fc; f != nil {
					return float64(f.Len())
				}
				return 0
			})
		r.Gauge(telemetry.Desc{Layer: "nic", Name: "flowcache_capacity", Help: "flow-cache entry slots charged against the SRAM budget", Unit: "entries"},
			labels, func() float64 {
				if f := n.fc; f != nil {
					return float64(f.Capacity())
				}
				return 0
			})
	}

	// Per-tenant scheduler accounting, one labeled series per tenant known
	// to the scheduler at registration, in sorted tenant order.
	if n.tsched != nil {
		for _, st := range n.tsched.Stats() {
			id := st.Tenant
			tl := make(telemetry.Labels, len(labels)+1)
			for k, v := range labels {
				tl[k] = v
			}
			tl["tenant"] = fmt.Sprint(id)
			r.Counter(telemetry.Desc{Layer: "nic", Name: "tenant_pipe_grants", Help: "pipeline slots granted to the tenant by the DRR scheduler", Unit: "grants"},
				tl, func() uint64 { return n.tsched.statsFor(id).PipeGrants })
			r.Counter(telemetry.Desc{Layer: "nic", Name: "tenant_dma_grants", Help: "DMA engine slots granted to the tenant by the DRR scheduler", Unit: "grants"},
				tl, func() uint64 { return n.tsched.statsFor(id).DMAGrants })
			r.Counter(telemetry.Desc{Layer: "nic", Name: "tenant_pipe_work_ns", Help: "pipeline occupancy consumed by the tenant", Unit: "ns"},
				tl, func() uint64 { return uint64(n.tsched.statsFor(id).PipeWork / sim.Nanosecond) })
			r.Counter(telemetry.Desc{Layer: "nic", Name: "tenant_dma_work_ns", Help: "DMA engine occupancy consumed by the tenant", Unit: "ns"},
				tl, func() uint64 { return uint64(n.tsched.statsFor(id).DMAWork / sim.Nanosecond) })
			r.Counter(telemetry.Desc{Layer: "nic", Name: "tenant_fifo_drops", Help: "ingress frames dropped at the tenant's FIFO share", Unit: "frames"},
				tl, func() uint64 { return n.tsched.statsFor(id).RxFifoDrops })
			if n.fc != nil {
				r.Counter(telemetry.Desc{Layer: "nic", Name: "tenant_flowcache_hits", Help: "flow-cache hits on the tenant's entries", Unit: "frames"},
					tl, func() uint64 {
						if f := n.fc; f != nil {
							for _, st := range f.TenantStats() {
								if st.Tenant == id {
									return st.Hits
								}
							}
						}
						return 0
					})
				r.Counter(telemetry.Desc{Layer: "nic", Name: "tenant_flowcache_denied", Help: "flow-cache installs refused inside the tenant's partition", Unit: "entries"},
					tl, func() uint64 {
						if f := n.fc; f != nil {
							for _, st := range f.TenantStats() {
								if st.Tenant == id {
									return st.Denied
								}
							}
						}
						return 0
					})
			}
		}
	}
}
