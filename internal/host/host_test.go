package host

import (
	"testing"

	"norman/internal/arch"
	"norman/internal/packet"
	"norman/internal/sim"
)

func TestIntervalFor(t *testing.T) {
	// 100 Gbps with 1502B frames: 12016 bits / 1e11 bps ≈ 120.16 ns.
	d := IntervalFor(100, 1502)
	if d < 120*sim.Nanosecond || d > 121*sim.Nanosecond {
		t.Fatalf("interval = %v", d)
	}
}

func TestMuxRoutesPerConnection(t *testing.T) {
	a := arch.New("kopi", arch.WorldConfig{})
	w := a.World()
	w.Peer = EchoPeer(a)
	alice := w.Kern.AddUser(1, "a")
	proc := w.Kern.Spawn(alice.UID, "app")
	c1, err := a.Connect(proc, w.Flow(1000, 7))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := a.Connect(proc, w.Flow(2000, 7))
	if err != nil {
		t.Fatal(err)
	}

	m := NewMux(a)
	got := map[uint64]int{}
	m.Handle(c1, func(c *arch.Conn, _ *packet.Packet, _ sim.Time) { got[c.Info.ID]++ })
	var fallback int
	m.Fallback(func(*arch.Conn, *packet.Packet, sim.Time) { fallback++ })

	a.Send(c1, w.UDPTo(w.Flow(1000, 7), 64))
	a.Send(c2, w.UDPTo(w.Flow(2000, 7), 64))
	w.Eng.Run()

	if got[c1.Info.ID] != 1 {
		t.Fatalf("c1 handler: %v", got)
	}
	if fallback != 1 {
		t.Fatalf("fallback for unhandled conn: %d", fallback)
	}
}

func TestSenderOffersConfiguredRate(t *testing.T) {
	a := arch.New("bypass", arch.WorldConfig{})
	w := a.World()
	sink := NewSinkPeer()
	w.Peer = sink.Recv
	alice := w.Kern.AddUser(1, "a")
	proc := w.Kern.Spawn(alice.UID, "app")
	flow := w.Flow(1000, 7)
	c, err := a.Connect(proc, flow)
	if err != nil {
		t.Fatal(err)
	}
	s := &Sender{Arch: a, Conn: c, Flow: flow, Payload: 1460,
		Interval: IntervalFor(10, 1502), Until: sim.Time(2 * sim.Millisecond), Burst: 8}
	s.Start(0)
	w.Eng.Run()
	// 10 Gbps for 2 ms ≈ 2.5 MB; allow 10% for ramp.
	if sink.Bytes < 2_200_000 || sink.Bytes > 2_600_000 {
		t.Fatalf("sink received %d bytes", sink.Bytes)
	}
	if g := sink.Gbps(); g < 9 || g > 11 {
		t.Fatalf("sink rate %.2f", g)
	}
}

func TestProbeMeasuresRTT(t *testing.T) {
	a := arch.New("kopi", arch.WorldConfig{})
	w := a.World()
	w.Peer = EchoPeer(a)
	alice := w.Kern.AddUser(1, "a")
	proc := w.Kern.Spawn(alice.UID, "app")
	flow := w.Flow(1000, 7)
	c, err := a.Connect(proc, flow)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMux(a)
	done := false
	p := &Probe{Arch: a, Conn: c, Flow: flow, Payload: 64, Count: 50,
		Done: func() { done = true }}
	p.Start(m)
	w.Eng.Run()
	if !done {
		t.Fatal("probe must complete")
	}
	if p.Hist.Count() != 50 {
		t.Fatalf("samples = %d", p.Hist.Count())
	}
	// RTT must at least cover two wire propagations (2µs each way).
	if p.Hist.Min() < 4*sim.Microsecond {
		t.Fatalf("rtt min %v is below physics", p.Hist.Min())
	}
}

func TestInboundGenRoundRobin(t *testing.T) {
	a := arch.New("kopi", arch.WorldConfig{})
	w := a.World()
	w.Peer = func(*packet.Packet, sim.Time) {}
	alice := w.Kern.AddUser(1, "a")
	proc := w.Kern.Spawn(alice.UID, "app")
	flows := []packet.FlowKey{}
	conns := []*arch.Conn{}
	for i := 0; i < 3; i++ {
		f := w.Flow(uint16(1000+i), 7)
		c, err := a.Connect(proc, f)
		if err != nil {
			t.Fatal(err)
		}
		flows = append(flows, f)
		conns = append(conns, c)
	}
	m := NewMux(a)
	counts := map[uint64]*Counter{}
	for _, c := range conns {
		ctr := &Counter{}
		ctr.Attach(m, c)
		counts[c.Info.ID] = ctr
	}
	g := &InboundGen{Arch: a, Flows: flows, Payload: 100,
		Interval: 10 * sim.Microsecond, Until: sim.Time(901 * sim.Microsecond)}
	g.Start(0)
	w.Eng.Run()
	if g.Sent != 91 {
		t.Fatalf("sent = %d", g.Sent)
	}
	for id, ctr := range counts {
		if ctr.Packets < 30 || ctr.Packets > 31 {
			t.Fatalf("conn %d got %d packets, want ~30 (round robin)", id, ctr.Packets)
		}
	}
}
