// Package host provides the application and traffic-workload layer used by
// examples, tests and experiments: a per-connection delivery multiplexer,
// open-loop senders (constant-rate and Poisson), a closed-loop latency
// probe, peer-side generators and echo responders, and the misbehaving
// applications the paper's §2 scenarios feature (an ARP flooder, a port
// squatter, a chatty game client).
package host

import (
	"norman/internal/arch"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/stats"
)

// Handler consumes packets delivered to one connection.
type Handler func(c *arch.Conn, p *packet.Packet, at sim.Time)

// Mux fans the architecture's single delivery upcall out to per-connection
// handlers.
type Mux struct {
	handlers map[uint64]Handler
	fallback Handler
}

// NewMux installs a mux as the architecture's deliver function.
func NewMux(a arch.Arch) *Mux {
	m := &Mux{handlers: map[uint64]Handler{}}
	a.SetDeliver(func(c *arch.Conn, p *packet.Packet, at sim.Time) {
		if h, ok := m.handlers[c.Info.ID]; ok {
			h(c, p, at)
			return
		}
		if m.fallback != nil {
			m.fallback(c, p, at)
		}
	})
	return m
}

// Handle registers a connection's handler.
func (m *Mux) Handle(c *arch.Conn, h Handler) { m.handlers[c.Info.ID] = h }

// Fallback registers a handler for connections without one.
func (m *Mux) Fallback(h Handler) { m.fallback = h }

// Sender emits packets on a connection open-loop.
type Sender struct {
	Arch    arch.Arch
	Conn    *arch.Conn
	Flow    packet.FlowKey
	Payload int
	// Interval between sends; Poisson non-nil switches to exponential
	// inter-arrivals with Interval as the mean.
	Interval sim.Duration
	Poisson  *sim.RNG
	// Burst sends this many packets back-to-back per tick (doorbell
	// batching, as DPDK-style runtimes do); the tick interval stretches by
	// the same factor so the offered rate is unchanged. Default 1.
	Burst int

	Until sim.Time // stop time (exclusive)
	Sent  uint64
	Bytes uint64

	// Build overrides packet construction (default: UDP on Flow).
	Build func(seq uint64) *packet.Packet
}

// Start schedules the first send.
func (s *Sender) Start(at sim.Time) {
	w := s.Arch.World()
	w.Eng.At(at, s.tick)
}

func (s *Sender) tick() {
	w := s.Arch.World()
	now := w.Eng.Now()
	if s.Until > 0 && !now.Before(s.Until) {
		return
	}
	burst := s.Burst
	if burst < 1 {
		burst = 1
	}
	pkts := make([]*packet.Packet, 0, burst)
	for i := 0; i < burst; i++ {
		var p *packet.Packet
		if s.Build != nil {
			p = s.Build(s.Sent)
		} else {
			p = w.UDPTo(s.Flow, s.Payload)
		}
		s.Sent++
		s.Bytes += uint64(p.FrameLen())
		pkts = append(pkts, p)
	}
	if burst == 1 {
		s.Arch.Send(s.Conn, pkts[0])
	} else {
		s.Arch.SendBatch(s.Conn, pkts)
	}
	next := s.Interval * sim.Duration(burst)
	if s.Poisson != nil {
		next = s.Poisson.Exp(s.Interval * sim.Duration(burst))
	}
	if next <= 0 {
		next = sim.Nanosecond
	}
	at := now.Add(next)
	// A real sender thread is closed-loop with its core: it cannot issue
	// the next burst before the previous one's synchronous work retires.
	if free := w.Core(s.Conn.Info.PID).FreeAt(); free > at {
		at = free
	}
	w.Eng.At(at, s.tick)
}

// IntervalFor returns the send interval that offers rate gbps with the given
// frame length.
func IntervalFor(gbps float64, frameLen int) sim.Duration {
	return sim.Duration(float64(frameLen*8) / (gbps * 1e9) * float64(sim.Second))
}

// Probe is a closed-loop request/response latency meter: it sends one
// request, waits for the echo, records the RTT, and repeats.
type Probe struct {
	Arch    arch.Arch
	Conn    *arch.Conn
	Flow    packet.FlowKey
	Payload int
	Count   int // number of round trips to perform

	Hist stats.Histogram
	Done func() // called after the last response

	sent   int
	lastAt sim.Time
}

// Start wires the probe into the mux and sends the first request.
func (p *Probe) Start(m *Mux) {
	m.Handle(p.Conn, func(_ *arch.Conn, _ *packet.Packet, at sim.Time) {
		p.Hist.Observe(at.Sub(p.lastAt))
		if p.sent >= p.Count {
			if p.Done != nil {
				p.Done()
			}
			return
		}
		p.send()
	})
	p.send()
}

func (p *Probe) send() {
	w := p.Arch.World()
	p.sent++
	p.lastAt = w.Eng.Now()
	p.Arch.Send(p.Conn, w.UDPTo(p.Flow, p.Payload))
}

// Counter tallies per-connection delivery for throughput measurements.
type Counter struct {
	Packets uint64
	Bytes   uint64
	First   sim.Time
	Last    sim.Time
}

// Attach registers the counter on a connection.
func (ctr *Counter) Attach(m *Mux, c *arch.Conn) {
	m.Handle(c, func(_ *arch.Conn, p *packet.Packet, at sim.Time) {
		if ctr.Packets == 0 {
			ctr.First = at
		}
		ctr.Packets++
		ctr.Bytes += uint64(p.FrameLen())
		ctr.Last = at
	})
}

// Gbps returns the counter's achieved goodput over the observed interval.
func (ctr *Counter) Gbps() float64 {
	if ctr.Packets < 2 {
		return 0
	}
	return stats.Throughput(ctr.Bytes, ctr.Last.Sub(ctr.First))
}

// EchoPeer returns a wire peer that echoes UDP packets back to the host
// after one return-propagation delay (the link is symmetric).
func EchoPeer(a arch.Arch) func(*packet.Packet, sim.Time) {
	w := a.World()
	return func(p *packet.Packet, at sim.Time) {
		if p.UDP == nil || p.IP == nil {
			return
		}
		resp := packet.NewUDP(w.PeerMAC, w.HostMAC, p.IP.Dst, p.IP.Src,
			p.UDP.DstPort, p.UDP.SrcPort, p.PayloadLen)
		w.Eng.After(sim.Duration(w.Model.WireLatency), func() {
			a.DeliverWire(resp)
		})
	}
}

// SinkPeer returns a wire peer that counts what it receives and drops it.
type SinkPeer struct {
	Packets uint64
	Bytes   uint64
	First   sim.Time
	Last    sim.Time
	// PerUID tallies bytes by the sending user as *claimed on the wire*
	// is impossible — the sink keys on destination port instead, which is
	// how an external observer distinguishes traffic classes.
	PerDstPort map[uint16]uint64
}

// NewSinkPeer constructs a counting sink.
func NewSinkPeer() *SinkPeer {
	return &SinkPeer{PerDstPort: map[uint16]uint64{}}
}

// Recv is the wire-peer callback.
func (s *SinkPeer) Recv(p *packet.Packet, at sim.Time) {
	if s.Packets == 0 {
		s.First = at
	}
	s.Packets++
	n := uint64(p.FrameLen())
	s.Bytes += n
	s.Last = at
	if p.UDP != nil {
		s.PerDstPort[p.UDP.DstPort] += n
	}
	if p.TCP != nil {
		s.PerDstPort[p.TCP.DstPort] += n
	}
}

// Gbps returns achieved wire throughput at the sink.
func (s *SinkPeer) Gbps() float64 {
	if s.Packets < 2 {
		return 0
	}
	return stats.Throughput(s.Bytes, s.Last.Sub(s.First))
}

// InboundGen injects traffic from the peer toward host flows, round-robin,
// at a configured aggregate rate — the RX-side load generator E3 uses.
type InboundGen struct {
	Arch     arch.Arch
	Flows    []packet.FlowKey // local->remote keys; packets arrive reversed
	Payload  int
	Interval sim.Duration // aggregate inter-packet gap
	Until    sim.Time

	Sent uint64
	next int
}

// Start schedules the generator.
func (g *InboundGen) Start(at sim.Time) {
	g.Arch.World().Eng.At(at, g.tick)
}

func (g *InboundGen) tick() {
	w := g.Arch.World()
	now := w.Eng.Now()
	if g.Until > 0 && !now.Before(g.Until) {
		return
	}
	flow := g.Flows[g.next%len(g.Flows)]
	g.next++
	g.Sent++
	g.Arch.DeliverWire(w.UDPFrom(flow, g.Payload))
	w.Eng.After(g.Interval, g.tick)
}

// ARPFlooder is the buggy application from the paper's debugging scenario:
// it broadcasts ARP who-has requests at a fixed rate from its connection.
type ARPFlooder struct {
	Arch     arch.Arch
	Conn     *arch.Conn
	SrcMAC   packet.MAC
	SrcIP    packet.IPv4
	Interval sim.Duration
	Until    sim.Time
	Sent     uint64
	target   uint32
}

// Start schedules the flood.
func (f *ARPFlooder) Start(at sim.Time) {
	f.Arch.World().Eng.At(at, f.tick)
}

func (f *ARPFlooder) tick() {
	w := f.Arch.World()
	now := w.Eng.Now()
	if f.Until > 0 && !now.Before(f.Until) {
		return
	}
	f.target++
	p := packet.NewARPRequest(f.SrcMAC, f.SrcIP, packet.MakeIP(10, 0, byte(f.target>>8), byte(f.target)))
	f.Sent++
	f.Arch.Send(f.Conn, p)
	w.Eng.After(f.Interval, f.tick)
}
