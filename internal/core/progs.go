package core

import (
	"fmt"

	"norman/internal/nic"
	"norman/internal/overlay"
)

// Canned overlay programs the KOPI engine deploys for dataplane features
// that are not rule-compilation products. Each is plain overlay assembly:
// auditable, verified at load, swappable at runtime (§4.4).

// StatefulEgressProgram records per-connection state on transmit.
func StatefulEgressProgram(capacity int) string {
	return fmt.Sprintf(`
.table estab %d
ldf r0, conn
jeq r0, 0, out      # kernel-owned queues carry no connection context
ldi r1, 1
update estab, r0, r1
out:
pass
`, capacity)
}

// StatefulIngressProgram admits inbound traffic only for connections the
// egress side has recorded.
func StatefulIngressProgram(capacity int) string {
	return fmt.Sprintf(`
.table estab %d
.counter rejected
ldf r0, conn
jeq r0, 0, out      # unsteered traffic is the slow path's problem
lookup r1, estab, r0, miss
pass
miss:
count rejected
drop
out:
pass
`, capacity)
}

// SamplingMirrorProgram mirrors one in every 2^logN packets to the capture
// tap — bounded-overhead always-on telemetry.
func SamplingMirrorProgram(logN uint) string {
	return fmt.Sprintf(`
.table tick 1
ldi r0, 0
lookup r1, tick, r0, first
jmp have
first:
ldi r1, 0
have:
ldi r2, 1
add r1, r2
update tick, r0, r1
and r1, %d
jne r1, 0, out
mirror
out:
pass
`, (1<<logN)-1)
}

// PortMeterProgram rate-limits traffic to one destination port with a
// token-bucket meter and counts what it sheds.
func PortMeterProgram(port uint16, rateBps, burstBytes float64) string {
	return fmt.Sprintf(`
.meter lim %g %g
.counter shed
ldf r0, dst_port
jne r0, %d, out
ldf r1, len
meter r2, lim, r1
jeq r2, 1, out
count shed
drop
out:
pass
`, rateBps, burstBytes, port)
}

// EnableStatefulFirewall loads the connection-tracking firewall onto both
// pipelines with a shared state table: outbound traffic inserts
// per-connection state that inbound traffic must hit. This is the
// "per-connection state at the NIC" §5 flags as the scalability risk — the
// table capacity is a hard budget, and connections beyond it silently lose
// return traffic (observable via StatefulEstablished / StatefulRejected and
// the NIC drop counters).
//
// It replaces any loaded overlay programs: it is an alternative firewall,
// not a composition with iptables chains.
func (e *Interposer) EnableStatefulFirewall(capacity int) error {
	if capacity <= 0 {
		capacity = 1024
	}
	eprog, err := overlay.Assemble("stateful-egress", StatefulEgressProgram(capacity))
	if err != nil {
		return fmt.Errorf("core: stateful egress: %w", err)
	}
	iprog, err := overlay.Assemble("stateful-ingress", StatefulIngressProgram(capacity))
	if err != nil {
		return fmt.Errorf("core: stateful ingress: %w", err)
	}
	em, _, err := e.NIC.LoadProgram(nic.Egress, eprog)
	if err != nil {
		return err
	}
	im, _, err := e.NIC.LoadProgram(nic.Ingress, iprog)
	if err != nil {
		return err
	}
	// Both pipeline stages reference the same SRAM table.
	return im.ShareTable("estab", em, "estab")
}

// StatefulEstablished returns the number of connections currently tracked,
// or -1 if the stateful firewall is not loaded.
func (e *Interposer) StatefulEstablished() int {
	m := e.NIC.Machine(nic.Egress)
	if m == nil {
		return -1
	}
	return m.TableLen("estab")
}

// StatefulRejected returns inbound packets dropped for lack of state.
func (e *Interposer) StatefulRejected() uint64 {
	m := e.NIC.Machine(nic.Ingress)
	if m == nil {
		return 0
	}
	return m.Counter("rejected")
}
