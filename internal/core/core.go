// Package core is the paper's primary contribution: the KOPI engine — the
// kernel-managed interposition layer that executes on the SmartNIC (§4).
//
// The engine owns the kernel↔NIC configuration protocol: it compiles
// administrative state (netfilter chains) into verified overlay programs and
// loads them onto the pipelines, installs schedulers and capture taps,
// programs per-connection rate limits, and deploys canned dataplane
// programs (the stateful firewall, mirrors, meters). The dataplane itself —
// rings, DMA, pipelines — is the architecture-neutral `internal/nic`; what
// makes it KOPI is this engine configuring it *with the kernel's authority
// and the kernel's process view*.
package core

import (
	"fmt"

	"norman/internal/filter"
	"norman/internal/kernel"
	"norman/internal/nic"
	"norman/internal/overlay"
	"norman/internal/packet"
	"norman/internal/qos"
	"norman/internal/sim"
	"norman/internal/sniff"
)

// Interposer is the KOPI engine: one per host, binding the in-kernel
// control plane to the on-NIC dataplane.
type Interposer struct {
	NIC  *nic.NIC
	Kern *kernel.Kernel

	// ProcessView marks whether connections carry kernel-programmed
	// trusted metadata. True for KOPI proper; false when the same engine
	// drives a hypervisor-style switch (which is exactly the degradation
	// the paper argues about).
	ProcessView bool

	// extra holds additional pipeline stages (telemetry samplers, meters)
	// chained after the compiled firewall on each direction.
	extra map[nic.Direction][]*overlay.Program
}

// AddStage appends an overlay stage to run after the firewall on one
// pipeline; it takes effect at the next DeployChains. Stages compose by
// overlay.Chain semantics: a firewall drop is final, passes flow onward.
func (e *Interposer) AddStage(dir nic.Direction, p *overlay.Program) {
	if e.extra == nil {
		e.extra = map[nic.Direction][]*overlay.Program{}
	}
	e.extra[dir] = append(e.extra[dir], p)
}

// InternCmd returns the command-interning function owner-rule compilation
// needs, or nil without a process view.
func (e *Interposer) InternCmd() func(string) uint64 {
	if !e.ProcessView || e.Kern == nil {
		return nil
	}
	return func(cmd string) uint64 { return uint64(e.Kern.CommandID(cmd)) }
}

// DeployChains compiles both firewall chains onto the NIC pipelines (§4.4's
// runtime configuration path: iptables → kernel → overlay program). Chains
// that are empty with ACCEPT policy unload their pipeline's program. The
// returned duration is the control-plane load latency (MMIO writes).
func (e *Interposer) DeployChains(fw *filter.Engine) (sim.Duration, error) {
	var total sim.Duration
	type dirChain struct {
		dir nic.Direction
		h   filter.Hook
	}
	for _, dc := range []dirChain{{nic.Ingress, filter.HookInput}, {nic.Egress, filter.HookOutput}} {
		ch := fw.Chain(dc.h)
		extras := e.extra[dc.dir]
		if len(ch.Rules) == 0 && ch.Policy == filter.ActAccept && len(extras) == 0 {
			e.NIC.UnloadProgram(dc.dir)
			continue
		}
		prog, err := filter.CompileOverlay(fmt.Sprintf("fw-%s", dc.h), ch, e.InternCmd())
		if err != nil {
			return total, err
		}
		if len(extras) > 0 {
			stages := append([]*overlay.Program{prog}, extras...)
			prog, err = overlay.Chain(fmt.Sprintf("pipeline-%s", dc.h), stages...)
			if err != nil {
				return total, err
			}
		}
		_, load, err := e.NIC.LoadProgram(dc.dir, prog)
		if err != nil {
			return total, err
		}
		total += load
	}
	return total, nil
}

// RuleHits reads the idx'th rule's hit counter from the compiled program on
// the hook's pipeline (the `iptables -L -v` column, served from the NIC).
func (e *Interposer) RuleHits(fw *filter.Engine, h filter.Hook, idx int) (uint64, bool) {
	dir := nic.Ingress
	if h == filter.HookOutput {
		dir = nic.Egress
	}
	m := e.NIC.Machine(dir)
	if m == nil || idx < 0 || idx >= len(fw.Chain(h).Rules) {
		return 0, false
	}
	name := fmt.Sprintf("hit%d", idx)
	if len(e.extra[dir]) > 0 {
		name = "s0." + name // firewall is stage 0 of the chained pipeline
	}
	return m.Counter(name), true
}

// SetScheduler installs the egress qdisc and its classifier on the NIC.
// The classifier sees the packet with whatever metadata the NIC stamped —
// trusted process attribution under KOPI, nothing useful without it.
func (e *Interposer) SetScheduler(q qos.Qdisc, classify func(p *packet.Packet) uint32) {
	e.NIC.SetScheduler(q)
	e.NIC.SetClassifier(classify)
}

// AttachTap installs a capture tap on the NIC pipeline.
func (e *Interposer) AttachTap(expr *sniff.Expr) *sniff.Tap {
	t := sniff.NewTap(expr, 0)
	e.NIC.SetTap(t)
	return t
}

// SetConnRate programs a per-connection egress pacer (rate in
// bytes/second; rate <= 0 clears).
func (e *Interposer) SetConnRate(connID uint64, rate, burst float64) error {
	return e.NIC.SetConnRate(connID, rate, burst)
}
