package core

import (
	"testing"

	"norman/internal/filter"
	"norman/internal/kernel"
	"norman/internal/nic"
	"norman/internal/overlay"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/timing"
)

func newEngine(processView bool) (*Interposer, *sim.Engine) {
	eng := sim.NewEngine()
	n := nic.New(nic.Config{Engine: eng, Model: timing.Default(), RingSize: 16})
	k := kernel.New(eng, timing.Default())
	return &Interposer{NIC: n, Kern: k, ProcessView: processView}, eng
}

func udpTo(dport uint16) *packet.Packet {
	return packet.NewUDP(packet.MAC{1}, packet.MAC{2}, packet.MakeIP(10, 0, 0, 2),
		packet.MakeIP(10, 0, 0, 1), 99, dport, 64)
}

func TestDeployChainsLoadsAndUnloads(t *testing.T) {
	e, _ := newEngine(true)
	fw := filter.NewEngine(true)
	if err := fw.Append(filter.HookOutput, &filter.Rule{
		Proto: filter.Proto(packet.ProtoUDP), DstPorts: filter.Port(80),
		Action: filter.ActDrop,
	}); err != nil {
		t.Fatal(err)
	}
	load, err := e.DeployChains(fw)
	if err != nil {
		t.Fatal(err)
	}
	if load <= 0 {
		t.Fatal("deploy must cost control-plane time")
	}
	if e.NIC.Machine(nic.Egress) == nil {
		t.Fatal("egress program missing")
	}
	if e.NIC.Machine(nic.Ingress) != nil {
		t.Fatal("empty ACCEPT ingress chain must not load a program")
	}

	fw.Flush(filter.HookOutput)
	if _, err := e.DeployChains(fw); err != nil {
		t.Fatal(err)
	}
	if e.NIC.Machine(nic.Egress) != nil {
		t.Fatal("flushed chain must unload")
	}
}

func TestDeployChainsOwnerRulesNeedProcessView(t *testing.T) {
	// The engine without a process view has no interner; a cmd-owner rule
	// cannot compile. (The filter.Engine guard normally rejects the rule
	// first; this checks the engine's own defense in depth.)
	e, _ := newEngine(false)
	fw := filter.NewEngine(true) // bypass the front-door guard deliberately
	_ = fw.Append(filter.HookOutput, &filter.Rule{OwnerCmd: "postgres", Action: filter.ActDrop})
	if _, err := e.DeployChains(fw); err == nil {
		t.Fatal("cmd-owner compilation without an interner must fail")
	}
	if e.InternCmd() != nil {
		t.Fatal("no process view, no interner")
	}
}

func TestRuleHitsCountMatches(t *testing.T) {
	e, _ := newEngine(true)
	fw := filter.NewEngine(true)
	_ = fw.Append(filter.HookInput, &filter.Rule{
		Proto: filter.Proto(packet.ProtoUDP), DstPorts: filter.Port(53),
		Action: filter.ActDrop,
	})
	if _, err := e.DeployChains(fw); err != nil {
		t.Fatal(err)
	}
	m := e.NIC.Machine(nic.Ingress)
	for i := 0; i < 3; i++ {
		m.Run(udpTo(53), overlay.NopEnv{})
	}
	m.Run(udpTo(54), overlay.NopEnv{})
	hits, ok := e.RuleHits(fw, filter.HookInput, 0)
	if !ok || hits != 3 {
		t.Fatalf("hits = %d ok=%v", hits, ok)
	}
	if _, ok := e.RuleHits(fw, filter.HookInput, 5); ok {
		t.Fatal("out-of-range index")
	}
}

func TestSamplingMirrorProgram(t *testing.T) {
	prog, err := overlay.Assemble("sample", SamplingMirrorProgram(3)) // 1 in 8
	if err != nil {
		t.Fatal(err)
	}
	m := overlay.NewMachine(prog)
	mirrored := 0
	env := &countEnv{onMirror: func() { mirrored++ }}
	for i := 0; i < 64; i++ {
		if v, _, _ := m.Run(udpTo(80), env); v != overlay.VerdictPass {
			t.Fatal("sampling must never drop")
		}
	}
	if mirrored != 8 {
		t.Fatalf("mirrored %d/64, want 8", mirrored)
	}
}

func TestPortMeterProgram(t *testing.T) {
	// 10 KB/s, burst 120 B: one minimum frame, then shed.
	prog, err := overlay.Assemble("meter", PortMeterProgram(7777, 10e3, 120))
	if err != nil {
		t.Fatal(err)
	}
	m := overlay.NewMachine(prog)
	env := overlay.NopEnv{Time: 0}
	if v, _, _ := m.Run(udpTo(7777), env); v != overlay.VerdictPass {
		t.Fatal("burst frame passes")
	}
	if v, _, _ := m.Run(udpTo(7777), env); v != overlay.VerdictDrop {
		t.Fatal("second frame sheds")
	}
	if m.Counter("shed") != 1 {
		t.Fatalf("shed = %d", m.Counter("shed"))
	}
	// Other ports are untouched.
	if v, _, _ := m.Run(udpTo(80), env); v != overlay.VerdictPass {
		t.Fatal("other ports pass")
	}
}

func TestStatefulFirewallViaEngine(t *testing.T) {
	e, eng := newEngine(true)
	c, err := e.NIC.OpenConn(1, packet.Meta{ConnID: 1, TrustedMeta: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	flow := packet.FlowKey{Src: packet.MakeIP(10, 0, 0, 1), Dst: packet.MakeIP(10, 0, 0, 2),
		SrcPort: 99, DstPort: 7, Proto: packet.ProtoUDP}
	if err := e.NIC.SteerFlow(flow, 1); err != nil {
		t.Fatal(err)
	}
	if e.StatefulEstablished() != -1 {
		t.Fatal("not loaded yet")
	}
	if err := e.EnableStatefulFirewall(8); err != nil {
		t.Fatal(err)
	}
	if e.StatefulEstablished() != 0 {
		t.Fatal("empty table after load")
	}
	// Inbound before any outbound: rejected.
	inbound := packet.NewUDP(packet.MAC{2}, packet.MAC{1}, flow.Dst, flow.Src, flow.DstPort, flow.SrcPort, 32)
	e.NIC.DeliverFromWire(inbound)
	eng.Run()
	if e.StatefulRejected() != 1 || c.RxDelivered != 0 {
		t.Fatalf("rejected=%d delivered=%d", e.StatefulRejected(), c.RxDelivered)
	}
	_ = c
}

type countEnv struct {
	onMirror func()
}

func (e *countEnv) Now() sim.Time         { return 0 }
func (e *countEnv) Mirror(*packet.Packet) { e.onMirror() }
func (e *countEnv) Notify(*packet.Packet) {}

// TestDeployChainsWithExtraStage: the firewall and a telemetry sampler
// coexist on one pipeline via overlay.Chain, and the firewall's per-rule
// hit counters survive the composition.
func TestDeployChainsWithExtraStage(t *testing.T) {
	e, _ := newEngine(true)
	fw := filter.NewEngine(true)
	_ = fw.Append(filter.HookInput, &filter.Rule{
		Proto: filter.Proto(packet.ProtoUDP), DstPorts: filter.Port(53),
		Action: filter.ActDrop,
	})
	sampler, err := overlay.Assemble("sampler", SamplingMirrorProgram(0)) // mirror everything
	if err != nil {
		t.Fatal(err)
	}
	e.AddStage(nic.Ingress, sampler)
	if _, err := e.DeployChains(fw); err != nil {
		t.Fatal(err)
	}

	m := e.NIC.Machine(nic.Ingress)
	mirrored := 0
	env := &countEnv{onMirror: func() { mirrored++ }}

	if v, _, _ := m.Run(udpTo(53), env); v != overlay.VerdictDrop {
		t.Fatal("firewall stage still drops")
	}
	if mirrored != 0 {
		t.Fatal("dropped packets must not reach the sampler")
	}
	if v, _, _ := m.Run(udpTo(80), env); v != overlay.VerdictPass {
		t.Fatal("pass flows into the sampler")
	}
	if mirrored != 1 {
		t.Fatalf("sampler should mirror passed traffic: %d", mirrored)
	}
	hits, ok := e.RuleHits(fw, filter.HookInput, 0)
	if !ok || hits != 1 {
		t.Fatalf("rule hits through the chained pipeline: %d %v", hits, ok)
	}
}
