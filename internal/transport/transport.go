// Package transport is the Norman library's reliable byte-stream transport:
// sliding-window delivery with cumulative ACKs, RTT-adaptive retransmission
// (Jacobson/Karels), fast retransmit on triple duplicate ACKs, and NewReno-
// style AIMD congestion control.
//
// The paper's architecture (§4.2) puts exactly this logic in the *library*:
// congestion control and reliability are dataplane functionality that needs
// no privileged interposition, so under KOPI they run in the application's
// address space over its own rings — while the on-NIC interposition layer
// still sees (and can police) every segment.
package transport

import (
	"errors"
	"fmt"

	"norman/internal/arch"
	"norman/internal/host"
	"norman/internal/packet"
	"norman/internal/sim"
)

// MSS is the maximum segment payload.
const MSS = 1400

// DefaultMaxRetries is how many consecutive RTO expiries on the same
// unacknowledged byte a stream tolerates before aborting. With the default
// RTO schedule (10 ms initial, doubling, 500 ms cap) a total blackhole
// aborts in under ~4 s of virtual time — bounded, never a livelock.
const DefaultMaxRetries = 12

// ErrAborted is the terminal error of a stream that gave up (retransmission
// budget exhausted or deadline passed) rather than completing.
var ErrAborted = errors.New("transport: stream aborted")

// ErrOverload is the terminal error of a stream terminated by overload
// control (admission revoked, sustained shedding) — a typed policy decision,
// distinct from the ErrAborted RTO give-up, so callers can tell "the path
// died" apart from "the system refused the load".
var ErrOverload = errors.New("transport: stream shed by overload control")

// Config parameterizes a stream.
type Config struct {
	TotalBytes uint32       // how much to transfer
	Window     uint32       // receiver window in bytes (0 = 256 KiB)
	InitialRTO sim.Duration // 0 = 10 ms
	MaxRTO     sim.Duration // 0 = 500 ms
	// SuperSegment posts segments of this size to the NIC (TSO: the NIC
	// cuts them to wire MSS). 0 = plain MSS segments. The connection must
	// have TSO enabled (nic.SetTSO) or the wire will carry jumbo frames.
	SuperSegment uint32
	Done         func(at sim.Time)

	// MaxRetries bounds consecutive RTO expiries on the same sndUna before
	// the stream aborts with ErrAborted. 0 = DefaultMaxRetries; negative =
	// unlimited (the pre-abort livelock behavior, for experiments that want
	// it).
	MaxRetries int
	// Deadline, when positive, aborts the stream if it has not completed
	// within this much virtual time of Start.
	Deadline sim.Duration
	// OnAbort fires exactly once when the stream gives up; Done never fires
	// for an aborted stream.
	OnAbort func(err error, at sim.Time)
}

// Stats tracks a stream's behavior for tests and benches.
type Stats struct {
	SegmentsSent    uint64
	Retransmits     uint64
	FastRetransmits uint64
	Timeouts        uint64
	AckedBytes      uint64
	Started         sim.Time
	Finished        sim.Time
	// CwndMax is the peak congestion window observed, in bytes.
	CwndMax float64
	// Aborted records that the stream gave up (MaxRetries or Deadline)
	// instead of completing; Finished then holds the abort time.
	Aborted bool
	// Shed counts pressure-induced window halvings: each Backpressure(true)
	// notification from the overload governor halves the effective window
	// once and increments this.
	Shed uint64
}

// Goodput returns achieved application throughput in Gbit/s.
func (s Stats) Goodput() float64 {
	if s.Finished <= s.Started {
		return 0
	}
	return float64(s.AckedBytes) * 8 / s.Finished.Sub(s.Started).Seconds() / 1e9
}

// Stream is the sending side of a reliable transfer over one connection.
type Stream struct {
	a    arch.Arch
	conn *arch.Conn
	flow packet.FlowKey
	cfg  Config

	sndUna       uint32 // oldest unacknowledged byte
	sndNxt       uint32 // next byte to send
	cwnd         float64
	ssthresh     float64
	dupAcks      int
	recovering   bool // in fast recovery until recoverPoint is acked
	recoverPoint uint32

	srtt, rttvar sim.Duration
	rto          sim.Duration
	rttSeq       uint32   // segment whose RTT is being timed
	rttSentAt    sim.Time // when it was sent
	rttValid     bool

	timerGen uint64 // cancels stale RTO events
	done     bool

	// Give-up tracking: consecutive RTO expiries pinned on the same sndUna.
	rtoStreak int
	rtoUna    uint32
	aborted   bool
	err       error

	// pressureShift is the number of outstanding backpressure halvings: the
	// effective window is right-shifted by it (floored at one MSS) until the
	// governor clears the low watermark and calls Backpressure(false).
	pressureShift uint

	Stats Stats
}

// New creates a stream sending cfg.TotalBytes over conn, registering its ACK
// handler on the mux. Call Start to begin.
func New(a arch.Arch, conn *arch.Conn, flow packet.FlowKey, mux *host.Mux, cfg Config) *Stream {
	if cfg.Window == 0 {
		cfg.Window = 256 << 10
	}
	if cfg.InitialRTO == 0 {
		cfg.InitialRTO = 10 * sim.Millisecond
	}
	if cfg.MaxRTO == 0 {
		cfg.MaxRTO = 500 * sim.Millisecond
	}
	s := &Stream{
		a: a, conn: conn, flow: flow, cfg: cfg,
		cwnd:     4 * MSS, // RFC 6928-style initial window (scaled down)
		ssthresh: float64(cfg.Window),
		rto:      cfg.InitialRTO,
	}
	mux.Handle(conn, s.onAck)
	return s
}

// Start begins the transfer at the current virtual time.
func (s *Stream) Start() {
	s.Stats.Started = s.now()
	s.trySend()
}

// Done reports whether the whole transfer has been acknowledged.
func (s *Stream) Done() bool { return s.done }

// Aborted reports whether the stream gave up without completing.
func (s *Stream) Aborted() bool { return s.aborted }

// Terminal reports whether the stream has reached a terminal state: either
// completed (Done) or aborted (Err non-nil). A terminal stream schedules no
// further events — the no-livelock guarantee E9 measures.
func (s *Stream) Terminal() bool { return s.done || s.aborted }

// Err returns the terminal error of an aborted stream (wrapping ErrAborted),
// or nil while in flight or after success.
func (s *Stream) Err() error { return s.err }

// abort ends the stream with err: cancel the RTO timer, record stats, and
// fire the error callback — exactly once, whatever path got here.
func (s *Stream) abort(err error) {
	if s.done || s.aborted {
		return
	}
	s.aborted = true
	s.err = err
	s.timerGen++ // cancel any armed RTO
	s.Stats.Aborted = true
	s.Stats.Finished = s.now()
	if s.cfg.OnAbort != nil {
		s.cfg.OnAbort(err, s.Stats.Finished)
	}
}

// maxRetries resolves the configured retry budget.
func (s *Stream) maxRetries() int {
	switch {
	case s.cfg.MaxRetries < 0:
		return 0 // unlimited
	case s.cfg.MaxRetries == 0:
		return DefaultMaxRetries
	default:
		return s.cfg.MaxRetries
	}
}

func (s *Stream) now() sim.Time { return s.a.World().Eng.Now() }

// segment builds the TCP data segment starting at seq.
func (s *Stream) segment(seq uint32) *packet.Packet {
	n := uint32(MSS)
	if s.cfg.SuperSegment > n {
		n = s.cfg.SuperSegment
	}
	if rem := s.cfg.TotalBytes - seq; rem < n {
		n = rem
	}
	w := s.a.World()
	p := packet.NewTCP(w.HostMAC, w.PeerMAC, s.flow.Src, s.flow.Dst,
		s.flow.SrcPort, s.flow.DstPort, packet.TCPPsh, int(n))
	p.TCP.Seq = seq
	return p
}

// inFlightLimit is the current send window in bytes.
func (s *Stream) inFlightLimit() uint32 {
	win := uint32(s.cwnd)
	if win > s.cfg.Window {
		win = s.cfg.Window
	}
	win >>= s.pressureShift
	if win < MSS {
		win = MSS
	}
	return win
}

// Backpressure is the overload governor's pressure signal. on=true halves the
// effective window (cumulative across signals, floored at one MSS) and counts
// a Stats.Shed; on=false clears all halvings at once and immediately tries to
// refill the restored window. Hysteresis lives in the governor — the stream
// just obeys, so signal edges map 1:1 to window changes.
func (s *Stream) Backpressure(on bool) {
	if s.done || s.aborted {
		return
	}
	if on {
		if s.pressureShift < 6 {
			s.pressureShift++
		}
		s.Stats.Shed++
		return
	}
	if s.pressureShift != 0 {
		s.pressureShift = 0
		s.trySend()
	}
}

// AbortOverload terminates the stream with ErrOverload: the overload governor
// (not the path) decided this stream must stop. OnAbort fires once with the
// wrapped reason; Done never fires.
func (s *Stream) AbortOverload(reason string) {
	s.abort(fmt.Errorf("%w: %s", ErrOverload, reason))
}

// trySend transmits as much new data as the window allows.
func (s *Stream) trySend() {
	if s.done || s.aborted {
		return
	}
	for s.sndNxt < s.cfg.TotalBytes && s.sndNxt-s.sndUna < s.inFlightLimit() {
		seg := s.segment(s.sndNxt)
		if !s.rttValid {
			s.rttSeq = s.sndNxt
			s.rttSentAt = s.now()
			s.rttValid = true
		}
		s.sndNxt += uint32(seg.PayloadLen)
		s.Stats.SegmentsSent++
		s.a.Send(s.conn, seg)
	}
	if s.cwnd > s.Stats.CwndMax {
		s.Stats.CwndMax = s.cwnd
	}
	s.armTimer()
}

// retransmit resends the oldest unacknowledged segment.
func (s *Stream) retransmit() {
	seg := s.segment(s.sndUna)
	s.Stats.SegmentsSent++
	s.Stats.Retransmits++
	s.rttValid = false // Karn: never time retransmitted segments
	s.a.Send(s.conn, seg)
	s.armTimer()
}

// armTimer schedules (or reschedules) the RTO for the current window.
func (s *Stream) armTimer() {
	if s.done || s.aborted || s.sndUna >= s.cfg.TotalBytes {
		return
	}
	s.timerGen++
	gen := s.timerGen
	s.a.World().Eng.After(s.rto, func() {
		if gen != s.timerGen || s.done || s.aborted {
			return
		}
		s.onTimeout()
	})
}

func (s *Stream) onTimeout() {
	if s.sndUna >= s.cfg.TotalBytes {
		return
	}
	s.Stats.Timeouts++

	// Give-up path: consecutive expiries with no forward progress mean the
	// path (or the peer) is gone; retransmitting forever would livelock the
	// stream and pin its timer events in the engine for good.
	if s.sndUna == s.rtoUna {
		s.rtoStreak++
	} else {
		s.rtoUna = s.sndUna
		s.rtoStreak = 1
	}
	now := s.now()
	if max := s.maxRetries(); max > 0 && s.rtoStreak > max {
		s.abort(fmt.Errorf("%w: %d consecutive RTOs at seq %d", ErrAborted, s.rtoStreak-1, s.sndUna))
		return
	}
	if s.cfg.Deadline > 0 && now.Sub(s.Stats.Started) >= s.cfg.Deadline {
		s.abort(fmt.Errorf("%w: deadline %v exceeded", ErrAborted, s.cfg.Deadline))
		return
	}
	s.ssthresh = maxf(s.cwnd/2, 2*MSS)
	s.cwnd = MSS
	s.recovering = false
	s.dupAcks = 0
	s.rto *= 2
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
	// Go-back-N from the timeout point: resend the first hole only; the
	// cumulative ACK will pull the rest.
	s.sndNxt = maxu(s.sndUna+MSS, s.sndUna) // allow window to refill gradually
	if s.sndNxt > s.cfg.TotalBytes {
		s.sndNxt = s.cfg.TotalBytes
	}
	s.retransmit()
}

// onAck processes a cumulative acknowledgment from the responder.
func (s *Stream) onAck(_ *arch.Conn, p *packet.Packet, at sim.Time) {
	if p.TCP == nil || p.TCP.Flags&packet.TCPAck == 0 || s.done || s.aborted {
		return
	}
	ack := p.TCP.Ack
	switch {
	case ack > s.sndUna:
		acked := ack - s.sndUna
		s.Stats.AckedBytes += uint64(acked)
		s.sndUna = ack
		s.dupAcks = 0
		s.rtoStreak = 0 // forward progress resets the give-up budget

		// RTT sample (Karn-compliant: only for never-retransmitted probes).
		if s.rttValid && ack > s.rttSeq {
			s.updateRTT(at.Sub(s.rttSentAt))
			s.rttValid = false
		}

		if s.recovering {
			if ack >= s.recoverPoint {
				s.recovering = false
				s.cwnd = s.ssthresh
			}
		} else if s.cwnd < s.ssthresh {
			s.cwnd += float64(acked) // slow start
		} else {
			s.cwnd += MSS * float64(acked) / s.cwnd // congestion avoidance
		}

		if s.sndNxt < s.sndUna {
			s.sndNxt = s.sndUna
		}
		if s.sndUna >= s.cfg.TotalBytes {
			s.done = true
			s.timerGen++
			s.Stats.Finished = at
			if s.cfg.Done != nil {
				s.cfg.Done(at)
			}
			return
		}
		s.armTimer()
		s.trySend()

	case ack == s.sndUna:
		s.dupAcks++
		if s.dupAcks == 3 && !s.recovering {
			// Fast retransmit + NewReno-style recovery.
			s.Stats.FastRetransmits++
			s.ssthresh = maxf(s.cwnd/2, 2*MSS)
			s.cwnd = s.ssthresh + 3*MSS
			s.recovering = true
			s.recoverPoint = s.sndNxt
			s.retransmit()
		} else if s.recovering {
			s.cwnd += MSS // inflate per additional dupack
			s.trySend()
		}
	}
}

// updateRTT runs the Jacobson/Karels estimator.
func (s *Stream) updateRTT(sample sim.Duration) {
	if sample <= 0 {
		return
	}
	if s.srtt == 0 {
		s.srtt = sample
		s.rttvar = sample / 2
	} else {
		diff := s.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (3*s.rttvar + diff) / 4
		s.srtt = (7*s.srtt + sample) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < sim.Millisecond {
		s.rto = sim.Millisecond
	}
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
}

// SRTT exposes the smoothed RTT estimate.
func (s *Stream) SRTT() sim.Duration { return s.srtt }

// Cwnd exposes the current congestion window in bytes.
func (s *Stream) Cwnd() float64 { return s.cwnd }

func (s *Stream) String() string {
	return fmt.Sprintf("stream[una=%d nxt=%d cwnd=%.0f rto=%v]", s.sndUna, s.sndNxt, s.cwnd, s.rto)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func maxu(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}
