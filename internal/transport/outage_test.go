package transport

import (
	"testing"

	"norman/internal/arch"
	"norman/internal/host"
	"norman/internal/packet"
	"norman/internal/sim"
)

// TestTransferSurvivesBitstreamOutage is the E4/transport integration: a
// bitstream respin (§4.4's "equivalent to upgrading the kernel") blacks out
// the dataplane mid-transfer; the library transport's retransmission
// machinery rides it out and the transfer still completes, bit-complete.
func TestTransferSurvivesBitstreamOutage(t *testing.T) {
	a := arch.New("kopi", arch.WorldConfig{})
	w := a.World()

	resp := NewResponder(a, 5001, 7)
	w.Peer = resp.Recv

	u := w.Kern.AddUser(1, "u")
	proc := w.Kern.Spawn(u.UID, "sender")
	flow := packet.FlowKey{Src: w.HostIP, Dst: w.PeerIP, SrcPort: 4001, DstPort: 5001, Proto: packet.ProtoTCP}
	conn, err := a.Connect(proc, flow)
	if err != nil {
		t.Fatal(err)
	}
	mux := host.NewMux(a)

	const total = 1 << 20
	s := New(a, conn, flow, mux, Config{TotalBytes: total})
	s.Start()

	// Mid-transfer, yank the dataplane for 3 ms.
	w.Eng.At(sim.Time(200*sim.Microsecond), func() {
		w.NIC.ReloadBitstream(w.Eng.Now(), 3*sim.Millisecond)
	})

	w.Eng.RunUntil(sim.Time(10 * sim.Second))

	if !s.Done() {
		t.Fatalf("transfer did not survive the outage: %v (stats %+v)", s, s.Stats)
	}
	if resp.Received != total {
		t.Fatalf("responder got %d/%d in-order bytes", resp.Received, total)
	}
	if s.Stats.Timeouts == 0 {
		t.Fatal("the outage must have forced RTO recovery")
	}
	if w.NIC.RxOutageDrop == 0 && w.NIC.TxDropVerdict == 0 {
		t.Fatal("the outage should have eaten traffic")
	}
	// The blackout plus recovery dominates the completion time.
	if s.Stats.Finished < sim.Time(3*sim.Millisecond) {
		t.Fatalf("finished at %v, before the outage even ended", s.Stats.Finished)
	}
}
