package transport

import (
	"errors"
	"testing"

	"norman/internal/arch"
	"norman/internal/host"
	"norman/internal/packet"
	"norman/internal/sim"
)

// TestTransferSurvivesBitstreamOutage is the E4/transport integration: a
// bitstream respin (§4.4's "equivalent to upgrading the kernel") blacks out
// the dataplane mid-transfer; the library transport's retransmission
// machinery rides it out and the transfer still completes, bit-complete.
func TestTransferSurvivesBitstreamOutage(t *testing.T) {
	a := arch.New("kopi", arch.WorldConfig{})
	w := a.World()

	resp := NewResponder(a, 5001, 7)
	w.Peer = resp.Recv

	u := w.Kern.AddUser(1, "u")
	proc := w.Kern.Spawn(u.UID, "sender")
	flow := packet.FlowKey{Src: w.HostIP, Dst: w.PeerIP, SrcPort: 4001, DstPort: 5001, Proto: packet.ProtoTCP}
	conn, err := a.Connect(proc, flow)
	if err != nil {
		t.Fatal(err)
	}
	mux := host.NewMux(a)

	const total = 1 << 20
	s := New(a, conn, flow, mux, Config{TotalBytes: total})
	s.Start()

	// Mid-transfer, yank the dataplane for 3 ms.
	w.Eng.At(sim.Time(200*sim.Microsecond), func() {
		w.NIC.ReloadBitstream(w.Eng.Now(), 3*sim.Millisecond)
	})

	w.Eng.RunUntil(sim.Time(10 * sim.Second))

	if !s.Done() {
		t.Fatalf("transfer did not survive the outage: %v (stats %+v)", s, s.Stats)
	}
	if resp.Received != total {
		t.Fatalf("responder got %d/%d in-order bytes", resp.Received, total)
	}
	if s.Stats.Timeouts == 0 {
		t.Fatal("the outage must have forced RTO recovery")
	}
	if w.NIC.RxOutageDrop == 0 && w.NIC.TxOutageDrop == 0 {
		t.Fatal("the outage should have eaten traffic")
	}
	// The blackout plus recovery dominates the completion time.
	if s.Stats.Finished < sim.Time(3*sim.Millisecond) {
		t.Fatalf("finished at %v, before the outage even ended", s.Stats.Finished)
	}
}

// TestTotalBlackholeAbortsBounded pins the no-livelock guarantee: with every
// frame eaten by the wire (nothing ever reaches the peer), the stream
// exhausts its retransmission budget and aborts — exactly one error
// callback, terminal state, and a completion time bounded by the RTO
// schedule (~4.1 s with the defaults), not an infinite retransmit loop.
func TestTotalBlackholeAbortsBounded(t *testing.T) {
	a := arch.New("kopi", arch.WorldConfig{})
	w := a.World()
	w.Peer = func(*packet.Packet, sim.Time) {} // sink: a total blackhole

	u := w.Kern.AddUser(1, "u")
	proc := w.Kern.Spawn(u.UID, "sender")
	flow := packet.FlowKey{Src: w.HostIP, Dst: w.PeerIP, SrcPort: 4001, DstPort: 5001, Proto: packet.ProtoTCP}
	conn, err := a.Connect(proc, flow)
	if err != nil {
		t.Fatal(err)
	}
	mux := host.NewMux(a)

	aborts := 0
	var abortErr error
	s := New(a, conn, flow, mux, Config{
		TotalBytes: 1 << 20,
		OnAbort:    func(err error, _ sim.Time) { aborts++; abortErr = err },
		Done:       func(sim.Time) { t.Error("Done must not fire for an aborted stream") },
	})
	s.Start()
	// Run to quiescence: if the abort failed to cancel the RTO timer this
	// would never return (the livelock this test exists to rule out).
	w.Eng.Run()

	if !s.Aborted() || s.Done() {
		t.Fatalf("blackhole stream must abort: done=%v aborted=%v stats=%+v",
			s.Done(), s.Aborted(), s.Stats)
	}
	if !s.Terminal() {
		t.Fatal("aborted stream must be terminal")
	}
	if aborts != 1 {
		t.Fatalf("OnAbort fired %d times", aborts)
	}
	if !errors.Is(abortErr, ErrAborted) || !errors.Is(s.Err(), ErrAborted) {
		t.Fatalf("abort error = %v / %v", abortErr, s.Err())
	}
	if !s.Stats.Aborted {
		t.Fatalf("stats must record the abort: %+v", s.Stats)
	}
	// Bounded: sum of the doubling RTO schedule, well under 5 s — and the
	// engine must go quiet right after (no lingering retransmit events).
	if s.Stats.Finished > sim.Time(5*sim.Second) {
		t.Fatalf("abort at %v, beyond the RTO schedule bound", s.Stats.Finished)
	}
	// The budget allows MaxRetries retransmissions; the expiry after the
	// last one is the abort itself.
	if int(s.Stats.Timeouts) != DefaultMaxRetries+1 {
		t.Fatalf("timeouts = %d, want budget+abort %d", s.Stats.Timeouts, DefaultMaxRetries+1)
	}
	if idle := w.Eng.Now(); idle > sim.Time(6*sim.Second) {
		t.Fatalf("events kept firing after the abort: engine went quiet at %v", idle)
	}
}

// TestHeavyLossCompletesBounded: at 50% data loss the stream must still make
// forward progress (acks reset the give-up budget) and finish — degraded,
// retransmitting hard, but neither aborted nor livelocked.
func TestHeavyLossCompletesBounded(t *testing.T) {
	const total = 64 << 10
	s, resp := run(t, total, 0.5, 0)
	if s.Aborted() {
		t.Fatalf("50%% loss must not abort a progressing stream: %v (stats %+v)", s.Err(), s.Stats)
	}
	if !s.Done() {
		t.Fatalf("transfer incomplete under 50%% loss: %+v", s.Stats)
	}
	if resp.Received != total {
		t.Fatalf("responder got %d/%d", resp.Received, total)
	}
	if s.Stats.Retransmits == 0 || resp.DataDrops == 0 {
		t.Fatalf("loss model never exercised: %+v drops=%d", s.Stats, resp.DataDrops)
	}
	if s.Stats.Finished > sim.Time(5*sim.Second) {
		t.Fatalf("completion at %v, outside the run window", s.Stats.Finished)
	}
}

// TestDeadlineAborts: a stream that cannot finish by its deadline gives up
// at the next RTO after the deadline passes.
func TestDeadlineAborts(t *testing.T) {
	a := arch.New("kopi", arch.WorldConfig{})
	w := a.World()
	w.Peer = func(*packet.Packet, sim.Time) {}

	u := w.Kern.AddUser(1, "u")
	proc := w.Kern.Spawn(u.UID, "sender")
	flow := packet.FlowKey{Src: w.HostIP, Dst: w.PeerIP, SrcPort: 4002, DstPort: 5001, Proto: packet.ProtoTCP}
	conn, err := a.Connect(proc, flow)
	if err != nil {
		t.Fatal(err)
	}
	s := New(a, conn, flow, host.NewMux(a), Config{
		TotalBytes: 1 << 20,
		MaxRetries: -1, // unlimited retries: only the deadline can stop it
		Deadline:   100 * sim.Millisecond,
	})
	s.Start()
	w.Eng.RunUntil(sim.Time(10 * sim.Second))

	if !s.Aborted() || !errors.Is(s.Err(), ErrAborted) {
		t.Fatalf("deadline must abort: aborted=%v err=%v", s.Aborted(), s.Err())
	}
	// The deadline check runs on RTO expiry, so the abort lands within one
	// max-RTO of the deadline.
	if s.Stats.Finished > sim.Time(100*sim.Millisecond+600*sim.Millisecond) {
		t.Fatalf("deadline abort at %v", s.Stats.Finished)
	}
}
