package transport

import (
	"fmt"

	"norman/internal/arch"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/telemetry"
)

// Responder is the remote endpoint: it consumes data segments arriving on
// the wire, reassembles in order, and returns cumulative ACKs. An optional
// loss model drops data and/or ACK packets deterministically, which the
// tests use to exercise retransmission and congestion control.
type Responder struct {
	a    arch.Arch
	port uint16 // local (responder-side) port the stream targets

	rcvNxt uint32
	// ooo holds out-of-order segments: start -> end (exclusive).
	ooo map[uint32]uint32

	// Loss model.
	DataLossProb float64
	AckLossProb  float64
	rng          *sim.RNG

	// Deliver, when set, carries ACKs back toward the host instead of the
	// default a.DeliverWire — the splice point for return-path fault
	// injection (faults.Injector.WrapRx).
	Deliver func(p *packet.Packet)

	// tracer, when set via SetTracer, closes the lifecycle loop: a traced
	// data segment gets a peer-side rx (or drop) span event.
	tracer *telemetry.Tracer

	Received  uint64 // in-order bytes delivered
	AcksSent  uint64
	DataDrops uint64
	AckDrops  uint64
}

// NewResponder builds the peer endpoint for streams targeting dstPort.
// Install its Recv as (or inside) the world's Peer function.
func NewResponder(a arch.Arch, dstPort uint16, seed int64) *Responder {
	return &Responder{
		a:    a,
		port: dstPort,
		ooo:  map[uint32]uint32{},
		rng:  sim.NewRNG(seed, "transport-responder"),
	}
}

// SetTracer attaches a packet-lifecycle tracer for peer-side span events.
func (r *Responder) SetTracer(tr *telemetry.Tracer) { r.tracer = tr }

// trace records a peer-side span event for p when tracing is on.
func (r *Responder) trace(p *packet.Packet, at sim.Time, point, note string) {
	if r.tracer == nil || p.Meta.Trace == 0 {
		return
	}
	r.tracer.Record(p.Meta.Trace, at, "peer", point, note)
}

// Recv is the wire-peer callback: feed it every frame that leaves the host.
func (r *Responder) Recv(p *packet.Packet, at sim.Time) {
	if p.TCP == nil || p.IP == nil || p.TCP.DstPort != r.port {
		return
	}
	if p.TCP.Flags&packet.TCPAck != 0 && p.PayloadLen == 0 {
		return // not a data segment
	}
	if r.DataLossProb > 0 && r.rng.Float64() < r.DataLossProb {
		r.DataDrops++
		r.trace(p, at, "rx_drop", "peer loss model")
		return
	}
	if r.tracer != nil && p.Meta.Trace != 0 {
		r.trace(p, at, "rx", fmt.Sprintf("seq=%d len=%d", p.TCP.Seq, p.PayloadLen))
	}

	start := p.TCP.Seq
	end := start + uint32(p.PayloadLen)
	if end > start {
		r.note(start, end)
	}

	// Cumulative ACK for everything contiguous so far.
	if r.AckLossProb > 0 && r.rng.Float64() < r.AckLossProb {
		r.AckDrops++
		return
	}
	ack := packet.NewTCP(p.Eth.Dst, p.Eth.Src, p.IP.Dst, p.IP.Src,
		p.TCP.DstPort, p.TCP.SrcPort, packet.TCPAck, 0)
	ack.TCP.Ack = r.rcvNxt
	r.AcksSent++
	if r.Deliver != nil {
		r.Deliver(ack)
		return
	}
	r.a.DeliverWire(ack)
}

// note records a received range and advances rcvNxt over any now-contiguous
// out-of-order data.
func (r *Responder) note(start, end uint32) {
	if end <= r.rcvNxt {
		return // duplicate of already-delivered data
	}
	if start > r.rcvNxt {
		// Out of order: remember the range (merge naively by start).
		if old, ok := r.ooo[start]; !ok || end > old {
			r.ooo[start] = end
		}
		return
	}
	// In order (possibly overlapping): deliver.
	r.advance(end)
	// Pull any buffered ranges that are now contiguous.
	for {
		progressed := false
		for s, e := range r.ooo {
			if s <= r.rcvNxt {
				if e > r.rcvNxt {
					r.advance(e)
				}
				delete(r.ooo, s)
				progressed = true
			}
		}
		if !progressed {
			return
		}
	}
}

func (r *Responder) advance(to uint32) {
	r.Received += uint64(to - r.rcvNxt)
	r.rcvNxt = to
}
