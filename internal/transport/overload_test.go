package transport

import (
	"errors"
	"testing"

	"norman/internal/arch"
	"norman/internal/host"
	"norman/internal/packet"
	"norman/internal/sim"
)

// TestTerminalPaths is the typed-terminal-state table: the two ways a stream
// can end without completing — the path died (ErrAborted, via RTO give-up) or
// overload control killed it (ErrOverload, via AbortOverload) — must each
// leave a terminal stream, fire OnAbort exactly once, and carry the right
// sentinel so callers can errors.Is-dispatch on the cause.
func TestTerminalPaths(t *testing.T) {
	cases := []struct {
		name     string
		trigger  func(w *arch.World, s *Stream) // arranged before/at run time
		sentinel error
		other    error // the sentinel this path must NOT match
	}{
		{
			name: "rto-give-up",
			trigger: func(w *arch.World, s *Stream) {
				w.Peer = func(*packet.Packet, sim.Time) {} // blackhole
			},
			sentinel: ErrAborted,
			other:    ErrOverload,
		},
		{
			name: "overload-kill",
			trigger: func(w *arch.World, s *Stream) {
				w.Eng.At(sim.Time(50*sim.Microsecond), func() {
					s.AbortOverload("tenant over budget")
				})
			},
			sentinel: ErrOverload,
			other:    ErrAborted,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := arch.New("kopi", arch.WorldConfig{})
			w := a.World()
			resp := NewResponder(a, 5001, 7)
			w.Peer = resp.Recv

			u := w.Kern.AddUser(1, "u")
			proc := w.Kern.Spawn(u.UID, "sender")
			flow := packet.FlowKey{Src: w.HostIP, Dst: w.PeerIP, SrcPort: 4001, DstPort: 5001, Proto: packet.ProtoTCP}
			conn, err := a.Connect(proc, flow)
			if err != nil {
				t.Fatal(err)
			}
			aborts := 0
			var abortErr error
			s := New(a, conn, flow, host.NewMux(a), Config{
				TotalBytes: 1 << 20,
				OnAbort:    func(err error, _ sim.Time) { aborts++; abortErr = err },
				Done:       func(sim.Time) { t.Error("Done must not fire for an aborted stream") },
			})
			tc.trigger(w, s)
			s.Start()
			w.Eng.RunUntil(sim.Time(10 * sim.Second))

			if !s.Aborted() || s.Done() || !s.Terminal() {
				t.Fatalf("stream must be terminally aborted: done=%v aborted=%v", s.Done(), s.Aborted())
			}
			if aborts != 1 {
				t.Fatalf("OnAbort fired %d times, want exactly 1", aborts)
			}
			if !errors.Is(abortErr, tc.sentinel) || !errors.Is(s.Err(), tc.sentinel) {
				t.Fatalf("terminal error = %v / %v, want %v", abortErr, s.Err(), tc.sentinel)
			}
			if errors.Is(s.Err(), tc.other) {
				t.Fatalf("terminal error %v must not also match %v", s.Err(), tc.other)
			}
			if !s.Stats.Aborted {
				t.Fatalf("stats must record the abort: %+v", s.Stats)
			}
		})
	}
}

// TestAbortOverloadIdempotent: a second kill (or a kill racing a completed
// stream) must be a no-op — one OnAbort, the first error wins.
func TestAbortOverloadIdempotent(t *testing.T) {
	a := arch.New("kopi", arch.WorldConfig{})
	w := a.World()
	w.Peer = func(*packet.Packet, sim.Time) {}

	u := w.Kern.AddUser(1, "u")
	proc := w.Kern.Spawn(u.UID, "sender")
	flow := packet.FlowKey{Src: w.HostIP, Dst: w.PeerIP, SrcPort: 4003, DstPort: 5001, Proto: packet.ProtoTCP}
	conn, err := a.Connect(proc, flow)
	if err != nil {
		t.Fatal(err)
	}
	aborts := 0
	s := New(a, conn, flow, host.NewMux(a), Config{
		TotalBytes: 1 << 20,
		OnAbort:    func(error, sim.Time) { aborts++ },
	})
	s.Start()
	s.AbortOverload("first")
	s.AbortOverload("second")
	w.Eng.Run()
	if aborts != 1 {
		t.Fatalf("OnAbort fired %d times", aborts)
	}
	if !errors.Is(s.Err(), ErrOverload) || s.Err().Error() != "transport: stream shed by overload control: first" {
		t.Fatalf("first kill must win: %v", s.Err())
	}
}

// TestBackpressureHalvesWindow pins the window arithmetic: each on-signal
// halves the effective in-flight limit (cumulative, capped, floored at one
// MSS), the off-signal restores it in one step, and Stats.Shed counts every
// applied halving.
func TestBackpressureHalvesWindow(t *testing.T) {
	a := arch.New("kopi", arch.WorldConfig{})
	w := a.World()
	resp := NewResponder(a, 5001, 7)
	w.Peer = resp.Recv

	u := w.Kern.AddUser(1, "u")
	proc := w.Kern.Spawn(u.UID, "sender")
	flow := packet.FlowKey{Src: w.HostIP, Dst: w.PeerIP, SrcPort: 4002, DstPort: 5001, Proto: packet.ProtoTCP}
	conn, err := a.Connect(proc, flow)
	if err != nil {
		t.Fatal(err)
	}
	const window = 64 << 10
	s := New(a, conn, flow, host.NewMux(a), Config{TotalBytes: 1 << 20, Window: window})
	s.cwnd = float64(window) // pin cwnd so the receiver window is the binding clamp

	base := s.inFlightLimit()
	if base != window {
		t.Fatalf("baseline window = %d, want %d", base, window)
	}
	s.Backpressure(true)
	if got := s.inFlightLimit(); got != window/2 {
		t.Fatalf("after one signal window = %d, want %d", got, window/2)
	}
	s.Backpressure(true)
	if got := s.inFlightLimit(); got != window/4 {
		t.Fatalf("after two signals window = %d, want %d", got, window/4)
	}
	if s.Stats.Shed != 2 {
		t.Fatalf("Shed = %d, want 2", s.Stats.Shed)
	}
	// Pile on: the shift caps, and the floor holds at one MSS.
	for i := 0; i < 20; i++ {
		s.Backpressure(true)
	}
	if got := s.inFlightLimit(); got != MSS {
		t.Fatalf("deep pressure window = %d, want the one-MSS floor (shift caps, floor holds)", got)
	}
	// Release: one off-signal clears every halving (no slow unwinding) and
	// does not count as a shed.
	shed := s.Stats.Shed
	s.Backpressure(false)
	if got := s.inFlightLimit(); got != window {
		t.Fatalf("after release window = %d, want %d", got, window)
	}
	if s.Stats.Shed != shed {
		t.Fatalf("release must not count as a shed: %d -> %d", shed, s.Stats.Shed)
	}
	// And the squeezed transfer still completes once released.
	s.Start()
	w.Eng.RunUntil(sim.Time(10 * sim.Second))
	if !s.Done() || resp.Received != 1<<20 {
		t.Fatalf("transfer incomplete after pressure cycle: done=%v got=%d", s.Done(), resp.Received)
	}
}
