package transport

import (
	"testing"

	"norman/internal/arch"
	"norman/internal/host"
	"norman/internal/packet"
	"norman/internal/sim"
)

// run performs one transfer over a fresh KOPI world with the given loss
// probabilities and returns the stream and responder for inspection.
func run(t *testing.T, total uint32, dataLoss, ackLoss float64) (*Stream, *Responder) {
	t.Helper()
	a := arch.New("kopi", arch.WorldConfig{})
	w := a.World()

	resp := NewResponder(a, 5001, 42)
	resp.DataLossProb = dataLoss
	resp.AckLossProb = ackLoss
	w.Peer = resp.Recv

	u := w.Kern.AddUser(1, "u")
	proc := w.Kern.Spawn(u.UID, "sender")
	flow := packet.FlowKey{Src: w.HostIP, Dst: w.PeerIP, SrcPort: 4001, DstPort: 5001, Proto: packet.ProtoTCP}
	conn, err := a.Connect(proc, flow)
	if err != nil {
		t.Fatal(err)
	}
	mux := host.NewMux(a)
	s := New(a, conn, flow, mux, Config{TotalBytes: total})
	s.Start()
	w.Eng.RunUntil(sim.Time(5 * sim.Second))
	return s, resp
}

func TestLosslessTransferCompletes(t *testing.T) {
	const total = 512 << 10
	s, resp := run(t, total, 0, 0)
	if !s.Done() {
		t.Fatalf("transfer incomplete: %v", s)
	}
	if resp.Received != total {
		t.Fatalf("responder got %d/%d in-order bytes", resp.Received, total)
	}
	if s.Stats.Retransmits != 0 || s.Stats.Timeouts != 0 {
		t.Fatalf("lossless transfer must not retransmit: %+v", s.Stats)
	}
	if s.Stats.AckedBytes != total {
		t.Fatalf("acked %d", s.Stats.AckedBytes)
	}
	if g := s.Stats.Goodput(); g <= 0 {
		t.Fatalf("goodput %v", g)
	}
}

func TestSlowStartGrowsCwnd(t *testing.T) {
	s, _ := run(t, 1<<20, 0, 0)
	if s.Stats.CwndMax < 16*MSS {
		t.Fatalf("cwnd never grew: max %.0f", s.Stats.CwndMax)
	}
	if s.SRTT() <= 0 {
		t.Fatal("rtt estimator never sampled")
	}
	// SRTT should be in the vicinity of physics: ≥ 2 wire latencies (4µs).
	if s.SRTT() < 4*sim.Microsecond {
		t.Fatalf("srtt %v below propagation", s.SRTT())
	}
}

func TestRecoversFromDataLoss(t *testing.T) {
	const total = 512 << 10
	s, resp := run(t, total, 0.05, 0)
	if !s.Done() {
		t.Fatalf("transfer with 5%% loss incomplete: %v (stats %+v)", s, s.Stats)
	}
	if resp.Received != total {
		t.Fatalf("responder got %d/%d", resp.Received, total)
	}
	if s.Stats.Retransmits == 0 {
		t.Fatal("5% loss must force retransmissions")
	}
	if resp.DataDrops == 0 {
		t.Fatal("loss model never fired")
	}
}

func TestRecoversFromHeavyLoss(t *testing.T) {
	const total = 128 << 10
	s, resp := run(t, total, 0.25, 0.05)
	if !s.Done() {
		t.Fatalf("transfer with heavy loss incomplete: %v (stats %+v)", s, s.Stats)
	}
	if resp.Received != total {
		t.Fatalf("responder got %d/%d", resp.Received, total)
	}
	if s.Stats.Timeouts == 0 && s.Stats.FastRetransmits == 0 {
		t.Fatal("heavy loss must trigger recovery machinery")
	}
}

func TestLossReducesGoodput(t *testing.T) {
	clean, _ := run(t, 1<<20, 0, 0)
	lossy, _ := run(t, 1<<20, 0.05, 0)
	if !clean.Done() || !lossy.Done() {
		t.Fatal("transfers incomplete")
	}
	if lossy.Stats.Goodput() >= clean.Stats.Goodput() {
		t.Fatalf("loss should cost goodput: %.3f vs %.3f",
			lossy.Stats.Goodput(), clean.Stats.Goodput())
	}
}

func TestFastRetransmitPreferredOverTimeout(t *testing.T) {
	// With light loss and plenty of data in flight, dupacks should catch
	// most holes before the RTO fires.
	s, _ := run(t, 1<<20, 0.02, 0)
	if !s.Done() {
		t.Fatal("incomplete")
	}
	if s.Stats.FastRetransmits == 0 {
		t.Fatalf("expected fast retransmits: %+v", s.Stats)
	}
	if s.Stats.Timeouts > s.Stats.FastRetransmits {
		t.Fatalf("timeouts (%d) should not dominate fast retransmits (%d)",
			s.Stats.Timeouts, s.Stats.FastRetransmits)
	}
}

func TestResponderReassemblesOutOfOrder(t *testing.T) {
	a := arch.New("kopi", arch.WorldConfig{})
	r := NewResponder(a, 5001, 1)
	seg := func(seq uint32, n int) *packet.Packet {
		p := packet.NewTCP(packet.MAC{}, packet.MAC{}, 1, 2, 4001, 5001, packet.TCPPsh, n)
		p.TCP.Seq = seq
		return p
	}
	// Feed the note path directly (no wire needed for reassembly logic).
	r.note(1400, 2800)
	if r.rcvNxt != 0 {
		t.Fatal("gap must hold rcvNxt")
	}
	r.note(0, 1400)
	if r.rcvNxt != 2800 {
		t.Fatalf("reassembly: rcvNxt=%d", r.rcvNxt)
	}
	r.note(0, 1400) // stale duplicate
	if r.rcvNxt != 2800 || r.Received != 2800 {
		t.Fatalf("duplicate mishandled: %d %d", r.rcvNxt, r.Received)
	}
	_ = seg
}

// TestTSOReducesPerSegmentCost: with the NIC cutting 28KB super-segments to
// wire MSS, the application posts ~20x fewer descriptors for the same
// transfer, the receiver still sees in-order MSS-sized segments, and
// goodput improves (less per-descriptor host work in the transfer's
// critical path).
func TestTSOReducesPerSegmentCost(t *testing.T) {
	run := func(super uint32) (*Stream, *Responder) {
		a := arch.New("kopi", arch.WorldConfig{RingSize: 64, BufBytes: 32768})
		w := a.World()
		resp := NewResponder(a, 5001, 42)
		w.Peer = resp.Recv
		u := w.Kern.AddUser(1, "u")
		proc := w.Kern.Spawn(u.UID, "sender")
		flow := packet.FlowKey{Src: w.HostIP, Dst: w.PeerIP, SrcPort: 4001, DstPort: 5001, Proto: packet.ProtoTCP}
		conn, err := a.Connect(proc, flow)
		if err != nil {
			t.Fatal(err)
		}
		if super > 0 {
			if err := w.NIC.SetTSO(conn.Info.ID, MSS); err != nil {
				t.Fatal(err)
			}
		}
		mux := host.NewMux(a)
		s := New(a, conn, flow, mux, Config{TotalBytes: 2 << 20, SuperSegment: super})
		s.Start()
		w.Eng.RunUntil(sim.Time(5 * sim.Second))
		return s, resp
	}

	plain, plainResp := run(0)
	tso, tsoResp := run(28 * 1024)
	if !plain.Done() || !tso.Done() {
		t.Fatalf("transfers incomplete: plain=%v tso=%v", plain.Done(), tso.Done())
	}
	if plainResp.Received != 2<<20 || tsoResp.Received != 2<<20 {
		t.Fatal("bytes lost")
	}
	if tso.Stats.SegmentsSent*10 > plain.Stats.SegmentsSent {
		t.Fatalf("TSO should cut app segments ~20x: %d vs %d",
			tso.Stats.SegmentsSent, plain.Stats.SegmentsSent)
	}
	if tso.Stats.Goodput() <= plain.Stats.Goodput() {
		t.Fatalf("TSO should improve goodput: %.2f vs %.2f",
			tso.Stats.Goodput(), plain.Stats.Goodput())
	}
}
