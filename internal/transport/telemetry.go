package transport

import "norman/internal/telemetry"

// RegisterStreamMetrics exposes the aggregate behavior of a set of streams on
// a registry. The getter is called at render time, so streams created after
// registration are included as long as the caller's slice is reachable
// through it.
func RegisterStreamMetrics(r *telemetry.Registry, labels telemetry.Labels, streams func() []*Stream) {
	sum := func(pick func(*Stats) uint64) func() uint64 {
		return func() uint64 {
			var total uint64
			for _, s := range streams() {
				total += pick(&s.Stats)
			}
			return total
		}
	}
	r.Counter(telemetry.Desc{Layer: "transport", Name: "segments_sent", Help: "data segments handed to the dataplane (including retransmissions)", Unit: "segments"},
		labels, sum(func(s *Stats) uint64 { return s.SegmentsSent }))
	r.Counter(telemetry.Desc{Layer: "transport", Name: "retransmits", Help: "segments retransmitted for any reason", Unit: "segments"},
		labels, sum(func(s *Stats) uint64 { return s.Retransmits }))
	r.Counter(telemetry.Desc{Layer: "transport", Name: "fast_retransmits", Help: "retransmissions triggered by triple duplicate ACKs", Unit: "segments"},
		labels, sum(func(s *Stats) uint64 { return s.FastRetransmits }))
	r.Counter(telemetry.Desc{Layer: "transport", Name: "timeouts", Help: "RTO expiries", Unit: "timeouts"},
		labels, sum(func(s *Stats) uint64 { return s.Timeouts }))
	r.Counter(telemetry.Desc{Layer: "transport", Name: "acked_bytes", Help: "application bytes cumulatively acknowledged", Unit: "bytes"},
		labels, sum(func(s *Stats) uint64 { return s.AckedBytes }))
	r.Counter(telemetry.Desc{Layer: "transport", Name: "shed_halvings", Help: "pressure-induced window halvings applied on backpressure signals from the overload governor", Unit: "halvings"},
		labels, sum(func(s *Stats) uint64 { return s.Shed }))
	r.Gauge(telemetry.Desc{Layer: "transport", Name: "streams_aborted", Help: "streams that gave up (MaxRetries or Deadline) instead of completing", Unit: "streams"},
		labels, func() float64 {
			var n float64
			for _, s := range streams() {
				if s.Aborted() {
					n++
				}
			}
			return n
		})
	r.Gauge(telemetry.Desc{Layer: "transport", Name: "streams", Help: "streams registered under these labels", Unit: "streams"},
		labels, func() float64 { return float64(len(streams())) })
}

// RegisterResponderMetrics exposes the peer endpoint's counters on a
// registry.
func (r *Responder) RegisterResponderMetrics(reg *telemetry.Registry, labels telemetry.Labels) {
	reg.Counter(telemetry.Desc{Layer: "transport", Name: "peer_received_bytes", Help: "in-order bytes delivered at the peer", Unit: "bytes"},
		labels, func() uint64 { return r.Received })
	reg.Counter(telemetry.Desc{Layer: "transport", Name: "peer_acks_sent", Help: "cumulative ACKs the peer returned", Unit: "acks"},
		labels, func() uint64 { return r.AcksSent })
	reg.Counter(telemetry.Desc{Layer: "transport", Name: "peer_data_drops", Help: "data segments dropped by the peer-side loss model", Unit: "segments"},
		labels, func() uint64 { return r.DataDrops })
	reg.Counter(telemetry.Desc{Layer: "transport", Name: "peer_ack_drops", Help: "ACKs dropped by the peer-side loss model", Unit: "acks"},
		labels, func() uint64 { return r.AckDrops })
}
