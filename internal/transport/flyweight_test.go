package transport

import (
	"testing"

	"norman/internal/mem"
	"norman/internal/sim"
)

// TestFlyweightRx covers the flyweight receive state machine: in-order
// advance, forward gap acceptance, duplicate drop, closed-state drop.
func TestFlyweightRx(t *testing.T) {
	s := mem.NewConnSlab(4, 0)
	FlyweightOpen(s, 1, 9, 2)
	if s.Tenant[1] != 2 {
		t.Fatal("open did not record the tenant")
	}

	if !FlyweightRx(s, 1, 0, 100, sim.Time(10)) {
		t.Fatal("in-order packet refused")
	}
	if !FlyweightRx(s, 1, 1, 100, sim.Time(20)) {
		t.Fatal("in-order packet refused")
	}
	// Gap: seq 5 after 2 expected — accepted forward, counted out-of-order.
	if !FlyweightRx(s, 1, 5, 100, sim.Time(30)) {
		t.Fatal("forward gap refused")
	}
	if s.SeqNext[1] != 6 || s.OooPkts[1] != 1 {
		t.Fatalf("after gap: next=%d ooo=%d", s.SeqNext[1], s.OooPkts[1])
	}
	// Duplicate: stale sequence dropped and counted.
	if FlyweightRx(s, 1, 3, 100, sim.Time(40)) {
		t.Fatal("duplicate accepted")
	}
	if s.RxPkts[1] != 3 || s.RxBytes[1] != 300 || s.OooPkts[1] != 2 {
		t.Fatalf("counters: pkts=%d bytes=%d ooo=%d", s.RxPkts[1], s.RxBytes[1], s.OooPkts[1])
	}
	if s.LastAt[1] != sim.Time(30) {
		t.Fatalf("LastAt = %v", s.LastAt[1])
	}
	// Closed connection receives nothing.
	if FlyweightRx(s, 2, 0, 100, sim.Time(50)) {
		t.Fatal("closed connection accepted a packet")
	}
}

// TestFlyweightTx checks sequence sourcing.
func TestFlyweightTx(t *testing.T) {
	s := mem.NewConnSlab(2, 0)
	FlyweightOpen(s, 0, 0, 0)
	for want := uint32(0); want < 3; want++ {
		if got := FlyweightTx(s, 0); got != want {
			t.Fatalf("tx seq = %d, want %d", got, want)
		}
	}
	if s.TxPkts[0] != 3 {
		t.Fatalf("TxPkts = %d", s.TxPkts[0])
	}
}

// TestFlyweightZeroAlloc pins the receive hot path at zero allocations.
func TestFlyweightZeroAlloc(t *testing.T) {
	s := mem.NewConnSlab(8, 0)
	FlyweightOpen(s, 0, 0, 0)
	seq := uint32(0)
	if n := testing.AllocsPerRun(1000, func() {
		FlyweightRx(s, 0, seq, 256, sim.Time(seq))
		seq++
	}); n != 0 {
		t.Fatalf("FlyweightRx allocates %.1f/op", n)
	}
}
