package transport

import (
	"norman/internal/mem"
	"norman/internal/sim"
)

// Flyweight transport: the per-connection protocol state of the sharded
// scale path lives in a mem.ConnSlab — dense arrays, ≤ 64 hot bytes per
// connection — instead of a Stream object per connection. The operations
// below are the whole protocol surface the 100k–1M-connection worlds need
// (sequence tracking, duplicate/gap accounting, delivery counters), written
// as free functions over the slab so the receive path stays allocation-free
// and a record never leaves its RSS bucket's shard.

// FlyweightOpen admits a connection into a bucket for a tenant and resets
// its record.
func FlyweightOpen(s *mem.ConnSlab, id int, bucket uint16, tenant uint32) {
	s.Open(id, bucket, tenant)
}

// FlyweightTx returns the connection's next send sequence and advances it.
func FlyweightTx(s *mem.ConnSlab, id int) uint32 {
	seq := s.TxPkts[id]
	s.TxPkts[id]++
	return seq
}

// FlyweightRx advances a connection's receive state for one delivered
// packet and reports whether the payload counts as goodput. In-order
// arrivals advance SeqNext; a gap is accepted forward (loss already showed
// up as a ring reject elsewhere — the flyweight records it and resumes at
// the new head); a stale sequence is a duplicate and is dropped. Array
// reads and writes only: no allocation on any path.
func FlyweightRx(s *mem.ConnSlab, id int, seq uint32, payload int, at sim.Time) bool {
	if s.State[id] != mem.ConnOpen {
		return false
	}
	switch next := s.SeqNext[id]; {
	case seq == next:
		s.SeqNext[id] = seq + 1
	case seq > next:
		s.OooPkts[id]++
		s.SeqNext[id] = seq + 1
	default:
		s.OooPkts[id]++
		return false
	}
	s.RxPkts[id]++
	s.RxBytes[id] += uint64(payload)
	s.LastAt[id] = at
	return true
}
