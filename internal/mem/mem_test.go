package mem

import (
	"errors"
	"testing"
	"testing/quick"

	"norman/internal/packet"
)

func TestRingFIFO(t *testing.T) {
	r := NewRing(4, 0x1000)
	for i := 0; i < 4; i++ {
		p := packet.NewUDP(packet.MAC{}, packet.MAC{}, 1, 2, uint16(i), 9, 0)
		if err := r.Push(Desc{Pkt: p}); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if !r.Full() {
		t.Fatal("ring should be full")
	}
	if err := r.Push(Desc{}); !errors.Is(err, ErrRingFull) {
		t.Fatalf("push to full: %v", err)
	}
	for i := 0; i < 4; i++ {
		d, err := r.Pop()
		if err != nil {
			t.Fatalf("pop %d: %v", i, err)
		}
		if d.Pkt.UDP.SrcPort != uint16(i) {
			t.Fatalf("FIFO violated: got %d want %d", d.Pkt.UDP.SrcPort, i)
		}
	}
	if _, err := r.Pop(); !errors.Is(err, ErrRingEmpty) {
		t.Fatalf("pop empty: %v", err)
	}
	p, c, drops := r.Counters()
	if p != 4 || c != 4 || drops != 1 {
		t.Fatalf("counters: %d %d %d", p, c, drops)
	}
}

func TestRingWatermarks(t *testing.T) {
	r := NewRing(8, 0x1000)

	// Unmonitored ring: never above high, always below low.
	if r.AboveHigh() || !r.BelowLow() {
		t.Fatal("zero watermarks must read as unmonitored")
	}

	r.SetWatermarks(6, 2)
	for i := 0; i < 5; i++ {
		if err := r.Push(Desc{}); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if r.AboveHigh() {
		t.Fatalf("5/8 occupancy below high=6 must not trip: len=%d", r.Len())
	}
	if r.BelowLow() {
		t.Fatalf("5/8 occupancy above low=2 must not read calm: len=%d", r.Len())
	}
	_ = r.Push(Desc{})
	if !r.AboveHigh() {
		t.Fatalf("6/8 occupancy at high=6 must trip: len=%d", r.Len())
	}
	if got := r.OccupancyFrac(); got != 0.75 {
		t.Fatalf("occupancy fraction: got %v want 0.75", got)
	}
	for r.Len() > 2 {
		if _, err := r.Pop(); err != nil {
			t.Fatal(err)
		}
	}
	if r.AboveHigh() || !r.BelowLow() {
		t.Fatalf("draining to low=2 must clear: len=%d", r.Len())
	}

	// Clamping: high beyond capacity clamps to Cap, low clamps to high.
	r.SetWatermarks(100, 50)
	if hi, lo := r.Watermarks(); hi != 8 || lo != 8 {
		t.Fatalf("clamped watermarks: got %d/%d want 8/8", hi, lo)
	}
}

func TestRingOverflowRejects(t *testing.T) {
	r := NewRing(2, 0x1000)
	_ = r.Push(Desc{})
	_ = r.Push(Desc{})
	for i := 0; i < 3; i++ {
		if err := r.Push(Desc{}); !errors.Is(err, ErrRingFull) {
			t.Fatalf("overflow push %d: %v", i, err)
		}
	}
	if got := r.OverflowRejects(); got != 3 {
		t.Fatalf("overflow rejects: got %d want 3", got)
	}
	_, _, dropped := r.Counters()
	if dropped != r.OverflowRejects() {
		t.Fatalf("rejects must equal dropped counter: %d vs %d", r.OverflowRejects(), dropped)
	}
}

func TestRingWraparoundAddresses(t *testing.T) {
	r := NewRing(4, 0x1000)
	if r.SlotAddr(0) != 0x1000 || r.SlotAddr(5) != 0x1000+1*64 {
		t.Fatalf("slot addressing: %x %x", r.SlotAddr(0), r.SlotAddr(5))
	}
	if r.HeadAddr() != 0x1000 {
		t.Fatalf("head addr %x", r.HeadAddr())
	}
	_ = r.Push(Desc{})
	if r.HeadAddr() != 0x1040 || r.TailAddr() != 0x1000 {
		t.Fatalf("after push: head %x tail %x", r.HeadAddr(), r.TailAddr())
	}
}

func TestRingCapacityValidation(t *testing.T) {
	for _, bad := range []int{0, -1, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("capacity %d should panic", bad)
				}
			}()
			NewRing(bad, 0)
		}()
	}
}

// Property: after any sequence of pushes and pops, Len() equals
// pushes-accepted minus pops-succeeded, and never exceeds capacity.
func TestRingInvariantsQuick(t *testing.T) {
	f := func(ops []bool) bool {
		r := NewRing(8, 0)
		queued := 0
		for _, push := range ops {
			if push {
				if err := r.Push(Desc{}); err == nil {
					queued++
				}
			} else {
				if _, err := r.Pop(); err == nil {
					queued--
				}
			}
			if r.Len() != queued || queued < 0 || queued > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocAlignmentAndDisjointness(t *testing.T) {
	a := NewAlloc()
	r1 := a.Take(100, 64)
	r2 := a.Take(100, 64)
	if r1%64 != 0 || r2%64 != 0 {
		t.Fatalf("alignment: %x %x", r1, r2)
	}
	if r2 < r1+100 {
		t.Fatalf("overlap: %x %x", r1, r2)
	}
	r3 := a.Take(1, 4096)
	if r3%4096 != 0 {
		t.Fatalf("page alignment: %x", r3)
	}
}

func TestNotifyQueueOverflow(t *testing.T) {
	q := NewNotifyQueue(2)
	ok1 := q.Push(Notification{ConnID: 1, Kind: NotifyRxReady, At: 10})
	ok2 := q.Push(Notification{ConnID: 2, Kind: NotifyTxDrained, At: 20})
	ok3 := q.Push(Notification{ConnID: 3, At: 30})
	if !ok1 || !ok2 || ok3 {
		t.Fatalf("push results: %v %v %v", ok1, ok2, ok3)
	}
	if !q.Overflowed() {
		t.Fatal("overflow must be recorded")
	}
	n, ok := q.Pop()
	if !ok || n.ConnID != 1 || n.Kind != NotifyRxReady {
		t.Fatalf("pop: %+v %v", n, ok)
	}
	if q.Len() != 1 {
		t.Fatalf("len = %d", q.Len())
	}
	pushed, dropped := q.Counters()
	if pushed != 2 || dropped != 1 {
		t.Fatalf("counters: %d %d", pushed, dropped)
	}
}

func TestNotifyKindString(t *testing.T) {
	if NotifyRxReady.String() != "rx-ready" || NotifyTxDrained.String() != "tx-drained" {
		t.Fatal("kind strings")
	}
}
