package mem

import "norman/internal/telemetry"

// RegisterMetrics exposes a descriptor ring's producer/consumer counters and
// instantaneous occupancy on a registry. name distinguishes rings sharing a
// label set (e.g. "tx" vs "rx") and becomes a "ring" label.
func (r *Ring) RegisterMetrics(reg *telemetry.Registry, labels telemetry.Labels, name string) {
	l := telemetry.Labels{"ring": name}
	for k, v := range labels {
		l[k] = v
	}
	reg.Counter(telemetry.Desc{Layer: "mem", Name: "ring_produced", Help: "descriptors pushed into the ring", Unit: "descriptors"},
		l, func() uint64 { produced, _, _ := r.Counters(); return produced })
	reg.Counter(telemetry.Desc{Layer: "mem", Name: "ring_consumed", Help: "descriptors popped from the ring", Unit: "descriptors"},
		l, func() uint64 { _, consumed, _ := r.Counters(); return consumed })
	reg.Counter(telemetry.Desc{Layer: "mem", Name: "ring_dropped", Help: "push attempts rejected because the ring was full", Unit: "descriptors"},
		l, func() uint64 { _, _, dropped := r.Counters(); return dropped })
	reg.Counter(telemetry.Desc{Layer: "mem", Name: "ring_overflow_rejects", Help: "enqueue attempts refused at the producer because the ring was full (countable rejection, not wire loss)", Unit: "descriptors"},
		l, func() uint64 { return r.OverflowRejects() })
	reg.Gauge(telemetry.Desc{Layer: "mem", Name: "ring_depth", Help: "descriptors currently in the ring", Unit: "descriptors"},
		l, func() float64 { return float64(r.Len()) })
	reg.Gauge(telemetry.Desc{Layer: "mem", Name: "ring_occupancy_frac", Help: "instantaneous ring occupancy as a fraction of capacity", Unit: "fraction"},
		l, func() float64 { return r.OccupancyFrac() })
}

// RegisterMetrics exposes a notification queue's counters on a registry.
func (q *NotifyQueue) RegisterMetrics(reg *telemetry.Registry, labels telemetry.Labels) {
	reg.Counter(telemetry.Desc{Layer: "mem", Name: "notify_pushed", Help: "notifications appended to the queue", Unit: "notifications"},
		labels, func() uint64 { pushed, _ := q.Counters(); return pushed })
	reg.Counter(telemetry.Desc{Layer: "mem", Name: "notify_dropped", Help: "notifications dropped because the queue was full", Unit: "notifications"},
		labels, func() uint64 { _, dropped := q.Counters(); return dropped })
}
