package mem

import "norman/internal/sim"

// PktRef is the value-typed descriptor of the sharded scale path: where the
// classic per-connection Ring carries *packet.Packet, the per-bucket burst
// ring carries only what the flyweight dataplane needs — connection,
// sequence, length, timestamp — so pushing and draining a million packets
// allocates nothing and descriptors stay two to a cache line.
type PktRef struct {
	Conn uint32   // dense connID into the bucket's ConnSlab
	Seq  uint32   // transport sequence number
	Len  uint16   // payload bytes
	At   sim.Time // produced (arrival at the ring)
}

// burstDescSize is the simulated bytes per descriptor: 32 B, the size class
// of real NIC receive descriptors, two per cache line.
const burstDescSize = 32

// BurstRing is the per-RSS-bucket SPSC descriptor ring drained in bursts by
// the batched receive path (one engine event consumes up to a burst of
// descriptors, not one packet each). Same head/tail discipline and
// simulated-address accounting as Ring; capacity must be a power of two.
type BurstRing struct {
	entries []PktRef
	mask    uint64
	head    uint64
	tail    uint64

	baseAddr uint64

	produced uint64
	consumed uint64
	dropped  uint64
}

// NewBurstRing creates a burst ring with the given power-of-two capacity,
// mapped at the given simulated physical address.
func NewBurstRing(capacity int, baseAddr uint64) *BurstRing {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		panic("mem: burst ring capacity must be a positive power of two")
	}
	return &BurstRing{
		entries:  make([]PktRef, capacity),
		mask:     uint64(capacity - 1),
		baseAddr: baseAddr,
	}
}

// Cap returns the ring capacity in descriptors.
func (r *BurstRing) Cap() int { return len(r.entries) }

// Len returns the number of occupied descriptors.
func (r *BurstRing) Len() int { return int(r.head - r.tail) }

// Empty reports whether no descriptors are occupied.
func (r *BurstRing) Empty() bool { return r.head == r.tail }

// Full reports whether no descriptors are free.
func (r *BurstRing) Full() bool { return r.head-r.tail == uint64(len(r.entries)) }

// Push enqueues one descriptor; a full ring counts the reject and returns
// false (the caller decides whether that is a drop or backpressure).
func (r *BurstRing) Push(d PktRef) bool {
	if r.Full() {
		r.dropped++
		return false
	}
	r.entries[r.head&r.mask] = d
	r.head++
	r.produced++
	return true
}

// PushBurst enqueues as many of src as fit and returns how many it took;
// refused descriptors are counted as drops. The bulk mirror of PopBurst —
// one capacity check and at most two copies per burst.
func (r *BurstRing) PushBurst(src []PktRef) int {
	n := len(r.entries) - r.Len()
	if n > len(src) {
		n = len(src)
	}
	if short := len(src) - n; short > 0 {
		r.dropped += uint64(short)
	}
	at := int(r.head & r.mask)
	m := copy(r.entries[at:], src[:n])
	copy(r.entries, src[m:n])
	r.head += uint64(n)
	r.produced += uint64(n)
	return n
}

// PopBurst dequeues up to len(dst) descriptors into dst and returns how
// many it moved — the batched drain primitive: one call, one burst, no
// allocation. Copies at most two contiguous segments.
func (r *BurstRing) PopBurst(dst []PktRef) int {
	n := r.Len()
	if n > len(dst) {
		n = len(dst)
	}
	at := int(r.tail & r.mask)
	m := copy(dst[:n], r.entries[at:])
	copy(dst[m:n], r.entries)
	r.tail += uint64(n)
	r.consumed += uint64(n)
	return n
}

// SlotAddr returns the simulated physical address of the descriptor slot a
// logical index occupies, for DDIO hit/miss charging against the ring's
// real footprint.
func (r *BurstRing) SlotAddr(index uint64) uint64 {
	return r.baseAddr + (index&r.mask)*burstDescSize
}

// Tail returns the consumer counter (monotonic, unmasked).
func (r *BurstRing) Tail() uint64 { return r.tail }

// FootprintBytes returns the simulated memory the descriptor array pins.
func (r *BurstRing) FootprintBytes() int { return len(r.entries) * burstDescSize }

// Counters returns cumulative produced/consumed/dropped descriptor counts.
func (r *BurstRing) Counters() (produced, consumed, dropped uint64) {
	return r.produced, r.consumed, r.dropped
}

// OverflowRejects counts refused enqueues (counted drops, never silent).
func (r *BurstRing) OverflowRejects() uint64 { return r.dropped }

// OccupancyFrac returns occupancy as a fraction of capacity in [0,1].
func (r *BurstRing) OccupancyFrac() float64 {
	return float64(r.Len()) / float64(len(r.entries))
}
