package mem

import (
	"fmt"
	"unsafe"

	"norman/internal/sim"
)

// ConnSlab holds the flyweight per-connection records of the sharded scale
// path (DESIGN.md §8): structure-of-arrays state indexed by dense connID,
// replacing the per-connection heap objects (nic.Conn, two rings, buffers)
// that make 1M-connection worlds infeasible. Opening a connection is an
// array write, not an allocation, and the hot state per connection is a
// handful of scalars — ≤ 64 bytes, asserted by HotBytesPerConn — so a
// million connections cost tens of megabytes and zero allocator pressure.
//
// Each record is addressed at a 64-byte stride from the slab's simulated
// physical base, one cache line per connection, so the cache model can
// charge slab touches against the real footprint.
type ConnSlab struct {
	// Hot per-connection arrays. Kept exported: the dataplane indexes them
	// directly (s.RxBytes[id] += n), the same zero-indirection access a
	// flyweight record in hardware SRAM would get.
	RxBytes []uint64   // payload bytes delivered in order
	LastAt  []sim.Time // virtual time of the last delivery
	RxPkts  []uint32   // packets delivered
	TxPkts  []uint32   // packets sourced (next send sequence)
	SeqNext []uint32   // next expected receive sequence
	OooPkts []uint32   // out-of-order or duplicate arrivals observed
	Tenant  []uint32   // owning tenant, for isolation accounting (0 = unattributed)
	Bucket  []uint16   // RSS bucket the connection hashes to
	State   []uint8    // ConnClosed / ConnOpen

	baseAddr uint64
}

// Connection states in ConnSlab.State.
const (
	ConnClosed uint8 = iota
	ConnOpen
)

// connStride is the simulated address stride per record: one cache line.
const connStride = 64

// NewConnSlab returns a slab with capacity for n connections, mapped at the
// given simulated physical base address.
func NewConnSlab(n int, baseAddr uint64) *ConnSlab {
	if n <= 0 {
		panic(fmt.Sprintf("mem: conn slab capacity %d", n))
	}
	return &ConnSlab{
		RxBytes:  make([]uint64, n),
		LastAt:   make([]sim.Time, n),
		RxPkts:   make([]uint32, n),
		TxPkts:   make([]uint32, n),
		SeqNext:  make([]uint32, n),
		OooPkts:  make([]uint32, n),
		Tenant:   make([]uint32, n),
		Bucket:   make([]uint16, n),
		State:    make([]uint8, n),
		baseAddr: baseAddr,
	}
}

// Len returns the slab capacity in connections.
func (s *ConnSlab) Len() int { return len(s.State) }

// HotBytesPerConn returns the actual hot-state bytes each connection
// occupies across the arrays — the number the ≤ 64 B flyweight budget is
// enforced against.
func (s *ConnSlab) HotBytesPerConn() int {
	return int(unsafe.Sizeof(s.RxBytes[0]) + unsafe.Sizeof(s.LastAt[0]) +
		unsafe.Sizeof(s.RxPkts[0]) + unsafe.Sizeof(s.TxPkts[0]) +
		unsafe.Sizeof(s.SeqNext[0]) + unsafe.Sizeof(s.OooPkts[0]) +
		unsafe.Sizeof(s.Tenant[0]) + unsafe.Sizeof(s.Bucket[0]) +
		unsafe.Sizeof(s.State[0]))
}

// AddrOf returns the simulated physical address of a connection's record
// (line-aligned), for cache-model charging.
func (s *ConnSlab) AddrOf(id int) uint64 { return s.baseAddr + uint64(id)*connStride }

// FootprintBytes returns the simulated memory the slab occupies at its
// one-line-per-connection stride.
func (s *ConnSlab) FootprintBytes() int { return s.Len() * connStride }

// Open marks a connection live in the given RSS bucket for the given
// tenant, resetting its state. It is an array write — no allocation.
func (s *ConnSlab) Open(id int, bucket uint16, tenant uint32) {
	s.RxBytes[id] = 0
	s.LastAt[id] = 0
	s.RxPkts[id] = 0
	s.TxPkts[id] = 0
	s.SeqNext[id] = 0
	s.OooPkts[id] = 0
	s.Tenant[id] = tenant
	s.Bucket[id] = bucket
	s.State[id] = ConnOpen
}
