package mem

import (
	"norman/internal/sim"
)

// NotifyKind distinguishes the two notification types of §4.3: packets were
// added to an RX queue (unblocks receive) or a TX queue drained below its
// threshold (unblocks send).
type NotifyKind uint8

// Notification kinds.
const (
	NotifyRxReady NotifyKind = iota
	NotifyTxDrained
)

func (k NotifyKind) String() string {
	switch k {
	case NotifyRxReady:
		return "rx-ready"
	case NotifyTxDrained:
		return "tx-drained"
	default:
		return "unknown"
	}
}

// Notification is one entry in a process's shared notification queue: the
// NIC appends these when a connection is configured for notify mode, and the
// kernel control plane consumes them to wake blocked threads.
type Notification struct {
	ConnID uint64
	Kind   NotifyKind
	At     sim.Time
}

// NotifyQueue is a bounded queue shared between the NIC (producer), and the
// owning process and the kernel (consumers). One exists per process.
type NotifyQueue struct {
	entries  []Notification
	capacity int
	dropped  uint64
	pushed   uint64
}

// NewNotifyQueue creates a queue holding at most capacity entries.
func NewNotifyQueue(capacity int) *NotifyQueue {
	if capacity <= 0 {
		capacity = 1024
	}
	return &NotifyQueue{capacity: capacity}
}

// Push appends a notification; when full the notification is dropped and
// counted (the consumer must rescan rings after an overflow, as real
// notification schemes do).
func (q *NotifyQueue) Push(n Notification) bool {
	if len(q.entries) >= q.capacity {
		q.dropped++
		return false
	}
	q.entries = append(q.entries, n)
	q.pushed++
	return true
}

// Pop removes and returns the oldest notification.
func (q *NotifyQueue) Pop() (Notification, bool) {
	if len(q.entries) == 0 {
		return Notification{}, false
	}
	n := q.entries[0]
	q.entries = q.entries[1:]
	return n, true
}

// Len returns the number of queued notifications.
func (q *NotifyQueue) Len() int { return len(q.entries) }

// Overflowed reports whether any notification has been dropped.
func (q *NotifyQueue) Overflowed() bool { return q.dropped > 0 }

// Counters returns cumulative pushed and dropped counts.
func (q *NotifyQueue) Counters() (pushed, dropped uint64) { return q.pushed, q.dropped }
