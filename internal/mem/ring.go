// Package mem provides the host-memory substrate shared between
// applications and the NIC: pinned per-connection descriptor rings addressed
// by head/tail "MMIO" registers (§4.3 of the paper), a simulated physical
// address allocator so the cache model can track ring working sets, and the
// shared notification queues that restore blocking I/O under kernel bypass.
package mem

import (
	"errors"

	"norman/internal/packet"
	"norman/internal/sim"
)

// Ring errors.
var (
	ErrRingFull  = errors.New("mem: ring full")
	ErrRingEmpty = errors.New("mem: ring empty")
)

// Desc is one ring descriptor: a packet and its produced timestamp.
type Desc struct {
	Pkt      *packet.Packet
	Produced sim.Time
}

// Ring is a single-producer single-consumer descriptor ring, the structure
// an application shares with the NIC for each connection. Capacity must be a
// power of two. Head and tail mimic the MMIO-visible pointers: head is the
// producer index, tail the consumer index.
type Ring struct {
	entries []Desc
	mask    uint64
	head    uint64 // next slot to produce into
	tail    uint64 // next slot to consume from

	baseAddr uint64 // simulated physical address of the descriptor array
	descSize int    // bytes per descriptor for footprint accounting

	// Occupancy watermarks in descriptors (0 = unset). The overload
	// watchdog reads AboveHigh/BelowLow to drive backpressure with
	// hysteresis: pressure asserts when occupancy crosses high and clears
	// only once it falls back under low.
	hiWater int
	loWater int

	produced uint64
	consumed uint64
	dropped  uint64
}

// NewRing creates a ring with the given power-of-two capacity, mapped at the
// given simulated physical address.
func NewRing(capacity int, baseAddr uint64) *Ring {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		panic("mem: ring capacity must be a positive power of two")
	}
	return &Ring{
		entries:  make([]Desc, capacity),
		mask:     uint64(capacity - 1),
		baseAddr: baseAddr,
		descSize: 64, // one cache line per descriptor, as hardware rings use
	}
}

// Cap returns the ring capacity in descriptors.
func (r *Ring) Cap() int { return len(r.entries) }

// Len returns the number of occupied descriptors.
func (r *Ring) Len() int { return int(r.head - r.tail) }

// Full reports whether the ring has no free descriptors.
func (r *Ring) Full() bool { return r.head-r.tail == uint64(len(r.entries)) }

// Empty reports whether the ring has no occupied descriptors.
func (r *Ring) Empty() bool { return r.head == r.tail }

// Push enqueues a descriptor, or returns ErrRingFull (the caller decides
// whether that is a drop or backpressure).
func (r *Ring) Push(d Desc) error {
	if r.Full() {
		r.dropped++
		return ErrRingFull
	}
	r.entries[r.head&r.mask] = d
	r.head++
	r.produced++
	return nil
}

// Pop dequeues the oldest descriptor.
func (r *Ring) Pop() (Desc, error) {
	if r.Empty() {
		return Desc{}, ErrRingEmpty
	}
	d := r.entries[r.tail&r.mask]
	r.entries[r.tail&r.mask] = Desc{} // release reference
	r.tail++
	r.consumed++
	return d, nil
}

// Peek returns the oldest descriptor without consuming it.
func (r *Ring) Peek() (Desc, error) {
	if r.Empty() {
		return Desc{}, ErrRingEmpty
	}
	return r.entries[r.tail&r.mask], nil
}

// SlotAddr returns the simulated physical address of the descriptor slot the
// given logical index occupies; the cache model uses it to charge hits and
// misses against the ring's real footprint.
func (r *Ring) SlotAddr(index uint64) uint64 {
	return r.baseAddr + (index&r.mask)*uint64(r.descSize)
}

// Head returns the producer counter (monotonic, unmasked).
func (r *Ring) Head() uint64 { return r.head }

// Tail returns the consumer counter (monotonic, unmasked).
func (r *Ring) Tail() uint64 { return r.tail }

// HeadAddr returns the address of the next slot to be produced into.
func (r *Ring) HeadAddr() uint64 { return r.SlotAddr(r.head) }

// TailAddr returns the address of the next slot to be consumed from.
func (r *Ring) TailAddr() uint64 { return r.SlotAddr(r.tail) }

// FootprintBytes returns the pinned memory the ring occupies.
func (r *Ring) FootprintBytes() int { return len(r.entries) * r.descSize }

// Counters returns cumulative produced/consumed/dropped descriptor counts.
func (r *Ring) Counters() (produced, consumed, dropped uint64) {
	return r.produced, r.consumed, r.dropped
}

// OverflowRejects counts enqueue attempts refused because the ring was full
// — a producer-visible rejection, as opposed to wire loss, which never
// reaches the ring at all. Overload accounting treats these as counted
// drops, never silent ones.
func (r *Ring) OverflowRejects() uint64 { return r.dropped }

// SetWatermarks configures the high/low occupancy watermarks in
// descriptors. Values are clamped into [0, Cap] and low is clamped to high.
// Zero values leave the ring unmonitored (AboveHigh always false, BelowLow
// always true).
func (r *Ring) SetWatermarks(high, low int) {
	c := len(r.entries)
	if high < 0 {
		high = 0
	}
	if high > c {
		high = c
	}
	if low < 0 {
		low = 0
	}
	if low > high {
		low = high
	}
	r.hiWater, r.loWater = high, low
}

// Watermarks returns the configured high/low occupancy watermarks.
func (r *Ring) Watermarks() (high, low int) { return r.hiWater, r.loWater }

// AboveHigh reports whether occupancy has reached the high watermark; false
// when no watermark is set.
func (r *Ring) AboveHigh() bool { return r.hiWater > 0 && r.Len() >= r.hiWater }

// BelowLow reports whether occupancy is at or under the low watermark (the
// hysteresis clear condition); true when no watermark is set.
func (r *Ring) BelowLow() bool { return r.hiWater == 0 || r.Len() <= r.loWater }

// OccupancyFrac returns occupancy as a fraction of capacity in [0,1].
func (r *Ring) OccupancyFrac() float64 {
	return float64(r.Len()) / float64(len(r.entries))
}

// Alloc is a bump allocator for simulated physical addresses. It hands out
// aligned, non-overlapping regions so cache-set conflicts between rings are
// realistic rather than accidental aliasing.
type Alloc struct {
	next uint64
}

// NewAlloc returns an allocator starting at a non-zero base.
func NewAlloc() *Alloc { return &Alloc{next: 1 << 20} }

// Take reserves n bytes aligned to align (a power of two) and returns the
// base address.
func (a *Alloc) Take(n int, align int) uint64 {
	if align <= 0 {
		align = 64
	}
	mask := uint64(align - 1)
	a.next = (a.next + mask) &^ mask
	addr := a.next
	a.next += uint64(n)
	return addr
}

// Used returns the total bytes reserved so far.
func (a *Alloc) Used() uint64 { return a.next }
