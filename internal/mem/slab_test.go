package mem

import (
	"testing"

	"norman/internal/sim"
)

// TestConnSlabHotBudget enforces the flyweight contract: ≤ 64 hot bytes per
// connection, line-strided simulated addresses, and allocation-free opens.
func TestConnSlabHotBudget(t *testing.T) {
	s := NewConnSlab(1024, 1<<30)
	if hot := s.HotBytesPerConn(); hot > 64 {
		t.Fatalf("hot state %d B/conn exceeds the 64 B flyweight budget", hot)
	}
	if s.Len() != 1024 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.AddrOf(3)-s.AddrOf(2) != 64 {
		t.Fatalf("record stride %d, want one line", s.AddrOf(3)-s.AddrOf(2))
	}
	if s.FootprintBytes() != 1024*64 {
		t.Fatalf("footprint %d", s.FootprintBytes())
	}
	s.Open(7, 3, 42)
	if s.State[7] != ConnOpen || s.Bucket[7] != 3 || s.Tenant[7] != 42 {
		t.Fatal("Open did not mark the record")
	}
	if n := testing.AllocsPerRun(100, func() { s.Open(7, 3, 42) }); n != 0 {
		t.Fatalf("Open allocates %.1f/op", n)
	}
}

// TestBurstRing exercises push, wrap, overflow accounting and the batched
// drain primitive.
func TestBurstRing(t *testing.T) {
	r := NewBurstRing(8, 4096)
	for i := 0; i < 8; i++ {
		if !r.Push(PktRef{Conn: uint32(i), Seq: uint32(i), Len: 100, At: sim.Time(i)}) {
			t.Fatalf("push %d refused", i)
		}
	}
	if !r.Full() || r.Len() != 8 {
		t.Fatalf("len = %d full=%v", r.Len(), r.Full())
	}
	if r.Push(PktRef{}) {
		t.Fatal("push into a full ring succeeded")
	}
	if r.OverflowRejects() != 1 {
		t.Fatalf("rejects = %d", r.OverflowRejects())
	}

	burst := make([]PktRef, 5)
	if n := r.PopBurst(burst); n != 5 {
		t.Fatalf("PopBurst = %d", n)
	}
	for i, d := range burst {
		if d.Conn != uint32(i) {
			t.Fatalf("burst[%d].Conn = %d", i, d.Conn)
		}
	}
	// Wrap: push past the array end, then drain the remainder.
	for i := 8; i < 12; i++ {
		if !r.Push(PktRef{Conn: uint32(i)}) {
			t.Fatalf("push %d refused after drain", i)
		}
	}
	big := make([]PktRef, 16)
	if n := r.PopBurst(big); n != 7 {
		t.Fatalf("PopBurst after wrap = %d, want 7", n)
	}
	if big[0].Conn != 5 || big[6].Conn != 11 {
		t.Fatalf("wrap order: first=%d last=%d", big[0].Conn, big[6].Conn)
	}
	produced, consumed, dropped := r.Counters()
	if produced != 12 || consumed != 12 || dropped != 1 {
		t.Fatalf("counters = %d/%d/%d", produced, consumed, dropped)
	}
	if r.PopBurst(big) != 0 || !r.Empty() {
		t.Fatal("ring should be empty")
	}
	// Descriptor addresses: 32 B stride, masked into the array footprint.
	if r.SlotAddr(1)-r.SlotAddr(0) != 32 {
		t.Fatalf("desc stride %d", r.SlotAddr(1)-r.SlotAddr(0))
	}
	if r.SlotAddr(8) != r.SlotAddr(0) {
		t.Fatal("slot addresses must wrap with the ring")
	}
}

// TestBurstRingPushBurst exercises the bulk producer mirror: partial
// acceptance at the capacity edge, wrap-around, and drop accounting.
func TestBurstRingPushBurst(t *testing.T) {
	r := NewBurstRing(8, 0)
	src := make([]PktRef, 6)
	for i := range src {
		src[i].Conn = uint32(i)
	}
	if n := r.PushBurst(src); n != 6 {
		t.Fatalf("PushBurst = %d", n)
	}
	// Only 2 slots free: bulk push accepts 2, drops 4.
	if n := r.PushBurst(src); n != 2 {
		t.Fatalf("PushBurst at edge = %d, want 2", n)
	}
	if r.OverflowRejects() != 4 {
		t.Fatalf("rejects = %d, want 4", r.OverflowRejects())
	}
	got := make([]PktRef, 8)
	if n := r.PopBurst(got); n != 8 {
		t.Fatalf("PopBurst = %d", n)
	}
	want := []uint32{0, 1, 2, 3, 4, 5, 0, 1}
	for i, w := range want {
		if got[i].Conn != w {
			t.Fatalf("got[%d].Conn = %d, want %d", i, got[i].Conn, w)
		}
	}
	// Wrapped bulk push: tail is mid-array now, so this burst must split.
	if n := r.PushBurst(src); n != 6 {
		t.Fatalf("wrapped PushBurst = %d", n)
	}
	if n := r.PopBurst(got); n != 6 || got[5].Conn != 5 {
		t.Fatalf("wrapped pop n=%d last=%d", n, got[5].Conn)
	}
}

// TestBurstRingZeroAlloc pins the push/drain cycle at zero allocations —
// the invariant the batched receive path is built on.
func TestBurstRingZeroAlloc(t *testing.T) {
	r := NewBurstRing(64, 0)
	burst := make([]PktRef, 16)
	if n := testing.AllocsPerRun(100, func() {
		for i := 0; i < 16; i++ {
			r.Push(PktRef{Conn: uint32(i)})
		}
		r.PopBurst(burst)
	}); n != 0 {
		t.Fatalf("push+drain allocates %.1f/op", n)
	}
}
