package recovery

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"norman/internal/packet"
	"norman/internal/sim"
)

// Op names one class of control-plane mutation the journal records.
type Op string

// Journal operations. Policy mutations are written ahead of their
// application (write-ahead intent); a failed application is compensated by
// an OpAbort entry referencing the intent's sequence number, and connection
// setup is split into OpConnOpen (before the kernel/NIC work) and OpConnBind
// (after the kernel assigned the connection id) so a crash mid-setup leaves
// a visibly incomplete pair rather than a lie.
const (
	// OpEpoch marks a control-plane incarnation boundary (normand cold
	// start): connections opened before it died with the previous process
	// and replay marks them stale instead of repairing them.
	OpEpoch Op = "epoch"

	OpRuleAppend Op = "rule.append"
	OpRuleFlush  Op = "rule.flush"
	OpQdiscSet   Op = "qdisc.set"
	OpConnOpen   Op = "conn.open"
	OpConnBind   Op = "conn.bind"
	OpConnClose  Op = "conn.close"

	// OpAbort compensates a write-ahead entry whose application failed;
	// replay skips the referenced sequence number.
	OpAbort Op = "abort"

	// OpUpgrade records a live-upgrade intent: Ref carries the target
	// pipeline generation the control plane is about to flip to. Replay
	// ignores it — a daemon hot-restart re-adopts the live generation from
	// the NIC itself, never by reprogramming the dataplane — but the entry
	// pins upgrade intent in the same write-ahead log as every other
	// control-plane mutation.
	OpUpgrade Op = "upgrade.gen"
)

// RuleRecord is the journal form of one firewall rule, mirroring the
// administrator-facing norman.Rule plus its hook.
type RuleRecord struct {
	Hook     string  `json:"hook"` // INPUT / OUTPUT
	Proto    string  `json:"proto,omitempty"`
	SrcNet   string  `json:"src,omitempty"`
	DstNet   string  `json:"dst,omitempty"`
	SrcPort  uint16  `json:"sport,omitempty"`
	DstPort  uint16  `json:"dport,omitempty"`
	OwnerUID *uint32 `json:"uid_owner,omitempty"`
	OwnerCmd string  `json:"cmd_owner,omitempty"`
	Action   string  `json:"action,omitempty"`
	Mark     uint32  `json:"mark,omitempty"`
}

// QdiscRecord is the journal form of one egress scheduler configuration.
type QdiscRecord struct {
	Kind       string             `json:"kind"`
	Weights    map[uint32]float64 `json:"weights,omitempty"`
	ClassOfUID map[uint32]uint32  `json:"class_of_uid,omitempty"`
	RateBps    float64            `json:"rate_bps,omitempty"`
	BurstBytes float64            `json:"burst_bytes,omitempty"`
	Limit      int                `json:"limit,omitempty"`
}

// ConnRecord is the journal form of one connection registration.
type ConnRecord struct {
	Flow    packet.FlowKey `json:"flow"`
	PID     uint32         `json:"pid"`
	UID     uint32         `json:"uid"`
	Command string         `json:"command,omitempty"`
}

// Entry is one journal record. Exactly one payload field matching Op is set.
type Entry struct {
	Seq uint64       `json:"seq"`
	At  sim.Duration `json:"at"` // virtual time of the mutation
	Op  Op           `json:"op"`

	// Ref points OpAbort and OpConnBind at the sequence number of the
	// write-ahead entry they complete or void.
	Ref uint64 `json:"ref,omitempty"`
	// ConnID carries the kernel-assigned id for OpConnBind and OpConnClose.
	ConnID uint64 `json:"conn_id,omitempty"`

	Rule  *RuleRecord  `json:"rule,omitempty"`
	Qdisc *QdiscRecord `json:"qdisc,omitempty"`
	Conn  *ConnRecord  `json:"conn,omitempty"`
}

// Journal is the deterministic, append-only intent log. It lives in
// simulation memory (so in-sim crash/restart cycles replay it byte-for-byte
// at any worker width); normand additionally mirrors every append to a file
// through OnAppend so a real SIGKILL survives too.
type Journal struct {
	entries  []Entry
	nextSeq  uint64
	onAppend func(Entry)
}

// NewJournal returns an empty journal.
func NewJournal() *Journal { return &Journal{} }

// SetOnAppend installs a persistence hook invoked synchronously for every
// appended entry — after the entry is in the in-memory log, before the
// mutation it records is applied.
func (j *Journal) SetOnAppend(fn func(Entry)) { j.onAppend = fn }

// Append assigns the next sequence number to e, appends it and returns the
// completed entry.
func (j *Journal) Append(e Entry) Entry {
	j.nextSeq++
	e.Seq = j.nextSeq
	j.entries = append(j.entries, e)
	if j.onAppend != nil {
		j.onAppend(e)
	}
	return e
}

// Load seeds the journal from previously persisted entries (normand cold
// start). The journal must be empty; sequence numbering continues after the
// highest loaded entry.
func (j *Journal) Load(entries []Entry) error {
	if len(j.entries) != 0 {
		return errors.New("recovery: journal not empty")
	}
	j.entries = append(j.entries, entries...)
	for _, e := range entries {
		if e.Seq > j.nextSeq {
			j.nextSeq = e.Seq
		}
	}
	return j.Verify()
}

// Entries returns the log in append order. The slice is shared; callers
// must not mutate it.
func (j *Journal) Entries() []Entry { return j.entries }

// Len returns the number of entries.
func (j *Journal) Len() int { return len(j.entries) }

// Drop removes the entry with the given sequence number, simulating a torn
// or lost journal record. It exists for fault injection only — the
// reconciler's consistency invariant must notice the gap.
func (j *Journal) Drop(seq uint64) bool {
	for i, e := range j.entries {
		if e.Seq == seq {
			j.entries = append(j.entries[:i], j.entries[i+1:]...)
			return true
		}
	}
	return false
}

// Verify checks journal self-consistency: strictly increasing sequence
// numbers, non-decreasing timestamps within an incarnation, and exactly the
// payload each op requires. It is the "journal_consistent" reconciliation
// invariant. An OpEpoch entry resets the time baseline — each daemon
// incarnation starts its virtual clock at zero, so a cold start legally
// journals an epoch "earlier" than the dead incarnation's last entry.
func (j *Journal) Verify() error {
	var lastSeq uint64
	var lastAt sim.Duration
	for i, e := range j.entries {
		if e.Seq <= lastSeq {
			return fmt.Errorf("recovery: journal seq not increasing at index %d: %d after %d", i, e.Seq, lastSeq)
		}
		if e.Op == OpEpoch {
			lastAt = 0
		} else if e.At < lastAt {
			return fmt.Errorf("recovery: journal time goes backward at seq %d", e.Seq)
		}
		lastSeq, lastAt = e.Seq, e.At
		switch e.Op {
		case OpRuleAppend:
			if e.Rule == nil {
				return fmt.Errorf("recovery: seq %d: %s without rule payload", e.Seq, e.Op)
			}
		case OpQdiscSet:
			if e.Qdisc == nil {
				return fmt.Errorf("recovery: seq %d: %s without qdisc payload", e.Seq, e.Op)
			}
		case OpConnOpen:
			if e.Conn == nil {
				return fmt.Errorf("recovery: seq %d: %s without conn payload", e.Seq, e.Op)
			}
		case OpConnBind:
			if e.Ref == 0 || e.ConnID == 0 {
				return fmt.Errorf("recovery: seq %d: %s needs ref and conn_id", e.Seq, e.Op)
			}
		case OpConnClose:
			if e.ConnID == 0 {
				return fmt.Errorf("recovery: seq %d: %s needs conn_id", e.Seq, e.Op)
			}
		case OpAbort:
			if e.Ref == 0 {
				return fmt.Errorf("recovery: seq %d: %s needs ref", e.Seq, e.Op)
			}
		case OpUpgrade:
			if e.Ref == 0 {
				return fmt.Errorf("recovery: seq %d: %s needs the target generation in ref", e.Seq, e.Op)
			}
		case OpEpoch, OpRuleFlush:
			// no payload
		default:
			return fmt.Errorf("recovery: seq %d: unknown op %q", e.Seq, e.Op)
		}
	}
	return nil
}

// Encode writes the journal as JSON lines, one entry per line — the format
// normand persists.
func (j *Journal) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range j.entries {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if _, err := bw.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// EncodeEntry renders one entry as a JSON line (with trailing newline), for
// incremental persistence from an OnAppend hook.
func EncodeEntry(e Entry) ([]byte, error) {
	b, err := json.Marshal(e)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Decode reads JSON-lines entries (blank lines ignored) until EOF.
func Decode(r io.Reader) ([]Entry, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<24)
	var out []Entry
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("recovery: journal line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
