package recovery

import (
	"fmt"
	"sort"
)

// IntentConn is one connection as the journal intends it.
type IntentConn struct {
	Rec     ConnRecord
	ID      uint64 // kernel connection id from OpConnBind; 0 = setup never completed
	OpenSeq uint64
	Stale   bool // opened before the latest epoch: its process died with that incarnation
}

// Intent is the state the control plane is supposed to be in, rebuilt by
// replaying the journal: the ordered rule list, the egress scheduler, and
// the set of live connections. It is the left-hand side of the reconciler's
// diff.
type Intent struct {
	Rules []RuleRecord
	Qdisc *QdiscRecord
	// Conns maps kernel connection id -> intended connection (bound, open,
	// current incarnation).
	Conns map[uint64]*IntentConn
	// Incomplete holds conn.open entries that never reached conn.bind — a
	// crash hit mid-setup. Reported, never repaired (the application's half
	// of the setup is gone).
	Incomplete []*IntentConn
	// Stale holds connections from previous incarnations (pre-epoch).
	Stale []*IntentConn
}

// RulesFor returns the intended rules on one hook, in order.
func (in *Intent) RulesFor(hook string) []RuleRecord {
	var out []RuleRecord
	for _, r := range in.Rules {
		if r.Hook == hook {
			out = append(out, r)
		}
	}
	return out
}

// Replay folds the journal into an Intent. Aborted entries are skipped, a
// flush clears the rule list, a later qdisc.set wins, and an epoch marks
// every connection opened before it stale.
func Replay(entries []Entry) (*Intent, error) {
	aborted := make(map[uint64]bool)
	for _, e := range entries {
		if e.Op == OpAbort {
			aborted[e.Ref] = true
		}
	}

	in := &Intent{Conns: make(map[uint64]*IntentConn)}
	pending := make(map[uint64]*IntentConn) // open-seq -> conn awaiting bind
	for _, e := range entries {
		if aborted[e.Seq] {
			continue
		}
		switch e.Op {
		case OpEpoch:
			for id, c := range in.Conns {
				c.Stale = true
				in.Stale = append(in.Stale, c)
				delete(in.Conns, id)
			}
			for seq, c := range pending {
				c.Stale = true
				in.Stale = append(in.Stale, c)
				delete(pending, seq)
			}
			sortByOpenSeq(in.Stale)
		case OpRuleAppend:
			in.Rules = append(in.Rules, *e.Rule)
		case OpRuleFlush:
			in.Rules = nil
		case OpQdiscSet:
			q := *e.Qdisc
			in.Qdisc = &q
		case OpConnOpen:
			pending[e.Seq] = &IntentConn{Rec: *e.Conn, OpenSeq: e.Seq}
		case OpConnBind:
			c, ok := pending[e.Ref]
			if !ok {
				return nil, fmt.Errorf("recovery: seq %d binds unknown open seq %d", e.Seq, e.Ref)
			}
			delete(pending, e.Ref)
			c.ID = e.ConnID
			in.Conns[e.ConnID] = c
		case OpConnClose:
			delete(in.Conns, e.ConnID)
		case OpAbort:
			// handled by the precollected set
		}
	}
	for _, c := range pending {
		in.Incomplete = append(in.Incomplete, c)
	}
	// Map iteration above is unordered; sort so replay output — and every
	// report built from it — is byte-identical at any worker width.
	sortByOpenSeq(in.Incomplete)
	return in, nil
}

func sortByOpenSeq(cs []*IntentConn) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].OpenSeq < cs[j].OpenSeq })
}
