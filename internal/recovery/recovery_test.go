package recovery

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"norman/internal/kernel"
	"norman/internal/nic"
	"norman/internal/overlay"
	"norman/internal/packet"
	"norman/internal/qos"
	"norman/internal/sim"
	"norman/internal/timing"
)

func flow(sport uint16) packet.FlowKey {
	return packet.FlowKey{Src: 0x0a000001, Dst: 0x0a000002, SrcPort: sport, DstPort: 80, Proto: packet.ProtoUDP}
}

func TestJournalAppendVerifyEncode(t *testing.T) {
	j := NewJournal()
	e1 := j.Append(Entry{Op: OpRuleAppend, Rule: &RuleRecord{Hook: "INPUT", Action: "drop"}})
	if e1.Seq != 1 {
		t.Fatalf("seq = %d, want 1", e1.Seq)
	}
	open := j.Append(Entry{Op: OpConnOpen, Conn: &ConnRecord{Flow: flow(1000), PID: 7, UID: 1000}})
	j.Append(Entry{Op: OpConnBind, Ref: open.Seq, ConnID: 3})
	j.Append(Entry{Op: OpQdiscSet, Qdisc: &QdiscRecord{Kind: "wfq", Weights: map[uint32]float64{1: 2}}})
	if err := j.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}

	var buf bytes.Buffer
	if err := j.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != j.Len() {
		t.Fatalf("round trip: %d entries, want %d", len(got), j.Len())
	}
	j2 := NewJournal()
	if err := j2.Load(got); err != nil {
		t.Fatalf("Load: %v", err)
	}
	next := j2.Append(Entry{Op: OpRuleFlush})
	if next.Seq != uint64(j.Len())+1 {
		t.Fatalf("seq after load = %d", next.Seq)
	}
}

// TestJournalEpochResetsTimeBaseline: entries persisted by a dead
// incarnation carry its virtual clock; the restarted daemon's clock begins
// at zero again, so the epoch it journals is "earlier" than the old tail.
// Verify must treat OpEpoch as a time-baseline reset, not a violation —
// while still rejecting backward time within one incarnation.
func TestJournalEpochResetsTimeBaseline(t *testing.T) {
	j := NewJournal()
	j.Append(Entry{At: 5 * sim.Millisecond, Op: OpRuleAppend, Rule: &RuleRecord{Hook: "OUTPUT", Action: "drop"}})
	j.Append(Entry{At: 0, Op: OpEpoch}) // cold start: clock restarted
	j.Append(Entry{At: 10 * sim.Microsecond, Op: OpRuleFlush})
	if err := j.Verify(); err != nil {
		t.Fatalf("epoch must reset the time baseline: %v", err)
	}
	j.Append(Entry{At: 5 * sim.Microsecond, Op: OpRuleFlush}) // backward, same incarnation
	if err := j.Verify(); err == nil {
		t.Fatal("backward time within an incarnation must fail Verify")
	}
}

func TestJournalDropBreaksConsistency(t *testing.T) {
	j := NewJournal()
	j.Append(Entry{Op: OpRuleAppend, Rule: &RuleRecord{Hook: "INPUT"}})
	bind := j.Append(Entry{Op: OpConnOpen, Conn: &ConnRecord{Flow: flow(1)}})
	j.Append(Entry{Op: OpConnBind, Ref: bind.Seq, ConnID: 9})
	if !j.Drop(bind.Seq) {
		t.Fatal("Drop did not find the entry")
	}
	// The torn record surfaces at replay: the bind references a seq that is
	// gone.
	if _, err := Replay(j.Entries()); err == nil {
		t.Fatal("Replay accepted a journal with a torn conn.open")
	}
}

func TestReplaySemantics(t *testing.T) {
	j := NewJournal()
	j.Append(Entry{Op: OpRuleAppend, Rule: &RuleRecord{Hook: "INPUT", Action: "drop"}})
	j.Append(Entry{Op: OpRuleFlush})
	j.Append(Entry{Op: OpRuleAppend, Rule: &RuleRecord{Hook: "OUTPUT", Action: "accept"}})
	aborted := j.Append(Entry{Op: OpRuleAppend, Rule: &RuleRecord{Hook: "OUTPUT", Action: "drop"}})
	j.Append(Entry{Op: OpAbort, Ref: aborted.Seq})

	preEpoch := j.Append(Entry{Op: OpConnOpen, Conn: &ConnRecord{Flow: flow(1), PID: 1}})
	j.Append(Entry{Op: OpConnBind, Ref: preEpoch.Seq, ConnID: 1})
	j.Append(Entry{Op: OpEpoch})

	o2 := j.Append(Entry{Op: OpConnOpen, Conn: &ConnRecord{Flow: flow(2), PID: 2}})
	j.Append(Entry{Op: OpConnBind, Ref: o2.Seq, ConnID: 2})
	o3 := j.Append(Entry{Op: OpConnOpen, Conn: &ConnRecord{Flow: flow(3), PID: 3}})
	j.Append(Entry{Op: OpConnBind, Ref: o3.Seq, ConnID: 3})
	j.Append(Entry{Op: OpConnClose, ConnID: 3})
	j.Append(Entry{Op: OpConnOpen, Conn: &ConnRecord{Flow: flow(4), PID: 4}}) // crash mid-setup
	j.Append(Entry{Op: OpQdiscSet, Qdisc: &QdiscRecord{Kind: "drr"}})
	j.Append(Entry{Op: OpQdiscSet, Qdisc: &QdiscRecord{Kind: "wfq", Weights: map[uint32]float64{1: 3}}})

	in, err := Replay(j.Entries())
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Rules) != 1 || in.Rules[0].Hook != "OUTPUT" || in.Rules[0].Action != "accept" {
		t.Fatalf("rules = %+v (flush/abort not honored)", in.Rules)
	}
	if in.Qdisc == nil || in.Qdisc.Kind != "wfq" {
		t.Fatalf("qdisc = %+v, want last write wins", in.Qdisc)
	}
	if len(in.Conns) != 1 || in.Conns[2] == nil {
		t.Fatalf("conns = %+v, want only conn 2", in.Conns)
	}
	if len(in.Stale) != 1 || !in.Stale[0].Stale || in.Stale[0].ID != 1 {
		t.Fatalf("stale = %+v, want pre-epoch conn 1", in.Stale)
	}
	if len(in.Incomplete) != 1 || in.Incomplete[0].Rec.PID != 4 {
		t.Fatalf("incomplete = %+v", in.Incomplete)
	}
}

func TestGateAndCrashLifecycle(t *testing.T) {
	m := NewManager()
	if err := m.Gate(); err != nil {
		t.Fatalf("Gate while up: %v", err)
	}
	m.Crash(sim.Time(1000))
	if !m.Down() {
		t.Fatal("not down after Crash")
	}
	if err := m.Gate(); !errors.Is(err, ErrControlPlaneDown) {
		t.Fatalf("Gate while down = %v, want ErrControlPlaneDown", err)
	}
	if m.RejectedWhileDown != 1 {
		t.Fatalf("RejectedWhileDown = %d", m.RejectedWhileDown)
	}
}

// fakeApplier records what the reconciler asked it to reapply.
type fakeApplier struct {
	rules   [][]RuleRecord
	qdiscs  []QdiscRecord
	conns   []uint64
	steers  []uint64
	connErr error

	kern *kernel.Kernel
	n    *nic.NIC
}

func (f *fakeApplier) ReinstallRules(rules []RuleRecord) error {
	f.rules = append(f.rules, rules)
	return nil
}
func (f *fakeApplier) ReinstallQdisc(q QdiscRecord) error { f.qdiscs = append(f.qdiscs, q); return nil }
func (f *fakeApplier) RestoreConn(rec ConnRecord, id uint64) error {
	if f.connErr != nil {
		return f.connErr
	}
	f.conns = append(f.conns, id)
	if f.kern != nil {
		if _, err := f.kern.RestoreConn(id, rec.PID, rec.Flow, 0); err != nil {
			return err
		}
	}
	return nil
}
func (f *fakeApplier) RepairSteering(rec ConnRecord, id uint64) error {
	f.steers = append(f.steers, id)
	if f.n != nil {
		return f.n.SteerFlow(rec.Flow, id)
	}
	return nil
}

func testWorld(t *testing.T) (*nic.NIC, *kernel.Kernel) {
	t.Helper()
	eng := sim.NewEngine()
	n := nic.New(nic.Config{Engine: eng, Model: timing.Default(), RingSize: 8, SRAMBudget: 1 << 20})
	k := kernel.New(eng, timing.Default())
	return n, k
}

// TestRestartRepairsInjectedDivergence is the acceptance-criteria test: an
// injected NIC/kernel divergence (dropped steering entry, lost kernel conn
// row, unloaded pipeline program) is detected, repaired, and the re-diff
// plus invariants come back clean.
func TestRestartRepairsInjectedDivergence(t *testing.T) {
	n, k := testWorld(t)
	m := NewManager()

	// Intent: one INPUT rule, wfq qdisc, two connections.
	m.Record(0, Entry{Op: OpRuleAppend, Rule: &RuleRecord{Hook: "INPUT", Action: "drop", DstPort: 9999}})
	wfq := qos.NewWFQ(64)
	wfq.SetWeight(1, 3)
	m.Record(0, Entry{Op: OpQdiscSet, Qdisc: &QdiscRecord{Kind: "wfq", Weights: map[uint32]float64{1: 3}}})

	prog, err := overlay.Assemble("input-chain", "pass\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.LoadProgram(nic.Ingress, prog); err != nil {
		t.Fatal(err)
	}
	n.SetScheduler(wfq)

	proc := k.Spawn(1000, "svc")
	for i, fl := range []packet.FlowKey{flow(1000), flow(1001)} {
		ci, err := k.RegisterConn(proc, fl)
		if err != nil {
			t.Fatal(err)
		}
		open := m.Record(0, Entry{Op: OpConnOpen, Conn: &ConnRecord{Flow: fl, PID: proc.PID, UID: 1000}})
		m.Record(0, Entry{Op: OpConnBind, Ref: open.Seq, ConnID: ci.ID})
		if _, err := n.OpenConn(ci.ID, packet.Meta{}, nil); err != nil {
			t.Fatal(err)
		}
		if err := n.SteerFlow(fl, ci.ID); err != nil {
			t.Fatal(err)
		}
		_ = i
	}
	n.CommitConfig(0)

	rules := 1
	live := Live{
		NIC: n, Kern: k, RingPerConn: true,
		RuleCount: func(hook string) int {
			if hook == "INPUT" {
				return rules
			}
			return 0
		},
		Qdisc: func() qos.Qdisc { return n.Scheduler() },
	}
	ap := &fakeApplier{kern: k, n: n}

	// Inject divergence: steering entry lost, kernel row lost, program gone.
	m.Crash(sim.Time(100))
	if !n.DropSteering(flow(1000)) {
		t.Fatal("DropSteering missed")
	}
	if err := k.UnregisterConn(2); err != nil {
		t.Fatal(err)
	}
	n.UnloadProgram(nic.Ingress)

	rep, err := m.Restart(sim.Time(200), live, ap)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) < 3 {
		t.Fatalf("divergences = %v, want steering + kernel conn + program", rep.Divergences)
	}
	if !rep.Clean {
		t.Fatalf("re-diff not clean: %+v", rep)
	}
	if !rep.InvariantsOK {
		t.Fatalf("invariants failed: %+v", rep.Invariants)
	}
	if len(ap.conns) != 1 || ap.conns[0] != 2 {
		t.Fatalf("RestoreConn calls = %v", ap.conns)
	}
	// The whole-config snapshot restore must have been preferred for NIC
	// state (program + steering in one action).
	var sawRestore bool
	for _, a := range rep.Actions {
		if a.Kind == "nic.restore_config" {
			sawRestore = true
		}
	}
	if !sawRestore {
		t.Fatalf("actions = %+v, want nic.restore_config", rep.Actions)
	}
	if n.Machine(nic.Ingress) == nil {
		t.Fatal("ingress program not restored")
	}
	if id, ok := n.SteeredConn(flow(1000)); !ok || id != 1 {
		t.Fatal("steering not restored")
	}
	if rep.RecoveryTime <= 0 {
		t.Fatal("recovery time not modeled")
	}
	if m.DivergencesFound == 0 || m.RepairsApplied == 0 {
		t.Fatal("counters not updated")
	}
}

func TestInvariantCatchesBadWeights(t *testing.T) {
	n, k := testWorld(t)
	wfq := qos.NewWFQ(64)
	wfq.SetWeight(1, 1) // live weight disagrees with intent below
	n.SetScheduler(wfq)
	in := &Intent{Qdisc: &QdiscRecord{Kind: "wfq", Weights: map[uint32]float64{1: 5}}, Conns: map[uint64]*IntentConn{}}
	live := Live{NIC: n, Kern: k, Qdisc: func() qos.Qdisc { return n.Scheduler() }}
	res := CheckInvariants(NewJournal(), in, live)
	var qosRes *InvariantResult
	for i := range res {
		if res[i].Name == "qos_weights" {
			qosRes = &res[i]
		}
	}
	if qosRes == nil || qosRes.OK {
		t.Fatalf("qos_weights = %+v, want failure", qosRes)
	}
	if !strings.Contains(qosRes.Detail, "class 1 weight 1, intended 5") {
		t.Fatalf("detail = %q", qosRes.Detail)
	}
}
