// Package recovery makes the control plane restartable: the answer to the
// paper's single-point-of-failure gap. KOPI's split — policies execute on
// the NIC, the in-kernel control plane only programs them (§4) — is exactly
// what lets the dataplane keep forwarding through a control-plane crash, but
// only if three pieces exist, and this package is those pieces:
//
//   - an append-only intent Journal recording every control-plane mutation
//     (filter rules, qdisc configuration, connection registrations) before
//     it is applied, deterministic and replayable like internal/faults;
//   - a Manager that models the crash window: while the control plane is
//     down the dataplane runs on its last-installed policies and every new
//     mutation is rejected with the typed ErrControlPlaneDown;
//   - a reconciler that on restart replays the journal into an Intent,
//     diffs it against the live NIC/kernel/filter state, repairs divergence
//     (redeploying chains, re-steering flows, restoring kernel table rows —
//     preferring the NIC's whole-config last-good snapshot where one
//     exists), and proves the result with an invariant checker.
//
// Everything is exposed through recovery.* metrics and trace spans on the
// unified telemetry registry; experiment E10 sweeps crash windows across
// architectures and tables the damage.
package recovery

import (
	"errors"

	"norman/internal/sim"
	"norman/internal/telemetry"
)

// ErrControlPlaneDown is returned for any control-plane mutation attempted
// while the control plane is crashed or mid-restart. The dataplane is not
// affected: installed policies keep executing on the NIC (or die with the
// kernel, on architectures without the split — that contrast is E10's
// table).
var ErrControlPlaneDown = errors.New("recovery: control plane down (dataplane frozen on last-installed policies)")

// Manager owns the journal and the crash/restart lifecycle for one system.
type Manager struct {
	journal *Journal
	down    bool
	downAt  sim.Time

	tracer  *telemetry.Tracer
	traceID uint64 // span id of the current crash→recovery cycle

	registered bool

	// rejectedAtCrash snapshots RejectedWhileDown when the current outage
	// began, so Restart can report the rejections of *this* outage rather
	// than the lifetime total.
	rejectedAtCrash uint64

	// Counters, exposed as the telemetry registry's recovery layer.
	Crashes           uint64
	Restarts          uint64
	RejectedWhileDown uint64
	ReplayedEntries   uint64
	DivergencesFound  uint64
	RepairsApplied    uint64
	StaleConns        uint64
	InvariantFailures uint64

	// LastRecovery is the virtual time the most recent reconciliation
	// consumed (see Report.RecoveryTime).
	LastRecovery sim.Duration

	lastReport *Report
}

// NewManager returns a manager with an empty journal.
func NewManager() *Manager { return &Manager{journal: NewJournal()} }

// Journal returns the intent journal.
func (m *Manager) Journal() *Journal { return m.journal }

// Down reports whether the control plane is currently crashed.
func (m *Manager) Down() bool { return m.down }

// LastReport returns the most recent reconciliation report, nil before the
// first restart.
func (m *Manager) LastReport() *Report { return m.lastReport }

// SetTracer attaches the packet-lifecycle tracer; crash, replay, repair and
// invariant events become spans under one id per crash→recovery cycle, so
// `ntcpdump -trace` renders a recovery the same way it renders a packet.
func (m *Manager) SetTracer(tr *telemetry.Tracer) { m.tracer = tr }

// span records one recovery-cycle trace event.
func (m *Manager) span(at sim.Time, point, note string) {
	if m.tracer == nil || m.traceID == 0 {
		return
	}
	m.tracer.Record(m.traceID, at, "recovery", point, note)
}

// Crash marks the control plane down. Mutations now fail with
// ErrControlPlaneDown until Restart; the caller is responsible for wiping
// whatever in-memory control state the architecture loses.
func (m *Manager) Crash(now sim.Time) {
	if m.down {
		return
	}
	m.down = true
	m.downAt = now
	m.rejectedAtCrash = m.RejectedWhileDown
	m.Crashes++
	if m.tracer != nil {
		m.traceID = m.tracer.StampID()
	}
	m.span(now, "crash", "control plane down")
}

// Gate returns ErrControlPlaneDown (and counts the rejection) while the
// control plane is down, nil otherwise. Every journaling mutation path calls
// it first.
func (m *Manager) Gate() error {
	if m.down {
		m.RejectedWhileDown++
		return ErrControlPlaneDown
	}
	return nil
}

// Record journals one mutation with the given virtual timestamp and returns
// the completed entry. Call after Gate, before applying the mutation
// (write-ahead); compensate an application failure with Abort.
func (m *Manager) Record(now sim.Time, e Entry) Entry {
	e.At = sim.Duration(now)
	return m.journal.Append(e)
}

// Abort journals a compensation entry voiding the write-ahead entry seq
// (its application failed).
func (m *Manager) Abort(now sim.Time, seq uint64) {
	m.journal.Append(Entry{At: sim.Duration(now), Op: OpAbort, Ref: seq})
}

// MarkEpoch journals an incarnation boundary: connections recorded before
// this instant belonged to a process that no longer exists (normand cold
// start). In-sim crash/restart cycles do not mark epochs — their processes
// survive.
func (m *Manager) MarkEpoch(now sim.Time) {
	m.journal.Append(Entry{At: sim.Duration(now), Op: OpEpoch})
}

// RegisterMetrics exposes the manager's counters as the registry's recovery
// layer. Idempotent per manager: a second call is a no-op so enabling
// telemetry and recovery in either order cannot double-register.
func (m *Manager) RegisterMetrics(r *telemetry.Registry, labels telemetry.Labels) {
	if m.registered {
		return
	}
	m.registered = true
	r.Counter(telemetry.Desc{Layer: "recovery", Name: "crashes", Help: "control-plane crashes modeled", Unit: "crashes"},
		labels, func() uint64 { return m.Crashes })
	r.Counter(telemetry.Desc{Layer: "recovery", Name: "restarts", Help: "control-plane restarts reconciled", Unit: "restarts"},
		labels, func() uint64 { return m.Restarts })
	r.Counter(telemetry.Desc{Layer: "recovery", Name: "rejected_mutations", Help: "mutations rejected with ErrControlPlaneDown during an outage", Unit: "requests"},
		labels, func() uint64 { return m.RejectedWhileDown })
	r.Counter(telemetry.Desc{Layer: "recovery", Name: "journal_entries", Help: "intent journal entries appended", Unit: "entries"},
		labels, func() uint64 { return uint64(m.journal.Len()) })
	r.Counter(telemetry.Desc{Layer: "recovery", Name: "replayed_entries", Help: "journal entries replayed across all restarts", Unit: "entries"},
		labels, func() uint64 { return m.ReplayedEntries })
	r.Counter(telemetry.Desc{Layer: "recovery", Name: "divergences", Help: "intended-vs-live state divergences the reconciler detected", Unit: "divergences"},
		labels, func() uint64 { return m.DivergencesFound })
	r.Counter(telemetry.Desc{Layer: "recovery", Name: "repairs", Help: "repair actions the reconciler applied", Unit: "repairs"},
		labels, func() uint64 { return m.RepairsApplied })
	r.Counter(telemetry.Desc{Layer: "recovery", Name: "stale_conns", Help: "journaled connections from dead incarnations marked stale instead of repaired", Unit: "conns"},
		labels, func() uint64 { return m.StaleConns })
	r.Counter(telemetry.Desc{Layer: "recovery", Name: "invariant_failures", Help: "post-reconciliation invariant checks that failed", Unit: "failures"},
		labels, func() uint64 { return m.InvariantFailures })
	r.Gauge(telemetry.Desc{Layer: "recovery", Name: "last_recovery_ps", Help: "virtual time the most recent reconciliation consumed", Unit: "ps"},
		labels, func() float64 { return float64(m.LastRecovery) })
}
