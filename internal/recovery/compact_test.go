package recovery

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"norman/internal/packet"
	"norman/internal/sim"
)

// compactFixture builds a journal with plenty of dead weight: rules that get
// flushed, a superseded qdisc, aborted mutations, closed connections, an
// incomplete setup, and a pre-epoch (stale) connection — plus the live state
// compaction must preserve exactly.
func compactFixture() []Entry {
	j := NewJournal()
	at := func(us int) sim.Duration { return sim.Duration(us) * sim.Microsecond }
	flow := func(port uint16) packet.FlowKey {
		return packet.FlowKey{Src: packet.MakeIP(10, 0, 0, 1), Dst: packet.MakeIP(10, 0, 0, 2),
			SrcPort: port, DstPort: 7, Proto: packet.ProtoUDP}
	}

	// A previous incarnation: its connection goes stale at the epoch below.
	j.Append(Entry{At: at(1), Op: OpConnOpen, Conn: &ConnRecord{Flow: flow(1000), PID: 9, UID: 9}})
	j.Append(Entry{At: at(1), Op: OpConnBind, Ref: 1, ConnID: 900})
	j.Append(Entry{At: 0, Op: OpEpoch})

	// Rules: two survive, two are flushed away, one is aborted.
	j.Append(Entry{At: at(2), Op: OpRuleAppend, Rule: &RuleRecord{Hook: "INPUT", DstPort: 22, Action: "drop"}})
	j.Append(Entry{At: at(3), Op: OpRuleAppend, Rule: &RuleRecord{Hook: "OUTPUT", DstPort: 23, Action: "drop"}})
	j.Append(Entry{At: at(4), Op: OpRuleFlush})
	j.Append(Entry{At: at(5), Op: OpRuleAppend, Rule: &RuleRecord{Hook: "INPUT", DstPort: 80, Action: "accept"}})
	bad := j.Append(Entry{At: at(6), Op: OpRuleAppend, Rule: &RuleRecord{Hook: "INPUT", DstPort: 81, Action: "drop"}})
	j.Append(Entry{At: at(6), Op: OpAbort, Ref: bad.Seq})
	j.Append(Entry{At: at(7), Op: OpRuleAppend, Rule: &RuleRecord{Hook: "OUTPUT", SrcPort: 443, Action: "accept"}})

	// Qdiscs: the second wins.
	j.Append(Entry{At: at(8), Op: OpQdiscSet, Qdisc: &QdiscRecord{Kind: "pfifo", Limit: 64}})
	j.Append(Entry{At: at(9), Op: OpQdiscSet, Qdisc: &QdiscRecord{Kind: "wfq", Weights: map[uint32]float64{1: 3, 2: 1}}})

	// Connections: one live, one closed, one incomplete (open, never bound).
	open1 := j.Append(Entry{At: at(10), Op: OpConnOpen, Conn: &ConnRecord{Flow: flow(2000), PID: 10, UID: 100, Command: "svc"}})
	j.Append(Entry{At: at(10), Op: OpConnBind, Ref: open1.Seq, ConnID: 41})
	open2 := j.Append(Entry{At: at(11), Op: OpConnOpen, Conn: &ConnRecord{Flow: flow(2001), PID: 11, UID: 100}})
	j.Append(Entry{At: at(11), Op: OpConnBind, Ref: open2.Seq, ConnID: 42})
	j.Append(Entry{At: at(12), Op: OpConnClose, ConnID: 42})
	j.Append(Entry{At: at(13), Op: OpConnOpen, Conn: &ConnRecord{Flow: flow(2002), PID: 12, UID: 100}})

	// Upgrade intent rides along; replay ignores it, compaction drops it.
	j.Append(Entry{At: at(14), Op: OpUpgrade, Ref: 2})
	return j.Entries()
}

// TestCompactReplayEquivalence is the compaction contract: the compacted
// journal passes Verify and replays to the same reconciled state — same
// rules in order, same final qdisc, same live bound connections under the
// same ids — while the dead entries are gone.
func TestCompactReplayEquivalence(t *testing.T) {
	entries := compactFixture()
	before, err := Replay(entries)
	if err != nil {
		t.Fatal(err)
	}
	compacted, err := Compact(entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(compacted) >= len(entries) {
		t.Fatalf("compaction must shrink the journal: %d -> %d", len(entries), len(compacted))
	}

	// The compacted journal must itself be a valid journal.
	j := NewJournal()
	if err := j.Load(compacted); err != nil {
		t.Fatalf("compacted journal fails Verify: %v", err)
	}

	after, err := Replay(compacted)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before.Rules, after.Rules) {
		t.Fatalf("rules diverge:\nbefore %+v\nafter  %+v", before.Rules, after.Rules)
	}
	if !reflect.DeepEqual(before.Qdisc, after.Qdisc) {
		t.Fatalf("qdisc diverges:\nbefore %+v\nafter  %+v", before.Qdisc, after.Qdisc)
	}
	if len(after.Conns) != len(before.Conns) {
		t.Fatalf("live conns diverge: %d before, %d after", len(before.Conns), len(after.Conns))
	}
	for id, b := range before.Conns {
		a, ok := after.Conns[id]
		if !ok {
			t.Fatalf("live conn %d lost by compaction", id)
		}
		if !reflect.DeepEqual(b.Rec, a.Rec) {
			t.Fatalf("conn %d record diverges:\nbefore %+v\nafter  %+v", id, b.Rec, a.Rec)
		}
		if a.Stale {
			t.Fatalf("conn %d must not be stale in the compacted journal", id)
		}
	}
	// The garbage is gone: no stale or incomplete connections survive.
	if len(after.Stale) != 0 || len(after.Incomplete) != 0 {
		t.Fatalf("compaction must drop stale (%d) and incomplete (%d) conns",
			len(after.Stale), len(after.Incomplete))
	}
}

// TestCompactFile exercises the on-disk rewrite: below the threshold the file
// is untouched; at the threshold it is rewritten with the compacted entries
// and still decodes and verifies.
func TestCompactFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal")
	writeEntries := func(entries []Entry) {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			line, err := EncodeEntry(e)
			if err != nil {
				t.Fatal(err)
			}
			f.Write(line)
		}
		f.Close()
	}
	entries := compactFixture()
	writeEntries(entries)

	// Below threshold: untouched.
	before, after, err := CompactFile(path, len(entries)+1)
	if err != nil {
		t.Fatal(err)
	}
	if before != len(entries) || after != before {
		t.Fatalf("below threshold must be a no-op: before %d after %d", before, after)
	}

	// At threshold: rewritten, decodable, verifiable.
	before, after, err = CompactFile(path, len(entries))
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("compaction must shrink: %d -> %d", before, after)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != after {
		t.Fatalf("file holds %d entries, CompactFile reported %d", len(got), after)
	}
	if err := NewJournal().Load(got); err != nil {
		t.Fatalf("compacted file fails Verify: %v", err)
	}

	// A missing file is not an error (first boot).
	if _, _, err := CompactFile(filepath.Join(dir, "missing"), 1); err != nil {
		t.Fatalf("missing journal must be a no-op: %v", err)
	}
}

// TestCompactFileCrashSafe models a SIGKILL mid-compaction: the temporary
// sibling exists (fully or partially written) but the rename never happened.
// The original journal must be untouched and the next compaction must
// succeed, overwriting the leftover.
func TestCompactFileCrashSafe(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal")
	entries := compactFixture()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	var raw strings.Builder
	for _, e := range entries {
		line, err := EncodeEntry(e)
		if err != nil {
			t.Fatal(err)
		}
		raw.Write(line)
		f.Write(line)
	}
	f.Close()

	// The crash: a torn temporary from a compaction that died before rename.
	torn := raw.String()[:len(raw.String())/3] + `{"seq":`
	if err := os.WriteFile(path+".compact", []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	// The original is still the journal of record and replays fine.
	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(g)
	g.Close()
	if err != nil {
		t.Fatalf("original journal torn by a crashed compaction: %v", err)
	}
	if len(got) != len(entries) {
		t.Fatalf("original journal lost entries: %d of %d", len(got), len(entries))
	}

	// The next incarnation's compaction overwrites the leftover and lands.
	before, after, err := CompactFile(path, 1)
	if err != nil {
		t.Fatalf("compaction after a crash must succeed: %v", err)
	}
	if after >= before {
		t.Fatalf("compaction must shrink: %d -> %d", before, after)
	}
	if _, err := os.Stat(path + ".compact"); !os.IsNotExist(err) {
		t.Fatal("the temporary must be consumed by the rename")
	}
	h, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err = Decode(h)
	h.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := NewJournal().Load(got); err != nil {
		t.Fatalf("post-crash compacted journal fails Verify: %v", err)
	}
}
