package recovery

import (
	"fmt"
	"sort"

	"norman/internal/nic"
	"norman/internal/overlay"
	"norman/internal/qos"
)

// InvariantResult is one post-reconciliation check.
type InvariantResult struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// CheckInvariants proves (or disproves) the reconciled state:
//
//   - journal_consistent — the journal itself verifies (monotonic seq/time,
//     well-formed payloads); a torn record fails here.
//   - conn_rings — every intended live connection exists in the kernel
//     table and, on ring-per-conn architectures, owns a NIC ring with its
//     flow steered to it.
//   - chains_verify — every loaded NIC pipeline program passes the static
//     verifier (the same gate install-time uses).
//   - qos_weights — intended weights are all positive, the live scheduler
//     matches the intended kind, and a live WFQ's weights sum to the
//     intended sum.
func CheckInvariants(j *Journal, in *Intent, live Live) []InvariantResult {
	var out []InvariantResult
	add := func(name string, err error) {
		r := InvariantResult{Name: name, OK: err == nil}
		if err != nil {
			r.Detail = err.Error()
		}
		out = append(out, r)
	}

	add("journal_consistent", j.Verify())
	add("conn_rings", checkConnRings(in, live))
	add("chains_verify", checkChains(live))
	add("qos_weights", checkQoSWeights(in, live))
	return out
}

func checkConnRings(in *Intent, live Live) error {
	ids := make([]uint64, 0, len(in.Conns))
	for id := range in.Conns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		c := in.Conns[id]
		if live.Kern != nil {
			if _, ok := live.Kern.Conn(id); !ok {
				return fmt.Errorf("conn %d not in kernel table", id)
			}
		}
		if !live.RingPerConn || live.NIC == nil {
			continue
		}
		if _, ok := live.NIC.Conn(id); !ok {
			return fmt.Errorf("conn %d has no NIC ring", id)
		}
		if steered, ok := live.NIC.SteeredConn(c.Rec.Flow); !ok || steered != id {
			return fmt.Errorf("conn %d flow not steered to its ring", id)
		}
	}
	return nil
}

func checkChains(live Live) error {
	if live.NIC == nil {
		return nil
	}
	for dir := nic.Ingress; dir <= nic.Egress; dir++ {
		m := live.NIC.Machine(dir)
		if m == nil {
			continue
		}
		if err := overlay.Verify(m.Program()); err != nil {
			return fmt.Errorf("%v chain: %w", dir, err)
		}
	}
	return nil
}

func checkQoSWeights(in *Intent, live Live) error {
	if in.Qdisc == nil {
		return nil
	}
	// Per-class exact comparison in sorted order: summing floats would be
	// map-iteration-order dependent, which can differ run to run and would
	// undermine the byte-identical determinism E10 claims.
	classes := make([]uint32, 0, len(in.Qdisc.Weights))
	for class := range in.Qdisc.Weights {
		classes = append(classes, class)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, class := range classes {
		if w := in.Qdisc.Weights[class]; w <= 0 {
			return fmt.Errorf("intended weight for class %d is %v, want > 0", class, w)
		}
	}
	var q qos.Qdisc
	if live.Qdisc != nil {
		q = live.Qdisc()
	}
	if q == nil {
		return fmt.Errorf("intended qdisc %s, none live", in.Qdisc.Kind)
	}
	if q.Name() != in.Qdisc.Kind {
		return fmt.Errorf("intended qdisc %s, live %s", in.Qdisc.Kind, q.Name())
	}
	if wfq, ok := q.(*qos.WFQ); ok {
		liveW := wfq.Weights()
		for _, class := range classes {
			got, ok := liveW[class]
			if !ok {
				return fmt.Errorf("wfq missing intended class %d", class)
			}
			if want := in.Qdisc.Weights[class]; got != want {
				return fmt.Errorf("wfq class %d weight %v, intended %v", class, got, want)
			}
		}
	}
	return nil
}
