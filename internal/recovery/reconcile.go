package recovery

import (
	"fmt"
	"sort"

	"norman/internal/kernel"
	"norman/internal/nic"
	"norman/internal/overlay"
	"norman/internal/qos"
	"norman/internal/sim"
)

// Deterministic reconciliation cost model: replaying one journal entry is a
// memory walk (~200ns of virtual time), applying one repair action reaches
// back into the NIC/kernel (~2µs). Constants, not wall-clock measurements,
// so E10's recovery-time column is byte-identical at any worker width.
const (
	replayCostPerEntry = 200 * sim.Nanosecond
	repairCostPerAct   = 2 * sim.Microsecond
)

// Live names the state the reconciler diffs journaled intent against.
type Live struct {
	NIC  *nic.NIC
	Kern *kernel.Kernel
	// RingPerConn is true on architectures where each connection owns a NIC
	// ring and a steering entry (Caps().Transfers == 1); on the kernel-stack
	// architecture connections share kernel-owned queues and no per-conn NIC
	// state exists to reconcile.
	RingPerConn bool
	// RuleCount reports how many filter rules are live on a hook.
	RuleCount func(hook string) int
	// Qdisc returns the live egress scheduler (nil = none installed).
	Qdisc func() qos.Qdisc
}

// Applier is the control plane's repair surface: the reconciler decides
// *what* diverged, the system decides *how* to reapply it (recompiling
// rules, re-registering kernel connections, re-steering flows).
type Applier interface {
	ReinstallRules(rules []RuleRecord) error
	ReinstallQdisc(q QdiscRecord) error
	RestoreConn(rec ConnRecord, id uint64) error
	RepairSteering(rec ConnRecord, id uint64) error
}

// Action is one repair the reconciler applied.
type Action struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// Report is the outcome of one Restart: what the journal said, what
// diverged, what was repaired, and whether the invariants hold now.
type Report struct {
	Entries  int `json:"entries"`  // journal length replayed
	Rules    int `json:"rules"`    // intended rule count
	Conns    int `json:"conns"`    // intended live connections
	Stale    int `json:"stale"`    // pre-epoch connections ignored
	Partial  int `json:"partial"`  // conn setups the crash interrupted
	Rejected int `json:"rejected"` // mutations refused during the outage

	Divergences  []string          `json:"divergences,omitempty"`
	Actions      []Action          `json:"actions,omitempty"`
	Invariants   []InvariantResult `json:"invariants"`
	InvariantsOK bool              `json:"invariants_ok"`
	// Clean is true when the post-repair re-diff found nothing: live state
	// matches journaled intent exactly.
	Clean        bool         `json:"clean"`
	RecoveryTime sim.Duration `json:"recovery_ps"`
}

// divergence is one intended-vs-live mismatch, with enough structure for
// the repair dispatch.
type divergence struct {
	kind   string // rules | qdisc | nic.program | conn.kernel | conn.ring | conn.steer
	detail string
	conn   *IntentConn // set for conn.* kinds
	dir    nic.Direction
}

// Restart brings the control plane back: replays the journal into intent,
// diffs against live state, repairs divergence through the applier
// (preferring the NIC's whole-config last-good snapshot when NIC state is
// what diverged), re-diffs to prove convergence, and runs the invariant
// checker. The returned report is also retained for LastReport.
func (m *Manager) Restart(now sim.Time, live Live, ap Applier) (*Report, error) {
	// Only this outage's rejections: the lifetime counter minus its value
	// when the outage began (zero on a cold-start Restart with no Crash).
	rejected := m.RejectedWhileDown - m.rejectedAtCrash
	m.rejectedAtCrash = m.RejectedWhileDown
	m.down = false
	m.Restarts++

	entries := m.journal.Entries()
	in, err := Replay(entries)
	if err != nil {
		return nil, err
	}
	m.ReplayedEntries += uint64(len(entries))
	m.StaleConns += uint64(len(in.Stale))
	m.span(now, "replay", fmt.Sprintf("%d entries -> %d rules, %d conns, %d stale", len(entries), len(in.Rules), len(in.Conns), len(in.Stale)))

	rep := &Report{
		Entries:  len(entries),
		Rules:    len(in.Rules),
		Conns:    len(in.Conns),
		Stale:    len(in.Stale),
		Partial:  len(in.Incomplete),
		Rejected: int(rejected),
	}

	divs := diff(in, live)
	m.DivergencesFound += uint64(len(divs))
	for _, d := range divs {
		rep.Divergences = append(rep.Divergences, d.kind+": "+d.detail)
	}

	rep.Actions = m.repair(now, in, live, ap, divs)
	m.RepairsApplied += uint64(len(rep.Actions))

	rep.Clean = len(diff(in, live)) == 0
	rep.Invariants = CheckInvariants(m.journal, in, live)
	rep.InvariantsOK = true
	for _, iv := range rep.Invariants {
		if !iv.OK {
			rep.InvariantsOK = false
			m.InvariantFailures++
		}
	}
	m.span(now, "repair", fmt.Sprintf("%d divergences, %d actions, clean=%v", len(divs), len(rep.Actions), rep.Clean))
	m.span(now, "invariants", fmt.Sprintf("ok=%v", rep.InvariantsOK))

	rep.RecoveryTime = sim.Duration(len(entries))*replayCostPerEntry + sim.Duration(len(rep.Actions))*repairCostPerAct
	m.LastRecovery = rep.RecoveryTime
	m.lastReport = rep
	return rep, nil
}

// diff computes intended-vs-live divergences in deterministic order:
// rules, qdisc, NIC programs, then connections sorted by id.
func diff(in *Intent, live Live) []divergence {
	var out []divergence

	for _, hook := range []string{"INPUT", "OUTPUT"} {
		want := len(in.RulesFor(hook))
		got := 0
		if live.RuleCount != nil {
			got = live.RuleCount(hook)
		}
		if want != got {
			out = append(out, divergence{kind: "rules", detail: fmt.Sprintf("%s: intended %d, live %d", hook, want, got)})
		}
	}

	if in.Qdisc != nil {
		var q qos.Qdisc
		if live.Qdisc != nil {
			q = live.Qdisc()
		}
		switch {
		case q == nil:
			out = append(out, divergence{kind: "qdisc", detail: fmt.Sprintf("intended %s, live none", in.Qdisc.Kind)})
		case q.Name() != in.Qdisc.Kind:
			out = append(out, divergence{kind: "qdisc", detail: fmt.Sprintf("intended %s, live %s", in.Qdisc.Kind, q.Name())})
		}
	}

	if live.RingPerConn && live.NIC != nil {
		// On NIC-resident-policy architectures the intended rules compile
		// into pipeline chains: INPUT guards ingress, OUTPUT guards egress.
		hooks := [2]string{nic.Ingress: "INPUT", nic.Egress: "OUTPUT"}
		for dir := nic.Ingress; dir <= nic.Egress; dir++ {
			if len(in.RulesFor(hooks[dir])) == 0 {
				continue
			}
			mach := live.NIC.Machine(dir)
			if mach == nil {
				out = append(out, divergence{kind: "nic.program", dir: dir, detail: fmt.Sprintf("%s chain intended, none loaded", hooks[dir])})
				continue
			}
			if err := overlay.Verify(mach.Program()); err != nil {
				out = append(out, divergence{kind: "nic.program", dir: dir, detail: fmt.Sprintf("%s chain fails verification: %v", hooks[dir], err)})
			}
		}
	}

	ids := make([]uint64, 0, len(in.Conns))
	for id := range in.Conns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		c := in.Conns[id]
		if live.Kern != nil {
			if _, ok := live.Kern.Conn(id); !ok {
				out = append(out, divergence{kind: "conn.kernel", conn: c, detail: fmt.Sprintf("conn %d missing from kernel table", id)})
				continue
			}
		}
		if live.RingPerConn && live.NIC != nil {
			if _, ok := live.NIC.Conn(id); !ok {
				// The ring memory is application-owned; with the rings gone
				// there is nothing the control plane can restore.
				out = append(out, divergence{kind: "conn.ring", conn: c, detail: fmt.Sprintf("conn %d has no NIC ring", id)})
				continue
			}
			if steered, ok := live.NIC.SteeredConn(c.Rec.Flow); !ok || steered != id {
				out = append(out, divergence{kind: "conn.steer", conn: c, detail: fmt.Sprintf("conn %d flow not steered to its ring", id)})
			}
		}
	}
	return out
}

// repair applies one pass of fixes for the given divergences. NIC-state
// divergence prefers restoring the whole last-good config snapshot (one
// action, also heals steering); policy divergence falls back to
// recompiling from journaled intent.
func (m *Manager) repair(now sim.Time, in *Intent, live Live, ap Applier, divs []divergence) []Action {
	var acts []Action
	act := func(kind, detail string) {
		acts = append(acts, Action{Kind: kind, Detail: detail})
		m.span(now, "repair."+kind, detail)
	}

	var nicDiverged, rulesDiverged, qdiscDiverged bool
	for _, d := range divs {
		switch d.kind {
		case "nic.program", "conn.steer":
			nicDiverged = true
		case "rules":
			rulesDiverged = true
		case "qdisc":
			qdiscDiverged = true
		}
	}

	restored := false
	if nicDiverged && live.NIC != nil {
		if snap := live.NIC.LastGoodConfig(); snap != nil {
			if _, err := live.NIC.RestoreConfig(snap); err == nil {
				act("nic.restore_config", fmt.Sprintf("last-good snapshot from t=%v", snap.TakenAt))
				restored = true
			} else {
				act("nic.restore_config.failed", err.Error())
			}
		}
	}

	if ap != nil {
		if rulesDiverged || (nicDiverged && !restored) {
			if err := ap.ReinstallRules(in.Rules); err == nil {
				act("rules.reinstall", fmt.Sprintf("%d rules recompiled", len(in.Rules)))
			} else {
				act("rules.reinstall.failed", err.Error())
			}
		}
		if qdiscDiverged && in.Qdisc != nil {
			if err := ap.ReinstallQdisc(*in.Qdisc); err == nil {
				act("qdisc.reinstall", in.Qdisc.Kind)
			} else {
				act("qdisc.reinstall.failed", err.Error())
			}
		}
		for _, d := range divs {
			switch d.kind {
			case "conn.kernel":
				if err := ap.RestoreConn(d.conn.Rec, d.conn.ID); err == nil {
					act("conn.restore", fmt.Sprintf("conn %d re-registered", d.conn.ID))
				} else {
					act("conn.restore.failed", err.Error())
				}
			case "conn.steer":
				if restored {
					// The snapshot restore re-steered every flow already.
					continue
				}
				if err := ap.RepairSteering(d.conn.Rec, d.conn.ID); err == nil {
					act("conn.steer", fmt.Sprintf("conn %d re-steered", d.conn.ID))
				} else {
					act("conn.steer.failed", err.Error())
				}
			}
		}
	}
	return acts
}
