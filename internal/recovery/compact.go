package recovery

import (
	"fmt"
	"os"
	"sort"
)

// Compact folds a journal into the minimal entry sequence that replays to
// the same reconciled intent: the surviving rule list in order, the final
// qdisc configuration, and one open/bind pair per live bound connection.
// Aborted pairs, flushed rules, superseded qdiscs, closed connections,
// incomplete setups and pre-epoch (stale) connections are dropped — they
// contribute nothing to intent, only to journal length. The result passes
// Verify and Replay(Compact(e)) equals Replay(e) on rules, qdisc and live
// connections.
func Compact(entries []Entry) ([]Entry, error) {
	in, err := Replay(entries)
	if err != nil {
		return nil, fmt.Errorf("recovery: compact: %w", err)
	}
	var out []Entry
	seq := uint64(0)
	next := func(e Entry) {
		seq++
		e.Seq = seq
		out = append(out, e)
	}
	for _, r := range in.Rules {
		rr := r
		next(Entry{Op: OpRuleAppend, Rule: &rr})
	}
	if in.Qdisc != nil {
		q := *in.Qdisc
		next(Entry{Op: OpQdiscSet, Qdisc: &q})
	}
	ids := make([]uint64, 0, len(in.Conns))
	for id := range in.Conns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		c := in.Conns[id]
		rec := c.Rec
		next(Entry{Op: OpConnOpen, Conn: &rec})
		next(Entry{Op: OpConnBind, Ref: seq, ConnID: id})
	}
	return out, nil
}

// CompactFile rewrites a persisted journal in place with its compacted form
// when it holds at least threshold entries; below the threshold it is left
// untouched. The rewrite is crash-safe: the compacted journal is written to
// a temporary sibling, fsynced, and renamed over the original, so a SIGKILL
// at any instant leaves either the old journal or the new one — never a torn
// mix. A leftover temporary from an earlier crash is simply overwritten. It
// returns the entry counts before and after (equal when below threshold).
func CompactFile(path string, threshold int) (before, after int, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil
		}
		return 0, 0, err
	}
	entries, err := Decode(f)
	f.Close()
	if err != nil {
		return 0, 0, fmt.Errorf("recovery: compact %s: %w", path, err)
	}
	before = len(entries)
	if threshold <= 0 || before < threshold {
		return before, before, nil
	}
	compacted, err := Compact(entries)
	if err != nil {
		return before, 0, err
	}
	tmp := path + ".compact"
	out, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return before, 0, err
	}
	for _, e := range compacted {
		line, err := EncodeEntry(e)
		if err != nil {
			out.Close()
			os.Remove(tmp)
			return before, 0, err
		}
		if _, err := out.Write(line); err != nil {
			out.Close()
			os.Remove(tmp)
			return before, 0, err
		}
	}
	if err := out.Sync(); err != nil {
		out.Close()
		os.Remove(tmp)
		return before, 0, err
	}
	if err := out.Close(); err != nil {
		os.Remove(tmp)
		return before, 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return before, 0, err
	}
	return before, len(compacted), nil
}
