package sniff

import (
	"io"

	"norman/internal/telemetry"
)

// RegisterMetrics exposes the tap's capture accounting on a registry.
func (t *Tap) RegisterMetrics(r *telemetry.Registry, labels telemetry.Labels) {
	r.Counter(telemetry.Desc{Layer: "sniff", Name: "seen", Help: "packets offered to the tap by its interposition point", Unit: "packets"},
		labels, func() uint64 { return t.seen })
	r.Counter(telemetry.Desc{Layer: "sniff", Name: "matched", Help: "packets that matched the tap's filter expression", Unit: "packets"},
		labels, func() uint64 { return t.matched })
	r.Counter(telemetry.Desc{Layer: "sniff", Name: "evicted", Help: "matched records evicted because the capture buffer was full", Unit: "packets"},
		labels, func() uint64 { return t.evicted })
	r.Gauge(telemetry.Desc{Layer: "sniff", Name: "retained", Help: "records currently held in the capture buffer", Unit: "packets"},
		labels, func() float64 { return float64(len(t.records)) })
}

// WritePcap writes the tap's retained records as a classic pcap stream —
// shorthand for WritePcap(w, t.Records()).
func (t *Tap) WritePcap(w io.Writer) error { return WritePcap(w, t.records) }
