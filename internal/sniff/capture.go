package sniff

import (
	"encoding/binary"
	"fmt"
	"io"

	"norman/internal/packet"
	"norman/internal/sim"
)

// Record is one captured packet with its virtual timestamp and — when the
// tap sits at an OS-integrated interposition point — trusted process
// attribution, which is what lets the debugging scenario name the buggy
// process instead of just the buggy wire traffic.
type Record struct {
	At  sim.Time
	Pkt *packet.Packet
}

// Attribution renders the record's process attribution, or "?" when the
// capturing layer had no process view.
func (r Record) Attribution() string {
	m := r.Pkt.Meta
	if !m.TrustedMeta {
		return "?"
	}
	return fmt.Sprintf("uid=%d pid=%d cmd=%s", m.UID, m.PID, m.Command)
}

// Tap collects packets mirrored to it by an interposition layer, applying a
// filter expression and keeping at most limit records (oldest evicted).
type Tap struct {
	expr    *Expr
	records []Record
	limit   int
	seen    uint64
	matched uint64
	evicted uint64
}

// NewTap creates a tap with the given compiled filter (nil = match all) and
// record limit.
func NewTap(expr *Expr, limit int) *Tap {
	if limit <= 0 {
		limit = 65536
	}
	return &Tap{expr: expr, limit: limit}
}

// Offer presents a packet to the tap; the tap clones matching packets so
// later mutation by the dataplane does not corrupt the capture.
func (t *Tap) Offer(p *packet.Packet, now sim.Time) {
	t.seen++
	if !t.expr.Match(p) {
		return
	}
	t.matched++
	if len(t.records) >= t.limit {
		copy(t.records, t.records[1:])
		t.records = t.records[:len(t.records)-1]
		t.evicted++
	}
	t.records = append(t.records, Record{At: now, Pkt: p.Clone()})
}

// Records returns the retained captures in arrival order.
func (t *Tap) Records() []Record { return t.records }

// Counters returns packets seen, matched and evicted.
func (t *Tap) Counters() (seen, matched, evicted uint64) {
	return t.seen, t.matched, t.evicted
}

// pcap constants: classic little-endian pcap, Ethernet link type.
const (
	pcapMagic    = 0xa1b2c3d4
	pcapVerMajor = 2
	pcapVerMinor = 4
	pcapSnapLen  = 65535
	pcapLinkEth  = 1
)

// WritePcap writes the records as a classic pcap file (microsecond
// timestamps, Ethernet link type) readable by tcpdump/wireshark.
func WritePcap(w io.Writer, records []Record) error {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:], pcapVerMajor)
	binary.LittleEndian.PutUint16(hdr[6:], pcapVerMinor)
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(hdr[16:], pcapSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:], pcapLinkEth)
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("sniff: writing pcap header: %w", err)
	}
	rec := make([]byte, 16)
	for i := range records {
		frame := records[i].Pkt.Marshal()
		usec := uint64(records[i].At) / uint64(sim.Microsecond)
		binary.LittleEndian.PutUint32(rec[0:], uint32(usec/1e6))
		binary.LittleEndian.PutUint32(rec[4:], uint32(usec%1e6))
		n := len(frame)
		if n > pcapSnapLen {
			n = pcapSnapLen
		}
		binary.LittleEndian.PutUint32(rec[8:], uint32(n))
		binary.LittleEndian.PutUint32(rec[12:], uint32(len(frame)))
		if _, err := w.Write(rec); err != nil {
			return fmt.Errorf("sniff: writing pcap record: %w", err)
		}
		if _, err := w.Write(frame[:n]); err != nil {
			return fmt.Errorf("sniff: writing pcap frame: %w", err)
		}
	}
	return nil
}

// ReadPcap parses a pcap file written by WritePcap (little-endian classic
// format) back into records; used by tests to validate round-trips.
func ReadPcap(r io.Reader) ([]Record, error) {
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("sniff: reading pcap header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != pcapMagic {
		return nil, fmt.Errorf("sniff: bad pcap magic")
	}
	var out []Record
	rec := make([]byte, 16)
	for {
		if _, err := io.ReadFull(r, rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("sniff: reading pcap record: %w", err)
		}
		sec := binary.LittleEndian.Uint32(rec[0:])
		usec := binary.LittleEndian.Uint32(rec[4:])
		incl := binary.LittleEndian.Uint32(rec[8:])
		frame := make([]byte, incl)
		if _, err := io.ReadFull(r, frame); err != nil {
			return nil, fmt.Errorf("sniff: reading pcap frame: %w", err)
		}
		p, err := packet.Unmarshal(frame)
		if err != nil {
			return nil, fmt.Errorf("sniff: parsing captured frame: %w", err)
		}
		at := sim.Time(uint64(sec)*uint64(sim.Second) + uint64(usec)*uint64(sim.Microsecond))
		out = append(out, Record{At: at, Pkt: p})
	}
}
