// Package sniff is the reproduction's tcpdump: a capture tap that an
// interposition layer feeds with mirrored packets, a pcap-format writer so
// captures are consumable by standard tools, and a filter expression
// language covering the tcpdump subset the paper's debugging scenario needs
// plus Norman's process-view extensions (uid/pid/cmd matching — expressible
// only where the interposition layer is OS-integrated).
package sniff

import (
	"fmt"
	"strconv"
	"strings"

	"norman/internal/packet"
)

// Expr is a compiled capture filter.
type Expr struct {
	root         node
	src          string
	usesProcView bool
}

// Match reports whether the expression selects the packet.
func (e *Expr) Match(p *packet.Packet) bool {
	if e == nil || e.root == nil {
		return true
	}
	return e.root.match(p)
}

// String returns the original expression source.
func (e *Expr) String() string { return e.src }

// RequiresProcessView reports whether the expression uses uid/pid/cmd
// primitives, which only an OS-integrated interposition layer can evaluate.
func (e *Expr) RequiresProcessView() bool { return e.usesProcView }

type node interface {
	match(p *packet.Packet) bool
}

type andNode struct{ l, r node }
type orNode struct{ l, r node }
type notNode struct{ n node }
type predNode struct {
	fn func(p *packet.Packet) bool
}

func (n andNode) match(p *packet.Packet) bool  { return n.l.match(p) && n.r.match(p) }
func (n orNode) match(p *packet.Packet) bool   { return n.l.match(p) || n.r.match(p) }
func (n notNode) match(p *packet.Packet) bool  { return !n.n.match(p) }
func (n predNode) match(p *packet.Packet) bool { return n.fn(p) }

// Parse compiles a tcpdump-style expression. The empty string matches
// everything. Supported primitives:
//
//	[src|dst] host <ip>        [src|dst] net <ip>/<bits>
//	[src|dst] port <n>         portrange <lo>-<hi>
//	tcp | udp | arp | ip | icmp
//	greater <bytes> | less <bytes>
//	uid <n> | pid <n> | cmd <name>       (Norman process-view extensions)
//
// combined with and/or/not and parentheses; and binds tighter than or.
func Parse(src string) (*Expr, error) {
	toks := tokenize(src)
	if len(toks) == 0 {
		return &Expr{src: src}, nil
	}
	p := &parser{toks: toks}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("sniff: trailing tokens at %q", strings.Join(p.toks[p.pos:], " "))
	}
	return &Expr{root: root, src: src, usesProcView: p.usesProcView}, nil
}

// MustParse is Parse panicking on error; for tests and constant filters.
func MustParse(src string) *Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

func tokenize(src string) []string {
	src = strings.ReplaceAll(src, "(", " ( ")
	src = strings.ReplaceAll(src, ")", " ) ")
	return strings.Fields(src)
}

type parser struct {
	toks         []string
	pos          int
	usesProcView bool
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

func (p *parser) parseOr() (node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek() == "or" {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = orNode{l, r}
	}
	return l, nil
}

func (p *parser) parseAnd() (node, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peek() == "and" {
		p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = andNode{l, r}
	}
	return l, nil
}

func (p *parser) parseNot() (node, error) {
	if p.peek() == "not" {
		p.next()
		n, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return notNode{n}, nil
	}
	return p.parsePrimitive()
}

func (p *parser) parsePrimitive() (node, error) {
	tok := p.next()
	switch tok {
	case "":
		return nil, fmt.Errorf("sniff: unexpected end of expression")
	case "(":
		n, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, fmt.Errorf("sniff: missing )")
		}
		return n, nil
	case "tcp":
		return protoPred(packet.ProtoTCP), nil
	case "udp":
		return protoPred(packet.ProtoUDP), nil
	case "icmp":
		return protoPred(packet.ProtoICMP), nil
	case "ip":
		return predNode{func(p *packet.Packet) bool { return p.IP != nil }}, nil
	case "arp":
		return predNode{func(p *packet.Packet) bool { return p.ARP != nil }}, nil
	case "src", "dst":
		dir := tok
		kind := p.next()
		switch kind {
		case "host":
			return p.hostPred(dir)
		case "net":
			return p.netPred(dir)
		case "port":
			return p.portPred(dir)
		default:
			return nil, fmt.Errorf("sniff: %s must be followed by host/net/port, got %q", dir, kind)
		}
	case "host":
		return p.hostPred("")
	case "net":
		return p.netPred("")
	case "port":
		return p.portPred("")
	case "portrange":
		arg := p.next()
		lo, hi, ok := strings.Cut(arg, "-")
		if !ok {
			return nil, fmt.Errorf("sniff: portrange wants lo-hi, got %q", arg)
		}
		l, err1 := strconv.ParseUint(lo, 10, 16)
		h, err2 := strconv.ParseUint(hi, 10, 16)
		if err1 != nil || err2 != nil || l > h {
			return nil, fmt.Errorf("sniff: bad portrange %q", arg)
		}
		return predNode{func(p *packet.Packet) bool {
			sp, dp, ok := pktPorts(p)
			return ok && ((uint64(sp) >= l && uint64(sp) <= h) || (uint64(dp) >= l && uint64(dp) <= h))
		}}, nil
	case "greater", "less":
		n, err := strconv.Atoi(p.next())
		if err != nil {
			return nil, fmt.Errorf("sniff: %s wants a byte count", tok)
		}
		if tok == "greater" {
			return predNode{func(p *packet.Packet) bool { return p.FrameLen() >= n }}, nil
		}
		return predNode{func(p *packet.Packet) bool { return p.FrameLen() <= n }}, nil
	case "uid", "pid":
		p.usesProcView = true
		n, err := strconv.ParseUint(p.next(), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("sniff: %s wants a number", tok)
		}
		v := uint32(n)
		if tok == "uid" {
			return predNode{func(p *packet.Packet) bool { return p.Meta.TrustedMeta && p.Meta.UID == v }}, nil
		}
		return predNode{func(p *packet.Packet) bool { return p.Meta.TrustedMeta && p.Meta.PID == v }}, nil
	case "cmd":
		p.usesProcView = true
		name := p.next()
		if name == "" {
			return nil, fmt.Errorf("sniff: cmd wants a command name")
		}
		return predNode{func(p *packet.Packet) bool { return p.Meta.TrustedMeta && p.Meta.Command == name }}, nil
	default:
		return nil, fmt.Errorf("sniff: unknown primitive %q", tok)
	}
}

func (p *parser) hostPred(dir string) (node, error) {
	ip, err := parseIP(p.next())
	if err != nil {
		return nil, err
	}
	return predNode{func(pkt *packet.Packet) bool {
		src, dst, ok := addrs(pkt)
		if !ok {
			return false
		}
		switch dir {
		case "src":
			return src == ip
		case "dst":
			return dst == ip
		default:
			return src == ip || dst == ip
		}
	}}, nil
}

func (p *parser) netPred(dir string) (node, error) {
	arg := p.next()
	ipStr, bitsStr, ok := strings.Cut(arg, "/")
	if !ok {
		return nil, fmt.Errorf("sniff: net wants ip/bits, got %q", arg)
	}
	ip, err := parseIP(ipStr)
	if err != nil {
		return nil, err
	}
	bits, err := strconv.Atoi(bitsStr)
	if err != nil || bits < 0 || bits > 32 {
		return nil, fmt.Errorf("sniff: bad prefix length %q", bitsStr)
	}
	return predNode{func(pkt *packet.Packet) bool {
		src, dst, ok := addrs(pkt)
		if !ok {
			return false
		}
		switch dir {
		case "src":
			return src.InPrefix(ip, bits)
		case "dst":
			return dst.InPrefix(ip, bits)
		default:
			return src.InPrefix(ip, bits) || dst.InPrefix(ip, bits)
		}
	}}, nil
}

func (p *parser) portPred(dir string) (node, error) {
	n, err := strconv.ParseUint(p.next(), 10, 16)
	if err != nil {
		return nil, fmt.Errorf("sniff: port wants a number")
	}
	want := uint16(n)
	return predNode{func(pkt *packet.Packet) bool {
		sp, dp, ok := pktPorts(pkt)
		if !ok {
			return false
		}
		switch dir {
		case "src":
			return sp == want
		case "dst":
			return dp == want
		default:
			return sp == want || dp == want
		}
	}}, nil
}

func protoPred(proto uint8) node {
	return predNode{func(p *packet.Packet) bool { return p.IP != nil && p.IP.Proto == proto }}
}

func addrs(p *packet.Packet) (src, dst packet.IPv4, ok bool) {
	if p.IP != nil {
		return p.IP.Src, p.IP.Dst, true
	}
	if p.ARP != nil {
		return p.ARP.SenderIP, p.ARP.TargetIP, true
	}
	return 0, 0, false
}

func pktPorts(p *packet.Packet) (sp, dp uint16, ok bool) {
	switch {
	case p.UDP != nil:
		return p.UDP.SrcPort, p.UDP.DstPort, true
	case p.TCP != nil:
		return p.TCP.SrcPort, p.TCP.DstPort, true
	}
	return 0, 0, false
}

func parseIP(s string) (packet.IPv4, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("sniff: bad IPv4 address %q", s)
	}
	var octets [4]byte
	for i, part := range parts {
		v, err := strconv.ParseUint(part, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("sniff: bad IPv4 address %q", s)
		}
		octets[i] = byte(v)
	}
	return packet.MakeIP(octets[0], octets[1], octets[2], octets[3]), nil
}
