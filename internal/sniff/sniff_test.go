package sniff

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/telemetry"
)

func udp(src, dst packet.IPv4, sport, dport uint16) *packet.Packet {
	return packet.NewUDP(packet.MAC{1}, packet.MAC{2}, src, dst, sport, dport, 32)
}

func TestExprPrimitives(t *testing.T) {
	p := udp(packet.MakeIP(10, 0, 0, 1), packet.MakeIP(10, 0, 0, 2), 4000, 53)
	arp := packet.NewARPRequest(packet.MAC{}, packet.MakeIP(10, 0, 0, 1), packet.MakeIP(10, 0, 0, 9))

	cases := []struct {
		expr string
		pkt  *packet.Packet
		want bool
	}{
		{"", p, true},
		{"udp", p, true},
		{"tcp", p, false},
		{"arp", arp, true},
		{"arp", p, false},
		{"ip", p, true},
		{"host 10.0.0.1", p, true},
		{"host 10.0.0.3", p, false},
		{"src host 10.0.0.1", p, true},
		{"dst host 10.0.0.1", p, false},
		{"net 10.0.0.0/8", p, true},
		{"net 11.0.0.0/8", p, false},
		{"port 53", p, true},
		{"dst port 53", p, true},
		{"src port 53", p, false},
		{"portrange 50-60", p, true},
		{"portrange 60-70", p, false},
		{"greater 60", p, true},
		{"less 60", p, false},
		{"udp and port 53", p, true},
		{"udp and port 54", p, false},
		{"tcp or port 53", p, true},
		{"not tcp", p, true},
		{"not ( udp and port 53 )", p, false},
		{"host 10.0.0.1 and ( tcp or udp )", p, true},
		// ARP addresses are visible to host/net primitives.
		{"host 10.0.0.9", arp, true},
	}
	for _, c := range cases {
		e, err := Parse(c.expr)
		if err != nil {
			t.Fatalf("parse %q: %v", c.expr, err)
		}
		if got := e.Match(c.pkt); got != c.want {
			t.Errorf("%q = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestExprProcessView(t *testing.T) {
	p := udp(1, 2, 3, 4)
	p.Meta.UID = 1001
	p.Meta.PID = 77
	p.Meta.Command = "postgres"

	e := MustParse("uid 1001")
	if !e.RequiresProcessView() {
		t.Fatal("uid expressions need a process view")
	}
	if e.Match(p) {
		t.Fatal("untrusted metadata must not match")
	}
	p.Meta.TrustedMeta = true
	if !e.Match(p) {
		t.Fatal("trusted uid should match")
	}
	if !MustParse("cmd postgres").Match(p) {
		t.Fatal("cmd should match")
	}
	if !MustParse("pid 77").Match(p) {
		t.Fatal("pid should match")
	}
	if MustParse("udp and port 4").RequiresProcessView() {
		t.Fatal("plain expressions do not need a process view")
	}
}

func TestExprErrors(t *testing.T) {
	for _, bad := range []string{
		"frobnicate", "port", "host 1.2.3", "net 10.0.0.0",
		"portrange 10", "( udp", "udp and", "src banana 1",
		"uid abc", "port 53 extra stuff",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("%q should fail to parse", bad)
		}
	}
}

func TestTapFilterAndEviction(t *testing.T) {
	tap := NewTap(MustParse("port 53"), 3)
	for i := 0; i < 5; i++ {
		tap.Offer(udp(1, 2, uint16(1000+i), 53), sim.Time(i))
	}
	tap.Offer(udp(1, 2, 9, 99), 10) // filtered out
	seen, matched, evicted := tap.Counters()
	if seen != 6 || matched != 5 || evicted != 2 {
		t.Fatalf("counters: %d %d %d", seen, matched, evicted)
	}
	recs := tap.Records()
	if len(recs) != 3 {
		t.Fatalf("retained %d", len(recs))
	}
	if recs[0].Pkt.UDP.SrcPort != 1002 {
		t.Fatalf("oldest retained should be #2, got %d", recs[0].Pkt.UDP.SrcPort)
	}
}

func TestTapClonesPackets(t *testing.T) {
	tap := NewTap(nil, 10)
	p := udp(1, 2, 3, 4)
	tap.Offer(p, 0)
	p.UDP.SrcPort = 999 // mutate after capture
	if tap.Records()[0].Pkt.UDP.SrcPort != 3 {
		t.Fatal("tap must deep-copy captured packets")
	}
}

func TestAttribution(t *testing.T) {
	p := udp(1, 2, 3, 4)
	r := Record{Pkt: p}
	if r.Attribution() != "?" {
		t.Fatalf("untrusted: %q", r.Attribution())
	}
	p.Meta.TrustedMeta = true
	p.Meta.UID, p.Meta.PID, p.Meta.Command = 5, 6, "x"
	if r.Attribution() != "uid=5 pid=6 cmd=x" {
		t.Fatalf("attribution: %q", r.Attribution())
	}
}

func TestPcapRoundTrip(t *testing.T) {
	recs := []Record{
		{At: sim.Time(3 * sim.Microsecond), Pkt: udp(packet.MakeIP(10, 0, 0, 1), packet.MakeIP(10, 0, 0, 2), 1234, 53)},
		{At: sim.Time(2 * sim.Second), Pkt: packet.NewARPRequest(packet.MAC{0xaa}, 1, 2)},
	}
	recs[0].Pkt.Payload = []byte("dns-query-ish payload contents!!")
	recs[0].Pkt.PayloadLen = len(recs[0].Pkt.Payload)

	var buf bytes.Buffer
	if err := WritePcap(&buf, recs); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadPcap(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d records", len(got))
	}
	if got[0].Pkt.UDP == nil || got[0].Pkt.UDP.DstPort != 53 {
		t.Fatal("udp record lost")
	}
	if !bytes.Equal(got[0].Pkt.Payload, recs[0].Pkt.Payload) {
		t.Fatal("payload lost")
	}
	if got[1].Pkt.ARP == nil {
		t.Fatal("arp record lost")
	}
	// Timestamps survive at microsecond resolution.
	if got[1].At != recs[1].At {
		t.Fatalf("timestamp: %v vs %v", got[1].At, recs[1].At)
	}
}

// Property: any set of captured UDP packets survives a pcap round trip with
// ports and payload sizes intact.
func TestPcapRoundTripQuick(t *testing.T) {
	f := func(ports []uint16, sizes []uint8) bool {
		n := len(ports)
		if len(sizes) < n {
			n = len(sizes)
		}
		if n > 16 {
			n = 16
		}
		recs := make([]Record, 0, n)
		for i := 0; i < n; i++ {
			p := udp(1, 2, ports[i], 53)
			p.PayloadLen = int(sizes[i])
			p.Payload = bytes.Repeat([]byte{byte(i)}, int(sizes[i]))
			recs = append(recs, Record{At: sim.Time(i) * sim.Time(sim.Microsecond), Pkt: p})
		}
		var buf bytes.Buffer
		if err := WritePcap(&buf, recs); err != nil {
			return false
		}
		got, err := ReadPcap(&buf)
		if err != nil || len(got) != n {
			return false
		}
		for i := range got {
			if got[i].Pkt.UDP == nil || got[i].Pkt.UDP.SrcPort != ports[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestTapEvictionAccountingInvariant churns a small tap past its limit and
// checks the conservation law the telemetry layer reports: every matched
// packet is either still retained or has been evicted, at every step —
// including the boundary where the buffer is exactly full.
func TestTapEvictionAccountingInvariant(t *testing.T) {
	const limit = 4
	tap := NewTap(MustParse("udp"), limit)
	reg := telemetry.NewRegistry()
	tap.RegisterMetrics(reg, telemetry.Labels{"tap": "test"})

	for i := 0; i < 3*limit; i++ {
		tap.Offer(udp(1, 2, uint16(i), 53), sim.Time(i))
		seen, matched, evicted := tap.Counters()
		if got := uint64(len(tap.Records())) + evicted; matched != got {
			t.Fatalf("step %d: matched=%d but retained+evicted=%d", i, matched, got)
		}
		if seen != uint64(i+1) {
			t.Fatalf("step %d: seen=%d", i, seen)
		}
		// No eviction until the buffer is past full.
		if i < limit && evicted != 0 {
			t.Fatalf("step %d: premature eviction (%d)", i, evicted)
		}
		if i >= limit && evicted != uint64(i+1-limit) {
			t.Fatalf("step %d: evicted=%d, want %d", i, evicted, i+1-limit)
		}
	}
	if got := len(tap.Records()); got != limit {
		t.Fatalf("retained %d, want %d", got, limit)
	}

	// The registry closures read the same live accounting.
	prom := reg.RenderPrometheus()
	for _, want := range []string{
		`norman_sniff_matched{tap="test"} 12`,
		`norman_sniff_evicted{tap="test"} 8`,
		`norman_sniff_retained{tap="test"} 4`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus render missing %q:\n%s", want, prom)
		}
	}
}

// TestTapWritePcap pins the Tap-level pcap shorthand: the stream it writes
// round-trips through ReadPcap with the retained records intact.
func TestTapWritePcap(t *testing.T) {
	tap := NewTap(nil, 8)
	for i := 0; i < 3; i++ {
		tap.Offer(udp(1, 2, uint16(100+i), 53), sim.Time(i))
	}
	var buf bytes.Buffer
	if err := tap.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("round-tripped %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.Pkt.UDP == nil || r.Pkt.UDP.SrcPort != uint16(100+i) {
			t.Fatalf("record %d corrupted: %+v", i, r.Pkt)
		}
	}
}
