package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): one # HELP / # TYPE pair per metric
// name, then one sample line per label set. Output is sorted by metric key,
// so two registries with the same contents render byte-identically — the
// property the cross-worker-width determinism tests pin.
//
// Histograms expose the summary-style derived series a scrape actually
// wants from a latency distribution: _count, _sum (seconds), and fixed
// quantile samples interpolated by stats.Histogram.
func (r *Registry) WritePrometheus(w io.Writer) error {
	metrics := r.snapshot()
	lastName := ""
	for _, m := range metrics {
		name := m.desc.FullName()
		if name != lastName {
			unit := ""
			if m.desc.Unit != "" {
				unit = " [" + m.desc.Unit + "]"
			}
			if _, err := fmt.Fprintf(w, "# HELP %s %s%s\n# TYPE %s %s\n",
				name, m.desc.Help, unit, name, promType(m.desc.Kind)); err != nil {
				return err
			}
			lastName = name
		}
		if err := writePromSample(w, m); err != nil {
			return err
		}
	}
	return nil
}

// promType maps a Kind to its exposition type; histograms render as
// summaries because we export interpolated quantiles, not cumulative
// buckets.
func promType(k Kind) string {
	if k == KindHistogram {
		return "summary"
	}
	return k.String()
}

func writePromSample(w io.Writer, m *metric) error {
	name := m.desc.FullName()
	if m.hist == nil {
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, m.labels.render(), fmtValue(m.value()))
		return err
	}
	h := m.hist()
	if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, m.labels.render(), h.Count()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, m.labels.render(), fmtValue(h.Sum().Seconds())); err != nil {
		return err
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		l := m.labels.clone()
		if l == nil {
			l = Labels{}
		}
		l["quantile"] = fmtValue(q)
		if _, err := fmt.Fprintf(w, "%s%s %s\n", name, l.render(), fmtValue(h.Quantile(q).Seconds())); err != nil {
			return err
		}
	}
	return nil
}

// jsonMetric is the JSON rendering of one metric instance.
type jsonMetric struct {
	Name   string            `json:"name"`
	Layer  string            `json:"layer"`
	Kind   string            `json:"kind"`
	Unit   string            `json:"unit,omitempty"`
	Help   string            `json:"help,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  *float64          `json:"value,omitempty"`
	Count  *uint64           `json:"count,omitempty"`
	P50    *float64          `json:"p50_seconds,omitempty"`
	P99    *float64          `json:"p99_seconds,omitempty"`
}

// WriteJSON renders the registry as a sorted JSON array, one element per
// metric instance — the form nnetstat's live view and scripts consume.
func (r *Registry) WriteJSON(w io.Writer) error {
	metrics := r.snapshot()
	out := make([]jsonMetric, 0, len(metrics))
	for _, m := range metrics {
		jm := jsonMetric{
			Name:   m.desc.FullName(),
			Layer:  m.desc.Layer,
			Kind:   m.desc.Kind.String(),
			Unit:   m.desc.Unit,
			Help:   m.desc.Help,
			Labels: m.labels,
		}
		if m.hist != nil {
			h := m.hist()
			c := h.Count()
			p50, p99 := h.P50().Seconds(), h.P99().Seconds()
			jm.Count, jm.P50, jm.P99 = &c, &p50, &p99
		} else {
			v := m.value()
			jm.Value = &v
		}
		out = append(out, jm)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// RenderPrometheus is WritePrometheus into a string, for the ctl wire.
func (r *Registry) RenderPrometheus() string {
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	return b.String()
}

// RenderJSON is WriteJSON into a string, for the ctl wire.
func (r *Registry) RenderJSON() string {
	var b strings.Builder
	_ = r.WriteJSON(&b)
	return b.String()
}
