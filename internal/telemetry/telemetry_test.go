package telemetry

import (
	"strings"
	"testing"

	"norman/internal/sim"
	"norman/internal/stats"
)

func TestRegistryRenderDeterminism(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		var n uint64 = 7
		// Register out of sorted order; rendering must sort.
		r.Gauge(Desc{Layer: "host", Name: "cpu_busy", Help: "busy", Unit: "seconds"},
			Labels{"arch": "kopi"}, func() float64 { return 1.5 })
		r.Counter(Desc{Layer: "nic", Name: "tx_frames", Help: "frames sent", Unit: "frames"},
			Labels{"arch": "kopi", "fault": "2"}, func() uint64 { return n })
		r.Counter(Desc{Layer: "nic", Name: "tx_frames", Help: "frames sent", Unit: "frames"},
			Labels{"arch": "bypass", "fault": "2"}, func() uint64 { return n + 1 })
		var h stats.Histogram
		h.Observe(10 * sim.Microsecond)
		h.Observe(20 * sim.Microsecond)
		r.Histogram(Desc{Layer: "transport", Name: "rtt", Help: "smoothed rtt", Unit: "seconds"},
			nil, func() stats.Histogram { return h })
		return r
	}
	a, b := build().RenderPrometheus(), build().RenderPrometheus()
	if a != b {
		t.Fatalf("renders differ:\n%s\n---\n%s", a, b)
	}
	for _, want := range []string{
		"# TYPE norman_nic_tx_frames counter",
		`norman_nic_tx_frames{arch="bypass",fault="2"} 8`,
		`norman_nic_tx_frames{arch="kopi",fault="2"} 7`,
		"# TYPE norman_transport_rtt summary",
		"norman_transport_rtt_count 2",
		`norman_transport_rtt{quantile="0.99"}`,
		`norman_host_cpu_busy{arch="kopi"} 1.5`,
	} {
		if !strings.Contains(a, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, a)
		}
	}
	// The bypass instance sorts before kopi (label-rendered key order).
	if strings.Index(a, `arch="bypass"`) > strings.Index(a, `arch="kopi",fault`) {
		t.Errorf("label sets not sorted:\n%s", a)
	}
}

func TestRegistryHasAndLayers(t *testing.T) {
	r := NewRegistry()
	r.Counter(Desc{Layer: "faults", Name: "tx_lost", Help: "h", Unit: "frames"}, nil, func() uint64 { return 0 })
	r.Gauge(Desc{Layer: "mem", Name: "alloc_bytes", Help: "h", Unit: "bytes"}, nil, func() float64 { return 0 })
	if !r.Has("faults_tx_lost") || !r.Has("norman_faults_tx_lost") {
		t.Fatal("Has must accept bare and full names")
	}
	if r.Has("faults_rx_lost") {
		t.Fatal("Has false positive")
	}
	layers := r.Layers()
	if len(layers) != 2 || layers[0] != "faults" || layers[1] != "mem" {
		t.Fatalf("layers = %v", layers)
	}
	if len(r.Names()) != 2 {
		t.Fatalf("names = %v", r.Names())
	}
}

func TestRegistryJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter(Desc{Layer: "nic", Name: "rx_wire", Help: "frames from the wire", Unit: "frames"},
		Labels{"arch": "kopi"}, func() uint64 { return 42 })
	out := r.RenderJSON()
	for _, want := range []string{`"norman_nic_rx_wire"`, `"value": 42`, `"layer": "nic"`, `"arch": "kopi"`} {
		if !strings.Contains(out, want) {
			t.Errorf("json missing %q:\n%s", want, out)
		}
	}
}

func TestTracerSpanLifecycle(t *testing.T) {
	tr := NewTracer(2)
	a := tr.StampID()
	b := tr.StampID()
	tr.Record(a, 10, "host", "syscall_send", "")
	tr.Record(a, 30, "wire", "tx", "len=60")
	tr.Record(a, 20, "nic", "pipeline_egress", "verdict=pass")
	tr.Record(b, 15, "host", "syscall_send", "")

	span := tr.Trace(a)
	if len(span) != 3 {
		t.Fatalf("span len = %d", len(span))
	}
	// Sorted by virtual time.
	if span[0].Point != "syscall_send" || span[1].Point != "pipeline_egress" || span[2].Point != "tx" {
		t.Fatalf("span order: %+v", span)
	}

	// Third ID evicts the oldest (a); recording onto an evicted ID is a
	// counted no-op.
	c := tr.StampID()
	if tr.Trace(a) != nil {
		t.Fatal("a not evicted")
	}
	tr.Record(a, 40, "peer", "rx", "")
	if tr.Trace(a) != nil {
		t.Fatal("evicted span resurrected")
	}
	tr.Record(c, 5, "host", "syscall_send", "")
	stamped, events, evicted := tr.Stats()
	if stamped != 3 || evicted != 1 || events != 6 {
		t.Fatalf("stats = %d %d %d", stamped, events, evicted)
	}
	if got := tr.IDs(); len(got) != 2 || got[0] != b || got[1] != c {
		t.Fatalf("ids = %v", got)
	}
	out := tr.Format(b)
	if !strings.Contains(out, "1 interposition points") || !strings.Contains(out, "syscall_send") {
		t.Fatalf("format: %q", out)
	}
	if !strings.Contains(tr.Format(a), "not traced") {
		t.Fatal("format of evicted id")
	}
}

func TestDepthFromEnv(t *testing.T) {
	t.Setenv("NORMAN_TRACE_DEPTH", "")
	if DepthFromEnv() != DefaultTraceDepth {
		t.Fatal("default depth")
	}
	t.Setenv("NORMAN_TRACE_DEPTH", "12")
	if DepthFromEnv() != 12 {
		t.Fatal("env depth")
	}
	t.Setenv("NORMAN_TRACE_DEPTH", "bogus")
	if DepthFromEnv() != DefaultTraceDepth {
		t.Fatal("bogus depth falls back")
	}
}
