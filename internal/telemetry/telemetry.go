// Package telemetry is Norman's unified observability layer: the
// reproduction-side answer to the paper's core complaint that kernel bypass
// destroys the ability to see what the network dataplane is doing. Where the
// paper's §2 scenarios ask "which process is hammering the network?", this
// package asks the same question of the simulation itself and gives every
// other layer one place to answer it:
//
//   - a labeled metrics Registry (counters, gauges, histograms keyed by
//     layer + name + labels) that nic, transport, qos, faults, ctl, mem,
//     sniff and the host/world glue register into, with JSON and
//     Prometheus-text renderers so one E9 run can be scraped like a real
//     fleet host;
//   - a packet-lifecycle Tracer (trace.go): a ring-buffered span recorder
//     keyed by packet ID that each interposition point — host syscall layer,
//     ring enqueue/dequeue, NIC pipeline, wire, fault injector, peer Rx —
//     appends virtual-timestamped events to, so `ntcpdump -trace <id>`
//     prints one packet's whole journey including fault and trap-fallback
//     events.
//
// Everything here is deterministic: metric rendering sorts by key, trace IDs
// are allocated in event order inside one world, and nothing reads wall
// clocks — so telemetry output is byte-identical across experiment worker
// widths, exactly like the tables it annotates.
//
// The registry deliberately reads values through closures instead of owning
// hot-path counters: the dataplane keeps its plain uint64 fields (PR 1's
// zero-alloc fast path is untouched) and registration publishes a view of
// them, the same split a real NIC keeps between datapath registers and the
// PCIe config space that exports them.
package telemetry

import (
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"norman/internal/stats"
)

// Kind is the metric type, mirroring the Prometheus exposition types.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// Labels attach dimensions to a metric instance (e.g. arch="kopi",
// fault="2"). Rendering sorts label names, so any map order is fine.
type Labels map[string]string

// clone copies l so registrants can reuse one map across calls.
func (l Labels) clone() Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// render returns the canonical `{k="v",...}` form, names sorted; empty
// labels render as "".
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(l[k])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Desc names and documents one metric. FullName composes
// "norman_<layer>_<name>"; OBSERVABILITY.md documents "<layer>_<name>" and a
// test asserts the two never drift.
type Desc struct {
	Layer string // which subsystem owns the value: nic, transport, qos, ...
	Name  string // metric name within the layer, snake_case
	Help  string // one-line meaning
	Unit  string // frames, bytes, seconds, conns, ...
	Kind  Kind
}

// FullName returns the exposition name, "norman_<layer>_<name>".
func (d Desc) FullName() string { return "norman_" + d.Layer + "_" + d.Name }

// metric is one registered instance: a Desc plus labels plus a read-side
// view of the live value.
type metric struct {
	desc   Desc
	labels Labels
	value  func() float64         // counter / gauge
	hist   func() stats.Histogram // histogram snapshot (by value)
}

// Registry holds every registered metric. It is safe for concurrent
// registration (parallel experiment workers publish their finished worlds
// into one registry); reads happen at render time, after the worlds quiesce.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric // key: FullName + rendered labels
	order   []string           // insertion order, for stable duplicate checks
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// register stores m, replacing any previous metric with the same
// name+labels (re-registration after a world reset is legal).
func (r *Registry) register(m *metric) {
	key := m.desc.FullName() + m.labels.render()
	r.mu.Lock()
	if _, dup := r.metrics[key]; !dup {
		r.order = append(r.order, key)
	}
	r.metrics[key] = m
	r.mu.Unlock()
}

// Counter registers a monotonically increasing value read through fn.
func (r *Registry) Counter(d Desc, labels Labels, fn func() uint64) {
	d.Kind = KindCounter
	r.register(&metric{desc: d, labels: labels.clone(), value: func() float64 { return float64(fn()) }})
}

// Gauge registers a point-in-time value read through fn.
func (r *Registry) Gauge(d Desc, labels Labels, fn func() float64) {
	d.Kind = KindGauge
	r.register(&metric{desc: d, labels: labels.clone(), value: fn})
}

// Histogram registers a distribution snapshot read through fn. The snapshot
// is taken by value so rendering never races a live histogram.
func (r *Registry) Histogram(d Desc, labels Labels, fn func() stats.Histogram) {
	d.Kind = KindHistogram
	r.register(&metric{desc: d, labels: labels.clone(), hist: fn})
}

// Has reports whether any instance of the metric named
// "norman_<layer>_<name>" (or the bare "<layer>_<name>" form) is registered,
// under any label set. OBSERVABILITY.md's drift test is built on this.
func (r *Registry) Has(name string) bool {
	if !strings.HasPrefix(name, "norman_") {
		name = "norman_" + name
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for key := range r.metrics {
		if base, _, _ := strings.Cut(key, "{"); base == name {
			return true
		}
	}
	return false
}

// Names returns the sorted set of distinct metric full names.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := map[string]bool{}
	for key := range r.metrics {
		base, _, _ := strings.Cut(key, "{")
		seen[base] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Layers returns the sorted set of distinct layers with registered metrics.
func (r *Registry) Layers() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := map[string]bool{}
	for _, m := range r.metrics {
		seen[m.desc.Layer] = true
	}
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered metric instances.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.metrics)
}

// snapshot returns the metrics sorted by key for deterministic rendering.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	keys := make([]string, 0, len(r.metrics))
	for k := range r.metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*metric, len(keys))
	for i, k := range keys {
		out[i] = r.metrics[k]
	}
	r.mu.Unlock()
	return out
}

// DefaultTraceDepth is how many distinct packets a Tracer follows when
// NORMAN_TRACE_DEPTH is unset.
const DefaultTraceDepth = 256

// DepthFromEnv resolves the tracer span-buffer depth from NORMAN_TRACE_DEPTH
// (distinct packet IDs retained; oldest evicted beyond that). Unset, empty,
// or unparsable values fall back to DefaultTraceDepth.
func DepthFromEnv() int {
	if v := os.Getenv("NORMAN_TRACE_DEPTH"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return DefaultTraceDepth
}

// fmtValue renders a float without trailing noise: integers print as
// integers, everything else with enough precision to round-trip.
func fmtValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
