package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"norman/internal/sim"
)

// Event is one interposition point's observation of one packet: where the
// packet was (layer + point), when in virtual time, and an optional
// free-form note ("verdict=pass cycles=12", "loss", "reason=e9 injected
// trap").
type Event struct {
	ID    uint64   // packet trace ID (packet.Meta.Trace)
	At    sim.Time // virtual timestamp from the world's engine
	Layer string   // host, ring, nic, wire, faults, peer
	Point string   // syscall_send, tx_enqueue, pipeline_egress, ...
	Note  string
}

func (e Event) String() string {
	s := fmt.Sprintf("%-12s %-7s %-16s", e.At, e.Layer, e.Point)
	if e.Note != "" {
		s += "  " + e.Note
	}
	return s
}

// Tracer records packet-lifecycle spans into a bounded ring: at most depth
// distinct packet IDs are retained, oldest-stamped evicted first. It is
// single-world state like every other dataplane structure — one Tracer per
// engine, no locking, fully deterministic.
type Tracer struct {
	depth  int
	nextID uint64
	order  []uint64 // IDs in stamp order; the eviction ring
	spans  map[uint64][]Event

	events  uint64 // total events recorded (including onto evicted IDs' lives)
	stamped uint64 // total IDs issued
	evicted uint64 // IDs whose spans were evicted to stay within depth
}

// NewTracer builds a tracer retaining depth distinct packet journeys
// (depth <= 0 takes DefaultTraceDepth).
func NewTracer(depth int) *Tracer {
	if depth <= 0 {
		depth = DefaultTraceDepth
	}
	return &Tracer{depth: depth, spans: make(map[uint64][]Event)}
}

// Depth returns the configured span-buffer depth.
func (t *Tracer) Depth() int { return t.depth }

// StampID issues the next packet trace ID and reserves span space for it,
// evicting the oldest tracked packet when the buffer is full. Callers stamp
// it into packet.Meta.Trace at the packet's first interposition point.
func (t *Tracer) StampID() uint64 {
	t.nextID++
	t.stamped++
	id := t.nextID
	if len(t.order) >= t.depth {
		old := t.order[0]
		copy(t.order, t.order[1:])
		t.order = t.order[:len(t.order)-1]
		delete(t.spans, old)
		t.evicted++
	}
	t.order = append(t.order, id)
	t.spans[id] = nil
	return id
}

// Record appends an event to a packet's span. Events for IDs the tracer no
// longer tracks (evicted, or never stamped here) are counted but dropped —
// a late DMA completion must not resurrect an evicted journey.
func (t *Tracer) Record(id uint64, at sim.Time, layer, point, note string) {
	if id == 0 {
		return
	}
	t.events++
	if _, ok := t.spans[id]; !ok {
		return
	}
	t.spans[id] = append(t.spans[id], Event{ID: id, At: at, Layer: layer, Point: point, Note: note})
}

// Trace returns one packet's events ordered by virtual time (stable on
// recording order for equal timestamps), or nil when the ID is unknown.
func (t *Tracer) Trace(id uint64) []Event {
	span, ok := t.spans[id]
	if !ok {
		return nil
	}
	out := append([]Event(nil), span...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// IDs returns the tracked packet IDs in stamp order.
func (t *Tracer) IDs() []uint64 {
	return append([]uint64(nil), t.order...)
}

// Stats returns cumulative stamped IDs, recorded events, and evicted spans —
// the accounting OBSERVABILITY.md documents and the registry exports.
func (t *Tracer) Stats() (stamped, events, evicted uint64) {
	return t.stamped, t.events, t.evicted
}

// RegisterMetrics publishes the tracer's own accounting under layer "trace".
func (t *Tracer) RegisterMetrics(r *Registry, labels Labels) {
	r.Counter(Desc{Layer: "trace", Name: "ids_stamped", Help: "packet trace IDs issued", Unit: "packets"},
		labels, func() uint64 { return t.stamped })
	r.Counter(Desc{Layer: "trace", Name: "events_recorded", Help: "span events recorded at interposition points", Unit: "events"},
		labels, func() uint64 { return t.events })
	r.Counter(Desc{Layer: "trace", Name: "spans_evicted", Help: "packet spans evicted from the ring buffer", Unit: "spans"},
		labels, func() uint64 { return t.evicted })
}

// Format renders one packet's journey as the table `ntcpdump -trace <id>`
// prints: one line per interposition point, ordered by virtual time.
func (t *Tracer) Format(id uint64) string {
	span := t.Trace(id)
	if span == nil {
		return fmt.Sprintf("packet %d: not traced (buffer depth %d, oldest evicted first)\n", id, t.depth)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "packet %d: %d interposition points\n", id, len(span))
	for _, e := range span {
		b.WriteString("  ")
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
