package arch

import (
	"fmt"

	"norman/internal/filter"
	"norman/internal/sniff"
)

// Hypervisor is the AccelNet-style NIC switch (§1, [13]): policies execute
// on the NIC as 5-tuple flow rules, so it has a global view of traffic —
// but it is logically isolated from the OS, so it has no process view and
// cannot signal processes. The E2 matrix hinges on exactly this gap.
type Hypervisor struct {
	direct
}

// NewHypervisor builds the architecture on a world.
func NewHypervisor(w *World) *Hypervisor {
	a := &Hypervisor{}
	a.init(w, false, false)
	return a
}

// Name implements Arch.
func (a *Hypervisor) Name() string { return "hypervisor" }

// Caps implements Arch.
func (a *Hypervisor) Caps() Caps {
	return Caps{
		GlobalCapture: true, // sees all frames, but unattributed
		FlowQoS:       true,
		Transfers:     1,
	}
}

// InstallRule accepts 5-tuple rules and compiles them onto the NIC; owner
// rules are impossible without the OS's process table.
func (a *Hypervisor) InstallRule(h filter.Hook, r *filter.Rule) error {
	if err := a.fw.Append(h, r); err != nil {
		return err
	}
	if _, err := a.reloadPrograms(); err != nil {
		return fmt.Errorf("arch: hypervisor program load: %w", err)
	}
	return nil
}

// FlushRules implements Arch.
func (a *Hypervisor) FlushRules() error {
	a.fw.Flush(filter.HookInput)
	a.fw.Flush(filter.HookOutput)
	_, err := a.reloadPrograms()
	return err
}

// AttachTap captures on the NIC, but expressions needing process
// attribution cannot be evaluated.
func (a *Hypervisor) AttachTap(e *sniff.Expr) (*sniff.Tap, error) {
	if e != nil && e.RequiresProcessView() {
		return nil, fmt.Errorf("%w: capture filter %q needs a process view", ErrUnsupported, e)
	}
	return a.attachNICTap(e)
}
