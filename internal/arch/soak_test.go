package arch

import (
	"testing"

	"norman/internal/filter"
	"norman/internal/packet"
	"norman/internal/qos"
	"norman/internal/sim"
	"norman/internal/sniff"
)

// TestSoakConservation runs a mixed workload — many connections, bursty
// bidirectional traffic, firewall rules, a WFQ scheduler, a capture tap —
// and then audits packet conservation: every frame that entered the NIC is
// either delivered, counted in a specific drop counter, or still sitting in
// a ring. Unaccounted loss means broken bookkeeping somewhere in the
// dataplane.
func TestSoakConservation(t *testing.T) {
	for _, name := range []string{"kopi", "bypass", "hypervisor"} {
		name := name
		t.Run(name, func(t *testing.T) {
			a := New(name, WorldConfig{RingSize: 32})
			w := a.World()

			var wireOut uint64
			w.Peer = func(p *packet.Packet, at sim.Time) { wireOut++ }

			u := w.Kern.AddUser(1, "u")
			proc := w.Kern.Spawn(u.UID, "srv")

			const nConns = 64
			conns := make([]*Conn, nConns)
			for i := range conns {
				c, err := a.Connect(proc, w.Flow(uint16(5000+i), 7))
				if err != nil {
					t.Fatal(err)
				}
				conns[i] = c
			}

			// Policies where the architecture supports them.
			_ = a.InstallRule(filter.HookInput, &filter.Rule{
				Proto: filter.Proto(packet.ProtoUDP), DstPorts: filter.Port(5007),
				Action: filter.ActDrop,
			})
			wfq := qos.NewWFQ(512)
			wfq.SetWeight(1, 2)
			_ = a.SetQdisc(wfq, func(p *packet.Packet) uint32 { return p.Meta.Class })
			_, _ = a.AttachTap(sniff.MustParse("udp"))

			var appDelivered uint64
			a.SetDeliver(func(*Conn, *packet.Packet, sim.Time) { appDelivered++ })

			rng := sim.NewRNG(99, "soak"+name)
			// Outbound bursts + inbound bursts, randomly interleaved.
			for i := 0; i < 3000; i++ {
				c := conns[rng.Intn(nConns)]
				at := sim.Time(rng.Intn(3_000_000)) * sim.Time(sim.Nanosecond)
				if rng.Intn(2) == 0 {
					w.Eng.At(at, func() {
						a.Send(c, w.UDPTo(c.Info.Flow, 64+rng.Intn(1200)))
					})
				} else {
					w.Eng.At(at, func() {
						a.DeliverWire(w.UDPFrom(c.Info.Flow, 64+rng.Intn(1200)))
					})
				}
			}
			w.Eng.Run()

			n := w.NIC
			// RX conservation.
			var delivered, ringResidue uint64
			for _, c := range conns {
				delivered += c.NC.RxDelivered
				ringResidue += uint64(c.NC.RX.Len())
			}
			accounted := delivered + n.RxDropNoSteer + n.RxDropRing + n.RxDropVerdict +
				n.RxSlowPath + n.RxOutageDrop + n.RxFifoDrop
			if accounted != n.RxWire {
				t.Fatalf("RX conservation broken: wire=%d accounted=%d (delivered=%d drops=%d/%d/%d/%d/%d/%d)",
					n.RxWire, accounted, delivered,
					n.RxDropNoSteer, n.RxDropRing, n.RxDropVerdict,
					n.RxSlowPath, n.RxOutageDrop, n.RxFifoDrop)
			}
			// Poll-mode apps consume everything delivered to the rings.
			if appDelivered+ringResidue != delivered {
				t.Fatalf("app-side conservation: delivered=%d consumed=%d residue=%d",
					delivered, appDelivered, ringResidue)
			}
			// TX conservation: everything popped from TX rings either hit
			// the wire, was dropped by a verdict, or is buffered in the
			// scheduler awaiting a wire slot (none, after Run drains).
			var txPushed, txResidue uint64
			for _, c := range conns {
				prod, _, _ := c.NC.TX.Counters()
				txPushed += prod
				txResidue += uint64(c.NC.TX.Len())
			}
			if got := n.TxFrames + n.TxDropVerdict + txResidue + uint64(wfq.Len()); got != txPushed {
				t.Fatalf("TX conservation broken: pushed=%d accounted=%d (tx=%d verdict=%d residue=%d sched=%d)",
					txPushed, got, n.TxFrames, n.TxDropVerdict, txResidue, wfq.Len())
			}
			if wireOut == 0 || appDelivered == 0 {
				t.Fatal("soak produced no traffic")
			}
		})
	}
}
