package arch_test

import (
	"testing"

	"norman/internal/arch"
	"norman/internal/mem"
	"norman/internal/sim"
	"norman/internal/transport"
)

func scaleCfg(shards int) arch.ShardedConfig {
	return arch.ShardedConfig{
		Shards:   shards,
		Buckets:  16,
		Conns:    256,
		RingSize: 256,
		Batch:    16,
	}
}

// TestShardedWorldBucketInvariance: the connection → bucket mapping and
// bucket membership lists depend only on the fixed bucket count, never on
// how many shards the buckets are spread over.
func TestShardedWorldBucketInvariance(t *testing.T) {
	ref := arch.NewShardedWorld(scaleCfg(1))
	for _, shards := range []int{2, 4, 8} {
		sw := arch.NewShardedWorld(scaleCfg(shards))
		for c := 0; c < 256; c++ {
			if sw.BucketOf(c) != ref.BucketOf(c) {
				t.Fatalf("shards=%d: conn %d bucket %d != reference %d",
					shards, c, sw.BucketOf(c), ref.BucketOf(c))
			}
		}
	}
	// The hash must actually spread connections around.
	occupied := 0
	for b := range ref.Buckets {
		if len(ref.Conns(b)) > 0 {
			occupied++
		}
	}
	if occupied < 8 {
		t.Fatalf("only %d/16 buckets occupied: RSS spread broken", occupied)
	}
}

// shardedEcho drives a fixed per-bucket workload through the batched receive
// path and flyweight transport on an N-shard world, with a cross-bucket
// credit per delivery, and returns bucket-ordered counters.
func shardedEcho(t *testing.T, shards int) (delivered, bytes, credits uint64, end sim.Time) {
	t.Helper()
	sw := arch.NewShardedWorld(scaleCfg(shards))
	lat := sim.Duration(sw.Model.WireLatency)
	// Per-bucket credit counters: the ack closure runs on the destination
	// bucket's shard, so each array slot is only ever touched by its owner.
	creditBy := make([]uint64, len(sw.Buckets))
	sw.Deliver = func(bucket int, d mem.PktRef, at sim.Time) {
		if !transport.FlyweightRx(sw.Slab, int(d.Conn), d.Seq, int(d.Len), at) {
			t.Errorf("bucket %d: flyweight refused conn %d seq %d", bucket, d.Conn, d.Seq)
		}
		// Ack crosses to the peer bucket one wire latency later.
		peer := (bucket + 1) % len(sw.Buckets)
		sw.Coord.Send(bucket, peer, at.Add(lat), func() { creditBy[peer]++ })
	}
	// Every bucket sources 3 packets per local connection at staggered times.
	for b := range sw.Buckets {
		bk := sw.Buckets[b]
		conns := sw.Conns(b)
		if len(conns) == 0 {
			continue
		}
		for round := 0; round < 3; round++ {
			at := sim.Time(round) * sim.Time(2*sim.Microsecond)
			r := round
			bk.Eng.At(at, func() {
				for _, c := range conns {
					bk.QG.Arrive(mem.PktRef{Conn: c, Seq: uint32(r), Len: 256, At: bk.Eng.Now()})
				}
			})
		}
	}
	end = sw.Coord.Run()
	var credit uint64
	for _, n := range creditBy {
		credit += n
	}
	return sw.Delivered(), sw.BytesDelivered(), credit, end
}

// TestShardedWorldDeterminism: the full scale path — RSS buckets, batched
// drains, flyweight records, cross-shard credits — produces identical
// integer results at every shard count.
func TestShardedWorldDeterminism(t *testing.T) {
	d1, b1, c1, e1 := shardedEcho(t, 1)
	if d1 == 0 || c1 == 0 {
		t.Fatalf("reference run idle: delivered=%d credits=%d", d1, c1)
	}
	if b1 != d1*256 {
		t.Fatalf("bytes %d != delivered %d * 256", b1, d1)
	}
	for _, shards := range []int{2, 4, 8} {
		d, b, c, e := shardedEcho(t, shards)
		if d != d1 || b != b1 || c != c1 || e != e1 {
			t.Fatalf("shards=%d: (delivered,bytes,credits,end)=(%d,%d,%d,%v) != reference (%d,%d,%d,%v)",
				shards, d, b, c, e, d1, b1, c1, e1)
		}
	}
}

// TestWorldShardsConfig: the classic world gains a coordinator only when
// asked for more than one shard, and its engine is shard 0's.
func TestWorldShardsConfig(t *testing.T) {
	w := arch.NewWorld(arch.WorldConfig{})
	if w.Coord != nil {
		t.Fatal("unsharded world has a coordinator")
	}
	ws := arch.NewWorld(arch.WorldConfig{Shards: 4})
	if ws.Coord == nil || ws.Coord.Shards() != 4 {
		t.Fatal("sharded world missing its coordinator")
	}
	if ws.Eng != ws.Coord.Engine(0) {
		t.Fatal("sharded world's engine must be shard 0")
	}
	fired := make(chan uint64, 1)
	ws.Eng.At(sim.Time(sim.Microsecond), func() { fired <- ws.Coord.ShardFired(0) })
	ws.Coord.RunUntil(sim.Time(2 * sim.Microsecond))
	select {
	case <-fired:
	default:
		t.Fatal("event on shard 0 never ran under the coordinator")
	}
}
