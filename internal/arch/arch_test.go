package arch

import (
	"errors"
	"testing"

	"norman/internal/filter"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/sniff"
)

// TestCapsMatchBehavior cross-checks the declared capability flags against
// actual API behavior for every architecture — a Caps lie would silently
// corrupt the E2 matrix.
func TestCapsMatchBehavior(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			a := New(name, WorldConfig{})
			w := a.World()
			w.Peer = func(*packet.Packet, sim.Time) {}
			caps := a.Caps()

			u := w.Kern.AddUser(7, "u")
			proc := w.Kern.Spawn(u.UID, "p")
			c, err := a.Connect(proc, w.Flow(1000, 7))
			if err != nil {
				t.Fatal(err)
			}

			ownerErr := a.InstallRule(filter.HookOutput, &filter.Rule{
				OwnerUID: filter.UID(7), Action: filter.ActDrop,
			})
			if caps.OwnerFiltering != (ownerErr == nil) {
				t.Errorf("OwnerFiltering=%v but install err=%v", caps.OwnerFiltering, ownerErr)
			}

			_, tapErr := a.AttachTap(sniff.MustParse("udp"))
			if caps.GlobalCapture != (tapErr == nil) {
				t.Errorf("GlobalCapture=%v but tap err=%v", caps.GlobalCapture, tapErr)
			}

			blockErr := a.SetRxMode(c, RxBlock)
			if caps.BlockingIO != (blockErr == nil) {
				t.Errorf("BlockingIO=%v but block err=%v", caps.BlockingIO, blockErr)
			}
		})
	}
}

// TestCloseReleasesResources verifies connections can close and their flows
// be reused on every architecture.
func TestCloseReleasesResources(t *testing.T) {
	for _, name := range Names() {
		a := New(name, WorldConfig{})
		w := a.World()
		w.Peer = func(*packet.Packet, sim.Time) {}
		u := w.Kern.AddUser(1, "u")
		proc := w.Kern.Spawn(u.UID, "p")
		flow := w.Flow(2000, 7)
		c, err := a.Connect(proc, flow)
		if err != nil {
			t.Fatalf("%s: connect: %v", name, err)
		}
		if err := a.Close(c); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
		if _, err := a.Connect(proc, flow); err != nil {
			t.Fatalf("%s: reconnect after close: %v", name, err)
		}
	}
}

// TestEgressFilterDropsOnEveryInterposingArch installs a plain 5-tuple drop
// and checks it actually stops wire traffic wherever installation succeeds.
func TestEgressFilterDropsOnEveryInterposingArch(t *testing.T) {
	for _, name := range Names() {
		a := New(name, WorldConfig{})
		w := a.World()
		var out int
		w.Peer = func(*packet.Packet, sim.Time) { out++ }
		u := w.Kern.AddUser(1, "u")
		proc := w.Kern.Spawn(u.UID, "p")
		flow := w.Flow(3000, 4444)
		c, err := a.Connect(proc, flow)
		if err != nil {
			t.Fatal(err)
		}
		err = a.InstallRule(filter.HookOutput, &filter.Rule{
			Proto: filter.Proto(packet.ProtoUDP), DstPorts: filter.Port(4444),
			Action: filter.ActDrop,
		})
		if errors.Is(err, ErrUnsupported) {
			continue // bypass: nothing to check
		}
		if err != nil {
			t.Fatalf("%s: install: %v", name, err)
		}
		a.Send(c, w.UDPTo(flow, 100))
		w.Eng.Run()
		if out != 0 {
			t.Errorf("%s: filtered packet escaped to the wire", name)
		}
	}
}

// TestSendBatchDeliversAll exercises the batched TX path end to end.
func TestSendBatchDeliversAll(t *testing.T) {
	for _, name := range Names() {
		a := New(name, WorldConfig{})
		w := a.World()
		var out int
		w.Peer = func(*packet.Packet, sim.Time) { out++ }
		u := w.Kern.AddUser(1, "u")
		proc := w.Kern.Spawn(u.UID, "p")
		flow := w.Flow(3000, 9)
		c, err := a.Connect(proc, flow)
		if err != nil {
			t.Fatal(err)
		}
		pkts := make([]*packet.Packet, 20)
		for i := range pkts {
			pkts[i] = w.UDPTo(flow, 64)
		}
		a.SendBatch(c, pkts)
		w.Eng.Run()
		if out != 20 {
			t.Errorf("%s: batch delivered %d/20", name, out)
		}
	}
}

// TestTrustedMetadataOnlyWhereKernelProgramsIt: the same raw packet carries
// attribution on KOPI but not on the hypervisor — the crux of §3.
func TestTrustedMetadataOnlyWhereKernelProgramsIt(t *testing.T) {
	check := func(name string, wantTrusted bool) {
		a := New(name, WorldConfig{})
		w := a.World()
		var meta packet.Meta
		w.Peer = func(p *packet.Packet, _ sim.Time) { meta = p.Meta }
		u := w.Kern.AddUser(42, "u")
		proc := w.Kern.Spawn(u.UID, "cmd")
		flow := w.Flow(1000, 7)
		c, _ := a.Connect(proc, flow)
		a.Send(c, w.UDPTo(flow, 64))
		w.Eng.Run()
		if meta.TrustedMeta != wantTrusted {
			t.Errorf("%s: trusted=%v want %v", name, meta.TrustedMeta, wantTrusted)
		}
		if wantTrusted && (meta.UID != 42 || meta.Command != "cmd") {
			t.Errorf("%s: meta %+v", name, meta)
		}
	}
	check("kopi", true)
	check("kernelstack", true)
	check("sidecar", true)
	check("hypervisor", false)
	check("bypass", false)
}

// TestWorldCPUAccounting: poll-pinned cores count as fully busy.
func TestWorldCPUAccounting(t *testing.T) {
	w := NewWorld(WorldConfig{})
	core := w.Core(1)
	core.Acquire(0, sim.Duration(10*sim.Microsecond))
	now := sim.Time(100 * sim.Microsecond)
	if got := w.CPUBusy(now); got != 10*sim.Microsecond {
		t.Fatalf("busy = %v", got)
	}
	w.MarkPoller(core)
	if got := w.CPUBusy(now); got != 100*sim.Microsecond {
		t.Fatalf("poll-pinned busy = %v", got)
	}
	w.UnmarkPoller(core)
	if got := w.CPUBusy(now); got != 10*sim.Microsecond {
		t.Fatalf("unmarked busy = %v", got)
	}
}

// TestRingOverflowCountsAppDrops: flooding a connection faster than it
// drains must surface as explicit drops, not lost accounting.
func TestRingOverflowCountsAppDrops(t *testing.T) {
	a := New("bypass", WorldConfig{RingSize: 8}).(*Bypass)
	w := a.World()
	w.Peer = func(*packet.Packet, sim.Time) {}
	u := w.Kern.AddUser(1, "u")
	proc := w.Kern.Spawn(u.UID, "p")
	flow := w.Flow(1000, 7)
	c, _ := a.Connect(proc, flow)
	// Push a huge burst in one call: ring 8 deep, NIC cannot drain between.
	pkts := make([]*packet.Packet, 64)
	for i := range pkts {
		pkts[i] = w.UDPTo(flow, 1460)
	}
	a.SendBatch(c, pkts)
	w.Eng.Run()
	if a.TxAppDrops == 0 {
		t.Fatal("overflow must be counted as app drops")
	}
}
