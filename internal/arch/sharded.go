package arch

import (
	"fmt"

	"norman/internal/cache"
	"norman/internal/mem"
	"norman/internal/nic"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/timing"
)

// ShardedWorld is the scale path of the within-world engine (DESIGN.md §8):
// a fixed set of RSS buckets, each with its own burst ring and batched
// receive path, spread over N lockstep engine shards by bucket % N. The
// bucket space — not the shard count — is the determinism unit: connection →
// bucket mapping uses the NIC's Toeplitz hash over the flow key modulo a
// constant bucket count, so per-bucket state and any bucket-ordered
// aggregation are byte-identical at every shard count, including N=1.
//
// Connection records live in one flyweight slab (mem.ConnSlab, ≤ 64 hot
// bytes per connection); a record is only ever touched from its owning
// bucket's shard, so shards share no mutable state outside the coordinator's
// mailboxes.
type ShardedWorld struct {
	Coord *sim.Sharded
	Model timing.Model
	Slab  *mem.ConnSlab

	// Buckets, in fixed bucket order. Bucket b runs on Coord.EngineFor(b).
	Buckets []*ScaleBucket

	// Deliver, when set, is called for every descriptor a bucket's queue
	// group completes — on that bucket's shard, at DMA completion time. The
	// experiment points it at the flyweight transport and issues any
	// cross-shard replies through Coord.Send.
	Deliver func(bucket int, d mem.PktRef, at sim.Time)

	connBucket []uint16
}

// ScaleBucket is one RSS bucket's slice of the machine: a private engine
// reference (shared with the other buckets on the same shard), a descriptor
// ring, a batched receive path, and a private LLC slice so cache state never
// crosses shards.
type ScaleBucket struct {
	Index int
	Eng   *sim.Engine
	Ring  *mem.BurstRing
	QG    *nic.QueueGroup
	LLC   *cache.LLC

	conns []uint32 // connections hashed here, in connID order
}

// ShardedConfig parameterizes NewShardedWorld; zero values take defaults.
type ShardedConfig struct {
	Shards   int          // engine shards (≥ 1)
	Buckets  int          // fixed RSS bucket count (default 64); must be ≥ Shards
	Conns    int          // connection slab capacity (default 1024)
	Model    timing.Model // zero value takes timing.Default
	RingSize int          // per-bucket burst ring capacity (default 1024)
	Batch    int          // descriptors per drain burst (default 64)
	Epoch    sim.Duration // barrier epoch (default Model.WireLatency)
	NoLLC    bool         // disable per-bucket descriptor cache modeling
}

// Simulated address map of the scale path: the slab above 4 GiB, bucket
// rings spaced at fixed strides above 1 GiB. Static — no allocator churn.
const (
	shardedSlabBase   = uint64(1) << 32
	shardedRingBase   = uint64(1) << 30
	shardedRingStride = uint64(1) << 20
)

// NewShardedWorld builds the bucketed scale world and opens cfg.Conns
// flyweight connections, each hashed to its bucket by the NIC's RSS
// function over a deterministic per-connection flow key.
func NewShardedWorld(cfg ShardedConfig) *ShardedWorld {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = 64
	}
	if cfg.Buckets < cfg.Shards {
		panic(fmt.Sprintf("arch: %d buckets < %d shards", cfg.Buckets, cfg.Shards))
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 1024
	}
	if cfg.Model.CPUHz == 0 {
		cfg.Model = timing.Default()
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 1024
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = cfg.Model.WireLatency
	}

	sw := &ShardedWorld{
		Coord:      sim.NewSharded(cfg.Shards, cfg.Buckets, cfg.Epoch),
		Model:      cfg.Model,
		Slab:       mem.NewConnSlab(cfg.Conns, shardedSlabBase),
		Buckets:    make([]*ScaleBucket, cfg.Buckets),
		connBucket: make([]uint16, cfg.Conns),
	}

	// Per-bucket LLC slice: an equal share of the model's cache, rounded to
	// whole sets, so DDIO behaviour is per-bucket and shard-private.
	llcSlice := cfg.Model.LLCBytes / cfg.Buckets
	if min := cfg.Model.LLCWays * 64; llcSlice < min {
		llcSlice = min
	}
	for b := range sw.Buckets {
		var llc *cache.LLC
		if !cfg.NoLLC {
			llc = cache.New(cache.Config{
				TotalBytes: llcSlice,
				Ways:       cfg.Model.LLCWays,
				DDIOWays:   cfg.Model.DDIOWays,
				LineBytes:  64,
			})
		}
		ring := mem.NewBurstRing(cfg.RingSize, shardedRingBase+uint64(b)*shardedRingStride)
		bk := &ScaleBucket{
			Index: b,
			Eng:   sw.Coord.EngineFor(b),
			Ring:  ring,
			LLC:   llc,
		}
		bk.QG = nic.NewQueueGroup(nic.QueueGroupConfig{
			Engine: bk.Eng,
			Model:  cfg.Model,
			LLC:    llc,
			Ring:   ring,
			Slab:   sw.Slab,
			Batch:  cfg.Batch,
		})
		idx := b
		bk.QG.Deliver = func(d mem.PktRef, at sim.Time) {
			if sw.Deliver != nil {
				sw.Deliver(idx, d, at)
			}
		}
		sw.Buckets[b] = bk
	}

	for c := 0; c < cfg.Conns; c++ {
		b := uint16(nic.RSSHash(nic.DefaultRSSKey, connFlow(c)) % uint32(cfg.Buckets))
		sw.connBucket[c] = b
		sw.Slab.Open(c, b, 0)
		sw.Buckets[b].conns = append(sw.Buckets[b].conns, uint32(c))
	}
	return sw
}

// connFlow derives the deterministic flow key connection c arrives on.
func connFlow(c int) packet.FlowKey {
	return packet.FlowKey{
		Src:     packet.MakeIP(10, 0, uint8(c>>16), uint8(c>>8)),
		Dst:     packet.MakeIP(10, 0, 0, 1),
		SrcPort: uint16(1024 + c%60000),
		DstPort: 9000,
		Proto:   packet.ProtoUDP,
	}
}

// BucketOf returns the RSS bucket a connection hashes to.
func (sw *ShardedWorld) BucketOf(conn int) int { return int(sw.connBucket[conn]) }

// Conns returns bucket b's connections in connID order. Callers must not
// mutate the slice.
func (sw *ShardedWorld) Conns(b int) []uint32 { return sw.Buckets[b].conns }

// Aggregations below iterate buckets in index order over integer counters,
// so every result is invariant under the shard count.

// Delivered returns descriptors delivered across all buckets.
func (sw *ShardedWorld) Delivered() uint64 {
	var n uint64
	for _, b := range sw.Buckets {
		n += b.QG.Delivered()
	}
	return n
}

// BytesDelivered returns payload bytes delivered across all buckets.
func (sw *ShardedWorld) BytesDelivered() uint64 {
	var n uint64
	for _, b := range sw.Buckets {
		n += b.QG.BytesDelivered()
	}
	return n
}

// Drops returns ring-full rejects across all buckets.
func (sw *ShardedWorld) Drops() uint64 {
	var n uint64
	for _, b := range sw.Buckets {
		n += b.QG.DropRingFull()
	}
	return n
}

// Bursts returns drain events fired across all buckets.
func (sw *ShardedWorld) Bursts() uint64 {
	var n uint64
	for _, b := range sw.Buckets {
		n += b.QG.Bursts()
	}
	return n
}

// DescAccesses returns descriptor-line DDIO hits and misses across buckets.
func (sw *ShardedWorld) DescAccesses() (hit, miss uint64) {
	for _, b := range sw.Buckets {
		hit += b.QG.DescHit()
		miss += b.QG.DescMiss()
	}
	return hit, miss
}

// BurstWaitTotal returns cumulative burst arrival-to-completion latency.
func (sw *ShardedWorld) BurstWaitTotal() sim.Duration {
	var d sim.Duration
	for _, b := range sw.Buckets {
		d += b.QG.WaitTotal()
	}
	return d
}
