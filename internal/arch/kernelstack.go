package arch

import (
	"norman/internal/filter"
	"norman/internal/kernel"
	"norman/internal/mem"
	"norman/internal/nic"
	"norman/internal/packet"
	"norman/internal/qos"
	"norman/internal/sim"
	"norman/internal/sniff"
)

// KernelStack is the traditional in-kernel dataplane (§1's baseline): every
// packet crosses the user/kernel boundary (syscall + copy — virtual data
// movement), netfilter and the qdisc run in software, and the NIC is a dumb
// queue the kernel owns. Full manageability, two transfers per packet, and
// the software stack as the bottleneck.
type KernelStack struct {
	base

	fw       *filter.Engine
	sched    qos.Qdisc
	classify func(*packet.Packet) uint32
	tap      *sniff.Tap

	kq        *nic.Conn   // kernel-owned NIC queue 0 (also TX and management)
	queues    []*nic.Conn // all kernel queues (RSS multi-queue when >1)
	qIndex    map[uint64]int
	pumping   bool
	RxNoConn  uint64
	RingRetry uint64

	// cpDown marks the control plane crashed. On this architecture the
	// control plane IS the dataplane — the same kernel stack that holds the
	// policy tables also moves every packet — so a crash stops traffic:
	// sends and softirq deliveries are dropped (rings reset on reboot)
	// until restart. CtlOutageDrops counts them; E10 tables the contrast
	// against the ring architectures, whose NICs keep forwarding.
	cpDown         bool
	CtlOutageDrops uint64

	pings pinger
}

// NewKernelStack builds the architecture on a world.
func NewKernelStack(w *World) *KernelStack {
	a := &KernelStack{
		base: newBase(w),
		fw:   filter.NewEngine(true),
	}
	a.fw.EnableConntrack(filter.NewConntrack(1<<16, 120*sim.Second))
	// The kernel owns one NIC queue pair per softirq core; RSS spreads
	// inbound flows across them (multi-queue NICs + RPS, as real kernels
	// configure).
	kernProc := w.Kern.Spawn(0, "kernel")
	a.qIndex = map[uint64]int{}
	nq := w.KernQueues()
	ids := make([]uint64, 0, nq)
	for i := 0; i < nq; i++ {
		ci, err := w.Kern.RegisterConn(kernProc, packet.FlowKey{SrcPort: uint16(i)})
		if err != nil {
			panic("arch: registering kernel queue: " + err.Error())
		}
		q, err := w.NIC.OpenConn(ci.ID, packet.Meta{ConnID: ci.ID}, nil)
		if err != nil {
			panic("arch: opening kernel NIC queue: " + err.Error())
		}
		a.queues = append(a.queues, q)
		a.qIndex[ci.ID] = i
		ids = append(ids, ci.ID)
	}
	a.kq = a.queues[0]
	if nq > 1 {
		if err := w.NIC.SetRSS(nic.DefaultRSSKey, ids); err != nil {
			panic("arch: kernel rss: " + err.Error())
		}
	} else {
		w.NIC.SetDefaultConn(ids[0])
	}
	w.NIC.OnRxDeliver = a.onRxDeliver
	w.NIC.OnTransmit = w.SendOnWire
	return a
}

// Name implements Arch.
func (a *KernelStack) Name() string { return "kernelstack" }

// Caps implements Arch.
func (a *KernelStack) Caps() Caps {
	return Caps{
		OwnerFiltering:     true,
		GlobalCapture:      true,
		CaptureAttribution: true,
		ProcessQoS:         true,
		FlowQoS:            true,
		BlockingIO:         true,
		ARPVisibility:      true,
		Transfers:          2,
	}
}

// Connect registers the connection in the kernel tables only — apps have no
// NIC resources of their own here.
func (a *KernelStack) Connect(proc *kernel.Process, flow packet.FlowKey) (*Conn, error) {
	ci, err := a.w.Kern.RegisterConn(proc, flow)
	if err != nil {
		return nil, err
	}
	c := &Conn{Info: ci, Mode: RxBlock} // blocking I/O is the kernel default
	a.register(c)
	return c, nil
}

// Close implements Arch.
func (a *KernelStack) Close(c *Conn) error {
	a.unregister(c)
	return a.w.Kern.UnregisterConn(c.Info.ID)
}

// Send is the two-transfer TX path: syscall + copy into the kernel on the
// app core, then protocol work, filtering, qdisc and doorbell on the kernel
// core.
func (a *KernelStack) Send(c *Conn, p *packet.Packet) {
	if a.cpDown {
		a.CtlOutageDrops++
		return
	}
	m := a.w.Model
	now := a.w.Eng.Now()
	appCore := a.w.Core(c.Info.PID)

	// Transfer 1: user -> kernel.
	_, sysDone := appCore.Acquire(now, sim.Duration(m.Syscall)+m.Copy(p.FrameLen()))
	a.w.Eng.At(sysDone, func() { a.kernelTx(c, p) })
}

// SendBatch is sendmmsg(2): one syscall crossing amortized over the burst,
// with the copies and all in-kernel work still paid per packet.
func (a *KernelStack) SendBatch(c *Conn, pkts []*packet.Packet) {
	if len(pkts) == 0 {
		return
	}
	if a.cpDown {
		a.CtlOutageDrops += uint64(len(pkts))
		return
	}
	m := a.w.Model
	now := a.w.Eng.Now()
	appCore := a.w.Core(c.Info.PID)
	cost := sim.Duration(m.Syscall)
	for _, p := range pkts {
		cost += m.Copy(p.FrameLen())
	}
	batch := append([]*packet.Packet(nil), pkts...)
	_, sysDone := appCore.Acquire(now, cost)
	a.w.Eng.At(sysDone, func() {
		for _, p := range batch {
			a.kernelTx(c, p)
		}
	})
}

// kernelTx is the in-kernel half of the TX path: stamp metadata, OUTPUT
// chain, capture, qdisc, doorbell. As in Linux, it executes synchronously in
// process context on the *sender's* core (sendmsg runs the stack down to the
// driver), which is what makes the kernel stack self-backpressuring: an
// application cannot offer more than its core can push through the stack.
func (a *KernelStack) kernelTx(c *Conn, p *packet.Packet) {
	if a.cpDown {
		a.CtlOutageDrops++
		return
	}
	m := a.w.Model
	now := a.w.Eng.Now()
	appCore := a.w.Core(c.Info.PID)
	// The kernel stamps trusted metadata from process context; the lifecycle
	// trace ID rides along (metadata replacement must not orphan the span).
	meta := a.w.Kern.Meta(c.Info)
	trace := p.Meta.Trace
	p.Meta = meta
	p.Meta.Enqueued = now
	p.Meta.Trace = trace
	a.traceStamp(p)
	a.trace(p, now, "host", "syscall_send", "kernel stack")

	kcost := sim.Duration(m.KernelStackFixed)
	res := a.fw.EvaluateAt(filter.HookOutput, p, now)
	kcost += softFilterCost(m, res)
	if a.tap != nil {
		a.tap.Offer(p, now)
	}
	a.w.Kern.ARP().Observe(p, now, true)
	_, kdone := appCore.Acquire(now, kcost)
	if res.Action != filter.ActAccept {
		a.trace(p, now, "host", "netfilter_drop", "chain=OUTPUT")
		return // dropped by OUTPUT chain
	}
	a.w.Eng.At(kdone, func() {
		if a.classify != nil {
			p.Meta.Class = a.classify(p)
		}
		if a.sched != nil {
			a.sched.Enqueue(p, a.w.Eng.Now())
			a.pumpTx()
			return
		}
		a.pushToNIC(p, appCore)
	})
}

// pumpTx drains the software qdisc into the NIC ring, one pending event at
// a time.
func (a *KernelStack) pumpTx() {
	if a.pumping || a.sched == nil {
		return
	}
	now := a.w.Eng.Now()
	at, ok := a.sched.ReadyAt(now)
	if !ok {
		return
	}
	if at < now {
		at = now
	}
	a.pumping = true
	a.w.Eng.At(at, func() {
		a.pumping = false
		now := a.w.Eng.Now()
		// Byte-queue-limit: keep only a few frames in the NIC ring so the
		// qdisc — not the FIFO ring — is where packets wait. Without this
		// the deep ring erases the scheduler's differentiation, the exact
		// bufferbloat problem BQL fixes in Linux.
		if a.kq.TX.Len() >= 4 {
			// NIC ring backpressure: retry after roughly one frame time.
			a.RingRetry++
			a.pumping = true
			a.w.Eng.After(a.w.Model.Wire(1538), func() {
				a.pumping = false
				a.pumpTx()
			})
			return
		}
		if p, ok := a.sched.Dequeue(now); ok {
			// pushToNIC re-arms the pump once its push has landed, so the
			// BQL check above always sees the true ring occupancy.
			a.pushToNIC(p, a.w.KernCore())
			return
		}
		// No progress: a shaped qdisc deferred; retry shortly.
		a.w.Eng.After(100*sim.Nanosecond, a.pumpTx)
	})
}

// pushToNIC is transfer 2: kernel -> NIC via descriptor ring + doorbell,
// charged to whichever core runs it (process context for direct transmits,
// the softirq core for pump-driven dequeues).
func (a *KernelStack) pushToNIC(p *packet.Packet, core *sim.Server) {
	m := a.w.Model
	now := a.w.Eng.Now()
	_, done := core.Acquire(now, m.Cycles(30)+sim.Duration(m.MMIOWrite))
	a.w.Eng.At(done, func() {
		if err := a.kq.TX.Push(mem.Desc{Pkt: p, Produced: p.Meta.Enqueued}); err != nil {
			a.TxAppDrops++
			a.trace(p, a.w.Eng.Now(), "ring", "tx_drop_full", "")
			return
		}
		a.trace(p, a.w.Eng.Now(), "ring", "tx_enqueue", "kernel queue")
		a.w.NIC.DoorbellTx(a.kq)
		a.pumpTx()
	})
}

// DeliverWire implements Arch.
func (a *KernelStack) DeliverWire(p *packet.Packet) { a.w.NIC.DeliverFromWire(p) }

// onRxDeliver is the kernel softirq path: pop from the kernel queue,
// protocol work, INPUT filtering, demux to the owning socket, then wake the
// blocked receiver (or leave it for its poll).
func (a *KernelStack) onRxDeliver(nc *nic.Conn, at sim.Time) {
	qi, ok := a.qIndex[nc.ID]
	if !ok {
		return
	}
	kernCore := a.w.KernCoreN(qi)
	desc, err := nc.RX.Pop()
	if err != nil {
		return
	}
	if a.cpDown {
		// The crashed kernel is not running softirqs; the descriptor is
		// popped (rings reset on reboot) and the frame is gone.
		a.CtlOutageDrops++
		return
	}
	p := desc.Pkt
	m := a.w.Model
	now := a.w.Eng.Now()

	kcost := sim.Duration(m.KernelStackFixed)

	// Demux to the owning connection first, so filtering and capture carry
	// attribution.
	var c *Conn
	if k, ok := p.Flow(); ok {
		if ci, ok := a.w.Kern.ConnByFlow(k.Reverse()); ok {
			if cc, ok := a.connFor(ci.ID); ok {
				c = cc
				meta := a.w.Kern.Meta(ci)
				meta.Enqueued = p.Meta.Enqueued
				p.Meta = meta
			}
		}
	}

	res := a.fw.EvaluateAt(filter.HookInput, p, now)
	kcost += softFilterCost(m, res)
	if a.tap != nil {
		a.tap.Offer(p, now)
	}
	a.w.Kern.ARP().Observe(p, now, false)

	_, kdone := kernCore.Acquire(now, kcost)
	if res.Action != filter.ActAccept {
		return
	}
	// The kernel answers ARP and ICMP echo for the host's address itself —
	// applications never see either under the kernel stack.
	if p.ARP != nil && p.ARP.Op == packet.ARPRequest && p.ARP.TargetIP == a.w.HostIP {
		reply := packet.NewARPReply(a.w.HostMAC, a.w.HostIP, p.ARP.SenderHW, p.ARP.SenderIP)
		a.w.Eng.At(kdone, func() { a.w.NIC.InjectTx(reply) })
		return
	}
	if p.IsEchoRequestTo(a.w.HostIP) {
		reply := packet.EchoReplyTo(p)
		a.w.Eng.At(kdone, func() { a.w.NIC.InjectTx(reply) })
		return
	}
	if p.ICMP != nil && p.ICMP.Type == packet.ICMPEchoReply && p.IP != nil && p.IP.Dst == a.w.HostIP {
		a.pings.complete(p.ICMP.ID, now)
		return
	}
	if c == nil {
		a.RxNoConn++
		return
	}
	// Transfer 2: kernel -> user copy, charged on the app core along with
	// the recv syscall, after wake.
	appCost := sim.Duration(m.Syscall) + m.Copy(p.FrameLen())
	if c.Mode == RxBlock {
		a.deliverWoken(c, p, kdone, appCost)
	} else {
		a.deliverPolled(c, p, kdone, appCost)
	}
}

// SetRxMode supports both modes: the kernel sees every arrival.
func (a *KernelStack) SetRxMode(c *Conn, mode RxMode) error {
	c.Mode = mode
	if mode == RxPoll {
		a.w.MarkPoller(a.w.Core(c.Info.PID))
	} else {
		a.w.UnmarkPoller(a.w.Core(c.Info.PID))
	}
	return nil
}

// InstallRule implements Arch: software netfilter, full owner support.
func (a *KernelStack) InstallRule(h filter.Hook, r *filter.Rule) error {
	return a.fw.Append(h, r)
}

// FlushRules implements Arch.
func (a *KernelStack) FlushRules() error {
	a.fw.Flush(filter.HookInput)
	a.fw.Flush(filter.HookOutput)
	return nil
}

// RuleHits reads the idx'th rule's software hit counter.
func (a *KernelStack) RuleHits(h filter.Hook, idx int) (uint64, bool) {
	rules := a.fw.Chain(h).Rules
	if idx < 0 || idx >= len(rules) {
		return 0, false
	}
	return rules[idx].Packets, true
}

// SetQdisc installs a software qdisc on the kernel TX path.
func (a *KernelStack) SetQdisc(q qos.Qdisc, classify func(*packet.Packet) uint32) error {
	a.sched = q
	a.classify = classify
	return nil
}

// AttachTap captures in the kernel with full attribution.
func (a *KernelStack) AttachTap(e *sniff.Expr) (*sniff.Tap, error) {
	a.tap = sniff.NewTap(e, 0)
	return a.tap, nil
}

// Filter exposes the software engine (tools list rules through it).
func (a *KernelStack) Filter() *filter.Engine { return a.fw }

// Qdisc exposes the software egress scheduler (the reconciler diffs it
// against journaled intent).
func (a *KernelStack) Qdisc() qos.Qdisc { return a.sched }

// CrashControlPlane implements ControlPlaneCrasher: a kernel-stack crash
// takes the policy tables *and* the dataplane with it — netfilter chains,
// qdisc and classifier evaporate, and until restart every packet in either
// direction is dropped (CtlOutageDrops).
func (a *KernelStack) CrashControlPlane() {
	a.cpDown = true
	a.fw = filter.NewEngine(true)
	a.fw.EnableConntrack(filter.NewConntrack(1<<16, 120*sim.Second))
	a.sched = nil
	a.classify = nil
}

// RestartControlPlane implements ControlPlaneCrasher; the reconciler
// reinstalls policies afterwards.
func (a *KernelStack) RestartControlPlane() { a.cpDown = false }

// ControlPlaneDown implements ControlPlaneCrasher.
func (a *KernelStack) ControlPlaneDown() bool { return a.cpDown }

// Ping sends a kernel-originated ICMP echo and completes when the softirq
// path sees the reply.
func (a *KernelStack) Ping(dst packet.IPv4, payload int, done func(sim.Duration, bool)) error {
	now := a.w.Eng.Now()
	id := a.pings.start(now, done)
	req := packet.NewICMPEcho(a.w.HostMAC, a.w.PeerMAC, a.w.HostIP, dst,
		packet.ICMPEchoRequest, id, 1, payload)
	m := a.w.Model
	_, kdone := a.w.KernCore().Acquire(now, sim.Duration(m.KernelStackFixed))
	a.w.Eng.At(kdone, func() { a.w.NIC.InjectTx(req) })
	a.w.Eng.After(pingTimeout, func() { a.pings.expire(id) })
	return nil
}
