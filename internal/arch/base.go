package arch

import (
	"norman/internal/filter"
	"norman/internal/packet"
	"norman/internal/sim"
)

// base carries the bookkeeping every architecture shares.
type base struct {
	w       *World
	deliver DeliverFunc
	conns   map[uint64]*Conn // by kernel conn id

	// Drops on the application TX path (ring full, no buffer).
	TxAppDrops uint64
}

func newBase(w *World) base {
	return base{w: w, conns: map[uint64]*Conn{}}
}

// World implements Arch.
func (b *base) World() *World { return b.w }

// SetDeliver implements Arch.
func (b *base) SetDeliver(fn DeliverFunc) { b.deliver = fn }

// upcall hands a packet to the application.
func (b *base) upcall(c *Conn, p *packet.Packet, at sim.Time) {
	c.Delivered++
	c.LastDeliver = at
	b.trace(p, at, "host", "rx_deliver", "")
	if b.deliver != nil {
		b.deliver(c, p, at)
	}
}

// traceStamp assigns a lifecycle trace ID to p at its first interposition
// point. No-op when tracing is off or p is already stamped (clones and
// retransmits keep their origin's ID).
func (b *base) traceStamp(p *packet.Packet) {
	if b.w.Tracer != nil && p.Meta.Trace == 0 {
		p.Meta.Trace = b.w.Tracer.StampID()
	}
}

// trace appends a span event for p when it carries a trace ID. One branch
// when tracing is off.
func (b *base) trace(p *packet.Packet, at sim.Time, layer, point, note string) {
	if b.w.Tracer == nil || p.Meta.Trace == 0 {
		return
	}
	b.w.Tracer.Record(p.Meta.Trace, at, layer, point, note)
}

// appRxCost is the application-side cost of consuming one descriptor:
// fixed ring bookkeeping, the descriptor-line touch (charged against the
// LLC — it usually hits the line DDIO just wrote), and a header fetch from
// the streamed payload (a partially hidden memory access). Ring-based
// consumption is zero-copy (§4.2: "abstractions that prevent unnecessary
// copies"), so the full payload is never copied.
// slotAddr must be the descriptor slot the packet occupied, captured before
// the Pop advanced the tail.
func (b *base) appRxCost(c *Conn, p *packet.Packet, slotAddr uint64) sim.Duration {
	m := b.w.Model
	cost := m.Cycles(40)
	if c.NC != nil {
		cost += b.memTouch(slotAddr, 64)
		cost += sim.Duration(m.DRAMAccess) / 2 // header fetch, OoO-overlapped
	} else {
		cost += m.Copy(p.FrameLen())
	}
	return cost
}

// memTouch charges a CPU access of n bytes at addr against the LLC: a
// streaming copy cost plus a penalty scaled by the miss fraction.
func (b *base) memTouch(addr uint64, n int) sim.Duration {
	m := b.w.Model
	baseCost := m.Copy(n)
	if b.w.LLC == nil {
		return baseCost
	}
	hits, lines := b.w.LLC.Touch(addr, n, false)
	if lines == 0 {
		return baseCost
	}
	missFrac := float64(lines-hits) / float64(lines)
	return baseCost + sim.Duration(m.DRAMAccess).Scale(missFrac) + baseCost.Scale(0.5*missFrac)
}

// deliverPolled models a poll-mode app noticing and consuming a packet: the
// core is poll-pinned (accounted by MarkPoller), so we charge only the
// processing occupancy and half a poll iteration of discovery latency.
func (b *base) deliverPolled(c *Conn, p *packet.Packet, now sim.Time, appCost sim.Duration) {
	core := b.w.Core(c.Info.PID)
	start := now.Add(sim.Duration(b.w.Model.PollIteration) / 2)
	if free := core.FreeAt(); free > start {
		start = free
	}
	b.w.Eng.At(start, func() {
		_, done := core.Acquire(b.w.Eng.Now(), appCost)
		b.w.Eng.At(done, func() { b.upcall(c, p, b.w.Eng.Now()) })
	})
}

// deliverWoken models a blocked app being woken by the kernel: context
// switch on the app core, then processing.
func (b *base) deliverWoken(c *Conn, p *packet.Packet, wakeAt sim.Time, appCost sim.Duration) {
	core := b.w.Core(c.Info.PID)
	b.w.Eng.At(wakeAt, func() {
		now := b.w.Eng.Now()
		_, done := core.Acquire(now, sim.Duration(b.w.Model.ContextSwitch)+appCost)
		b.w.Eng.At(done, func() { b.upcall(c, p, b.w.Eng.Now()) })
	})
}

// softFilterCost is the CPU time a software interposition layer spends
// evaluating a chain: fixed protocol bookkeeping plus per-rule work.
func softFilterCost(m interface{ Cycles(int) sim.Duration }, res filter.Result) sim.Duration {
	return m.Cycles(15 * res.RulesEvaluated)
}

// pinger tracks in-flight kernel pings (icmp id -> completion).
type pinger struct {
	nextID  uint16
	pending map[uint16]pendingPing
}

type pendingPing struct {
	sent sim.Time
	done func(sim.Duration, bool)
}

// start registers a new ping and returns its id.
func (pg *pinger) start(now sim.Time, done func(sim.Duration, bool)) uint16 {
	if pg.pending == nil {
		pg.pending = map[uint16]pendingPing{}
	}
	pg.nextID++
	pg.pending[pg.nextID] = pendingPing{sent: now, done: done}
	return pg.nextID
}

// complete resolves a ping by id; duplicate replies are ignored.
func (pg *pinger) complete(id uint16, now sim.Time) {
	p, ok := pg.pending[id]
	if !ok {
		return
	}
	delete(pg.pending, id)
	if p.done != nil {
		p.done(now.Sub(p.sent), true)
	}
}

// expire times out a ping by id.
func (pg *pinger) expire(id uint16) {
	p, ok := pg.pending[id]
	if !ok {
		return
	}
	delete(pg.pending, id)
	if p.done != nil {
		p.done(0, false)
	}
}

// pingTimeout is how long the kernel waits for an echo reply.
const pingTimeout = 100 * sim.Millisecond

// connFor maps a kernel connection id to the architecture handle.
func (b *base) connFor(id uint64) (*Conn, bool) {
	c, ok := b.conns[id]
	return c, ok
}

// register records a new handle.
func (b *base) register(c *Conn) { b.conns[c.Info.ID] = c }

// unregister removes a handle.
func (b *base) unregister(c *Conn) { delete(b.conns, c.Info.ID) }
