package arch

import (
	"testing"

	"norman/internal/filter"
	"norman/internal/packet"
	"norman/internal/sim"
)

// TestStatefulFirewallAdmitsOnlyInitiatedFlows: inbound traffic is accepted
// only after the connection has sent something — per-connection state on
// the NIC, shared between the egress (insert) and ingress (check) stages.
func TestStatefulFirewallAdmitsOnlyInitiatedFlows(t *testing.T) {
	a := New("kopi", WorldConfig{}).(*KOPI)
	w := a.World()
	w.Peer = func(*packet.Packet, sim.Time) {}

	u := w.Kern.AddUser(1, "u")
	proc := w.Kern.Spawn(u.UID, "p")
	active, err := a.Connect(proc, w.Flow(1000, 7))
	if err != nil {
		t.Fatal(err)
	}
	passive, err := a.Connect(proc, w.Flow(2000, 7))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.EnableStatefulFirewall(64); err != nil {
		t.Fatal(err)
	}

	delivered := map[uint64]int{}
	a.SetDeliver(func(c *Conn, _ *packet.Packet, _ sim.Time) { delivered[c.Info.ID]++ })

	// The active connection sends first; the passive one never does.
	a.Send(active, w.UDPTo(w.Flow(1000, 7), 64))
	w.Eng.Run()
	if a.StatefulEstablished() != 1 {
		t.Fatalf("established = %d", a.StatefulEstablished())
	}

	a.DeliverWire(w.UDPFrom(w.Flow(1000, 7), 64))
	a.DeliverWire(w.UDPFrom(w.Flow(2000, 7), 64))
	w.Eng.Run()

	if delivered[active.Info.ID] != 1 {
		t.Fatalf("initiated flow should receive: %v", delivered)
	}
	if delivered[passive.Info.ID] != 0 {
		t.Fatalf("uninitiated flow must be dropped: %v", delivered)
	}
	if a.StatefulRejected() != 1 {
		t.Fatalf("rejected = %d", a.StatefulRejected())
	}
}

// TestStatefulFirewallTableExhaustion: with a 1-entry table, the second
// connection's state cannot be inserted and its return traffic is lost —
// the §5 resource-exhaustion failure mode, observable and countable.
func TestStatefulFirewallTableExhaustion(t *testing.T) {
	a := New("kopi", WorldConfig{}).(*KOPI)
	w := a.World()
	w.Peer = func(*packet.Packet, sim.Time) {}

	u := w.Kern.AddUser(1, "u")
	proc := w.Kern.Spawn(u.UID, "p")
	c1, _ := a.Connect(proc, w.Flow(1000, 7))
	c2, _ := a.Connect(proc, w.Flow(2000, 7))
	if err := a.EnableStatefulFirewall(1); err != nil {
		t.Fatal(err)
	}

	delivered := map[uint64]int{}
	a.SetDeliver(func(c *Conn, _ *packet.Packet, _ sim.Time) { delivered[c.Info.ID]++ })

	a.Send(c1, w.UDPTo(w.Flow(1000, 7), 64))
	a.Send(c2, w.UDPTo(w.Flow(2000, 7), 64))
	w.Eng.Run()
	if a.StatefulEstablished() != 1 {
		t.Fatalf("table should cap at 1: %d", a.StatefulEstablished())
	}

	a.DeliverWire(w.UDPFrom(w.Flow(1000, 7), 64))
	a.DeliverWire(w.UDPFrom(w.Flow(2000, 7), 64))
	w.Eng.Run()
	total := delivered[c1.Info.ID] + delivered[c2.Info.ID]
	if total != 1 {
		t.Fatalf("exactly one flow fits the table: %v", delivered)
	}
	if a.StatefulRejected() != 1 {
		t.Fatalf("rejected = %d", a.StatefulRejected())
	}
}

// TestKernelStackStatefulRules: the software counterpart — a default-deny
// INPUT chain with an ESTABLISHED exception, enforced by the in-kernel
// conntrack on the kernelstack architecture.
func TestKernelStackStatefulRules(t *testing.T) {
	a := New("kernelstack", WorldConfig{}).(*KernelStack)
	w := a.World()
	w.Peer = func(*packet.Packet, sim.Time) {}

	u := w.Kern.AddUser(1, "u")
	proc := w.Kern.Spawn(u.UID, "p")
	flow := w.Flow(1000, 7)
	c, err := a.Connect(proc, flow)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.InstallRule(filter.HookInput, &filter.Rule{
		State: filter.State(filter.StateEstablished), Action: filter.ActAccept,
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.InstallRule(filter.HookInput, &filter.Rule{Action: filter.ActDrop}); err != nil {
		t.Fatal(err)
	}

	delivered := 0
	a.SetDeliver(func(*Conn, *packet.Packet, sim.Time) { delivered++ })

	// Unsolicited inbound: dropped by the default-deny.
	a.DeliverWire(w.UDPFrom(flow, 64))
	w.Eng.Run()
	if delivered != 0 {
		t.Fatal("unsolicited inbound must be dropped")
	}
	// After we talk first, the reply direction is established.
	a.Send(c, w.UDPTo(flow, 64))
	w.Eng.Run()
	a.DeliverWire(w.UDPFrom(flow, 64))
	w.Eng.Run()
	if delivered != 1 {
		t.Fatalf("established reply should be delivered: %d", delivered)
	}
}
