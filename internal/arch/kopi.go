package arch

import (
	"norman/internal/filter"
	"norman/internal/mem"
	"norman/internal/nic"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/sniff"
)

// KOPI is the paper's proposal (§3/§4): the bypass datapath — applications
// own rings, one transfer per packet — with the kernel's interposition
// logic executing on the NIC. The kernel programs per-connection trusted
// metadata (uid/pid/cmd), compiles firewall chains to overlay programs,
// installs the egress scheduler, and monitors notification queues so
// blocked threads can be woken (§4.3).
type KOPI struct {
	direct

	// LastProgramLoad is the control-plane latency of the most recent
	// overlay (re)load — E4's online-update metric.
	LastProgramLoad sim.Duration

	pings pinger
}

// NewKOPI builds the architecture on a world.
func NewKOPI(w *World) *KOPI {
	a := &KOPI{}
	a.init(w, true, true)
	w.NIC.OnNotify = a.onNotify
	// The kernel configured the NIC, so the NIC reports dataplane ARP
	// traffic back to the kernel ARP cache — restoring the global view the
	// debugging scenario needs, with per-process attribution from the
	// stamped metadata.
	w.NIC.OnTransmit = func(p *packet.Packet, at sim.Time) {
		w.Kern.ARP().Observe(p, at, true)
		w.SendOnWire(p, at)
	}
	return a
}

// DeliverWire feeds inbound frames through the NIC, teaching the kernel ARP
// cache along the way. ARP requests for the host's address are answered by
// the kernel (which owns the NIC), after a slow-path trip — applications
// need not (and cannot reliably) speak ARP themselves under KOPI.
func (a *KOPI) DeliverWire(p *packet.Packet) {
	now := a.w.Eng.Now()
	a.w.Kern.ARP().Observe(p, now, false)
	if p.ARP != nil && p.ARP.Op == packet.ARPRequest && p.ARP.TargetIP == a.w.HostIP {
		m := a.w.Model
		_, done := a.w.KernCore().Acquire(now, sim.Duration(m.Interrupt)+m.Cycles(300))
		reply := packet.NewARPReply(a.w.HostMAC, a.w.HostIP, p.ARP.SenderHW, p.ARP.SenderIP)
		a.w.Eng.At(done, func() { a.w.NIC.InjectTx(reply) })
		return
	}
	if p.IsEchoRequestTo(a.w.HostIP) {
		m := a.w.Model
		_, done := a.w.KernCore().Acquire(now, sim.Duration(m.Interrupt)+m.Cycles(300))
		reply := packet.EchoReplyTo(p)
		a.w.Eng.At(done, func() { a.w.NIC.InjectTx(reply) })
		return
	}
	if p.ICMP != nil && p.ICMP.Type == packet.ICMPEchoReply && p.IP != nil && p.IP.Dst == a.w.HostIP {
		a.pings.complete(p.ICMP.ID, now)
		return
	}
	a.direct.DeliverWire(p)
}

// Name implements Arch.
func (a *KOPI) Name() string { return "kopi" }

// Caps implements Arch.
func (a *KOPI) Caps() Caps {
	return Caps{
		OwnerFiltering:     true,
		GlobalCapture:      true,
		CaptureAttribution: true,
		ProcessQoS:         true,
		FlowQoS:            true,
		BlockingIO:         true,
		ARPVisibility:      true,
		Transfers:          1,
	}
}

// InstallRule compiles the updated chain onto the NIC; owner rules work
// because connections carry kernel-programmed metadata.
func (a *KOPI) InstallRule(h filter.Hook, r *filter.Rule) error {
	if err := a.fw.Append(h, r); err != nil {
		return err
	}
	load, err := a.reloadPrograms()
	if err != nil {
		return err
	}
	a.LastProgramLoad = load
	return nil
}

// FlushRules implements Arch.
func (a *KOPI) FlushRules() error {
	a.fw.Flush(filter.HookInput)
	a.fw.Flush(filter.HookOutput)
	load, err := a.reloadPrograms()
	a.LastProgramLoad = load
	return err
}

// AttachTap captures on the NIC with full attribution.
func (a *KOPI) AttachTap(e *sniff.Expr) (*sniff.Tap, error) {
	return a.attachNICTap(e)
}

// SetRxMode adds blocking receive: the NIC appends to the process's
// notification queue and the kernel monitor wakes the thread (§4.3).
func (a *KOPI) SetRxMode(c *Conn, mode RxMode) error {
	c.Mode = mode
	if mode == RxPoll {
		c.NC.NotifyRx = false
		a.w.MarkPoller(a.w.Core(c.Info.PID))
		return nil
	}
	c.NC.NotifyRx = true
	a.w.UnmarkPoller(a.w.Core(c.Info.PID))
	return nil
}

// onNotify is the kernel control plane noticing a notification and waking
// the blocked owner: an interrupt on the kernel core, then a context switch
// on the app core; the woken thread drains its RX ring. At high arrival
// rates the per-notification interrupt dominates — which is why §4.3 lets
// the control plane enable coalescing (Conn.NotifyCoalesce) on busy queues.
func (a *KOPI) onNotify(nc *nic.Conn, kind mem.NotifyKind, at sim.Time) {
	if kind != mem.NotifyRxReady {
		return
	}
	c, ok := a.connFor(nc.ID)
	if !ok || c.Mode != RxBlock {
		return
	}
	// Drain the process's notification queue (the monitor batches).
	for {
		if _, ok := nc.Queue.Pop(); !ok {
			break
		}
	}
	_, intrDone := a.w.KernCore().Acquire(at, sim.Duration(a.w.Model.Interrupt))
	wakeAt := intrDone.Add(sim.Duration(a.w.Model.ContextSwitch))
	a.w.Eng.At(wakeAt, func() {
		a.drainBlocked(c)
	})
}

// Ping sends a kernel-originated ICMP echo through the NIC's management
// path; the reply is intercepted on the kernel slow path.
func (a *KOPI) Ping(dst packet.IPv4, payload int, done func(sim.Duration, bool)) error {
	now := a.w.Eng.Now()
	id := a.pings.start(now, done)
	req := packet.NewICMPEcho(a.w.HostMAC, a.w.PeerMAC, a.w.HostIP, dst,
		packet.ICMPEchoRequest, id, 1, payload)
	m := a.w.Model
	_, kdone := a.w.KernCore().Acquire(now, m.Cycles(300))
	a.w.Eng.At(kdone, func() { a.w.NIC.InjectTx(req) })
	a.w.Eng.After(pingTimeout, func() { a.pings.expire(id) })
	return nil
}

// SetRxCoalesce sets the notification coalescing window for a blocked
// connection: at most one wake interrupt per window, with all packets that
// arrived meanwhile drained by that single wake.
func (a *KOPI) SetRxCoalesce(c *Conn, d sim.Duration) {
	c.NC.NotifyCoalesce = d
}

// drainBlocked consumes every pending descriptor for a woken connection,
// charging per-packet app costs sequentially on its core.
func (a *KOPI) drainBlocked(c *Conn) {
	core := a.w.Core(c.Info.PID)
	for {
		slotAddr := c.NC.RX.TailAddr()
		desc, err := c.NC.RX.Pop()
		if err != nil {
			return
		}
		p := desc.Pkt
		now := a.w.Eng.Now()
		_, done := core.Acquire(now, a.appRxCost(c, p, slotAddr))
		a.w.Eng.At(done, func() { a.upcall(c, p, a.w.Eng.Now()) })
	}
}
