package arch

// Thin delegations to the KOPI engine (internal/core), which owns the
// stateful-firewall programs and their shared-table deployment.

// EnableStatefulFirewall loads the NIC-resident connection-tracking
// firewall; see core.Interposer.EnableStatefulFirewall.
func (a *KOPI) EnableStatefulFirewall(capacity int) error {
	return a.engine.EnableStatefulFirewall(capacity)
}

// StatefulEstablished returns the number of tracked connections, or -1 if
// the stateful firewall is not loaded.
func (a *KOPI) StatefulEstablished() int { return a.engine.StatefulEstablished() }

// StatefulRejected returns inbound packets dropped for lack of state.
func (a *KOPI) StatefulRejected() uint64 { return a.engine.StatefulRejected() }
