package arch

import (
	"norman/internal/filter"
	"norman/internal/kernel"
	"norman/internal/mem"
	"norman/internal/nic"
	"norman/internal/packet"
	"norman/internal/qos"
	"norman/internal/sim"
	"norman/internal/sniff"
)

// Sidecar is the IX/Snap-style dedicated dataplane core (§1's "physical
// movement" alternative): applications exchange packets with an
// OS-integrated dataplane process over shared-memory rings, and that
// process — pinned to its own core, polling — runs the interposition logic
// in software before touching the NIC. Full manageability, one burned core,
// and per-packet coherence traffic between cores.
type Sidecar struct {
	base

	fw       *filter.Engine
	sched    qos.Qdisc
	classify func(*packet.Packet) uint32
	tap      *sniff.Tap

	sq      *nic.Conn // sidecar-owned NIC queue
	pumping bool

	// Per-connection app<->sidecar rings.
	appRings map[uint64]*appRings

	RxNoConn uint64

	pings pinger
}

type appRings struct {
	toSidecar *mem.Ring
	toApp     *mem.Ring
	draining  bool // a TX drain loop on the dataplane core is active
}

// NewSidecar builds the architecture on a world.
func NewSidecar(w *World) *Sidecar {
	a := &Sidecar{
		base:     newBase(w),
		fw:       filter.NewEngine(true), // OS-integrated: has the process view
		appRings: map[uint64]*appRings{},
	}
	a.fw.EnableConntrack(filter.NewConntrack(1<<16, 120*sim.Second))
	snapProc := w.Kern.Spawn(0, "snap-dataplane")
	ci, err := w.Kern.RegisterConn(snapProc, packet.FlowKey{})
	if err != nil {
		panic("arch: registering sidecar queue: " + err.Error())
	}
	sq, err := w.NIC.OpenConn(ci.ID, packet.Meta{ConnID: ci.ID}, nil)
	if err != nil {
		panic("arch: opening sidecar NIC queue: " + err.Error())
	}
	w.NIC.SetDefaultConn(ci.ID)
	a.sq = sq
	w.NIC.OnRxDeliver = a.onRxDeliver
	w.NIC.OnTransmit = w.SendOnWire
	// The dataplane core spins regardless of load — the §2 scheduling
	// scenario's "burning CPU cores" made structural.
	w.MarkPoller(w.KernCore())
	return a
}

// Name implements Arch.
func (a *Sidecar) Name() string { return "sidecar" }

// Caps implements Arch.
func (a *Sidecar) Caps() Caps {
	return Caps{
		OwnerFiltering:     true,
		GlobalCapture:      true,
		CaptureAttribution: true,
		ProcessQoS:         true,
		FlowQoS:            true,
		BlockingIO:         true,
		ARPVisibility:      true,
		Transfers:          2,
		BurnsCore:          true,
	}
}

// Connect allocates the shared-memory ring pair between the app and the
// dataplane core.
func (a *Sidecar) Connect(proc *kernel.Process, flow packet.FlowKey) (*Conn, error) {
	ci, err := a.w.Kern.RegisterConn(proc, flow)
	if err != nil {
		return nil, err
	}
	a.appRings[ci.ID] = &appRings{
		toSidecar: mem.NewRing(1024, a.w.Alloc.Take(1024*64, 4096)),
		toApp:     mem.NewRing(1024, a.w.Alloc.Take(1024*64, 4096)),
	}
	c := &Conn{Info: ci, Mode: RxBlock} // OS-integrated: blocking works
	a.register(c)
	return c, nil
}

// Close implements Arch.
func (a *Sidecar) Close(c *Conn) error {
	a.unregister(c)
	delete(a.appRings, c.Info.ID)
	return a.w.Kern.UnregisterConn(c.Info.ID)
}

// sidecarFixed is the per-packet software cost on the dataplane core — Snap
// engines are leaner than the full kernel stack.
func (a *Sidecar) sidecarFixed() sim.Duration { return a.w.Model.Cycles(300) }

// Send: the app publishes into its shared ring (cheap), then the dataplane
// core pulls the packet across the coherence fabric, interposes, and drives
// the NIC.
func (a *Sidecar) Send(c *Conn, p *packet.Packet) {
	m := a.w.Model
	now := a.w.Eng.Now()
	appCore := a.w.Core(c.Info.PID)
	rings := a.appRings[c.Info.ID]

	_, appDone := appCore.Acquire(now, m.Cycles(60))
	a.w.Eng.At(appDone, func() {
		if err := rings.toSidecar.Push(mem.Desc{Pkt: p, Produced: a.w.Eng.Now()}); err != nil {
			a.TxAppDrops++
			return
		}
		a.kickTx(c, rings)
	})
}

// SendBatch publishes a burst into the shared ring in one go; the dataplane
// core picks the whole burst up on its next poll iteration.
func (a *Sidecar) SendBatch(c *Conn, pkts []*packet.Packet) {
	if len(pkts) == 0 {
		return
	}
	m := a.w.Model
	now := a.w.Eng.Now()
	appCore := a.w.Core(c.Info.PID)
	rings := a.appRings[c.Info.ID]
	batch := append([]*packet.Packet(nil), pkts...)
	_, appDone := appCore.Acquire(now, m.Cycles(60*len(pkts)))
	a.w.Eng.At(appDone, func() {
		for _, p := range batch {
			if err := rings.toSidecar.Push(mem.Desc{Pkt: p, Produced: a.w.Eng.Now()}); err != nil {
				a.TxAppDrops++
			}
		}
		a.kickTx(c, rings)
	})
}

// kickTx starts the dataplane core's drain of a connection's shared ring if
// it is not already running. The drain is paced by the core: the next pop
// happens only after the previous packet's processing completes, so the
// bounded ring — not an unbounded core backlog — absorbs overload and
// backpressures the application.
func (a *Sidecar) kickTx(c *Conn, rings *appRings) {
	if rings.draining {
		return
	}
	rings.draining = true
	// The polling dataplane core notices the ring within one iteration.
	a.w.Eng.After(sim.Duration(a.w.Model.PollIteration), func() { a.drainAppTx(c, rings) })
}

func (a *Sidecar) drainAppTx(c *Conn, rings *appRings) {
	desc, err := rings.toSidecar.Pop()
	if err != nil {
		rings.draining = false
		return
	}
	done := a.sidecarTx(c, desc.Pkt)
	a.w.Eng.At(done, func() { a.drainAppTx(c, rings) })
}

// sidecarTx is the dataplane-core egress half; it returns when the core
// finishes this packet so the drain loop can pace itself.
func (a *Sidecar) sidecarTx(c *Conn, p *packet.Packet) sim.Time {
	m := a.w.Model
	now := a.w.Eng.Now()

	meta := a.w.Kern.Meta(c.Info)
	meta.Enqueued = now
	p.Meta = meta

	cost := m.CrossCore(64+p.FrameLen()) + a.sidecarFixed()
	res := a.fw.EvaluateAt(filter.HookOutput, p, now)
	cost += softFilterCost(m, res)
	if a.tap != nil {
		a.tap.Offer(p, now)
	}
	a.w.Kern.ARP().Observe(p, now, true)
	_, done := a.w.KernCore().Acquire(now, cost)
	if res.Action != filter.ActAccept {
		return done
	}
	a.w.Eng.At(done, func() {
		if a.classify != nil {
			p.Meta.Class = a.classify(p)
		}
		if a.sched != nil {
			a.sched.Enqueue(p, a.w.Eng.Now())
			a.pumpTx()
			return
		}
		a.pushToNIC(p)
	})
	return done
}

// pumpTx drains the software qdisc into the NIC ring.
func (a *Sidecar) pumpTx() {
	if a.pumping || a.sched == nil {
		return
	}
	now := a.w.Eng.Now()
	at, ok := a.sched.ReadyAt(now)
	if !ok {
		return
	}
	if at < now {
		at = now
	}
	a.pumping = true
	a.w.Eng.At(at, func() {
		a.pumping = false
		now := a.w.Eng.Now()
		// Byte-queue-limit: keep only a few frames in the NIC ring so the
		// qdisc — not the FIFO ring — is where packets wait. Without this
		// the deep ring erases the scheduler's differentiation, the exact
		// bufferbloat problem BQL fixes in Linux.
		if a.sq.TX.Len() >= 4 {
			a.pumping = true
			a.w.Eng.After(a.w.Model.Wire(1538), func() {
				a.pumping = false
				a.pumpTx()
			})
			return
		}
		if p, ok := a.sched.Dequeue(now); ok {
			// pushToNIC re-arms the pump once its push has landed, so the
			// BQL check above always sees the true ring occupancy.
			a.pushToNIC(p)
			return
		}
		// No progress: a shaped qdisc deferred; retry shortly.
		a.w.Eng.After(100*sim.Nanosecond, a.pumpTx)
	})
}

func (a *Sidecar) pushToNIC(p *packet.Packet) {
	m := a.w.Model
	now := a.w.Eng.Now()
	_, done := a.w.KernCore().Acquire(now, m.Cycles(30)+sim.Duration(m.MMIOWrite))
	a.w.Eng.At(done, func() {
		if err := a.sq.TX.Push(mem.Desc{Pkt: p, Produced: p.Meta.Enqueued}); err != nil {
			a.TxAppDrops++
			return
		}
		a.w.NIC.DoorbellTx(a.sq)
		a.pumpTx()
	})
}

// DeliverWire implements Arch.
func (a *Sidecar) DeliverWire(p *packet.Packet) { a.w.NIC.DeliverFromWire(p) }

// onRxDeliver is the dataplane-core ingress half: pop the NIC queue,
// interpose, push the packet across the fabric to the owning app.
func (a *Sidecar) onRxDeliver(nc *nic.Conn, at sim.Time) {
	if nc.ID != a.sq.ID {
		return
	}
	desc, err := nc.RX.Pop()
	if err != nil {
		return
	}
	p := desc.Pkt
	m := a.w.Model
	now := a.w.Eng.Now()

	var c *Conn
	if k, ok := p.Flow(); ok {
		if ci, ok := a.w.Kern.ConnByFlow(k.Reverse()); ok {
			if cc, ok := a.connFor(ci.ID); ok {
				c = cc
				meta := a.w.Kern.Meta(ci)
				meta.Enqueued = p.Meta.Enqueued
				p.Meta = meta
			}
		}
	}

	cost := a.sidecarFixed()
	res := a.fw.EvaluateAt(filter.HookInput, p, now)
	cost += softFilterCost(m, res)
	if a.tap != nil {
		a.tap.Offer(p, now)
	}
	a.w.Kern.ARP().Observe(p, now, false)
	_, done := a.w.KernCore().Acquire(now, cost)
	if res.Action != filter.ActAccept {
		return
	}
	// The OS-integrated dataplane answers host ARP and ICMP echo itself.
	if p.ARP != nil && p.ARP.Op == packet.ARPRequest && p.ARP.TargetIP == a.w.HostIP {
		reply := packet.NewARPReply(a.w.HostMAC, a.w.HostIP, p.ARP.SenderHW, p.ARP.SenderIP)
		a.w.Eng.At(done, func() { a.w.NIC.InjectTx(reply) })
		return
	}
	if p.IsEchoRequestTo(a.w.HostIP) {
		reply := packet.EchoReplyTo(p)
		a.w.Eng.At(done, func() { a.w.NIC.InjectTx(reply) })
		return
	}
	if p.ICMP != nil && p.ICMP.Type == packet.ICMPEchoReply && p.IP != nil && p.IP.Dst == a.w.HostIP {
		a.pings.complete(p.ICMP.ID, now)
		return
	}
	if c == nil {
		a.RxNoConn++
		return
	}
	rings := a.appRings[c.Info.ID]
	a.w.Eng.At(done, func() {
		if err := rings.toApp.Push(mem.Desc{Pkt: p, Produced: p.Meta.Enqueued}); err != nil {
			return // app ring overflow
		}
		d, err := rings.toApp.Pop()
		if err != nil {
			return
		}
		// App-side cost includes pulling the payload across the fabric.
		appCost := m.Cycles(40) + m.CrossCore(64+d.Pkt.FrameLen())
		if c.Mode == RxBlock {
			// The dataplane core can signal the kernel scheduler.
			a.deliverWoken(c, d.Pkt, a.w.Eng.Now(), appCost)
		} else {
			a.deliverPolled(c, d.Pkt, a.w.Eng.Now(), appCost)
		}
	})
}

// SetRxMode supports both modes (the dataplane core sees every arrival).
func (a *Sidecar) SetRxMode(c *Conn, mode RxMode) error {
	c.Mode = mode
	if mode == RxPoll {
		a.w.MarkPoller(a.w.Core(c.Info.PID))
	} else {
		a.w.UnmarkPoller(a.w.Core(c.Info.PID))
	}
	return nil
}

// InstallRule implements Arch: software rules with full owner support.
func (a *Sidecar) InstallRule(h filter.Hook, r *filter.Rule) error {
	return a.fw.Append(h, r)
}

// FlushRules implements Arch.
func (a *Sidecar) FlushRules() error {
	a.fw.Flush(filter.HookInput)
	a.fw.Flush(filter.HookOutput)
	return nil
}

// RuleHits reads the idx'th rule's software hit counter.
func (a *Sidecar) RuleHits(h filter.Hook, idx int) (uint64, bool) {
	rules := a.fw.Chain(h).Rules
	if idx < 0 || idx >= len(rules) {
		return 0, false
	}
	return rules[idx].Packets, true
}

// SetQdisc installs a software qdisc on the dataplane core.
func (a *Sidecar) SetQdisc(q qos.Qdisc, classify func(*packet.Packet) uint32) error {
	a.sched = q
	a.classify = classify
	return nil
}

// AttachTap captures on the dataplane core with full attribution.
func (a *Sidecar) AttachTap(e *sniff.Expr) (*sniff.Tap, error) {
	a.tap = sniff.NewTap(e, 0)
	return a.tap, nil
}

// Ping sends a dataplane-core-originated ICMP echo.
func (a *Sidecar) Ping(dst packet.IPv4, payload int, done func(sim.Duration, bool)) error {
	now := a.w.Eng.Now()
	id := a.pings.start(now, done)
	req := packet.NewICMPEcho(a.w.HostMAC, a.w.PeerMAC, a.w.HostIP, dst,
		packet.ICMPEchoRequest, id, 1, payload)
	_, done2 := a.w.KernCore().Acquire(now, a.sidecarFixed())
	a.w.Eng.At(done2, func() { a.w.NIC.InjectTx(req) })
	a.w.Eng.After(pingTimeout, func() { a.pings.expire(id) })
	return nil
}
