package arch

import (
	"testing"

	"norman/internal/packet"
	"norman/internal/sim"
)

// TestSmokeEchoAllArchitectures runs a 100-packet UDP echo through every
// architecture: the app sends, the peer echoes, the app must receive every
// response. This validates the end-to-end event plumbing each architecture
// wires differently.
func TestSmokeEchoAllArchitectures(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			a := New(name, WorldConfig{})
			if a == nil {
				t.Fatalf("unknown architecture %q", name)
			}
			w := a.World()

			// Peer: echo every UDP packet back.
			w.Peer = func(p *packet.Packet, at sim.Time) {
				if p.UDP == nil {
					return
				}
				resp := packet.NewUDP(w.PeerMAC, w.HostMAC, p.IP.Dst, p.IP.Src,
					p.UDP.DstPort, p.UDP.SrcPort, p.PayloadLen)
				a.DeliverWire(resp)
			}

			alice := w.Kern.AddUser(1000, "alice")
			proc := w.Kern.Spawn(alice.UID, "echoclient")
			flow := w.Flow(40000, 7)
			c, err := a.Connect(proc, flow)
			if err != nil {
				t.Fatalf("Connect: %v", err)
			}

			got := 0
			a.SetDeliver(func(_ *Conn, p *packet.Packet, at sim.Time) {
				got++
			})

			const n = 100
			for i := 0; i < n; i++ {
				i := i
				w.Eng.At(sim.Time(i)*sim.Time(10*sim.Microsecond), func() {
					a.Send(c, w.UDPTo(flow, 512))
				})
			}
			end := w.Eng.Run()
			if got != n {
				t.Fatalf("%s: delivered %d/%d echoes (end=%v, nic rx=%d drops: steer=%d ring=%d verdict=%d slow=%d)",
					name, got, n, end, w.NIC.RxWire, w.NIC.RxDropNoSteer, w.NIC.RxDropRing, w.NIC.RxDropVerdict, w.NIC.RxSlowPath)
			}
			if end <= 0 {
				t.Fatalf("%s: simulation did not advance", name)
			}
		})
	}
}
