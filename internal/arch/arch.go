// Package arch implements the five dataplane architectures the paper
// compares, over the shared substrates (sim, timing, cache, mem, nic,
// filter, qos, sniff, kernel):
//
//   - kernelstack — the traditional in-kernel dataplane: syscalls, copies,
//     software netfilter/qdisc. Two transfers, virtual data movement.
//   - bypass — DPDK/Arrakis-style raw kernel bypass: rings + doorbells, no
//     interposition point at all.
//   - sidecar — IX/Snap-style dedicated dataplane core: interposition in
//     software on another core. Two transfers, physical data movement,
//     burns a core.
//   - hypervisor — AccelNet-style NIC switch: on-NIC flow-table policies,
//     but no process view and no way to signal processes.
//   - kopi — the paper's proposal: on-NIC interposition configured by the
//     kernel, with trusted per-connection process metadata, notification
//     queues and loadable overlay programs.
//
// Each architecture exposes the same Arch interface so the experiments can
// sweep across them; operations an architecture cannot support return
// ErrUnsupported (or filter.ErrNeedsProcessView), which is itself the E2
// result.
package arch

import (
	"errors"

	"norman/internal/filter"
	"norman/internal/kernel"
	"norman/internal/nic"
	"norman/internal/packet"
	"norman/internal/qos"
	"norman/internal/sim"
	"norman/internal/sniff"
)

// ErrUnsupported marks an administrative capability an architecture cannot
// provide at any price — the paper's manageability gap.
var ErrUnsupported = errors.New("arch: operation unsupported by this architecture")

// ControlPlaneCrasher is the optional crash-recovery surface (internal/
// recovery, E10). CrashControlPlane models the control plane dying: its
// in-memory policy state (filter chains, qdisc bindings) is wiped the way a
// process crash wipes a heap. What happens to the *dataplane* is the
// architectural contrast — on ring architectures the NIC keeps forwarding
// with the last-installed policies; on the kernel stack the control plane
// IS the dataplane, so traffic stops until restart. RestartControlPlane
// only revives the (now amnesiac) control plane; rebuilding its state is
// the reconciler's job.
type ControlPlaneCrasher interface {
	CrashControlPlane()
	RestartControlPlane()
	ControlPlaneDown() bool
}

// RxMode selects how the owning application learns about arrivals.
type RxMode uint8

// Receive modes.
const (
	RxPoll  RxMode = iota // spin on the ring (burns the core)
	RxBlock               // sleep; the kernel wakes the thread (needs arrival visibility)
)

func (m RxMode) String() string {
	if m == RxBlock {
		return "block"
	}
	return "poll"
}

// Caps describes what an architecture's interposition point can do; E2
// renders these (verified behaviorally, not just declared) as the paper's
// scenario matrix.
type Caps struct {
	OwnerFiltering     bool // iptables --uid-owner/--cmd-owner
	GlobalCapture      bool // tcpdump over all applications
	CaptureAttribution bool // captures carry pid/uid/cmd
	ProcessQoS         bool // per-process/user shaping (WFQ by uid)
	FlowQoS            bool // 5-tuple shaping only
	BlockingIO         bool // apps can sleep until arrival
	ARPVisibility      bool // kernel ARP cache sees dataplane ARP
	Transfers          int  // per-packet data transfers app->NIC
	BurnsCore          bool // a core is dedicated to the dataplane
}

// Conn is an application connection handle on some architecture.
type Conn struct {
	Info *kernel.ConnInfo
	NC   *nic.Conn // direct NIC rings, nil when the kernel owns the datapath
	Mode RxMode

	// Delivered counts packets handed to the application.
	Delivered uint64
	// LastDeliver is the virtual time of the most recent delivery.
	LastDeliver sim.Time
}

// DeliverFunc is the application-receive upcall. It runs after all
// architecture-side receive costs have been charged.
type DeliverFunc func(c *Conn, p *packet.Packet, at sim.Time)

// Arch is the uniform surface the experiments drive.
type Arch interface {
	Name() string
	Caps() Caps
	World() *World

	// Connect opens a connection for proc with the given local->remote
	// flow, allocating whatever the dataplane needs (§4.3).
	Connect(proc *kernel.Process, flow packet.FlowKey) (*Conn, error)
	// Close releases the connection.
	Close(c *Conn) error
	// Send transmits one packet on the connection, charging the full
	// architecture-specific TX path.
	Send(c *Conn, p *packet.Packet)
	// SendBatch transmits a burst, amortizing whatever the architecture
	// can amortize (one doorbell per burst on ring dataplanes, one
	// sendmmsg-style syscall on the kernel stack).
	SendBatch(c *Conn, pkts []*packet.Packet)
	// SetDeliver installs the application receive upcall.
	SetDeliver(fn DeliverFunc)
	// SetRxMode selects poll or block delivery; RxBlock fails where the
	// kernel cannot see arrivals.
	SetRxMode(c *Conn, mode RxMode) error

	// DeliverWire injects a frame arriving from the network.
	DeliverWire(p *packet.Packet)

	// InstallRule adds a firewall rule at the architecture's interposition
	// point, if it has one.
	InstallRule(h filter.Hook, r *filter.Rule) error
	// FlushRules removes all firewall rules.
	FlushRules() error
	// RuleHits returns how many packets matched the idx'th rule of a hook
	// (the `iptables -L -v` column); ok is false where the architecture
	// keeps no such state.
	RuleHits(h filter.Hook, idx int) (uint64, bool)
	// SetQdisc installs an egress scheduler with a classifier at the
	// interposition point.
	SetQdisc(q qos.Qdisc, classify func(*packet.Packet) uint32) error
	// AttachTap installs a capture tap with a filter expression.
	AttachTap(e *sniff.Expr) (*sniff.Tap, error)

	// Ping sends one kernel-originated ICMP echo to dst and reports the
	// round trip. It requires an architecture whose kernel can both send
	// management frames and *see the reply* — under raw bypass and the
	// hypervisor switch the reply lands in no one's queue, so Ping returns
	// ErrUnsupported (the admin's oldest tool, gone).
	Ping(dst packet.IPv4, payload int, done func(rtt sim.Duration, ok bool)) error
}
