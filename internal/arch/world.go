package arch

import (
	"fmt"

	"norman/internal/cache"
	"norman/internal/kernel"
	"norman/internal/mem"
	"norman/internal/nic"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/telemetry"
	"norman/internal/timing"
)

// World is the simulated machine every architecture is built on: one host
// (cores, LLC, kernel control plane), one SmartNIC, and a wire whose far end
// the experiment supplies.
type World struct {
	Eng *sim.Engine
	// Coord is the shard coordinator, non-nil only when WorldConfig.Shards
	// > 1: the architecture's own dataplane runs on shard 0 (Eng aliases
	// Coord.Engine(0)) and callers drive virtual time through the
	// coordinator's barrier loop instead of the engine directly.
	Coord *sim.Sharded
	Model timing.Model
	LLC   *cache.LLC
	Alloc *mem.Alloc
	Kern  *kernel.Kernel
	NIC   *nic.NIC

	// Host addressing.
	HostMAC packet.MAC
	HostIP  packet.IPv4
	PeerMAC packet.MAC
	PeerIP  packet.IPv4

	// Peer receives frames that left on the wire, after propagation. The
	// experiment installs it (echo server, sink, traffic source...).
	Peer func(p *packet.Packet, at sim.Time)

	// Tracer is the packet-lifecycle tracer, nil unless EnableTracing was
	// called. When set, the NIC stamps trace IDs and every interposition
	// point appends a span event.
	Tracer *telemetry.Tracer

	cores     map[uint32]*sim.Server // per-process app cores
	kernCores []*sim.Server          // kernel / sidecar dataplane cores (softirq queues)
	pollers   map[*sim.Server]bool   // cores pinned at 100% by poll loops
}

// WorldConfig parameterizes NewWorld; zero values take defaults.
type WorldConfig struct {
	Model      timing.Model
	RingSize   int
	BufBytes   int
	SRAMBudget int
	NoLLC      bool // disable cache modeling (DDIO ablation)
	// KernQueues is the number of kernel/softirq cores (multi-queue RSS on
	// the kernel-stack architecture). 0 or 1 = single queue.
	KernQueues int
	// Shards > 1 runs the world under a shard coordinator: the classic
	// dataplane stays on shard 0 and time advances through lockstep barrier
	// epochs (DESIGN.md §8). 0 or 1 keeps the single-engine path untouched.
	Shards int
	// Epoch is the barrier epoch length when sharded; 0 defaults to the
	// model's wire latency (the natural lookahead of the simulated link).
	Epoch sim.Duration
}

// NewWorld builds a fresh world.
func NewWorld(cfg WorldConfig) *World {
	if cfg.Model.CPUHz == 0 {
		cfg.Model = timing.Default()
	}
	var coord *sim.Sharded
	var eng *sim.Engine
	if cfg.Shards > 1 {
		epoch := cfg.Epoch
		if epoch <= 0 {
			epoch = cfg.Model.WireLatency
		}
		coord = sim.NewSharded(cfg.Shards, cfg.Shards, epoch)
		eng = coord.Engine(0)
	} else {
		eng = sim.NewEngine()
	}
	var llc *cache.LLC
	if !cfg.NoLLC {
		llc = cache.New(cache.Config{
			TotalBytes: cfg.Model.LLCBytes,
			Ways:       cfg.Model.LLCWays,
			DDIOWays:   cfg.Model.DDIOWays,
			LineBytes:  64,
		})
	}
	alloc := mem.NewAlloc()
	nKern := cfg.KernQueues
	if nKern < 1 {
		nKern = 1
	}
	kernCores := make([]*sim.Server, nKern)
	for i := range kernCores {
		kernCores[i] = sim.NewServer(fmt.Sprintf("core.kernel%d", i))
	}
	w := &World{
		Eng:       eng,
		Coord:     coord,
		Model:     cfg.Model,
		LLC:       llc,
		Alloc:     alloc,
		Kern:      kernel.New(eng, cfg.Model),
		HostMAC:   packet.MAC{0x02, 0, 0, 0, 0, 1},
		HostIP:    packet.MakeIP(10, 0, 0, 1),
		PeerMAC:   packet.MAC{0x02, 0, 0, 0, 0, 2},
		PeerIP:    packet.MakeIP(10, 0, 0, 2),
		cores:     map[uint32]*sim.Server{},
		kernCores: kernCores,
		pollers:   map[*sim.Server]bool{},
	}
	w.NIC = nic.New(nic.Config{
		Engine:     eng,
		Model:      cfg.Model,
		LLC:        llc,
		Alloc:      alloc,
		RingSize:   cfg.RingSize,
		BufBytes:   cfg.BufBytes,
		SRAMBudget: cfg.SRAMBudget,
	})
	return w
}

// EnableTracing attaches a packet-lifecycle tracer of the given span depth
// (<= 0 uses telemetry.DepthFromEnv) to the world and its NIC. Architectures
// that stamp packets on the host side consult w.Tracer directly.
func (w *World) EnableTracing(depth int) *telemetry.Tracer {
	if depth <= 0 {
		depth = telemetry.DepthFromEnv()
	}
	w.Tracer = telemetry.NewTracer(depth)
	w.NIC.SetTracer(w.Tracer)
	return w.Tracer
}

// RegisterMetrics exposes the world's host, simulator and memory counters —
// plus the NIC's dataplane counters and, when tracing is enabled, the
// tracer's own accounting — under one registry. Every metric carries the
// caller's labels (typically arch and experiment identity) so many worlds can
// share one registry without colliding.
func (w *World) RegisterMetrics(r *telemetry.Registry, labels telemetry.Labels) {
	r.Gauge(telemetry.Desc{Layer: "host", Name: "cpu_busy_seconds", Help: "total core-busy time across app and kernel cores (poll-pinned cores count as fully busy)", Unit: "seconds"},
		labels, func() float64 { return w.CPUBusy(w.Eng.Now()).Seconds() })
	r.Gauge(telemetry.Desc{Layer: "host", Name: "cores", Help: "app cores plus kernel dataplane cores in the world", Unit: "cores"},
		labels, func() float64 { return float64(len(w.cores) + len(w.kernCores)) })
	r.Counter(telemetry.Desc{Layer: "sim", Name: "events_fired", Help: "discrete events executed by this world's engine", Unit: "events"},
		labels, func() uint64 { return w.Eng.Fired() })
	r.Gauge(telemetry.Desc{Layer: "sim", Name: "virtual_time_seconds", Help: "current virtual clock of this world's engine", Unit: "seconds"},
		labels, func() float64 { return sim.Duration(w.Eng.Now()).Seconds() })
	r.Gauge(telemetry.Desc{Layer: "mem", Name: "alloc_used_bytes", Help: "high-water mark of the simulated host physical allocator", Unit: "bytes"},
		labels, func() float64 { return float64(w.Alloc.Used()) })

	// Shard coordinator metrics. Registered unconditionally so the metric
	// namespace never depends on the shard count: an unsharded world reports
	// one shard, zero mailbox traffic and zero barrier activity.
	r.Gauge(telemetry.Desc{Layer: "sim", Name: "shards", Help: "engine shards advancing this world (1 when unsharded)", Unit: "shards"},
		labels, func() float64 {
			if w.Coord == nil {
				return 1
			}
			return float64(w.Coord.Shards())
		})
	sumShards := func(per func(i int) uint64) func() uint64 {
		return func() uint64 {
			if w.Coord == nil {
				return 0
			}
			var n uint64
			for i := 0; i < w.Coord.Shards(); i++ {
				n += per(i)
			}
			return n
		}
	}
	r.Counter(telemetry.Desc{Layer: "sim", Name: "mailbox_sent", Help: "cross-shard events staged into mailboxes", Unit: "events"},
		labels, sumShards(func(i int) uint64 { return w.Coord.MailSent(i) }))
	r.Counter(telemetry.Desc{Layer: "sim", Name: "mailbox_recv", Help: "cross-shard events delivered at barriers", Unit: "events"},
		labels, sumShards(func(i int) uint64 { return w.Coord.MailRecv(i) }))
	r.Counter(telemetry.Desc{Layer: "sim", Name: "barrier_epochs", Help: "lockstep barrier epochs completed by the shard coordinator", Unit: "epochs"},
		labels, func() uint64 {
			if w.Coord == nil {
				return 0
			}
			return w.Coord.Epochs()
		})
	r.Counter(telemetry.Desc{Layer: "sim", Name: "barrier_stalls", Help: "shard-epochs spent idle while a sibling shard fired events", Unit: "epochs"},
		labels, sumShards(func(i int) uint64 { return w.Coord.Stalls(i) }))
	shard0 := telemetry.Labels{"shard": "0"}
	for k, v := range labels {
		shard0[k] = v
	}
	if w.Coord == nil {
		r.Counter(telemetry.Desc{Layer: "sim", Name: "shard_events_fired", Help: "events executed per engine shard", Unit: "events"},
			shard0, func() uint64 { return w.Eng.Fired() })
	} else {
		for i := 0; i < w.Coord.Shards(); i++ {
			sl := telemetry.Labels{"shard": fmt.Sprint(i)}
			for k, v := range labels {
				sl[k] = v
			}
			shard := i
			r.Counter(telemetry.Desc{Layer: "sim", Name: "shard_events_fired", Help: "events executed per engine shard", Unit: "events"},
				sl, func() uint64 { return w.Coord.ShardFired(shard) })
		}
	}
	w.NIC.RegisterMetrics(r, labels)
	if w.Tracer != nil {
		w.Tracer.RegisterMetrics(r, labels)
	}
}

// Core returns (creating if needed) the core a process runs on.
func (w *World) Core(pid uint32) *sim.Server {
	c, ok := w.cores[pid]
	if !ok {
		c = sim.NewServer("core.app")
		w.cores[pid] = c
	}
	return c
}

// KernCore returns the first kernel/sidecar dataplane core.
func (w *World) KernCore() *sim.Server { return w.kernCores[0] }

// KernCoreN returns the i'th kernel core (modulo the configured count).
func (w *World) KernCoreN(i int) *sim.Server {
	return w.kernCores[i%len(w.kernCores)]
}

// KernQueues returns the number of kernel cores.
func (w *World) KernQueues() int { return len(w.kernCores) }

// MarkPoller records that a core runs a poll loop and is therefore busy for
// the whole experiment regardless of Server-accounted work.
func (w *World) MarkPoller(c *sim.Server) { w.pollers[c] = true }

// UnmarkPoller removes poll-pinning from a core.
func (w *World) UnmarkPoller(c *sim.Server) { delete(w.pollers, c) }

// CPUBusy returns total core-busy time across app cores and the kernel
// core over [0, now]: poll-pinned cores count as fully busy, others by their
// accounted service time.
func (w *World) CPUBusy(now sim.Time) sim.Duration {
	var total sim.Duration
	add := func(c *sim.Server) {
		if w.pollers[c] {
			total += sim.Duration(now)
			return
		}
		total += c.BusyTime()
	}
	for _, c := range w.cores {
		add(c)
	}
	for _, c := range w.kernCores {
		add(c)
	}
	return total
}

// SendOnWire is what architectures hook to nic.NIC.OnTransmit: it applies
// wire propagation and hands the frame to the peer.
func (w *World) SendOnWire(p *packet.Packet, at sim.Time) {
	if w.Peer == nil {
		return
	}
	w.Eng.At(at.Add(sim.Duration(w.Model.WireLatency)), func() {
		w.Peer(p, w.Eng.Now())
	})
}

// Flow builds the canonical local->remote UDP flow key for port pairs.
func (w *World) Flow(localPort, remotePort uint16) packet.FlowKey {
	return packet.FlowKey{
		Src: w.HostIP, Dst: w.PeerIP,
		SrcPort: localPort, DstPort: remotePort,
		Proto: packet.ProtoUDP,
	}
}

// UDPTo builds an outbound UDP packet on a flow.
func (w *World) UDPTo(flow packet.FlowKey, payload int) *packet.Packet {
	return packet.NewUDP(w.HostMAC, w.PeerMAC, flow.Src, flow.Dst, flow.SrcPort, flow.DstPort, payload)
}

// UDPFrom builds an inbound UDP packet for the reverse of a flow (a peer
// response).
func (w *World) UDPFrom(flow packet.FlowKey, payload int) *packet.Packet {
	return packet.NewUDP(w.PeerMAC, w.HostMAC, flow.Dst, flow.Src, flow.DstPort, flow.SrcPort, payload)
}
