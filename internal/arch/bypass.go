package arch

import (
	"fmt"

	"norman/internal/filter"
	"norman/internal/packet"
	"norman/internal/qos"
	"norman/internal/sniff"
)

// Bypass is raw kernel bypass (DPDK / Arrakis dataplane, §1): applications
// own their rings, the NIC performs steering only, and there is no
// interposition point — the performance baseline and the manageability
// anti-pattern the paper opens with.
type Bypass struct {
	direct
}

// NewBypass builds the architecture on a world.
func NewBypass(w *World) *Bypass {
	a := &Bypass{}
	a.init(w, false, false)
	return a
}

// Name implements Arch.
func (a *Bypass) Name() string { return "bypass" }

// Caps implements Arch.
func (a *Bypass) Caps() Caps {
	return Caps{Transfers: 1}
}

// InstallRule implements Arch: there is nowhere to put a rule.
func (a *Bypass) InstallRule(h filter.Hook, r *filter.Rule) error {
	return fmt.Errorf("%w: no interposition point for %s rule", ErrUnsupported, h)
}

// FlushRules implements Arch.
func (a *Bypass) FlushRules() error { return nil }

// RuleHits implements Arch: there are no rules to count.
func (a *Bypass) RuleHits(filter.Hook, int) (uint64, bool) { return 0, false }

// SetQdisc implements Arch: applications cannot run a work-conserving
// scheduler over traffic they cannot see (§2 QoS).
func (a *Bypass) SetQdisc(q qos.Qdisc, classify func(*packet.Packet) uint32) error {
	return fmt.Errorf("%w: no global scheduling point", ErrUnsupported)
}

// AttachTap implements Arch: no component sees cross-application traffic.
func (a *Bypass) AttachTap(e *sniff.Expr) (*sniff.Tap, error) {
	return nil, fmt.Errorf("%w: no global capture point", ErrUnsupported)
}
