package arch

import (
	"fmt"

	"norman/internal/core"
	"norman/internal/filter"
	"norman/internal/kernel"
	"norman/internal/mem"
	"norman/internal/nic"
	"norman/internal/packet"
	"norman/internal/qos"
	"norman/internal/sim"
	"norman/internal/sniff"
)

// direct is the shared machinery of the three architectures whose
// applications own NIC rings outright (bypass, hypervisor, kopi): one
// transfer per packet, MMIO doorbells, poll-mode receive by default.
type direct struct {
	base
	trusted bool // kernel programs trusted process metadata into the NIC

	// Firewall source of truth; the engine compiles it to overlay programs.
	fw *filter.Engine
	// engine is the KOPI interposition engine (internal/core) — the
	// kernel↔NIC configuration protocol. The hypervisor uses the same
	// engine without a process view, which is the paper's comparison.
	engine core.Interposer

	// cpDown marks the control plane crashed. The dataplane is untouched:
	// applications own their rings and the NIC executes whatever was last
	// installed — the crash only wipes the control plane's policy memory
	// (fw) and refuses new mutations.
	cpDown bool
}

// init wires the direct machinery into a world. It must be called on the
// final (heap) location of the struct: the NIC callbacks capture d, so a
// copy after init would strand them on the old value.
func (d *direct) init(w *World, trusted, processView bool) {
	d.base = newBase(w)
	d.trusted = trusted
	d.fw = filter.NewEngine(processView)
	d.engine = core.Interposer{NIC: w.NIC, Kern: w.Kern, ProcessView: processView}
	w.NIC.OnRxDeliver = d.onRxDeliver
	w.NIC.OnTransmit = w.SendOnWire
}

// Connect implements the §4.3 setup path: the application asks the kernel,
// the kernel registers the connection, allocates rings on the NIC, installs
// steering, and (KOPI only) programs the trusted metadata.
func (d *direct) Connect(proc *kernel.Process, flow packet.FlowKey) (*Conn, error) {
	ci, err := d.w.Kern.RegisterConn(proc, flow)
	if err != nil {
		return nil, err
	}
	meta := packet.Meta{ConnID: ci.ID}
	var queue *mem.NotifyQueue
	if d.trusted {
		meta = d.w.Kern.Meta(ci)
		queue = proc.Queue
	}
	nc, err := d.w.NIC.OpenConn(ci.ID, meta, queue)
	if err != nil {
		uerr := d.w.Kern.UnregisterConn(ci.ID)
		_ = uerr
		return nil, fmt.Errorf("arch: opening NIC conn: %w", err)
	}
	if err := d.w.NIC.SteerFlow(flow, ci.ID); err != nil {
		_ = d.w.NIC.CloseConn(ci.ID)
		_ = d.w.Kern.UnregisterConn(ci.ID)
		return nil, fmt.Errorf("arch: steering: %w", err)
	}
	c := &Conn{Info: ci, NC: nc, Mode: RxPoll}
	d.register(c)
	d.w.MarkPoller(d.w.Core(proc.PID))
	return c, nil
}

// Close implements Arch.
func (d *direct) Close(c *Conn) error {
	d.unregister(c)
	if err := d.w.NIC.CloseConn(c.Info.ID); err != nil {
		return err
	}
	return d.w.Kern.UnregisterConn(c.Info.ID)
}

// Send implements the one-transfer, zero-copy TX path: the application
// builds the payload in the pinned buffer in place, stages a descriptor, and
// rings the doorbell. The doorbell MMIO is only paid when the ring was idle —
// while a drain is in flight the NIC picks new descriptors up by itself, the
// batching every kernel-bypass runtime relies on.
func (d *direct) Send(c *Conn, p *packet.Packet) {
	m := d.w.Model
	core := d.w.Core(c.Info.PID)
	now := d.w.Eng.Now()
	hdr := p.FrameLen()
	if hdr > 128 {
		hdr = 128
	}
	cost := m.Cycles(60) +
		d.memTouch(c.NC.TX.HeadAddr(), 64) +
		d.memTouch(d.w.NIC.BufAddr(c.NC, c.NC.TX.Head(), false), hdr)
	if c.NC.TX.Empty() {
		cost += sim.Duration(m.MMIOWrite)
	}
	d.traceStamp(p)
	d.trace(p, now, "host", "syscall_send", "")
	_, done := core.Acquire(now, cost)
	d.w.Eng.At(done, func() {
		if err := c.NC.TX.Push(mem.Desc{Pkt: p, Produced: d.w.Eng.Now()}); err != nil {
			d.TxAppDrops++
			d.trace(p, d.w.Eng.Now(), "ring", "tx_drop_full", "")
			return
		}
		d.trace(p, d.w.Eng.Now(), "ring", "tx_enqueue", "")
		d.w.NIC.DoorbellTx(c.NC)
	})
}

// SendBatch stages a whole burst and rings the doorbell once — the
// tx_burst() pattern every kernel-bypass runtime uses, and the reason the
// per-packet MMIO cost does not throttle saturated senders.
func (d *direct) SendBatch(c *Conn, pkts []*packet.Packet) {
	if len(pkts) == 0 {
		return
	}
	m := d.w.Model
	core := d.w.Core(c.Info.PID)
	now := d.w.Eng.Now()
	var cost sim.Duration
	for i, p := range pkts {
		hdr := p.FrameLen()
		if hdr > 128 {
			hdr = 128
		}
		idx := c.NC.TX.Head() + uint64(i)
		cost += m.Cycles(60) +
			d.memTouch(c.NC.TX.SlotAddr(idx), 64) +
			d.memTouch(d.w.NIC.BufAddr(c.NC, idx, false), hdr)
	}
	cost += sim.Duration(m.MMIOWrite) // one tail-pointer write for the burst
	for _, p := range pkts {
		d.traceStamp(p)
		d.trace(p, now, "host", "syscall_send", "batched")
	}
	_, done := core.Acquire(now, cost)
	batch := append([]*packet.Packet(nil), pkts...)
	d.w.Eng.At(done, func() {
		for _, p := range batch {
			if err := c.NC.TX.Push(mem.Desc{Pkt: p, Produced: d.w.Eng.Now()}); err != nil {
				d.TxAppDrops++
				d.trace(p, d.w.Eng.Now(), "ring", "tx_drop_full", "")
				continue
			}
			d.trace(p, d.w.Eng.Now(), "ring", "tx_enqueue", "")
		}
		d.w.NIC.DoorbellTx(c.NC)
	})
}

// DeliverWire implements Arch.
func (d *direct) DeliverWire(p *packet.Packet) { d.w.NIC.DeliverFromWire(p) }

// onRxDeliver consumes packets landed in RX rings. Poll-mode connections
// consume immediately (their poll loop is always running); block-mode
// connections are drained by the notification wake path instead.
func (d *direct) onRxDeliver(nc *nic.Conn, at sim.Time) {
	c, ok := d.connFor(nc.ID)
	if !ok || c.Mode != RxPoll {
		return
	}
	slotAddr := nc.RX.TailAddr()
	desc, err := nc.RX.Pop()
	if err != nil {
		return
	}
	d.deliverPolled(c, desc.Pkt, at, d.appRxCost(c, desc.Pkt, slotAddr))
}

// SetRxMode implements Arch for the poll-only architectures; kopi overrides
// it to add blocking.
func (d *direct) SetRxMode(c *Conn, mode RxMode) error {
	if mode == RxBlock {
		return fmt.Errorf("%w: kernel cannot observe dataplane arrivals to wake threads", ErrUnsupported)
	}
	c.Mode = RxPoll
	d.w.MarkPoller(d.w.Core(c.Info.PID))
	return nil
}

// CrashControlPlane implements ControlPlaneCrasher: the control plane's
// policy memory is gone (fresh, empty filter engine), but nothing on the
// NIC changes — rings, steering, programs and scheduler keep running.
func (d *direct) CrashControlPlane() {
	d.cpDown = true
	d.fw = filter.NewEngine(d.engine.ProcessView)
}

// RestartControlPlane implements ControlPlaneCrasher. The revived control
// plane still knows nothing; the reconciler repopulates it from the
// journal.
func (d *direct) RestartControlPlane() { d.cpDown = false }

// ControlPlaneDown implements ControlPlaneCrasher.
func (d *direct) ControlPlaneDown() bool { return d.cpDown }

// Filter exposes the control plane's rule memory — the reconciler diffs it
// against journaled intent.
func (d *direct) Filter() *filter.Engine { return d.fw }

// reloadPrograms recompiles both firewall chains onto the NIC pipelines via
// the KOPI engine, returning the control-plane load latency.
func (d *direct) reloadPrograms() (sim.Duration, error) {
	return d.engine.DeployChains(d.fw)
}

// RuleHits reads the idx'th rule's hit counter from the compiled overlay
// program on the hook's pipeline.
func (d *direct) RuleHits(h filter.Hook, idx int) (uint64, bool) {
	return d.engine.RuleHits(d.fw, h, idx)
}

// SetQdisc installs an egress scheduler on the NIC.
func (d *direct) SetQdisc(q qos.Qdisc, classify func(*packet.Packet) uint32) error {
	d.engine.SetScheduler(q, classify)
	return nil
}

// Ping implements Arch for the architectures whose kernel cannot see an
// echo reply (it would land unsteered and be dropped): unsupported.
func (d *direct) Ping(dst packet.IPv4, payload int, done func(sim.Duration, bool)) error {
	return fmt.Errorf("%w: the kernel cannot receive ICMP replies on this dataplane", ErrUnsupported)
}

// attachNICTap installs a tap on the NIC pipeline.
func (d *direct) attachNICTap(e *sniff.Expr) (*sniff.Tap, error) {
	return d.engine.AttachTap(e), nil
}
