package arch

// Compile-time checks that every architecture satisfies Arch.
var (
	_ Arch = (*KernelStack)(nil)
	_ Arch = (*Bypass)(nil)
	_ Arch = (*Sidecar)(nil)
	_ Arch = (*Hypervisor)(nil)
	_ Arch = (*KOPI)(nil)
)

// All returns a fresh instance of every architecture, each on its own world
// built with the given config — the sweep the experiments iterate.
func All(cfg WorldConfig) []Arch {
	return []Arch{
		NewKernelStack(NewWorld(cfg)),
		NewBypass(NewWorld(cfg)),
		NewSidecar(NewWorld(cfg)),
		NewHypervisor(NewWorld(cfg)),
		NewKOPI(NewWorld(cfg)),
	}
}

// New constructs one architecture by name on a fresh world; unknown names
// return nil.
func New(name string, cfg WorldConfig) Arch {
	switch name {
	case "kernelstack":
		return NewKernelStack(NewWorld(cfg))
	case "bypass":
		return NewBypass(NewWorld(cfg))
	case "sidecar":
		return NewSidecar(NewWorld(cfg))
	case "hypervisor":
		return NewHypervisor(NewWorld(cfg))
	case "kopi":
		return NewKOPI(NewWorld(cfg))
	default:
		return nil
	}
}

// Names lists the architectures in canonical comparison order.
func Names() []string {
	return []string{"kernelstack", "bypass", "sidecar", "hypervisor", "kopi"}
}
