// Package upgrade is Norman's live-upgrade subsystem: planned maintenance of
// the interposition dataplane — policy, overlay-program and bitstream
// upgrades — made hitless under KOPI (DESIGN.md §12). It drives the NIC's A/B
// pipeline generations (stage → verify → pause-and-flip → canary →
// commit/rollback), hands control-plane state across the flip through a
// checksummed snapshot, and watches the canary window with the same
// counter-delta sampling discipline as the health monitor, rolling back
// automatically on breach. ReloadBitstream — a seconds-long blackout, §4.4's
// open challenge — is the outage this package exists to avoid; raw bypass has
// no layer that could even sequence the cutover, which is the comparison E16
// draws.
package upgrade

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"norman/internal/nic"
	"norman/internal/overlay"
	"norman/internal/packet"
	"norman/internal/recovery"
	"norman/internal/sim"
)

// Snapshot decode errors. Decode is all-or-nothing: a snapshot that fails any
// of these is rejected before a single field is applied.
var (
	// ErrSnapshotTruncated: the payload is not even a complete JSON document
	// (a torn write or short read).
	ErrSnapshotTruncated = errors.New("upgrade: snapshot truncated or malformed")
	// ErrSnapshotVersion: the wire version is not one this code speaks.
	ErrSnapshotVersion = errors.New("upgrade: unsupported snapshot version")
	// ErrSnapshotCorrupt: the body bytes do not match the recorded checksum.
	ErrSnapshotCorrupt = errors.New("upgrade: snapshot checksum mismatch")
)

// SnapshotVersion is the current wire format version.
const SnapshotVersion = 1

// SteerEntry is one steering-table row in portable, deterministic form.
type SteerEntry struct {
	Flow packet.FlowKey `json:"flow"`
	Conn uint64         `json:"conn"`
}

// Snapshot is the state-handover record of one pipeline generation: every
// piece of control-plane-programmed NIC and policy state that must survive
// the epoch flip, frozen at stage time. It reuses the recovery journal's
// record types for qos and filter config — the journal is the intent source
// of truth, and the snapshot must agree with it by construction.
type Snapshot struct {
	Generation  uint64       `json:"generation"`
	TakenAt     sim.Duration `json:"taken_at"`
	Steering    []SteerEntry `json:"steering,omitempty"`
	DefaultConn uint64       `json:"default_conn,omitempty"`

	// TenantWeights is the NIC scheduler's weight map; CacheQuotas the flow
	// cache partition. Both empty when the feature is off.
	TenantWeights map[uint32]int `json:"tenant_weights,omitempty"`
	CacheQuotas   map[uint32]int `json:"cache_quotas,omitempty"`

	Qos     *recovery.QdiscRecord `json:"qos,omitempty"`
	Filters []recovery.RuleRecord `json:"filters,omitempty"`
	Ingress *overlay.Program      `json:"ingress,omitempty"`
	Egress  *overlay.Program      `json:"egress,omitempty"`
	Cache   []nic.FlowEntryExport `json:"cache,omitempty"`
}

// envelope is the wire form: version, a checksum over the exact body bytes,
// and the body itself as raw JSON so the checksum is computed over the same
// bytes that were signed, not a re-marshaling of them.
type envelope struct {
	Version  int             `json:"version"`
	Checksum uint32          `json:"checksum"`
	Body     json.RawMessage `json:"body"`
}

// bodySum is FNV-1a over the marshaled body — the same family of checksum the
// flow cache uses per entry, here guarding the whole handover record.
func bodySum(b []byte) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for _, c := range b {
		h ^= uint32(c)
		h *= prime
	}
	return h
}

// Encode renders the snapshot as a self-verifying envelope.
func Encode(s *Snapshot) ([]byte, error) {
	body, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("upgrade: encode snapshot: %w", err)
	}
	return json.Marshal(envelope{
		Version:  SnapshotVersion,
		Checksum: bodySum(body),
		Body:     body,
	})
}

// Decode parses and fully validates an encoded snapshot. Validation is
// strictly before application: a truncated, version-skewed or corrupted
// snapshot returns its typed error and no partially decoded state — the
// caller never sees a half-applied handover.
func Decode(data []byte) (*Snapshot, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotTruncated, err)
	}
	if env.Version != SnapshotVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrSnapshotVersion, env.Version, SnapshotVersion)
	}
	if len(env.Body) == 0 || string(env.Body) == "null" {
		return nil, fmt.Errorf("%w: empty body", ErrSnapshotTruncated)
	}
	if sum := bodySum(env.Body); sum != env.Checksum {
		return nil, fmt.Errorf("%w: body sums to %08x, envelope says %08x", ErrSnapshotCorrupt, sum, env.Checksum)
	}
	var s Snapshot
	if err := json.Unmarshal(env.Body, &s); err != nil {
		return nil, fmt.Errorf("%w: body: %v", ErrSnapshotTruncated, err)
	}
	return &s, nil
}

// takeSnapshot freezes the NIC-resident half of the handover state. The
// policy half (qos, filters) is merged in by the manager's state source —
// the control plane owns that state, not the NIC.
func takeSnapshot(n *nic.NIC, now sim.Time) *Snapshot {
	s := &Snapshot{
		Generation: n.Generation(),
		TakenAt:    sim.Duration(now),
	}
	cfg := n.SnapshotConfig(now)
	s.Ingress = cfg.Ingress
	s.Egress = cfg.Egress
	s.DefaultConn = cfg.DefaultConn
	keys := make([]packet.FlowKey, 0, len(cfg.Steering))
	for k := range cfg.Steering {
		keys = append(keys, k)
	}
	sortFlowKeys(keys)
	for _, k := range keys {
		s.Steering = append(s.Steering, SteerEntry{Flow: k, Conn: cfg.Steering[k]})
	}
	if ts := n.TenantScheduler(); ts != nil {
		s.TenantWeights = ts.Weights()
	}
	if fc := n.FlowCache(); fc != nil {
		if q := fc.Quotas(); len(q) > 0 {
			s.CacheQuotas = make(map[uint32]int, len(q))
			for id, v := range q {
				s.CacheQuotas[id] = v
			}
		}
		s.Cache = fc.Export()
	}
	return s
}

// sortFlowKeys orders keys lexicographically (the same order the NIC's
// deterministic restore uses).
func sortFlowKeys(keys []packet.FlowKey) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		if a.SrcPort != b.SrcPort {
			return a.SrcPort < b.SrcPort
		}
		if a.DstPort != b.DstPort {
			return a.DstPort < b.DstPort
		}
		return a.Proto < b.Proto
	})
}
