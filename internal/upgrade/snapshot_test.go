package upgrade

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"norman/internal/nic"
	"norman/internal/overlay"
	"norman/internal/packet"
	"norman/internal/recovery"
	"norman/internal/sim"
)

// randomSnapshot draws a handover record from a seeded generator: steering
// rows, tenant maps, cache exports, qos/filter records and an overlay program
// all populated (or omitted) per the seed. Used by the round-trip property
// test and as the fuzz corpus.
func randomSnapshot(r *rand.Rand) *Snapshot {
	s := &Snapshot{
		Generation:  r.Uint64() % 1000,
		TakenAt:     sim.Duration(r.Int63n(int64(sim.Second))),
		DefaultConn: r.Uint64() % 64,
	}
	for i, n := 0, r.Intn(16); i < n; i++ {
		s.Steering = append(s.Steering, SteerEntry{
			Flow: packet.FlowKey{
				Src:     packet.MakeIP(10, 0, byte(r.Intn(256)), byte(r.Intn(256))),
				Dst:     packet.MakeIP(10, 0, 0, 2),
				SrcPort: uint16(1024 + r.Intn(60000)),
				DstPort: uint16(r.Intn(1024)),
				Proto:   packet.ProtoUDP,
			},
			Conn: r.Uint64() % 4096,
		})
	}
	if r.Intn(2) == 0 {
		s.TenantWeights = map[uint32]int{1: 1 + r.Intn(8), 2: 1 + r.Intn(8)}
		s.CacheQuotas = map[uint32]int{1: 64 + r.Intn(64), 2: 32 + r.Intn(32)}
	}
	if r.Intn(2) == 0 {
		s.Qos = &recovery.QdiscRecord{Kind: "wfq", Weights: map[uint32]float64{1: 3, 2: 1}}
	}
	for i, n := 0, r.Intn(4); i < n; i++ {
		s.Filters = append(s.Filters, recovery.RuleRecord{
			Hook: "INPUT", DstPort: uint16(9000 + i), Action: "drop",
		})
	}
	if r.Intn(2) == 0 {
		s.Ingress = &overlay.Program{
			Name: "acl",
			Code: []overlay.Inst{
				{Op: overlay.OpLookup, A: 1, B: 2, Index: 0, Target: 2},
				{Op: overlay.OpDrop},
				{Op: overlay.OpPass},
			},
			Tables: []overlay.TableSpec{{Name: "blocklist", Capacity: 64}},
		}
	}
	for i, n := 0, r.Intn(8); i < n; i++ {
		s.Cache = append(s.Cache, nic.FlowEntryExport{
			Key: packet.FlowKey{
				Src:     packet.MakeIP(10, 0, 1, byte(i)),
				Dst:     packet.MakeIP(10, 0, 0, 2),
				SrcPort: uint16(3000 + i), DstPort: 6000,
				Proto: packet.ProtoUDP,
			},
			ConnID:  uint64(i),
			Tenant:  uint32(1 + i%2),
			Mark:    uint32(r.Intn(16)),
			Class:   uint32(r.Intn(4)),
			Verdict: overlay.Verdict(r.Intn(2)),
		})
	}
	return s
}

// TestSnapshotRoundTrip is the codec property: for any snapshot the manager
// can take, Encode then Decode reproduces it bit-exactly. 64 seeded draws
// cover every optional section present and absent.
func TestSnapshotRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 64; seed++ {
		s := randomSnapshot(rand.New(rand.NewSource(seed)))
		data, err := Encode(s)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if !reflect.DeepEqual(s, got) {
			t.Fatalf("seed %d: round trip diverged:\nin  %+v\nout %+v", seed, s, got)
		}
	}
}

// TestSnapshotDecodeRejects pins the all-or-nothing contract: truncation at
// every byte boundary, any single-bit corruption of the body, and a version
// skew each return their typed error — never a half-decoded snapshot.
func TestSnapshotDecodeRejects(t *testing.T) {
	s := randomSnapshot(rand.New(rand.NewSource(1)))
	data, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}

	for n := 0; n < len(data); n++ {
		got, err := Decode(data[:n])
		if err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", n, len(data))
		}
		if !errors.Is(err, ErrSnapshotTruncated) && !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("truncation to %d bytes: want a typed decode error, got %v", n, err)
		}
		if got != nil {
			t.Fatalf("truncation to %d bytes returned partial state alongside the error", n)
		}
	}

	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 256; trial++ {
		corrupt := append([]byte(nil), data...)
		corrupt[r.Intn(len(corrupt))] ^= 1 << uint(r.Intn(8))
		got, err := Decode(corrupt)
		if err == nil {
			// A flip can land in JSON whitespace-insensitive territory only if
			// it still checksums; FNV over the exact body bytes means any body
			// flip is caught, and envelope flips break the JSON or the sum.
			// The only survivable flips are inside the checksum field making
			// it *wrong*, which is also caught. So success means the flip hit
			// a byte whose mutation produced an equivalent document — verify
			// the decoded state matches rather than calling it a failure.
			if !reflect.DeepEqual(s, got) {
				t.Fatalf("trial %d: corrupted snapshot decoded to different state", trial)
			}
			continue
		}
		if !errors.Is(err, ErrSnapshotTruncated) && !errors.Is(err, ErrSnapshotCorrupt) &&
			!errors.Is(err, ErrSnapshotVersion) {
			t.Fatalf("trial %d: want a typed decode error, got %v", trial, err)
		}
		if got != nil {
			t.Fatalf("trial %d: partial state returned alongside the error", trial)
		}
	}

	skew := []byte(`{"version":99,"checksum":0,"body":{}}`)
	if _, err := Decode(skew); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("version skew: want ErrSnapshotVersion, got %v", err)
	}
	empty := []byte(`{"version":1,"checksum":0,"body":null}`)
	if _, err := Decode(empty); !errors.Is(err, ErrSnapshotTruncated) {
		t.Fatalf("empty body: want ErrSnapshotTruncated, got %v", err)
	}
}

// FuzzSnapshotDecode throws arbitrary bytes at the decoder. The invariant:
// Decode either returns one of the three typed errors (and nil state), or it
// succeeds and the decoded snapshot survives a second round trip unchanged —
// there is no input that half-applies.
func FuzzSnapshotDecode(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		data, err := Encode(randomSnapshot(rand.New(rand.NewSource(seed))))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)/2])
	}
	f.Add([]byte(`{"version":1,"checksum":0,"body":{}}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			if s != nil {
				t.Fatal("error with non-nil snapshot")
			}
			if !errors.Is(err, ErrSnapshotTruncated) && !errors.Is(err, ErrSnapshotCorrupt) &&
				!errors.Is(err, ErrSnapshotVersion) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		re, err := Encode(s)
		if err != nil {
			t.Fatalf("re-encode of a decoded snapshot failed: %v", err)
		}
		s2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("second round trip diverged:\nfirst  %+v\nsecond %+v", s, s2)
		}
	})
}
