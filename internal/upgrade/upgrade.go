package upgrade

import (
	"errors"
	"fmt"

	"norman/internal/nic"
	"norman/internal/overlay"
	"norman/internal/recovery"
	"norman/internal/sim"
	"norman/internal/telemetry"
)

// Phase is the upgrade lifecycle state (DESIGN.md §12's state machine):
//
//	Idle --Stage--> Staged --CutOver--> Canary --window expires--> Committed
//	                 |                    |
//	                 +--AbortStaged       +--breach / crash / force--> RolledBack
//
// Committed and RolledBack are terminal for one upgrade attempt; the next
// Stage returns the manager to Staged.
type Phase int

// Phases.
const (
	Idle Phase = iota
	Staged
	Canary
	Committed
	RolledBack
)

func (p Phase) String() string {
	switch p {
	case Staged:
		return "staged"
	case Canary:
		return "canary"
	case Committed:
		return "committed"
	case RolledBack:
		return "rolledback"
	default:
		return "idle"
	}
}

// Manager errors.
var (
	ErrNotStaged   = errors.New("upgrade: no staged generation (Stage first)")
	ErrNotInCanary = errors.New("upgrade: no canary in progress")
	ErrBusy        = errors.New("upgrade: an upgrade is already in flight")
)

// Config tunes the manager. The zero value is usable: every knob has a
// default sized so a cutover's pause covers the MMIO activation cost with an
// order of magnitude to spare and the canary catches a misbehaving chain
// within a few samples.
type Config struct {
	// PauseFrames bounds the cutover pause buffer (default
	// nic.DefaultPauseFrames). Overflow is the typed RxPauseDrop class.
	PauseFrames int
	// CanaryWindow is how long the old generation is retained after cutover
	// while the new one proves itself (default 200 µs).
	CanaryWindow sim.Duration
	// SampleEvery is the canary sampling period (default 5 µs, matching the
	// health monitor's cadence).
	SampleEvery sim.Duration
	// BreachAfter is how many consecutive breaching samples trigger rollback
	// (default 2 — one-off blips survive, sustained regressions do not).
	BreachAfter int
	// MaxTrapsPerSample, MaxDropsPerSample and MaxChecksumPerSample are the
	// per-sample deltas of pipeline traps, ingress verdict drops and
	// flow-cache checksum failures the canary tolerates. The defaults are
	// zero: a freshly cut-over generation that traps, drops or corrupts at
	// all is breaching.
	MaxTrapsPerSample    uint64
	MaxDropsPerSample    uint64
	MaxChecksumPerSample uint64
}

func (c Config) pauseFrames() int {
	if c.PauseFrames > 0 {
		return c.PauseFrames
	}
	return nic.DefaultPauseFrames
}

func (c Config) canaryWindow() sim.Duration {
	if c.CanaryWindow > 0 {
		return c.CanaryWindow
	}
	return 200 * sim.Microsecond
}

func (c Config) sampleEvery() sim.Duration {
	if c.SampleEvery > 0 {
		return c.SampleEvery
	}
	return 5 * sim.Microsecond
}

func (c Config) breachAfter() int {
	if c.BreachAfter > 0 {
		return c.BreachAfter
	}
	return 2
}

// Manager sequences live upgrades of one NIC's interposition layer. Like the
// health monitor it lives on one engine's event loop, samples by counter
// deltas, and is deterministic by construction — no wall clock, no RNG.
type Manager struct {
	eng    *sim.Engine
	n      *nic.NIC
	cfg    Config
	tracer *telemetry.Tracer
	rec    *recovery.Manager

	// stateSource, when set, merges control-plane-owned policy state (qos,
	// filters) into the pre-upgrade snapshot; the NIC half is taken directly.
	stateSource func(*Snapshot)

	phase Phase
	// pre is the state snapshot taken at Stage time — the handover record the
	// cutover warm-transfers from and a rollback warm-restores from.
	pre *Snapshot
	// stagedIng remembers the staged ingress chain: warm transfer across the
	// cutover is only sound when it is the very chain the snapshot's entries
	// were computed under (a same-policy flip, e.g. a bitstream respin).
	stagedIng *overlay.Program
	// canary sampler state (the health monitor's watchGen pattern).
	watchGen     uint64
	canaryUntil  sim.Time
	breachStreak int
	running      bool
	prevTraps    uint64
	prevDrops    uint64
	prevCkFails  uint64
	// lastReason records why the most recent rollback happened.
	lastReason string

	// Counters (surfaced as norman_upgrade_* and in UpgradeStatus).
	Upgrades       uint64 // cutovers initiated
	Commits        uint64
	Rollbacks      uint64
	CanarySamples  uint64
	CanaryBreaches uint64 // breaching samples observed
	WarmEntries    uint64 // flow-cache entries warm-transferred across flips
	Adoptions      uint64 // daemon hot-restarts that re-adopted the live generation
}

// New builds a manager over a world's engine and NIC.
func New(eng *sim.Engine, n *nic.NIC, cfg Config) *Manager {
	return &Manager{eng: eng, n: n, cfg: cfg}
}

// SetTracer attaches a trace sink: every stage, cutover, canary verdict,
// commit and rollback becomes a span event on the "upgrade" layer.
func (m *Manager) SetTracer(tr *telemetry.Tracer) { m.tracer = tr }

// SetRecovery attaches the recovery manager so upgrade intent is journaled
// write-ahead like every other control-plane mutation.
func (m *Manager) SetRecovery(rec *recovery.Manager) { m.rec = rec }

// SetStateSource installs the callback that merges control-plane policy
// state (qos, filters) into the pre-upgrade snapshot.
func (m *Manager) SetStateSource(fn func(*Snapshot)) { m.stateSource = fn }

// Phase returns the lifecycle phase.
func (m *Manager) Phase() Phase { return m.phase }

// Generation returns the NIC's live pipeline generation.
func (m *Manager) Generation() uint64 { return m.n.Generation() }

// PreSnapshot returns the handover snapshot taken at Stage time, nil outside
// an upgrade attempt.
func (m *Manager) PreSnapshot() *Snapshot { return m.pre }

// LastRollbackReason reports why the most recent rollback fired, "" if none.
func (m *Manager) LastRollbackReason() string { return m.lastReason }

// span records one upgrade lifecycle event when tracing is on.
func (m *Manager) span(now sim.Time, point, note string) {
	if m.tracer == nil {
		return
	}
	m.tracer.Record(m.tracer.StampID(), now, "upgrade", point, note)
}

// Stage freezes the handover snapshot, verifies the new generation's chains
// and stages them into the NIC's shadow bank, charged against the SRAM
// budget. The intent is journaled write-ahead (OpUpgrade, Ref = target
// generation) when recovery is attached.
func (m *Manager) Stage(now sim.Time, ing, eg *overlay.Program) error {
	if m.phase == Staged || m.phase == Canary {
		return fmt.Errorf("%w: phase %v", ErrBusy, m.phase)
	}
	pre := takeSnapshot(m.n, now)
	if m.stateSource != nil {
		m.stateSource(pre)
	}
	if err := m.n.StageGeneration(now, ing, eg); err != nil {
		return err
	}
	m.pre = pre
	m.stagedIng = ing
	m.phase = Staged
	if m.rec != nil {
		m.rec.Record(now, recovery.Entry{Op: recovery.OpUpgrade, Ref: m.n.Generation() + 1})
	}
	m.span(now, "stage", fmt.Sprintf("target_gen=%d sram_staged", m.n.Generation()+1))
	return nil
}

// Abort discards a staged-but-not-activated generation.
func (m *Manager) Abort(now sim.Time) error {
	if m.phase != Staged {
		return ErrNotStaged
	}
	m.n.AbortStaged()
	m.pre = nil
	m.phase = Idle
	m.span(now, "abort", "staged generation discarded")
	return nil
}

// CutOver flips the epoch: ingress is paused (bounded buffer, typed overflow
// drops), the staged generation is activated at a packet boundary, compatible
// flow-cache entries are warm-transferred and re-validated against the new
// chain, ingress resumes, and the canary window opens with the old generation
// retained for rollback. Returns the pause duration (the activation's MMIO
// cost) — the entire dataplane impact of the upgrade.
func (m *Manager) CutOver(now sim.Time) (sim.Duration, error) {
	if m.phase != Staged {
		return 0, ErrNotStaged
	}
	if err := m.n.PauseRx(m.cfg.pauseFrames()); err != nil {
		return 0, err
	}
	load, err := m.n.ActivateStaged(now)
	if err != nil {
		_ = m.n.ResumeRx()
		return 0, err
	}
	m.Upgrades++
	m.phase = Canary
	m.span(now, "cutover", fmt.Sprintf("gen=%d pause=%v", m.n.Generation(), load))

	// The flip costs MMIO time: hold the pause for exactly that long, then
	// warm the new generation's cache from the handover snapshot and replay
	// the buffered frames — they see the new chain, losing only latency.
	m.eng.At(now.Add(load), func() {
		resumeAt := m.eng.Now()
		// A cached verdict is only valid under the chain that computed it:
		// warm-transfer across the flip only when the new generation runs the
		// same ingress chain the entries were built under (a same-policy
		// upgrade). A policy change starts cold by design — the slow path
		// recomputes and refills.
		if m.pre != nil && m.stagedIng == m.pre.Ingress {
			m.warmTransfer(resumeAt)
		}
		if err := m.n.ResumeRx(); err == nil {
			m.span(resumeAt, "resume", fmt.Sprintf("buffered=%d", m.n.RxPauseBuffered))
		}
		m.startCanary(resumeAt)
	})
	return load, nil
}

// warmTransfer re-installs the snapshot's flow-cache entries under the new
// generation, re-validated by construction: installs only happen when the
// live ingress chain is flow-memoizable (programCacheable, via the NIC's
// install gate), and each entry passes through the cache's own ledgered
// Install path — Installs − Evictions − Invalidations == Len() still holds.
func (m *Manager) warmTransfer(now sim.Time) {
	if m.pre == nil || len(m.pre.Cache) == 0 {
		return
	}
	fc := m.n.FlowCache()
	if fc == nil || !m.n.IngressCacheable() {
		return
	}
	warmed := 0
	for _, e := range m.pre.Cache {
		if fc.Install(e.Key, e.ConnID, e.Tenant, e.Verdict, e.Mark, e.Class) {
			warmed++
		}
	}
	m.WarmEntries += uint64(warmed)
	m.span(now, "warm_transfer", fmt.Sprintf("entries=%d of %d", warmed, len(m.pre.Cache)))
}

// startCanary arms the post-cutover watch: counter-delta samples of pipeline
// traps, ingress verdict drops and flow-cache checksum failures, with the
// old generation held for rollback until the window expires clean.
func (m *Manager) startCanary(now sim.Time) {
	m.canaryUntil = now.Add(m.cfg.canaryWindow())
	m.breachStreak = 0
	m.prevTraps = m.n.TrapFallbacks + m.n.TrapFailOpens
	m.prevDrops = m.n.RxDropVerdict
	if fc := m.n.FlowCache(); fc != nil {
		m.prevCkFails = fc.ChecksumFails
	} else {
		m.prevCkFails = 0
	}
	m.running = true
	m.watchGen++
	gen := m.watchGen
	m.eng.After(m.cfg.sampleEvery(), func() { m.tick(gen) })
}

// Running reports whether the canary sampler is armed.
func (m *Manager) Running() bool { return m.running }

// Stop halts the canary sampler without resolving the canary: the old
// generation stays retained. Start re-arms it. System.Run uses this pair to
// drain the engine without the sampler's self-rescheduling timer keeping it
// busy forever.
func (m *Manager) Stop() {
	m.running = false
	m.watchGen++
}

// Start re-arms a stopped canary sampler (no-op unless a canary is open).
func (m *Manager) Start(until sim.Time) {
	if m.running || m.phase != Canary {
		return
	}
	if until != 0 {
		m.canaryUntil = until
	}
	m.running = true
	m.watchGen++
	gen := m.watchGen
	m.eng.After(m.cfg.sampleEvery(), func() { m.tick(gen) })
}

func (m *Manager) tick(gen uint64) {
	if gen != m.watchGen || m.phase != Canary {
		return
	}
	now := m.eng.Now()
	m.CanarySamples++

	traps := m.n.TrapFallbacks + m.n.TrapFailOpens
	drops := m.n.RxDropVerdict
	var ck uint64
	if fc := m.n.FlowCache(); fc != nil {
		ck = fc.ChecksumFails
	}
	dTraps, dDrops, dCk := traps-m.prevTraps, drops-m.prevDrops, ck-m.prevCkFails
	m.prevTraps, m.prevDrops, m.prevCkFails = traps, drops, ck

	breach := dTraps > m.cfg.MaxTrapsPerSample ||
		dDrops > m.cfg.MaxDropsPerSample ||
		dCk > m.cfg.MaxChecksumPerSample
	if breach {
		m.CanaryBreaches++
		m.breachStreak++
		m.span(now, "canary_breach", fmt.Sprintf("traps=%d drops=%d ck=%d streak=%d", dTraps, dDrops, dCk, m.breachStreak))
		if m.breachStreak >= m.cfg.breachAfter() {
			m.rollback(now, fmt.Sprintf("canary breach: traps=%d drops=%d ck=%d over %d samples",
				dTraps, dDrops, dCk, m.breachStreak))
			return
		}
	} else {
		m.breachStreak = 0
	}

	if !now.Before(m.canaryUntil) {
		m.commit(now)
		return
	}
	m.eng.After(m.cfg.sampleEvery(), func() { m.tick(gen) })
}

// commit resolves the canary in favor of the new generation.
func (m *Manager) commit(now sim.Time) {
	if err := m.n.CommitGeneration(now); err != nil {
		return
	}
	m.phase = Committed
	m.running = false
	m.watchGen++
	m.Commits++
	m.pre = nil
	m.span(now, "commit", fmt.Sprintf("gen=%d", m.n.Generation()))
}

// Rollback forces an immediate revert to the retained old generation (the
// ctl upgrade.start rollback leg and E16's forced-rollback arm).
func (m *Manager) Rollback(now sim.Time, reason string) error {
	if m.phase != Canary {
		return ErrNotInCanary
	}
	m.rollback(now, reason)
	return nil
}

// rollback reverts the flip: ingress pauses again for the reverse swap, the
// old generation is reinstalled, the pre-upgrade cache entries are
// warm-restored, and ingress resumes — the same hitless mechanics as the
// cutover, pointed backwards.
func (m *Manager) rollback(now sim.Time, reason string) {
	if err := m.n.PauseRx(m.cfg.pauseFrames()); err != nil && !errors.Is(err, nic.ErrRxPaused) {
		return
	}
	if err := m.n.RollbackGeneration(now); err != nil {
		_ = m.n.ResumeRx()
		return
	}
	m.Rollbacks++
	m.phase = RolledBack
	m.running = false
	m.watchGen++
	m.lastReason = reason
	m.warmTransfer(now) // restore the pre-upgrade fast path
	_ = m.n.ResumeRx()
	m.pre = nil
	m.span(now, "rollback", fmt.Sprintf("gen=%d reason=%s", m.n.Generation(), reason))
}

// OnControlPlaneCrash is the chaos hook: a control plane that dies during a
// canary window cannot supervise the new generation, so the dataplane
// reverts to the proven one immediately — fail toward the configuration that
// was demonstrably working.
func (m *Manager) OnControlPlaneCrash(now sim.Time) {
	if m.phase == Canary {
		m.rollback(now, "control plane crashed during canary window")
	}
}

// Adopt is the daemon hot-restart path: a new normand process replayed the
// journal and found the dataplane already running some generation. Adoption
// records that generation as ours without touching the dataplane — no flip,
// no flush, no pause. An open canary cannot survive its supervisor's death;
// if the NIC still retains a previous generation, adoption resolves it by
// committing (the dataplane has been serving the new generation all along).
func (m *Manager) Adopt(now sim.Time) uint64 {
	m.Adoptions++
	if m.n.InCanary() {
		m.commit(now)
	} else if m.phase == Canary {
		m.phase = Committed
		m.running = false
		m.watchGen++
	}
	gen := m.n.Generation()
	m.span(now, "adopt", fmt.Sprintf("gen=%d", gen))
	return gen
}

// RegisterMetrics exposes the manager's counters and lifecycle state on a
// telemetry registry (the norman_upgrade_* series in OBSERVABILITY.md).
func (m *Manager) RegisterMetrics(r *telemetry.Registry, labels telemetry.Labels) {
	r.Counter(telemetry.Desc{Layer: "upgrade", Name: "upgrades", Help: "generation cutovers initiated", Unit: "events"},
		labels, func() uint64 { return m.Upgrades })
	r.Counter(telemetry.Desc{Layer: "upgrade", Name: "commits", Help: "canary windows resolved in favor of the new generation", Unit: "events"},
		labels, func() uint64 { return m.Commits })
	r.Counter(telemetry.Desc{Layer: "upgrade", Name: "rollbacks", Help: "generations reverted (canary breach, crash, or forced)", Unit: "events"},
		labels, func() uint64 { return m.Rollbacks })
	r.Counter(telemetry.Desc{Layer: "upgrade", Name: "canary_samples", Help: "canary watch samples taken", Unit: "samples"},
		labels, func() uint64 { return m.CanarySamples })
	r.Counter(telemetry.Desc{Layer: "upgrade", Name: "canary_breaches", Help: "canary samples that breached the trap/drop/checksum budget", Unit: "samples"},
		labels, func() uint64 { return m.CanaryBreaches })
	r.Counter(telemetry.Desc{Layer: "upgrade", Name: "warm_entries", Help: "flow-cache entries warm-transferred across generation flips", Unit: "entries"},
		labels, func() uint64 { return m.WarmEntries })
	r.Counter(telemetry.Desc{Layer: "upgrade", Name: "adoptions", Help: "daemon hot-restarts that re-adopted the live generation without a flip", Unit: "events"},
		labels, func() uint64 { return m.Adoptions })
	r.Gauge(telemetry.Desc{Layer: "upgrade", Name: "generation", Help: "live pipeline generation number", Unit: "generation"},
		labels, func() float64 { return float64(m.n.Generation()) })
	r.Gauge(telemetry.Desc{Layer: "upgrade", Name: "phase", Help: "upgrade lifecycle phase (0 idle, 1 staged, 2 canary, 3 committed, 4 rolledback)", Unit: "phase"},
		labels, func() float64 { return float64(m.phase) })
}
