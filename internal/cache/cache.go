// Package cache models a set-associative last-level cache with an Intel
// DDIO-style way partition.
//
// The paper's §5 anecdote — Norman fails to sustain 100 Gbps past 1024
// concurrent connections — is attributed to DDIO: inbound DMA may allocate
// into only a fixed fraction of LLC ways, so once the active per-connection
// ring working set outgrows that fraction, device accesses spill to DRAM.
//
// The model's partition semantics: DMA accesses look up and allocate only in
// the first DDIOWays ways of each set (the I/O partition). CPU accesses look
// up all ways — a hit on a line resident in a DDIO way refreshes it in place
// (no migration), so descriptor lines kept hot by both the device and the
// consuming core stay in the I/O partition and their survival is governed by
// the partition's capacity, which is the effect the paper hypothesizes.
// Payload data is handled by the NIC with non-allocating (streaming) writes
// and never enters this model; see nic.dmaCost.
package cache

import (
	"fmt"
	"sort"
)

// wayRange is one tenant's slice of the DDIO partition: ways [lo, lo+n).
type wayRange struct {
	lo, n int
}

// TenantDMAStats is one tenant's device-access counters under the DDIO
// partition.
type TenantDMAStats struct {
	Tenant uint32
	Ways   int
	Hits   uint64
	Misses uint64
}

// LLC is a set-associative last-level cache. The zero value is unusable;
// construct with New.
type LLC struct {
	sets     int
	ways     int
	ddioWays int
	lineSz   int

	// tags[set*ways+way] holds the cached line address (addr >> lineShift),
	// or 0 for invalid. stamp provides LRU ordering.
	tags  []uint64
	stamp []uint64
	clock uint64

	hits      uint64
	misses    uint64
	dmaHits   uint64
	dmaMisses uint64

	// Per-tenant DDIO way partition (PartitionDDIO): each listed tenant's
	// device accesses look up and allocate only inside its own way range, so
	// one tenant's descriptor footprint cannot evict another's. Tenants
	// outside the partition fall back to the whole DDIO region.
	parts      map[uint32]wayRange
	partOrder  []uint32 // sorted tenant ids, for deterministic accessors
	tenantHit  map[uint32]uint64
	tenantMiss map[uint32]uint64
}

// Config describes an LLC geometry.
type Config struct {
	TotalBytes int // cache capacity
	Ways       int // associativity
	DDIOWays   int // ways available to DMA allocation (0 disables DDIO: DMA bypasses cache)
	LineBytes  int // cache line size (typically 64)
}

// New constructs an LLC. Panics on non-positive geometry, because a broken
// cache geometry silently corrupts every downstream experiment.
func New(cfg Config) *LLC {
	if cfg.LineBytes <= 0 {
		cfg.LineBytes = 64
	}
	if cfg.TotalBytes <= 0 || cfg.Ways <= 0 {
		panic("cache: non-positive geometry")
	}
	if cfg.DDIOWays > cfg.Ways {
		cfg.DDIOWays = cfg.Ways
	}
	sets := cfg.TotalBytes / (cfg.LineBytes * cfg.Ways)
	if sets <= 0 {
		sets = 1
	}
	return &LLC{
		sets:     sets,
		ways:     cfg.Ways,
		ddioWays: cfg.DDIOWays,
		lineSz:   cfg.LineBytes,
		tags:     make([]uint64, sets*cfg.Ways),
		stamp:    make([]uint64, sets*cfg.Ways),
	}
}

// LineBytes returns the configured line size.
func (c *LLC) LineBytes() int { return c.lineSz }

// lineOf maps an address to its (set, tag) pair. Tag 0 is reserved for
// invalid entries, so line numbers are offset by 1. The set index mixes the
// line number through a multiplicative hash: simulated allocations are
// perfectly page-aligned and regularly strided, which without hashing
// produces pathological set conflicts that physical-page scattering (and
// Intel's complex LLC index hash) prevent on real machines.
func (c *LLC) lineOf(addr uint64) (set int, tag uint64) {
	line := addr/uint64(c.lineSz) + 1
	mixed := line * 0x9E3779B97F4A7C15 // Fibonacci hashing constant
	return int((mixed >> 17) % uint64(c.sets)), line
}

// access performs a lookup over lookupWays ways and, on miss, allocates the
// LRU entry among allocWays ways. allocWays == 0 means no allocation.
func (c *LLC) access(addr uint64, lookupWays, allocWays int) (hit bool) {
	return c.accessWays(addr, 0, lookupWays, 0, allocWays)
}

// accessWays generalizes access to arbitrary way windows: lookup scans ways
// [lookupLo, lookupHi); on miss the LRU entry in [allocLo, allocHi) is
// replaced (an empty alloc window means no allocation). This is the primitive
// the per-tenant DDIO partition is built on.
func (c *LLC) accessWays(addr uint64, lookupLo, lookupHi, allocLo, allocHi int) (hit bool) {
	set, tag := c.lineOf(addr)
	base := set * c.ways
	c.clock++
	for w := lookupLo; w < lookupHi; w++ {
		if c.tags[base+w] == tag {
			c.stamp[base+w] = c.clock
			return true
		}
	}
	if allocHi <= allocLo {
		return false
	}
	victim := base + allocLo
	for w := allocLo + 1; w < allocHi; w++ {
		if c.stamp[base+w] < c.stamp[victim] {
			victim = base + w
		}
	}
	c.tags[victim] = tag
	c.stamp[victim] = c.clock
	return false
}

// CPUAccess simulates a CPU load/store of one line; reports whether it hit.
// Lookup spans all ways (a hit in a DDIO way refreshes in place); allocation
// on miss may use any way.
func (c *LLC) CPUAccess(addr uint64) bool {
	hit := c.access(addr, c.ways, c.ways)
	if hit {
		c.hits++
	} else {
		c.misses++
	}
	return hit
}

// DMAAccess simulates a device access of one line under the DDIO partition:
// lookup and allocation both confined to the DDIO ways. With DDIOWays == 0,
// DMA bypasses the cache entirely (always a miss, no allocation) — DDIO
// disabled.
func (c *LLC) DMAAccess(addr uint64) bool {
	hit := c.access(addr, c.ddioWays, c.ddioWays)
	if hit {
		c.dmaHits++
	} else {
		c.dmaMisses++
	}
	return hit
}

// PartitionDDIO splits the DDIO ways among tenants: each listed tenant gets a
// contiguous, exclusive way range sized by its entry, assigned in ascending
// tenant order. The requested ways must fit the DDIO region (and every share
// must be positive) or the partition is rejected. Installing a partition
// replaces any previous one and resets per-tenant counters; cached lines are
// left in place — a line now outside its owner's range simply ages out.
func (c *LLC) PartitionDDIO(ways map[uint32]int) error {
	if len(ways) == 0 {
		c.ClearPartition()
		return nil
	}
	ids := make([]uint32, 0, len(ways))
	total := 0
	for id, w := range ways {
		if w <= 0 {
			return fmt.Errorf("cache: tenant %d partition share %d ways (must be positive)", id, w)
		}
		total += w
		ids = append(ids, id)
	}
	if total > c.ddioWays {
		return fmt.Errorf("cache: partition wants %d ways, DDIO region has %d", total, c.ddioWays)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	parts := make(map[uint32]wayRange, len(ids))
	lo := 0
	for _, id := range ids {
		parts[id] = wayRange{lo: lo, n: ways[id]}
		lo += ways[id]
	}
	c.parts = parts
	c.partOrder = ids
	c.tenantHit = make(map[uint32]uint64, len(ids))
	c.tenantMiss = make(map[uint32]uint64, len(ids))
	return nil
}

// ClearPartition removes the per-tenant DDIO partition: device accesses share
// the whole DDIO region again.
func (c *LLC) ClearPartition() {
	c.parts, c.partOrder, c.tenantHit, c.tenantMiss = nil, nil, nil, nil
}

// Partitioned reports whether a per-tenant DDIO partition is installed.
func (c *LLC) Partitioned() bool { return len(c.parts) > 0 }

// DMAAccessTenant is DMAAccess under the partition: the tenant's lookup and
// allocation are confined to its own way range. Tenants without a range (the
// unattributed tenant 0, or anyone the partition omits) use the whole DDIO
// region — they can be evicted by everyone but evict only within the shared
// window. Counters accrue both globally and per tenant.
func (c *LLC) DMAAccessTenant(addr uint64, tenant uint32) bool {
	r, ok := c.parts[tenant]
	if !ok {
		r = wayRange{lo: 0, n: c.ddioWays}
	}
	hit := c.accessWays(addr, r.lo, r.lo+r.n, r.lo, r.lo+r.n)
	if hit {
		c.dmaHits++
		if c.tenantHit != nil {
			c.tenantHit[tenant]++
		}
	} else {
		c.dmaMisses++
		if c.tenantMiss != nil {
			c.tenantMiss[tenant]++
		}
	}
	return hit
}

// TenantDMAStats returns per-tenant device hit/miss counters in ascending
// tenant order: the partitioned tenants first (even when idle), then any
// unpartitioned tenants that produced traffic. Sorted iteration keeps
// metrics and ctl output deterministic.
func (c *LLC) TenantDMAStats() []TenantDMAStats {
	if c.tenantHit == nil {
		return nil
	}
	seen := make(map[uint32]bool, len(c.partOrder))
	ids := make([]uint32, 0, len(c.partOrder))
	for _, id := range c.partOrder {
		seen[id] = true
		ids = append(ids, id)
	}
	for id := range c.tenantHit {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	for id := range c.tenantMiss {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]TenantDMAStats, 0, len(ids))
	for _, id := range ids {
		st := TenantDMAStats{Tenant: id, Hits: c.tenantHit[id], Misses: c.tenantMiss[id]}
		if r, ok := c.parts[id]; ok {
			st.Ways = r.n
		}
		out = append(out, st)
	}
	return out
}

// TenantWays returns a tenant's partition share in ways (0 = unpartitioned).
func (c *LLC) TenantWays(tenant uint32) int {
	if r, ok := c.parts[tenant]; ok {
		return r.n
	}
	return 0
}

// Touch performs sequential accesses covering n bytes starting at addr,
// returning how many of the covered lines hit. dma selects the DMA path.
func (c *LLC) Touch(addr uint64, n int, dma bool) (hits, lines int) {
	if n <= 0 {
		return 0, 0
	}
	first := addr / uint64(c.lineSz)
	last := (addr + uint64(n) - 1) / uint64(c.lineSz)
	for l := first; l <= last; l++ {
		var h bool
		if dma {
			h = c.DMAAccess(l * uint64(c.lineSz))
		} else {
			h = c.CPUAccess(l * uint64(c.lineSz))
		}
		if h {
			hits++
		}
		lines++
	}
	return hits, lines
}

// Stats returns cumulative hit/miss counts for CPU and DMA accesses.
func (c *LLC) Stats() (cpuHits, cpuMisses, dmaHits, dmaMisses uint64) {
	return c.hits, c.misses, c.dmaHits, c.dmaMisses
}

// DDIOBytes returns the capacity DMA traffic can occupy.
func (c *LLC) DDIOBytes() int { return c.sets * c.ddioWays * c.lineSz }

// DDIOWays returns the number of ways in the DDIO region.
func (c *LLC) DDIOWays() int { return c.ddioWays }

// Reset invalidates the cache and zeroes statistics.
func (c *LLC) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.stamp[i] = 0
	}
	c.clock = 0
	c.hits, c.misses, c.dmaHits, c.dmaMisses = 0, 0, 0, 0
	if c.tenantHit != nil {
		c.tenantHit = make(map[uint32]uint64, len(c.parts))
		c.tenantMiss = make(map[uint32]uint64, len(c.parts))
	}
}
