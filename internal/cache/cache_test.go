package cache

import (
	"testing"
	"testing/quick"
)

func small() *LLC {
	// 64 sets × 4 ways × 64B lines = 16 KiB, 2 DDIO ways.
	return New(Config{TotalBytes: 16 << 10, Ways: 4, DDIOWays: 2, LineBytes: 64})
}

func TestCPUHitAfterFill(t *testing.T) {
	c := small()
	if c.CPUAccess(0x1000) {
		t.Fatal("cold access must miss")
	}
	if !c.CPUAccess(0x1000) {
		t.Fatal("second access must hit")
	}
	if !c.CPUAccess(0x1010) {
		t.Fatal("same line (different offset) must hit")
	}
	if c.CPUAccess(0x1040) {
		t.Fatal("next line must miss")
	}
}

func TestDMAConfinedToDDIOWays(t *testing.T) {
	c := New(Config{TotalBytes: 64 * 4 * 64, Ways: 4, DDIOWays: 2, LineBytes: 64})
	// Find four addresses in the same set by probing: with hashing we just
	// collect addresses whose repeated DMA insertion evicts each other.
	// Insert 3 distinct lines via DMA: only 2 ways available, so re-access
	// of the first must eventually miss once two newer lines displaced it.
	// Use addresses crafted to be distinct lines.
	addrs := []uint64{}
	base := uint64(0)
	set0, _ := c.lineOf(0)
	for a := uint64(64); len(addrs) < 3; a += 64 {
		if s, _ := c.lineOf(a); s == set0 {
			addrs = append(addrs, a)
		}
	}
	_ = base
	c.DMAAccess(0)
	c.DMAAccess(addrs[0])
	c.DMAAccess(addrs[1]) // evicts line 0 (LRU of the 2 DDIO ways)
	if c.DMAAccess(0) {
		t.Fatal("line 0 should have been evicted from the 2-way DDIO partition")
	}
}

func TestCPURefreshesDDIOLineInPlace(t *testing.T) {
	c := small()
	c.DMAAccess(0x2000) // allocates in a DDIO way
	if !c.CPUAccess(0x2000) {
		t.Fatal("CPU should hit the DMA-allocated line")
	}
	if !c.DMAAccess(0x2000) {
		t.Fatal("DMA must still see the line after a CPU refresh (no migration)")
	}
}

func TestDDIODisabledNeverCaches(t *testing.T) {
	c := New(Config{TotalBytes: 16 << 10, Ways: 4, DDIOWays: 0, LineBytes: 64})
	for i := 0; i < 4; i++ {
		if c.DMAAccess(0x3000) {
			t.Fatal("with DDIO off, DMA must always miss")
		}
	}
	_, _, _, misses := c.Stats()
	if misses != 4 {
		t.Fatalf("dma misses = %d", misses)
	}
}

func TestTouchCountsLines(t *testing.T) {
	c := small()
	hits, lines := c.Touch(0x100, 200, false) // spans 0x100..0x1c7 -> 4 lines
	if lines != 4 || hits != 0 {
		t.Fatalf("first touch: hits=%d lines=%d", hits, lines)
	}
	hits, lines = c.Touch(0x100, 200, false)
	if hits != 4 {
		t.Fatalf("second touch should hit all: hits=%d/%d", hits, lines)
	}
}

func TestDDIOBytes(t *testing.T) {
	c := small()
	if got := c.DDIOBytes(); got != 16<<10/2 {
		t.Fatalf("DDIOBytes = %d", got)
	}
}

func TestReset(t *testing.T) {
	c := small()
	c.CPUAccess(0x99)
	c.Reset()
	if c.CPUAccess(0x99) {
		t.Fatal("reset must invalidate")
	}
	h, m, dh, dm := c.Stats()
	if h != 0 || m != 1 || dh != 0 || dm != 0 {
		t.Fatalf("stats after reset+1 access: %d %d %d %d", h, m, dh, dm)
	}
}

// Property: hit/miss counters always sum to the access count, and a
// working set smaller than the DDIO partition eventually stops missing.
func TestStatsConsistencyQuick(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := small()
		var accesses uint64
		for _, a := range addrs {
			c.DMAAccess(uint64(a))
			c.CPUAccess(uint64(a) + 1<<20)
			accesses++
		}
		ch, cm, dh, dm := c.Stats()
		return ch+cm == accesses && dh+dm == accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSmallWorkingSetConverges(t *testing.T) {
	c := small() // DDIO capacity 8 KiB = 128 lines over 64 sets × 2 ways
	// A 16-line working set cycled repeatedly should become mostly hits
	// after the cold lap (a few set conflicts under the hashed index are
	// tolerated — cyclic access over a conflicted set thrashes LRU).
	const lines, laps = 16, 10
	for lap := 0; lap < laps; lap++ {
		for i := 0; i < lines; i++ {
			c.DMAAccess(uint64(i) * 64)
		}
	}
	_, _, dh, dm := c.Stats()
	total := uint64(lines * laps)
	if dh+dm != total {
		t.Fatalf("accounting: %d+%d != %d", dh, dm, total)
	}
	if float64(dh)/float64(total) < 0.7 {
		t.Fatalf("steady-state hit rate too low: %d/%d", dh, total)
	}
}
