package timing

import (
	"testing"

	"norman/internal/sim"
)

func TestCycles(t *testing.T) {
	m := Default()
	// 3 GHz: 3 cycles = 1 ns.
	if got := m.Cycles(3); got != sim.Nanosecond {
		t.Fatalf("3 cycles = %v", got)
	}
	if m.Cycles(0) != 0 || m.Cycles(-5) != 0 {
		t.Fatal("non-positive cycles are free")
	}
}

func TestNICCycles(t *testing.T) {
	m := Default()
	// 250 MHz: 1 cycle = 4 ns.
	if got := m.NICCycles(1); got != 4*sim.Nanosecond {
		t.Fatalf("1 NIC cycle = %v", got)
	}
}

func TestCopyScalesWithSize(t *testing.T) {
	m := Default()
	small := m.Copy(64)
	big := m.Copy(64 << 10)
	if small <= m.CopyFixed {
		t.Fatal("copy includes per-byte time")
	}
	if big <= small*10 {
		t.Fatalf("64KB copy (%v) should dwarf 64B (%v)", big, small)
	}
}

func TestCrossCore(t *testing.T) {
	m := Default()
	if m.CrossCore(0) != 0 {
		t.Fatal("zero bytes free")
	}
	one := m.CrossCore(64)
	if one < m.CachelineXfer {
		t.Fatal("cross-core includes the line-transfer latency")
	}
	big := m.CrossCore(64 << 10)
	if big <= one {
		t.Fatal("bandwidth term must grow with size")
	}
}

func TestWireAndDMA(t *testing.T) {
	m := Default()
	// 1538B at 100G ≈ 123 ns.
	w := m.Wire(1538)
	if w < 122*sim.Nanosecond || w > 124*sim.Nanosecond {
		t.Fatalf("wire = %v", w)
	}
	// DMA is faster than the wire at PCIe 4.0 x16.
	if m.DMA(1538) >= w {
		t.Fatal("PCIe must outrun the 100G wire")
	}
}

func TestDDIOBytes(t *testing.T) {
	m := Default()
	want := m.LLCBytes * m.DDIOWays / m.LLCWays
	if m.DDIOBytes() != want {
		t.Fatalf("DDIOBytes = %d, want %d", m.DDIOBytes(), want)
	}
	m.LLCWays = 0
	if m.DDIOBytes() != 0 {
		t.Fatal("zero ways -> zero bytes")
	}
}
