// Package timing defines the cost model shared by every dataplane
// architecture in the reproduction.
//
// The paper's argument is about data movement: virtual movement (syscalls,
// copies across the user/kernel boundary) and physical movement (cacheline
// transfers to a dedicated dataplane core) carry costs that kernel bypass
// removes, and KOPI must not reintroduce. The constants below are drawn from
// the literature the paper cites (FlexSC, TAS, NetBricks, PRESTO'10) and from
// common microarchitectural figures; each experiment may override them, and
// the defaults are chosen so the *relative* shape of results — who wins and
// by roughly what factor — matches the published systems, which is the
// standard this reproduction targets (see DESIGN.md §6).
package timing

import "norman/internal/sim"

// Model is the set of cost parameters for one simulated host + SmartNIC.
// The zero value is unusable; start from Default().
type Model struct {
	// Host CPU.
	CPUHz         float64      // host core clock, cycles/second
	Syscall       sim.Duration // syscall entry+exit (trap, KPTI, return)
	ContextSwitch sim.Duration // involuntary context switch / wake-to-run
	Interrupt     sim.Duration // interrupt delivery + handler entry
	CopyBW        float64      // memcpy bandwidth, bytes/second (single core)
	CopyFixed     sim.Duration // per-copy fixed cost (call, cache fills)
	CachelineXfer sim.Duration // cross-core dirty cacheline transfer (64B)
	CrossCoreBW   float64      // pipelined cross-core payload bandwidth, bytes/second
	LLCHit        sim.Duration // last-level cache hit latency
	DRAMAccess    sim.Duration // DRAM access latency
	MMIOWrite     sim.Duration // posted MMIO write (doorbell)
	MMIORead      sim.Duration // non-posted MMIO read (round trip)
	PollIteration sim.Duration // one empty poll-loop iteration

	// PCIe / DMA.
	DMALatency sim.Duration // one-way PCIe DMA initiation latency
	PCIeBW     float64      // usable PCIe bandwidth, bytes/second

	// NIC.
	NICPipeline  sim.Duration // base ingress/egress pipeline latency
	NICClockHz   float64      // overlay/embedded processing clock
	WireBW       float64      // link rate, bytes/second
	WireLatency  sim.Duration // propagation to the peer (one way)
	NICSRAMBytes int          // on-NIC memory budget for state (rings, tables)
	DDIOWays     int          // LLC ways reserved for DDIO
	LLCWays      int          // total LLC ways
	LLCBytes     int          // total LLC capacity

	// Software interposition (kernel stack / sidecar) per-packet costs.
	KernelStackFixed sim.Duration // protocol + skb bookkeeping per packet
}

// Default returns the calibrated default model: a 3 GHz host, PCIe 3.0 x16,
// a 100 Gbps on-path SmartNIC with a 250 MHz overlay clock, and an LLC with
// an Intel-style 2-of-11-way DDIO partition.
func Default() Model {
	return Model{
		CPUHz:         3.0e9,
		Syscall:       600 * sim.Nanosecond,
		ContextSwitch: 1500 * sim.Nanosecond,
		Interrupt:     3 * sim.Microsecond,
		CopyBW:        16e9, // 16 GB/s sustained single-core memcpy
		CopyFixed:     30 * sim.Nanosecond,
		CachelineXfer: 60 * sim.Nanosecond,
		CrossCoreBW:   30e9, // pipelined coherence traffic between cores
		LLCHit:        15 * sim.Nanosecond,
		DRAMAccess:    90 * sim.Nanosecond,
		MMIOWrite:     100 * sim.Nanosecond,
		MMIORead:      900 * sim.Nanosecond,
		PollIteration: 20 * sim.Nanosecond,

		DMALatency: 450 * sim.Nanosecond,
		PCIeBW:     sim.Gbps(252), // PCIe 4.0 x16 effective — 100G NICs need full-duplex headroom

		NICPipeline:  500 * sim.Nanosecond,
		NICClockHz:   250e6,
		WireBW:       sim.Gbps(100),
		WireLatency:  2 * sim.Microsecond,
		NICSRAMBytes: 16 << 20, // 16 MiB of usable on-NIC SRAM
		DDIOWays:     2,
		LLCWays:      11,
		LLCBytes:     22 << 20, // 22 MiB LLC => 4 MiB DDIO share (2/11 ways)

		KernelStackFixed: 900 * sim.Nanosecond,
	}
}

// Cycles converts a host-CPU cycle count to a duration.
func (m Model) Cycles(n int) sim.Duration {
	if n <= 0 {
		return 0
	}
	return sim.Duration(float64(n) / m.CPUHz * float64(sim.Second))
}

// NICCycles converts an overlay-clock cycle count to a duration.
func (m Model) NICCycles(n int) sim.Duration {
	if n <= 0 {
		return 0
	}
	return sim.Duration(float64(n) / m.NICClockHz * float64(sim.Second))
}

// Copy returns the cost of a software copy of n bytes.
func (m Model) Copy(n int) sim.Duration {
	return m.CopyFixed + sim.PerByte(n, m.CopyBW)
}

// CrossCore returns the cost of moving n bytes between cores through the
// coherence fabric: one cacheline-transfer latency to start, then pipelined
// line transfers at the coherence bandwidth.
func (m Model) CrossCore(n int) sim.Duration {
	if n <= 0 {
		return 0
	}
	return m.CachelineXfer + sim.PerByte(n, m.CrossCoreBW)
}

// DMA returns the PCIe transfer time for n bytes (latency added separately
// by callers that need it, since batching amortizes it).
func (m Model) DMA(n int) sim.Duration {
	return sim.PerByte(n, m.PCIeBW)
}

// Wire returns the serialization time of an n-byte frame on the link.
func (m Model) Wire(n int) sim.Duration {
	return sim.PerByte(n, m.WireBW)
}

// DDIOBytes returns the LLC capacity available to DMA traffic under the
// DDIO way partition.
func (m Model) DDIOBytes() int {
	if m.LLCWays <= 0 {
		return 0
	}
	return m.LLCBytes * m.DDIOWays / m.LLCWays
}
