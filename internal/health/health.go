// Package health is Norman's NIC hardware-health monitor: the subsystem that
// makes the paper's always-available kernel slow path *operational* under
// hardware faults instead of merely present. The faults layer can flip
// flow-cache SRAM bits, stall the DMA engine, flap the link and storm the
// overlay pipeline with traps; this package watches the per-component error
// and latency signals those faults move, and on sustained degradation
// quarantines the failing component — failing its traffic over to the kernel
// interposition slow path — then probes and restores it after a probation
// window.
//
// The state machine per component (DESIGN.md §11):
//
//	Healthy --EscalateAfter faulty samples--> Quarantined   (failover)
//	Quarantined --ProbationAfter calm samples--> Probation  (probe)
//	Probation --faulty sample--> Quarantined                (relapse)
//	Probation --RestoreAfter calm samples--> Healthy        (failback)
//
// Quarantine actions per component:
//
//   - flowcache: bypass + flush the cache (every packet takes the full
//     interpretation slow path; nothing memoized under corrupted SRAM
//     survives);
//   - pipeline: reinstall the last-good overlay chain;
//   - dma: clamp the ingress FIFO to a small bound so a stalled engine
//     back-pressures the wire instead of queueing unbounded work;
//   - link: bookkeeping only — carrier loss is announced by the MAC and
//     recovers by itself; the monitor's job is to count and trace it.
//
// Probing undoes the action; a relapse during probation re-applies it. All
// sampling runs on the world's virtual-time engine with no RNG draws, so the
// monitor is deterministic by construction and byte-identical at any worker
// width.
package health

import (
	"norman/internal/nic"
	"norman/internal/sim"
	"norman/internal/telemetry"
)

// Component names one monitored NIC component.
type Component string

// Monitored components, in the (alphabetical) order Status reports them.
const (
	DMA       Component = "dma"
	FlowCache Component = "flowcache"
	Link      Component = "link"
	Pipeline  Component = "pipeline"
)

// State is a component's health state.
type State int

// States.
const (
	Healthy State = iota
	Quarantined
	Probation
)

func (s State) String() string {
	switch s {
	case Quarantined:
		return "quarantined"
	case Probation:
		return "probation"
	default:
		return "healthy"
	}
}

// Config tunes the monitor. The zero value is usable: every knob has a
// default chosen so the E15 fault schedule is detected within a few samples
// without a single absorbed trap tripping a quarantine.
type Config struct {
	// SampleEvery is the signal sampling period (default 5 µs).
	SampleEvery sim.Duration
	// EscalateAfter is how many consecutive faulty samples quarantine a
	// component (default 2 — hysteresis against one-off blips).
	EscalateAfter int
	// ProbationAfter is how many consecutive calm samples a quarantined
	// component needs before the monitor probes it (default 6).
	ProbationAfter int
	// RestoreAfter is how many consecutive calm samples a probing component
	// needs before it is restored to healthy (default 3).
	RestoreAfter int
	// DMAStallFrac is the fraction of a sample period the DMA engine may
	// spend stalled before the dma component counts as faulty (default 0.5).
	DMAStallFrac float64
	// DMAQueueBound is the ingress FIFO depth a quarantined dma component is
	// clamped to — the bounded queue that converts a stalled engine into
	// wire backpressure instead of unbounded buffering (default 16).
	DMAQueueBound int
}

func (c Config) sampleEvery() sim.Duration {
	if c.SampleEvery > 0 {
		return c.SampleEvery
	}
	return 5 * sim.Microsecond
}

func (c Config) escalateAfter() int {
	if c.EscalateAfter > 0 {
		return c.EscalateAfter
	}
	return 2
}

func (c Config) probationAfter() int {
	if c.ProbationAfter > 0 {
		return c.ProbationAfter
	}
	return 6
}

func (c Config) restoreAfter() int {
	if c.RestoreAfter > 0 {
		return c.RestoreAfter
	}
	return 3
}

func (c Config) dmaStallFrac() float64 {
	if c.DMAStallFrac > 0 {
		return c.DMAStallFrac
	}
	return 0.5
}

func (c Config) dmaQueueBound() int {
	if c.DMAQueueBound > 0 {
		return c.DMAQueueBound
	}
	return 16
}

// comp is one component's runtime state.
type comp struct {
	name       Component
	state      State
	hotStreak  int // consecutive faulty samples while healthy
	calmStreak int // consecutive calm samples while quarantined/probing
	faulty     bool

	// Event counters, surfaced in Status and metrics.
	signals     uint64 // faulty samples observed
	quarantines uint64
	failovers   uint64
	failbacks   uint64

	savedWindow int // dma: the rxWindow to restore on probe
}

// ComponentStatus is one component's externally visible health row.
type ComponentStatus struct {
	Component   Component
	State       State
	Signals     uint64
	Quarantines uint64
	Failovers   uint64
	Failbacks   uint64
}

// Monitor samples one NIC's component health signals and drives the
// quarantine/probation state machine. Like everything else on the dataplane
// it lives on one engine's event loop and is not safe for concurrent use.
type Monitor struct {
	eng    *sim.Engine
	n      *nic.NIC
	cfg    Config
	tracer *telemetry.Tracer

	comps    []*comp
	until    sim.Time
	watchGen uint64
	running  bool

	// Previous counter snapshots for delta signals.
	prevStallNs uint64
	prevCkFails uint64
	prevTraps   uint64

	// Aggregate event counters.
	Samples     uint64
	Quarantines uint64
	Failovers   uint64
	Failbacks   uint64
	Probes      uint64
}

// New builds a monitor over a world's engine and NIC. Creating the monitor
// turns on flow-cache checksum verification (the detection half of the
// failover story); it is re-asserted on every sample so a cache enabled
// after the monitor is still covered.
func New(eng *sim.Engine, n *nic.NIC, cfg Config) *Monitor {
	m := &Monitor{
		eng: eng,
		n:   n,
		cfg: cfg,
		comps: []*comp{
			{name: DMA},
			{name: FlowCache},
			{name: Link},
			{name: Pipeline},
		},
	}
	if fc := n.FlowCache(); fc != nil {
		fc.SetVerify(true)
	}
	return m
}

// SetTracer attaches a trace sink: every quarantine, failover, probe and
// failback becomes a span event on the "health" layer.
func (m *Monitor) SetTracer(tr *telemetry.Tracer) { m.tracer = tr }

// span records one health lifecycle event when tracing is on.
func (m *Monitor) span(now sim.Time, point string, c *comp) {
	if m.tracer == nil {
		return
	}
	m.tracer.Record(m.tracer.StampID(), now, "health", point, "component="+string(c.name))
}

// Start arms the sampler until the given virtual time (0 = forever).
func (m *Monitor) Start(until sim.Time) {
	if m.running {
		return
	}
	m.running = true
	m.until = until
	m.watchGen++
	gen := m.watchGen
	m.eng.After(m.cfg.sampleEvery(), func() { m.tick(gen) })
}

// Stop halts the sampler; in-flight ticks become no-ops. Component states
// (and any active quarantine actions) are retained.
func (m *Monitor) Stop() {
	m.running = false
	m.watchGen++
}

// Running reports whether the sampler is armed.
func (m *Monitor) Running() bool { return m.running }

func (m *Monitor) tick(gen uint64) {
	if gen != m.watchGen {
		return
	}
	now := m.eng.Now()
	if m.until != 0 && now.After(m.until) {
		m.running = false
		return
	}
	m.sample(now)
	m.eng.After(m.cfg.sampleEvery(), func() { m.tick(gen) })
}

// sample reads each component's signal once and advances its state machine.
// Signals are counter deltas (or levels) over one period, so a burst that
// happened entirely inside a period is seen exactly once — and a component
// must stay noisy across EscalateAfter periods to be quarantined.
func (m *Monitor) sample(now sim.Time) {
	m.Samples++
	if fc := m.n.FlowCache(); fc != nil && !fc.Verify() {
		fc.SetVerify(true)
	}

	// DMA: injected stall time per period against the allowed fraction.
	stall := m.n.DMAStallNs
	dStall := stall - m.prevStallNs
	m.prevStallNs = stall
	budget := uint64(float64(m.cfg.sampleEvery()/sim.Nanosecond) * m.cfg.dmaStallFrac())

	// Flow cache: detected checksum failures per period.
	var ck uint64
	if fc := m.n.FlowCache(); fc != nil {
		ck = fc.ChecksumFails
	}
	dCk := ck - m.prevCkFails
	m.prevCkFails = ck

	// Pipeline: traps absorbed (fallbacks) or terminal (fail-opens).
	traps := m.n.TrapFallbacks + m.n.TrapFailOpens
	dTraps := traps - m.prevTraps
	m.prevTraps = traps

	for _, c := range m.comps {
		switch c.name {
		case DMA:
			c.faulty = dStall > budget
		case FlowCache:
			c.faulty = dCk > 0
		case Link:
			c.faulty = !m.n.LinkUp()
		case Pipeline:
			c.faulty = dTraps > 0
		}
		if c.faulty {
			c.signals++
		}
		m.advance(now, c)
	}
}

// advance runs one component's state machine for one sample.
func (m *Monitor) advance(now sim.Time, c *comp) {
	switch c.state {
	case Healthy:
		if !c.faulty {
			c.hotStreak = 0
			return
		}
		c.hotStreak++
		if c.hotStreak >= m.cfg.escalateAfter() {
			m.quarantine(now, c)
		}
	case Quarantined:
		if c.faulty {
			c.calmStreak = 0
			return
		}
		c.calmStreak++
		if c.calmStreak >= m.cfg.probationAfter() {
			m.probe(now, c)
		}
	case Probation:
		if c.faulty {
			// Relapse: the fault came back the moment the component was
			// trusted again — re-quarantine (a fresh event, counted again).
			m.quarantine(now, c)
			return
		}
		c.calmStreak++
		if c.calmStreak >= m.cfg.restoreAfter() {
			c.state = Healthy
			c.calmStreak = 0
			c.failbacks++
			m.Failbacks++
			m.span(now, "failback", c)
		}
	}
}

// quarantine applies the component's failover action and marks it
// quarantined. One fault event counts exactly once here regardless of how
// many packets it touched — the per-retry inflation the trap-fallback audit
// removed.
func (m *Monitor) quarantine(now sim.Time, c *comp) {
	c.state = Quarantined
	c.hotStreak = 0
	c.calmStreak = 0
	c.quarantines++
	m.Quarantines++
	m.span(now, "quarantine", c)
	switch c.name {
	case FlowCache:
		// Disable the cache without releasing its SRAM: every packet runs
		// full interpretation — the kernel slow path the paper keeps warm.
		m.n.SetFlowCacheBypass(true)
	case Pipeline:
		// Swap the storming chain out for the last-good one (the E4 reload
		// machinery in reverse). If none exists the trap fallback has
		// already failed open; there is nothing further to fail over to.
		m.n.ReinstallLastGood(nic.Ingress)
	case DMA:
		// Bound the ingress queue so a stalled engine back-pressures the
		// wire (FIFO drops the governor can see) instead of hoarding frames.
		if c.savedWindow == 0 {
			c.savedWindow = m.n.RxWindow()
		}
		if bound := m.cfg.dmaQueueBound(); m.n.RxWindow() > bound {
			m.n.SetRxWindow(bound)
		}
	case Link:
		// Carrier loss announces itself and heals itself; nothing to do.
	}
	c.failovers++
	m.Failovers++
	m.span(now, "failover", c)
}

// probe undoes the quarantine action and moves the component to probation:
// the fast path is trusted again, under watch — a relapse re-quarantines.
func (m *Monitor) probe(now sim.Time, c *comp) {
	c.state = Probation
	c.calmStreak = 0
	m.Probes++
	m.span(now, "probe", c)
	switch c.name {
	case FlowCache:
		m.n.SetFlowCacheBypass(false)
	case DMA:
		if c.savedWindow > 0 {
			m.n.SetRxWindow(c.savedWindow)
			c.savedWindow = 0
		}
	case Pipeline, Link:
		// The last-good chain stays (it is the restored state); the link
		// restored itself.
	}
}

// Status returns one row per component in alphabetical component order —
// deterministic, snapshot semantics.
func (m *Monitor) Status() []ComponentStatus {
	out := make([]ComponentStatus, 0, len(m.comps))
	for _, c := range m.comps {
		out = append(out, ComponentStatus{
			Component:   c.name,
			State:       c.state,
			Signals:     c.signals,
			Quarantines: c.quarantines,
			Failovers:   c.failovers,
			Failbacks:   c.failbacks,
		})
	}
	return out
}

// RegisterMetrics exposes the monitor's counters and per-component state on
// a telemetry registry (the norman_health_* series in OBSERVABILITY.md).
func (m *Monitor) RegisterMetrics(r *telemetry.Registry, labels telemetry.Labels) {
	r.Counter(telemetry.Desc{Layer: "health", Name: "samples", Help: "health sampling ticks", Unit: "samples"},
		labels, func() uint64 { return m.Samples })
	r.Counter(telemetry.Desc{Layer: "health", Name: "quarantines", Help: "component quarantine events (one per fault event, not per retry)", Unit: "events"},
		labels, func() uint64 { return m.Quarantines })
	r.Counter(telemetry.Desc{Layer: "health", Name: "failovers", Help: "failover actions applied (traffic moved to the kernel slow path)", Unit: "events"},
		labels, func() uint64 { return m.Failovers })
	r.Counter(telemetry.Desc{Layer: "health", Name: "failbacks", Help: "components restored to healthy after probation", Unit: "events"},
		labels, func() uint64 { return m.Failbacks })
	r.Counter(telemetry.Desc{Layer: "health", Name: "probes", Help: "probation probes (quarantine action undone, component under watch)", Unit: "events"},
		labels, func() uint64 { return m.Probes })
	for _, c := range m.comps {
		c := c
		cl := make(telemetry.Labels, len(labels)+1)
		for k, v := range labels {
			cl[k] = v
		}
		cl["component"] = string(c.name)
		r.Gauge(telemetry.Desc{Layer: "health", Name: "component_state", Help: "component health state (0 healthy, 1 quarantined, 2 probation)", Unit: "state"},
			cl, func() float64 { return float64(c.state) })
		r.Counter(telemetry.Desc{Layer: "health", Name: "component_signal", Help: "faulty samples observed for the component", Unit: "samples"},
			cl, func() uint64 { return c.signals })
		r.Counter(telemetry.Desc{Layer: "health", Name: "component_quarantines", Help: "quarantine events for the component", Unit: "events"},
			cl, func() uint64 { return c.quarantines })
	}
}
