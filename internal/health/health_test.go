package health

import (
	"testing"

	"norman/internal/nic"
	"norman/internal/overlay"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/timing"
)

func newWorld(t *testing.T) (*sim.Engine, *nic.NIC) {
	t.Helper()
	eng := sim.NewEngine()
	n := nic.New(nic.Config{Engine: eng, Model: timing.Default(), SRAMBudget: 1 << 20, RingSize: 8})
	return eng, n
}

func flowKey(i int) packet.FlowKey {
	return packet.FlowKey{
		Src: packet.MakeIP(10, 0, 0, 2), Dst: packet.MakeIP(10, 0, 0, 1),
		SrcPort: uint16(40000 + i), DstPort: 80, Proto: 17,
	}
}

// TestFlowCacheQuarantineProbeFailback walks the full state machine:
// corrupted entries surface as checksum failures, sustained failures
// quarantine the cache (bypass on), calm samples probe it (bypass off), and
// continued calm restores it to healthy.
func TestFlowCacheQuarantineProbeFailback(t *testing.T) {
	eng, n := newWorld(t)
	if err := n.EnableFlowCache(64); err != nil {
		t.Fatal(err)
	}
	m := New(eng, n, Config{
		SampleEvery: sim.Microsecond, EscalateAfter: 2,
		ProbationAfter: 2, RestoreAfter: 2,
	})
	fc := n.FlowCache()
	if !fc.Verify() {
		t.Fatal("New must enable checksum verification")
	}

	// Three sample periods of detected corruption: install+corrupt+lookup
	// just before each of the first three ticks.
	for i := 0; i < 3; i++ {
		k := flowKey(i)
		at := sim.Duration(i)*sim.Microsecond + 500*sim.Nanosecond
		eng.After(at, func() {
			fc.Install(k, 1, 0, overlay.VerdictPass, 0, 0)
			for s := 0; s < fc.Capacity(); s++ {
				fc.Corrupt(s)
			}
			fc.Lookup(k) // detected: ChecksumFails++, entry dropped
		})
	}
	m.Start(sim.Time(20 * sim.Microsecond))
	eng.Run()

	if m.Quarantines != 1 || m.Failovers != 1 {
		t.Fatalf("quarantines=%d failovers=%d, want 1/1", m.Quarantines, m.Failovers)
	}
	if m.Probes != 1 || m.Failbacks != 1 {
		t.Fatalf("probes=%d failbacks=%d, want 1/1", m.Probes, m.Failbacks)
	}
	if n.FlowCacheBypassed() {
		t.Fatal("failback must lift the flow-cache bypass")
	}
	rows := m.Status()
	if len(rows) != 4 {
		t.Fatalf("status rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Component == FlowCache {
			if r.State != Healthy || r.Quarantines != 1 || r.Failbacks != 1 {
				t.Fatalf("flowcache row = %+v", r)
			}
		} else if r.State != Healthy || r.Quarantines != 0 {
			t.Fatalf("%s row = %+v", r.Component, r)
		}
	}
}

// TestProbationRelapseRequarantines: a fault during probation re-applies the
// quarantine action and counts a fresh quarantine event.
func TestProbationRelapseRequarantines(t *testing.T) {
	eng, n := newWorld(t)
	if err := n.EnableFlowCache(64); err != nil {
		t.Fatal(err)
	}
	m := New(eng, n, Config{
		SampleEvery: sim.Microsecond, EscalateAfter: 1,
		ProbationAfter: 2, RestoreAfter: 4,
	})
	fc := n.FlowCache()
	poison := func(i int) {
		k := flowKey(i)
		fc.Install(k, 1, 0, overlay.VerdictPass, 0, 0)
		for s := 0; s < fc.Capacity(); s++ {
			fc.Corrupt(s)
		}
		fc.Lookup(k)
	}
	// Fault at t≈0 (quarantine on sample 1), calm through probation entry
	// (sample 3), then fault again while probing (sample 4ish).
	eng.After(500*sim.Nanosecond, func() { poison(0) })
	eng.After(3*sim.Microsecond+500*sim.Nanosecond, func() {
		if !n.FlowCacheBypassed() {
			// Must already be probing — bypass lifted — for this to model a
			// relapse rather than a detection inside quarantine.
			poison(1)
		} else {
			t.Error("expected probe to lift the bypass before the relapse")
		}
	})
	m.Start(sim.Time(5 * sim.Microsecond))
	eng.Run()

	if m.Quarantines != 2 {
		t.Fatalf("quarantines = %d, want 2 (initial + relapse)", m.Quarantines)
	}
	if !n.FlowCacheBypassed() {
		t.Fatal("relapse must re-apply the bypass")
	}
}

// TestDMAQuarantineBoundsQueue: sustained DMA stall time clamps the ingress
// FIFO to the configured bound and restores it on probe.
func TestDMAQuarantineBoundsQueue(t *testing.T) {
	eng, n := newWorld(t)
	m := New(eng, n, Config{
		SampleEvery: sim.Microsecond, EscalateAfter: 2,
		ProbationAfter: 3, RestoreAfter: 2,
		DMAStallFrac: 0.5, DMAQueueBound: 4,
	})
	before := n.RxWindow()
	// Two periods each >50% stalled.
	eng.After(100*sim.Nanosecond, func() { n.StallDMA(800 * sim.Nanosecond) })
	eng.After(1*sim.Microsecond+100*sim.Nanosecond, func() { n.StallDMA(800 * sim.Nanosecond) })
	var clamped int
	eng.After(2*sim.Microsecond+500*sim.Nanosecond, func() { clamped = n.RxWindow() })
	m.Start(sim.Time(10 * sim.Microsecond))
	eng.Run()

	if clamped != 4 {
		t.Fatalf("quarantined rx window = %d, want 4", clamped)
	}
	if n.RxWindow() != before {
		t.Fatalf("probe must restore the rx window: %d != %d", n.RxWindow(), before)
	}
	if m.Quarantines != 1 || m.Failbacks != 1 {
		t.Fatalf("quarantines=%d failbacks=%d", m.Quarantines, m.Failbacks)
	}
}

// TestLinkFlapTracksState: a down link is a level signal — quarantined while
// down, probed and restored after it comes back.
func TestLinkFlapTracksState(t *testing.T) {
	eng, n := newWorld(t)
	m := New(eng, n, Config{
		SampleEvery: sim.Microsecond, EscalateAfter: 2,
		ProbationAfter: 2, RestoreAfter: 2,
	})
	eng.After(500*sim.Nanosecond, func() { n.SetLink(false) })
	eng.After(4*sim.Microsecond, func() { n.SetLink(true) })
	m.Start(sim.Time(12 * sim.Microsecond))
	eng.Run()

	var link ComponentStatus
	for _, r := range m.Status() {
		if r.Component == Link {
			link = r
		}
	}
	if link.Quarantines != 1 || link.State != Healthy || link.Failbacks != 1 {
		t.Fatalf("link row = %+v", link)
	}
	if link.Signals < 2 {
		t.Fatalf("link signals = %d, want >=2 down samples", link.Signals)
	}
}

// TestPipelineQuarantineReinstallsLastGood: a trap storm rolls the ingress
// pipeline back to its last-good chain.
func TestPipelineQuarantineReinstallsLastGood(t *testing.T) {
	eng, n := newWorld(t)
	good, err := overlay.Assemble("good", "pass\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.LoadProgram(nic.Ingress, good); err != nil {
		t.Fatal(err)
	}
	next, err := overlay.Assemble("next", "pass\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.LoadProgram(nic.Ingress, next); err != nil {
		t.Fatal(err)
	}
	m := New(eng, n, Config{SampleEvery: sim.Microsecond, EscalateAfter: 2})
	// Fake sustained trap activity: bump the counter across two periods.
	eng.After(500*sim.Nanosecond, func() { n.TrapFallbacks++ })
	eng.After(1*sim.Microsecond+500*sim.Nanosecond, func() { n.TrapFallbacks++ })
	m.Start(sim.Time(3 * sim.Microsecond))
	eng.Run()

	if m.Quarantines != 1 {
		t.Fatalf("quarantines = %d", m.Quarantines)
	}
	if cur := n.Machine(nic.Ingress); cur == nil || cur.Program() != good {
		t.Fatal("pipeline quarantine must reinstall the last-good chain")
	}
}

// TestMonitorDeterminism: two identically seeded runs produce identical
// status snapshots (the chaos-soak fingerprint precondition).
func TestMonitorDeterminism(t *testing.T) {
	run := func() []ComponentStatus {
		eng, n := newWorld(t)
		if err := n.EnableFlowCache(64); err != nil {
			t.Fatal(err)
		}
		m := New(eng, n, Config{SampleEvery: sim.Microsecond, EscalateAfter: 1})
		fc := n.FlowCache()
		eng.After(300*sim.Nanosecond, func() {
			k := flowKey(0)
			fc.Install(k, 1, 0, overlay.VerdictPass, 0, 0)
			fc.Corrupt(0)
			fc.Corrupt(1)
			fc.Lookup(k)
		})
		eng.After(2*sim.Microsecond, func() { n.SetLink(false) })
		m.Start(sim.Time(8 * sim.Microsecond))
		eng.Run()
		return m.Status()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
