package faults

import (
	"testing"
	"time"

	"norman/internal/nic"
	"norman/internal/overlay"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/timing"
)

func testNIC() (*nic.NIC, *sim.Engine) {
	eng := sim.NewEngine()
	n := nic.New(nic.Config{Engine: eng, Model: timing.Default(), SRAMBudget: 1 << 20, RingSize: 8})
	return n, eng
}

func frame() *packet.Packet {
	return packet.NewUDP(packet.MAC{1}, packet.MAC{2}, packet.MakeIP(10, 0, 0, 1),
		packet.MakeIP(10, 0, 0, 2), 99, 80, 64)
}

// feed pushes count frames through a Tx wrapper and returns delivered count.
func feed(inj *Injector, eng *sim.Engine, count int) int {
	delivered := 0
	tx := inj.WrapTx(func(*packet.Packet, sim.Time) { delivered++ })
	for i := 0; i < count; i++ {
		tx(frame(), eng.Now())
	}
	eng.Run() // flush delayed (reordered/duplicated) deliveries
	return delivered
}

func TestWireFaultsCount(t *testing.T) {
	n, eng := testNIC()
	inj := New(eng, n, nil, Config{
		Seed:  1,
		Label: "t",
		Tx:    WireConfig{Loss: 0.1, Corrupt: 0.05, Reorder: 0.1, Duplicate: 0.1},
	})
	const total = 2000
	delivered := feed(inj, eng, total)

	if inj.Tx.Frames != total {
		t.Fatalf("frames = %d", inj.Tx.Frames)
	}
	for name, c := range map[string]uint64{
		"lost": inj.Tx.Lost, "corrupted": inj.Tx.Corrupted,
		"reordered": inj.Tx.Reordered, "duplicated": inj.Tx.Duplicated,
	} {
		if c == 0 {
			t.Fatalf("%s never fired over %d frames", name, total)
		}
	}
	want := total - int(inj.Tx.Dropped()) + int(inj.Tx.Duplicated)
	if delivered != want {
		t.Fatalf("delivered %d, want %d (dropped %d, dup %d)",
			delivered, want, inj.Tx.Dropped(), inj.Tx.Duplicated)
	}
	// Loose sanity on rates: each should land within 3x of its target.
	if lost := float64(inj.Tx.Lost); lost < total*0.1/3 || lost > total*0.1*3 {
		t.Fatalf("loss rate off: %d/%d", inj.Tx.Lost, total)
	}
}

func TestZeroConfigIsTransparent(t *testing.T) {
	n, eng := testNIC()
	inj := New(eng, n, nil, Config{Seed: 1, Label: "t"})
	if delivered := feed(inj, eng, 100); delivered != 100 {
		t.Fatalf("clean config dropped frames: %d/100", delivered)
	}
	if inj.Tx.Dropped() != 0 || inj.Tx.Duplicated != 0 || inj.Tx.Reordered != 0 {
		t.Fatalf("clean config recorded faults: %+v", inj.Tx)
	}
}

// TestSameSeedSameFaults is the determinism contract: identical seed and
// label replay the identical fault pattern.
func TestSameSeedSameFaults(t *testing.T) {
	runOnce := func(seed int64) WireStats {
		n, eng := testNIC()
		inj := New(eng, n, nil, Config{
			Seed: seed, Label: "det",
			Tx: WireConfig{Loss: 0.2, Reorder: 0.1, Duplicate: 0.1},
		})
		feed(inj, eng, 1000)
		return inj.Tx
	}
	a, b := runOnce(7), runOnce(7)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if c := runOnce(8); a == c {
		t.Fatalf("different seeds produced identical fault pattern: %+v", a)
	}
}

func TestRingPressureBursts(t *testing.T) {
	n, eng := testNIC()
	normal := n.RxWindow()
	inj := New(eng, n, nil, Config{
		Seed: 1, Label: "ring",
		Ring: RingConfig{Period: 100 * sim.Microsecond, Burst: 10 * sim.Microsecond, Window: 1},
	})
	inj.Start(sim.Time(1 * sim.Millisecond))

	squeezed := false
	eng.At(sim.Time(105*sim.Microsecond), func() {
		squeezed = n.RxWindow() == 1
	})
	eng.RunUntil(sim.Time(2 * sim.Millisecond))

	if !squeezed {
		t.Fatal("burst never squeezed the RX window")
	}
	if n.RxWindow() != normal {
		t.Fatalf("window not restored after bursts: %d vs %d", n.RxWindow(), normal)
	}
	if inj.RingBursts == 0 || inj.RingBursts > 10 {
		t.Fatalf("bursts = %d, want ~10 within the 1ms horizon", inj.RingBursts)
	}
}

func TestScheduleOverlayTrap(t *testing.T) {
	n, eng := testNIC()
	prog, err := overlay.Assemble("p", "pass\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.LoadProgram(nic.Ingress, prog); err != nil {
		t.Fatal(err)
	}
	inj := New(eng, n, nil, Config{Seed: 1, Label: "trap"})
	inj.ScheduleOverlayTrap(nic.Ingress, sim.Time(10*sim.Microsecond), "boom")
	eng.Run()
	if inj.OverlayTraps != 1 {
		t.Fatalf("OverlayTraps = %d", inj.OverlayTraps)
	}
	if _, _, err := n.Machine(nic.Ingress).Run(frame(), overlay.NopEnv{}); err == nil {
		t.Fatal("armed trap did not fire")
	}
}

func TestBackoffShape(t *testing.T) {
	base, max := 50*time.Millisecond, time.Second
	prev := time.Duration(0)
	for attempt := 0; attempt < 10; attempt++ {
		d := Backoff(base, max, attempt, 3)
		if d < base/2 || d > max {
			t.Fatalf("attempt %d: %v outside [base/2, max]", attempt, d)
		}
		if d != Backoff(base, max, attempt, 3) {
			t.Fatalf("attempt %d: backoff not deterministic", attempt)
		}
		_ = prev
		prev = d
	}
	// The cap binds: large attempts never exceed max.
	if d := Backoff(base, max, 50, 3); d > max {
		t.Fatalf("uncapped backoff: %v", d)
	}
	// Jitter spreads different seeds.
	same := true
	for seed := int64(0); seed < 8; seed++ {
		if Backoff(base, max, 4, seed) != Backoff(base, max, 4, 0) {
			same = false
		}
	}
	if same {
		t.Fatal("jitter is seed-independent")
	}
	// Zero-value arguments resolve to sane defaults.
	if d := Backoff(0, 0, 0, 0); d <= 0 || d > time.Second {
		t.Fatalf("default backoff: %v", d)
	}
}
