// Package faults is Norman's deterministic fault-injection layer: the
// off-happy-path half of the interposition argument. The paper (§5) leaves
// failure handling open; OSMOSIS and CoRD both observe that kernel-bypass
// dataplanes lose the kernel's failure-containment role. This package makes
// faults first-class, seedable simulation inputs so the E9 experiment can
// measure how each architecture degrades instead of guessing:
//
//   - wire faults: frame loss, corruption (FCS drop at the receiver),
//     reordering (extra in-flight delay) and duplication, applied where the
//     NIC hands frames to the wire (nic.NIC.OnTransmit) and, symmetrically,
//     where peer traffic re-enters the host;
//   - NIC pressure bursts: transient RX-FIFO squeezes (ring overflow) and
//     DDIO-way thrashing by an antagonist DMA device;
//   - overlay runtime traps, armed one-shot into a loaded overlay machine
//     (the NIC absorbs them by falling back to its last-good chain);
//   - control-plane outages, exercised in wall-clock land through the
//     Backoff schedule ctl.Client uses for its dial/request retries;
//   - NIC hardware faults (PR 9): flow-cache SRAM bit flips that corrupt
//     memoized verdicts, DMA-engine stalls, physical link flaps, overlay
//     trap storms and bitstream-reload hangs — the component-level failure
//     modes the internal/health monitor detects and quarantines, failing
//     traffic over to the kernel interposition slow path.
//
// Every decision comes from sim.RNG streams derived from Config.Seed plus a
// per-direction label, so the same seed replays the same fault pattern
// byte-for-byte at any experiment worker width.
package faults

import (
	"time"

	"norman/internal/cache"
	"norman/internal/nic"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/telemetry"
)

// WireConfig describes the fault model of one direction of the wire. All
// probabilities are per frame in [0,1].
type WireConfig struct {
	Loss      float64 // frame silently lost in flight
	Corrupt   float64 // frame corrupted; the receiving MAC drops it on FCS
	Reorder   float64 // frame delayed past its successors
	Duplicate float64 // frame delivered twice (the copy slightly later)

	// ReorderDelay is the extra latency a reordered frame picks up
	// (default 25 µs — several wire RTTs, enough to trigger dupacks).
	ReorderDelay sim.Duration
	// DuplicateDelay separates a duplicate from its original (default 5 µs).
	DuplicateDelay sim.Duration
}

// enabled reports whether any fault is configured.
func (c WireConfig) enabled() bool {
	return c.Loss > 0 || c.Corrupt > 0 || c.Reorder > 0 || c.Duplicate > 0
}

// WireStats counts one direction's injected wire faults.
type WireStats struct {
	Frames     uint64 // frames offered to the faulty link
	Lost       uint64
	Corrupted  uint64
	Reordered  uint64
	Duplicated uint64
}

// Dropped is the total frames that never reached the far side.
func (s WireStats) Dropped() uint64 { return s.Lost + s.Corrupted }

// RingConfig describes periodic NIC-pressure bursts: for Burst out of every
// Period, the ingress FIFO is squeezed to Window frames and DDIOLines
// antagonist DMA lines are slammed through the LLC's DDIO ways — the
// ring-overflow and cache-pressure failure modes of a shared SmartNIC.
type RingConfig struct {
	Period    sim.Duration // burst cadence; 0 disables pressure bursts
	Burst     sim.Duration // burst length (default Period/10, capped at Period/2)
	Window    int          // squeezed RX FIFO depth during a burst (default 1)
	DDIOLines int          // antagonist DMA cache lines touched per burst
}

// Config is the full fault profile for one world.
type Config struct {
	// Seed drives every random decision; identical seeds replay identical
	// fault patterns. Experiments resolve it from NORMAN_FAULT_SEED.
	Seed int64
	// Label namespaces the RNG streams so independent worlds sharing a seed
	// (e.g. different sweep points) still draw independent patterns.
	Label string

	Tx   WireConfig // host -> wire direction (the NIC's transmit hand-off)
	Rx   WireConfig // wire -> host direction (peer traffic re-entering)
	Ring RingConfig
}

// Injector applies a Config to one world. Construct with New, then splice it
// into the datapath with AttachTx / WrapRx and arm time-based faults with
// Start / ScheduleOverlayTrap.
type Injector struct {
	eng *sim.Engine
	nic *nic.NIC
	llc *cache.LLC
	cfg Config

	txRNG *sim.RNG
	rxRNG *sim.RNG
	hwRNG *sim.RNG // hardware fault placement (SRAM flip slots)

	// tracer, when set via SetTracer, records a span event for every fault
	// decision that touches a traced packet.
	tracer *telemetry.Tracer

	Tx WireStats
	Rx WireStats
	// RingBursts counts pressure bursts applied.
	RingBursts uint64
	// OverlayTraps counts traps armed into overlay machines.
	OverlayTraps uint64
	// NICStateLosses counts NIC-resident state losses injected (unloaded
	// pipeline programs, dropped steering rows) — the divergence the crash
	// reconciler must detect and repair.
	NICStateLosses uint64
	// Hardware fault counters (one per scheduled class; see the Schedule*
	// methods below).
	SRAMFlips      uint64 // flow-cache entries actually corrupted
	LinkFlaps      uint64
	DMAStalls      uint64
	TrapStorms     uint64
	BitstreamHangs uint64
}

// New builds an injector over a world's engine, NIC and (optionally nil)
// LLC.
func New(eng *sim.Engine, n *nic.NIC, llc *cache.LLC, cfg Config) *Injector {
	return &Injector{
		eng:   eng,
		nic:   n,
		llc:   llc,
		cfg:   cfg,
		txRNG: sim.NewRNG(cfg.Seed, "faults.tx."+cfg.Label),
		rxRNG: sim.NewRNG(cfg.Seed, "faults.rx."+cfg.Label),
		hwRNG: sim.NewRNG(cfg.Seed, "faults.hw."+cfg.Label),
	}
}

// SetTracer attaches a packet-lifecycle tracer: every fault decision that
// hits a traced packet (loss, corruption, reorder, duplicate) becomes a span
// event in that packet's journey, which is how a single-packet trace shows
// *why* a frame vanished rather than just that it did.
func (i *Injector) SetTracer(tr *telemetry.Tracer) { i.tracer = tr }

// trace records a fault span event for p when tracing is on.
func (i *Injector) trace(p *packet.Packet, point, note string) {
	if i.tracer == nil || p.Meta.Trace == 0 {
		return
	}
	i.tracer.Record(p.Meta.Trace, i.eng.Now(), "faults", point, note)
}

// RegisterMetrics exposes the injector's fault counters on a registry.
func (i *Injector) RegisterMetrics(r *telemetry.Registry, labels telemetry.Labels) {
	for _, d := range []struct {
		dir string
		st  *WireStats
	}{{"tx", &i.Tx}, {"rx", &i.Rx}} {
		st := d.st
		l := telemetry.Labels{"dir": d.dir}
		for k, v := range labels {
			l[k] = v
		}
		r.Counter(telemetry.Desc{Layer: "faults", Name: "wire_frames", Help: "frames offered to the faulty link", Unit: "frames"},
			l, func() uint64 { return st.Frames })
		r.Counter(telemetry.Desc{Layer: "faults", Name: "wire_lost", Help: "frames silently lost in flight", Unit: "frames"},
			l, func() uint64 { return st.Lost })
		r.Counter(telemetry.Desc{Layer: "faults", Name: "wire_corrupted", Help: "frames corrupted and dropped by the receiver's FCS check", Unit: "frames"},
			l, func() uint64 { return st.Corrupted })
		r.Counter(telemetry.Desc{Layer: "faults", Name: "wire_reordered", Help: "frames delayed past their successors", Unit: "frames"},
			l, func() uint64 { return st.Reordered })
		r.Counter(telemetry.Desc{Layer: "faults", Name: "wire_duplicated", Help: "frames delivered twice", Unit: "frames"},
			l, func() uint64 { return st.Duplicated })
	}
	r.Counter(telemetry.Desc{Layer: "faults", Name: "ring_bursts", Help: "NIC pressure bursts applied (RX FIFO squeeze + DDIO antagonist)", Unit: "bursts"},
		labels, func() uint64 { return i.RingBursts })
	r.Counter(telemetry.Desc{Layer: "faults", Name: "overlay_traps", Help: "runtime traps armed into loaded overlay machines", Unit: "traps"},
		labels, func() uint64 { return i.OverlayTraps })
	r.Counter(telemetry.Desc{Layer: "faults", Name: "nic_state_losses", Help: "NIC-resident state losses injected (programs unloaded, steering rows dropped)", Unit: "losses"},
		labels, func() uint64 { return i.NICStateLosses })
	r.Counter(telemetry.Desc{Layer: "faults", Name: "sram_flips", Help: "flow-cache SRAM bit flips injected (live entries corrupted)", Unit: "flips"},
		labels, func() uint64 { return i.SRAMFlips })
	r.Counter(telemetry.Desc{Layer: "faults", Name: "link_flaps", Help: "physical link flaps injected", Unit: "flaps"},
		labels, func() uint64 { return i.LinkFlaps })
	r.Counter(telemetry.Desc{Layer: "faults", Name: "dma_stalls", Help: "DMA-engine stalls injected", Unit: "stalls"},
		labels, func() uint64 { return i.DMAStalls })
	r.Counter(telemetry.Desc{Layer: "faults", Name: "trap_storms", Help: "overlay trap storms injected", Unit: "storms"},
		labels, func() uint64 { return i.TrapStorms })
	r.Counter(telemetry.Desc{Layer: "faults", Name: "bitstream_hangs", Help: "bitstream-reload hangs injected", Unit: "hangs"},
		labels, func() uint64 { return i.BitstreamHangs })
}

// AttachTx splices the Tx wire-fault model into the NIC's transmit hand-off,
// wrapping whatever OnTransmit hook the architecture installed. Call after
// the architecture is fully constructed.
func (i *Injector) AttachTx() {
	i.nic.OnTransmit = i.WrapTx(i.nic.OnTransmit)
}

// WrapTx returns next wrapped in the Tx fault model.
func (i *Injector) WrapTx(next func(p *packet.Packet, at sim.Time)) func(p *packet.Packet, at sim.Time) {
	if next == nil {
		next = func(*packet.Packet, sim.Time) {}
	}
	return func(p *packet.Packet, at sim.Time) {
		i.apply(i.cfg.Tx, i.txRNG, &i.Tx, "tx", p, func(pp *packet.Packet, extra sim.Duration) {
			if extra <= 0 {
				next(pp, at)
				return
			}
			i.eng.After(extra, func() { next(pp, i.eng.Now()) })
		})
	}
}

// WrapRx returns next wrapped in the Rx fault model, for the peer-side
// injection point (typically arch.Arch.DeliverWire or a responder's Deliver
// hook).
func (i *Injector) WrapRx(next func(p *packet.Packet)) func(p *packet.Packet) {
	if next == nil {
		next = func(*packet.Packet) {}
	}
	return func(p *packet.Packet) {
		i.apply(i.cfg.Rx, i.rxRNG, &i.Rx, "rx", p, func(pp *packet.Packet, extra sim.Duration) {
			if extra <= 0 {
				next(pp)
				return
			}
			i.eng.After(extra, func() { next(pp) })
		})
	}
}

// apply runs one frame through a direction's fault model. deliver is called
// zero times (loss/corruption), once (clean or reordered), or twice
// (duplication); the RNG draw order is fixed so fault patterns depend only
// on the seed and the frame sequence, never on scheduling.
func (i *Injector) apply(cfg WireConfig, rng *sim.RNG, st *WireStats, dir string, p *packet.Packet,
	deliver func(pp *packet.Packet, extra sim.Duration)) {
	st.Frames++
	if !cfg.enabled() {
		deliver(p, 0)
		return
	}
	if cfg.Loss > 0 && rng.Float64() < cfg.Loss {
		st.Lost++
		i.trace(p, "wire_lost", "dir="+dir)
		return
	}
	if cfg.Corrupt > 0 && rng.Float64() < cfg.Corrupt {
		// The frame still burned wire bandwidth (the sender paid
		// serialization before the hand-off); the receiver's FCS check eats
		// it, so past this point corruption behaves as loss.
		st.Corrupted++
		i.trace(p, "wire_corrupted", "dir="+dir)
		return
	}
	var extra sim.Duration
	if cfg.Reorder > 0 && rng.Float64() < cfg.Reorder {
		st.Reordered++
		d := cfg.ReorderDelay
		if d <= 0 {
			d = 25 * sim.Microsecond
		}
		// Uniform in [d, 2d) so back-to-back reordered frames do not simply
		// form a second in-order queue.
		extra = d + sim.Duration(rng.Int63()%int64(d))
		i.trace(p, "wire_reordered", "dir="+dir)
	}
	if cfg.Duplicate > 0 && rng.Float64() < cfg.Duplicate {
		st.Duplicated++
		dd := cfg.DuplicateDelay
		if dd <= 0 {
			dd = 5 * sim.Microsecond
		}
		i.trace(p, "wire_duplicated", "dir="+dir)
		deliver(p.Clone(), extra+dd)
	}
	deliver(p, extra)
}

// Start arms the time-based fault processes (ring-pressure bursts) until the
// given virtual time (0 = forever). Wire faults need no Start; they act on
// every frame passing the wrapped hooks.
func (i *Injector) Start(until sim.Time) {
	rc := i.cfg.Ring
	if rc.Period <= 0 || i.nic == nil {
		return
	}
	burst := rc.Burst
	if burst <= 0 {
		burst = rc.Period / 10
	}
	if burst > rc.Period/2 {
		burst = rc.Period / 2
	}
	window := rc.Window
	if window < 1 {
		window = 1
	}
	var tick func()
	tick = func() {
		now := i.eng.Now()
		if until > 0 && !now.Before(until) {
			return
		}
		i.RingBursts++
		normal := i.nic.RxWindow()
		i.nic.SetRxWindow(window)
		if i.llc != nil && rc.DDIOLines > 0 {
			// An antagonist bus master (another NIC, a storage controller)
			// claiming the shared DDIO ways: every line it touches is one a
			// descriptor ring may have to re-fetch from DRAM.
			base := uint64(0xFA00_0000) + i.RingBursts*uint64(rc.DDIOLines)*64
			for l := 0; l < rc.DDIOLines; l++ {
				i.llc.DMAAccess(base + uint64(l)*64)
			}
		}
		i.eng.After(burst, func() { i.nic.SetRxWindow(normal) })
		i.eng.After(rc.Period, tick)
	}
	i.eng.After(rc.Period, tick)
}

// ScheduleOverlayTrap arms a one-shot runtime trap into whatever overlay
// machine is loaded on dir at virtual time at. The NIC's graceful-degradation
// path (trap fallback to the last-good chain) absorbs it; nic.TrapFallbacks
// counts the absorption.
func (i *Injector) ScheduleOverlayTrap(dir nic.Direction, at sim.Time, reason string) {
	i.eng.At(at, func() {
		if m := i.nic.Machine(dir); m != nil {
			m.InjectTrap(reason)
			i.OverlayTraps++
		}
	})
}

// ScheduleNICStateLoss arms a one-shot loss of NIC-resident state at
// virtual time at: the pipeline program on dir is unloaded (as a partial
// reset would) and, if flow is non-zero, its steering-table row is dropped.
// Unlike a trap this is silent — nothing falls back; the live NIC simply
// diverges from journaled intent until the crash reconciler notices
// (E10 and TestRestartRepairsInjectedDivergence exercise exactly this).
func (i *Injector) ScheduleNICStateLoss(dir nic.Direction, flow packet.FlowKey, at sim.Time) {
	i.eng.At(at, func() {
		if i.nic.Machine(dir) != nil {
			i.nic.UnloadProgram(dir)
			i.NICStateLosses++
		}
		if flow != (packet.FlowKey{}) && i.nic.DropSteering(flow) {
			i.NICStateLosses++
		}
	})
}

// ScheduleSRAMBurst arms a burst of flow-cache SRAM bit flips at virtual
// time at: flips random slot indexes (drawn from the hw RNG stream, so the
// pattern depends only on seed and label) are corrupted in place — verdict
// bit inverted, checksum left stale. Flips landing in empty slots are
// harmless, as on real hardware; SRAMFlips counts only the entries actually
// corrupted. With verification off (raw bypass) the corrupted verdicts are
// silently served; with it on they surface as checksum failures the health
// monitor quarantines on.
func (i *Injector) ScheduleSRAMBurst(at sim.Time, flips int) {
	i.eng.At(at, func() {
		fc := i.nic.FlowCache()
		if fc == nil || flips <= 0 {
			return
		}
		cap := fc.Capacity()
		for f := 0; f < flips; f++ {
			if fc.Corrupt(int(i.hwRNG.Int63() % int64(cap))) {
				i.SRAMFlips++
			}
		}
	})
}

// ScheduleLinkFlap arms a link flap at virtual time at: the physical link
// goes down for d, dropping every ingress frame at the MAC, then comes back.
// A flap scheduled while the link is already down is skipped (flaps do not
// nest; the earlier flap's restore stands).
func (i *Injector) ScheduleLinkFlap(at sim.Time, d sim.Duration) {
	i.eng.At(at, func() {
		if !i.nic.LinkUp() || d <= 0 {
			return
		}
		i.LinkFlaps++
		i.nic.SetLink(false)
		i.eng.After(d, func() { i.nic.SetLink(true) })
	})
}

// ScheduleDMAStall arms a DMA-engine stall at virtual time at: the engine is
// occupied for d (a wedged PCIe credit exchange), so every descriptor fetch
// and payload move queued behind it waits — ingress backs up into the FIFO
// and, unchecked, overflows it.
func (i *Injector) ScheduleDMAStall(at sim.Time, d sim.Duration) {
	i.eng.At(at, func() {
		if d <= 0 {
			return
		}
		i.DMAStalls++
		i.nic.StallDMA(d)
	})
}

// ScheduleTrapStorm arms count back-to-back runtime traps on dir starting at
// virtual time at, spaced gap apart — the repeated-fault pattern that should
// push the health monitor past its hysteresis threshold where a single
// absorbed trap would not.
func (i *Injector) ScheduleTrapStorm(dir nic.Direction, at sim.Time, count int, gap sim.Duration, reason string) {
	if count <= 0 {
		return
	}
	i.eng.At(at, func() { i.TrapStorms++ })
	for t := 0; t < count; t++ {
		i.ScheduleOverlayTrap(dir, at.Add(sim.Duration(t)*gap), reason)
	}
}

// ScheduleBitstreamHang arms a bitstream-reload hang at virtual time at: the
// dataplane reconfigures and stays down for d (0 = the paper's multi-second
// default), clearing all loaded programs and dynamic state.
func (i *Injector) ScheduleBitstreamHang(at sim.Time, d sim.Duration) {
	i.eng.At(at, func() {
		i.BitstreamHangs++
		i.nic.ReloadBitstream(i.eng.Now(), d)
	})
}

// Backoff computes the capped exponential backoff with deterministic jitter
// used by control-plane clients retrying through an injected (or real)
// control-socket outage: base·2ⁿ capped at max, scaled by a jitter factor in
// [0.5, 1.0) derived only from (seed, attempt) — reproducible, yet spread
// enough that a thundering herd of tools does not re-dial in lockstep.
func Backoff(base, max time.Duration, attempt int, seed int64) time.Duration {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	d := base
	for n := 0; n < attempt && d < max; n++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// FNV-style mix of seed and attempt for the jitter fraction.
	h := uint64(seed) ^ 0xcbf29ce484222325
	h = h*1099511628211 + uint64(attempt) + 1
	h ^= h >> 33
	frac := 0.5 + 0.5*float64(h%1024)/1024
	return time.Duration(float64(d) * frac)
}
