package packet

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIPv4String(t *testing.T) {
	ip := MakeIP(10, 1, 2, 3)
	if ip.String() != "10.1.2.3" {
		t.Fatalf("got %q", ip.String())
	}
}

func TestInPrefix(t *testing.T) {
	net := MakeIP(10, 0, 0, 0)
	cases := []struct {
		ip   IPv4
		bits int
		want bool
	}{
		{MakeIP(10, 1, 2, 3), 8, true},
		{MakeIP(11, 1, 2, 3), 8, false},
		{MakeIP(10, 0, 0, 0), 32, true},
		{MakeIP(10, 0, 0, 1), 32, false},
		{MakeIP(192, 168, 0, 1), 0, true}, // /0 matches everything
	}
	for _, c := range cases {
		if got := c.ip.InPrefix(net, c.bits); got != c.want {
			t.Errorf("%v in %v/%d = %v, want %v", c.ip, net, c.bits, got, c.want)
		}
	}
}

func TestFrameLenMinimum(t *testing.T) {
	p := NewUDP(MAC{}, MAC{}, 1, 2, 10, 20, 0)
	if p.FrameLen() != 60 {
		t.Fatalf("tiny frames pad to 60, got %d", p.FrameLen())
	}
	p = NewUDP(MAC{}, MAC{}, 1, 2, 10, 20, 1460)
	if p.FrameLen() != 14+20+8+1460 {
		t.Fatalf("FrameLen = %d", p.FrameLen())
	}
}

func TestFlowKeyReverse(t *testing.T) {
	k := FlowKey{Src: 1, Dst: 2, SrcPort: 10, DstPort: 20, Proto: ProtoUDP}
	r := k.Reverse()
	if r.Src != 2 || r.Dst != 1 || r.SrcPort != 20 || r.DstPort != 10 {
		t.Fatalf("reverse = %+v", r)
	}
	if r.Reverse() != k {
		t.Fatal("double reverse must be identity")
	}
}

// Property: Reverse is an involution for arbitrary keys.
func TestFlowKeyReverseQuick(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, proto uint8) bool {
		k := FlowKey{Src: IPv4(src), Dst: IPv4(dst), SrcPort: sp, DstPort: dp, Proto: proto}
		return k.Reverse().Reverse() == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUDPMarshalRoundTrip(t *testing.T) {
	payload := []byte("hello, norman! this payload round-trips")
	p := NewUDP(MAC{1, 2, 3, 4, 5, 6}, MAC{7, 8, 9, 10, 11, 12},
		MakeIP(10, 0, 0, 1), MakeIP(10, 0, 0, 2), 4242, 7, len(payload))
	p.Payload = payload

	q, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if q.UDP == nil || q.UDP.SrcPort != 4242 || q.UDP.DstPort != 7 {
		t.Fatalf("ports lost: %+v", q.UDP)
	}
	if q.IP.Src != p.IP.Src || q.IP.Dst != p.IP.Dst {
		t.Fatal("addresses lost")
	}
	if !bytes.Equal(q.Payload, payload) {
		t.Fatalf("payload lost: %q", q.Payload)
	}
	if q.Eth.Src != p.Eth.Src || q.Eth.Dst != p.Eth.Dst {
		t.Fatal("MACs lost")
	}
}

func TestTCPMarshalRoundTrip(t *testing.T) {
	p := NewTCP(MAC{1}, MAC{2}, MakeIP(1, 2, 3, 4), MakeIP(5, 6, 7, 8),
		80, 54321, TCPSyn|TCPAck, 5)
	p.TCP.Seq = 0xdeadbeef
	p.TCP.Ack = 0xfeedface
	p.Payload = []byte{1, 2, 3, 4, 5}
	p.IP.TotalLen = uint16(20 + 20 + 5)

	q, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if q.TCP == nil || q.TCP.Seq != 0xdeadbeef || q.TCP.Ack != 0xfeedface {
		t.Fatalf("tcp fields lost: %+v", q.TCP)
	}
	if q.TCP.Flags != TCPSyn|TCPAck {
		t.Fatalf("flags = %x", q.TCP.Flags)
	}
}

func TestARPMarshalRoundTrip(t *testing.T) {
	p := NewARPRequest(MAC{0xaa}, MakeIP(10, 0, 0, 1), MakeIP(10, 0, 0, 9))
	q, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if q.ARP == nil || q.ARP.Op != ARPRequest {
		t.Fatalf("arp lost: %+v", q.ARP)
	}
	if q.ARP.TargetIP != MakeIP(10, 0, 0, 9) || q.ARP.SenderIP != MakeIP(10, 0, 0, 1) {
		t.Fatal("arp addresses lost")
	}
	if !q.Eth.Dst.IsBroadcast() {
		t.Fatal("arp request should be broadcast")
	}
}

func TestUnmarshalDetectsCorruption(t *testing.T) {
	p := NewUDP(MAC{}, MAC{}, 1, 2, 3, 4, 32)
	p.Payload = bytes.Repeat([]byte{0x5a}, 32)
	wire := p.Marshal()

	// Flip a payload byte: the UDP checksum must catch it.
	wire[len(wire)-1] ^= 0xff
	if _, err := Unmarshal(wire); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("want checksum error, got %v", err)
	}

	// Truncation.
	if _, err := Unmarshal(wire[:10]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want truncated, got %v", err)
	}
}

// Property: any UDP packet with a random payload survives a marshal
// round-trip bit-exactly.
func TestMarshalRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(src, dst uint32, sp, dp uint16, n uint8) bool {
		payload := make([]byte, int(n))
		rng.Read(payload)
		p := NewUDP(MAC{1}, MAC{2}, IPv4(src), IPv4(dst), sp, dp, len(payload))
		p.Payload = payload
		q, err := Unmarshal(p.Marshal())
		if err != nil {
			return false
		}
		return q.UDP.SrcPort == sp && q.UDP.DstPort == dp &&
			q.IP.Src == IPv4(src) && q.IP.Dst == IPv4(dst) &&
			bytes.Equal(q.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := NewUDP(MAC{}, MAC{}, 1, 2, 3, 4, 4)
	p.Payload = []byte{1, 2, 3, 4}
	p.Meta.UID = 42
	q := p.Clone()
	q.IP.Src = 99
	q.UDP.SrcPort = 999
	q.Payload[0] = 0xff
	q.Meta.UID = 7
	if p.IP.Src != 1 || p.UDP.SrcPort != 3 || p.Payload[0] != 1 || p.Meta.UID != 42 {
		t.Fatal("clone mutated the original")
	}
}

func TestFlowExtraction(t *testing.T) {
	p := NewUDP(MAC{}, MAC{}, 1, 2, 3, 4, 0)
	k, ok := p.Flow()
	if !ok || k.SrcPort != 3 || k.Proto != ProtoUDP {
		t.Fatalf("udp flow: %v %v", k, ok)
	}
	arp := NewARPRequest(MAC{}, 1, 2)
	if _, ok := arp.Flow(); ok {
		t.Fatal("arp has no transport flow")
	}
}

// Property: Unmarshal never panics on arbitrary bytes — it either parses or
// returns an error.
func TestUnmarshalNeverPanicsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(n uint16, seed int64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		b := make([]byte, int(n%512))
		rng.Read(b)
		_, _ = Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: corrupting any single byte of a valid frame is either detected
// (error) or harmless to structure (parses); never a panic.
func TestUnmarshalBitflipQuick(t *testing.T) {
	p := NewUDP(MAC{1}, MAC{2}, MakeIP(10, 0, 0, 1), MakeIP(10, 0, 0, 2), 999, 53, 64)
	p.Payload = bytes.Repeat([]byte{0xab}, 64)
	wire := p.Marshal()
	f := func(pos uint16, val uint8) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		b := append([]byte(nil), wire...)
		b[int(pos)%len(b)] ^= val | 1
		_, _ = Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestICMPRoundTrip(t *testing.T) {
	req := NewICMPEcho(MAC{1}, MAC{2}, MakeIP(10, 0, 0, 1), MakeIP(10, 0, 0, 2),
		ICMPEchoRequest, 42, 7, 16)
	req.Payload = bytes.Repeat([]byte{0x11}, 16)
	q, err := Unmarshal(req.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if q.ICMP == nil || q.ICMP.Type != ICMPEchoRequest || q.ICMP.ID != 42 || q.ICMP.Seq != 7 {
		t.Fatalf("icmp lost: %+v", q.ICMP)
	}
	reply := EchoReplyTo(req)
	if reply.ICMP.Type != ICMPEchoReply || reply.IP.Dst != req.IP.Src || reply.ICMP.ID != 42 {
		t.Fatalf("reply: %+v %v", reply.ICMP, reply.IP)
	}
	if !req.IsEchoRequestTo(MakeIP(10, 0, 0, 2)) || req.IsEchoRequestTo(MakeIP(10, 0, 0, 3)) {
		t.Fatal("IsEchoRequestTo")
	}
}
