// Package packet models network packets for the Norman simulation: typed
// Ethernet/ARP/IPv4/UDP/TCP headers, wire-format serialization and parsing
// (with real checksums, so captures written by the sniffer are valid pcap
// payloads), and the host-side metadata — owning user, process and
// connection — that the paper's interposition arguments revolve around.
package packet

import (
	"fmt"

	"norman/internal/sim"
)

// EtherType values understood by the simulation.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
)

// IP protocol numbers understood by the simulation.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// BroadcastMAC is the all-ones Ethernet broadcast address.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

// IPv4 is an IPv4 address in host byte order.
type IPv4 uint32

// MakeIP builds an address from dotted-quad octets.
func MakeIP(a, b, c, d byte) IPv4 {
	return IPv4(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// InPrefix reports whether ip falls inside network/bits.
func (ip IPv4) InPrefix(network IPv4, bits int) bool {
	if bits <= 0 {
		return true
	}
	if bits >= 32 {
		return ip == network
	}
	mask := ^IPv4(0) << (32 - bits)
	return ip&mask == network&mask
}

// Eth is an Ethernet II header.
type Eth struct {
	Dst  MAC
	Src  MAC
	Type uint16
}

// ARP is an IPv4-over-Ethernet ARP message.
type ARP struct {
	Op       uint16 // 1 request, 2 reply
	SenderHW MAC
	SenderIP IPv4
	TargetHW MAC
	TargetIP IPv4
}

// ARP opcodes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// IP is an IPv4 header (options unsupported; IHL is always 5).
type IP struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Proto    uint8
	Src      IPv4
	Dst      IPv4
}

// UDP is a UDP header.
type UDP struct {
	SrcPort uint16
	DstPort uint16
	Len     uint16
}

// TCP flag bits.
const (
	TCPFin uint8 = 1 << 0
	TCPSyn uint8 = 1 << 1
	TCPRst uint8 = 1 << 2
	TCPPsh uint8 = 1 << 3
	TCPAck uint8 = 1 << 4
)

// TCP is a TCP header (options unsupported; data offset is always 5).
type TCP struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16
}

// Meta is host-side metadata attached to a packet while it is inside the
// simulated host. It is what an on-host interposition layer can see and an
// off-host one (network, hypervisor switch) cannot: the owning user and
// process, and the connection the packet belongs to.
type Meta struct {
	UID       uint32 // owning user
	PID       uint32 // owning process
	Command   string // process command name (iptables cmd-owner)
	CommandID uint32 // interned command id (what the NIC can match on)
	ConnID    uint64 // owning connection, 0 if none
	Mark      uint32 // firewall mark set by interposition
	Class     uint32 // qdisc class assigned by interposition
	// Tenant is the isolation domain the packet's connection belongs to —
	// the unit the NIC's weighted pipeline/DMA scheduler and the per-tenant
	// DDIO partition account against. Assigned by the kernel at connection
	// setup (kernel.TenantOf, defaulting to the owning UID) and stamped by
	// the NIC from the connection context, like the rest of the trusted
	// metadata. 0 is the unattributed/system tenant.
	Tenant uint32

	Enqueued sim.Time // when the app produced / NIC received the packet
	// Trace is the packet-lifecycle trace ID assigned at the packet's first
	// interposition point when tracing is enabled (telemetry.Tracer), 0
	// otherwise. Clones keep the ID, so a duplicated or TSO-segmented frame
	// shows up inside its origin packet's journey.
	Trace uint64
	// TrustedMeta distinguishes metadata stamped by a privileged layer
	// (kernel connection table, KOPI NIC) from metadata merely claimed by
	// the application. Off-host interposition only ever sees untrusted
	// claims, which is the root of the paper's §2 argument.
	TrustedMeta bool
}

// Packet is a simulated frame: typed headers plus payload length. Payload
// contents are carried only when a test or the sniffer needs real bytes;
// otherwise PayloadLen alone drives the cost model, keeping large sweeps
// allocation-light.
type Packet struct {
	Eth  Eth
	ARP  *ARP
	IP   *IP
	UDP  *UDP
	TCP  *TCP
	ICMP *ICMP

	Payload    []byte
	PayloadLen int // authoritative payload size in bytes

	Meta Meta
}

// FrameLen returns the on-wire frame length in bytes (without FCS).
func (p *Packet) FrameLen() int {
	n := 14 // Ethernet
	switch {
	case p.ARP != nil:
		n += 28
	case p.IP != nil:
		n += 20
		switch {
		case p.UDP != nil:
			n += 8
		case p.TCP != nil:
			n += 20
		case p.ICMP != nil:
			n += 8
		}
		n += p.PayloadLen
	default:
		n += p.PayloadLen
	}
	if n < 60 {
		n = 60 // minimum Ethernet frame
	}
	return n
}

// FlowKey identifies a transport 5-tuple.
type FlowKey struct {
	Src     IPv4
	Dst     IPv4
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Reverse returns the key of the opposite direction.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Src: k.Dst, Dst: k.Src, SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: k.Proto}
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%s:%d->%s:%d/%d", k.Src, k.SrcPort, k.Dst, k.DstPort, k.Proto)
}

// Flow extracts the 5-tuple of an IPv4 transport packet. ok is false for
// non-IP or non-TCP/UDP packets.
func (p *Packet) Flow() (k FlowKey, ok bool) {
	if p.IP == nil {
		return k, false
	}
	k.Src, k.Dst, k.Proto = p.IP.Src, p.IP.Dst, p.IP.Proto
	switch {
	case p.UDP != nil:
		k.SrcPort, k.DstPort = p.UDP.SrcPort, p.UDP.DstPort
	case p.TCP != nil:
		k.SrcPort, k.DstPort = p.TCP.SrcPort, p.TCP.DstPort
	default:
		return k, false
	}
	return k, true
}

// Clone returns a deep copy of the packet (headers and payload).
func (p *Packet) Clone() *Packet {
	q := *p
	if p.ARP != nil {
		a := *p.ARP
		q.ARP = &a
	}
	if p.IP != nil {
		h := *p.IP
		q.IP = &h
	}
	if p.UDP != nil {
		u := *p.UDP
		q.UDP = &u
	}
	if p.TCP != nil {
		t := *p.TCP
		q.TCP = &t
	}
	if p.ICMP != nil {
		ic := *p.ICMP
		q.ICMP = &ic
	}
	if p.Payload != nil {
		q.Payload = append([]byte(nil), p.Payload...)
	}
	return &q
}

// NewUDP builds a UDP datagram with the given addressing and payload size.
func NewUDP(srcMAC, dstMAC MAC, src, dst IPv4, sport, dport uint16, payloadLen int) *Packet {
	return &Packet{
		Eth: Eth{Dst: dstMAC, Src: srcMAC, Type: EtherTypeIPv4},
		IP: &IP{
			TotalLen: uint16(20 + 8 + payloadLen),
			TTL:      64,
			Proto:    ProtoUDP,
			Src:      src,
			Dst:      dst,
		},
		UDP:        &UDP{SrcPort: sport, DstPort: dport, Len: uint16(8 + payloadLen)},
		PayloadLen: payloadLen,
	}
}

// NewTCP builds a TCP segment with the given addressing, flags and payload
// size.
func NewTCP(srcMAC, dstMAC MAC, src, dst IPv4, sport, dport uint16, flags uint8, payloadLen int) *Packet {
	return &Packet{
		Eth: Eth{Dst: dstMAC, Src: srcMAC, Type: EtherTypeIPv4},
		IP: &IP{
			TotalLen: uint16(20 + 20 + payloadLen),
			TTL:      64,
			Proto:    ProtoTCP,
			Src:      src,
			Dst:      dst,
		},
		TCP:        &TCP{SrcPort: sport, DstPort: dport, Flags: flags, Window: 65535},
		PayloadLen: payloadLen,
	}
}

// NewARPRequest builds a who-has ARP broadcast.
func NewARPRequest(srcMAC MAC, srcIP, targetIP IPv4) *Packet {
	return &Packet{
		Eth: Eth{Dst: BroadcastMAC, Src: srcMAC, Type: EtherTypeARP},
		ARP: &ARP{Op: ARPRequest, SenderHW: srcMAC, SenderIP: srcIP, TargetIP: targetIP},
	}
}

// NewARPReply builds an ARP reply from sender to target.
func NewARPReply(srcMAC MAC, srcIP IPv4, dstMAC MAC, dstIP IPv4) *Packet {
	return &Packet{
		Eth: Eth{Dst: dstMAC, Src: srcMAC, Type: EtherTypeARP},
		ARP: &ARP{Op: ARPReply, SenderHW: srcMAC, SenderIP: srcIP, TargetHW: dstMAC, TargetIP: dstIP},
	}
}
