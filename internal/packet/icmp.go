package packet

// ICMP message types used by the reproduction.
const (
	ICMPEchoReply   uint8 = 0
	ICMPEchoRequest uint8 = 8
)

// ICMP is an ICMP echo header (the only ICMP the simulation speaks).
type ICMP struct {
	Type uint8
	Code uint8
	ID   uint16
	Seq  uint16
}

// NewICMPEcho builds an ICMP echo request or reply.
func NewICMPEcho(srcMAC, dstMAC MAC, src, dst IPv4, icmpType uint8, id, seq uint16, payloadLen int) *Packet {
	return &Packet{
		Eth: Eth{Dst: dstMAC, Src: srcMAC, Type: EtherTypeIPv4},
		IP: &IP{
			TotalLen: uint16(20 + 8 + payloadLen),
			TTL:      64,
			Proto:    ProtoICMP,
			Src:      src,
			Dst:      dst,
		},
		ICMP:       &ICMP{Type: icmpType, ID: id, Seq: seq},
		PayloadLen: payloadLen,
	}
}

// EchoReplyTo builds the reply to an echo request, swapping addressing.
func EchoReplyTo(req *Packet) *Packet {
	return NewICMPEcho(req.Eth.Dst, req.Eth.Src, req.IP.Dst, req.IP.Src,
		ICMPEchoReply, req.ICMP.ID, req.ICMP.Seq, req.PayloadLen)
}

// IsEchoRequestTo reports whether p is an ICMP echo request addressed to ip.
func (p *Packet) IsEchoRequestTo(ip IPv4) bool {
	return p.ICMP != nil && p.ICMP.Type == ICMPEchoRequest && p.IP != nil && p.IP.Dst == ip
}
