package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire-format errors.
var (
	ErrTruncated   = errors.New("packet: truncated frame")
	ErrBadChecksum = errors.New("packet: bad checksum")
)

// Marshal serializes the packet to its wire format. Payload bytes are taken
// from Payload when present, otherwise PayloadLen zero bytes are emitted.
// IPv4 and transport checksums are computed. Frames shorter than the 60-byte
// Ethernet minimum are padded.
func (p *Packet) Marshal() []byte {
	buf := make([]byte, 0, p.FrameLen())
	buf = append(buf, p.Eth.Dst[:]...)
	buf = append(buf, p.Eth.Src[:]...)
	buf = binary.BigEndian.AppendUint16(buf, p.Eth.Type)

	switch {
	case p.ARP != nil:
		buf = binary.BigEndian.AppendUint16(buf, 1) // hw type: Ethernet
		buf = binary.BigEndian.AppendUint16(buf, EtherTypeIPv4)
		buf = append(buf, 6, 4) // hw len, proto len
		buf = binary.BigEndian.AppendUint16(buf, p.ARP.Op)
		buf = append(buf, p.ARP.SenderHW[:]...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(p.ARP.SenderIP))
		buf = append(buf, p.ARP.TargetHW[:]...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(p.ARP.TargetIP))

	case p.IP != nil:
		payload := p.Payload
		if payload == nil && p.PayloadLen > 0 {
			payload = make([]byte, p.PayloadLen)
		}
		// Wire lengths are computed from the actual contents: header
		// fields such as TotalLen may be stale when callers resize the
		// payload after construction.
		transport := 0
		switch {
		case p.UDP != nil:
			transport = 8
		case p.TCP != nil:
			transport = 20
		case p.ICMP != nil:
			transport = 8
		}
		totalLen := uint16(20 + transport + len(payload))

		hdr := make([]byte, 20)
		hdr[0] = 0x45 // version 4, IHL 5
		hdr[1] = p.IP.TOS
		binary.BigEndian.PutUint16(hdr[2:], totalLen)
		binary.BigEndian.PutUint16(hdr[4:], p.IP.ID)
		hdr[8] = p.IP.TTL
		hdr[9] = p.IP.Proto
		binary.BigEndian.PutUint32(hdr[12:], uint32(p.IP.Src))
		binary.BigEndian.PutUint32(hdr[16:], uint32(p.IP.Dst))
		binary.BigEndian.PutUint16(hdr[10:], checksum(hdr))
		buf = append(buf, hdr...)

		switch {
		case p.UDP != nil:
			th := make([]byte, 8)
			binary.BigEndian.PutUint16(th[0:], p.UDP.SrcPort)
			binary.BigEndian.PutUint16(th[2:], p.UDP.DstPort)
			binary.BigEndian.PutUint16(th[4:], uint16(8+len(payload)))
			binary.BigEndian.PutUint16(th[6:], transportChecksum(p.IP, th, payload))
			buf = append(buf, th...)
			buf = append(buf, payload...)
		case p.TCP != nil:
			th := make([]byte, 20)
			binary.BigEndian.PutUint16(th[0:], p.TCP.SrcPort)
			binary.BigEndian.PutUint16(th[2:], p.TCP.DstPort)
			binary.BigEndian.PutUint32(th[4:], p.TCP.Seq)
			binary.BigEndian.PutUint32(th[8:], p.TCP.Ack)
			th[12] = 5 << 4 // data offset
			th[13] = p.TCP.Flags
			binary.BigEndian.PutUint16(th[14:], p.TCP.Window)
			binary.BigEndian.PutUint16(th[16:], transportChecksum(p.IP, th, payload))
			buf = append(buf, th...)
			buf = append(buf, payload...)
		case p.ICMP != nil:
			th := make([]byte, 8)
			th[0] = p.ICMP.Type
			th[1] = p.ICMP.Code
			binary.BigEndian.PutUint16(th[4:], p.ICMP.ID)
			binary.BigEndian.PutUint16(th[6:], p.ICMP.Seq)
			// ICMP checksum covers header+payload, no pseudo-header.
			sum := append(append([]byte(nil), th...), payload...)
			binary.BigEndian.PutUint16(th[2:], checksum(sum))
			buf = append(buf, th...)
			buf = append(buf, payload...)
		default:
			buf = append(buf, payload...)
		}

	default:
		if p.Payload != nil {
			buf = append(buf, p.Payload...)
		} else if p.PayloadLen > 0 {
			buf = append(buf, make([]byte, p.PayloadLen)...)
		}
	}

	for len(buf) < 60 {
		buf = append(buf, 0)
	}
	return buf
}

// Unmarshal parses a wire-format frame into a Packet. Checksums are
// verified; padding beyond the declared IP total length is ignored.
func Unmarshal(b []byte) (*Packet, error) {
	if len(b) < 14 {
		return nil, ErrTruncated
	}
	p := &Packet{}
	copy(p.Eth.Dst[:], b[0:6])
	copy(p.Eth.Src[:], b[6:12])
	p.Eth.Type = binary.BigEndian.Uint16(b[12:14])
	rest := b[14:]

	switch p.Eth.Type {
	case EtherTypeARP:
		if len(rest) < 28 {
			return nil, ErrTruncated
		}
		a := &ARP{Op: binary.BigEndian.Uint16(rest[6:8])}
		copy(a.SenderHW[:], rest[8:14])
		a.SenderIP = IPv4(binary.BigEndian.Uint32(rest[14:18]))
		copy(a.TargetHW[:], rest[18:24])
		a.TargetIP = IPv4(binary.BigEndian.Uint32(rest[24:28]))
		p.ARP = a
		return p, nil

	case EtherTypeIPv4:
		if len(rest) < 20 {
			return nil, ErrTruncated
		}
		if rest[0]>>4 != 4 {
			return nil, fmt.Errorf("packet: bad IP version %d", rest[0]>>4)
		}
		ihl := int(rest[0]&0x0f) * 4
		if ihl < 20 || len(rest) < ihl {
			return nil, ErrTruncated
		}
		if checksum(rest[:ihl]) != 0 {
			return nil, fmt.Errorf("%w (ipv4)", ErrBadChecksum)
		}
		ip := &IP{
			TOS:      rest[1],
			TotalLen: binary.BigEndian.Uint16(rest[2:4]),
			ID:       binary.BigEndian.Uint16(rest[4:6]),
			TTL:      rest[8],
			Proto:    rest[9],
			Src:      IPv4(binary.BigEndian.Uint32(rest[12:16])),
			Dst:      IPv4(binary.BigEndian.Uint32(rest[16:20])),
		}
		p.IP = ip
		if int(ip.TotalLen) > len(rest) {
			return nil, ErrTruncated
		}
		body := rest[ihl:ip.TotalLen]

		switch ip.Proto {
		case ProtoUDP:
			if len(body) < 8 {
				return nil, ErrTruncated
			}
			u := &UDP{
				SrcPort: binary.BigEndian.Uint16(body[0:2]),
				DstPort: binary.BigEndian.Uint16(body[2:4]),
				Len:     binary.BigEndian.Uint16(body[4:6]),
			}
			if transportChecksum(ip, body[:8], body[8:]) != 0 {
				return nil, fmt.Errorf("%w (udp)", ErrBadChecksum)
			}
			p.UDP = u
			p.Payload = append([]byte(nil), body[8:]...)
			p.PayloadLen = len(p.Payload)
		case ProtoTCP:
			if len(body) < 20 {
				return nil, ErrTruncated
			}
			off := int(body[12]>>4) * 4
			if off < 20 || len(body) < off {
				return nil, ErrTruncated
			}
			t := &TCP{
				SrcPort: binary.BigEndian.Uint16(body[0:2]),
				DstPort: binary.BigEndian.Uint16(body[2:4]),
				Seq:     binary.BigEndian.Uint32(body[4:8]),
				Ack:     binary.BigEndian.Uint32(body[8:12]),
				Flags:   body[13],
				Window:  binary.BigEndian.Uint16(body[14:16]),
			}
			if transportChecksum(ip, body[:off], body[off:]) != 0 {
				return nil, fmt.Errorf("%w (tcp)", ErrBadChecksum)
			}
			p.TCP = t
			p.Payload = append([]byte(nil), body[off:]...)
			p.PayloadLen = len(p.Payload)
		case ProtoICMP:
			if len(body) < 8 {
				return nil, ErrTruncated
			}
			if checksum(body) != 0 {
				return nil, fmt.Errorf("%w (icmp)", ErrBadChecksum)
			}
			p.ICMP = &ICMP{
				Type: body[0],
				Code: body[1],
				ID:   binary.BigEndian.Uint16(body[4:6]),
				Seq:  binary.BigEndian.Uint16(body[6:8]),
			}
			p.Payload = append([]byte(nil), body[8:]...)
			p.PayloadLen = len(p.Payload)
		default:
			p.Payload = append([]byte(nil), body...)
			p.PayloadLen = len(p.Payload)
		}
		return p, nil

	default:
		p.Payload = append([]byte(nil), rest...)
		p.PayloadLen = len(p.Payload)
		return p, nil
	}
}

// checksum computes the RFC 1071 ones-complement sum over b. A buffer that
// embeds a correct checksum field sums to zero.
func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// transportChecksum computes the UDP/TCP checksum including the IPv4
// pseudo-header. The checksum field inside hdr must be zero when computing
// and the stored value when verifying (verification yields 0).
func transportChecksum(ip *IP, hdr, payload []byte) uint16 {
	pseudo := make([]byte, 12)
	binary.BigEndian.PutUint32(pseudo[0:], uint32(ip.Src))
	binary.BigEndian.PutUint32(pseudo[4:], uint32(ip.Dst))
	pseudo[9] = ip.Proto
	binary.BigEndian.PutUint16(pseudo[10:], uint16(len(hdr)+len(payload)))

	var sum uint32
	add := func(b []byte) {
		for i := 0; i+1 < len(b); i += 2 {
			sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
		}
		if len(b)%2 == 1 {
			sum += uint32(b[len(b)-1]) << 8
		}
	}
	add(pseudo)
	add(hdr)
	add(payload)
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
