// Package stats provides the measurement primitives used by every
// experiment: counters, rate gauges, and logarithmic latency histograms with
// percentile queries, plus plain-text table rendering so benches print the
// same row/column layout the experiment index in DESIGN.md promises.
package stats

import (
	"fmt"
	"math"
	"sort"

	"norman/internal/sim"
)

// Counter is a monotonically increasing event count. It deliberately has no
// Reset: monotonicity is the property telemetry renderers and rate
// calculations rely on (a Prometheus counter that goes backwards corrupts
// every rate() over it). Measurement loops that want per-interval counts
// should use ResettableCounter and say so.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// ResettableCounter is a Counter that a measurement loop may zero between
// intervals. It is a distinct type so a reset-capable count can never be
// registered where a monotonic Counter is documented.
type ResettableCounter struct {
	Counter
}

// Reset zeroes the counter.
func (c *ResettableCounter) Reset() { c.n = 0 }

// Histogram records durations in logarithmic buckets (about 4.6% relative
// resolution) between 1 ns and ~18 s, with exact tracking of count, sum, min
// and max. Percentile queries interpolate within a bucket.
type Histogram struct {
	buckets [nBuckets]uint64
	count   uint64
	sum     sim.Duration
	min     sim.Duration
	max     sim.Duration
}

const (
	nBuckets      = 512
	bucketsPerDec = 51 // buckets per decade: resolution 10^(1/51) ≈ 4.6%
)

func bucketOf(d sim.Duration) int {
	if d < sim.Nanosecond {
		return 0
	}
	// log10(d/1ns) * bucketsPerDec
	b := int(math.Log10(float64(d)/float64(sim.Nanosecond)) * bucketsPerDec)
	if b < 0 {
		b = 0
	}
	if b >= nBuckets {
		b = nBuckets - 1
	}
	return b
}

func bucketLow(i int) sim.Duration {
	return sim.Duration(float64(sim.Nanosecond) * math.Pow(10, float64(i)/bucketsPerDec))
}

// Observe records one duration.
func (h *Histogram) Observe(d sim.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() sim.Duration {
	if h.count == 0 {
		return 0
	}
	return sim.Duration(int64(h.sum) / int64(h.count))
}

// Sum returns the exact sum of all observations.
func (h *Histogram) Sum() sim.Duration { return h.sum }

// Min returns the smallest observation.
func (h *Histogram) Min() sim.Duration { return h.min }

// Max returns the largest observation.
func (h *Histogram) Max() sim.Duration { return h.max }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation inside
// the containing bucket, clamped to [Min, Max].
func (h *Histogram) Quantile(q float64) sim.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := q * float64(h.count)
	var cum float64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= target {
			frac := (target - cum) / float64(n)
			lo, hi := bucketLow(i), bucketLow(i+1)
			v := lo + sim.Duration(float64(hi-lo)*frac)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum = next
	}
	return h.max
}

// P50, P99, P999 are convenience quantile accessors.
func (h *Histogram) P50() sim.Duration  { return h.Quantile(0.50) }
func (h *Histogram) P99() sim.Duration  { return h.Quantile(0.99) }
func (h *Histogram) P999() sim.Duration { return h.Quantile(0.999) }

// Reset clears all observations.
func (h *Histogram) Reset() { *h = Histogram{} }

// Throughput converts a byte count over an interval into Gbit/s.
func Throughput(bytes uint64, elapsed sim.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) * 8 / elapsed.Seconds() / 1e9
}

// Rate converts an event count over an interval into events/second.
func Rate(events uint64, elapsed sim.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(events) / elapsed.Seconds()
}

// Table accumulates rows and renders them with aligned columns; every
// experiment driver prints its results through a Table so the bench output
// matches the per-experiment index in DESIGN.md.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; each cell is formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, hcell := range t.headers {
		widths[i] = len(hcell)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	out := ""
	if t.Title != "" {
		out += t.Title + "\n"
	}
	line := func(cells []string) string {
		s := ""
		for i, cell := range cells {
			if i > 0 {
				s += "  "
			}
			s += pad(cell, widths[i])
		}
		return s + "\n"
	}
	out += line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = dashes(widths[i])
	}
	out += line(sep)
	for _, row := range t.rows {
		out += line(row)
	}
	return out
}

func pad(s string, w int) string {
	for len(s) < w {
		s += " "
	}
	return s
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}

// Summary computes exact quantiles over a small sample slice (used by tests
// to cross-check Histogram interpolation).
func Summary(samples []sim.Duration, q float64) sim.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]sim.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	return s[idx]
}
